package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"securecache/internal/kvstore"
	"securecache/internal/wal"
	"securecache/internal/workload"
)

type walBenchConfig struct {
	Keys         int
	ValueBytes   int
	BaselinePath string
}

// walBenchReport records what crash recovery costs when the node keeps
// a local write-ahead log, against the network-rebuild numbers in
// benchReport. crash_to_serving_seconds is the headline: the time from
// "process restarts on the old data dir" to "exact pre-crash keyset in
// memory, ready to serve" — the durable-node alternative to the
// crash_to_converged_seconds a wiped replica pays for hinted handoff
// plus anti-entropy.
type walBenchReport struct {
	Keys             int     `json:"keys"`
	ValueBytes       int     `json:"value_bytes"`
	Appends          uint64  `json:"wal_appends"`
	AppendSecs       float64 `json:"append_seconds"`
	AppendsPerSec    float64 `json:"appends_per_second"`
	LogBytes         int64   `json:"log_bytes"`
	Segments         int     `json:"segments"`
	ReplayedKeys     uint64  `json:"replayed_keys"`
	TornTruncations  uint64  `json:"torn_truncations"`
	HintLoads        uint64  `json:"hint_loads"`
	ReplaySecs       float64 `json:"replay_seconds"`
	ReplayKeysPerSec float64 `json:"replay_keys_per_second"`
	CrashToServing   float64 `json:"crash_to_serving_seconds"`
	StaleReads       int     `json:"post_replay_stale_reads"`
	ResurrectedDels  int     `json:"post_replay_resurrected_deletes"`

	// Comparison against the recorded network-rebuild baseline
	// (BENCH_repair.json), when present.
	RebuildBaselineSecs float64 `json:"network_rebuild_baseline_seconds,omitempty"`
	SpeedupVsRebuild    float64 `json:"speedup_vs_network_rebuild,omitempty"`
}

// runWALBench writes a churned keyset through a durable backend,
// abandons the process state without a clean shutdown (the in-process
// equivalent of kill -9: the log is never closed, its final segment may
// end in a torn record), then times a cold open of the same data
// directory — segment replay with hint-file acceleration — and sweeps
// the rebuilt store for divergence.
func runWALBench(cfg walBenchConfig, w io.Writer) (walBenchReport, error) {
	report := walBenchReport{Keys: cfg.Keys, ValueBytes: cfg.ValueBytes}

	dir, err := os.MkdirTemp("", "secrepair-wal-")
	if err != nil {
		return report, err
	}
	defer os.RemoveAll(dir)

	// Small segments force rotations so replay exercises hint files, and
	// SyncInterval -1 leaves no background goroutine holding the log —
	// abandoning it un-Closed is then a faithful crash image (appends
	// are one write(2) each; only fsync is skipped, which the kernel has
	// already absorbed for an in-process "crash").
	opts := wal.Options{SegmentBytes: 512 << 10, SyncInterval: -1}
	b1 := kvstore.NewBackend(0)
	if _, err := b1.OpenData(dir, opts); err != nil {
		return report, err
	}

	// Workload mirrors the repair bench: gen0 everywhere, gen1 over the
	// even keys, every tenth key deleted — so the log carries
	// overwrites and tombstones, not just fresh inserts.
	val0 := make([]byte, cfg.ValueBytes)
	val1 := make([]byte, cfg.ValueBytes)
	copy(val0, "gen0")
	copy(val1, "gen1")
	fmt.Fprintf(w, "writing %d keys (x%dB, with overwrites and deletes) through the WAL...\n",
		cfg.Keys, cfg.ValueBytes)
	st1 := b1.Store()
	appendStart := time.Now()
	for k := 0; k < cfg.Keys; k++ {
		st1.SetVersioned(workload.KeyName(k), val0, 1, 1)
	}
	for k := 0; k < cfg.Keys; k += 2 {
		st1.SetVersioned(workload.KeyName(k), val1, 1, 2)
	}
	for k := 9; k < cfg.Keys; k += 10 {
		st1.DeleteVersioned(workload.KeyName(k), 1, 3)
	}
	report.AppendSecs = time.Since(appendStart).Seconds()
	report.Appends = b1.WAL().Stats().Appends
	if report.AppendSecs > 0 {
		report.AppendsPerSec = float64(report.Appends) / report.AppendSecs
	}
	report.LogBytes, report.Segments = duSegments(dir)
	fmt.Fprintf(w, "appended %d records in %.2fs (%.0f appends/sec), log %d bytes in %d segments\n",
		report.Appends, report.AppendSecs, report.AppendsPerSec, report.LogBytes, report.Segments)

	// Crash: b1 is simply abandoned — no Close, no final fsync.
	fmt.Fprintln(w, "crashing (log abandoned un-closed) and cold-opening the data dir...")
	bootStart := time.Now()
	b2 := kvstore.NewBackend(0)
	replayStart := time.Now()
	recovered, err := b2.OpenData(dir, opts)
	if err != nil {
		return report, err
	}
	report.ReplaySecs = time.Since(replayStart).Seconds()
	report.CrashToServing = time.Since(bootStart).Seconds()
	defer b2.Close()
	if recovered {
		return report, fmt.Errorf("data dir quarantined as corrupt on replay")
	}
	st := b2.WAL().Stats()
	report.ReplayedKeys = st.Replayed
	report.TornTruncations = st.TornTruncations
	report.HintLoads = st.HintLoads
	if report.ReplaySecs > 0 {
		report.ReplayKeysPerSec = float64(st.Replayed) / report.ReplaySecs
	}
	fmt.Fprintf(w, "replayed %d keys in %.3fs (%.0f keys/sec, %d hint loads, %d torn records truncated)\n",
		st.Replayed, report.ReplaySecs, report.ReplayKeysPerSec, st.HintLoads, st.TornTruncations)

	// Divergence sweep: every key must read back exactly as before the
	// crash — deletes stay deleted, overwrites stay overwritten.
	st2 := b2.Store()
	for k := 0; k < cfg.Keys; k++ {
		v, ok := st2.Get(workload.KeyName(k))
		if k%10 == 9 {
			if ok {
				report.ResurrectedDels++
			}
			continue
		}
		want := val0
		if k%2 == 0 {
			want = val1
		}
		if !ok || string(v) != string(want) {
			report.StaleReads++
		}
	}
	fmt.Fprintf(w, "serving %.3fs after restart: %d stale reads, %d resurrected deletes\n",
		report.CrashToServing, report.StaleReads, report.ResurrectedDels)
	if report.StaleReads > 0 || report.ResurrectedDels > 0 {
		return report, fmt.Errorf("post-replay sweep found divergence")
	}

	if cfg.BaselinePath != "" {
		if blob, err := os.ReadFile(cfg.BaselinePath); err == nil {
			var base benchReport
			if json.Unmarshal(blob, &base) == nil && base.ConvergedSeconds > 0 {
				report.RebuildBaselineSecs = base.ConvergedSeconds
				if report.CrashToServing > 0 {
					report.SpeedupVsRebuild = base.ConvergedSeconds / report.CrashToServing
				}
				fmt.Fprintf(w, "vs network rebuild baseline (%s): %.2fs -> %.3fs, %.0fx faster\n",
					cfg.BaselinePath, base.ConvergedSeconds, report.CrashToServing, report.SpeedupVsRebuild)
			}
		} else {
			fmt.Fprintf(w, "no baseline at %s, skipping comparison\n", cfg.BaselinePath)
		}
	}
	return report, nil
}

// duSegments totals the on-disk size of the log's segment files.
func duSegments(dir string) (bytes int64, segments int) {
	matches, _ := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	for _, m := range matches {
		if fi, err := os.Stat(m); err == nil {
			bytes += fi.Size()
			segments++
		}
	}
	return bytes, segments
}
