// Command secrepair benchmarks the replica repair machinery on an
// in-process cluster: it crashes one backend mid-workload, keeps
// writing at quorum, restarts the node with an empty store, and
// measures what rebuilding it costs — hinted-handoff replay rate,
// anti-entropy repair rate, and the read/write latency the cluster
// pays while degraded. This is the baseline EXPERIMENTS.md records:
//
//	secrepair -n 5 -d 3 -m 5000 -json BENCH_repair.json
//
// With -wal it instead benchmarks the local durability path those
// network mechanisms compete with: write-ahead-log append throughput
// and crash→serving restart time (replay from segments + hint files),
// for comparison against the network rebuild baseline above:
//
//	secrepair -wal -m 5000 -json BENCH_wal.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"securecache/internal/faultnet"
	"securecache/internal/kvstore"
	"securecache/internal/stats"
	"securecache/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 5, "number of backends")
		d        = flag.Int("d", 3, "replication factor")
		m        = flag.Int("m", 5000, "number of keys")
		walMode  = flag.Bool("wal", false, "benchmark the WAL durability path instead of network repair")
		valBytes = flag.Int("val", 256, "value size in bytes (WAL mode)")
		baseline = flag.String("baseline", "BENCH_repair.json", "network-repair baseline to embed for comparison (WAL mode; missing file = omitted)")
		jsonPath = flag.String("json", "", "also write the bench report to this file")
	)
	flag.Parse()

	var report any
	var err error
	if *walMode {
		report, err = runWALBench(walBenchConfig{Keys: *m, ValueBytes: *valBytes, BaselinePath: *baseline}, os.Stdout)
	} else {
		report, err = runBench(benchConfig{Nodes: *n, Replication: *d, Keys: *m}, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "secrepair:", err)
		os.Exit(2)
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "secrepair:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "secrepair:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

type benchConfig struct {
	Nodes       int
	Replication int
	Keys        int
}

// benchReport is the recorded baseline: what a crashed-and-wiped
// replica costs to rebuild, and what the cluster pays while degraded.
type benchReport struct {
	Nodes            int     `json:"nodes"`
	Replication      int     `json:"replication"`
	WriteQuorum      int     `json:"write_quorum"`
	Keys             int     `json:"keys"`
	BaselineSetMean  float64 `json:"baseline_set_micros_mean"`
	BaselineSetP99   float64 `json:"baseline_set_micros_p99"`
	OutageSetMean    float64 `json:"outage_set_micros_mean"`
	OutageSetP99     float64 `json:"outage_set_micros_p99"`
	OutageSetFails   int     `json:"outage_set_failures"`
	HintsQueued      uint64  `json:"hints_queued"`
	HintReplaySecs   float64 `json:"hint_replay_seconds"`
	HintsPerSecond   float64 `json:"hints_per_second"`
	RepairKeys       uint64  `json:"repair_keys_repaired"`
	RepairSecs       float64 `json:"repair_seconds"`
	RepairPerSecond  float64 `json:"repair_keys_per_second"`
	StaleReads       int     `json:"post_repair_stale_reads"`
	ResurrectedDels  int     `json:"post_repair_resurrected_deletes"`
	ConvergedSeconds float64 `json:"crash_to_converged_seconds"`
}

// runBench boots the cluster with one backend behind a fault proxy,
// preloads the key space, crashes the node, overwrites half the keys
// (and deletes a tenth) during the outage, then restarts the node
// empty and times hint replay plus anti-entropy until convergence.
func runBench(cfg benchConfig, w io.Writer) (benchReport, error) {
	report := benchReport{Nodes: cfg.Nodes, Replication: cfg.Replication, Keys: cfg.Keys}

	var (
		backends []*kvstore.Backend
		addrs    []string
	)
	for i := 0; i < cfg.Nodes; i++ {
		b, addr, err := kvstore.StartBackend(i, "127.0.0.1:0")
		if err != nil {
			return report, err
		}
		backends = append(backends, b)
		addrs = append(addrs, addr)
	}
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()

	// The crash node sits behind a fault proxy so the frontend has a live
	// address to be refused by while the node is down, and the node's own
	// port stays free for the restart.
	crashAddr := addrs[1]
	proxy, err := faultnet.Start(crashAddr)
	if err != nil {
		return report, err
	}
	defer proxy.Close()
	addrs[1] = proxy.Addr()

	front, err := kvstore.NewFrontend(kvstore.FrontendConfig{
		BackendAddrs:   addrs,
		Replication:    cfg.Replication,
		Client:         kvstore.ClientConfig{MaxRetries: -1, DialTimeout: 200 * time.Millisecond},
		Health:         kvstore.HealthConfig{FailureThreshold: 2, ProbeInterval: 50 * time.Millisecond},
		RepairInterval: -1, // the bench drives repair passes itself, timed
	})
	if err != nil {
		return report, err
	}
	defer front.Close()
	report.WriteQuorum = (cfg.Replication + 2) / 2

	fmt.Fprintf(w, "loading %d keys into %d nodes (d=%d, W=%d)...\n",
		cfg.Keys, cfg.Nodes, cfg.Replication, report.WriteQuorum)
	var baseSet stats.Summary
	baseP99 := stats.NewP2Quantile(0.99)
	for k := 0; k < cfg.Keys; k++ {
		t0 := time.Now()
		if err := front.Set(workload.KeyName(k), []byte("gen0")); err != nil {
			return report, fmt.Errorf("preload key %d: %w", k, err)
		}
		us := float64(time.Since(t0).Microseconds())
		baseSet.Add(us)
		baseP99.Add(us)
	}
	report.BaselineSetMean = baseSet.Mean()
	report.BaselineSetP99 = baseP99.Value()
	fmt.Fprintf(w, "baseline sets: mean %.0fµs p99≈%.0fµs\n", report.BaselineSetMean, report.BaselineSetP99)

	fmt.Fprintln(w, "crashing node 1...")
	proxy.SetFaults(faultnet.Faults{Blackhole: true, RejectConns: true})
	proxy.CloseExisting()
	backends[1].Close()
	crashed := time.Now()

	// Outage workload: overwrite the even keys, delete every tenth. The
	// odd keys are untouched — no hint exists for them, so the restarted
	// replica can only recover them through anti-entropy.
	var outSet stats.Summary
	outP99 := stats.NewP2Quantile(0.99)
	for k := 0; k < cfg.Keys; k++ {
		name := workload.KeyName(k)
		if k%10 == 9 {
			if err := front.Del(name); err != nil {
				report.OutageSetFails++
			}
			continue
		}
		if k%2 != 0 {
			continue
		}
		t0 := time.Now()
		if err := front.Set(name, []byte("gen1")); err != nil {
			report.OutageSetFails++
			continue
		}
		us := float64(time.Since(t0).Microseconds())
		outSet.Add(us)
		outP99.Add(us)
	}
	m := front.Metrics()
	report.OutageSetMean = outSet.Mean()
	report.OutageSetP99 = outP99.Value()
	report.HintsQueued = m.Counter("hints_queued_total").Value()
	fmt.Fprintf(w, "outage sets: mean %.0fµs p99≈%.0fµs, %d failures, %d hints queued\n",
		report.OutageSetMean, report.OutageSetP99, report.OutageSetFails, report.HintsQueued)

	fmt.Fprintln(w, "restarting node 1 with an empty store...")
	b1, _, err := kvstore.StartBackend(1, crashAddr)
	if err != nil {
		return report, err
	}
	backends[1] = b1
	proxy.Clear()
	replayStart := time.Now()
	deadline := replayStart.Add(60 * time.Second)
	for m.Gauge("hints_pending").Value() > 0 {
		if time.Now().After(deadline) {
			return report, errors.New("hints never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	report.HintReplaySecs = time.Since(replayStart).Seconds()
	replayed := m.Counter("hints_replayed_total").Value()
	if report.HintReplaySecs > 0 {
		report.HintsPerSecond = float64(replayed) / report.HintReplaySecs
	}
	fmt.Fprintf(w, "hint replay: %d hints in %.2fs (%.0f hints/sec)\n",
		replayed, report.HintReplaySecs, report.HintsPerSecond)

	repairStart := time.Now()
	for {
		nrep, err := front.RunRepairPass()
		if err != nil {
			return report, err
		}
		if nrep == 0 {
			break
		}
	}
	report.RepairSecs = time.Since(repairStart).Seconds()
	report.RepairKeys = m.Counter("repair_keys_repaired_total").Value()
	if report.RepairSecs > 0 {
		report.RepairPerSecond = float64(report.RepairKeys) / report.RepairSecs
	}
	report.ConvergedSeconds = time.Since(crashed).Seconds()
	fmt.Fprintf(w, "anti-entropy: %d keys repaired in %.2fs (%.0f keys/sec)\n",
		report.RepairKeys, report.RepairSecs, report.RepairPerSecond)

	// Full verification sweep through the public read path.
	for k := 0; k < cfg.Keys; k++ {
		v, err := front.Get(workload.KeyName(k))
		if k%10 == 9 {
			if !errors.Is(err, kvstore.ErrNotFound) {
				report.ResurrectedDels++
			}
			continue
		}
		want := "gen0"
		if k%2 == 0 {
			want = "gen1"
		}
		if err != nil || string(v) != want {
			report.StaleReads++
		}
	}
	fmt.Fprintf(w, "converged %.2fs after crash: %d stale reads, %d resurrected deletes\n",
		report.ConvergedSeconds, report.StaleReads, report.ResurrectedDels)
	if report.StaleReads > 0 || report.ResurrectedDels > 0 {
		return report, errors.New("post-repair sweep found divergence")
	}
	return report, nil
}
