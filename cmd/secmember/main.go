// Command secmember is the operator tool for elastic membership.
//
// Remote mode drives a running frontend's admin surface — the same
// verbs kvnode -join-via uses:
//
//	secmember -admin 127.0.0.1:8000 -status          # print the membership view
//	secmember -admin 127.0.0.1:8000 -join  HOST:PORT # add a backend
//	secmember -admin 127.0.0.1:8000 -drain 3         # drain member 3 out
//
// Local mode benchmarks a join + drain episode on an in-process cluster
// and reports migration selectivity (moved vs re-tagged keys), view
// change latency, the read cost of the dual-view window, and the
// re-provisioned c* per view — the baseline EXPERIMENTS.md records:
//
//	secmember -local -n 8 -d 3 -m 5000 -json BENCH_membership.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"securecache/internal/kvstore"
	"securecache/internal/overload"
	"securecache/internal/partition"
	"securecache/internal/stats"
	"securecache/internal/workload"
)

func main() {
	var (
		admin  = flag.String("admin", "", "frontend admin address (remote mode)")
		join   = flag.String("join", "", "remote: backend address(es) to join, comma-separated")
		drain  = flag.String("drain", "", "remote: member id(s) to drain, comma-separated")
		status = flag.Bool("status", false, "remote: print membership status")
		wait   = flag.Bool("wait", false, "remote: block until the change commits or aborts")

		local    = flag.Bool("local", false, "benchmark a join+drain episode on an in-process cluster")
		n        = flag.Int("n", 8, "local: number of backends at boot")
		d        = flag.Int("d", 3, "local: replication factor")
		m        = flag.Int("m", 5000, "local: number of keys")
		rate     = flag.Float64("rate", -1, "local: migration rate limit in keys/sec (negative = unlimited)")
		partKind = flag.String("partitioner", "hash", "local: mapping family for the main episode: hash | ring")
		jsonPath = flag.String("json", "", "local: also write the bench report to this file")
	)
	flag.Parse()

	switch {
	case *local:
		report, err := runLocalBench(localBenchConfig{
			Nodes: *n, Replication: *d, Keys: *m, Rate: *rate,
			Partitioner: partition.Kind(*partKind),
		}, os.Stdout)
		if err != nil {
			fatal(err)
		}
		if *jsonPath != "" {
			blob, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	case *admin != "":
		client := &http.Client{Timeout: 10 * time.Second}
		switch {
		case *status:
			st, err := fetchStatus(client, *admin)
			if err != nil {
				fatal(err)
			}
			printStatus(st)
		case *join != "":
			if err := change(client, *admin, joinQuery(*join), *wait); err != nil {
				fatal(err)
			}
		case *drain != "":
			if err := change(client, *admin, drainQuery(*drain), *wait); err != nil {
				fatal(err)
			}
		default:
			fmt.Fprintln(os.Stderr, "secmember: need -status, -join, or -drain with -admin; see -h")
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "secmember: need -admin (remote) or -local (bench); see -h")
		os.Exit(2)
	}
}

func joinQuery(addrs string) string {
	q := url.Values{}
	for _, a := range splitNonEmpty(addrs) {
		q.Add("addr", a)
	}
	return "/join?" + q.Encode()
}

func drainQuery(ids string) string {
	q := url.Values{}
	for _, id := range splitNonEmpty(ids) {
		q.Add("id", id)
	}
	return "/drain?" + q.Encode()
}

// change POSTs a join or drain verb and prints the staged report; with
// wait it then polls /membership until the change closes.
func change(client *http.Client, admin, pathQuery string, wait bool) error {
	resp, err := client.Post("http://"+admin+pathQuery, "", nil)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var report kvstore.MembershipReport
	if err := json.Unmarshal(body, &report); err != nil {
		return fmt.Errorf("bad report: %w", err)
	}
	fmt.Printf("view v%d staged at epoch %d (~%.0f%% of keys will move)\n",
		report.Version, report.Epoch, 100*report.ExpectedMovedFraction)
	for _, jn := range report.Joined {
		fmt.Printf("  joining node %d at %s\n", jn.ID, jn.Addr)
	}
	for _, id := range report.Drained {
		fmt.Printf("  draining node %d\n", id)
	}
	if !wait {
		return nil
	}
	for {
		st, err := fetchStatus(client, admin)
		if err != nil {
			return err
		}
		if !st.Changing && !st.Rotating {
			printStatus(st)
			return nil
		}
		time.Sleep(200 * time.Millisecond)
	}
}

func fetchStatus(client *http.Client, admin string) (kvstore.MembershipStatus, error) {
	var st kvstore.MembershipStatus
	resp, err := client.Get("http://" + admin + "/membership")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("bad status: %w", err)
	}
	return st, nil
}

func printStatus(st kvstore.MembershipStatus) {
	state := "settled"
	if st.Changing {
		state = "view change open"
	} else if st.Rotating {
		state = "rotation open"
	}
	fmt.Printf("view v%d epoch %d (%s): %d members %v\n",
		st.Version, st.Epoch, state, len(st.Members), st.Members)
	for _, node := range st.Nodes {
		fmt.Printf("  node %d %s %s\n", node.ID, node.Addr, node.State)
	}
	if st.CStar > 0 {
		fmt.Printf("  provisioned c*=%d cache capacity=%d\n", st.CStar, st.CacheCapacity)
	}
}

// localBenchConfig parameterizes runLocalBench.
type localBenchConfig struct {
	Nodes       int
	Replication int
	Keys        int
	// Rate limits migration moves/sec (negative = unlimited — measures
	// the machinery's raw throughput rather than the limiter).
	Rate float64
	// Partitioner picks the mapping family for the main episode
	// (hash = dense full-reshuffle regime, ring = consistent-hash ~d/n
	// regime). The ring section of the report is measured separately
	// either way.
	Partitioner partition.Kind
}

// ringEpisode records the consistent-hash regression: the same join +
// drain episode under `-partitioner ring`, where the moved fraction
// must sit in the ~d/n regime instead of the dense hash's ~100%
// reshuffle. The realized fractions come from the migrator's own
// counters, the predicted ones from the staged report's sampling —
// CI pins both via TestMembershipRingMovedFractionRealized.
type ringEpisode struct {
	Nodes              int     `json:"nodes"`
	Replication        int     `json:"replication"`
	Keys               int     `json:"keys"`
	JoinMovedFraction  float64 `json:"join_moved_fraction"`
	JoinPredicted      float64 `json:"join_predicted_moved_fraction"`
	JoinSeconds        float64 `json:"join_seconds"`
	DrainMovedFraction float64 `json:"drain_moved_fraction"`
	DrainPredicted     float64 `json:"drain_predicted_moved_fraction"`
	DrainSeconds       float64 `json:"drain_seconds"`
}

// benchReport records one measured join + drain episode.
type benchReport struct {
	Nodes             int     `json:"nodes"`
	Replication       int     `json:"replication"`
	Keys              int     `json:"keys"`
	Partitioner       string  `json:"partitioner"`
	BaselineReadMean  float64 `json:"baseline_read_micros_mean"`
	BaselineReadP99   float64 `json:"baseline_read_micros_p99"`
	CStarBoot         int     `json:"cstar_boot"`
	CStarAfterJoin    int     `json:"cstar_after_join"`
	CStarAfterDrain   int     `json:"cstar_after_drain"`
	JoinSeconds       float64 `json:"join_seconds"`
	JoinMoved         uint64  `json:"join_keys_moved"`
	JoinRetagged      uint64  `json:"join_keys_retagged"`
	JoinMovedFraction float64 `json:"join_moved_fraction"`
	JoinPredicted     float64 `json:"join_predicted_moved_fraction"`
	JoinReadMean      float64 `json:"join_read_micros_mean"`
	JoinReadP99       float64 `json:"join_read_micros_p99"`
	JoinReadCount     int64   `json:"join_read_count"`
	DrainSeconds      float64 `json:"drain_seconds"`
	DrainMoved        uint64  `json:"drain_keys_moved"`
	DrainRetagged     uint64  `json:"drain_keys_retagged"`
	DrainReadMean     float64 `json:"drain_read_micros_mean"`
	DrainReadP99      float64 `json:"drain_read_micros_p99"`

	Ring *ringEpisode `json:"ring,omitempty"`
}

// runLocalBench boots a cluster, loads the key space, joins one node and
// then drains it back out — a reader hammers the keys through both
// changes, recording the dual-view window's read cost, while the
// moved/retagged counters record the migrator's selectivity.
func runLocalBench(cfg localBenchConfig, w io.Writer) (benchReport, error) {
	kind := cfg.Partitioner
	if kind == "" {
		kind = partition.KindHash
	}
	report := benchReport{
		Nodes: cfg.Nodes, Replication: cfg.Replication, Keys: cfg.Keys,
		Partitioner: string(kind),
	}
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes:         cfg.Nodes,
		Replication:   cfg.Replication,
		PartitionSeed: 0x5EED0002,
		Partitioner:   kind,
		Rotation:      kvstore.RotationConfig{Rate: cfg.Rate},
		Provision:     kvstore.ProvisionConfig{Items: cfg.Keys, KOverride: 1.2},
	})
	if err != nil {
		return report, err
	}
	defer lc.Close()
	front := lc.Frontend

	fmt.Fprintf(w, "loading %d keys into %d nodes (d=%d)...\n", cfg.Keys, cfg.Nodes, cfg.Replication)
	for k := 0; k < cfg.Keys; k++ {
		if err := front.Set(workload.KeyName(k), []byte("payload")); err != nil {
			return report, fmt.Errorf("preload key %d: %w", k, err)
		}
	}
	report.CStarBoot = front.MembershipStatus().CStar

	base, baseP99 := measureReads(front, cfg.Keys, cfg.Keys)
	report.BaselineReadMean = base.Mean()
	report.BaselineReadP99 = baseP99.Value()
	fmt.Fprintf(w, "baseline reads: mean %.0fµs p99≈%.0fµs (c*=%d)\n",
		report.BaselineReadMean, report.BaselineReadP99, report.CStarBoot)

	metrics := front.Metrics()
	moved := func() uint64 { return metrics.Counter("migration_keys_moved_total").Value() }
	retagged := func() uint64 { return metrics.Counter("migration_keys_retagged_total").Value() }

	// Join one node; keep reading until the fill commits.
	addr, err := lc.AddBackend(overload.Limits{})
	if err != nil {
		return report, err
	}
	moved0, retag0 := moved(), retagged()
	start := time.Now()
	joinReport, err := front.Join(addr)
	if err != nil {
		return report, err
	}
	report.JoinPredicted = joinReport.ExpectedMovedFraction
	sum, p99, err := readUntilSettled(front, cfg.Keys)
	if err != nil {
		return report, fmt.Errorf("read during join: %w", err)
	}
	report.JoinSeconds = time.Since(start).Seconds()
	report.JoinMoved = moved() - moved0
	report.JoinRetagged = retagged() - retag0
	if total := report.JoinMoved + report.JoinRetagged; total > 0 {
		report.JoinMovedFraction = float64(report.JoinMoved) / float64(total)
	}
	report.JoinReadMean = sum.Mean()
	report.JoinReadP99 = p99.Value()
	report.JoinReadCount = sum.N()
	report.CStarAfterJoin = front.MembershipStatus().CStar
	fmt.Fprintf(w, "join committed in %.2fs: %d keys moved, %d re-tagged in place "+
		"(moved fraction %.2f, predicted %.2f); reads mean %.0fµs p99≈%.0fµs; c* %d -> %d\n",
		report.JoinSeconds, report.JoinMoved, report.JoinRetagged,
		report.JoinMovedFraction, report.JoinPredicted,
		report.JoinReadMean, report.JoinReadP99, report.CStarBoot, report.CStarAfterJoin)

	// Drain the same node back out.
	drainID := joinReport.Joined[0].ID
	moved0, retag0 = moved(), retagged()
	start = time.Now()
	if _, err := front.Drain(drainID); err != nil {
		return report, err
	}
	sum, p99, err = readUntilSettled(front, cfg.Keys)
	if err != nil {
		return report, fmt.Errorf("read during drain: %w", err)
	}
	report.DrainSeconds = time.Since(start).Seconds()
	report.DrainMoved = moved() - moved0
	report.DrainRetagged = retagged() - retag0
	report.DrainReadMean = sum.Mean()
	report.DrainReadP99 = p99.Value()
	report.CStarAfterDrain = front.MembershipStatus().CStar
	fmt.Fprintf(w, "drain committed in %.2fs: %d keys moved, %d re-tagged; "+
		"reads mean %.0fµs p99≈%.0fµs; c* back to %d\n",
		report.DrainSeconds, report.DrainMoved, report.DrainRetagged,
		report.DrainReadMean, report.DrainReadP99, report.CStarAfterDrain)

	ring, err := runRingEpisode(cfg, w)
	if err != nil {
		return report, fmt.Errorf("ring episode: %w", err)
	}
	report.Ring = &ring
	return report, nil
}

// runRingEpisode measures the ring partitioner's join + drain moved
// fractions on a fresh cluster — the ~d/n regression the dense hash
// episode cannot express (its reshuffle is near-total by design).
func runRingEpisode(cfg localBenchConfig, w io.Writer) (ringEpisode, error) {
	ep := ringEpisode{Nodes: cfg.Nodes, Replication: cfg.Replication, Keys: cfg.Keys}
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes:         cfg.Nodes,
		Replication:   cfg.Replication,
		PartitionSeed: 0x5EED0003,
		Partitioner:   partition.KindRing,
		Rotation:      kvstore.RotationConfig{Rate: cfg.Rate},
	})
	if err != nil {
		return ep, err
	}
	defer lc.Close()
	front := lc.Frontend

	fmt.Fprintf(w, "ring episode: loading %d keys into %d nodes (d=%d)...\n",
		cfg.Keys, cfg.Nodes, cfg.Replication)
	for k := 0; k < cfg.Keys; k++ {
		if err := front.Set(workload.KeyName(k), []byte("payload")); err != nil {
			return ep, fmt.Errorf("preload key %d: %w", k, err)
		}
	}

	metrics := front.Metrics()
	moved := func() uint64 { return metrics.Counter("migration_keys_moved_total").Value() }
	retagged := func() uint64 { return metrics.Counter("migration_keys_retagged_total").Value() }
	settle := func() error {
		for {
			st := front.MembershipStatus()
			if !st.Changing && !st.Rotating {
				return nil
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	fraction := func(m0, r0 uint64) float64 {
		m, r := float64(moved()-m0), float64(retagged()-r0)
		if m+r == 0 {
			return 0
		}
		return m / (m + r)
	}

	addr, err := lc.AddBackend(overload.Limits{})
	if err != nil {
		return ep, err
	}
	m0, r0 := moved(), retagged()
	start := time.Now()
	joinReport, err := front.Join(addr)
	if err != nil {
		return ep, err
	}
	if err := settle(); err != nil {
		return ep, err
	}
	ep.JoinSeconds = time.Since(start).Seconds()
	ep.JoinPredicted = joinReport.ExpectedMovedFraction
	ep.JoinMovedFraction = fraction(m0, r0)
	fmt.Fprintf(w, "ring join committed in %.2fs: moved fraction %.2f (predicted %.2f; dense hash would be ~1.0)\n",
		ep.JoinSeconds, ep.JoinMovedFraction, ep.JoinPredicted)

	m0, r0 = moved(), retagged()
	start = time.Now()
	drainReport, err := front.Drain(joinReport.Joined[0].ID)
	if err != nil {
		return ep, err
	}
	if err := settle(); err != nil {
		return ep, err
	}
	ep.DrainSeconds = time.Since(start).Seconds()
	ep.DrainPredicted = drainReport.ExpectedMovedFraction
	ep.DrainMovedFraction = fraction(m0, r0)
	fmt.Fprintf(w, "ring drain committed in %.2fs: moved fraction %.2f (predicted %.2f)\n",
		ep.DrainSeconds, ep.DrainMovedFraction, ep.DrainPredicted)
	return ep, nil
}

// readUntilSettled hammers uniform reads until the open view change
// commits, returning the latency profile of the dual-view window.
func readUntilSettled(front *kvstore.Frontend, keys int) (stats.Summary, *stats.P2Quantile, error) {
	var sum stats.Summary
	p99 := stats.NewP2Quantile(0.99)
	gen := workload.NewGenerator(workload.NewUniform(keys, keys), 7)
	for {
		st := front.MembershipStatus()
		if !st.Changing && !st.Rotating {
			return sum, p99, nil
		}
		key := workload.KeyName(gen.Next())
		t0 := time.Now()
		if _, err := front.Get(key); err != nil {
			return sum, p99, err
		}
		us := float64(time.Since(t0).Microseconds())
		sum.Add(us)
		p99.Add(us)
	}
}

// measureReads runs count uniform reads over keys keys and returns the
// latency summary plus a p99 estimate.
func measureReads(front *kvstore.Frontend, keys, count int) (stats.Summary, *stats.P2Quantile) {
	var sum stats.Summary
	p99 := stats.NewP2Quantile(0.99)
	gen := workload.NewGenerator(workload.NewUniform(keys, keys), 3)
	for i := 0; i < count; i++ {
		t0 := time.Now()
		front.Get(workload.KeyName(gen.Next()))
		us := float64(time.Since(t0).Microseconds())
		sum.Add(us)
		p99.Add(us)
	}
	return sum, p99
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secmember:", err)
	os.Exit(2)
}
