// Command kvfront runs the front-end server: the component that owns the
// secret partition mapping and the popularity-based cache, and forwards
// misses to the back-end replica groups.
//
// The -cache-size flag is where the paper's result becomes operational:
// size it with secbound (c* = ceil(n·k + 1)) and no adversarial client
// can push any backend above the even share.
//
// With -tier-id the instance joins a distributed frontend tier: k
// kvfront processes share the backends and the SECRET partition seed,
// while a PUBLIC -tier-seed maps each key to two candidate frontends.
// The instance then only caches keys it is a candidate for, piggybacks
// its load on every response frame, and honors INVALIDATE — the pieces
// the power-of-two-choices tier client needs.
//
// Usage:
//
//	kvfront -listen 127.0.0.1:7000 \
//	        -backends 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003 \
//	        -replication 2 -cache lfu -cache-size 16 -seed 0xsecret
//	kvfront -listen 127.0.0.1:7000 -backends ... -seed 0xsecret \
//	        -tier-id 0 -tier-members 0,1,2 -tier-seed 42   # tier member 0 of 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"securecache/internal/cache"
	"securecache/internal/core"
	"securecache/internal/kvstore"
	"securecache/internal/overload"
	"securecache/internal/partition"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7000", "listen address")
		backends    = flag.String("backends", "", "comma-separated backend addresses (node order matters)")
		repl        = flag.Int("replication", 3, "replication factor d")
		seed        = flag.Uint64("seed", 0, "SECRET partition seed (keep it out of client hands)")
		cacheKind   = flag.String("cache", "lfu", "cache policy: lru | lfu | slru | tinylfu | arc | none")
		cacheSize   = flag.Int("cache-size", 0, "cache entries; 0 = auto-provision c* from n and d")
		cacheShards = flag.Int("cache-shards", -1, "cache shard count (power of two): -1 = auto-size for the machine, 1 = unsharded")
		selection   = flag.String("selection", "least-inflight", "replica selection: least-inflight | random | round-robin")
		admin       = flag.String("admin", "", "optional HTTP admin address (/healthz, /metrics, /info)")

		dialTimeout  = flag.Duration("dial-timeout", kvstore.DefaultDialTimeout, "backend dial timeout (negative = none)")
		readTimeout  = flag.Duration("read-timeout", kvstore.DefaultReadTimeout, "backend per-request read deadline (negative = none)")
		writeTimeout = flag.Duration("write-timeout", kvstore.DefaultWriteTimeout, "backend per-request write deadline (negative = none)")
		retries      = flag.Int("retries", kvstore.DefaultMaxRetries, "budgeted transport retries per backend request (negative = none)")
		breakerFails = flag.Int("breaker-threshold", kvstore.DefaultFailureThreshold, "consecutive failures opening a backend breaker (negative = breaker off)")
		probeEvery   = flag.Duration("probe-interval", kvstore.DefaultProbeInterval, "health-probe cadence for open backends")

		maxInflight = flag.Int("max-inflight", 0, "shed client requests beyond this many in flight with BUSY (0 = unlimited)")
		maxConns    = flag.Int("max-conns", 0, "reject client connections beyond this many at accept (0 = unlimited)")
		rateLimit   = flag.Float64("rate-limit", 0, "shed client requests beyond this many per second (0 = unlimited)")
		rateBurst   = flag.Float64("rate-burst", 0, "rate-limit burst size (0 = derived from the rate)")
		admitWait   = flag.Duration("admission-wait", 0, "how long a request may wait for an in-flight slot before being shed (0 = default, negative = none)")
		poolSize    = flag.Int("pool-size", 0, "idle connections pooled per backend (0 = default, negative = no pooling)")
		retryBudget = flag.Float64("retry-budget", 0, "shared backend retry-budget tokens (0 = default, negative = no budget)")
		budgetRatio = flag.Float64("retry-budget-ratio", 0, "retry-budget refill per successful backend exchange (0 = default)")
		idleTimeout = flag.Duration("idle-timeout", 0, "drop client connections idle longer than this (0 = keep forever)")

		items     = flag.Int("items", 0, "expected stored item count m: > 0 enables LIVE auto-provisioning — c* is recomputed and the cache resized on every committed join/drain")
		kprime    = flag.Float64("kprime", 0, "k' additive constant for auto-provisioning (0 = fitted default)")
		kOverride = flag.Float64("k", 0, "override k entirely for auto-provisioning (0 = derive from n, d, k')")
		joinAbort = flag.Duration("join-abort-after", 0, "roll back a join whose new node stays unreachable this long (0 = default 20s, negative = retry forever)")

		partitioner = flag.String("partitioner", "hash", "backend partition family: hash | ring (ring moves ~1/n of keys per joined/drained node)")
		tierID      = flag.Int("tier-id", -1, "this instance's ID in a distributed frontend tier (-1 = standalone frontend)")
		tierMembers = flag.String("tier-members", "", "comma-separated tier member IDs, must include -tier-id (empty = just this instance)")
		tierSeed    = flag.Uint64("tier-seed", 0, "PUBLIC tier mapping seed — same value on every tier member")

		writeQuorum = flag.Int("write-quorum", 0, "replica acks a Set/Del needs to succeed, W in [1, d] (0 = majority)")
		hintDir     = flag.String("hint-dir", "", "persist hinted-handoff queues to this directory (empty = memory only)")
		hintLimit   = flag.Int("hint-limit", 0, "max queued hints per backend (0 = default)")
		repairEvery = flag.Duration("repair-interval", 0, "anti-entropy pass cadence (0 = default, negative = off)")
		repairRate  = flag.Float64("repair-rate", 0, "max anti-entropy repair writes per second (0 = default, negative = unlimited)")
	)
	flag.Parse()

	addrs := splitNonEmpty(*backends)
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "kvfront: -backends is required")
		os.Exit(2)
	}

	size := *cacheSize
	if size == 0 && *cacheKind != "none" {
		p := core.Params{Nodes: len(addrs), Replication: *repl, Items: 1, KPrime: *kprime, KOverride: *kOverride}
		if len(addrs) >= 2 && *repl >= 2 {
			size = p.RequiredCacheSize()
			log.Printf("kvfront: auto-provisioned cache size c* = %d (n=%d, d=%d)", size, len(addrs), *repl)
		} else {
			size = 64
			log.Printf("kvfront: n or d below the d-choice analysis; defaulting cache to %d entries", size)
		}
	}

	var fc cache.Cache
	shards := 0
	if *cacheKind != "none" {
		var err error
		switch {
		case *cacheShards == 1:
			fc, err = cache.New(cache.Kind(*cacheKind), size)
			shards = 1
		default:
			n := *cacheShards
			if n < 0 {
				n = 0 // auto: NewSharded picks DefaultShards()
			}
			var sc *cache.Sharded
			sc, err = cache.NewSharded(cache.Kind(*cacheKind), size, n)
			if err == nil {
				fc = sc
				shards = sc.Shards()
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvfront:", err)
			os.Exit(2)
		}
	}

	var tier *kvstore.TierConfig
	if *tierID >= 0 {
		members := []int{*tierID}
		if *tierMembers != "" {
			members = members[:0]
			for _, s := range splitNonEmpty(*tierMembers) {
				id, err := strconv.Atoi(s)
				if err != nil {
					fmt.Fprintf(os.Stderr, "kvfront: bad -tier-members entry %q: %v\n", s, err)
					os.Exit(2)
				}
				members = append(members, id)
			}
		}
		tier = &kvstore.TierConfig{ID: *tierID, Members: members, Seed: *tierSeed}
	} else if *tierMembers != "" || *tierSeed != 0 {
		fmt.Fprintln(os.Stderr, "kvfront: -tier-members/-tier-seed need -tier-id")
		os.Exit(2)
	}

	front, err := kvstore.NewFrontend(kvstore.FrontendConfig{
		BackendAddrs:  addrs,
		Replication:   *repl,
		PartitionSeed: *seed,
		Cache:         fc,
		Selection:     kvstore.Selection(*selection),
		Client: kvstore.ClientConfig{
			DialTimeout:  *dialTimeout,
			ReadTimeout:  *readTimeout,
			WriteTimeout: *writeTimeout,
			MaxRetries:   *retries,
			MaxIdleConns: *poolSize,
		},
		Health: kvstore.HealthConfig{
			FailureThreshold: *breakerFails,
			ProbeInterval:    *probeEvery,
		},
		Overload: overload.Limits{
			MaxInflight:   *maxInflight,
			MaxConns:      *maxConns,
			RateLimit:     *rateLimit,
			RateBurst:     *rateBurst,
			AdmissionWait: *admitWait,
		},
		RetryBudgetMax:   *retryBudget,
		RetryBudgetRatio: *budgetRatio,
		IdleTimeout:      *idleTimeout,
		WriteQuorum:      *writeQuorum,
		HintDir:          *hintDir,
		HintLimit:        *hintLimit,
		RepairInterval:   *repairEvery,
		RepairRate:       *repairRate,
		Membership:       kvstore.MembershipConfig{AbortAfter: *joinAbort},
		Provision: kvstore.ProvisionConfig{
			Items:     *items,
			KPrime:    *kprime,
			KOverride: *kOverride,
		},
		Partitioner: partition.Kind(*partitioner),
		Tier:        tier,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvfront:", err)
		os.Exit(2)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvfront:", err)
		os.Exit(2)
	}
	log.Printf("kvfront listening on %s, %d backends, d=%d, cache=%s/%d (%d shard(s))",
		l.Addr(), len(addrs), *repl, *cacheKind, size, shards)
	if tier != nil {
		log.Printf("kvfront: tier member %d of %v (public tier seed %#x)", *tierID, tier.Members, *tierSeed)
	}

	if *admin != "" {
		// StartAdminWith mounts the rotation and membership control verbs
		// (POST /rotate, /join, /drain; GET /rotation, /membership) next
		// to the scrape surface — bind -admin to loopback or an internal
		// interface only.
		adminSrv, adminAddr, err := kvstore.StartAdminWith(*admin, front.Metrics(), map[string]interface{}{
			"role": "frontend", "addr": l.Addr().String(),
			"backends": addrs, "replication": *repl,
			"cache": *cacheKind, "cache_size": size, "cache_shards": shards,
		}, front.AdminHandlers())
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvfront:", err)
			os.Exit(2)
		}
		defer adminSrv.Close()
		log.Printf("kvfront admin on http://%s", adminAddr)
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("kvfront shutting down")
		front.Close()
	}()

	if err := front.Serve(l); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatal("kvfront: ", err)
	}
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
