// Command secsim runs one simulation scenario and prints the aggregate:
// normalized max load (mean, max over runs, 95% CI), cached fraction, and
// the Eq. 10 bound for comparison.
//
// Usage:
//
//	secsim -n 1000 -d 3 -m 100000 -c 200 -workload adversarial -x 201
//	secsim -n 1000 -d 3 -m 100000 -c 100 -workload zipf -zipf-s 1.01
//	secsim -n 1000 -d 3 -m 100000 -c 100 -workload uniform -policy split
package main

import (
	"flag"
	"fmt"
	"os"

	"securecache/internal/cluster"
	"securecache/internal/core"
	"securecache/internal/partition"
	"securecache/internal/sim"
	"securecache/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "number of back-end nodes")
		d        = flag.Int("d", 3, "replication factor")
		m        = flag.Int("m", 100000, "number of items stored")
		c        = flag.Int("c", 200, "front-end cache size (perfect cache)")
		rate     = flag.Float64("rate", 100000, "client query rate R (qps)")
		runs     = flag.Int("runs", 200, "independent runs (fresh partition each)")
		seed     = flag.Uint64("seed", 2013, "root seed")
		kind     = flag.String("workload", "adversarial", "workload: adversarial | uniform | zipf")
		x        = flag.Int("x", 0, "adversarial: number of queried keys (0 = theory-optimal)")
		zipfS    = flag.Float64("zipf-s", 1.01, "zipf exponent")
		policy   = flag.String("policy", "least-loaded", "replica policy: least-loaded | random | split")
		partKind = flag.String("partitioner", "hash", "partitioner: hash | ring | rendezvous")
		kOver    = flag.Float64("k", 1.2, "bound constant k for the Eq. 10 reference line")
	)
	flag.Parse()

	var dist workload.Distribution
	switch *kind {
	case "adversarial":
		if *x == 0 {
			p := core.Params{Nodes: *n, Replication: *d, Items: *m, CacheSize: *c, KOverride: *kOver}
			*x = p.BestAdversarialX()
			if *x < 2 {
				*x = 2
			}
		}
		dist = workload.NewAdversarial(*m, *x, 0)
	case "uniform":
		dist = workload.NewUniform(*m, *m)
	case "zipf":
		dist = workload.NewZipf(*m, *zipfS)
	default:
		fmt.Fprintf(os.Stderr, "secsim: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	agg, err := sim.Run(sim.Scenario{
		Nodes:       *n,
		Replication: *d,
		CacheSize:   *c,
		Dist:        dist,
		Rate:        *rate,
		Runs:        *runs,
		Seed:        *seed,
		Policy:      cluster.Policy(*policy),
		Partitioner: partition.Kind(*partKind),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(2)
	}

	fmt.Printf("scenario: n=%d d=%d m=%d c=%d workload=%s rate=%g runs=%d policy=%s partitioner=%s\n",
		*n, *d, *m, *c, *kind, *rate, *runs, *policy, *partKind)
	fmt.Printf("  cached fraction of rate : %.4f\n", agg.CachedFraction)
	fmt.Printf("  normalized max load     : mean %.4f ± %.4f (95%% CI), max over runs %.4f\n",
		agg.NormMax.Mean(), agg.NormMax.CI95(), agg.MaxOfNormMax())
	fmt.Printf("  absolute max load       : mean %.1f qps, max %.1f qps (even share %.1f)\n",
		agg.MaxLoad.Mean(), agg.MaxLoad.Max(), *rate/float64(*n))
	if *kind == "adversarial" && *x > *c && *x >= 2 {
		p := core.Params{Nodes: *n, Replication: *d, Items: *m, CacheSize: *c, KOverride: *kOver}
		fmt.Printf("  Eq.10 bound (k=%g)      : %.4f\n", *kOver, p.BoundNormalizedMaxLoad(*x))
	}
	verdict := "INEFFECTIVE (gain <= 1)"
	if agg.MaxOfNormMax() > 1 {
		verdict = "EFFECTIVE (gain > 1)"
	}
	fmt.Printf("  attack verdict          : %s\n", verdict)
}
