// Command sectier benchmarks the distributed frontend cache tier
// against the single-frontend baseline on an in-process cluster: the
// same backends, the same provisioned cache budget, first behind one
// kvfront and then split across k tier members driven by the
// power-of-two-choices client.
//
// It measures three things the tier design promises:
//
//   - read throughput scales with k (the tier members serve hits in
//     parallel instead of queuing behind one frontend);
//   - a topology-aware attack — every query aimed at keys that share
//     one victim frontend as a candidate — still spreads across the
//     tier (normalized max frontend load near 1, not near k/2);
//   - the backends stay behind the Eq. 10 bound throughout, because
//     the tier mapping is independent of the secret backend partition.
//
// Usage:
//
//	sectier -n 8 -d 3 -k 3 -m 5000 -json BENCH_disttier.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"securecache/internal/cache"
	"securecache/internal/kvstore"
	"securecache/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 8, "number of backends")
		d        = flag.Int("d", 3, "replication factor")
		k        = flag.Int("k", 3, "tier width (frontends)")
		m        = flag.Int("m", 5000, "number of keys")
		reads    = flag.Int("reads", 30000, "reads per measured phase")
		workers  = flag.Int("workers", 8, "concurrent reader goroutines")
		jsonPath = flag.String("json", "", "also write the bench report to this file")
	)
	flag.Parse()

	report, err := runBench(benchConfig{
		Nodes: *n, Replication: *d, Frontends: *k, Keys: *m,
		Reads: *reads, Workers: *workers,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sectier:", err)
		os.Exit(2)
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sectier:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sectier:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

type benchConfig struct {
	Nodes       int
	Replication int
	Frontends   int
	Keys        int
	Reads       int
	Workers     int
}

type benchReport struct {
	Nodes       int `json:"nodes"`
	Replication int `json:"replication"`
	Frontends   int `json:"frontends"`
	Keys        int `json:"keys"`
	CStar       int `json:"cstar"`
	CacheShare  int `json:"tier_cache_share"`

	SingleReadOps float64 `json:"single_read_ops_per_sec"`
	TierReadOps   float64 `json:"tier_read_ops_per_sec"`
	TierSpeedup   float64 `json:"tier_speedup"`

	AttackHotKeys      int     `json:"attack_hot_keys"`
	AttackReads        int     `json:"attack_reads"`
	AttackFailures     uint64  `json:"attack_failures"`
	AttackFrontNormMax float64 `json:"attack_front_norm_max"`
	AttackBackNormMax  float64 `json:"attack_back_norm_max"`
}

func runBench(cfg benchConfig, w io.Writer) (benchReport, error) {
	report := benchReport{
		Nodes: cfg.Nodes, Replication: cfg.Replication,
		Frontends: cfg.Frontends, Keys: cfg.Keys,
	}
	const (
		secretSeed = 0x5EED0008
		tierSeed   = 0x7153
	)
	provision := kvstore.ProvisionConfig{Items: cfg.Keys, KOverride: 1.2}

	// Phase 1: single-frontend baseline, same backends and provision.
	single, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes: cfg.Nodes, Replication: cfg.Replication,
		PartitionSeed: secretSeed,
		Cache:         cache.NewLRU(256),
		Provision:     provision,
	})
	if err != nil {
		return report, err
	}
	client := kvstore.NewClient(single.FrontendAddr)
	for i := 0; i < cfg.Keys; i++ {
		if err := client.Set(workload.KeyName(i), []byte("payload")); err != nil {
			client.Close()
			single.Close()
			return report, fmt.Errorf("preload (single): %w", err)
		}
	}
	singleOps, _ := measure(cfg, func(key string) error {
		_, err := client.Get(key)
		return err
	})
	client.Close()
	single.Close()
	report.SingleReadOps = singleOps
	fmt.Fprintf(w, "single frontend: %.0f reads/s (n=%d d=%d m=%d)\n",
		singleOps, cfg.Nodes, cfg.Replication, cfg.Keys)

	// Phase 2: the tier — same backends-per-key placement (same secret
	// seed), cache budget split across k members by CacheShare.
	tcl, err := kvstore.StartTierCluster(kvstore.TierLocalConfig{
		Nodes: cfg.Nodes, Replication: cfg.Replication, Frontends: cfg.Frontends,
		PartitionSeed: secretSeed, TierSeed: tierSeed,
		NewCache:  func() cache.Cache { return cache.NewLRU(256) },
		Provision: provision,
	})
	if err != nil {
		return report, err
	}
	defer tcl.Close()
	st := tcl.Frontends[0].TierStatus()
	report.CacheShare = st.CacheShare
	report.CStar = tcl.Frontends[0].MembershipStatus().CStar
	for i := 0; i < cfg.Keys; i++ {
		if err := tcl.Client.Set(workload.KeyName(i), []byte("payload")); err != nil {
			return report, fmt.Errorf("preload (tier): %w", err)
		}
	}
	tierOps, _ := measure(cfg, func(key string) error {
		_, err := tcl.Client.Get(key)
		return err
	})
	report.TierReadOps = tierOps
	if singleOps > 0 {
		report.TierSpeedup = tierOps / singleOps
	}
	fmt.Fprintf(w, "tier of %d:      %.0f reads/s (%.2fx; c*=%d split to %d per member)\n",
		cfg.Frontends, tierOps, report.TierSpeedup, report.CStar, report.CacheShare)

	// Phase 3: topology-aware attack. The adversary knows the public
	// tier mapping and aims everything at keys whose candidate set
	// includes frontend 0.
	var hot []string
	for i := 0; i < cfg.Keys && len(hot) < cfg.Keys/2; i++ {
		key := workload.KeyName(i)
		if a, b := tcl.Client.Candidates(key); a == 0 || b == 0 {
			hot = append(hot, key)
		}
	}
	report.AttackHotKeys = len(hot)
	frontBefore := tcl.FrontendRequestCounts()
	backBefore := tcl.BackendRequestCounts()
	var failures atomic.Uint64
	_, attackReads := measureStream(cfg, hot, func(key string) {
		if _, err := tcl.Client.Get(key); err != nil {
			failures.Add(1)
		}
	})
	report.AttackReads = attackReads
	report.AttackFailures = failures.Load()
	report.AttackFrontNormMax = normMaxDelta(tcl.FrontendRequestCounts(), frontBefore)
	report.AttackBackNormMax = normMaxDelta(tcl.BackendRequestCounts(), backBefore)
	fmt.Fprintf(w, "topology-aware attack: %d reads over %d hot keys, %d failures\n",
		report.AttackReads, report.AttackHotKeys, report.AttackFailures)
	fmt.Fprintf(w, "  normalized max frontend load %.3f (one-choice would near %.1f)\n",
		report.AttackFrontNormMax, float64(cfg.Frontends)/2)
	fmt.Fprintf(w, "  normalized max backend load  %.3f\n", report.AttackBackNormMax)
	return report, nil
}

// measure drives cfg.Reads uniform GETs from cfg.Workers goroutines and
// returns the aggregate ops/sec plus the issued count.
func measure(cfg benchConfig, get func(string) error) (float64, int) {
	perWorker := cfg.Reads / cfg.Workers
	if perWorker < 1 {
		perWorker = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.NewUniform(cfg.Keys, cfg.Keys), seed)
			for i := 0; i < perWorker; i++ {
				get(workload.KeyName(gen.Next()))
			}
		}(uint64(w) + 11)
	}
	wg.Wait()
	total := perWorker * cfg.Workers
	return float64(total) / time.Since(start).Seconds(), total
}

// measureStream round-robins the hot set from cfg.Workers goroutines.
func measureStream(cfg benchConfig, keys []string, hit func(string)) (float64, int) {
	perWorker := cfg.Reads / cfg.Workers
	if perWorker < 1 {
		perWorker = 1
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				hit(keys[(off+i)%len(keys)])
			}
		}(w * len(keys) / cfg.Workers)
	}
	wg.Wait()
	total := perWorker * cfg.Workers
	return float64(total) / time.Since(start).Seconds(), total
}

// normMaxDelta returns the normalized max of after-before deltas over
// the slots that saw traffic at all (crashed/idle slots excluded from
// the width would skew the share, so the full width is kept).
func normMaxDelta(after, before []uint64) float64 {
	var total, max uint64
	for i := range after {
		delta := after[i] - before[i]
		total += delta
		if delta > max {
			max = delta
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(len(after)))
}
