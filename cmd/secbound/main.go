// Command secbound is the cache-provisioning calculator: given a cluster
// shape (n nodes, replication d, m items) and optionally a current cache
// size c, it prints the paper's provisioning verdict — the required cache
// size c* = ceil(n·k + 1), whether the configured cache stops every
// adversarial access pattern, and the worst-case attack gain bound.
//
// Usage:
//
//	secbound -n 1000 -d 3 -m 100000 -c 200
//	secbound -n 1000 -d 3 -m 100000 -c 2000 -k 1.2
package main

import (
	"flag"
	"fmt"
	"os"

	"securecache/internal/core"
)

func main() {
	var (
		n      = flag.Int("n", 1000, "number of back-end nodes")
		d      = flag.Int("d", 3, "replication factor")
		m      = flag.Int("m", 100000, "number of items stored")
		c      = flag.Int("c", 0, "current front-end cache size")
		k      = flag.Float64("k", 0, "override the bound constant k (paper fits 1.2); 0 = gap + k'")
		kPrime = flag.Float64("kprime", 0, "additive constant k' of k = lnln(n)/ln(d) + k'; 0 = calibrated default")
	)
	flag.Parse()

	p := core.Params{
		Nodes:       *n,
		Replication: *d,
		Items:       *m,
		CacheSize:   *c,
		KOverride:   *k,
		KPrime:      *kPrime,
	}
	report, err := p.Provision()
	if err != nil {
		fmt.Fprintln(os.Stderr, "secbound:", err)
		os.Exit(2)
	}
	fmt.Println(report)
	fmt.Printf("\n  gap term ln(ln n)/ln(d)  = %.4f\n", report.Gap)
	fmt.Printf("  bound constant k         = %.4f\n", report.K)
	fmt.Printf("  required cache size c*   = %d entries (O(n): %.2f per node)\n",
		report.RequiredCacheSize, float64(report.RequiredCacheSize)/float64(*n))
	fmt.Printf("  adversary's best x       = %d keys\n", report.BestX)
	if report.CurrentEffective {
		fmt.Printf("  verdict: PROTECTED — no access pattern pushes any node above the even share (gain bound %.4f <= 1)\n",
			float64(report.WorstGainAtCurrent))
	} else {
		fmt.Printf("  verdict: VULNERABLE — an adversary querying %d keys achieves gain up to %.4f (> 1)\n",
			report.BestX, float64(report.WorstGainAtCurrent))
		fmt.Printf("  fix: grow the front-end cache from %d to %d entries\n", *c, report.RequiredCacheSize)
	}
}
