// Command kvnode runs one back-end node of the kvstore: a
// replicated-partition storage server speaking the securecache wire
// protocol (Get/Set/Del/MGet/Scan plus versioned compare-and-swap —
// OpCas frames carry an expected version and return the current one on
// conflict, so read-modify-write cycles stay lost-update-free across
// the quorum). By default state lives in memory only; -data-dir attaches
// a write-ahead log so a crashed node replays back to its exact
// pre-crash keyset instead of rejoining empty and being refilled over
// the network.
//
// Usage:
//
//	kvnode -id 0 -listen 127.0.0.1:7001 -data-dir /var/lib/kvnode0
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"securecache/internal/kvstore"
	"securecache/internal/overload"
	"securecache/internal/wal"
)

func main() {
	var (
		id       = flag.Int("id", 0, "node ID (for logs/stats)")
		listen   = flag.String("listen", "127.0.0.1:7001", "listen address")
		admin    = flag.String("admin", "", "optional HTTP admin address (/healthz, /metrics, /info)")
		snapshot = flag.String("snapshot", "", "snapshot file: restored at startup if present, written on shutdown")
		snapEach = flag.Duration("snapshot-interval", 0, "also write the snapshot periodically at this interval (0 = shutdown only; needs -snapshot)")
		idle     = flag.Duration("idle-timeout", 0, "drop connections idle longer than this (0 = keep forever)")

		dataDir  = flag.String("data-dir", "", "write-ahead log directory: replayed at startup, every write logged (empty = memory-only)")
		walSeg   = flag.Int64("wal-segment-bytes", 0, "seal WAL segments at this size (0 = default 64MiB)")
		walSync  = flag.Duration("wal-sync-interval", 0, "background WAL fsync cadence (0 = default 500ms)")
		walFsync = flag.Bool("wal-sync-every-append", false, "fsync the WAL after every write (power-loss-proof, slow)")

		joinVia   = flag.String("join-via", "", "frontend ADMIN address (host:port): after the node is serving, POST /join there to enter the cluster live")
		advertise = flag.String("advertise", "", "address to register with -join-via (default: the bound listen address)")

		maxInflight = flag.Int("max-inflight", 0, "shed requests beyond this many in flight with BUSY (0 = unlimited)")
		maxConns    = flag.Int("max-conns", 0, "reject connections beyond this many at accept (0 = unlimited)")
		rateLimit   = flag.Float64("rate-limit", 0, "shed requests beyond this many per second (0 = unlimited)")
		rateBurst   = flag.Float64("rate-burst", 0, "rate-limit burst size (0 = derived from the rate)")
		admitWait   = flag.Duration("admission-wait", 0, "how long a request may wait for an in-flight slot before being shed (0 = default, negative = none)")
	)
	flag.Parse()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kvnode:", err)
		os.Exit(2)
	}
	node := kvstore.NewBackendWithLimits(*id, overload.Limits{
		MaxInflight:   *maxInflight,
		MaxConns:      *maxConns,
		RateLimit:     *rateLimit,
		RateBurst:     *rateBurst,
		AdmissionWait: *admitWait,
	})
	node.SetIdleTimeout(*idle)
	log.Printf("kvnode %d listening on %s", *id, l.Addr())

	walReplayed := false
	if *dataDir != "" {
		recovered, err := node.OpenData(*dataDir, wal.Options{
			SegmentBytes:    *walSeg,
			SyncInterval:    *walSync,
			SyncEveryAppend: *walFsync,
		})
		if err != nil {
			// Unlike a corrupt directory (quarantined inside OpenData), an
			// open failure means the node cannot honor -data-dir at all:
			// refuse to run rather than silently serve without durability.
			fmt.Fprintln(os.Stderr, "kvnode:", err)
			os.Exit(2)
		}
		st := node.WAL().Stats()
		switch {
		case recovered:
			log.Printf("kvnode %d: data dir %s was corrupt — quarantined to %s.corrupt, starting empty for repair",
				*id, *dataDir, *dataDir)
		case st.Replayed > 0:
			walReplayed = true
			log.Printf("kvnode %d: replayed %d keys from %s (%d torn records truncated, %d hint loads, %d hint fallbacks)",
				*id, st.Replayed, *dataDir, st.TornTruncations, st.HintLoads, st.HintFallbacks)
		default:
			log.Printf("kvnode %d: opened empty data dir %s", *id, *dataDir)
		}
	}

	if *snapshot != "" && walReplayed {
		// The WAL holds every write the snapshot does and more (it sees
		// each mutation, the snapshot only period boundaries): the log is
		// the source of truth once it has content. The snapshot file keeps
		// being written (shutdown/periodic) as an operator artifact.
		log.Printf("kvnode %d: WAL replayed; skipping snapshot restore from %s", *id, *snapshot)
	} else if *snapshot != "" {
		// With an attached (empty) WAL this load is also the migration
		// path: restored entries write through into the log, so the next
		// boot replays them without the snapshot.
		switch err := node.LoadSnapshot(*snapshot); {
		case err == nil:
			log.Printf("kvnode %d restored %d keys from %s", *id, node.Store().Len(), *snapshot)
		case os.IsNotExist(err):
			log.Printf("kvnode %d: no snapshot at %s, starting empty", *id, *snapshot)
		default:
			// A corrupt or truncated snapshot must not keep the node down:
			// an empty replica rejoins and is refilled by hinted handoff
			// and anti-entropy, while a crash-looping one serves nobody.
			log.Printf("kvnode %d: snapshot %s unreadable (%v), starting empty", *id, *snapshot, err)
		}
	}
	if *snapEach > 0 {
		if *snapshot == "" {
			fmt.Fprintln(os.Stderr, "kvnode: -snapshot-interval needs -snapshot")
			os.Exit(2)
		}
		stop := node.StartSnapshots(*snapshot, *snapEach)
		defer stop()
		log.Printf("kvnode %d: snapshotting to %s every %s", *id, *snapshot, *snapEach)
	}

	if *admin != "" {
		adminSrv, adminAddr, err := kvstore.StartAdmin(*admin, node.Metrics(),
			map[string]interface{}{"role": "backend", "id": *id, "addr": l.Addr().String()})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kvnode:", err)
			os.Exit(2)
		}
		defer adminSrv.Close()
		log.Printf("kvnode %d admin on http://%s", *id, adminAddr)
	}

	if *joinVia != "" {
		selfAddr := *advertise
		if selfAddr == "" {
			selfAddr = l.Addr().String()
		}
		// Join AFTER the listener is up (the frontend pings the node
		// before staging it) and retry briefly: the frontend may still be
		// finishing a previous view change (409).
		go joinCluster(*joinVia, selfAddr, *id)
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("kvnode %d shutting down", *id)
		if *snapshot != "" {
			if err := node.SaveSnapshot(*snapshot); err != nil {
				log.Printf("kvnode %d: snapshot: %v", *id, err)
			} else {
				log.Printf("kvnode %d: snapshot saved to %s", *id, *snapshot)
			}
		}
		node.Close()
	}()

	if err := node.Serve(l); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatalf("kvnode %d: %v", *id, err)
	}
}

// joinCluster asks the frontend's admin surface to admit this node,
// retrying while a previous view change is still migrating (409).
func joinCluster(adminAddr, selfAddr string, id int) {
	target := fmt.Sprintf("http://%s/join?addr=%s", adminAddr, url.QueryEscape(selfAddr))
	client := &http.Client{Timeout: 10 * time.Second}
	for attempt := 0; attempt < 60; attempt++ {
		resp, err := client.Post(target, "", nil)
		if err != nil {
			log.Printf("kvnode %d: join via %s: %v (will retry)", id, adminAddr, err)
		} else {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				log.Printf("kvnode %d: joined cluster via %s: %s", id, adminAddr, strings.TrimSpace(string(body)))
				return
			case http.StatusConflict:
				log.Printf("kvnode %d: join via %s: cluster busy with another change (will retry)", id, adminAddr)
			default:
				log.Printf("kvnode %d: join via %s: %s: %s", id, adminAddr, resp.Status, strings.TrimSpace(string(body)))
				return
			}
		}
		time.Sleep(2 * time.Second)
	}
	log.Printf("kvnode %d: giving up joining via %s", id, adminAddr)
}
