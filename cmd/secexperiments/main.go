// Command secexperiments regenerates the paper's evaluation: one table
// per figure (3a, 3b, 4, 5a, 5b) plus the ablations, printed as aligned
// text or written as CSV files.
//
// Usage:
//
//	secexperiments                       # all figures, paper-size, text
//	secexperiments -fig 3a               # one figure
//	secexperiments -small                # scaled-down (fast) parameters
//	secexperiments -csv results/         # write CSVs instead of text
//	secexperiments -fig ablations        # replication/policy/partitioner/cache ablations
//	secexperiments -fig disttier         # two-layer frontend-tier experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"securecache/internal/experiments"
	"securecache/internal/sim"
)

type figure struct {
	name string
	run  func(experiments.Config) (*sim.Table, error)
	// labels optionally maps the first column's integer values to names.
	labels []string
}

func main() {
	var (
		figFlag = flag.String("fig", "all", "which figure: 3a | 3b | 4 | 5a | 5b | disttier | critical | ablations | all")
		small   = flag.Bool("small", false, "use scaled-down parameters (fast)")
		csvDir  = flag.String("csv", "", "write CSV files into this directory instead of printing text")
		runs    = flag.Int("runs", 0, "override runs per point (0 = config default)")
		seed    = flag.Uint64("seed", 0, "override root seed (0 = config default)")
	)
	flag.Parse()

	cfg := experiments.Default()
	if *small {
		cfg = experiments.Small()
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	figures := []figure{
		{name: "fig3a", run: experiments.Fig3a},
		{name: "fig3b", run: experiments.Fig3b},
		{name: "fig4", run: experiments.Fig4},
		{name: "fig5a", run: experiments.Fig5a},
		{name: "fig5b", run: experiments.Fig5b},
	}
	ablations := []figure{
		{name: "ablation_replication", run: func(c experiments.Config) (*sim.Table, error) {
			return experiments.ReplicationSweep(c, nil)
		}},
		{name: "ablation_policy", run: experiments.PolicyAblation, labels: experiments.PolicyNames},
		{name: "ablation_partitioner", run: experiments.PartitionerAblation, labels: experiments.PartitionerNames},
		{name: "ablation_cachepolicy", run: func(c experiments.Config) (*sim.Table, error) {
			return experiments.CachePolicyAblation(c, 200000)
		}, labels: experiments.CachePolicyNames},
		{name: "latency_under_attack", run: func(c experiments.Config) (*sim.Table, error) {
			return experiments.LatencyUnderAttack(c, 10)
		}, labels: experiments.LatencyScenarioNames},
		{name: "baseline_comparison", run: func(c experiments.Config) (*sim.Table, error) {
			return experiments.ReplicationBenefit(c, nil)
		}},
		{name: "ablation_adaptive", run: func(c experiments.Config) (*sim.Table, error) {
			return experiments.AdaptiveAttackAblation(c, 200000)
		}, labels: experiments.AdaptiveAttackNames},
		{name: "disttier", run: experiments.TwoLayer},
	}

	var selected []figure
	switch strings.ToLower(*figFlag) {
	case "all":
		selected = append(append(selected, figures...), ablations...)
	case "ablations":
		selected = ablations
	case "3a":
		selected = figures[0:1]
	case "3b":
		selected = figures[1:2]
	case "4":
		selected = figures[2:3]
	case "5a":
		selected = figures[3:4]
	case "5b":
		selected = figures[4:5]
	case "disttier":
		selected = []figure{{name: "disttier", run: experiments.TwoLayer}}
	case "critical":
		runCritical(cfg)
		return
	case "calibrate":
		runCalibrate(cfg)
		return
	default:
		fmt.Fprintf(os.Stderr, "secexperiments: unknown figure %q\n", *figFlag)
		os.Exit(2)
	}

	for _, f := range selected {
		start := time.Now()
		tbl, err := f.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secexperiments: %s: %v\n", f.name, err)
			os.Exit(1)
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, f.name, tbl); err != nil {
				fmt.Fprintf(os.Stderr, "secexperiments: %s: %v\n", f.name, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s.csv (%s)\n", f.name, time.Since(start).Round(time.Millisecond))
			continue
		}
		fmt.Print(tbl)
		if len(f.labels) > 0 {
			fmt.Printf("  (first column indexes: %s)\n", strings.Join(f.labels, ", "))
		}
		fmt.Printf("  [%s]\n\n", time.Since(start).Round(time.Millisecond))
	}
}

func runCalibrate(cfg experiments.Config) {
	// Fit the Eq. 8 constant k the way the paper did before fixing 1.2:
	// measure the realized balls-into-bins gap in the heavily loaded
	// regime.
	res, err := experiments.FitK(cfg.Nodes, cfg.Replication, 100, cfg.Runs, cfg.Seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secexperiments:", err)
		os.Exit(1)
	}
	fmt.Printf("calibrating k for n=%d d=%d (100 balls/bin, %d runs):\n", cfg.Nodes, cfg.Replication, cfg.Runs)
	fmt.Printf("  theory gap lnln(n)/ln(d) : %.4f\n", res.GapTheory)
	fmt.Printf("  observed gap (mean/max)  : %.4f / %.4f\n", res.GapMeanObserved, res.GapMaxObserved)
	fmt.Printf("  fitted k (mean/max stat) : %.4f / %.4f   (paper uses k=%g)\n", res.KFitMean, res.KFitMax, cfg.K)
}

func runCritical(cfg experiments.Config) {
	empirical, analytic, err := experiments.CriticalPoint(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secexperiments:", err)
		os.Exit(1)
	}
	fmt.Printf("critical cache size: empirical=%d analytic c*=%d (n=%d d=%d k=%g)\n",
		empirical, analytic, cfg.Nodes, cfg.Replication, cfg.K)
}

func writeCSV(dir, name string, tbl *sim.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	if err := tbl.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
