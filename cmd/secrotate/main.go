// Command secrotate is the operator tool for live mapping rotation.
//
// Remote mode triggers (and optionally watches) a rotation on a running
// frontend through its admin surface:
//
//	secrotate -admin 127.0.0.1:8000            # rotate to a fresh random seed
//	secrotate -admin 127.0.0.1:8000 -wait      # ...and block until it commits
//	secrotate -admin 127.0.0.1:8000 -status    # just print rotation status
//
// Local mode benchmarks the rotation machinery on an in-process cluster
// and reports migration throughput and the read-latency cost of the
// dual-epoch window — the baseline EXPERIMENTS.md records:
//
//	secrotate -local -n 8 -d 3 -m 5000 -json BENCH_rotation.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"securecache/internal/kvstore"
	"securecache/internal/stats"
	"securecache/internal/workload"
)

func main() {
	var (
		admin  = flag.String("admin", "", "frontend admin address (remote mode)")
		seed   = flag.String("seed", "", "explicit new partition seed (default: frontend draws a random one)")
		wait   = flag.Bool("wait", false, "block until the triggered rotation commits")
		status = flag.Bool("status", false, "print rotation status instead of rotating")

		local    = flag.Bool("local", false, "benchmark rotation on an in-process cluster")
		n        = flag.Int("n", 8, "local: number of backends")
		d        = flag.Int("d", 3, "local: replication factor")
		m        = flag.Int("m", 5000, "local: number of keys")
		rate     = flag.Float64("rate", -1, "local: migration rate limit in keys/sec (negative = unlimited)")
		jsonPath = flag.String("json", "", "local: also write the bench report to this file")
	)
	flag.Parse()

	switch {
	case *local:
		report, err := runLocalBench(localBenchConfig{
			Nodes: *n, Replication: *d, Keys: *m, Rate: *rate,
		}, os.Stdout)
		if err != nil {
			fatal(err)
		}
		if *jsonPath != "" {
			blob, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
	case *admin != "":
		client := &http.Client{Timeout: 5 * time.Second}
		if *status {
			st, err := fetchStatus(client, *admin)
			if err != nil {
				fatal(err)
			}
			printStatus(st)
			return
		}
		if err := rotateRemote(client, *admin, *seed, *wait); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "secrotate: need -admin (remote) or -local (bench); see -h")
		os.Exit(2)
	}
}

// rotateRemote POSTs /rotate and, with wait, polls /rotation until the
// migration commits.
func rotateRemote(client *http.Client, admin, seed string, wait bool) error {
	url := "http://" + admin + "/rotate"
	if seed != "" {
		url += "?seed=" + seed
	}
	resp, err := client.Post(url, "", nil)
	if err != nil {
		return err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("rotate: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var report kvstore.RotationReport
	if err := json.Unmarshal(body, &report); err != nil {
		return fmt.Errorf("rotate: bad report: %w", err)
	}
	fmt.Printf("rotation started: epoch %d, ~%.0f%% of keys expected to move\n",
		report.Epoch, 100*report.ExpectedMovedFraction)
	if !wait {
		return nil
	}
	for {
		time.Sleep(200 * time.Millisecond)
		st, err := fetchStatus(client, admin)
		if err != nil {
			return err
		}
		if !st.Rotating && st.Epoch >= report.Epoch {
			fmt.Printf("rotation committed: epoch %d, %d keys migrated\n", st.Epoch, st.Moved)
			return nil
		}
		fmt.Printf("  migrating... %d keys moved\n", st.Moved)
	}
}

func fetchStatus(client *http.Client, admin string) (kvstore.RotationStatus, error) {
	var st kvstore.RotationStatus
	resp, err := client.Get("http://" + admin + "/rotation")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("rotation status: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
	return st, err
}

func printStatus(st kvstore.RotationStatus) {
	state := "idle"
	if st.Rotating {
		state = "rotating"
	}
	fmt.Printf("epoch %d (%s): %d keys moved, %d rotations completed\n",
		st.Epoch, state, st.Moved, st.Completed)
}

// localBenchConfig parameterizes runLocalBench.
type localBenchConfig struct {
	Nodes       int
	Replication int
	Keys        int
	// Rate limits migration moves/sec (negative = unlimited — measures the
	// machinery's raw throughput rather than the limiter).
	Rate float64
}

// benchReport is the recorded baseline: migration throughput plus what
// the dual-epoch read window costs a concurrent reader.
type benchReport struct {
	Nodes             int     `json:"nodes"`
	Replication       int     `json:"replication"`
	Keys              int     `json:"keys"`
	Moved             uint64  `json:"keys_moved"`
	MigrationSeconds  float64 `json:"migration_seconds"`
	KeysPerSecond     float64 `json:"keys_per_second"`
	BaselineReadMean  float64 `json:"baseline_read_micros_mean"`
	BaselineReadP99   float64 `json:"baseline_read_micros_p99"`
	RotationReadMean  float64 `json:"rotation_read_micros_mean"`
	RotationReadP99   float64 `json:"rotation_read_micros_p99"`
	AddedReadMean     float64 `json:"added_read_micros_mean"`
	RotationReadCount int64   `json:"rotation_read_count"`
}

// runLocalBench boots a cluster, loads the key space, measures steady-state
// read latency, then rotates the mapping while a reader keeps hammering the
// keys — recording how fast keys migrate and how much the dual-epoch window
// adds to reads. Progress goes to w.
func runLocalBench(cfg localBenchConfig, w io.Writer) (benchReport, error) {
	report := benchReport{Nodes: cfg.Nodes, Replication: cfg.Replication, Keys: cfg.Keys}
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes:         cfg.Nodes,
		Replication:   cfg.Replication,
		PartitionSeed: 0x5EED0001,
		Rotation:      kvstore.RotationConfig{Rate: cfg.Rate},
	})
	if err != nil {
		return report, err
	}
	defer lc.Close()
	front := lc.Frontend

	fmt.Fprintf(w, "loading %d keys into %d nodes (d=%d)...\n", cfg.Keys, cfg.Nodes, cfg.Replication)
	for k := 0; k < cfg.Keys; k++ {
		if err := front.Set(workload.KeyName(k), []byte("payload")); err != nil {
			return report, fmt.Errorf("preload key %d: %w", k, err)
		}
	}

	// Steady-state read latency: one uniform pass over the key space.
	base, baseP99 := measureReads(front, cfg.Keys, cfg.Keys)
	report.BaselineReadMean = base.Mean()
	report.BaselineReadP99 = baseP99.Value()
	fmt.Fprintf(w, "baseline reads: mean %.0fµs p99≈%.0fµs\n", report.BaselineReadMean, report.BaselineReadP99)

	// Rotate and keep reading until the migration commits; every read in
	// this window pays whatever the dual-epoch path costs.
	start := time.Now()
	if _, err := front.Rotate(0xD00D5EED); err != nil {
		return report, err
	}
	var (
		rot    stats.Summary
		rotP99 = stats.NewP2Quantile(0.99)
		gen    = workload.NewGenerator(workload.NewUniform(cfg.Keys, cfg.Keys), 7)
	)
	for front.RotationStatus().Rotating {
		key := workload.KeyName(gen.Next())
		t0 := time.Now()
		if _, err := front.Get(key); err != nil {
			return report, fmt.Errorf("read during rotation: %w", err)
		}
		us := float64(time.Since(t0).Microseconds())
		rot.Add(us)
		rotP99.Add(us)
	}
	elapsed := time.Since(start)

	st := front.RotationStatus()
	report.Moved = st.Moved
	report.MigrationSeconds = elapsed.Seconds()
	if elapsed > 0 {
		report.KeysPerSecond = float64(st.Moved) / elapsed.Seconds()
	}
	report.RotationReadMean = rot.Mean()
	report.RotationReadP99 = rotP99.Value()
	report.AddedReadMean = rot.Mean() - base.Mean()
	report.RotationReadCount = rot.N()

	fmt.Fprintf(w, "rotation committed in %v: %d keys migrated (%.0f keys/sec)\n",
		elapsed.Round(time.Millisecond), st.Moved, report.KeysPerSecond)
	fmt.Fprintf(w, "reads during rotation: mean %.0fµs p99≈%.0fµs (added mean %.0fµs over %d reads)\n",
		report.RotationReadMean, report.RotationReadP99, report.AddedReadMean, report.RotationReadCount)
	return report, nil
}

// measureReads runs count uniform reads over keys keys and returns the
// latency summary plus a p99 estimate.
func measureReads(front *kvstore.Frontend, keys, count int) (stats.Summary, *stats.P2Quantile) {
	var sum stats.Summary
	p99 := stats.NewP2Quantile(0.99)
	gen := workload.NewGenerator(workload.NewUniform(keys, keys), 3)
	for i := 0; i < count; i++ {
		t0 := time.Now()
		front.Get(workload.KeyName(gen.Next()))
		us := float64(time.Since(t0).Microseconds())
		sum.Add(us)
		p99.Add(us)
	}
	return sum, p99
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secrotate:", err)
	os.Exit(2)
}
