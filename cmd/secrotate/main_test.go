package main

import (
	"io"
	"testing"
)

// TestLocalBench runs the bench end-to-end on a tiny cluster and checks
// the report is internally consistent: the rotation commits, keys
// actually migrate, and the latency fields are populated.
func TestLocalBench(t *testing.T) {
	report, err := runLocalBench(localBenchConfig{
		Nodes:       4,
		Replication: 2,
		Keys:        200,
		Rate:        -1,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if report.Moved == 0 {
		t.Fatal("no keys migrated")
	}
	if report.Moved > uint64(report.Keys) {
		t.Fatalf("moved %d keys out of %d", report.Moved, report.Keys)
	}
	if report.KeysPerSecond <= 0 {
		t.Fatalf("keys_per_second = %v", report.KeysPerSecond)
	}
	if report.MigrationSeconds <= 0 {
		t.Fatalf("migration_seconds = %v", report.MigrationSeconds)
	}
	if report.BaselineReadMean <= 0 {
		t.Fatalf("baseline_read_micros_mean = %v", report.BaselineReadMean)
	}
	if report.RotationReadCount > 0 && report.RotationReadMean <= 0 {
		t.Fatalf("rotation_read_micros_mean = %v with %d reads",
			report.RotationReadMean, report.RotationReadCount)
	}
}
