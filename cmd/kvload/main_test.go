package main

import (
	"os"
	"path/filepath"
	"testing"

	"securecache/internal/trace"
	"securecache/internal/workload"
)

func TestSplitNonEmpty(t *testing.T) {
	cases := map[string][]string{
		"":          nil,
		"a":         {"a"},
		"a,b,c":     {"a", "b", "c"},
		" a , ,b, ": {"a", "b"},
	}
	for in, want := range cases {
		got := splitNonEmpty(in)
		if len(got) != len(want) {
			t.Errorf("splitNonEmpty(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("splitNonEmpty(%q)[%d] = %q, want %q", in, i, got[i], want[i])
			}
		}
	}
}

func TestBuildKeysWorkloads(t *testing.T) {
	for _, kind := range []string{"adversarial", "uniform", "zipf"} {
		keys, err := buildKeys("", kind, 100, 0, 1.01, 500, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(keys) != 500 {
			t.Fatalf("%s: %d keys", kind, len(keys))
		}
		for _, k := range keys {
			if k < 0 || k >= 100 {
				t.Fatalf("%s: key %d out of range", kind, k)
			}
		}
	}
	if _, err := buildKeys("", "bogus", 100, 0, 1, 10, 1); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestBuildKeysFromTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.bin")
	tr := trace.Record(workload.NewUniform(50, 50), 200, 3)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	keys, err := buildKeys(path, "ignored", 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 200 {
		t.Fatalf("replayed %d keys, want 200", len(keys))
	}
	if _, err := buildKeys(filepath.Join(dir, "absent.bin"), "", 0, 0, 0, 0, 0); err == nil {
		t.Error("missing trace accepted")
	}
}

func TestBuildKeysAdversarialDefaultX(t *testing.T) {
	keys, err := buildKeys("", "adversarial", 1000, 0, 0, 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Default x = m/10 + 1 = 101 distinct keys.
	seen := map[int]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if len(seen) > 101 {
		t.Errorf("adversarial default queried %d distinct keys, want <= 101", len(seen))
	}
}
