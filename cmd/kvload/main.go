// Command kvload is the load generator / attacker for a live kvstore
// deployment: it preloads a key space through the front end, then fires a
// query stream (uniform, zipf, adversarial, or a recorded trace) from
// concurrent workers and reports client-side throughput and latency plus
// per-backend load if backend addresses are given.
//
// Usage:
//
//	kvload -frontend 127.0.0.1:7000 -m 1000 -workload adversarial -x 17 -queries 100000
//	kvload -frontend 127.0.0.1:7000 -trace atk.bin -workers 8
//	kvload -frontend 127.0.0.1:7000 -m 1000 -workload zipf \
//	       -backends 127.0.0.1:7001,127.0.0.1:7002   # also report per-node loads
//	kvload -frontend 127.0.0.1:7000 -m 100 -workload uniform \
//	       -cas-fraction 0.3   # 30% CAS read-modify-writes; success/conflict breakdown
//	kvload -frontend 127.0.0.1:7000 -m 1000 -pipeline 64 \
//	       -batch-wait 2ms     # pipelined transport + Nagle-batched preload;
//	                           # reports in-flight window queueing delay
//
// Against a distributed frontend tier, -frontends replaces -frontend and
// every worker drives a power-of-two-choices tier client over the named
// kvfront instances (IDs must match their -tier-id), reporting the
// per-frontend load spread next to the per-backend one:
//
//	kvload -frontends 0=127.0.0.1:7000,1=127.0.0.1:7010 -tier-seed 42 \
//	       -m 1000 -workload adversarial
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"securecache/internal/kvstore"
	"securecache/internal/proto"
	"securecache/internal/stats"
	"securecache/internal/trace"
	"securecache/internal/workload"
)

func main() {
	var (
		frontend  = flag.String("frontend", "127.0.0.1:7000", "frontend address")
		frontends = flag.String("frontends", "", "tier mode: comma-separated id=addr frontend list (replaces -frontend)")
		tierSeed  = flag.Uint64("tier-seed", 0, "tier mode: the tier's PUBLIC mapping seed")
		backends  = flag.String("backends", "", "optional comma-separated backend addresses for per-node load")
		m         = flag.Int("m", 1000, "key-space size")
		kind      = flag.String("workload", "adversarial", "workload: adversarial | uniform | zipf")
		x         = flag.Int("x", 0, "adversarial: queried keys (0 = m/10+1)")
		zipfS     = flag.Float64("zipf-s", 1.01, "zipf exponent")
		queries   = flag.Int("queries", 100000, "total queries to send")
		workers   = flag.Int("workers", 4, "concurrent workers")
		batch     = flag.Int("batch", 1, "keys per request (1 = single GET, >1 = MGET)")
		seed      = flag.Uint64("seed", 1, "workload seed")
		tracePath = flag.String("trace", "", "replay this trace file instead of sampling")
		preload   = flag.Bool("preload", true, "SET every key before the run")
		timeout   = flag.Duration("timeout", kvstore.DefaultReadTimeout, "per-request response deadline (negative = none)")
		retries   = flag.Int("retries", kvstore.DefaultMaxRetries, "budgeted transport retries per request (negative = none)")
		poolSize  = flag.Int("pool-size", 0, "idle connections pooled per worker client (0 = default, negative = no pooling)")
		refreshAt = flag.Int("refresh-streak", 8, "consecutive BUSY/error responses before re-reading cluster membership from the frontend (0 = never)")
		casFrac   = flag.Float64("cas-fraction", 0, "fraction of timed requests issued as a CAS read-modify-write (GetV + Cas) instead of a GET; conflicts are reported apart from successes")
		pipeDepth = flag.Int("pipeline", 0, "pipelined transport: max in-flight frames per conn (0 = lockstep)")
		batchB    = flag.Int("batch-bytes", 0, "preload write batching: flush at this many queued payload bytes (0 = library default; needs -batch-wait)")
		batchW    = flag.Duration("batch-wait", 0, "preload write batching: hold SETs up to this long to coalesce them into one writev (0 = dispatch each immediately)")
	)
	flag.Parse()
	if *casFrac < 0 || *casFrac > 1 {
		fatal(fmt.Errorf("-cas-fraction %g out of range [0,1]", *casFrac))
	}

	clientCfg := kvstore.ClientConfig{ReadTimeout: *timeout, MaxRetries: *retries, MaxIdleConns: *poolSize, PipelineDepth: *pipeDepth}

	// Queueing-delay visibility: with a pipelined transport a request can
	// stall waiting for an in-flight window slot before a single byte is
	// written — that wait is inside the measured latency, so break it out.
	var winWaitNs, winWaitN, winWaitMax atomic.Int64
	if *pipeDepth > 0 {
		clientCfg.OnWindowWait = func(d time.Duration) {
			winWaitNs.Add(int64(d))
			winWaitN.Add(1)
			for {
				cur := winWaitMax.Load()
				if int64(d) <= cur || winWaitMax.CompareAndSwap(cur, int64(d)) {
					break
				}
			}
		}
	}

	tierMap, err := parseTierFrontends(*frontends)
	if err != nil {
		fatal(err)
	}
	statsAddr := *frontend
	newQuerier := func() (querier, func()) {
		c := kvstore.NewClientWithConfig(statsAddr, clientCfg)
		return c, c.Close
	}
	if len(tierMap) > 0 {
		ids := make([]int, 0, len(tierMap))
		for id := range tierMap {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		statsAddr = tierMap[ids[0]]
		newQuerier = func() (querier, func()) {
			tc, err := kvstore.NewTierClient(kvstore.TierClientConfig{
				Frontends: tierMap, Seed: *tierSeed, Client: clientCfg,
			})
			if err != nil {
				fatal(err)
			}
			return tc, func() { tc.Close() }
		}
	}

	keys, err := buildKeys(*tracePath, *kind, *m, *x, *zipfS, *queries, *seed)
	if err != nil {
		fatal(err)
	}

	if *preload {
		var batchOpts *kvstore.BatchOptions
		if *batchB > 0 || *batchW != 0 {
			batchOpts = &kvstore.BatchOptions{MaxBytes: *batchB, MaxWait: *batchW}
		}
		mem := startMemDelta()
		n, took, err := preloadKeys(newQuerier, keys, batchOpts)
		if err != nil {
			fatal(err)
		}
		allocs, bytes := mem.perOp(uint64(n))
		fmt.Printf("op SET (preload): %d ops in %v (%.0f ops/s, %d allocs/op, %d B/op client-side)\n",
			n, took.Round(time.Millisecond), float64(n)/took.Seconds(), allocs, bytes)
		if n := winWaitN.Load(); n > 0 {
			fmt.Printf("  preload window stalls: %d (%v total) — expected when batching outruns depth %d\n",
				n, time.Duration(winWaitNs.Load()).Round(time.Millisecond), *pipeDepth)
		}
		// The timed report below should cover the timed loop only.
		winWaitNs.Store(0)
		winWaitN.Store(0)
		winWaitMax.Store(0)
	}

	// The backend list is LIVE state now that the cluster supports
	// join/drain: keep it in an addrBook that re-reads membership from
	// the frontend when workers see sustained trouble, so the final
	// per-node report covers nodes that joined mid-run.
	book := newAddrBook(statsAddr, clientCfg, splitNonEmpty(*backends))
	before := backendCounts(book.snapshot())
	frontBefore := tierFrontendCounts(tierMap, clientCfg)

	quantiles := []float64{0.50, 0.95, 0.99}
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		lat         stats.Summary
		casLat      stats.Summary
		merged      = newQuantileSet(quantiles)
		errCount    int
		shed        int
		casOK       int
		casConflict int
		perWork     = (len(keys) + *workers - 1) / *workers
	)
	mem := startMemDelta()
	start := time.Now()
	for w := 0; w < *workers; w++ {
		lo := w * perWork
		hi := lo + perWork
		if hi > len(keys) {
			hi = len(keys)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(worker int, slice []int) {
			defer wg.Done()
			client, closeClient := newQuerier()
			defer closeClient()
			var local, localCas stats.Summary
			localQ := newQuantileSet(quantiles)
			localErrs, localShed := 0, 0
			localCasOK, localCasConflict := 0, 0
			rng := rand.New(rand.NewPCG(*seed, uint64(worker)))
			streak := 0
			step := *batch
			if step < 1 {
				step = 1
			}
			for lo := 0; lo < len(slice); lo += step {
				hi := lo + step
				if hi > len(slice) {
					hi = len(slice)
				}
				isCas := *casFrac > 0 && rng.Float64() < *casFrac
				t0 := time.Now()
				var err error
				switch {
				case isCas:
					// Read-modify-write: learn the live version, then swap
					// against it. A conflict means another writer won the
					// race — contention evidence, not a failure.
					key := workload.KeyName(slice[lo])
					_, ver, _, gerr := client.GetV(key)
					if gerr != nil && gerr != kvstore.ErrNotFound {
						err = gerr
						break
					}
					if gerr == kvstore.ErrNotFound {
						ver = 0 // absent or tombstoned: CAS-create
					}
					if _, cerr := client.Cas(key, casValue(worker, lo), ver); cerr != nil {
						if errors.Is(cerr, kvstore.ErrCasConflict) {
							localCasConflict++
						} else {
							err = cerr
						}
					} else {
						localCasOK++
					}
				case step == 1:
					_, err = client.Get(workload.KeyName(slice[lo]))
				default:
					names := make([]string, hi-lo)
					for j, k := range slice[lo:hi] {
						names[j] = workload.KeyName(k)
					}
					_, err = client.MGet(names)
				}
				us := float64(time.Since(t0).Microseconds())
				if err != nil && err != kvstore.ErrNotFound {
					// Shed requests are the overload machinery working as
					// designed; report them apart from hard errors.
					if errors.Is(err, kvstore.ErrBusy) {
						localShed++
					} else {
						localErrs++
					}
					// A sustained streak of BUSY or refused responses can
					// mean the cluster is mid-view-change (nodes joining or
					// draining): re-read membership so the report tracks the
					// cluster the run actually hit.
					if streak++; *refreshAt > 0 && streak >= *refreshAt {
						book.maybeRefresh()
						streak = 0
					}
					continue
				}
				streak = 0
				// Record one latency sample per request (batched or not).
				if isCas {
					localCas.Add(us)
				} else {
					local.Add(us)
				}
				localQ.add(us)
			}
			mu.Lock()
			lat.Merge(local)
			casLat.Merge(localCas)
			merged.mergeWorker(localQ)
			errCount += localErrs
			shed += localShed
			casOK += localCasOK
			casConflict += localCasConflict
			mu.Unlock()
		}(w, keys[lo:hi])
	}
	wg.Wait()
	elapsed := time.Since(start)

	queriesSent := float64(lat.N()) * float64(*batch)
	if *batch <= 1 {
		queriesSent = float64(lat.N())
	}
	queriesSent += float64(casLat.N())
	requests := lat.N() + casLat.N()
	// Hard failures (transport errors, dead replicas) and busy sheds
	// (the overload machinery working as designed) are different outcomes
	// and are reported apart: a chaos run wants to see sheds climb while
	// hard failures stay at zero.
	fmt.Printf("sent ~%.0f queries in %d requests over %v (%.0f qps, %d workers, batch %d, %d hard failures, %d busy-shed)\n",
		queriesSent, requests, elapsed.Round(time.Millisecond),
		queriesSent/elapsed.Seconds(), *workers, *batch, errCount, shed)
	fmt.Printf("per-request latency: mean %.0fµs  p50≈%.0fµs  p95≈%.0fµs  p99≈%.0fµs  max %.0fµs\n",
		lat.Mean(), merged.value(0.50), merged.value(0.95), merged.value(0.99), lat.Max())
	if *pipeDepth > 0 {
		// Where queueing delay lives: time spent waiting for an in-flight
		// window slot is already inside the latencies above; a large share
		// here means the pipe (depth) is the bottleneck, not the server.
		if n := winWaitN.Load(); n > 0 {
			total := time.Duration(winWaitNs.Load())
			fmt.Printf("in-flight window (depth %d): %d stalls, %v total wait (mean %.0fµs, max %.0fµs)\n",
				*pipeDepth, n, total.Round(time.Millisecond),
				float64(total.Microseconds())/float64(n),
				float64(time.Duration(winWaitMax.Load()).Microseconds()))
		} else {
			fmt.Printf("in-flight window (depth %d): never filled — no queueing delay at the client\n", *pipeDepth)
		}
	}
	if *casFrac > 0 {
		// Success vs conflict is the contention signal: with many workers
		// hammering a small key space, conflicts should climb while hard
		// failures stay at zero — every conflict is a correctly refused
		// stale swap, not a lost write.
		total := casOK + casConflict
		rate := 0.0
		if total > 0 {
			rate = 100 * float64(casConflict) / float64(total)
		}
		fmt.Printf("op CAS (GetV+Cas): %d attempts, %d succeeded, %d conflicts (%.1f%% conflict rate), mean %.0fµs max %.0fµs\n",
			total, casOK, casConflict, rate, casLat.Mean(), casLat.Max())
	}

	// Per-op-type breakdown: the timed loop sends exactly one op type
	// (GET at batch 1, MGET above), so its MemStats delta is that op's
	// client-side allocation cost. The delta is process-wide — workload
	// generation and bookkeeping are counted too — which makes it an
	// upper bound, comparable across runs of the same shape.
	if n := uint64(lat.N() + casLat.N()); n > 0 {
		op := "GET"
		if *batch > 1 {
			op = "MGET"
		}
		if *casFrac > 0 {
			op += "+CAS mix"
		}
		allocs, bytes := mem.perOp(n)
		fmt.Printf("op %s: %d ops in %v (%.0f ops/s, %d allocs/op, %d B/op client-side)\n",
			op, n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), allocs, bytes)
	}

	// The frontend's STATS snapshot carries the resilience counters; show
	// them whenever any failover machinery fired during the run.
	if fc := kvstore.NewClientWithConfig(statsAddr, clientCfg); fc != nil {
		if st, err := fc.Stats(); err == nil {
			r := kvstore.StatCounter(st, "retries_total")
			b := kvstore.StatCounter(st, "breaker_open_total")
			e := kvstore.StatCounter(st, "backend_errors_total")
			if r+b+e > 0 {
				fmt.Printf("frontend resilience: %d retries, %d breaker opens, %d backend errors\n", r, b, e)
			}
			fs := kvstore.StatCounter(st, "shed_total")
			bb := kvstore.StatCounter(st, "backend_busy_total")
			rs := kvstore.StatCounter(st, "retry_budget_exhausted_total")
			cr := kvstore.StatCounter(st, "busy_conns_rejected_total")
			if fs+bb+rs+cr > 0 {
				fmt.Printf("frontend overload: %d requests shed, %d conns rejected, %d backend busies, %d retries suppressed\n",
					fs, cr, bb, rs)
			}
			hq := kvstore.StatCounter(st, "hints_queued_total")
			hr := kvstore.StatCounter(st, "hints_replayed_total")
			rr := kvstore.StatCounter(st, "read_repair_total")
			ae := kvstore.StatCounter(st, "repair_keys_repaired_total")
			if hq+hr+rr+ae > 0 {
				fmt.Printf("frontend durability: %d hints queued, %d replayed, %d read repairs, %d anti-entropy repairs\n",
					hq, hr, rr, ae)
			}
			ct := kvstore.StatCounter(st, "cas_total")
			cc := kvstore.StatCounter(st, "cas_conflicts_total")
			if ct > 0 {
				fmt.Printf("frontend cas: %d swaps, %d conflicts\n", ct, cc)
			}
		}
		fc.Close()
	}

	if len(tierMap) > 0 {
		after := tierFrontendCounts(tierMap, clientCfg)
		ids := make([]int, 0, len(tierMap))
		for id := range tierMap {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Println("per-frontend request deltas (two-choice spread):")
		var total, maxDelta uint64
		for _, id := range ids {
			delta := after[id] - frontBefore[id]
			total += delta
			if delta > maxDelta {
				maxDelta = delta
			}
			fmt.Printf("  frontend %2d (%s): %d\n", id, tierMap[id], delta)
		}
		if total > 0 {
			even := float64(total) / float64(len(ids))
			fmt.Printf("normalized max frontend load: %.3f (hottest %d / even share %.1f)\n",
				float64(maxDelta)/even, maxDelta, even)
		}
	}

	if addrs := book.snapshot(); len(addrs) > 0 {
		if book.refreshed() {
			fmt.Printf("membership refreshed during run: now %d backends\n", len(addrs))
		}
		after := backendCounts(addrs)
		fmt.Println("per-backend request deltas:")
		var total, maxDelta uint64
		for i, addr := range addrs {
			// A node that joined mid-run has no "before" sample; its full
			// count is its delta.
			delta := after[addr] - before[addr]
			total += delta
			if delta > maxDelta {
				maxDelta = delta
			}
			fmt.Printf("  node %2d (%s): %d\n", i, addr, delta)
		}
		if total > 0 {
			even := float64(total) / float64(len(addrs))
			fmt.Printf("normalized max backend load: %.3f (hottest %d / even share %.1f)\n",
				float64(maxDelta)/even, maxDelta, even)
		} else {
			fmt.Println("backends saw no traffic (cache absorbed the attack)")
		}
	}
}

// quantileSet tracks several latency quantiles with one P² estimator
// each (constant memory, no sample buffer). Workers keep a local set;
// the run merges them by feeding each worker's estimate into the global
// estimator — the "quantile of worker quantiles" approximation, same as
// the original single-p99 report.
type quantileSet struct {
	qs  []float64
	est []*stats.P2Quantile
}

func newQuantileSet(qs []float64) *quantileSet {
	s := &quantileSet{qs: qs, est: make([]*stats.P2Quantile, len(qs))}
	for i, q := range qs {
		s.est[i] = stats.NewP2Quantile(q)
	}
	return s
}

func (s *quantileSet) add(v float64) {
	for _, e := range s.est {
		e.Add(v)
	}
}

func (s *quantileSet) mergeWorker(w *quantileSet) {
	for i, e := range w.est {
		if e.N() > 0 {
			s.est[i].Add(e.Value())
		}
	}
}

func (s *quantileSet) value(q float64) float64 {
	for i, have := range s.qs {
		if have == q {
			return s.est[i].Value()
		}
	}
	return 0
}

func buildKeys(tracePath, kind string, m, x int, zipfS float64, queries int, seed uint64) ([]int, error) {
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return nil, err
		}
		return tr.Keys, nil
	}
	var dist workload.Distribution
	switch kind {
	case "adversarial":
		if x == 0 {
			x = m/10 + 1
		}
		dist = workload.NewAdversarial(m, x, 0)
	case "uniform":
		dist = workload.NewUniform(m, m)
	case "zipf":
		dist = workload.NewZipf(m, zipfS)
	default:
		return nil, fmt.Errorf("unknown workload %q", kind)
	}
	return workload.NewGenerator(dist, seed).Batch(make([]int, 0, queries), queries), nil
}

// batcher is the write-coalescing surface (satisfied by *kvstore.Client;
// the tier client preloads per-op).
type batcher interface {
	Batch(kvstore.BatchOptions) *kvstore.Batch
}

func preloadKeys(newQuerier func() (querier, func()), keys []int, batchOpts *kvstore.BatchOptions) (int, time.Duration, error) {
	seen := make(map[int]bool)
	uniq := make([]int, 0, len(keys))
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, k)
		}
	}
	client, closeClient := newQuerier()
	defer closeClient()
	start := time.Now()

	// Batched mode: queue every SET through the coalescing buffer so the
	// warm-up rides big writev batches, then settle the futures. Keys the
	// cluster shed fall back to the per-op path below, which retries.
	var retry []int
	if bc, ok := client.(batcher); ok && batchOpts != nil {
		b := bc.Batch(*batchOpts)
		futures := make([]*kvstore.BatchPending, len(uniq))
		for i, k := range uniq {
			futures[i] = b.Set(workload.KeyName(k), []byte("payload"))
		}
		b.Flush()
		for i, p := range futures {
			if err := p.Wait(); err != nil {
				if !errors.Is(err, kvstore.ErrBusy) {
					return 0, 0, fmt.Errorf("preload key %d: %w", uniq[i], err)
				}
				retry = append(retry, uniq[i])
			}
		}
	} else {
		retry = uniq
	}

	for _, k := range retry {
		// Warm-up must not outpace an admission-limited cluster: back off
		// and re-send when the store sheds the SET instead of aborting.
		var err error
		for attempt := 0; attempt < 50; attempt++ {
			if err = client.Set(workload.KeyName(k), []byte("payload")); !errors.Is(err, kvstore.ErrBusy) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			return 0, 0, fmt.Errorf("preload key %d: %w", k, err)
		}
	}
	return len(seen), time.Since(start), nil
}

// memDelta measures the process-wide allocation cost of a phase via
// runtime.MemStats: Mallocs and TotalAlloc are monotonic, so two reads
// bracket the phase without caring what the GC did in between.
type memDelta struct{ before runtime.MemStats }

func startMemDelta() *memDelta {
	m := &memDelta{}
	runtime.ReadMemStats(&m.before)
	return m
}

func (m *memDelta) perOp(ops uint64) (allocs, bytes uint64) {
	if ops == 0 {
		return 0, 0
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return (after.Mallocs - m.before.Mallocs) / ops, (after.TotalAlloc - m.before.TotalAlloc) / ops
}

func backendCounts(addrs []string) map[string]uint64 {
	counts := make(map[string]uint64, len(addrs))
	for _, addr := range addrs {
		c := kvstore.NewClient(addr)
		if stats, err := c.Stats(); err == nil {
			counts[addr] = kvstore.StatCounter(stats, "requests_total")
		}
		c.Close()
	}
	return counts
}

// addrBook holds the backend address list the report is built over. It
// starts from the -backends flag and can re-read the live list from the
// frontend's membership surface (OpMembers bypasses the admission gate,
// so the refresh works even while the frontend is shedding the data
// plane) — a load run that spans a join/drain then reports the cluster
// it actually hit instead of the one it was launched against.
type addrBook struct {
	frontend string
	cfg      kvstore.ClientConfig

	mu      sync.Mutex
	addrs   []string
	last    time.Time
	changed bool
}

func newAddrBook(frontend string, cfg kvstore.ClientConfig, initial []string) *addrBook {
	return &addrBook{frontend: frontend, cfg: cfg, addrs: initial}
}

func (b *addrBook) snapshot() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.addrs...)
}

func (b *addrBook) refreshed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.changed
}

// maybeRefresh re-reads membership from the frontend, at most once per
// second across all workers.
func (b *addrBook) maybeRefresh() {
	b.mu.Lock()
	if time.Since(b.last) < time.Second {
		b.mu.Unlock()
		return
	}
	b.last = time.Now()
	b.mu.Unlock()

	c := kvstore.NewClientWithConfig(b.frontend, b.cfg)
	ms, err := c.Members()
	c.Close()
	if err != nil || len(ms.MemberAddrs) == 0 {
		return
	}
	b.mu.Lock()
	if !equalStrings(b.addrs, ms.MemberAddrs) {
		b.addrs = append([]string(nil), ms.MemberAddrs...)
		b.changed = true
	}
	b.mu.Unlock()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// querier is the request surface the workers drive — satisfied by both
// the single-frontend Client and the two-choice TierClient.
type querier interface {
	Get(key string) ([]byte, error)
	GetV(key string) (value []byte, ver uint64, tomb bool, err error)
	MGet(keys []string) ([]proto.MGetResult, error)
	Set(key string, value []byte) error
	Cas(key string, value []byte, expect uint64) (uint64, error)
}

// casValue makes each swap's payload distinct so a CAS-heavy run
// actually churns the stored bytes instead of rewriting one constant.
func casValue(worker, i int) []byte {
	return []byte(fmt.Sprintf("cas-w%d-%d", worker, i))
}

// parseTierFrontends parses the -frontends "id=addr,id=addr" form.
func parseTierFrontends(s string) (map[int]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]string)
	for _, part := range splitNonEmpty(s) {
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-frontends entry %q: want id=addr", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("-frontends entry %q: %v", part, err)
		}
		if _, dup := out[n]; dup {
			return nil, fmt.Errorf("-frontends: duplicate id %d", n)
		}
		out[n] = strings.TrimSpace(addr)
	}
	return out, nil
}

// tierFrontendCounts snapshots requests_total on every tier frontend.
func tierFrontendCounts(tierMap map[int]string, cfg kvstore.ClientConfig) map[int]uint64 {
	counts := make(map[int]uint64, len(tierMap))
	for id, addr := range tierMap {
		c := kvstore.NewClientWithConfig(addr, cfg)
		if stats, err := c.Stats(); err == nil {
			counts[id] = kvstore.StatCounter(stats, "requests_total")
		}
		c.Close()
	}
	return counts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kvload:", err)
	os.Exit(2)
}
