package main

import "testing"

func TestSweepPoints(t *testing.T) {
	pts := sweepPoints(201, 100000)
	if pts[0] != 201 || pts[len(pts)-1] != 100000 {
		t.Errorf("endpoints wrong: %v ... %v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i] <= pts[i-1] {
			t.Fatalf("not strictly increasing at %d: %v", i, pts)
		}
	}
	if len(pts) < 5 || len(pts) > 40 {
		t.Errorf("unreasonable point count %d", len(pts))
	}
}

func TestSweepPointsEdges(t *testing.T) {
	if got := sweepPoints(0, 5); got[0] < 2 {
		t.Errorf("lo not clamped to 2: %v", got)
	}
	if got := sweepPoints(10, 10); len(got) != 1 || got[0] != 10 {
		t.Errorf("degenerate sweep: %v", got)
	}
	if got := sweepPoints(10, 5); len(got) != 1 || got[0] != 5 {
		t.Errorf("inverted sweep: %v", got)
	}
}
