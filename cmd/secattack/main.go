// Command secattack drives the adversary model: it reports the optimal
// strategy for given public parameters, evaluates it empirically against
// fresh random partitions, and can emit the attack trace for replay
// against a live cluster (kvload reads it).
//
// Usage:
//
//	secattack -n 1000 -d 3 -m 100000 -c 200                 # evaluate best attack
//	secattack -n 1000 -d 3 -m 100000 -c 200 -sweep          # sweep x (Fig. 3 data)
//	secattack -n 8 -d 3 -m 1000 -c 16 -emit-trace atk.bin -queries 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"securecache/internal/attack"
	"securecache/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 1000, "number of back-end nodes")
		d         = flag.Int("d", 3, "replication factor")
		m         = flag.Int("m", 100000, "number of items stored")
		c         = flag.Int("c", 200, "front-end cache size")
		rate      = flag.Float64("rate", 100000, "attack rate R (qps)")
		runs      = flag.Int("runs", 200, "evaluation runs")
		seed      = flag.Uint64("seed", 2013, "root seed")
		k         = flag.Float64("k", 1.2, "bound constant")
		sweep     = flag.Bool("sweep", false, "sweep x from c+1 to m (Fig. 3 series)")
		emitTrace = flag.String("emit-trace", "", "write the best-attack query trace to this file")
		queries   = flag.Int("queries", 100000, "trace length for -emit-trace")
	)
	flag.Parse()

	adv := attack.Adversary{Items: *m, Nodes: *n, Replication: *d, CacheSize: *c, KOverride: *k}
	cfg := attack.EvalConfig{Rate: *rate, Runs: *runs, Seed: *seed}

	p := adv.Params()
	fmt.Printf("adversary knowledge: m=%d n=%d d=%d c=%d (k=%g)\n", *m, *n, *d, *c, *k)
	fmt.Printf("  provisioning threshold c* = %d\n", p.RequiredCacheSize())
	fmt.Printf("  theory-optimal x          = %d\n", adv.BestX())

	if *emitTrace != "" {
		dist, err := adv.BestDistribution()
		if err != nil {
			fatal(err)
		}
		tr := trace.Record(dist, *queries, *seed)
		f, err := os.Create(*emitTrace)
		if err != nil {
			fatal(err)
		}
		if err := tr.Write(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("  wrote %d-query attack trace to %s\n", *queries, *emitTrace)
		return
	}

	if *sweep {
		xs := sweepPoints(*c+1, *m)
		tbl, err := adv.SweepX(xs, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(tbl)
		return
	}

	res, err := adv.EvaluateBest(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  empirical best x          = %d\n", res.X)
	fmt.Printf("  achieved gain             : max %s, mean %s\n", res.MaxGain, res.MeanGain)
}

func sweepPoints(lo, hi int) []int {
	if lo < 2 {
		lo = 2
	}
	if hi <= lo {
		return []int{hi}
	}
	pts := []int{lo}
	for v := lo; v < hi; {
		v = v * 3 / 2
		if v <= pts[len(pts)-1] {
			v = pts[len(pts)-1] + 1
		}
		if v >= hi {
			break
		}
		pts = append(pts, v)
	}
	return append(pts, hi)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secattack:", err)
	os.Exit(2)
}
