// Command secguard is the operational monitor: it polls the back-end
// nodes' HTTP admin endpoints (/metrics), computes per-window request
// deltas, and runs the load-concentration detector from internal/guard —
// printing a verdict per window and the provisioning recommendation when
// the cluster is configured below the paper's threshold.
//
// With -respond it closes the loop: when the detector holds at the
// trigger verdict for enough consecutive windows, secguard POSTs the
// frontend admin's /rotate verb and the cluster re-keys its partition
// mapping live, invalidating whatever the attacker learned.
//
// With -auto-drain it also watches the frontend's per-backend circuit
// breaker gauges: a member whose breaker stays open continuously past
// -drain-after is drained out of the membership view (POST /drain), so
// its key ranges move to healthy nodes instead of sitting behind an
// open breaker. Drains are spaced by -drain-cooldown and never shrink
// the view below d members.
//
// Usage:
//
//	secguard -admins 127.0.0.1:8001,127.0.0.1:8002,127.0.0.1:8003 \
//	         -d 3 -m 100000 -c 16 -interval 5s -windows 12
//	secguard -admins ... -respond 127.0.0.1:8000 -respond-windows 2 \
//	         -respond-cooldown 5m
//	secguard -admins ... -frontend-admin 127.0.0.1:8000 -auto-drain \
//	         -drain-after 30s -drain-cooldown 2m
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"securecache/internal/core"
	"securecache/internal/guard"
	"securecache/internal/kvstore"
	"securecache/internal/rotation"
)

func main() {
	var (
		admins   = flag.String("admins", "", "comma-separated backend admin addresses (host:port)")
		d        = flag.Int("d", 3, "replication factor")
		m        = flag.Int("m", 100000, "number of items stored")
		c        = flag.Int("c", 0, "front-end cache size")
		k        = flag.Float64("k", 1.2, "bound constant")
		interval = flag.Duration("interval", 5*time.Second, "polling interval")
		windows  = flag.Int("windows", 0, "number of windows to observe (0 = forever)")
		alert    = flag.Float64("alert", 1.2, "normalized max load alert level")
		critical = flag.Float64("critical", 2.0, "normalized max load critical level")

		respond         = flag.String("respond", "", "frontend admin address: POST /rotate when the trigger verdict holds (empty = monitor only)")
		respondTrigger  = flag.String("respond-trigger", "critical", "verdict that counts toward firing: critical | skewed")
		respondWindows  = flag.Int("respond-windows", 2, "consecutive triggering windows before rotating")
		respondCooldown = flag.Duration("respond-cooldown", 5*time.Minute, "minimum spacing between triggered rotations")

		frontAdmin = flag.String("frontend-admin", "", "frontend admin address: poll GET /membership and re-derive the detection thresholds and c* when nodes join or drain (empty = static cluster)")

		autoDrain     = flag.Bool("auto-drain", false, "POST /drain for a backend whose circuit breaker stays open past -drain-after (requires -frontend-admin)")
		drainAfter    = flag.Duration("drain-after", 30*time.Second, "continuous breaker-open time before a node is drained")
		drainCooldown = flag.Duration("drain-cooldown", 2*time.Minute, "minimum spacing between auto-triggered drains")
	)
	flag.Parse()

	addrs := splitNonEmpty(*admins)
	if len(addrs) < 2 {
		fmt.Fprintln(os.Stderr, "secguard: need at least two -admins addresses")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 3 * time.Second}

	// With -frontend-admin the cluster shape is live state: node IDs come
	// from each backend admin's /info, the member set from the frontend's
	// /membership, and the detector's n follows committed joins/drains.
	// Without it the -admins list position IS the node ID (the static
	// seed-cluster convention).
	ids := pollIDs(client, addrs)
	members := append([]int(nil), ids...)
	if *frontAdmin != "" {
		ms, err := fetchMembership(client, *frontAdmin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "secguard: -frontend-admin:", err)
			os.Exit(2)
		}
		if len(ms.Members) > 0 {
			members = ms.Members
		}
	}

	params := core.Params{
		Nodes:       len(members),
		Replication: *d,
		Items:       *m,
		CacheSize:   *c,
		KOverride:   *k,
	}
	g, err := guard.New(guard.Config{
		Params:       params,
		AlertGain:    *alert,
		CriticalGain: *critical,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "secguard:", err)
		os.Exit(2)
	}

	var responder *rotation.Responder
	if *respond != "" {
		trigger := guard.VerdictCritical
		switch *respondTrigger {
		case "critical":
		case "skewed":
			trigger = guard.VerdictSkewed
		default:
			fmt.Fprintf(os.Stderr, "secguard: unknown -respond-trigger %q\n", *respondTrigger)
			os.Exit(2)
		}
		responder, err = rotation.NewResponder(rotation.ResponderConfig{
			Trigger:  trigger,
			Windows:  *respondWindows,
			Cooldown: *respondCooldown,
			Rotate:   func() error { return triggerRotate(client, *respond) },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "secguard:", err)
			os.Exit(2)
		}
	}

	var planner *drainPlanner
	if *autoDrain {
		if *frontAdmin == "" {
			fmt.Fprintln(os.Stderr, "secguard: -auto-drain requires -frontend-admin")
			os.Exit(2)
		}
		planner, err = newDrainPlanner(*drainAfter, *drainCooldown, *d)
		if err != nil {
			fmt.Fprintln(os.Stderr, "secguard:", err)
			os.Exit(2)
		}
	}

	prev, reachable := pollAll(client, addrs, nil)
	if reachable == 0 {
		fmt.Fprintln(os.Stderr, "secguard: no admin endpoint reachable")
		os.Exit(1)
	}
	fmt.Printf("secguard: watching %d nodes every %v (c=%d, required c*=%d)\n",
		len(members), *interval, *c, params.RequiredCacheSize())
	memberIdx := indexMembers(members)
	for w := 0; *windows == 0 || w < *windows; w++ {
		time.Sleep(*interval)
		cur, _ := pollAll(client, addrs, prev)
		// Track committed view changes: Eq. 10, the vulnerability check,
		// and the recommended c* all move with n, so a guard still judging
		// the old member count would mis-size every verdict. Mid-change
		// (Changing) the old view keeps judging until the commit.
		if *frontAdmin != "" {
			if ms, err := fetchMembership(client, *frontAdmin); err == nil &&
				!ms.Changing && len(ms.Members) > 0 && !equalInts(ms.Members, members) {
				np := g.Params()
				np.Nodes = len(ms.Members)
				if err := g.SetParams(np); err != nil {
					fmt.Fprintln(os.Stderr, "secguard: resize:", err)
				} else {
					members = ms.Members
					memberIdx = indexMembers(members)
					fmt.Printf("[%s] membership v%d committed: n=%d, thresholds re-derived (c*=%d)\n",
						time.Now().Format(time.TimeOnly), ms.Version, np.Nodes, np.RequiredCacheSize())
				}
			}
		}
		// One load slot per current member; an -admins endpoint whose node
		// drained is ignored, a member with no polled admin reads as idle.
		loads := make([]float64, len(members))
		for i := range addrs {
			idx, ok := memberIdx[ids[i]]
			if !ok {
				continue
			}
			if cur[i] >= prev[i] {
				loads[idx] = float64(cur[i] - prev[i])
			}
		}
		prev = cur
		obs, err := g.Observe(loads)
		if err != nil {
			fmt.Fprintln(os.Stderr, "secguard:", err)
			continue
		}
		fmt.Printf("[%s] %s\n", time.Now().Format(time.TimeOnly), obs)
		if responder != nil {
			fired, rerr := responder.Observe(obs)
			if rerr != nil {
				fmt.Fprintln(os.Stderr, "secguard: rotate:", rerr)
			} else if fired {
				fmt.Printf("[%s] rotation triggered (total %d)\n",
					time.Now().Format(time.TimeOnly), responder.Fired())
			}
		}
		// Auto-drain: the frontend's breaker gauges say which members it
		// has stopped trusting; a member that stays open past the
		// hysteresis window is drained out of the view entirely.
		if planner != nil {
			gauges, gerr := fetchGauges(client, *frontAdmin)
			if gerr != nil {
				fmt.Fprintln(os.Stderr, "secguard: auto-drain:", gerr)
			} else if id := planner.Observe(time.Now(), members, openMembers(gauges, members)); id >= 0 {
				if derr := triggerDrain(client, *frontAdmin, id); derr != nil {
					fmt.Fprintln(os.Stderr, "secguard: auto-drain:", derr)
				}
			}
		}
	}
}

// triggerRotate POSTs the frontend admin's /rotate verb (no seed: the
// frontend draws its own) and logs the reported epoch and expected
// migration volume.
func triggerRotate(client *http.Client, admin string) error {
	resp, err := client.Post("http://"+admin+"/rotate", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("rotate: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var report struct {
		Epoch                 uint32  `json:"epoch"`
		ExpectedMovedFraction float64 `json:"expected_moved_fraction"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		return fmt.Errorf("rotate: bad report: %w", err)
	}
	fmt.Printf("secguard: rotation started: epoch %d, ~%.0f%% of keys will move\n",
		report.Epoch, 100*report.ExpectedMovedFraction)
	return nil
}

// pollAll fetches requests_total from every admin endpoint. A node that
// cannot be polled keeps its previous count (zero delta this window):
// with live membership a drained node's process goes away mid-run, and
// monitoring the survivors must not stop with it. Returns the counts and
// how many endpoints answered.
func pollAll(client *http.Client, addrs []string, prev []uint64) ([]uint64, int) {
	out := make([]uint64, len(addrs))
	reachable := 0
	for i, addr := range addrs {
		v, err := pollOne(client, addr)
		if err != nil {
			if prev != nil {
				out[i] = prev[i]
			}
			continue
		}
		out[i] = v
		reachable++
	}
	return out, reachable
}

// pollIDs resolves each backend admin's global node ID from its /info
// surface, falling back to list position when the endpoint does not
// answer or carries no id (the static seed-cluster convention).
func pollIDs(client *http.Client, addrs []string) []int {
	ids := make([]int, len(addrs))
	for i, addr := range addrs {
		ids[i] = i
		resp, err := client.Get("http://" + addr + "/info")
		if err != nil {
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		var info struct {
			ID *int `json:"id"`
		}
		if json.Unmarshal(body, &info) == nil && info.ID != nil {
			ids[i] = *info.ID
		}
	}
	return ids
}

// fetchMembership reads the frontend admin's GET /membership surface.
func fetchMembership(client *http.Client, admin string) (kvstore.MembershipStatus, error) {
	var ms kvstore.MembershipStatus
	resp, err := client.Get("http://" + admin + "/membership")
	if err != nil {
		return ms, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return ms, err
	}
	if resp.StatusCode != http.StatusOK {
		return ms, fmt.Errorf("membership: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &ms); err != nil {
		return ms, fmt.Errorf("membership: bad payload: %w", err)
	}
	return ms, nil
}

func indexMembers(members []int) map[int]int {
	idx := make(map[int]int, len(members))
	for i, id := range members {
		idx[id] = i
	}
	return idx
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pollOne(client *http.Client, addr string) (uint64, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	var metrics map[string]interface{}
	if err := json.Unmarshal(body, &metrics); err != nil {
		return 0, err
	}
	total, _ := metrics["requests_total"].(float64)
	return uint64(total), nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
