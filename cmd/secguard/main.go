// Command secguard is the operational monitor: it polls the back-end
// nodes' HTTP admin endpoints (/metrics), computes per-window request
// deltas, and runs the load-concentration detector from internal/guard —
// printing a verdict per window and the provisioning recommendation when
// the cluster is configured below the paper's threshold.
//
// Usage:
//
//	secguard -admins 127.0.0.1:8001,127.0.0.1:8002,127.0.0.1:8003 \
//	         -d 3 -m 100000 -c 16 -interval 5s -windows 12
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"securecache/internal/core"
	"securecache/internal/guard"
)

func main() {
	var (
		admins   = flag.String("admins", "", "comma-separated backend admin addresses (host:port)")
		d        = flag.Int("d", 3, "replication factor")
		m        = flag.Int("m", 100000, "number of items stored")
		c        = flag.Int("c", 0, "front-end cache size")
		k        = flag.Float64("k", 1.2, "bound constant")
		interval = flag.Duration("interval", 5*time.Second, "polling interval")
		windows  = flag.Int("windows", 0, "number of windows to observe (0 = forever)")
		alert    = flag.Float64("alert", 1.2, "normalized max load alert level")
		critical = flag.Float64("critical", 2.0, "normalized max load critical level")
	)
	flag.Parse()

	addrs := splitNonEmpty(*admins)
	if len(addrs) < 2 {
		fmt.Fprintln(os.Stderr, "secguard: need at least two -admins addresses")
		os.Exit(2)
	}
	params := core.Params{
		Nodes:       len(addrs),
		Replication: *d,
		Items:       *m,
		CacheSize:   *c,
		KOverride:   *k,
	}
	g, err := guard.New(guard.Config{
		Params:       params,
		AlertGain:    *alert,
		CriticalGain: *critical,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "secguard:", err)
		os.Exit(2)
	}

	client := &http.Client{Timeout: 3 * time.Second}
	prev, err := pollAll(client, addrs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secguard:", err)
		os.Exit(1)
	}
	fmt.Printf("secguard: watching %d nodes every %v (c=%d, required c*=%d)\n",
		len(addrs), *interval, *c, params.RequiredCacheSize())
	for w := 0; *windows == 0 || w < *windows; w++ {
		time.Sleep(*interval)
		cur, err := pollAll(client, addrs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "secguard: poll:", err)
			continue
		}
		loads := make([]float64, len(addrs))
		for i := range addrs {
			if cur[i] >= prev[i] {
				loads[i] = float64(cur[i] - prev[i])
			}
		}
		prev = cur
		obs, err := g.Observe(loads)
		if err != nil {
			fmt.Fprintln(os.Stderr, "secguard:", err)
			continue
		}
		fmt.Printf("[%s] %s\n", time.Now().Format(time.TimeOnly), obs)
	}
}

// pollAll fetches requests_total from every admin endpoint.
func pollAll(client *http.Client, addrs []string) ([]uint64, error) {
	out := make([]uint64, len(addrs))
	for i, addr := range addrs {
		v, err := pollOne(client, addr)
		if err != nil {
			return nil, fmt.Errorf("node %d (%s): %w", i, addr, err)
		}
		out[i] = v
	}
	return out, nil
}

func pollOne(client *http.Client, addr string) (uint64, error) {
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, err
	}
	var metrics map[string]interface{}
	if err := json.Unmarshal(body, &metrics); err != nil {
		return 0, err
	}
	total, _ := metrics["requests_total"].(float64)
	return uint64(total), nil
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
