package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestPollOne(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"requests_total": 12345, "other": "x"}`))
	}))
	defer srv.Close()

	client := &http.Client{Timeout: time.Second}
	addr := strings.TrimPrefix(srv.URL, "http://")
	got, err := pollOne(client, addr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12345 {
		t.Errorf("pollOne = %d, want 12345", got)
	}
}

func TestPollOneErrors(t *testing.T) {
	client := &http.Client{Timeout: 200 * time.Millisecond}
	if _, err := pollOne(client, "127.0.0.1:1"); err == nil {
		t.Error("unreachable endpoint accepted")
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	if _, err := pollOne(client, strings.TrimPrefix(bad.URL, "http://")); err == nil {
		t.Error("500 response accepted")
	}

	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer garbage.Close()
	if _, err := pollOne(client, strings.TrimPrefix(garbage.URL, "http://")); err == nil {
		t.Error("non-JSON response accepted")
	}
}

func TestPollOneMissingCounter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	client := &http.Client{Timeout: time.Second}
	got, err := pollOne(client, strings.TrimPrefix(srv.URL, "http://"))
	if err != nil || got != 0 {
		t.Errorf("missing counter: %d, %v; want 0, nil", got, err)
	}
}

func TestPollAllAggregates(t *testing.T) {
	mk := func(v string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Write([]byte(`{"requests_total": ` + v + `}`))
		}))
	}
	a, b := mk("10"), mk("20")
	defer a.Close()
	defer b.Close()
	client := &http.Client{Timeout: time.Second}
	got, reachable := pollAll(client, []string{
		strings.TrimPrefix(a.URL, "http://"),
		strings.TrimPrefix(b.URL, "http://"),
	}, nil)
	if reachable != 2 {
		t.Fatalf("reachable = %d, want 2", reachable)
	}
	if got[0] != 10 || got[1] != 20 {
		t.Errorf("pollAll = %v", got)
	}
}

func TestPollAllToleratesDeadNode(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"requests_total": 42}`))
	}))
	defer srv.Close()
	client := &http.Client{Timeout: 200 * time.Millisecond}
	addrs := []string{strings.TrimPrefix(srv.URL, "http://"), "127.0.0.1:1"}
	// The dead node keeps its previous count: zero delta, not a lost
	// window for the survivors.
	got, reachable := pollAll(client, addrs, []uint64{0, 7})
	if reachable != 1 {
		t.Fatalf("reachable = %d, want 1", reachable)
	}
	if got[0] != 42 || got[1] != 7 {
		t.Errorf("pollAll = %v, want [42 7]", got)
	}
}
