package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDrainPlannerHysteresis(t *testing.T) {
	p, err := newDrainPlanner(30*time.Second, time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	members := []int{0, 1, 2, 3}
	t0 := time.Unix(1000, 0)

	// Freshly open: not yet past the hysteresis window.
	if id := p.Observe(t0, members, map[int]bool{2: true}); id != -1 {
		t.Fatalf("drained %d immediately; want hysteresis", id)
	}
	// Still open at +29s: not yet.
	if id := p.Observe(t0.Add(29*time.Second), members, map[int]bool{2: true}); id != -1 {
		t.Fatal("drained before -drain-after elapsed")
	}
	// Past the window: fire.
	if id := p.Observe(t0.Add(31*time.Second), members, map[int]bool{2: true}); id != 2 {
		t.Fatalf("Observe = %d, want 2", id)
	}
	if p.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", p.Fired())
	}
}

func TestDrainPlannerFlappingResetsClock(t *testing.T) {
	p, err := newDrainPlanner(30*time.Second, time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	members := []int{0, 1, 2, 3}
	t0 := time.Unix(1000, 0)
	p.Observe(t0, members, map[int]bool{2: true})
	// The breaker half-opens (probe succeeded) — gauge drops for one
	// window, which must reset node 2's clock.
	p.Observe(t0.Add(20*time.Second), members, nil)
	if id := p.Observe(t0.Add(40*time.Second), members, map[int]bool{2: true}); id != -1 {
		t.Fatalf("drained flapping node %d; recovery must reset hysteresis", id)
	}
	if id := p.Observe(t0.Add(71*time.Second), members, map[int]bool{2: true}); id != 2 {
		t.Fatalf("Observe = %d, want 2 after a full continuous window", id)
	}
}

func TestDrainPlannerCooldownAndOrder(t *testing.T) {
	p, err := newDrainPlanner(10*time.Second, time.Minute, 2)
	if err != nil {
		t.Fatal(err)
	}
	members := []int{0, 1, 2, 3, 4}
	t0 := time.Unix(1000, 0)
	// Node 3 opens first, node 1 a bit later.
	p.Observe(t0, members, map[int]bool{3: true})
	p.Observe(t0.Add(5*time.Second), members, map[int]bool{1: true, 3: true})
	// Both past hysteresis: the oldest-open (3) goes first.
	if id := p.Observe(t0.Add(16*time.Second), members, map[int]bool{1: true, 3: true}); id != 3 {
		t.Fatalf("Observe = %d, want oldest-open 3", id)
	}
	// Node 1 is due too, but the cooldown holds it back.
	members = []int{0, 1, 2, 4}
	if id := p.Observe(t0.Add(20*time.Second), members, map[int]bool{1: true}); id != -1 {
		t.Fatalf("drained %d during cooldown", id)
	}
	if id := p.Observe(t0.Add(80*time.Second), members, map[int]bool{1: true}); id != 1 {
		t.Fatalf("Observe = %d, want 1 after cooldown", id)
	}
}

func TestDrainPlannerRespectsFloor(t *testing.T) {
	p, err := newDrainPlanner(time.Second, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Unix(1000, 0)
	members := []int{0, 1, 2}
	p.Observe(t0, members, map[int]bool{1: true})
	// Draining would leave 2 < minNodes members: never.
	if id := p.Observe(t0.Add(time.Hour), members, map[int]bool{1: true}); id != -1 {
		t.Fatalf("drained %d below the replication floor", id)
	}
	// With one more member the same node is drainable.
	members = []int{0, 1, 2, 3}
	if id := p.Observe(t0.Add(2*time.Hour), members, map[int]bool{1: true}); id != 1 {
		t.Fatalf("Observe = %d, want 1 once above the floor", id)
	}
}

func TestDrainPlannerValidation(t *testing.T) {
	if _, err := newDrainPlanner(0, time.Minute, 3); err == nil {
		t.Error("zero -drain-after accepted")
	}
	if _, err := newDrainPlanner(time.Second, -time.Second, 3); err == nil {
		t.Error("negative cooldown accepted")
	}
	if _, err := newDrainPlanner(time.Second, 0, 0); err == nil {
		t.Error("zero floor accepted")
	}
}

func TestOpenMembers(t *testing.T) {
	gauges := map[string]float64{
		"backend_unhealthy_0": 0,
		"backend_unhealthy_2": 1,
		"backend_unhealthy_9": 1, // not a member: ignored
		"requests_total":      500,
	}
	open := openMembers(gauges, []int{0, 1, 2})
	if len(open) != 1 || !open[2] {
		t.Fatalf("openMembers = %v, want {2}", open)
	}
}

func TestTriggerDrainAcceptsQueued(t *testing.T) {
	var gotPath string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path + "?" + r.URL.RawQuery
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"version": 0, "queued": true}`))
	}))
	defer srv.Close()
	client := &http.Client{Timeout: time.Second}
	if err := triggerDrain(client, strings.TrimPrefix(srv.URL, "http://"), 4); err != nil {
		t.Fatal(err)
	}
	if gotPath != "/drain?id=4" {
		t.Errorf("POST path = %q, want /drain?id=4", gotPath)
	}
}

func TestTriggerDrainRejectsError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "membership change in flight", http.StatusConflict)
	}))
	defer srv.Close()
	client := &http.Client{Timeout: time.Second}
	if err := triggerDrain(client, strings.TrimPrefix(srv.URL, "http://"), 1); err == nil {
		t.Fatal("409 accepted")
	}
}

func TestFetchGauges(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"backend_unhealthy_1": 1, "label": "x", "requests_total": 7}`))
	}))
	defer srv.Close()
	client := &http.Client{Timeout: time.Second}
	g, err := fetchGauges(client, strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	if g["backend_unhealthy_1"] != 1 || g["requests_total"] != 7 {
		t.Fatalf("fetchGauges = %v", g)
	}
	if _, ok := g["label"]; ok {
		t.Error("non-numeric value kept")
	}
}
