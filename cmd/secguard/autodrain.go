package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// drainPlanner decides when a persistently unhealthy backend should be
// drained out of the membership view. The frontend's circuit breaker
// already stops SENDING to a dead node; draining goes further and hands
// its key ranges to the survivors, restoring full replication. That is
// a heavyweight, data-moving response, so the planner is deliberately
// conservative:
//
//   - hysteresis: a breaker must stay open continuously for the whole
//     `after` window before its node is a candidate — flapping nodes
//     (opened, probed, half-opened) reset their clock on every recovery;
//   - cooldown: drains are spaced at least `cooldown` apart, so one bad
//     rack does not trigger a migration storm;
//   - floor: never drain below minNodes members (the replication factor
//     d — fewer members than d cannot host a replica group at all).
//
// One node per call: the oldest-open (ties to the lowest ID), matching
// the one-change-at-a-time membership pipeline.
type drainPlanner struct {
	after     time.Duration
	cooldown  time.Duration
	minNodes  int
	openSince map[int]time.Time
	lastFired time.Time
	fired     int
}

func newDrainPlanner(after, cooldown time.Duration, minNodes int) (*drainPlanner, error) {
	if after <= 0 {
		return nil, fmt.Errorf("secguard: -drain-after must be positive, got %v", after)
	}
	if cooldown < 0 {
		return nil, fmt.Errorf("secguard: -drain-cooldown must be >= 0, got %v", cooldown)
	}
	if minNodes < 1 {
		return nil, fmt.Errorf("secguard: drain floor %d, need >= 1", minNodes)
	}
	return &drainPlanner{
		after:     after,
		cooldown:  cooldown,
		minNodes:  minNodes,
		openSince: make(map[int]time.Time),
	}, nil
}

// Observe feeds one polling window: the current member set and which of
// those members currently have an open breaker. It returns the member ID
// to drain now, or -1. A returned ID counts as fired (the cooldown
// starts) — the caller must actually POST the drain.
func (p *drainPlanner) Observe(now time.Time, members []int, open map[int]bool) int {
	memberSet := make(map[int]bool, len(members))
	for _, id := range members {
		memberSet[id] = true
	}
	// A node that recovered, or left the view by other means, resets its
	// clock entirely.
	for id := range p.openSince {
		if !open[id] || !memberSet[id] {
			delete(p.openSince, id)
		}
	}
	for id := range open {
		if memberSet[id] {
			if _, ok := p.openSince[id]; !ok {
				p.openSince[id] = now
			}
		}
	}
	if len(members)-1 < p.minNodes {
		return -1
	}
	if p.fired > 0 && now.Sub(p.lastFired) < p.cooldown {
		return -1
	}
	best := -1
	var bestSince time.Time
	ids := make([]int, 0, len(p.openSince))
	for id := range p.openSince {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		since := p.openSince[id]
		if now.Sub(since) < p.after {
			continue
		}
		if best == -1 || since.Before(bestSince) {
			best, bestSince = id, since
		}
	}
	if best >= 0 {
		p.fired++
		p.lastFired = now
		delete(p.openSince, best)
	}
	return best
}

// Fired returns how many drains the planner has triggered.
func (p *drainPlanner) Fired() int { return p.fired }

// fetchGauges reads an admin /metrics surface as a flat name -> value
// map (non-numeric values are dropped).
func fetchGauges(client *http.Client, admin string) (map[string]float64, error) {
	resp, err := client.Get("http://" + admin + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var raw map[string]interface{}
	if err := json.Unmarshal(body, &raw); err != nil {
		return nil, fmt.Errorf("metrics: bad payload: %w", err)
	}
	out := make(map[string]float64, len(raw))
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out, nil
}

// openMembers extracts which members the frontend currently reports as
// unhealthy (breaker open) from its metrics gauges.
func openMembers(gauges map[string]float64, members []int) map[int]bool {
	open := make(map[int]bool)
	for _, id := range members {
		if gauges[fmt.Sprintf("backend_unhealthy_%d", id)] > 0 {
			open[id] = true
		}
	}
	return open
}

// triggerDrain POSTs the frontend admin's /drain verb for one node. A
// 202 means the change was queued behind an in-flight one — still a
// success; the frontend will run it when the pipeline frees up.
func triggerDrain(client *http.Client, admin string, id int) error {
	resp, err := client.Post(fmt.Sprintf("http://%s/drain?id=%d", admin, id), "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("drain %d: status %d: %s", id, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var report struct {
		Version int  `json:"version"`
		Queued  bool `json:"queued"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		return fmt.Errorf("drain %d: bad report: %w", id, err)
	}
	if report.Queued {
		fmt.Printf("secguard: drain of node %d queued behind an in-flight change\n", id)
	} else {
		fmt.Printf("secguard: draining node %d (membership v%d)\n", id, report.Version)
	}
	return nil
}
