// Command sechotpath benchmarks the frontend hot path end to end on an
// in-process cluster: it boots n backends plus a frontend, warms the
// cache with a zipf-skewed key stream, then measures read throughput,
// latency quantiles, and client-visible allocation cost for every
// combination the PR's tentpole cares about — in-process calls vs the
// wire protocol, and the serialized (locked) cache vs the sharded one.
// This is the number BENCH_hotpath.json records:
//
//	sechotpath -n 3 -d 2 -m 2000 -ops 200000 -json BENCH_hotpath.json
//
// Caveat for reading the locked-vs-sharded delta: sharding removes a
// global lock, so its win only appears with GOMAXPROCS > 1. On a single
// core the sharded variant pays the shard-mix overhead with nothing to
// parallelize and can come out slightly behind; the report includes
// gomaxprocs so the numbers are interpreted against the machine that
// produced them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"securecache/internal/cache"
	"securecache/internal/kvstore"
	"securecache/internal/stats"
	"securecache/internal/workload"
)

func main() {
	var (
		n         = flag.Int("n", 3, "number of backends")
		d         = flag.Int("d", 2, "replication factor")
		m         = flag.Int("m", 2000, "key-space size")
		ops       = flag.Int("ops", 200000, "timed GET ops per scenario")
		workers   = flag.Int("workers", 2*runtime.GOMAXPROCS(0), "concurrent readers")
		cacheKind = flag.String("cache", "lfu", "cache policy under test")
		cacheSize = flag.Int("cache-size", 0, "cache entries (0 = the whole key space)")
		zipfS     = flag.Float64("zipf-s", 1.01, "zipf exponent of the read stream")
		jsonPath  = flag.String("json", "", "also write the bench report to this file")
	)
	flag.Parse()

	size := *cacheSize
	if size == 0 {
		size = *m
	}
	cfg := benchConfig{
		Nodes: *n, Replication: *d, Keys: *m, Ops: *ops,
		Workers: *workers, CacheKind: *cacheKind, CacheSize: size, ZipfS: *zipfS,
	}

	report := map[string]interface{}{
		"nodes":       cfg.Nodes,
		"replication": cfg.Replication,
		"keys":        cfg.Keys,
		"ops":         cfg.Ops,
		"workers":     cfg.Workers,
		"cache":       cfg.CacheKind,
		"cache_size":  cfg.CacheSize,
		"zipf_s":      cfg.ZipfS,
		"gomaxprocs":  runtime.GOMAXPROCS(0),
	}
	for _, sc := range []scenario{
		{"direct_locked", false, false},
		{"direct_sharded", false, true},
		{"wire_locked", true, false},
		{"wire_sharded", true, true},
	} {
		res, err := runScenario(cfg, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sechotpath:", err)
			os.Exit(2)
		}
		fmt.Printf("%-15s %9.0f ops/s  p50≈%.0fµs p99≈%.0fµs  %d allocs/op %d B/op  hit-rate %.3f\n",
			sc.name, res.opsPerSec, res.p50, res.p99, res.allocsPerOp, res.bytesPerOp, res.hitRate)
		report[sc.name+"_ops_per_sec"] = res.opsPerSec
		report[sc.name+"_p50_micros"] = res.p50
		report[sc.name+"_p99_micros"] = res.p99
		report[sc.name+"_allocs_per_op"] = res.allocsPerOp
		report[sc.name+"_bytes_per_op"] = res.bytesPerOp
		report[sc.name+"_cache_hit_rate"] = res.hitRate
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sechotpath:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sechotpath:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

type benchConfig struct {
	Nodes, Replication, Keys, Ops, Workers int
	CacheKind                              string
	CacheSize                              int
	ZipfS                                  float64
}

type scenario struct {
	name    string
	wire    bool // through loopback TCP vs in-process Frontend calls
	sharded bool // cache.Sharded vs the frontend's serializing mutex
}

type result struct {
	opsPerSec, p50, p99     float64
	allocsPerOp, bytesPerOp uint64
	hitRate                 float64
}

func runScenario(cfg benchConfig, sc scenario) (result, error) {
	var (
		fc  cache.Cache
		err error
	)
	if sc.sharded {
		fc, err = cache.NewSharded(cache.Kind(cfg.CacheKind), cfg.CacheSize, 0)
	} else {
		fc, err = cache.New(cache.Kind(cfg.CacheKind), cfg.CacheSize)
	}
	if err != nil {
		return result{}, err
	}
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes:       cfg.Nodes,
		Replication: cfg.Replication,
		Cache:       fc,
		// The hot path is the subject; keep the repair machinery quiet.
		RepairInterval: -1,
	})
	if err != nil {
		return result{}, err
	}
	defer lc.Close()

	for k := 0; k < cfg.Keys; k++ {
		if err := lc.Frontend.Set(workload.KeyName(k), []byte("hotpath-payload")); err != nil {
			return result{}, fmt.Errorf("preload key %d: %w", k, err)
		}
	}

	// Pre-generate each worker's key stream so the timed loop measures the
	// read path, not the zipf sampler.
	perWorker := (cfg.Ops + cfg.Workers - 1) / cfg.Workers
	streams := make([][]int, cfg.Workers)
	for w := range streams {
		gen := workload.NewGenerator(workload.NewZipf(cfg.Keys, cfg.ZipfS), uint64(w)+1)
		streams[w] = gen.Batch(make([]int, 0, perWorker), perWorker)
	}

	// Warm pass: one untimed sweep of the stream heads so the cache holds
	// the hot set before measurement starts.
	warm := cfg.Keys
	if warm > perWorker {
		warm = perWorker
	}
	for _, k := range streams[0][:warm] {
		if _, err := lc.Frontend.Get(workload.KeyName(k)); err != nil {
			return result{}, err
		}
	}
	statsBefore := lc.Frontend.CacheStats()

	getter := func() (func(string) error, func()) {
		if !sc.wire {
			return func(key string) error {
				_, err := lc.Frontend.Get(key)
				return err
			}, func() {}
		}
		c := kvstore.NewClient(lc.FrontendAddr)
		return func(key string) error {
			_, err := c.Get(key)
			return err
		}, func() { c.Close() }
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    int
		firstErr error
		p50      = stats.NewP2Quantile(0.50)
		p99      = stats.NewP2Quantile(0.99)
	)
	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(keys []int) {
			defer wg.Done()
			get, done := getter()
			defer done()
			localP50 := stats.NewP2Quantile(0.50)
			localP99 := stats.NewP2Quantile(0.99)
			for _, k := range keys {
				t0 := time.Now()
				if err := get(workload.KeyName(k)); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				us := float64(time.Since(t0).Microseconds())
				localP50.Add(us)
				localP99.Add(us)
			}
			// Quantile-of-worker-quantiles merge, same approximation the
			// kvload report uses.
			mu.Lock()
			total += len(keys)
			if localP50.N() > 0 {
				p50.Add(localP50.Value())
				p99.Add(localP99.Value())
			}
			mu.Unlock()
		}(streams[w])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	if firstErr != nil {
		return result{}, firstErr
	}
	statsAfter := lc.Frontend.CacheStats()
	res := result{
		opsPerSec:   float64(total) / elapsed.Seconds(),
		p50:         p50.Value(),
		p99:         p99.Value(),
		allocsPerOp: (msAfter.Mallocs - msBefore.Mallocs) / uint64(total),
		bytesPerOp:  (msAfter.TotalAlloc - msBefore.TotalAlloc) / uint64(total),
	}
	if lookups := float64(statsAfter.Hits+statsAfter.Misses) - float64(statsBefore.Hits+statsBefore.Misses); lookups > 0 {
		res.hitRate = (float64(statsAfter.Hits) - float64(statsBefore.Hits)) / lookups
	}
	return res, nil
}
