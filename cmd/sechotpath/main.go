// Command sechotpath benchmarks the frontend hot path end to end on an
// in-process cluster: it boots n backends plus a frontend, warms the
// cache with a zipf-skewed key stream, then measures read throughput,
// latency quantiles, and client-visible allocation cost. Three
// measurement groups feed BENCH_hotpath.json:
//
//   - the legacy scenario grid (in-process vs wire × locked vs sharded
//     cache), kept for continuity with earlier baselines;
//   - the pipeline sweep: wire GET throughput for every GOMAXPROCS ×
//     pipeline-depth combination (-gmp × -depths; depth 1 runs the
//     lockstep transport, deeper runs multiplex one shared pipelined
//     conn), which is where the "pipelined ≥ 3× lockstep" acceptance
//     number comes from;
//   - the saturation curve: ops/s vs concurrent clients at the deepest
//     window, so scalability regressions — not just single-op latency —
//     show up in the record.
//
//	sechotpath -n 3 -d 2 -m 2000 -ops 200000 -json BENCH_hotpath.json
//
// CI smoke mode compares the live depth-64 speedup against the recorded
// baseline and fails on a >20% regression (the ratio of pipelined to
// lockstep throughput is machine-independent where absolute ops/s is
// not):
//
//	sechotpath -check BENCH_hotpath.json -sweep-ops 30000
//
// Caveat for reading the locked-vs-sharded delta: sharding removes a
// global lock, so its win only appears with GOMAXPROCS > 1. On a single
// core the sharded variant pays the shard-mix overhead with nothing to
// parallelize and can come out slightly behind; the report includes
// gomaxprocs so the numbers are interpreted against the machine that
// produced them. The pipelined win is different in kind: it comes from
// writev syscall amortization and out-of-order completion, so it holds
// even at GOMAXPROCS=1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"securecache/internal/cache"
	"securecache/internal/kvstore"
	"securecache/internal/stats"
	"securecache/internal/workload"
)

func main() {
	var (
		n          = flag.Int("n", 3, "number of backends")
		d          = flag.Int("d", 2, "replication factor")
		m          = flag.Int("m", 2000, "key-space size")
		ops        = flag.Int("ops", 200000, "timed GET ops per legacy scenario")
		workers    = flag.Int("workers", 2*runtime.GOMAXPROCS(0), "concurrent readers for the legacy scenarios")
		cacheKind  = flag.String("cache", "lfu", "cache policy under test")
		cacheSize  = flag.Int("cache-size", 0, "cache entries (0 = the whole key space)")
		zipfS      = flag.Float64("zipf-s", 1.01, "zipf exponent of the read stream")
		jsonPath   = flag.String("json", "", "also write the bench report to this file")
		gmpList    = flag.String("gmp", "", "GOMAXPROCS values for the pipeline sweep (default \"1,2,4,N\" with N = NumCPU, deduplicated)")
		depthList  = flag.String("depths", "1,8,64", "pipeline depths for the sweep (1 = lockstep transport)")
		sweepOps   = flag.Int("sweep-ops", 60000, "timed ops per sweep cell")
		sweepCall  = flag.Int("sweep-callers", 0, "caller goroutines per sweep cell (0 = max(2*gomaxprocs, depth))")
		satClients = flag.String("sat-clients", "1,2,4,8,16,32,64", "client counts for the saturation curve (empty = skip)")
		satOps     = flag.Int("sat-ops", 40000, "timed ops per saturation point")
		satDepth   = flag.Int("sat-depth", 64, "pipeline depth for the saturation curve")
		checkPath  = flag.String("check", "", "smoke mode: compare the live depth-64 speedup against this baseline JSON and exit 1 on a >20% regression")
	)
	flag.Parse()

	size := *cacheSize
	if size == 0 {
		size = *m
	}
	cfg := benchConfig{
		Nodes: *n, Replication: *d, Keys: *m, Ops: *ops,
		Workers: *workers, CacheKind: *cacheKind, CacheSize: size, ZipfS: *zipfS,
	}

	if *checkPath != "" {
		if err := runCheck(cfg, *checkPath, *sweepOps); err != nil {
			fmt.Fprintln(os.Stderr, "sechotpath:", err)
			os.Exit(1)
		}
		return
	}

	gmps, err := parseIntList(*gmpList, defaultGmpList())
	if err != nil {
		fatal(err)
	}
	depths, err := parseIntList(*depthList, nil)
	if err != nil {
		fatal(err)
	}
	clients, err := parseIntList(*satClients, nil)
	if err != nil {
		fatal(err)
	}

	report := map[string]interface{}{
		"nodes":       cfg.Nodes,
		"replication": cfg.Replication,
		"keys":        cfg.Keys,
		"ops":         cfg.Ops,
		"workers":     cfg.Workers,
		"cache":       cfg.CacheKind,
		"cache_size":  cfg.CacheSize,
		"zipf_s":      cfg.ZipfS,
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"num_cpu":     runtime.NumCPU(),
	}

	for _, sc := range []scenario{
		{"direct_locked", false, false},
		{"direct_sharded", false, true},
		{"wire_locked", true, false},
		{"wire_sharded", true, true},
	} {
		res, err := runScenario(cfg, sc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-15s %9.0f ops/s  p50≈%.0fµs p99≈%.0fµs  %d allocs/op %d B/op  hit-rate %.3f\n",
			sc.name, res.opsPerSec, res.p50, res.p99, res.allocsPerOp, res.bytesPerOp, res.hitRate)
		report[sc.name+"_ops_per_sec"] = res.opsPerSec
		report[sc.name+"_p50_micros"] = res.p50
		report[sc.name+"_p99_micros"] = res.p99
		report[sc.name+"_allocs_per_op"] = res.allocsPerOp
		report[sc.name+"_bytes_per_op"] = res.bytesPerOp
		report[sc.name+"_cache_hit_rate"] = res.hitRate
	}

	// Pipeline sweep: one warm cluster, fresh clients per cell,
	// GOMAXPROCS switched between cells. The server sizes its
	// per-connection worker pool when a conn upgrades to pipelined, so
	// each cell's fresh conn sees the cell's GOMAXPROCS.
	cl, err := bootCluster(cfg, true)
	if err != nil {
		fatal(err)
	}
	defer cl.close()

	prevGmp := runtime.GOMAXPROCS(0)
	var sweep []sweepEntry
	fmt.Println("pipeline sweep (wire GET):")
	for _, g := range gmps {
		runtime.GOMAXPROCS(g)
		for _, depth := range depths {
			// One caller per window slot keeps the pipe full at every
			// GOMAXPROCS: cooperative scheduling drains every runnable
			// caller between syscalls, and the server's inline fast path
			// means extra callers no longer buy extra goroutine churn on
			// an oversubscribed core (measured 388k vs 354k ops/s at
			// gmp=4 depth=64 with 64 callers vs 32).
			callers := depth
			if callers < 2*g {
				callers = 2 * g
			}
			if *sweepCall > 0 {
				callers = *sweepCall
			}
			res, err := cl.measureWire(depth, callers, *sweepOps)
			if err != nil {
				runtime.GOMAXPROCS(prevGmp)
				fatal(err)
			}
			e := sweepEntry{
				Gomaxprocs: g, Depth: depth, Callers: callers,
				OpsPerSec: res.opsPerSec, P50Micros: res.p50, P99Micros: res.p99,
				WindowWaitMeanMicros: res.windowWaitMean,
			}
			sweep = append(sweep, e)
			fmt.Printf("  gmp=%d depth=%-3d callers=%-3d %9.0f ops/s  p50≈%.0fµs p99≈%.0fµs  window-wait≈%.0fµs\n",
				g, depth, callers, e.OpsPerSec, e.P50Micros, e.P99Micros, e.WindowWaitMeanMicros)
		}
	}
	runtime.GOMAXPROCS(prevGmp)
	report["pipeline_sweep"] = sweep
	if sp, at := speedup(sweep, 4); sp > 0 {
		report["pipeline_speedup_gmp4"] = sp
		fmt.Printf("pipelined speedup at gmp=%d: %.2fx (deepest window vs lockstep)\n", at, sp)
	}

	if len(clients) > 0 {
		g := gmps[len(gmps)-1]
		runtime.GOMAXPROCS(g)
		var curve []satEntry
		fmt.Printf("saturation curve (gmp=%d, depth=%d):\n", g, *satDepth)
		for _, c := range clients {
			lock, err := cl.measureWire(1, c, *satOps)
			if err != nil {
				runtime.GOMAXPROCS(prevGmp)
				fatal(err)
			}
			pipe, err := cl.measureWire(*satDepth, c, *satOps)
			if err != nil {
				runtime.GOMAXPROCS(prevGmp)
				fatal(err)
			}
			e := satEntry{Clients: c, LockstepOpsPerSec: lock.opsPerSec, PipelinedOpsPerSec: pipe.opsPerSec}
			curve = append(curve, e)
			fmt.Printf("  clients=%-3d lockstep %9.0f ops/s   pipelined %9.0f ops/s\n",
				c, e.LockstepOpsPerSec, e.PipelinedOpsPerSec)
		}
		runtime.GOMAXPROCS(prevGmp)
		report["saturation"] = curve
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sechotpath:", err)
	os.Exit(2)
}

// runCheck is the CI smoke gate: measure lockstep vs the deepest window
// at GOMAXPROCS=4 and require the live speedup to be within 20% of the
// baseline's recorded pipeline_speedup_gmp4. Comparing ratios instead
// of absolute ops/s makes the guard portable across runner hardware.
func runCheck(cfg benchConfig, baselinePath string, ops int) error {
	blob, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline map[string]interface{}
	if err := json.Unmarshal(blob, &baseline); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	want, ok := baseline["pipeline_speedup_gmp4"].(float64)
	if !ok || want <= 0 {
		return fmt.Errorf("%s records no pipeline_speedup_gmp4 — re-baseline first", baselinePath)
	}

	cl, err := bootCluster(cfg, true)
	if err != nil {
		return err
	}
	defer cl.close()
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	lock, err := cl.measureWire(1, 8, ops)
	if err != nil {
		return err
	}
	pipe, err := cl.measureWire(64, 64, ops)
	if err != nil {
		return err
	}
	got := pipe.opsPerSec / lock.opsPerSec
	fmt.Printf("check: lockstep %.0f ops/s, depth-64 %.0f ops/s → speedup %.2fx (baseline %.2fx)\n",
		lock.opsPerSec, pipe.opsPerSec, got, want)
	if got < 0.8*want {
		return fmt.Errorf("depth-64 speedup %.2fx regressed >20%% below the recorded baseline %.2fx", got, want)
	}
	fmt.Println("check: OK")
	return nil
}

// speedup returns the deepest-window / lockstep throughput ratio at the
// sweep's GOMAXPROCS value closest to wantGmp (exact match preferred).
func speedup(sweep []sweepEntry, wantGmp int) (ratio float64, atGmp int) {
	best := -1
	for _, e := range sweep {
		if best == -1 || abs(e.Gomaxprocs-wantGmp) < abs(best-wantGmp) {
			best = e.Gomaxprocs
		}
	}
	if best == -1 {
		return 0, 0
	}
	var lockstep, deepest float64
	depth := 0
	for _, e := range sweep {
		if e.Gomaxprocs != best {
			continue
		}
		if e.Depth == 1 {
			lockstep = e.OpsPerSec
		}
		if e.Depth > depth {
			depth, deepest = e.Depth, e.OpsPerSec
		}
	}
	if lockstep <= 0 || depth <= 1 {
		return 0, 0
	}
	return deepest / lockstep, best
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func defaultGmpList() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.NumCPU(): true}
	out := make([]int, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

func parseIntList(s string, def []int) ([]int, error) {
	if s == "" {
		return def, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad list entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

type benchConfig struct {
	Nodes, Replication, Keys, Ops, Workers int
	CacheKind                              string
	CacheSize                              int
	ZipfS                                  float64
}

type scenario struct {
	name    string
	wire    bool // through loopback TCP vs in-process Frontend calls
	sharded bool // cache.Sharded vs the frontend's serializing mutex
}

type result struct {
	opsPerSec, p50, p99     float64
	allocsPerOp, bytesPerOp uint64
	hitRate                 float64
	windowWaitMean          float64 // µs per stalled send; 0 when the window never filled
}

type sweepEntry struct {
	Gomaxprocs           int     `json:"gomaxprocs"`
	Depth                int     `json:"depth"`
	Callers              int     `json:"callers"`
	OpsPerSec            float64 `json:"ops_per_sec"`
	P50Micros            float64 `json:"p50_micros"`
	P99Micros            float64 `json:"p99_micros"`
	WindowWaitMeanMicros float64 `json:"window_wait_mean_micros"`
}

type satEntry struct {
	Clients            int     `json:"clients"`
	LockstepOpsPerSec  float64 `json:"lockstep_ops_per_sec"`
	PipelinedOpsPerSec float64 `json:"pipelined_ops_per_sec"`
}

// cluster is a booted, preloaded, cache-warmed local cluster the sweep
// reuses across cells (fresh clients per cell, shared server state).
type cluster struct {
	cfg benchConfig
	lc  *kvstore.LocalCluster
}

func bootCluster(cfg benchConfig, sharded bool) (*cluster, error) {
	var (
		fc  cache.Cache
		err error
	)
	if sharded {
		fc, err = cache.NewSharded(cache.Kind(cfg.CacheKind), cfg.CacheSize, 0)
	} else {
		fc, err = cache.New(cache.Kind(cfg.CacheKind), cfg.CacheSize)
	}
	if err != nil {
		return nil, err
	}
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes:       cfg.Nodes,
		Replication: cfg.Replication,
		Cache:       fc,
		// The hot path is the subject; keep the repair machinery quiet.
		RepairInterval: -1,
	})
	if err != nil {
		return nil, err
	}
	cl := &cluster{cfg: cfg, lc: lc}
	for k := 0; k < cfg.Keys; k++ {
		if err := lc.Frontend.Set(workload.KeyName(k), []byte("hotpath-payload")); err != nil {
			lc.Close()
			return nil, fmt.Errorf("preload key %d: %w", k, err)
		}
	}
	// Warm pass: one untimed sweep so the cache holds the hot set.
	gen := workload.NewGenerator(workload.NewZipf(cfg.Keys, cfg.ZipfS), 1)
	for _, k := range gen.Batch(make([]int, 0, cfg.Keys), cfg.Keys) {
		if _, err := lc.Frontend.Get(workload.KeyName(k)); err != nil {
			lc.Close()
			return nil, err
		}
	}
	return cl, nil
}

func (cl *cluster) close() { cl.lc.Close() }

// measureWire times ops wire GETs against the frontend with callers
// concurrent goroutines. depth <= 1 gives every caller its own lockstep
// client (one in-flight frame per conn, the pre-pipelining transport);
// depth > 1 multiplexes every caller onto ONE shared pipelined client,
// the deployment shape the pipelined transport is built for.
func (cl *cluster) measureWire(depth, callers, ops int) (result, error) {
	perWorker := (ops + callers - 1) / callers
	streams := make([][]int, callers)
	for w := range streams {
		gen := workload.NewGenerator(workload.NewZipf(cl.cfg.Keys, cl.cfg.ZipfS), uint64(w)+1)
		streams[w] = gen.Batch(make([]int, 0, perWorker), perWorker)
	}

	var waitCount, waitMicros atomic.Int64
	var shared *kvstore.Client
	if depth > 1 {
		shared = kvstore.NewClientWithConfig(cl.lc.FrontendAddr, kvstore.ClientConfig{
			PipelineDepth: depth,
			OnWindowWait: func(w time.Duration) {
				waitCount.Add(1)
				waitMicros.Add(w.Microseconds())
			},
		})
		defer shared.Close()
	}
	getter := func() (func(string) error, func()) {
		if shared != nil {
			return func(key string) error {
				_, err := shared.Get(key)
				return err
			}, func() {}
		}
		c := kvstore.NewClient(cl.lc.FrontendAddr)
		return func(key string) error {
			_, err := c.Get(key)
			return err
		}, func() { c.Close() }
	}
	res, err := measure(streams, getter)
	if err != nil {
		return result{}, err
	}
	if n := waitCount.Load(); n > 0 {
		res.windowWaitMean = float64(waitMicros.Load()) / float64(n)
	}
	return res, nil
}

func runScenario(cfg benchConfig, sc scenario) (result, error) {
	cl, err := bootCluster(cfg, sc.sharded)
	if err != nil {
		return result{}, err
	}
	defer cl.close()
	statsBefore := cl.lc.Frontend.CacheStats()

	perWorker := (cfg.Ops + cfg.Workers - 1) / cfg.Workers
	streams := make([][]int, cfg.Workers)
	for w := range streams {
		gen := workload.NewGenerator(workload.NewZipf(cfg.Keys, cfg.ZipfS), uint64(w)+1)
		streams[w] = gen.Batch(make([]int, 0, perWorker), perWorker)
	}
	getter := func() (func(string) error, func()) {
		if !sc.wire {
			return func(key string) error {
				_, err := cl.lc.Frontend.Get(key)
				return err
			}, func() {}
		}
		c := kvstore.NewClient(cl.lc.FrontendAddr)
		return func(key string) error {
			_, err := c.Get(key)
			return err
		}, func() { c.Close() }
	}
	res, err := measure(streams, getter)
	if err != nil {
		return result{}, err
	}
	statsAfter := cl.lc.Frontend.CacheStats()
	if lookups := float64(statsAfter.Hits+statsAfter.Misses) - float64(statsBefore.Hits+statsBefore.Misses); lookups > 0 {
		res.hitRate = (float64(statsAfter.Hits) - float64(statsBefore.Hits)) / lookups
	}
	return res, nil
}

// measure drives one goroutine per stream through get and aggregates
// throughput, approximate quantiles (quantile-of-worker-quantiles, the
// same merge the kvload report uses), and client-side allocation cost.
func measure(streams [][]int, getter func() (func(string) error, func())) (result, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		total    int
		firstErr error
		p50      = stats.NewP2Quantile(0.50)
		p99      = stats.NewP2Quantile(0.99)
	)
	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for w := range streams {
		wg.Add(1)
		go func(keys []int) {
			defer wg.Done()
			get, done := getter()
			defer done()
			localP50 := stats.NewP2Quantile(0.50)
			localP99 := stats.NewP2Quantile(0.99)
			for _, k := range keys {
				t0 := time.Now()
				if err := get(workload.KeyName(k)); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				us := float64(time.Since(t0).Microseconds())
				localP50.Add(us)
				localP99.Add(us)
			}
			mu.Lock()
			total += len(keys)
			if localP50.N() > 0 {
				p50.Add(localP50.Value())
				p99.Add(localP99.Value())
			}
			mu.Unlock()
		}(streams[w])
	}
	wg.Wait()
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	if firstErr != nil {
		return result{}, firstErr
	}
	return result{
		opsPerSec:   float64(total) / elapsed.Seconds(),
		p50:         p50.Value(),
		p99:         p99.Value(),
		allocsPerOp: (msAfter.Mallocs - msBefore.Mallocs) / uint64(total),
		bytesPerOp:  (msAfter.TotalAlloc - msBefore.TotalAlloc) / uint64(total),
	}, nil
}
