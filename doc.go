// Package securecache reproduces "Secure Cache Provision: Provable DDOS
// Prevention for Randomly Partitioned Services with Replication" (Chu,
// Guan, Lui, Cai, Shi — IEEE ICDCS Workshops 2013) as a production-grade
// Go library.
//
// The implementation lives under internal/, organized as one package per
// subsystem:
//
//   - internal/core        — the paper's analysis: Theorem 1, the Eq. 8/10
//     throughput bounds, and the O(n·lnln n/ln d) cache provisioning rule
//   - internal/attack      — the adversary model and empirical attack
//     evaluation
//   - internal/sim         — the multi-run simulation harness
//   - internal/experiments — one driver per paper figure plus ablations
//   - internal/cluster, internal/partition, internal/workload,
//     internal/ballsbins, internal/cache, internal/sketch,
//     internal/hashing, internal/stats, internal/xrand — the simulation
//     substrates
//   - internal/kvstore, internal/proto, internal/metrics, internal/trace
//     — a real networked key-value store implementing the architecture
//     end-to-end over TCP
//
// Binaries under cmd/ expose the calculator (secbound), the simulator
// (secsim), the adversary (secattack), the full evaluation
// (secexperiments), and a deployable store (kvnode, kvfront, kvload).
// Start with README.md and examples/quickstart.
//
// The benchmarks in bench_test.go regenerate every figure of the paper's
// evaluation at scaled-down parameters; run the secexperiments binary for
// paper-size sweeps.
package securecache
