// Quickstart: size a front-end cache for a replicated cluster and verify
// the provisioning rule by simulation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"securecache/internal/attack"
	"securecache/internal/core"
)

func main() {
	// A cluster like the paper's evaluation: 1000 back-end nodes,
	// replication factor 3, 100k stored items.
	params := core.Params{
		Nodes:       1000,
		Replication: 3,
		Items:       100000,
		CacheSize:   200, // what we currently deployed
		KOverride:   1.2, // the paper's fitted bound constant
	}

	// Step 1: ask the theory.
	report, err := params.Provision()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== provisioning report ==")
	fmt.Println(report)

	// Step 2: verify empirically. The adversary knows n, d, m, c but not
	// the partition seed; Evaluate runs its best strategy against fresh
	// random partitions.
	adv := attack.Adversary{
		Items:       params.Items,
		Nodes:       params.Nodes,
		Replication: params.Replication,
		CacheSize:   params.CacheSize,
		KOverride:   1.2,
	}
	cfg := attack.EvalConfig{Rate: 100000, Runs: 50, Seed: 1}
	res, err := adv.EvaluateBest(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== empirical attack at c=%d ==\n", params.CacheSize)
	fmt.Printf("adversary queries %d keys, achieves gain %s\n", res.X, res.MaxGain)

	// Step 3: grow the cache to the required size and attack again. At
	// exactly c* the best the adversary can do is query every key, which
	// leaves the hottest node within a whisker of the even share (the
	// fitted k = 1.2 puts the threshold right at the knee, so expect a
	// gain of ~1.0, not the 5x of the small cache).
	adv.CacheSize = report.RequiredCacheSize
	res2, err := adv.EvaluateBest(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== empirical attack at c* = %d ==\n", report.RequiredCacheSize)
	fmt.Printf("adversary queries %d keys, achieves gain %.4f (was %.2f)\n",
		res2.X, float64(res2.MaxGain), float64(res.MaxGain))

	// Step 4: in production you add engineering margin on top of the
	// analytical knee; 1.5x c* pushes the gain strictly below 1.
	adv.CacheSize = report.RequiredCacheSize * 3 / 2
	res3, err := adv.EvaluateBest(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== empirical attack at 1.5x c* = %d ==\n", adv.CacheSize)
	fmt.Printf("adversary queries %d keys, achieves gain %s\n", res3.X, res3.MaxGain)
	fmt.Println("\nconclusion: an O(n) front-end cache provably neutralizes adversarial workloads.")
}
