// Live cluster demo: boots a real kvstore deployment (TCP over loopback),
// attacks it with the paper's optimal access pattern, and shows the
// per-node request counts with an under-provisioned cache versus a
// correctly provisioned one.
//
// Run with:
//
//	go run ./examples/livecluster
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"time"

	"securecache/internal/cache"
	"securecache/internal/core"
	"securecache/internal/faultnet"
	"securecache/internal/kvstore"
	"securecache/internal/overload"
	"securecache/internal/partition"
	"securecache/internal/workload"
)

const (
	nodes       = 8
	replication = 3
	cacheSize   = 16 // deliberately below the queried-key count
	queries     = 20000
)

func main() {
	// The attacker queries cacheSize+1 keys at equal rates: the cache can
	// pin at most cacheSize of them, so one key's stream always leaks to
	// the backends — and lands on a single replica.
	dist := workload.NewAdversarial(1000, cacheSize+1, 0)

	fmt.Printf("attack: %d equal-rate keys against %d nodes (d=%d), %d queries\n\n",
		cacheSize+1, nodes, replication, queries)

	small := runScenario("under-provisioned cache (LFU, 16 entries)",
		cache.NewLFU(cacheSize), dist)
	big := runScenario("provisioned cache (LFU, 64 entries >= queried keys)",
		cache.NewLFU(4*cacheSize), dist)

	fmt.Println("== conclusion ==")
	fmt.Printf("backend requests: %d (small cache) vs %d (provisioned cache)\n", small, big)
	fmt.Println("a front-end cache sized past the provisioning threshold absorbs the entire attack.")
	fmt.Println()

	runResilienceScenario(dist)
	fmt.Println()
	runOverloadScenario(dist)
	fmt.Println()
	runRotationScenario()
	fmt.Println()
	runCrashScenario()
	fmt.Println()
	runMembershipScenario()
}

// runMembershipScenario scales the cluster live: a new node joins
// through the admin HTTP verb (the same surface `kvnode -join-via`
// POSTs), the migrator fills it with exactly the keys whose replica
// group changed, auto-provisioning re-derives the paper's c* for the
// new n, and a drain empties a node back out — all without a restart or
// a failed read.
func runMembershipScenario() {
	const (
		d     = 3
		items = 400
	)
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes:         5,
		Replication:   d,
		PartitionSeed: 0xA11CE,
		Admin:         true,
		Rotation:      kvstore.RotationConfig{Rate: -1},
		Provision:     kvstore.ProvisionConfig{Items: items, KOverride: 1.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()

	front := lc.Frontend
	for k := 0; k < items; k++ {
		if err := front.Set(workload.KeyName(k), []byte("value")); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("== elastic membership: live join/drain + auto-provisioning ==")
	st := front.MembershipStatus()
	fmt.Printf("  boot: view v%d, %d members, provisioned c*=%d\n",
		st.Version, len(st.Members), st.CStar)

	// Join through the admin verb, exactly as a new kvnode announces
	// itself with -join-via.
	addr, err := lc.AddBackend(overload.Limits{})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post("http://"+lc.AdminAddr+"/join?addr="+url.QueryEscape(addr), "", nil)
	if err != nil {
		log.Fatal(err)
	}
	var report kvstore.MembershipReport
	err = json.NewDecoder(resp.Body).Decode(&report)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  POST /join -> node %d joining, ~%.0f%% of keys will move\n",
		report.Joined[0].ID, 100*report.ExpectedMovedFraction)
	for {
		st = front.MembershipStatus()
		if !st.Changing && !st.Rotating {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := front.Metrics()
	fmt.Printf("  committed: view v%d, %d members, re-provisioned c*=%d "+
		"(moved %d keys, re-tagged %d in place)\n",
		st.Version, len(st.Members), st.CStar,
		m.Counter("migration_keys_moved_total").Value(),
		m.Counter("migration_keys_retagged_total").Value())

	// Drain node 0 back out; its keys re-home and it ends empty.
	if _, err := front.Drain(0); err != nil {
		log.Fatal(err)
	}
	for {
		st = front.MembershipStatus()
		if !st.Changing && !st.Rotating {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("  drained node 0: view v%d, members %v, c*=%d\n",
		st.Version, st.Members, st.CStar)

	missing := 0
	for k := 0; k < items; k++ {
		if _, err := front.Get(workload.KeyName(k)); err != nil {
			missing++
		}
	}
	fmt.Printf("  post-scale sweep: %d/%d keys unreadable\n", missing, items)
	fmt.Println("  the cluster resizes live; every committed view re-derives the")
	fmt.Println("  paper's provisioning threshold and detection bound for the new n.")
}

// runCrashScenario crashes a replica mid-workload and restarts it with
// an empty store: quorum writes keep succeeding during the outage, and
// hinted handoff plus anti-entropy rebuild the replica — including the
// tombstones of keys deleted while it was down, so nothing is
// resurrected.
func runCrashScenario() {
	const (
		n    = 5
		d    = 3
		keys = 60
	)
	var (
		backends []*kvstore.Backend
		addrs    []string
	)
	for i := 0; i < n; i++ {
		b, addr, err := kvstore.StartBackend(i, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		backends = append(backends, b)
		addrs = append(addrs, addr)
	}
	defer func() {
		for _, b := range backends {
			b.Close()
		}
	}()
	// The crash node sits behind a faultnet proxy: the frontend keeps a
	// live address to dial (and be refused by) while the node is down,
	// and the node's own port stays free for the restart.
	crashAddr := addrs[2]
	proxy, err := faultnet.Start(crashAddr)
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()
	addrs[2] = proxy.Addr()

	front, err := kvstore.NewFrontend(kvstore.FrontendConfig{
		BackendAddrs: addrs,
		Replication:  d, // write quorum defaults to 2 of 3
		Client:       kvstore.ClientConfig{MaxRetries: -1, DialTimeout: 200 * time.Millisecond},
		Health:       kvstore.HealthConfig{FailureThreshold: 2, ProbeInterval: 50 * time.Millisecond},
		// The demo forces its own anti-entropy pass instead of waiting.
		RepairInterval: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()

	fmt.Println("== replica crash: quorum writes, hinted handoff, anti-entropy ==")
	for k := 0; k < keys; k++ {
		if err := front.Set(workload.KeyName(k), []byte("gen0")); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("  crashing node 2 mid-workload...")
	proxy.SetFaults(faultnet.Faults{Blackhole: true, RejectConns: true})
	proxy.CloseExisting()
	backends[2].Close()

	// Overwrite the even keys and delete every tenth; the odd keys are
	// never touched during the outage, so no hint exists for them — the
	// restarted replica can only recover those through anti-entropy.
	writeFailures := 0
	for k := 0; k < keys; k++ {
		name := workload.KeyName(k)
		if k%10 == 9 {
			if err := front.Del(name); err != nil {
				writeFailures++
			}
			continue
		}
		if k%2 != 0 {
			continue
		}
		if err := front.Set(name, []byte("gen1")); err != nil {
			writeFailures++
		}
	}
	m := front.Metrics()
	fmt.Printf("  outage writes: %d overwrite/delete failures (quorum 2/3 held), %d hints queued\n",
		writeFailures, m.Counter("hints_queued_total").Value())

	fmt.Println("  restarting node 2 with an EMPTY store...")
	b2, _, err := kvstore.StartBackend(2, crashAddr)
	if err != nil {
		log.Fatal(err)
	}
	backends[2] = b2
	proxy.Clear()

	deadline := time.Now().Add(10 * time.Second)
	for m.Gauge("hints_pending").Value() > 0 {
		if time.Now().After(deadline) {
			log.Fatal("hints never drained")
		}
		time.Sleep(20 * time.Millisecond)
	}
	repaired := 0
	for {
		nrep, err := front.RunRepairPass()
		if err != nil {
			log.Fatal(err)
		}
		repaired += nrep
		if nrep == 0 {
			break
		}
	}
	fmt.Printf("  converged: %d hints replayed, %d keys repaired by anti-entropy\n",
		m.Counter("hints_replayed_total").Value(),
		m.Counter("repair_keys_repaired_total").Value())

	stale, resurrected := 0, 0
	for k := 0; k < keys; k++ {
		v, err := front.Get(workload.KeyName(k))
		if k%10 == 9 {
			if !errors.Is(err, kvstore.ErrNotFound) {
				resurrected++
			}
			continue
		}
		want := "gen0"
		if k%2 == 0 {
			want = "gen1"
		}
		if err != nil || string(v) != want {
			stale++
		}
	}
	fmt.Printf("  post-repair sweep: %d stale reads, %d resurrected deletes\n", stale, resurrected)
	fmt.Println("  a crashed replica rejoins empty and is rebuilt from its peers;")
	fmt.Println("  versioned tombstones guarantee deleted keys stay deleted.")
}

// runRotationScenario leaks the partition seed to the attacker — the
// worst case the paper's randomization defends against — and shows the
// response: the attacker concentrates load on one replica group, then a
// live rotation to a fresh secret seed re-randomizes the mapping and the
// same attack stream spreads back out, all without a restart or a
// dropped key.
func runRotationScenario() {
	const (
		leakedSeed = uint64(0x5EC12E7)
		items      = 600
		attackKeys = 300 // the attacker's reconnaissance covers half the key space
	)
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes:         nodes,
		Replication:   replication,
		PartitionSeed: leakedSeed,
		Rotation:      kvstore.RotationConfig{Rate: -1},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()

	front := lc.Frontend
	for k := 0; k < items; k++ {
		if err := front.Set(workload.KeyName(k), []byte("value")); err != nil {
			log.Fatal(err)
		}
	}

	// With the seed in hand the attacker rebuilds the mapping offline and
	// picks keys that share one replica group: every query for them can
	// only land on those d nodes.
	leaked := partition.NewHash(nodes, replication, leakedSeed)
	groups := make(map[string][]int)
	var bestKeys []int
	for k := 0; k < attackKeys; k++ {
		g := fmt.Sprint(leaked.Group(kvstore.KeyID(workload.KeyName(k))))
		groups[g] = append(groups[g], k)
		if len(groups[g]) > len(bestKeys) {
			bestKeys = groups[g]
		}
	}
	x := len(bestKeys)
	params := core.Params{Nodes: nodes, Replication: replication, Items: items, KOverride: 1.2}
	fmt.Println("== leaked seed -> targeted attack -> live rotation ==")
	fmt.Printf("  attacker found %d keys sharing one replica group (paper bound for x=%d: %.2f)\n",
		x, x, params.BoundNormalizedMaxLoad(x))

	attack := func(label string) float64 {
		base := lc.BackendRequestCounts()
		for i := 0; i < queries; i++ {
			if _, err := front.Get(workload.KeyName(bestKeys[i%x])); err != nil {
				log.Fatal(err)
			}
		}
		counts := lc.BackendRequestCounts()
		var total, maxDelta uint64
		for i := range counts {
			delta := counts[i] - base[i]
			total += delta
			if delta > maxDelta {
				maxDelta = delta
			}
		}
		norm := float64(maxDelta) / (float64(total) / float64(nodes))
		fmt.Printf("  %s: normalized max backend load %.2f\n", label, norm)
		return norm
	}

	before := attack("with leaked seed")
	report, err := front.Rotate(0xF4E5117)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  rotating to epoch %d (~%.0f%% of keys will move)...\n",
		report.Epoch, 100*report.ExpectedMovedFraction)
	for front.RotationStatus().Rotating {
		time.Sleep(10 * time.Millisecond)
	}
	st := front.RotationStatus()
	fmt.Printf("  rotation committed: %d keys migrated\n", st.Moved)
	after := attack("same attack, fresh secret")
	fmt.Printf("  the rotation invalidated the attacker's reconnaissance: %.2f -> %.2f\n", before, after)
}

// runOverloadScenario gives every backend admission limits and floods the
// cluster: limited nodes shed with BUSY instead of queueing, the frontend
// fails the shed requests over to sibling replicas, and — the key
// property — no breaker ever opens, because a shedding node is alive.
func runOverloadScenario(dist workload.Distribution) {
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes:         nodes,
		Replication:   replication,
		PartitionSeed: 0xDEADBEEF,
		Cache:         nil, // uncached: every query exercises the replica path
		Client:        kvstore.ClientConfig{ReadTimeout: 500 * time.Millisecond},
		Health:        kvstore.HealthConfig{FailureThreshold: 3, ProbeInterval: 100 * time.Millisecond},
		// Far below the flood rate: most requests hit a shedding node at
		// least once and survive via failover.
		BackendLimits: overload.Limits{RateLimit: 2000, RateBurst: 64},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()

	front := lc.Frontend
	for k := 0; k < dist.NumKeys(); k++ {
		if dist.Prob(k) == 0 {
			continue
		}
		if err := front.Set(workload.KeyName(k), []byte("value")); err != nil && !errors.Is(err, kvstore.ErrBusy) {
			log.Fatal(err)
		}
	}

	fmt.Println("== overload: admission limits + load shedding (busy != broken) ==")
	gen := workload.NewGenerator(dist, 42)
	failed, busy := 0, 0
	for i := 0; i < queries; i++ {
		switch _, err := front.Get(workload.KeyName(gen.Next())); {
		case err == nil:
		case errors.Is(err, kvstore.ErrBusy):
			busy++ // every replica shed — the cluster-wide back-pressure signal
		default:
			failed++
		}
	}
	m := front.Metrics()
	var shedTotal uint64
	for i, s := range lc.BackendShedCounts() {
		fmt.Printf("  node %d shed %d requests\n", i, s)
		shedTotal += s
	}
	fmt.Printf("  flood of %d queries: %d hard failures, %d answered BUSY end-to-end\n", queries, failed, busy)
	fmt.Printf("  backends shed %d requests total; frontend saw backend_busy_total=%d\n",
		shedTotal, m.Counter("backend_busy_total").Value())
	fmt.Printf("  breaker_open_total=%d (shedding nodes are alive: busy must never trip a breaker)\n",
		m.Counter("breaker_open_total").Value())
	fmt.Println("  overloaded nodes refuse work in O(1) instead of queueing into collapse;")
	fmt.Println("  replicas absorb what they can, and the BUSY signal tells clients to back off.")
}

// runResilienceScenario kills one backend mid-attack and shows that the
// deadline/retry/breaker layer keeps the front end serving: the dead
// node's breaker opens, its replicas absorb the traffic, and the STATS
// counters record what happened.
func runResilienceScenario(dist workload.Distribution) {
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes:         nodes,
		Replication:   replication,
		PartitionSeed: 0xDEADBEEF,
		Cache:         nil, // uncached: every query exercises the replica path
		Client:        kvstore.ClientConfig{ReadTimeout: 500 * time.Millisecond},
		Health:        kvstore.HealthConfig{FailureThreshold: 3, ProbeInterval: 100 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()

	front := lc.Frontend
	for k := 0; k < dist.NumKeys(); k++ {
		if dist.Prob(k) == 0 {
			continue
		}
		if err := front.Set(workload.KeyName(k), []byte("value")); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("== node failure under attack (deadlines + breaker) ==")
	gen := workload.NewGenerator(dist, 42)
	victim := 0
	failed := 0
	for i := 0; i < queries; i++ {
		if i == queries/4 {
			fmt.Printf("  killing node %d a quarter into the attack...\n", victim)
			lc.Backends[victim].Close()
		}
		if _, err := front.Get(workload.KeyName(gen.Next())); err != nil {
			failed++
		}
	}
	m := front.Metrics()
	fmt.Printf("  %d/%d queries failed after losing node %d\n", failed, queries, victim)
	fmt.Printf("  retries_total=%d breaker_open_total=%d backend_errors_total=%d\n",
		m.Counter("retries_total").Value(),
		m.Counter("breaker_open_total").Value(),
		m.Counter("backend_errors_total").Value())
	fmt.Printf("  node %d unhealthy gauge: %d\n", victim,
		m.Gauge(fmt.Sprintf("backend_unhealthy_%d", victim)).Value())
	fmt.Println("  the breaker demotes the dead node, so reads fail over without paying its dial cost each time.")
}

// runScenario boots a cluster with the given front-end cache, replays the
// attack, and prints the per-node loads. It returns the total number of
// requests that reached backends.
func runScenario(label string, fc cache.Cache, dist workload.Distribution) uint64 {
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes:         nodes,
		Replication:   replication,
		PartitionSeed: 0xDEADBEEF, // the secret the adversary lacks
		Cache:         fc,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer lc.Close()

	front := lc.Frontend
	// Preload the key space the attacker will touch.
	for k := 0; k < dist.NumKeys(); k++ {
		if dist.Prob(k) == 0 {
			continue
		}
		if err := front.Set(workload.KeyName(k), []byte("value")); err != nil {
			log.Fatal(err)
		}
	}
	base := lc.BackendRequestCounts()

	gen := workload.NewGenerator(dist, 42)
	for i := 0; i < queries; i++ {
		if _, err := front.Get(workload.KeyName(gen.Next())); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("== %s ==\n", label)
	counts := lc.BackendRequestCounts()
	var total, maxDelta uint64
	for i := range counts {
		delta := counts[i] - base[i]
		total += delta
		if delta > maxDelta {
			maxDelta = delta
		}
		bar := ""
		for j := uint64(0); j < delta/50; j++ {
			bar += "#"
		}
		fmt.Printf("  node %d: %6d %s\n", i, delta, bar)
	}
	cs := front.CacheStats()
	fmt.Printf("  cache: %s\n", cs)
	if total > 0 {
		even := float64(total) / float64(nodes)
		fmt.Printf("  normalized max backend load: %.2f\n\n", float64(maxDelta)/even)
	} else {
		fmt.Printf("  backends saw no attack traffic at all\n\n")
	}
	return total
}
