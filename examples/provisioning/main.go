// Provisioning survey: the required front-end cache size across realistic
// cluster shapes — the operational table a capacity planner would pin to
// the wall. Also shows the cost of skipping replication (d = 1 falls back
// to the much weaker single-choice regime, outside this paper's bound).
//
// Run with:
//
//	go run ./examples/provisioning
package main

import (
	"fmt"
	"log"

	"securecache/internal/ballsbins"
	"securecache/internal/core"
	"securecache/internal/sim"
)

func main() {
	fmt.Println("Required front-end cache size c* = ceil(n·k + 1), k = lnln(n)/ln(d) + k'")
	fmt.Println("(using the paper's calibrated constant; items column shows independence from m)")
	fmt.Println()

	tbl := sim.NewTable("cache provisioning across cluster shapes",
		"nodes", "replication", "items", "required_c", "entries_per_node")
	shapes := []struct {
		n, d, m int
	}{
		{100, 3, 1e6},
		{1000, 3, 1e6},
		{1000, 3, 1e9}, // same n, 1000x the items: same c*
		{1000, 5, 1e6},
		{10000, 3, 1e6},
		{10000, 5, 1e6},
		{50000, 3, 1e6}, // Google-cell scale from the paper's intro
	}
	for _, s := range shapes {
		p := core.Params{Nodes: s.n, Replication: s.d, Items: s.m}
		if err := p.Validate(); err != nil {
			log.Fatal(err)
		}
		cstar := p.RequiredCacheSize()
		tbl.AddRow(float64(s.n), float64(s.d), float64(s.m),
			float64(cstar), float64(cstar)/float64(s.n))
	}
	fmt.Print(tbl)

	fmt.Println("\nWhy replication matters — the gap term the cache must cover:")
	for _, d := range []int{2, 3, 4, 8} {
		fmt.Printf("  d=%d: lnln(10000)/ln(d) = %.3f\n", d, ballsbins.GapTerm(10000, d))
	}
	fmt.Println("  d=1: no d-choice bound; max-load deviation grows as sqrt(M·ln n / n)")
	fmt.Printf("       e.g. M=10^6 keys on n=10^4 nodes: 1-choice max ≈ %.1f vs d=3 max ≈ %.1f (per-node keys)\n",
		ballsbins.ExpectedMaxLoadOneChoice(1e6, 1e4), ballsbins.ExpectedMaxLoad(1e6, 1e4, 3))
}
