// Latency & guard demo: what the attack *feels* like operationally.
//
// A queueing simulation (internal/des) runs the paper's optimal attack
// against a cluster provisioned at 50% utilization, with three front-end
// configurations; the guard (internal/guard) watches the resulting
// per-node loads and raises its verdicts.
//
// Run with:
//
//	go run ./examples/latencyguard
package main

import (
	"fmt"
	"log"

	"securecache/internal/core"
	"securecache/internal/des"
	"securecache/internal/guard"
	"securecache/internal/workload"
)

const (
	nodes       = 100
	replication = 3
	items       = 20000
	rate        = 50000.0 // total attack qps
	serviceRate = 1000.0  // per-node capacity: aggregate 2x the offered rate
)

func main() {
	params := core.Params{Nodes: nodes, Replication: replication, Items: items, KOverride: 1.2}
	cstar := params.RequiredCacheSize()
	fmt.Printf("cluster: n=%d d=%d, per-node capacity %.0f qps, offered %.0f qps (50%% of aggregate)\n",
		nodes, replication, serviceRate, rate)
	fmt.Printf("provisioning threshold c* = %d\n\n", cstar)

	for _, sc := range []struct {
		label string
		cache int
	}{
		{"no cache", 0},
		{"small cache (c = 20)", 20},
		{fmt.Sprintf("provisioned cache (c = %d)", cstar), cstar},
	} {
		runScenario(sc.label, sc.cache)
	}

	fmt.Println("takeaway: below c* the victim node saturates — queues fill, p99 explodes,")
	fmt.Println("queries drop; at c* the same attack is indistinguishable from benign load.")
}

func runScenario(label string, cacheSize int) {
	// The adversary plays its best strategy for this cache size.
	p := core.Params{Nodes: nodes, Replication: replication, Items: items,
		CacheSize: cacheSize, KOverride: 1.2}
	x := p.BestAdversarialX()
	if x < 2 {
		x = 2
	}
	dist := workload.NewAdversarial(items, x, 0)
	var cached func(int) bool
	if cacheSize > 0 {
		set := workload.TopC(dist, cacheSize)
		cached = func(key int) bool { return set[key] }
	}

	res, err := des.Run(des.Config{
		Nodes:         nodes,
		Replication:   replication,
		PartitionSeed: 7,
		Dist:          dist,
		Cached:        cached,
		ArrivalRate:   rate,
		ServiceRate:   serviceRate,
		Policy:        des.PolicySticky, // the paper's fixed key->node serving
		QueueCap:      500,
		Duration:      20,
		Seed:          11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Feed the realized per-node loads to the guard.
	g, err := guard.New(guard.Config{Params: p, Smoothing: 1})
	if err != nil {
		log.Fatal(err)
	}
	loads := make([]float64, nodes)
	for i, served := range res.NodeServed {
		loads[i] = float64(served)
	}
	obs, err := g.Observe(loads)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== %s ==\n", label)
	fmt.Printf("  adversary queries %d keys; backend served %d, cache absorbed %d\n",
		x, res.Served, res.CacheHits)
	if res.Served > 0 {
		fmt.Printf("  backend latency: mean %.1f ms, p99 %.1f ms | hottest node util %.0f%% | drop rate %.1f%%\n",
			res.Latency.Mean()*1000, res.P99Latency*1000,
			res.MaxUtilization()*100, res.DropRate()*100)
	} else {
		fmt.Printf("  backends idle: the cache absorbed the entire attack\n")
	}
	fmt.Printf("  guard: %s\n\n", obs)
}
