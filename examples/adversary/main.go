// Adversary walkthrough: build the paper's optimal attack distribution
// step by step (Theorem 1), sweep the number of queried keys, and show
// where the attack flips from effective to ineffective.
//
// Run with:
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"securecache/internal/attack"
	"securecache/internal/core"
)

func main() {
	const (
		nodes = 200
		d     = 3
		items = 20000
		cache = 30
	)
	adv := attack.Adversary{Items: items, Nodes: nodes, Replication: d, CacheSize: cache, KOverride: 1.2}
	cfg := attack.EvalConfig{Rate: 50000, Runs: 50, Seed: 7}

	// Theorem 1 in action: start from a lumpy query distribution over 8
	// keys with a 3-entry cached plateau and watch the load-shifting
	// steps collapse it to plateau + residual.
	fmt.Println("== Theorem 1: load shifting toward the optimal pattern ==")
	probs := []float64{0.2, 0.2, 0.2, 0.15, 0.1, 0.08, 0.05, 0.02}
	fmt.Printf("start: %v\n", probs)
	steps := 0
	for core.Theorem1Step(probs, 3) {
		steps++
		fmt.Printf("step %d: %v\n", steps, probs)
	}
	x := core.NormalFormX(probs, 3)
	fmt.Printf("normal form after %d steps: %d positive keys (plateau + residual)\n\n", steps, x)

	// Sweep x against the simulated cluster: the Figure 3 experiment in
	// miniature.
	fmt.Println("== sweeping the number of queried keys ==")
	tbl, err := adv.SweepX([]int{cache + 1, 2 * cache, 10 * cache, 100 * cache, items}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl)

	// The dichotomy: where is the flip?
	p := adv.Params()
	fmt.Printf("\nprovisioning threshold c* = %d; current cache %d\n", p.RequiredCacheSize(), cache)
	fmt.Printf("theory-optimal attack: query x = %d keys\n", adv.BestX())
	res, err := adv.EvaluateBest(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("achieved gain: %s (x = %d)\n", res.MaxGain, res.X)
}
