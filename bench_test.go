package securecache_test

// One benchmark per table/figure of the paper's evaluation (§IV), at
// scaled-down parameters so `go test -bench=.` completes quickly; the
// secexperiments binary runs the same drivers at paper size. Each bench
// reports the figure's headline statistic as custom metrics so the shape
// of the result is visible straight from the benchmark output.
//
// Microbenches for the hot paths (hashing, sampling, allocation, cache
// ops, wire codec) live next to their packages.

import (
	"testing"

	"securecache/internal/experiments"
	"securecache/internal/kvstore"
	"securecache/internal/sim"
	"securecache/internal/workload"
)

// benchConfig returns the scaled-down experiment configuration used by
// every figure benchmark.
func benchConfig() experiments.Config {
	cfg := experiments.Small()
	cfg.Runs = 20
	return cfg
}

func runFigure(b *testing.B, run func(experiments.Config) (*sim.Table, error)) *sim.Table {
	b.Helper()
	var tbl *sim.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// BenchmarkFig3a regenerates Figure 3(a): normalized max load vs queried
// keys with a small cache. Reported metrics: the gain at the adversary's
// optimum (x = c+1) and at the far end (x = m).
func BenchmarkFig3a(b *testing.B) {
	tbl := runFigure(b, experiments.Fig3a)
	gains := tbl.Column("max_gain")
	b.ReportMetric(gains[0], "gain@x=c+1")
	b.ReportMetric(gains[len(gains)-1], "gain@x=m")
}

// BenchmarkFig3b regenerates Figure 3(b): same sweep with a large cache.
// The gain must stay at or below ~1 across the sweep.
func BenchmarkFig3b(b *testing.B) {
	tbl := runFigure(b, experiments.Fig3b)
	gains := tbl.Column("max_gain")
	maxGain := gains[0]
	for _, g := range gains {
		if g > maxGain {
			maxGain = g
		}
	}
	b.ReportMetric(maxGain, "max-gain-any-x")
}

// BenchmarkFig4 regenerates Figure 4: normalized max load vs cluster size
// under uniform, Zipf(1.01), and adversarial patterns.
func BenchmarkFig4(b *testing.B) {
	tbl := runFigure(b, experiments.Fig4)
	last := tbl.Rows() - 1
	b.ReportMetric(tbl.Row(last)[1], "uniform@max-n")
	b.ReportMetric(tbl.Row(last)[2], "zipf@max-n")
	b.ReportMetric(tbl.Row(last)[3], "adversarial@max-n")
}

// BenchmarkFig5a regenerates Figure 5(a): best achievable gain vs cache
// size; the reported metrics bracket the critical point.
func BenchmarkFig5a(b *testing.B) {
	tbl := runFigure(b, experiments.Fig5a)
	gains := tbl.Column("best_gain")
	b.ReportMetric(gains[0], "gain@min-c")
	b.ReportMetric(gains[len(gains)-1], "gain@max-c")
}

// BenchmarkFig5b regenerates Figure 5(b): the number of keys the best
// adversary queries vs cache size (c+1 below the critical point, m
// above).
func BenchmarkFig5b(b *testing.B) {
	tbl := runFigure(b, experiments.Fig5b)
	xs := tbl.Column("best_x")
	b.ReportMetric(xs[0], "x@min-c")
	b.ReportMetric(xs[len(xs)-1], "x@max-c")
}

// BenchmarkAblationReplication sweeps the replication factor (beyond the
// paper): required cache size c* vs d.
func BenchmarkAblationReplication(b *testing.B) {
	tbl := runFigure(b, func(cfg experiments.Config) (*sim.Table, error) {
		return experiments.ReplicationSweep(cfg, nil)
	})
	req := tbl.Column("required_c")
	b.ReportMetric(req[0], "c*@d=2")
	b.ReportMetric(req[len(req)-1], "c*@d=5")
}

// BenchmarkAblationPolicy compares replica-selection policies under
// attack.
func BenchmarkAblationPolicy(b *testing.B) {
	tbl := runFigure(b, experiments.PolicyAblation)
	gains := tbl.Column("max_gain")
	b.ReportMetric(gains[0], "gain-least-loaded")
	b.ReportMetric(gains[1], "gain-random")
	b.ReportMetric(gains[2], "gain-split")
}

// BenchmarkAblationPartitioner compares partitioning schemes under
// attack.
func BenchmarkAblationPartitioner(b *testing.B) {
	tbl := runFigure(b, experiments.PartitionerAblation)
	gains := tbl.Column("max_gain")
	b.ReportMetric(gains[0], "gain-hash")
	b.ReportMetric(gains[1], "gain-ring")
	b.ReportMetric(gains[2], "gain-rendezvous")
}

// BenchmarkAblationCachePolicy compares practical cache policies against
// the perfect-cache assumption under attack.
func BenchmarkAblationCachePolicy(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 5
	var tbl *sim.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiments.CachePolicyAblation(cfg, 50000)
		if err != nil {
			b.Fatal(err)
		}
	}
	hit := tbl.Column("mean_hit_ratio")
	b.ReportMetric(hit[0], "hit-perfect")
	b.ReportMetric(hit[2], "hit-lfu")
}

// BenchmarkLatencyUnderAttack runs the queueing-simulation experiment:
// p99 latency and drop rate of the optimal attack under no / small /
// provisioned caches.
func BenchmarkLatencyUnderAttack(b *testing.B) {
	cfg := benchConfig()
	var tbl *sim.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiments.LatencyUnderAttack(cfg, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	drops := tbl.Column("drop_rate")
	b.ReportMetric(drops[1], "droprate-small-cache")
	b.ReportMetric(drops[2], "droprate-provisioned")
}

// BenchmarkCalibrateK measures the empirical balls-into-bins gap used to
// fit the bound constant k.
func BenchmarkCalibrateK(b *testing.B) {
	var res experiments.FitResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.FitK(1000, 3, 100, 10, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.KFitMean, "k-fit-mean")
	b.ReportMetric(res.GapTheory, "k-theory")
}

// BenchmarkBaselineComparison computes the cache requirement of the Fan
// et al. single-choice baseline next to the replicated c* — the paper's
// asymptotic improvement (n·ln n vs n·ln ln n / ln d).
func BenchmarkBaselineComparison(b *testing.B) {
	tbl := runFigure(b, func(cfg experiments.Config) (*sim.Table, error) {
		return experiments.ReplicationBenefit(cfg, nil)
	})
	req := tbl.Column("required_c")
	b.ReportMetric(req[0], "c-single-choice")
	b.ReportMetric(req[2], "c-replicated-d3")
}

// BenchmarkAblationAdaptive runs the adaptive-attacker ablation: static
// vs cyclic attacks against each cache policy.
func BenchmarkAblationAdaptive(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 3
	var tbl *sim.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiments.AdaptiveAttackAblation(cfg, 30000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(tbl.Column("static_max_load")[1], "lru-static")
	b.ReportMetric(tbl.Column("cyclic_max_load")[1], "lru-cyclic")
}

// BenchmarkLiveClusterAttack measures end-to-end attack throughput
// against the real TCP kvstore with a provisioned cache (the paper's
// architecture in deployment form).
func BenchmarkLiveClusterAttack(b *testing.B) {
	lc, err := kvstore.StartLocalCluster(kvstore.LocalConfig{
		Nodes: 4, Replication: 2, PartitionSeed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	dist := workload.NewAdversarial(1000, 17, 0)
	gen := workload.NewGenerator(dist, 3)
	for k := 0; k < 17; k++ {
		if err := lc.Frontend.Set(workload.KeyName(k), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lc.Frontend.Get(workload.KeyName(gen.Next())); err != nil {
			b.Fatal(err)
		}
	}
}
