package workload

import (
	"fmt"
	"math"

	"securecache/internal/xrand"
)

// Zipf is the Zipf distribution over an m-key space: key i (0-based) has
// probability proportional to 1/(i+1)^s. The paper's Fig. 4 uses s = 1.01,
// under which roughly 80% of queries concentrate on 20% of the keys.
//
// Probabilities are precomputed exactly (O(m) memory) so that Prob,
// EachNonzero, and Sample are all exact rather than asymptotic
// approximations. Sampling uses the alias method: O(1) per draw.
type Zipf struct {
	m     int
	s     float64
	probs []float64
	alias *aliasTable
}

// NewZipf returns a Zipf(s) distribution over m keys. It panics unless
// m > 0 and s > 0.
func NewZipf(m int, s float64) *Zipf {
	if m <= 0 {
		panic(fmt.Sprintf("workload: NewZipf(m=%d): m must be positive", m))
	}
	if s <= 0 || math.IsNaN(s) {
		panic(fmt.Sprintf("workload: NewZipf(s=%v): exponent must be positive", s))
	}
	probs := make([]float64, m)
	var norm float64
	for i := range probs {
		probs[i] = math.Pow(float64(i+1), -s)
		norm += probs[i]
	}
	for i := range probs {
		probs[i] /= norm
	}
	return &Zipf{m: m, s: s, probs: probs, alias: newAliasTable(probs)}
}

// NumKeys returns the key-space size m.
func (z *Zipf) NumKeys() int { return z.m }

// Exponent returns the Zipf parameter s.
func (z *Zipf) Exponent() float64 { return z.s }

// Support returns m: every key has non-zero probability.
func (z *Zipf) Support() int { return z.m }

// Prob returns key's probability.
func (z *Zipf) Prob(key int) float64 {
	if key < 0 || key >= z.m {
		return 0
	}
	return z.probs[key]
}

// EachNonzero visits all m keys in order.
func (z *Zipf) EachNonzero(fn func(key int, p float64) bool) {
	for k, p := range z.probs {
		if !fn(k, p) {
			return
		}
	}
}

// Sample draws a key in O(1) via the alias table.
func (z *Zipf) Sample(rng *xrand.Xoshiro256) int { return z.alias.sample(rng) }

// HeadMass returns the total probability of the c most popular keys — the
// hit ratio a perfect cache of size c achieves under this distribution.
func (z *Zipf) HeadMass(c int) float64 {
	if c <= 0 {
		return 0
	}
	if c > z.m {
		c = z.m
	}
	var mass float64
	for _, p := range z.probs[:c] {
		mass += p
	}
	return mass
}
