package workload

import (
	"fmt"

	"securecache/internal/xrand"
)

// Generator turns a Distribution into a concrete query stream. The
// analytical experiments work directly on rates and never need it; the
// kvstore load tester and the trace recorder replay discrete queries and
// do.
type Generator struct {
	dist Distribution
	rng  *xrand.Xoshiro256
}

// NewGenerator returns a generator drawing from dist with the given seed.
func NewGenerator(dist Distribution, seed uint64) *Generator {
	return &Generator{dist: dist, rng: xrand.New(seed)}
}

// Next returns the next query key.
func (g *Generator) Next() int { return g.dist.Sample(g.rng) }

// Batch appends n query keys to dst and returns it.
func (g *Generator) Batch(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, g.Next())
	}
	return dst
}

// KeyName formats an integer key as the canonical wire key used by the
// kvstore binaries and examples, e.g. key 42 -> "k00000042". The fixed
// width keeps keys sortable and parseable.
func KeyName(key int) string { return fmt.Sprintf("k%08d", key) }

// ParseKeyName inverts KeyName.
func ParseKeyName(name string) (int, error) {
	if len(name) != 9 || name[0] != 'k' {
		return 0, fmt.Errorf("workload: %q is not a canonical key name", name)
	}
	var k int
	for i := 1; i < len(name); i++ {
		d := name[i]
		if d < '0' || d > '9' {
			return 0, fmt.Errorf("workload: %q is not a canonical key name", name)
		}
		k = k*10 + int(d-'0')
	}
	return k, nil
}

// Rates converts a distribution and a total client rate R into absolute
// per-key rates, visiting only the support. The callback receives each
// queried key and its rate in queries/second.
func Rates(dist Distribution, totalRate float64, fn func(key int, rate float64)) {
	if totalRate < 0 {
		panic(fmt.Sprintf("workload: Rates with negative total rate %v", totalRate))
	}
	dist.EachNonzero(func(key int, p float64) bool {
		fn(key, p*totalRate)
		return true
	})
}
