package workload

import (
	"fmt"
	"math"

	"securecache/internal/xrand"
)

// PMF is an arbitrary explicit probability mass function over an m-key
// space, used for hand-crafted distributions (tests, Theorem-1 stepwise
// constructions, trace-derived popularity profiles). Sampling is O(1) via
// an alias table built at construction.
type PMF struct {
	probs   []float64
	support int
	alias   *aliasTable
}

// NewPMF returns a distribution with the given probabilities. The slice is
// copied. It panics if probs is empty, contains a negative or non-finite
// value, or does not sum to 1 within 1e-9.
func NewPMF(probs []float64) *PMF {
	if len(probs) == 0 {
		panic("workload: NewPMF with empty probability vector")
	}
	var sum float64
	support := 0
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			panic(fmt.Sprintf("workload: NewPMF: probs[%d] = %v is invalid", i, p))
		}
		if p > 0 {
			support++
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("workload: NewPMF: probabilities sum to %v, want 1", sum))
	}
	cp := make([]float64, len(probs))
	copy(cp, probs)
	return &PMF{probs: cp, support: support, alias: newAliasTable(cp)}
}

// NumKeys returns the key-space size.
func (p *PMF) NumKeys() int { return len(p.probs) }

// Support returns the number of keys with non-zero probability.
func (p *PMF) Support() int { return p.support }

// Prob returns key's probability.
func (p *PMF) Prob(key int) float64 {
	if key < 0 || key >= len(p.probs) {
		return 0
	}
	return p.probs[key]
}

// EachNonzero visits all keys with non-zero probability in order.
func (p *PMF) EachNonzero(fn func(key int, prob float64) bool) {
	for k, pr := range p.probs {
		if pr == 0 {
			continue
		}
		if !fn(k, pr) {
			return
		}
	}
}

// Sample draws a key in O(1).
func (p *PMF) Sample(rng *xrand.Xoshiro256) int { return p.alias.sample(rng) }

// aliasTable implements Walker/Vose alias sampling: O(n) construction,
// O(1) exact sampling from a discrete distribution.
type aliasTable struct {
	prob  []float64 // acceptance threshold per column
	alias []int     // fallback key per column
}

func newAliasTable(probs []float64) *aliasTable {
	n := len(probs)
	t := &aliasTable{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range probs {
		scaled[i] = p * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are exactly 1 up to rounding.
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1
	}
	return t
}

func (t *aliasTable) sample(rng *xrand.Xoshiro256) int {
	col := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[col] {
		return col
	}
	return t.alias[col]
}
