package workload

import (
	"math"
	"testing"
	"testing/quick"

	"securecache/internal/xrand"
)

// sumProbs sums Prob over the whole key space, cross-checking EachNonzero.
func sumProbs(t *testing.T, d Distribution) float64 {
	t.Helper()
	var viaProb, viaEach float64
	for k := 0; k < d.NumKeys(); k++ {
		viaProb += d.Prob(k)
	}
	count := 0
	d.EachNonzero(func(k int, p float64) bool {
		viaEach += p
		count++
		if d.Prob(k) != p {
			t.Fatalf("EachNonzero reported p=%v for key %d but Prob says %v", p, k, d.Prob(k))
		}
		return true
	})
	if count != d.Support() {
		t.Fatalf("EachNonzero visited %d keys, Support() = %d", count, d.Support())
	}
	if math.Abs(viaProb-viaEach) > 1e-9 {
		t.Fatalf("Prob sum %v != EachNonzero sum %v", viaProb, viaEach)
	}
	return viaProb
}

func TestUniformSumsToOne(t *testing.T) {
	for _, tc := range []struct{ m, q int }{{10, 10}, {100, 7}, {1, 1}} {
		u := NewUniform(tc.m, tc.q)
		if s := sumProbs(t, u); math.Abs(s-1) > 1e-9 {
			t.Errorf("Uniform(%d,%d) sums to %v", tc.m, tc.q, s)
		}
		if u.Support() != tc.q || u.NumKeys() != tc.m {
			t.Errorf("Uniform(%d,%d) support/keys wrong", tc.m, tc.q)
		}
	}
}

func TestUniformOutOfRangeProb(t *testing.T) {
	u := NewUniform(10, 5)
	for _, k := range []int{-1, 5, 9, 10, 100} {
		if u.Prob(k) != 0 {
			t.Errorf("Prob(%d) = %v, want 0", k, u.Prob(k))
		}
	}
}

func TestUniformPanics(t *testing.T) {
	for _, tc := range []struct{ m, q int }{{10, 0}, {10, 11}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewUniform(%d,%d) did not panic", tc.m, tc.q)
				}
			}()
			NewUniform(tc.m, tc.q)
		}()
	}
}

func TestAdversarialShape(t *testing.T) {
	a := NewAdversarial(100, 10, 0) // canonical h = 1/10
	if s := sumProbs(t, a); math.Abs(s-1) > 1e-9 {
		t.Errorf("Adversarial sums to %v", s)
	}
	if a.Support() != 10 || a.QueriedKeys() != 10 {
		t.Errorf("Support = %d, want 10", a.Support())
	}
	// Canonical h: all 10 keys equal.
	for k := 0; k < 10; k++ {
		if math.Abs(a.Prob(k)-0.1) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want 0.1", k, a.Prob(k))
		}
	}
	if a.Prob(10) != 0 || a.Prob(-1) != 0 {
		t.Error("keys outside the support have non-zero probability")
	}
}

func TestAdversarialExplicitH(t *testing.T) {
	// x = 4 keys, h = 0.3: probs 0.3, 0.3, 0.3, 0.1.
	a := NewAdversarial(10, 4, 0.3)
	want := []float64{0.3, 0.3, 0.3, 0.1}
	for k, w := range want {
		if math.Abs(a.Prob(k)-w) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", k, a.Prob(k), w)
		}
	}
	// Decreasing popularity order must hold: residual <= h.
	if a.Prob(3) > a.Prob(2) {
		t.Error("residual key more popular than plateau keys")
	}
}

func TestAdversarialMonotoneNonIncreasing(t *testing.T) {
	// Property: probabilities never increase with key index.
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		m := 2 + rng.Intn(500)
		x := 1 + rng.Intn(m)
		a := NewAdversarial(m, x, 0)
		prev := math.Inf(1)
		for k := 0; k < m; k++ {
			p := a.Prob(k)
			if p > prev+1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdversarialPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"x=0":        func() { NewAdversarial(10, 0, 0) },
		"x>m":        func() { NewAdversarial(10, 11, 0) },
		"h too big":  func() { NewAdversarial(10, 5, 0.3) },  // residual -0.2
		"h too tiny": func() { NewAdversarial(10, 5, 0.01) }, // residual 0.96 > h
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAdversarialSingleKey(t *testing.T) {
	a := NewAdversarial(5, 1, 0)
	if a.Prob(0) != 1 {
		t.Errorf("x=1: Prob(0) = %v, want 1", a.Prob(0))
	}
	rng := xrand.New(1)
	for i := 0; i < 100; i++ {
		if a.Sample(rng) != 0 {
			t.Fatal("x=1 sampled a key other than 0")
		}
	}
}

func TestSampleMatchesDistribution(t *testing.T) {
	dists := map[string]Distribution{
		"uniform":     NewUniform(50, 20),
		"adversarial": NewAdversarial(50, 11, 0),
		"zipf":        NewZipf(50, 1.01),
		"pmf":         NewPMF([]float64{0.5, 0.25, 0.125, 0.125}),
	}
	for name, d := range dists {
		rng := xrand.New(42)
		const trials = 200000
		counts := make([]int, d.NumKeys())
		for i := 0; i < trials; i++ {
			k := d.Sample(rng)
			if k < 0 || k >= d.NumKeys() {
				t.Fatalf("%s: sampled out-of-range key %d", name, k)
			}
			counts[k]++
		}
		for k, c := range counts {
			want := d.Prob(k) * trials
			tol := 5*math.Sqrt(want+1) + 1
			if math.Abs(float64(c)-want) > tol {
				t.Errorf("%s: key %d sampled %d times, want %.0f±%.0f", name, k, c, want, tol)
			}
		}
	}
}

func TestTopCMonotoneDistributions(t *testing.T) {
	// For decreasing-popularity distributions TopC must be [0, c).
	for name, d := range map[string]Distribution{
		"zipf":        NewZipf(100, 1.2),
		"adversarial": NewAdversarial(100, 30, 0),
		"uniform":     NewUniform(100, 100),
	} {
		top := TopC(d, 10)
		if len(top) != 10 {
			t.Fatalf("%s: TopC returned %d keys, want 10", name, len(top))
		}
		for k := 0; k < 10; k++ {
			if !top[k] {
				t.Errorf("%s: key %d missing from top-10", name, k)
			}
		}
	}
}

func TestTopCGeneralPMF(t *testing.T) {
	p := NewPMF([]float64{0.1, 0.4, 0.1, 0.35, 0.05})
	top := TopC(p, 2)
	if !top[1] || !top[3] || len(top) != 2 {
		t.Errorf("TopC = %v, want {1,3}", top)
	}
}

func TestTopCEdgeCases(t *testing.T) {
	d := NewUniform(10, 5)
	if got := TopC(d, 0); len(got) != 0 {
		t.Error("TopC(0) not empty")
	}
	if got := TopC(d, 100); len(got) != 5 { // clamped to support
		t.Errorf("TopC beyond support returned %d keys, want 5", len(got))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("TopC(-1) did not panic")
			}
		}()
		TopC(d, -1)
	}()
}
