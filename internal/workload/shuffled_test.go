package workload

import (
	"math"
	"sort"
	"testing"

	"securecache/internal/xrand"
)

func TestShuffledPreservesMass(t *testing.T) {
	base := NewZipf(500, 1.01)
	sh := NewShuffled(base, 42)
	if s := sumProbs(t, sh); math.Abs(s-1) > 1e-9 {
		t.Errorf("shuffled mass = %v", s)
	}
	if sh.NumKeys() != 500 || sh.Support() != 500 {
		t.Error("shape changed by shuffling")
	}
}

func TestShuffledIsAPermutation(t *testing.T) {
	base := NewZipf(200, 1.2)
	sh := NewShuffled(base, 7)
	baseProbs := make([]float64, 200)
	viewProbs := make([]float64, 200)
	for k := 0; k < 200; k++ {
		baseProbs[k] = base.Prob(k)
		viewProbs[k] = sh.Prob(k)
	}
	sort.Float64s(baseProbs)
	sort.Float64s(viewProbs)
	for i := range baseProbs {
		if baseProbs[i] != viewProbs[i] {
			t.Fatal("shuffled probabilities are not a permutation of the base")
		}
	}
}

func TestShuffledActuallyShuffles(t *testing.T) {
	base := NewZipf(1000, 1.01)
	sh := NewShuffled(base, 3)
	same := 0
	for k := 0; k < 1000; k++ {
		if sh.Prob(k) == base.Prob(k) {
			same++
		}
	}
	if same > 100 {
		t.Errorf("%d/1000 keys kept their probability; permutation too lazy", same)
	}
}

func TestShuffledDeterministic(t *testing.T) {
	base := NewUniform(100, 30)
	a, b := NewShuffled(base, 9), NewShuffled(base, 9)
	for k := 0; k < 100; k++ {
		if a.Prob(k) != b.Prob(k) {
			t.Fatal("same-seed shuffles differ")
		}
	}
	c := NewShuffled(base, 10)
	diff := 0
	for k := 0; k < 100; k++ {
		if a.Prob(k) != c.Prob(k) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical shuffles")
	}
}

func TestShuffledSampleMatchesProb(t *testing.T) {
	base := NewZipf(50, 1.01)
	sh := NewShuffled(base, 5)
	rng := xrand.New(1)
	const trials = 200000
	counts := make([]int, 50)
	for i := 0; i < trials; i++ {
		counts[sh.Sample(rng)]++
	}
	for k, c := range counts {
		want := sh.Prob(k) * trials
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want+1)+1 {
			t.Errorf("key %d sampled %d, want ~%.0f", k, c, want)
		}
	}
}

func TestShuffledTopCMatchesHeadMass(t *testing.T) {
	// TopC over a shuffled Zipf must select keys carrying the same total
	// mass as the unshuffled head.
	base := NewZipf(300, 1.3)
	sh := NewShuffled(base, 11)
	top := TopC(sh, 30)
	var mass float64
	for k := range top {
		mass += sh.Prob(k)
	}
	if math.Abs(mass-base.HeadMass(30)) > 1e-9 {
		t.Errorf("shuffled top-30 mass %v, want %v", mass, base.HeadMass(30))
	}
}

func TestShuffledOutOfRange(t *testing.T) {
	sh := NewShuffled(NewUniform(10, 10), 1)
	if sh.Prob(-1) != 0 || sh.Prob(10) != 0 {
		t.Error("out-of-range Prob non-zero")
	}
}
