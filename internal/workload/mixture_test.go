package workload

import (
	"math"
	"testing"

	"securecache/internal/xrand"
)

func TestMixtureSumsToOne(t *testing.T) {
	mix := NewMixture(
		[]Distribution{NewZipf(100, 1.01), NewAdversarial(100, 11, 0)},
		[]float64{0.8, 0.2},
	)
	if s := sumProbs(t, mix); math.Abs(s-1) > 1e-9 {
		t.Errorf("mixture sums to %v", s)
	}
}

func TestMixtureBlending(t *testing.T) {
	// 50/50 blend of uniform-over-2 and uniform-over-4 on a 4-key space:
	// keys 0,1: 0.5*0.5 + 0.5*0.25 = 0.375; keys 2,3: 0.5*0.25 = 0.125.
	mix := NewMixture(
		[]Distribution{NewUniform(4, 2), NewUniform(4, 4)},
		[]float64{1, 1},
	)
	want := []float64{0.375, 0.375, 0.125, 0.125}
	for k, w := range want {
		if math.Abs(mix.Prob(k)-w) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", k, mix.Prob(k), w)
		}
	}
	if mix.Support() != 4 {
		t.Errorf("Support = %d, want 4", mix.Support())
	}
	ws := mix.Weights()
	if math.Abs(ws[0]-0.5) > 1e-12 || math.Abs(ws[1]-0.5) > 1e-12 {
		t.Errorf("Weights = %v, want normalized to 0.5/0.5", ws)
	}
}

func TestMixtureWeightNormalization(t *testing.T) {
	a := NewMixture([]Distribution{NewUniform(4, 2), NewUniform(4, 4)}, []float64{2, 2})
	b := NewMixture([]Distribution{NewUniform(4, 2), NewUniform(4, 4)}, []float64{0.5, 0.5})
	for k := 0; k < 4; k++ {
		if a.Prob(k) != b.Prob(k) {
			t.Fatal("weight scaling changed the blend")
		}
	}
}

func TestMixtureSampleFrequencies(t *testing.T) {
	mix := NewMixture(
		[]Distribution{NewUniform(10, 2), NewUniform(10, 10)},
		[]float64{0.7, 0.3},
	)
	rng := xrand.New(4)
	const trials = 200000
	counts := make([]int, 10)
	for i := 0; i < trials; i++ {
		counts[mix.Sample(rng)]++
	}
	for k, c := range counts {
		want := mix.Prob(k) * trials
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want+1)+1 {
			t.Errorf("key %d sampled %d, want ~%.0f", k, c, want)
		}
	}
}

func TestMixturePanics(t *testing.T) {
	u := NewUniform(4, 4)
	for name, f := range map[string]func(){
		"no components":   func() { NewMixture(nil, nil) },
		"weight mismatch": func() { NewMixture([]Distribution{u}, []float64{1, 2}) },
		"keyspace clash":  func() { NewMixture([]Distribution{u, NewUniform(5, 5)}, []float64{1, 1}) },
		"zero weight":     func() { NewMixture([]Distribution{u}, []float64{0}) },
		"negative weight": func() { NewMixture([]Distribution{u, u}, []float64{1, -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMixtureAttackInBenignTraffic(t *testing.T) {
	// An 80% Zipf + 20% adversarial blend must concentrate the attack's
	// share on the residual key while keeping the Zipf head hot — the
	// guard-evasion scenario.
	const m, c = 1000, 20
	benign := NewZipf(m, 1.01)
	attack := NewAdversarial(m, c+1, 0)
	mix := NewMixture([]Distribution{benign, attack}, []float64{0.8, 0.2})
	// The attack keys get ~0.2/21 ≈ 0.0095 extra each.
	extra := mix.Prob(c) - 0.8*benign.Prob(c)
	if math.Abs(extra-0.2/21) > 1e-9 {
		t.Errorf("attack share per key = %v, want %v", extra, 0.2/21)
	}
}
