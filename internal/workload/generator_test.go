package workload

import (
	"math"
	"testing"

	"securecache/internal/xrand"
)

func benchRNG() *xrand.Xoshiro256 { return xrand.New(1) }

func TestGeneratorDeterministic(t *testing.T) {
	d := NewZipf(1000, 1.01)
	a := NewGenerator(d, 7)
	b := NewGenerator(d, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed generators diverged at query %d", i)
		}
	}
}

func TestGeneratorBatch(t *testing.T) {
	d := NewUniform(100, 100)
	g := NewGenerator(d, 3)
	batch := g.Batch(nil, 500)
	if len(batch) != 500 {
		t.Fatalf("Batch returned %d keys", len(batch))
	}
	for _, k := range batch {
		if k < 0 || k >= 100 {
			t.Fatalf("batch contains out-of-range key %d", k)
		}
	}
	// Appending semantics.
	batch2 := g.Batch(batch, 10)
	if len(batch2) != 510 {
		t.Errorf("Batch append returned %d keys, want 510", len(batch2))
	}
}

func TestKeyNameRoundTrip(t *testing.T) {
	for _, k := range []int{0, 1, 42, 99999999} {
		name := KeyName(k)
		if len(name) != 9 {
			t.Errorf("KeyName(%d) = %q, want 9 chars", k, name)
		}
		got, err := ParseKeyName(name)
		if err != nil || got != k {
			t.Errorf("ParseKeyName(%q) = %d, %v; want %d", name, got, err, k)
		}
	}
}

func TestParseKeyNameErrors(t *testing.T) {
	for _, bad := range []string{"", "k", "x00000001", "k0000000a", "k123", "k123456789"} {
		if _, err := ParseKeyName(bad); err == nil {
			t.Errorf("ParseKeyName(%q) did not error", bad)
		}
	}
}

func TestRates(t *testing.T) {
	d := NewAdversarial(100, 4, 0) // 4 keys at 0.25 each
	var total float64
	visits := 0
	Rates(d, 2000, func(key int, rate float64) {
		visits++
		if math.Abs(rate-500) > 1e-9 {
			t.Errorf("key %d rate = %v, want 500", key, rate)
		}
		total += rate
	})
	if visits != 4 {
		t.Errorf("Rates visited %d keys, want 4", visits)
	}
	if math.Abs(total-2000) > 1e-6 {
		t.Errorf("total rate %v, want 2000", total)
	}
}

func TestRatesPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Rates with negative rate did not panic")
		}
	}()
	Rates(NewUniform(2, 2), -1, func(int, float64) {})
}
