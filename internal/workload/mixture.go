package workload

import (
	"fmt"
	"math"

	"securecache/internal/xrand"
)

// Mixture blends several distributions over the same key space: with
// probability Weights[i] a query is drawn from Components[i]. The guard
// experiments use it to model an attack hidden inside benign traffic
// (e.g. 0.8·Zipf + 0.2·Adversarial), and it composes arbitrarily for
// richer synthetic workloads.
type Mixture struct {
	components []Distribution
	weights    []float64 // normalized
	cum        []float64 // cumulative weights for sampling
	support    int
}

var _ Distribution = (*Mixture)(nil)

// NewMixture returns the weighted blend of the given distributions. All
// components must share the same NumKeys. Weights must be positive; they
// are normalized to sum to 1. It panics on invalid input.
func NewMixture(components []Distribution, weights []float64) *Mixture {
	if len(components) == 0 {
		panic("workload: NewMixture with no components")
	}
	if len(components) != len(weights) {
		panic(fmt.Sprintf("workload: NewMixture with %d components and %d weights",
			len(components), len(weights)))
	}
	m := components[0].NumKeys()
	var sum float64
	for i, c := range components {
		if c.NumKeys() != m {
			panic(fmt.Sprintf("workload: NewMixture: component %d has %d keys, component 0 has %d",
				i, c.NumKeys(), m))
		}
		if weights[i] <= 0 || math.IsNaN(weights[i]) || math.IsInf(weights[i], 0) {
			panic(fmt.Sprintf("workload: NewMixture: weight %d = %v invalid", i, weights[i]))
		}
		sum += weights[i]
	}
	norm := make([]float64, len(weights))
	cum := make([]float64, len(weights))
	running := 0.0
	for i, w := range weights {
		norm[i] = w / sum
		running += norm[i]
		cum[i] = running
	}
	mix := &Mixture{components: components, weights: norm, cum: cum}
	// Support: count keys with non-zero blended probability.
	for k := 0; k < m; k++ {
		if mix.Prob(k) > 0 {
			mix.support++
		}
	}
	return mix
}

// NumKeys returns the shared key-space size.
func (x *Mixture) NumKeys() int { return x.components[0].NumKeys() }

// Support returns the number of keys with non-zero blended probability.
func (x *Mixture) Support() int { return x.support }

// Weights returns the normalized component weights (copy).
func (x *Mixture) Weights() []float64 {
	return append([]float64(nil), x.weights...)
}

// Prob returns the blended probability of key.
func (x *Mixture) Prob(key int) float64 {
	var p float64
	for i, c := range x.components {
		p += x.weights[i] * c.Prob(key)
	}
	return p
}

// EachNonzero visits keys with non-zero blended probability in order.
func (x *Mixture) EachNonzero(fn func(key int, p float64) bool) {
	m := x.NumKeys()
	for k := 0; k < m; k++ {
		p := x.Prob(k)
		if p == 0 {
			continue
		}
		if !fn(k, p) {
			return
		}
	}
}

// Sample picks a component by weight, then samples from it.
func (x *Mixture) Sample(rng *xrand.Xoshiro256) int {
	u := rng.Float64()
	for i, c := range x.cum {
		if u < c {
			return x.components[i].Sample(rng)
		}
	}
	return x.components[len(x.components)-1].Sample(rng)
}
