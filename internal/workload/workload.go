// Package workload models query popularity distributions over a key space
// and generates query streams from them.
//
// Keys are integers in [0, m), ordered by decreasing popularity: key 0 is
// the most popular. This matches the paper's convention (p_1 >= p_2 >= ...
// >= p_m) and makes "the c most popular items" simply keys [0, c).
//
// Three distributions matter for the paper's evaluation:
//
//   - Uniform over the whole key space: the good-case baseline of Fig. 4.
//   - Zipf(1.01): the realistic skewed workload of Fig. 4.
//   - Adversarial: the provably-worst access pattern of Theorem 1 — the
//     first x−1 keys at equal probability h and key x−1 at the residual
//     1−(x−1)h, all other keys at zero.
package workload

import (
	"fmt"
	"sort"

	"securecache/internal/xrand"
)

// Distribution is a query popularity distribution over keys [0, NumKeys()).
// Probabilities sum to 1 (within floating-point error). Implementations
// must be immutable after construction and safe for concurrent readers.
type Distribution interface {
	// NumKeys returns m, the size of the key space.
	NumKeys() int
	// Prob returns the fraction of queries targeting key. Keys outside
	// [0, NumKeys()) have probability 0.
	Prob(key int) float64
	// Support returns the number of keys with non-zero probability.
	Support() int
	// EachNonzero calls fn for every key with non-zero probability, in
	// increasing key order, until fn returns false.
	EachNonzero(fn func(key int, p float64) bool)
	// Sample draws one key according to the distribution.
	Sample(rng *xrand.Xoshiro256) int
}

// Uniform is the uniform distribution over the first Queried keys of an
// m-key space. With Queried == m it is the paper's "uniform access
// pattern"; with Queried < m it models a client restricted to a subset.
type Uniform struct {
	m       int
	queried int
}

// NewUniform returns a uniform distribution over the first queried keys of
// an m-key space. It panics unless 0 < queried <= m.
func NewUniform(m, queried int) *Uniform {
	if queried <= 0 || queried > m {
		panic(fmt.Sprintf("workload: NewUniform(m=%d, queried=%d): need 0 < queried <= m", m, queried))
	}
	return &Uniform{m: m, queried: queried}
}

// NumKeys returns the key-space size m.
func (u *Uniform) NumKeys() int { return u.m }

// Support returns the number of queried keys.
func (u *Uniform) Support() int { return u.queried }

// Prob returns 1/queried for queried keys and 0 otherwise.
func (u *Uniform) Prob(key int) float64 {
	if key < 0 || key >= u.queried {
		return 0
	}
	return 1 / float64(u.queried)
}

// EachNonzero visits the queried keys in order.
func (u *Uniform) EachNonzero(fn func(key int, p float64) bool) {
	p := 1 / float64(u.queried)
	for k := 0; k < u.queried; k++ {
		if !fn(k, p) {
			return
		}
	}
}

// Sample draws a key uniformly from the queried set.
func (u *Uniform) Sample(rng *xrand.Xoshiro256) int { return rng.Intn(u.queried) }

// Adversarial is the optimal attack distribution from Theorem 1 of the
// paper: x keys are queried, the first x−1 at probability h each and the
// last at the residual 1−(x−1)·h. The cached keys [0, c) are among the
// first x−1, queried just often enough to stay the most popular (and so
// pinned in the perfect cache) while wasting as little attack budget on
// them as possible.
//
// With h = 1/x (the default and the infimum of valid choices) the
// distribution degenerates to uniform over the x keys, which is exactly
// what the paper's simulations replay.
type Adversarial struct {
	m, x int
	h    float64
}

// NewAdversarial returns the Theorem-1 distribution querying x keys of an
// m-key space with per-key probability h for the first x−1 keys. Passing
// h <= 0 selects the canonical h = 1/x. It panics unless 0 < x <= m and
// the residual probability 1−(x−1)h lies in (0, h].
func NewAdversarial(m, x int, h float64) *Adversarial {
	if x <= 0 || x > m {
		panic(fmt.Sprintf("workload: NewAdversarial(m=%d, x=%d): need 0 < x <= m", m, x))
	}
	if h <= 0 {
		h = 1 / float64(x)
	}
	residual := 1 - float64(x-1)*h
	// The residual key must carry positive probability no greater than h,
	// otherwise the keys are not in decreasing-popularity order.
	if residual <= 0 || residual > h+1e-12 {
		panic(fmt.Sprintf("workload: NewAdversarial(x=%d, h=%v): residual %v not in (0, h]", x, h, residual))
	}
	return &Adversarial{m: m, x: x, h: h}
}

// NumKeys returns the key-space size m.
func (a *Adversarial) NumKeys() int { return a.m }

// Support returns x, the number of queried keys.
func (a *Adversarial) Support() int { return a.x }

// QueriedKeys returns x (alias of Support, for reporting code).
func (a *Adversarial) QueriedKeys() int { return a.x }

// Prob returns h for keys [0, x−1), the residual for key x−1, 0 otherwise.
func (a *Adversarial) Prob(key int) float64 {
	switch {
	case key < 0 || key >= a.x:
		return 0
	case key == a.x-1:
		return 1 - float64(a.x-1)*a.h
	default:
		return a.h
	}
}

// EachNonzero visits the x queried keys in order.
func (a *Adversarial) EachNonzero(fn func(key int, p float64) bool) {
	for k := 0; k < a.x-1; k++ {
		if !fn(k, a.h) {
			return
		}
	}
	fn(a.x-1, 1-float64(a.x-1)*a.h)
}

// Sample draws a key: one of the first x−1 with probability (x−1)h, else
// the residual key.
func (a *Adversarial) Sample(rng *xrand.Xoshiro256) int {
	if rng.Float64() < float64(a.x-1)*a.h {
		return rng.Intn(a.x - 1)
	}
	return a.x - 1
}

// TopC returns the set of the c most popular keys of dist, breaking
// probability ties toward lower key indices (consistent with the package's
// decreasing-popularity ordering). This is the set a perfect front-end
// cache holds.
func TopC(dist Distribution, c int) map[int]bool {
	if c < 0 {
		panic(fmt.Sprintf("workload: TopC with c=%d", c))
	}
	if c == 0 {
		return map[int]bool{}
	}
	type keyProb struct {
		k int
		p float64
	}
	// Collect the support; for the package's monotone distributions the
	// first c support keys are the answer, but handle general PMFs too.
	var all []keyProb
	dist.EachNonzero(func(k int, p float64) bool {
		all = append(all, keyProb{k, p})
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p > all[j].p
		}
		return all[i].k < all[j].k
	})
	if c > len(all) {
		c = len(all)
	}
	set := make(map[int]bool, c)
	for _, e := range all[:c] {
		set[e.k] = true
	}
	return set
}
