package workload

import (
	"math"
	"testing"
)

func TestZipfSumsToOne(t *testing.T) {
	for _, tc := range []struct {
		m int
		s float64
	}{{1, 1}, {10, 0.8}, {1000, 1.01}, {5000, 2}} {
		z := NewZipf(tc.m, tc.s)
		if sum := sumProbs(t, z); math.Abs(sum-1) > 1e-9 {
			t.Errorf("Zipf(%d, %v) sums to %v", tc.m, tc.s, sum)
		}
	}
}

func TestZipfDecreasing(t *testing.T) {
	z := NewZipf(1000, 1.01)
	for k := 1; k < 1000; k++ {
		if z.Prob(k) > z.Prob(k-1) {
			t.Fatalf("Zipf not decreasing at key %d", k)
		}
	}
}

func TestZipfRatios(t *testing.T) {
	// p_1/p_2 must equal 2^s exactly (up to normalization rounding).
	z := NewZipf(100, 1.5)
	got := z.Prob(0) / z.Prob(1)
	want := math.Pow(2, 1.5)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("p0/p1 = %v, want %v", got, want)
	}
}

func TestZipfHeadMass(t *testing.T) {
	z := NewZipf(100000, 1.01)
	// The paper: "near 80% workloads are concentrated on 20% items".
	mass := z.HeadMass(20000)
	if mass < 0.70 || mass > 0.92 {
		t.Errorf("Zipf(1.01): top-20%% mass = %v, want ~0.8", mass)
	}
	if z.HeadMass(0) != 0 {
		t.Error("HeadMass(0) != 0")
	}
	if math.Abs(z.HeadMass(100000)-1) > 1e-9 {
		t.Error("HeadMass(m) != 1")
	}
	if math.Abs(z.HeadMass(200000)-1) > 1e-9 { // clamped
		t.Error("HeadMass beyond m != 1")
	}
}

func TestZipfAccessors(t *testing.T) {
	z := NewZipf(42, 1.25)
	if z.NumKeys() != 42 || z.Support() != 42 || z.Exponent() != 1.25 {
		t.Error("accessors wrong")
	}
	if z.Prob(-1) != 0 || z.Prob(42) != 0 {
		t.Error("out-of-range Prob non-zero")
	}
}

func TestZipfPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"m=0":   func() { NewZipf(0, 1) },
		"s=0":   func() { NewZipf(10, 0) },
		"s<0":   func() { NewZipf(10, -1) },
		"s=NaN": func() { NewZipf(10, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPMFValidation(t *testing.T) {
	for name, probs := range map[string][]float64{
		"empty":    {},
		"negative": {0.5, -0.1, 0.6},
		"nan":      {math.NaN(), 1},
		"sum!=1":   {0.5, 0.4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPMF(%s) did not panic", name)
				}
			}()
			NewPMF(probs)
		}()
	}
}

func TestPMFBasics(t *testing.T) {
	p := NewPMF([]float64{0.25, 0, 0.75})
	if p.NumKeys() != 3 || p.Support() != 2 {
		t.Errorf("NumKeys/Support = %d/%d, want 3/2", p.NumKeys(), p.Support())
	}
	if sum := sumProbs(t, p); math.Abs(sum-1) > 1e-9 {
		t.Errorf("PMF sums to %v", sum)
	}
	// EachNonzero must skip the zero key.
	p.EachNonzero(func(k int, _ float64) bool {
		if k == 1 {
			t.Error("EachNonzero visited zero-probability key")
		}
		return true
	})
}

func TestPMFDoesNotAliasInput(t *testing.T) {
	in := []float64{0.5, 0.5}
	p := NewPMF(in)
	in[0] = 0.9
	if p.Prob(0) != 0.5 {
		t.Error("NewPMF aliased its input slice")
	}
}

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipf(100000, 1.01)
	rng := benchRNG()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += z.Sample(rng)
	}
	_ = sink
}

func BenchmarkZipfConstruct(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NewZipf(100000, 1.01)
	}
}
