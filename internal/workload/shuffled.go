package workload

import (
	"securecache/internal/xrand"
)

// Shuffled wraps a distribution with a pseudo-random permutation of the
// key space: key k of the wrapped view has the probability the base
// distribution assigns to perm(k).
//
// The package's built-in distributions put the most popular key at index
// 0 by convention, but real key spaces have no such alignment — "user:42"
// is not hotter than "user:41" by construction. Shuffled breaks the
// alignment so that code paths which must not rely on it (TopC, perfect
// caches, partitioners) are exercised honestly; the permutation is
// deterministic in the seed so experiments stay reproducible.
type Shuffled struct {
	base Distribution
	perm []int // view key -> base key
	inv  []int // base key -> view key
}

var _ Distribution = (*Shuffled)(nil)

// NewShuffled returns dist viewed through a seed-derived permutation.
func NewShuffled(dist Distribution, seed uint64) *Shuffled {
	m := dist.NumKeys()
	rng := xrand.New(xrand.Derive(seed, 0x5A4F)) // "SHUF" tag
	perm := rng.Perm(m)
	inv := make([]int, m)
	for view, base := range perm {
		inv[base] = view
	}
	return &Shuffled{base: dist, perm: perm, inv: inv}
}

// NumKeys returns the key-space size.
func (s *Shuffled) NumKeys() int { return s.base.NumKeys() }

// Support returns the support size (permutation-invariant).
func (s *Shuffled) Support() int { return s.base.Support() }

// Prob returns the permuted probability of key.
func (s *Shuffled) Prob(key int) float64 {
	if key < 0 || key >= len(s.perm) {
		return 0
	}
	return s.base.Prob(s.perm[key])
}

// EachNonzero visits the support in increasing (view) key order.
func (s *Shuffled) EachNonzero(fn func(key int, p float64) bool) {
	for view, base := range s.perm {
		p := s.base.Prob(base)
		if p == 0 {
			continue
		}
		if !fn(view, p) {
			return
		}
	}
}

// Sample draws a base key and maps it through the permutation.
func (s *Shuffled) Sample(rng *xrand.Xoshiro256) int {
	return s.inv[s.base.Sample(rng)]
}
