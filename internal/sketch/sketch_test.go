package sketch

import (
	"testing"

	"securecache/internal/xrand"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(256, 4, 1)
	truth := map[uint64]uint64{}
	rng := xrand.New(2)
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(500))
		cm.AddUint(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := cm.EstimateUint(k); got < want {
			t.Fatalf("key %d: estimate %d < true count %d", k, got, want)
		}
	}
	if cm.Total() != 20000 {
		t.Errorf("Total = %d, want 20000", cm.Total())
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// With width 2000 over 20000 additions, expected overestimation per
	// row cell is 10; the min over 4 rows should be well under 100.
	cm := NewCountMin(2000, 4, 3)
	rng := xrand.New(4)
	const adds = 20000
	for i := 0; i < adds; i++ {
		cm.AddUint(uint64(rng.Intn(10000)), 1)
	}
	// A key never added should estimate close to zero.
	bad := 0
	for k := uint64(100000); k < 100100; k++ {
		if cm.EstimateUint(k) > 40 {
			bad++
		}
	}
	if bad > 5 {
		t.Errorf("%d/100 absent keys grossly overestimated", bad)
	}
}

func TestCountMinStringAndUintIndependent(t *testing.T) {
	cm := NewCountMin(64, 3, 7)
	cm.Add("hello", 5)
	if got := cm.Estimate("hello"); got < 5 {
		t.Errorf("Estimate(hello) = %d, want >= 5", got)
	}
	if got := cm.Estimate("absent-key-xyz"); got > 5 {
		t.Errorf("unrelated key estimated %d in a near-empty sketch", got)
	}
}

func TestCountMinHalve(t *testing.T) {
	cm := NewCountMin(64, 2, 1)
	cm.AddUint(42, 100)
	cm.Halve()
	if got := cm.EstimateUint(42); got != 50 {
		t.Errorf("after Halve, estimate = %d, want 50", got)
	}
	if cm.Total() != 50 {
		t.Errorf("after Halve, total = %d, want 50", cm.Total())
	}
}

func TestCountMinReset(t *testing.T) {
	cm := NewCountMin(64, 2, 1)
	cm.AddUint(1, 10)
	cm.Reset()
	if cm.EstimateUint(1) != 0 || cm.Total() != 0 {
		t.Error("Reset did not zero the sketch")
	}
}

func TestCountMinWithErrorGeometry(t *testing.T) {
	cm := NewCountMinWithError(0.01, 0.01, 1)
	if cm.width < 271 { // e/0.01 ≈ 271.8
		t.Errorf("width = %d, want >= 272", cm.width)
	}
	if len(cm.rows) < 5 { // ln(100) ≈ 4.6
		t.Errorf("depth = %d, want >= 5", len(cm.rows))
	}
}

func TestCountMinPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero width": func() { NewCountMin(0, 1, 1) },
		"zero depth": func() { NewCountMin(1, 0, 1) },
		"bad eps":    func() { NewCountMinWithError(0, 0.5, 1) },
		"bad delta":  func() { NewCountMinWithError(0.5, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSpaceSavingFindsHeavyHitters(t *testing.T) {
	ss := NewSpaceSaving(50)
	rng := xrand.New(9)
	// Keys 0..4 are heavy (1000 each); 5..999 light (~5 each).
	for i := 0; i < 5000; i++ {
		ss.Add(uint64(i % 5))
	}
	for i := 0; i < 5000; i++ {
		ss.Add(uint64(5 + rng.Intn(995)))
	}
	top := ss.TopSet(5)
	for k := uint64(0); k < 5; k++ {
		if !top[k] {
			t.Errorf("heavy hitter %d missing from top-5 %v", k, top)
		}
	}
}

func TestSpaceSavingCapacityBound(t *testing.T) {
	ss := NewSpaceSaving(10)
	for k := uint64(0); k < 1000; k++ {
		ss.Add(k)
	}
	if ss.Len() > 10 {
		t.Errorf("Len = %d, exceeds capacity 10", ss.Len())
	}
}

func TestSpaceSavingOverestimatesOnly(t *testing.T) {
	ss := NewSpaceSaving(20)
	truth := map[uint64]uint64{}
	rng := xrand.New(11)
	for i := 0; i < 10000; i++ {
		k := uint64(rng.Intn(100))
		ss.Add(k)
		truth[k]++
	}
	for _, c := range ss.Top(20) {
		if c.Count < truth[c.Key] {
			t.Errorf("key %d: count %d < true %d (Space-Saving must overestimate)",
				c.Key, c.Count, truth[c.Key])
		}
		if c.Count-c.Err > truth[c.Key] {
			t.Errorf("key %d: count-err %d > true %d (error bound violated)",
				c.Key, c.Count-c.Err, truth[c.Key])
		}
	}
}

func TestSpaceSavingTopOrdering(t *testing.T) {
	ss := NewSpaceSaving(10)
	for i := 0; i < 30; i++ {
		ss.Add(1)
	}
	for i := 0; i < 20; i++ {
		ss.Add(2)
	}
	for i := 0; i < 10; i++ {
		ss.Add(3)
	}
	top := ss.Top(3)
	if len(top) != 3 || top[0].Key != 1 || top[1].Key != 2 || top[2].Key != 3 {
		t.Errorf("Top(3) = %v, want keys 1,2,3 in order", top)
	}
	if c, ok := ss.Estimate(1); !ok || c != 30 {
		t.Errorf("Estimate(1) = %d,%v, want 30,true", c, ok)
	}
	if _, ok := ss.Estimate(99); ok {
		t.Error("Estimate of untracked key reported tracked")
	}
}

func TestSpaceSavingTopKClamped(t *testing.T) {
	ss := NewSpaceSaving(5)
	ss.Add(1)
	if got := len(ss.Top(100)); got != 1 {
		t.Errorf("Top(100) with 1 tracked key returned %d entries", got)
	}
}

func TestSpaceSavingPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSpaceSaving(0) did not panic")
		}
	}()
	NewSpaceSaving(0)
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm := NewCountMin(4096, 4, 1)
	for i := 0; i < b.N; i++ {
		cm.AddUint(uint64(i%100000), 1)
	}
}

func BenchmarkSpaceSavingAdd(b *testing.B) {
	ss := NewSpaceSaving(1000)
	for i := 0; i < b.N; i++ {
		ss.Add(uint64(i % 100000))
	}
}
