// Package sketch provides the probabilistic counting structures used by
// realistic front-end caches: a count-min sketch for frequency estimation
// and a Space-Saving summary for top-k tracking.
//
// The paper assumes "perfect caching" — the front end always holds the c
// most popular items. A deployed front end cannot know true popularity, so
// it approximates it with exactly these sketches (the approach memcached
// front ends and TinyLFU-style admission policies use). The cache-policy
// ablation in internal/experiments quantifies how close the approximation
// gets to the perfect-cache assumption.
package sketch

import (
	"fmt"
	"math"

	"securecache/internal/hashing"
)

// CountMin is a count-min sketch: a width×depth matrix of counters where
// each key increments one counter per row and is estimated by the minimum
// across rows. Estimates are never under the true count; overestimation is
// bounded by εN with probability 1−δ for width=⌈e/ε⌉, depth=⌈ln(1/δ)⌉.
//
// CountMin is not safe for concurrent use.
type CountMin struct {
	width uint64
	rows  [][]uint64
	seeds []uint64
	total uint64
}

// NewCountMin returns a sketch with the given geometry. It panics if
// width or depth is not positive.
func NewCountMin(width, depth int, seed uint64) *CountMin {
	if width <= 0 || depth <= 0 {
		panic(fmt.Sprintf("sketch: NewCountMin(%d, %d): dimensions must be positive", width, depth))
	}
	cm := &CountMin{
		width: uint64(width),
		rows:  make([][]uint64, depth),
		seeds: make([]uint64, depth),
	}
	for i := range cm.rows {
		cm.rows[i] = make([]uint64, width)
		cm.seeds[i] = seed + uint64(i)*0x9e3779b97f4a7c15
	}
	return cm
}

// NewCountMinWithError returns a sketch sized for additive error at most
// epsilon*N with probability at least 1-delta.
func NewCountMinWithError(epsilon, delta float64, seed uint64) *CountMin {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("sketch: NewCountMinWithError(%v, %v): parameters must be in (0,1)", epsilon, delta))
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMin(width, depth, seed)
}

// Add increments key's count by delta.
func (cm *CountMin) Add(key string, delta uint64) {
	for i, s := range cm.seeds {
		cm.rows[i][hashing.Hash64(key, s)%cm.width] += delta
	}
	cm.total += delta
}

// AddUint is Add for integer keys.
func (cm *CountMin) AddUint(key uint64, delta uint64) {
	for i, s := range cm.seeds {
		cm.rows[i][hashing.Hash64Uint(key, s)%cm.width] += delta
	}
	cm.total += delta
}

// Estimate returns the (over-)estimated count for key.
func (cm *CountMin) Estimate(key string) uint64 {
	est := uint64(math.MaxUint64)
	for i, s := range cm.seeds {
		if c := cm.rows[i][hashing.Hash64(key, s)%cm.width]; c < est {
			est = c
		}
	}
	return est
}

// EstimateUint is Estimate for integer keys.
func (cm *CountMin) EstimateUint(key uint64) uint64 {
	est := uint64(math.MaxUint64)
	for i, s := range cm.seeds {
		if c := cm.rows[i][hashing.Hash64Uint(key, s)%cm.width]; c < est {
			est = c
		}
	}
	return est
}

// Total returns the sum of all added deltas.
func (cm *CountMin) Total() uint64 { return cm.total }

// Halve divides every counter by two (aging). TinyLFU uses periodic
// halving to keep the sketch responsive to popularity shifts.
func (cm *CountMin) Halve() {
	for _, row := range cm.rows {
		for i := range row {
			row[i] >>= 1
		}
	}
	cm.total >>= 1
}

// Reset zeroes the sketch.
func (cm *CountMin) Reset() {
	for _, row := range cm.rows {
		for i := range row {
			row[i] = 0
		}
	}
	cm.total = 0
}
