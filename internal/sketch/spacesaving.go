package sketch

import (
	"container/heap"
	"fmt"
	"sort"
)

// SpaceSaving maintains the approximate top-k most frequent keys of a
// stream using the Space-Saving algorithm (Metwally, Agrawal, El Abbadi,
// 2005) with at most capacity counters. Every key whose true frequency
// exceeds N/capacity is guaranteed to be tracked, and each reported count
// overestimates the true count by at most the minimum tracked count.
//
// SpaceSaving is not safe for concurrent use.
type SpaceSaving struct {
	capacity int
	entries  map[uint64]*ssEntry
	heap     ssHeap // min-heap by count
}

type ssEntry struct {
	key   uint64
	count uint64
	err   uint64 // overestimation bound inherited on replacement
	index int    // position in heap
}

// Counted is one tracked key with its estimated count and error bound.
type Counted struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// NewSpaceSaving returns a summary tracking at most capacity keys.
func NewSpaceSaving(capacity int) *SpaceSaving {
	if capacity <= 0 {
		panic(fmt.Sprintf("sketch: NewSpaceSaving(%d): capacity must be positive", capacity))
	}
	return &SpaceSaving{
		capacity: capacity,
		entries:  make(map[uint64]*ssEntry, capacity),
	}
}

// Add records one occurrence of key.
func (s *SpaceSaving) Add(key uint64) {
	if e, ok := s.entries[key]; ok {
		e.count++
		heap.Fix(&s.heap, e.index)
		return
	}
	if len(s.entries) < s.capacity {
		e := &ssEntry{key: key, count: 1}
		s.entries[key] = e
		heap.Push(&s.heap, e)
		return
	}
	// Replace the minimum-count entry, inheriting its count as error.
	min := s.heap[0]
	delete(s.entries, min.key)
	min.err = min.count
	min.count++
	min.key = key
	s.entries[key] = min
	heap.Fix(&s.heap, 0)
}

// Len returns the number of tracked keys.
func (s *SpaceSaving) Len() int { return len(s.entries) }

// Estimate returns the estimated count of key and whether it is tracked.
func (s *SpaceSaving) Estimate(key uint64) (uint64, bool) {
	e, ok := s.entries[key]
	if !ok {
		return 0, false
	}
	return e.count, true
}

// Top returns the k highest-count tracked keys in decreasing count order
// (all tracked keys if k exceeds the tracked count).
func (s *SpaceSaving) Top(k int) []Counted {
	out := make([]Counted, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, Counted{Key: e.key, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key // deterministic tie-break
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// TopSet returns the keys of Top(k) as a set, the shape cache admission
// code wants.
func (s *SpaceSaving) TopSet(k int) map[uint64]bool {
	top := s.Top(k)
	set := make(map[uint64]bool, len(top))
	for _, c := range top {
		set[c.Key] = true
	}
	return set
}

// ssHeap implements heap.Interface as a min-heap on count.
type ssHeap []*ssEntry

func (h ssHeap) Len() int           { return len(h) }
func (h ssHeap) Less(i, j int) bool { return h[i].count < h[j].count }
func (h ssHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *ssHeap) Push(x interface{}) {
	e := x.(*ssEntry)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *ssHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
