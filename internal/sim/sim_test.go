package sim

import (
	"math"
	"strings"
	"testing"

	"securecache/internal/cluster"
	"securecache/internal/partition"
	"securecache/internal/workload"
)

func smallScenario() Scenario {
	return Scenario{
		Nodes:       50,
		Replication: 3,
		CacheSize:   10,
		Dist:        workload.NewUniform(500, 100),
		Rate:        1000,
		Runs:        20,
		Seed:        42,
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Scenario{
		{},                                  // nil dist
		{Dist: workload.NewUniform(10, 10)}, // zero rate
		{Dist: workload.NewUniform(10, 10), Rate: 1, Nodes: 0, Replication: 1},
		{Dist: workload.NewUniform(10, 10), Rate: 1, Nodes: 10, Replication: 3, CacheSize: -1},
		{Dist: workload.NewUniform(10, 10), Rate: 1, Nodes: 10, Replication: 3, Runs: -1},
		{Dist: workload.NewUniform(10, 10), Rate: 1, Nodes: 10, Replication: 3, Policy: "bogus"},
		{Dist: workload.NewUniform(10, 10), Rate: 1, Nodes: 10, Replication: 3, Partitioner: "bogus"},
	}
	for i, s := range bad {
		if _, err := Run(s); err == nil {
			t.Errorf("scenario %d accepted", i)
		}
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	s := smallScenario()
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerRunNormMax {
		if a.PerRunNormMax[i] != b.PerRunNormMax[i] {
			t.Fatalf("run %d differs between identical executions", i)
		}
	}
	if a.MaxOfNormMax() != b.MaxOfNormMax() {
		t.Error("MaxOfNormMax not deterministic")
	}
}

func TestRunDefaultsTo200Runs(t *testing.T) {
	s := smallScenario()
	s.Runs = 0
	s.Nodes = 10
	s.Dist = workload.NewUniform(50, 50)
	agg, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if agg.NormMax.N() != 200 {
		t.Errorf("defaulted to %d runs, want 200", agg.NormMax.N())
	}
}

func TestRunCachedFraction(t *testing.T) {
	// Uniform over 100 keys, cache 25 -> 25% of rate cached.
	s := smallScenario()
	s.Dist = workload.NewUniform(500, 100)
	s.CacheSize = 25
	agg, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(agg.CachedFraction-0.25) > 1e-9 {
		t.Errorf("CachedFraction = %v, want 0.25", agg.CachedFraction)
	}
}

func TestRunSeedChangesResults(t *testing.T) {
	s := smallScenario()
	// Zipf gives continuous-valued per-node loads, so two different
	// partitions essentially never produce identical max loads (uniform
	// rates would quantize the max load onto a handful of values).
	s.Dist = workload.NewZipf(500, 1.01)
	a, _ := Run(s)
	s.Seed = 43
	b, _ := Run(s)
	same := true
	for i := range a.PerRunNormMax {
		if a.PerRunNormMax[i] != b.PerRunNormMax[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical run sequences")
	}
}

func TestRunNormalizedSanity(t *testing.T) {
	// With no cache and uniform workload, the normalized max load should
	// be close to but >= 1 (it's a max over nodes).
	s := Scenario{
		Nodes:       20,
		Replication: 3,
		Dist:        workload.NewUniform(5000, 5000),
		Rate:        5000,
		Runs:        10,
		Seed:        7,
	}
	agg, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if agg.NormMax.Mean() < 1 {
		t.Errorf("mean normalized max %v < 1 (impossible for a max)", agg.NormMax.Mean())
	}
	if agg.NormMax.Mean() > 1.5 {
		t.Errorf("mean normalized max %v implausibly high for uniform d=3", agg.NormMax.Mean())
	}
}

func TestRunAllPoliciesAndPartitioners(t *testing.T) {
	for _, policy := range []cluster.Policy{cluster.PolicyLeastLoaded, cluster.PolicyRandomReplica, cluster.PolicySplit} {
		for _, part := range []partition.Kind{partition.KindHash, partition.KindRing, partition.KindRendezvous} {
			s := smallScenario()
			s.Runs = 3
			s.Policy = policy
			s.Partitioner = part
			if _, err := Run(s); err != nil {
				t.Errorf("policy %q partitioner %q: %v", policy, part, err)
			}
		}
	}
}

func TestRunCapacityDrops(t *testing.T) {
	s := smallScenario()
	s.Dist = workload.NewUniform(500, 11) // 11 queried, 10 cached -> one hot key
	s.CacheSize = 10
	s.NodeCapacity = 10 // hot key carries ~1000/11 ≈ 91 > 10
	agg, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Dropped.Mean() <= 0 {
		t.Error("expected dropped load under tight capacity")
	}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable("demo", "x", "y")
	tb.AddRow(1, 2.5)
	tb.AddRow(2, 3.5)
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	col := tb.Column("y")
	if col[0] != 2.5 || col[1] != 3.5 {
		t.Errorf("Column(y) = %v", col)
	}
	row := tb.Row(0)
	row[0] = 99 // must not alias
	if tb.Row(0)[0] != 1 {
		t.Error("Row returned aliased storage")
	}
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "2.5") {
		t.Errorf("String output missing content:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("csv demo", "a", "b")
	tb.AddRow(1, 0.5)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# csv demo", "a,b", "1,0.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestTablePanics(t *testing.T) {
	tb := NewTable("p", "a", "b")
	for name, f := range map[string]func(){
		"no columns":   func() { NewTable("x") },
		"row mismatch": func() { tb.AddRow(1) },
		"bad column":   func() { tb.Column("zzz") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTableCellFormatting(t *testing.T) {
	tb := NewTable("f", "v")
	tb.AddRow(1234567)
	tb.AddRow(0.333333333333)
	s := tb.String()
	if !strings.Contains(s, "1234567") {
		t.Errorf("integer cell mangled:\n%s", s)
	}
	if strings.Contains(s, "1.234567e") {
		t.Errorf("integer formatted in scientific notation:\n%s", s)
	}
}
