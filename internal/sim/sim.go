// Package sim is the experiment harness: it runs a simulation scenario
// many times with independently derived seeds (in parallel across CPUs),
// aggregates the per-run results, and renders tables.
//
// A scenario fixes the cluster shape (n, d, partitioner, policy), the
// front-end cache size (perfect caching, as the paper assumes), the
// workload distribution, and the client rate. One *run* draws a fresh
// random partition (a new partitioner seed) and measures the resulting
// per-node loads; the paper repeats 200 runs and reports the max of the
// maximum loads, which Aggregate exposes alongside mean and quantiles.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"securecache/internal/cluster"
	"securecache/internal/partition"
	"securecache/internal/stats"
	"securecache/internal/workload"
	"securecache/internal/xrand"
)

// Scenario describes one simulation configuration.
type Scenario struct {
	// Nodes is n. Required.
	Nodes int
	// Replication is d. Required.
	Replication int
	// CacheSize is c: the perfect front-end cache pins the c most popular
	// keys of Dist. Zero means no cache.
	CacheSize int
	// Dist is the query distribution. Required.
	Dist workload.Distribution
	// Rate is the total client rate R. Required (> 0).
	Rate float64
	// Runs is the number of independent repetitions (fresh partition per
	// run). Zero selects 200, the paper's setting.
	Runs int
	// Seed is the root seed; every run derives its own stream from it.
	Seed uint64
	// Policy selects replica usage; empty selects least-loaded (the
	// paper's model).
	Policy cluster.Policy
	// Partitioner selects the key -> replica-group scheme; empty selects
	// hash partitioning.
	Partitioner partition.Kind
	// NodeCapacity caps per-node rate (0 = unlimited).
	NodeCapacity float64
}

func (s Scenario) validate() error {
	if s.Dist == nil {
		return fmt.Errorf("sim: Scenario.Dist is nil")
	}
	if s.Rate <= 0 {
		return fmt.Errorf("sim: Rate = %v, must be positive", s.Rate)
	}
	if s.CacheSize < 0 {
		return fmt.Errorf("sim: CacheSize = %d, must be >= 0", s.CacheSize)
	}
	if s.Runs < 0 {
		return fmt.Errorf("sim: Runs = %d, must be >= 0", s.Runs)
	}
	// Nodes/Replication are validated by cluster.New; probe once here so
	// the error surfaces before launching goroutines.
	_, err := cluster.New(cluster.Config{
		Nodes:        s.Nodes,
		Replication:  s.Replication,
		Policy:       s.Policy,
		NodeCapacity: s.NodeCapacity,
	})
	return err
}

// Aggregate summarizes a scenario over all runs.
type Aggregate struct {
	// Scenario echoes the input (with defaults applied).
	Scenario Scenario
	// NormMax aggregates the per-run normalized max load E[L_max]/(R/n).
	NormMax stats.Summary
	// MaxLoad aggregates the per-run absolute max load.
	MaxLoad stats.Summary
	// Dropped aggregates the per-run dropped rate (capacity model).
	Dropped stats.Summary
	// CachedFraction is the fraction of the offered rate absorbed by the
	// cache (identical across runs: the cache and distribution are fixed).
	CachedFraction float64
	// PerRunNormMax holds each run's normalized max load, in run order.
	PerRunNormMax []float64
}

// MaxOfNormMax returns the max over runs of the normalized max load — the
// statistic the paper's Figure 3 plots.
func (a *Aggregate) MaxOfNormMax() float64 { return a.NormMax.Max() }

// Run executes the scenario and aggregates the results. Runs execute in
// parallel across GOMAXPROCS workers; results are deterministic for a
// given Seed regardless of parallelism (each run's randomness is derived
// from (Seed, runIndex) alone).
func Run(s Scenario) (*Aggregate, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Runs == 0 {
		s.Runs = 200
	}

	// The perfect cache set depends only on the distribution.
	cachedSet := workload.TopC(s.Dist, s.CacheSize)
	cached := cluster.CachedSet(cachedSet)

	perRun := make([]float64, s.Runs)
	perRunAbs := make([]float64, s.Runs)
	perRunDropped := make([]float64, s.Runs)
	var cachedFraction float64

	workers := runtime.GOMAXPROCS(0)
	if workers > s.Runs {
		workers = s.Runs
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		errs []error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				run := next
				next++
				mu.Unlock()
				if run >= s.Runs {
					return
				}
				rep, err := runOnce(s, cached, run)
				if err != nil {
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
					return
				}
				perRun[run] = rep.NormalizedMaxLoad()
				perRunAbs[run] = rep.MaxLoad()
				perRunDropped[run] = rep.DroppedRate
				if run == 0 {
					mu.Lock()
					cachedFraction = rep.CachedRate / rep.OfferedRate
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}

	agg := &Aggregate{Scenario: s, CachedFraction: cachedFraction, PerRunNormMax: perRun}
	for i := range perRun {
		agg.NormMax.Add(perRun[i])
		agg.MaxLoad.Add(perRunAbs[i])
		agg.Dropped.Add(perRunDropped[i])
	}
	return agg, nil
}

// runOnce executes a single run with seeds derived from (Seed, run).
func runOnce(s Scenario, cached func(int) bool, run int) (*cluster.LoadReport, error) {
	partSeed := xrand.Derive(s.Seed, 0xC1, uint64(run))
	part, err := partition.New(s.Partitioner, s.Nodes, s.Replication, partSeed)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:        s.Nodes,
		Replication:  s.Replication,
		Partitioner:  part,
		Policy:       s.Policy,
		NodeCapacity: s.NodeCapacity,
	})
	if err != nil {
		return nil, err
	}
	rng := xrand.New(xrand.Derive(s.Seed, 0xC2, uint64(run)))
	return cl.ApplyLoad(s.Dist, s.Rate, cached, rng), nil
}
