package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple numeric result table: one row per sweep point, named
// columns. The experiment drivers fill one Table per paper figure, and
// both the benchmarks and the secexperiments binary render it.
type Table struct {
	// Title labels the table (e.g. "Fig 3(a): normalized max load vs x").
	Title string
	// Columns names the columns, first typically the sweep variable.
	Columns []string
	rows    [][]float64
}

// NewTable returns an empty table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	if len(columns) == 0 {
		panic("sim: NewTable with no columns")
	}
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. It panics on column-count mismatch — rows come
// from experiment code, so a mismatch is a programming error.
func (t *Table) AddRow(values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("sim: AddRow with %d values for %d columns", len(values), len(t.Columns)))
	}
	row := make([]float64, len(values))
	copy(row, values)
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Row returns a copy of row i.
func (t *Table) Row(i int) []float64 {
	row := make([]float64, len(t.rows[i]))
	copy(row, t.rows[i])
	return row
}

// Column returns a copy of the named column. It panics if the column does
// not exist.
func (t *Table) Column(name string) []float64 {
	idx := -1
	for i, c := range t.Columns {
		if c == name {
			idx = i
			break
		}
	}
	if idx == -1 {
		panic(fmt.Sprintf("sim: table %q has no column %q", t.Title, name))
	}
	out := make([]float64, len(t.rows))
	for i, row := range t.rows {
		out[i] = row[idx]
	}
	return out
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.rows))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for r, row := range t.rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = formatCell(v)
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[i], c)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCell(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// WriteCSV writes the table (with a title comment line) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	record := make([]string, len(t.Columns))
	for _, row := range t.rows {
		for i, v := range row {
			record[i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(record); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
