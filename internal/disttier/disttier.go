// Package disttier is the placement math of the distributed frontend
// cache tier: k kvfront instances together protect the n backends, each
// caching hot keys under an independent hash partition of the key space,
// with clients spreading queries across each key's two candidate
// frontends by power-of-two-choices on live load hints.
//
// This is the DistCache construction ("Provable Load Balancing for
// Large-Scale Storage Systems with Distributed Caching"): because the
// frontend-tier partition is INDEPENDENT of the backend partition, the
// hot keys an adversary can concentrate on one backend group are spread
// uniformly across the frontend tier, and vice versa — no single access
// pattern can saturate a node in both layers at once. The two-choice
// client policy then keeps the realized frontend load within a constant
// additive term of perfectly balanced (the classic balanced-allocations
// gap), so the Eq. 10 normalized-max-load bound survives at both layers.
//
// The tier mapping is deliberately PUBLIC (unlike the backend partition
// seed): the proof needs independence and balance, not secrecy — an
// adversary who knows the tier topology can at best send every query of
// a key to one of its two candidates, which the load-hint policy
// absorbs. Keys are mapped by their KeyID, which is fixed across secret
// rotations, so rotating the backend seed never disturbs tier placement
// — the two layers rotate independently.
package disttier

import (
	"fmt"
	"sort"

	"securecache/internal/hashing"
	"securecache/internal/xrand"
)

// candSalt decorrelates the second candidate draw from the first.
const candSalt = 0x7469657232 // "tier2"

// Map resolves each key's candidate frontends within one tier view. It
// is immutable after construction and safe for concurrent use; tier
// membership changes swap in a new Map.
type Map struct {
	seed uint64
	ids  []int       // tier member IDs, ascending
	pos  map[int]int // id -> index in ids
}

// NewMap builds the candidate mapping over the given tier member IDs,
// keyed by the (public) tier seed. IDs must be distinct and
// non-negative; order is normalized, so equal member sets give equal
// mappings regardless of join history.
func NewMap(ids []int, seed uint64) (*Map, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("disttier: empty tier")
	}
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	pos := make(map[int]int, len(sorted))
	for i, id := range sorted {
		if id < 0 {
			return nil, fmt.Errorf("disttier: negative frontend ID %d", id)
		}
		if _, dup := pos[id]; dup {
			return nil, fmt.Errorf("disttier: duplicate frontend ID %d", id)
		}
		pos[id] = i
	}
	return &Map{seed: seed, ids: sorted, pos: pos}, nil
}

// Size returns k, the number of tier frontends.
func (m *Map) Size() int { return len(m.ids) }

// Seed returns the tier mapping seed.
func (m *Map) Seed() uint64 { return m.seed }

// IDs returns a copy of the tier member IDs, ascending.
func (m *Map) IDs() []int { return append([]int(nil), m.ids...) }

// Contains reports whether id is a tier member.
func (m *Map) Contains(id int) bool {
	_, ok := m.pos[id]
	return ok
}

// Candidates returns the key's two candidate frontend IDs. The first
// draw is uniform over the tier; the second is drawn from an
// independent stream and rejection-sampled to be distinct, so for
// k >= 2 the pair is always two different frontends (for k == 1 both
// are the lone member). Each frontend is a candidate for ~2/k of the
// key space, and the per-frontend key sets are pairwise independent —
// the property the two-layer bound rests on.
func (m *Map) Candidates(keyID uint64) (int, int) {
	k := uint64(len(m.ids))
	a := int(hashing.Hash64Uint(keyID, m.seed) % k)
	if k == 1 {
		return m.ids[0], m.ids[0]
	}
	stream := xrand.NewSplitMix64(hashing.Hash64Uint(keyID, m.seed^candSalt))
	for {
		b := int(stream.Uint64() % k)
		if b != a {
			return m.ids[a], m.ids[b]
		}
	}
}

// IsCandidate reports whether frontend id is one of the key's two
// candidates. Tier frontends use it as their cache admission filter:
// caching a key no client would route here would only waste c* budget.
func (m *Map) IsCandidate(keyID uint64, id int) bool {
	a, b := m.Candidates(keyID)
	return id == a || id == b
}
