package disttier

import (
	"sync"
	"sync/atomic"
)

// LoadTable tracks the observed load of each tier frontend on the
// client side. Two signals combine into the effective load the
// two-choice policy compares:
//
//   - the server-reported hint (in-flight requests at the frontend,
//     piggybacked on every response frame), which sees ALL clients'
//     traffic but lags by up to one round trip, and
//   - this client's own outstanding requests to the frontend, which is
//     exact but local.
//
// Summing them damps the herd effect of stale hints: between hint
// updates a client that has just fired King requests at the "less
// loaded" frontend sees its own contribution immediately and stops
// piling on. A frontend never heard from reports load 0 — new members
// should attract traffic (and with it their first hint).
type LoadTable struct {
	mu    sync.RWMutex
	slots map[int]*loadSlot
}

type loadSlot struct {
	hint  atomic.Uint32 // last server-reported in-flight count
	local atomic.Int64  // this client's outstanding requests
	penal atomic.Int64  // failure penalty (decayed by Observe)
}

// NewLoadTable returns an empty table; slots are created on first use.
func NewLoadTable() *LoadTable {
	return &LoadTable{slots: make(map[int]*loadSlot)}
}

func (t *LoadTable) slot(id int) *loadSlot {
	t.mu.RLock()
	s := t.slots[id]
	t.mu.RUnlock()
	if s != nil {
		return s
	}
	t.mu.Lock()
	if s = t.slots[id]; s == nil {
		s = &loadSlot{}
		t.slots[id] = s
	}
	t.mu.Unlock()
	return s
}

// Observe records a server-reported load hint for frontend id and
// clears any failure penalty — a frame arrived, so the frontend is
// back.
func (t *LoadTable) Observe(id int, hint uint32) {
	s := t.slot(id)
	s.hint.Store(hint)
	s.penal.Store(0)
}

// Acquire notes one outstanding request to frontend id; pair with
// Release.
func (t *LoadTable) Acquire(id int) { t.slot(id).local.Add(1) }

// Release ends an outstanding request to frontend id.
func (t *LoadTable) Release(id int) { t.slot(id).local.Add(-1) }

// Penalize marks frontend id as failed: its effective load is raised by
// a large constant so the two-choice pick avoids it until a successful
// exchange (Observe) clears the penalty. This is what fails clients
// over to the surviving candidate when a frontend crashes mid-attack.
func (t *LoadTable) Penalize(id int) { t.slot(id).penal.Store(1) }

// penaltyLoad dominates any plausible in-flight count without risking
// overflow in the sum.
const penaltyLoad = 1 << 40

// Effective returns the load the two-choice policy compares for
// frontend id.
func (t *LoadTable) Effective(id int) int64 {
	s := t.slot(id)
	load := int64(s.hint.Load()) + s.local.Load()
	if s.penal.Load() != 0 {
		load += penaltyLoad
	}
	return load
}

// Pick returns the less-loaded of two frontend IDs, breaking ties
// toward a. Equal IDs (a k == 1 tier) pick a trivially.
func (t *LoadTable) Pick(a, b int) int {
	if a == b {
		return a
	}
	if t.Effective(b) < t.Effective(a) {
		return b
	}
	return a
}
