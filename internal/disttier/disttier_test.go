package disttier

import (
	"math"
	"sync"
	"testing"
)

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(nil, 1); err == nil {
		t.Error("empty tier accepted")
	}
	if _, err := NewMap([]int{0, 0}, 1); err == nil {
		t.Error("duplicate ID accepted")
	}
	if _, err := NewMap([]int{-1}, 1); err == nil {
		t.Error("negative ID accepted")
	}
	m, err := NewMap([]int{2, 0, 1}, 1)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	if got := m.IDs(); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("IDs not normalized: %v", got)
	}
}

func TestCandidatesDistinctAndDeterministic(t *testing.T) {
	m, err := NewMap([]int{0, 1, 2, 3}, 42)
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 5000; key++ {
		a, b := m.Candidates(key)
		if a == b {
			t.Fatalf("key %d: candidates collide (%d)", key, a)
		}
		if !m.Contains(a) || !m.Contains(b) {
			t.Fatalf("key %d: candidates (%d,%d) outside tier", key, a, b)
		}
		a2, b2 := m.Candidates(key)
		if a != a2 || b != b2 {
			t.Fatalf("key %d: non-deterministic candidates", key)
		}
		if !m.IsCandidate(key, a) || !m.IsCandidate(key, b) {
			t.Fatalf("key %d: IsCandidate disagrees with Candidates", key)
		}
	}
}

func TestCandidatesSingleFrontend(t *testing.T) {
	m, _ := NewMap([]int{7}, 1)
	a, b := m.Candidates(123)
	if a != 7 || b != 7 {
		t.Fatalf("k=1 candidates (%d,%d), want (7,7)", a, b)
	}
}

// Each frontend should be a candidate for ~2/k of the key space, and
// the mapping should be spread uniformly.
func TestCandidateUniformity(t *testing.T) {
	const k, keys = 8, 40000
	ids := make([]int, k)
	for i := range ids {
		ids[i] = i
	}
	m, _ := NewMap(ids, 99)
	counts := make([]int, k)
	for key := uint64(0); key < keys; key++ {
		a, b := m.Candidates(key)
		counts[a]++
		counts[b]++
	}
	want := float64(2*keys) / k
	for id, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.10 {
			t.Errorf("frontend %d candidate for %d keys, want within 10%% of %.0f", id, c, want)
		}
	}
}

// The tier mapping must be independent of the member-ID labels only
// through the hash: different seeds give different placements (the
// independence the DistCache bound needs between tier layers is
// established by seeding the tier and backend partitions differently).
func TestSeedIndependence(t *testing.T) {
	ids := []int{0, 1, 2, 3, 4, 5}
	m1, _ := NewMap(ids, 1)
	m2, _ := NewMap(ids, 2)
	same := 0
	const keys = 10000
	for key := uint64(0); key < keys; key++ {
		a1, b1 := m1.Candidates(key)
		a2, b2 := m2.Candidates(key)
		if a1 == a2 && b1 == b2 {
			same++
		}
	}
	// P(same ordered pair) ≈ 1/(6·5) per key under independence.
	if frac := float64(same) / keys; frac > 0.08 {
		t.Errorf("%.3f of keys kept identical candidate pairs across seeds", frac)
	}
}

func TestCacheShare(t *testing.T) {
	if got := CacheShare(100, 1); got != 100 {
		t.Errorf("k=1 share %d, want c* itself", got)
	}
	if got := CacheShare(0, 4); got != 0 {
		t.Errorf("c*=0 share %d, want 0", got)
	}
	// k=4, c*=100: mean 50, dev sqrt(2·50·ln4) ≈ 11.8 → 63.
	got := CacheShare(100, 4)
	if got < 51 || got > 80 {
		t.Errorf("k=4 share %d, want mean+dev headroom in (50, 80]", got)
	}
	// Aggregate must cover 2c* with headroom.
	if 4*got < 2*100 {
		t.Errorf("k=4 aggregate %d < 2c*", 4*got)
	}
	// Wide tier: clamped to at least 1.
	if got := CacheShare(2, 64); got < 1 {
		t.Errorf("wide tier share %d < 1", got)
	}
	// Never exceeds c*.
	if got := CacheShare(10, 2); got > 10 {
		t.Errorf("k=2 share %d exceeds c*", got)
	}
}

// The share must actually cover the realized max bin of the candidate
// mapping: drop c* hot keys into a tier and check no frontend's
// candidate count exceeds its share.
func TestCacheShareCoversRealizedAssignment(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		const cstar = 200
		ids := make([]int, k)
		for i := range ids {
			ids[i] = i
		}
		m, _ := NewMap(ids, 7)
		counts := make([]int, k)
		for key := uint64(0); key < cstar; key++ {
			a, b := m.Candidates(key)
			counts[a]++
			if b != a {
				counts[b]++
			}
		}
		share := CacheShare(cstar, k)
		for id, c := range counts {
			if c > share {
				t.Errorf("k=%d: frontend %d holds %d hot keys > share %d", k, id, c, share)
			}
		}
	}
}

func TestLoadTablePick(t *testing.T) {
	lt := NewLoadTable()
	lt.Observe(0, 10)
	lt.Observe(1, 3)
	if got := lt.Pick(0, 1); got != 1 {
		t.Errorf("Pick = %d, want less-loaded 1", got)
	}
	// Local outstanding requests count immediately.
	for i := 0; i < 20; i++ {
		lt.Acquire(1)
	}
	if got := lt.Pick(0, 1); got != 0 {
		t.Errorf("Pick = %d after local pile-up on 1, want 0", got)
	}
	for i := 0; i < 20; i++ {
		lt.Release(1)
	}
	// Penalty dominates everything until an Observe clears it.
	lt.Penalize(1)
	if got := lt.Pick(0, 1); got != 0 {
		t.Errorf("Pick = %d with 1 penalized, want 0", got)
	}
	lt.Observe(1, 0)
	if got := lt.Pick(0, 1); got != 1 {
		t.Errorf("Pick = %d after penalty cleared, want 1", got)
	}
	// Tie breaks toward a; equal IDs are trivial.
	if got := lt.Pick(5, 5); got != 5 {
		t.Errorf("Pick(5,5) = %d", got)
	}
}

func TestLoadTableConcurrent(t *testing.T) {
	lt := NewLoadTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := (g + i) % 4
				lt.Acquire(id)
				lt.Observe(id, uint32(i))
				lt.Pick(id, (id+1)%4)
				lt.Release(id)
			}
		}(g)
	}
	wg.Wait()
	for id := 0; id < 4; id++ {
		s := lt.slot(id)
		if s.local.Load() != 0 {
			t.Errorf("frontend %d: %d outstanding after all released", id, s.local.Load())
		}
	}
}
