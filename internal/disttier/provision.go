package disttier

import "math"

// CacheShare splits the paper's c* cache provision across a k-frontend
// tier: the per-frontend capacity that keeps the TIER's coverage of the
// c* hottest keys intact.
//
// Under the two-candidate mapping every hot key must be cacheable at
// BOTH of its candidates (the two-choice client sends it to either, so
// a candidate that cannot hold it would leak adversarial queries to the
// backends). The tier therefore provisions 2·c* cache slots in
// aggregate. Those slots land on frontends by the candidate hash —
// throwing 2·c* balls pairwise into k bins — so the loaded frontend
// holds the mean 2·c*/k plus the usual O(sqrt(mean·ln k)) balls-into-
// bins deviation. CacheShare returns mean + deviation + 1, clamped to
// [1, c*]: a 1-frontend tier degenerates to exactly c*, and a very wide
// tier still caches at least one key per frontend.
//
// Compare a naive c*/k split, which has no headroom: the frontend that
// drew a few extra hot keys evicts some of them, and the adversary
// queries exactly those.
func CacheShare(cstar, k int) int {
	if cstar <= 0 {
		return cstar
	}
	if k <= 1 {
		return cstar
	}
	mean := 2 * float64(cstar) / float64(k)
	dev := math.Sqrt(2 * mean * math.Log(float64(k)))
	share := int(math.Ceil(mean+dev)) + 1
	if share > cstar {
		share = cstar
	}
	if share < 1 {
		share = 1
	}
	return share
}
