// Package des is a discrete-event queueing simulator for the paper's
// architecture. The analytical model (internal/cluster) reasons about
// rates; des adds the time domain: Poisson query arrivals, exponential
// per-query service times, FCFS queues at each back-end node — so an
// attack's operational signature (queue growth, latency blow-up, drops at
// a saturated node) can be measured, not just its rate concentration.
//
// The simulator is deliberately classical: a single event heap over
// virtual time, M/M/1-style nodes, a front-end cache that serves hits in
// zero simulated time (Assumption 3: the cache is never the bottleneck).
package des

import (
	"container/heap"
	"fmt"
	"math"

	"securecache/internal/hashing"
	"securecache/internal/partition"
	"securecache/internal/stats"
	"securecache/internal/workload"
	"securecache/internal/xrand"
)

// Policy selects the replica for a cache miss.
type Policy string

// Replica policies.
const (
	// PolicyLeastQueue routes each query to the replica with the shortest
	// queue — per-query dynamic selection. Note this is *stronger* than
	// the paper's model for a single hot key: consecutive queries for the
	// same key spread over its d replicas.
	PolicyLeastQueue Policy = "least-queue"
	// PolicyRandom routes each query to a uniformly random replica.
	PolicyRandom Policy = "random"
	// PolicySticky pins each key to one deterministic replica of its
	// group (hash-selected) — the paper's Assumption 1, where "the node
	// which ultimately serves" a key is fixed (data locality, session
	// affinity, or a client-side replica pick). Under attack this is the
	// pessimistic, analysis-faithful policy.
	PolicySticky Policy = "sticky"
)

// Config parameterizes a simulation.
type Config struct {
	// Nodes is n. Required.
	Nodes int
	// Replication is d. Required.
	Replication int
	// PartitionSeed keys the (hash) partitioner.
	PartitionSeed uint64
	// Dist is the query distribution. Required.
	Dist workload.Distribution
	// Cached reports whether a key is pinned in the front-end cache
	// (perfect-cache model); nil = no cache.
	Cached func(key int) bool
	// ArrivalRate is the total client rate R in queries per (simulated)
	// second. Required (> 0).
	ArrivalRate float64
	// ServiceRate is each node's service rate µ (queries/second).
	// Required (> 0). A node saturates when its miss rate approaches µ.
	ServiceRate float64
	// Policy defaults to PolicyLeastQueue.
	Policy Policy
	// ServiceDist selects the service-time distribution: "exp"
	// (exponential, the default — M/M/1 nodes) or "det" (deterministic
	// 1/µ — M/D/1 nodes, for workloads with uniform per-query cost as in
	// the paper's Assumption 4).
	ServiceDist string
	// QueueCap bounds each node's queue (including the job in service);
	// arrivals beyond it are dropped. 0 = unbounded.
	QueueCap int
	// Duration is the simulated time in seconds. Required (> 0).
	Duration float64
	// Warmup discards measurements before this time (default: 10% of
	// Duration).
	Warmup float64
	// Seed drives all randomness.
	Seed uint64
}

func (c Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("des: Nodes = %d", c.Nodes)
	}
	if c.Replication < 1 || c.Replication > c.Nodes {
		return fmt.Errorf("des: Replication = %d with %d nodes", c.Replication, c.Nodes)
	}
	if c.Dist == nil {
		return fmt.Errorf("des: Dist is nil")
	}
	if c.ArrivalRate <= 0 || c.ServiceRate <= 0 {
		return fmt.Errorf("des: rates must be positive (arrival %v, service %v)", c.ArrivalRate, c.ServiceRate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("des: Duration = %v", c.Duration)
	}
	if c.Warmup < 0 || c.Warmup >= c.Duration {
		return fmt.Errorf("des: Warmup = %v outside [0, %v)", c.Warmup, c.Duration)
	}
	if c.QueueCap < 0 {
		return fmt.Errorf("des: QueueCap = %v", c.QueueCap)
	}
	switch c.Policy {
	case "", PolicyLeastQueue, PolicyRandom, PolicySticky:
	default:
		return fmt.Errorf("des: unknown policy %q", c.Policy)
	}
	switch c.ServiceDist {
	case "", "exp", "det":
		return nil
	default:
		return fmt.Errorf("des: unknown service distribution %q", c.ServiceDist)
	}
}

// Result is the measured outcome of one simulation.
type Result struct {
	// Served counts backend queries completed after warmup.
	Served int
	// CacheHits counts queries absorbed by the front end after warmup.
	CacheHits int
	// Dropped counts arrivals rejected by a full queue after warmup.
	Dropped int
	// Latency summarizes backend query sojourn time (queue + service) in
	// seconds, after warmup. Cache hits are excluded (they are served in
	// zero simulated time by assumption).
	Latency stats.Summary
	// P99Latency estimates the 99th-percentile sojourn time (seconds).
	P99Latency float64
	// Utilization[i] is node i's busy fraction of the measured window.
	Utilization []float64
	// MaxQueue is the largest queue length observed at any node.
	MaxQueue int
	// NodeServed[i] counts queries node i completed after warmup.
	NodeServed []int
}

// MaxUtilization returns the busiest node's utilization.
func (r *Result) MaxUtilization() float64 {
	m := 0.0
	for _, u := range r.Utilization {
		if u > m {
			m = u
		}
	}
	return m
}

// DropRate returns dropped / (served + dropped), the loss ratio among
// backend-bound queries.
func (r *Result) DropRate() float64 {
	total := r.Served + r.Dropped
	if total == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(total)
}

// event kinds.
const (
	evArrival = iota
	evDeparture
)

type event struct {
	at   float64
	kind int
	node int // departure only
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type node struct {
	queue     []float64 // arrival times of waiting + in-service jobs
	busySince float64
	busyTime  float64
	served    int
	maxQueue  int
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyLeastQueue
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = cfg.Duration / 10
	}

	part := partition.NewHash(cfg.Nodes, cfg.Replication, cfg.PartitionSeed)
	rng := xrand.New(xrand.Derive(cfg.Seed, 0xDE5))
	expRand := rng.Rand() // for ExpFloat64
	serviceTime := func() float64 { return expRand.ExpFloat64() / cfg.ServiceRate }
	if cfg.ServiceDist == "det" {
		serviceTime = func() float64 { return 1 / cfg.ServiceRate }
	}

	nodes := make([]node, cfg.Nodes)
	res := &Result{
		Utilization: make([]float64, cfg.Nodes),
		NodeServed:  make([]int, cfg.Nodes),
	}
	p99 := stats.NewP2Quantile(0.99)

	events := &eventHeap{}
	heap.Init(events)
	heap.Push(events, event{at: expRand.ExpFloat64() / cfg.ArrivalRate, kind: evArrival})

	group := make([]int, 0, cfg.Replication)
	for events.Len() > 0 {
		ev := heap.Pop(events).(event)
		if ev.at > cfg.Duration {
			break
		}
		now := ev.at
		measuring := now >= cfg.Warmup
		switch ev.kind {
		case evArrival:
			// Schedule the next arrival first (Poisson process).
			heap.Push(events, event{at: now + expRand.ExpFloat64()/cfg.ArrivalRate, kind: evArrival})
			key := cfg.Dist.Sample(rng)
			if cfg.Cached != nil && cfg.Cached(key) {
				if measuring {
					res.CacheHits++
				}
				continue
			}
			group = part.GroupAppend(group[:0], uint64(key))
			target := group[0]
			switch cfg.Policy {
			case PolicyRandom:
				target = group[rng.Intn(len(group))]
			case PolicySticky:
				target = group[hashing.Hash64Uint(uint64(key), cfg.PartitionSeed^0x57CC)%uint64(len(group))]
			default: // PolicyLeastQueue
				for _, cand := range group[1:] {
					if len(nodes[cand].queue) < len(nodes[target].queue) {
						target = cand
					}
				}
			}
			nd := &nodes[target]
			if cfg.QueueCap > 0 && len(nd.queue) >= cfg.QueueCap {
				if measuring {
					res.Dropped++
				}
				continue
			}
			nd.queue = append(nd.queue, now)
			if len(nd.queue) > nd.maxQueue {
				nd.maxQueue = len(nd.queue)
			}
			if len(nd.queue) == 1 { // idle server: start service
				nd.busySince = now
				heap.Push(events, event{
					at:   now + serviceTime(),
					kind: evDeparture,
					node: target,
				})
			}
		case evDeparture:
			nd := &nodes[ev.node]
			arrived := nd.queue[0]
			nd.queue = nd.queue[1:]
			if measuring {
				res.Served++
				nd.served++
				sojourn := now - arrived
				res.Latency.Add(sojourn)
				p99.Add(sojourn)
			}
			if len(nd.queue) > 0 { // next job starts immediately
				heap.Push(events, event{
					at:   now + serviceTime(),
					kind: evDeparture,
					node: ev.node,
				})
			} else {
				nd.busyTime += now - nd.busySince
			}
		}
	}

	for i := range nodes {
		busy := nodes[i].busyTime
		if len(nodes[i].queue) > 0 { // still busy at the end of the run
			busy += cfg.Duration - nodes[i].busySince
		}
		// Busy fraction over the whole run; with a warmup that is a tenth
		// of the duration the steady-state error is negligible.
		res.Utilization[i] = math.Min(1, busy/cfg.Duration)
		res.NodeServed[i] = nodes[i].served
		if nodes[i].maxQueue > res.MaxQueue {
			res.MaxQueue = nodes[i].maxQueue
		}
	}
	res.P99Latency = p99.Value()
	return res, nil
}
