package des

import (
	"math"
	"testing"

	"securecache/internal/workload"
)

func TestValidation(t *testing.T) {
	good := Config{
		Nodes: 4, Replication: 2, Dist: workload.NewUniform(10, 10),
		ArrivalRate: 10, ServiceRate: 10, Duration: 1,
	}
	if err := good.validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.Replication = 0 },
		func(c *Config) { c.Replication = 5 },
		func(c *Config) { c.Dist = nil },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.ServiceRate = -1 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.Warmup = 2 },
		func(c *Config) { c.QueueCap = -1 },
		func(c *Config) { c.Policy = "bogus" },
	}
	for i, mut := range mutations {
		bad := good
		mut(&bad)
		if _, err := Run(bad); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestMM1Latency checks the simulator against the closed form for an
// M/M/1 queue: with a single node, no cache, mean sojourn time
// W = 1/(µ − λ).
func TestMM1Latency(t *testing.T) {
	const lambda, mu = 700.0, 1000.0
	res, err := Run(Config{
		Nodes:       1,
		Replication: 1,
		Dist:        workload.NewUniform(100, 100),
		ArrivalRate: lambda,
		ServiceRate: mu,
		Duration:    300,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (mu - lambda) // ≈ 3.33 ms
	got := res.Latency.Mean()
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("M/M/1 mean sojourn %v, theory %v (>10%% off)", got, want)
	}
	// Utilization ρ = λ/µ = 0.7.
	if u := res.Utilization[0]; math.Abs(u-0.7) > 0.05 {
		t.Errorf("utilization %v, want ~0.7", u)
	}
	if res.Dropped != 0 {
		t.Errorf("unbounded queue dropped %d", res.Dropped)
	}
}

func TestCacheAbsorbsHits(t *testing.T) {
	// All queried keys cached: backends see nothing.
	res, err := Run(Config{
		Nodes:       4,
		Replication: 2,
		Dist:        workload.NewUniform(100, 10),
		Cached:      func(key int) bool { return key < 10 },
		ArrivalRate: 1000,
		ServiceRate: 100,
		Duration:    10,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != 0 {
		t.Errorf("backends served %d with everything cached", res.Served)
	}
	if res.CacheHits == 0 {
		t.Error("no cache hits recorded")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := Config{
		Nodes: 8, Replication: 3, Dist: workload.NewZipf(200, 1.01),
		ArrivalRate: 2000, ServiceRate: 400, Duration: 5, Seed: 3,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Served != b.Served || a.Latency.Mean() != b.Latency.Mean() {
		t.Error("same seed produced different results")
	}
	cfg.Seed = 4
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Served == c.Served && a.Latency.Mean() == c.Latency.Mean() {
		t.Error("different seeds produced identical results")
	}
}

func TestBoundedQueueDrops(t *testing.T) {
	// Overload one node hard (single hot key) with a tiny queue: drops.
	res, err := Run(Config{
		Nodes:       4,
		Replication: 2,
		Dist:        workload.NewUniform(100, 1), // all traffic on key 0
		ArrivalRate: 1000,
		ServiceRate: 100, // 10x overload on the victim node
		QueueCap:    5,
		Duration:    10,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Error("overloaded bounded queue dropped nothing")
	}
	if res.DropRate() < 0.5 {
		t.Errorf("drop rate %v, want heavy loss under 10x overload", res.DropRate())
	}
	if res.MaxQueue > 5 {
		t.Errorf("queue grew to %d past cap 5", res.MaxQueue)
	}
}

func TestLeastQueueBeatsRandomUnderSkew(t *testing.T) {
	// Moderately skewed load: least-queue routing should give lower p99
	// than random routing.
	base := Config{
		Nodes:       6,
		Replication: 3,
		Dist:        workload.NewZipf(50, 1.2),
		ArrivalRate: 3000,
		ServiceRate: 800,
		Duration:    20,
		Seed:        6,
	}
	lq := base
	lq.Policy = PolicyLeastQueue
	rnd := base
	rnd.Policy = PolicyRandom
	a, err := Run(lq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(rnd)
	if err != nil {
		t.Fatal(err)
	}
	if a.P99Latency >= b.P99Latency {
		t.Errorf("least-queue p99 %v not below random p99 %v", a.P99Latency, b.P99Latency)
	}
}

func TestUtilizationConservation(t *testing.T) {
	// Total served across nodes must equal Served; utilizations in [0,1].
	res, err := Run(Config{
		Nodes: 5, Replication: 2, Dist: workload.NewUniform(100, 100),
		ArrivalRate: 1000, ServiceRate: 400, Duration: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for i, u := range res.Utilization {
		if u < 0 || u > 1 {
			t.Errorf("node %d utilization %v", i, u)
		}
		sum += res.NodeServed[i]
	}
	if sum != res.Served {
		t.Errorf("node served sum %d != Served %d", sum, res.Served)
	}
}

func BenchmarkRun(b *testing.B) {
	cfg := Config{
		Nodes: 50, Replication: 3, Dist: workload.NewZipf(1000, 1.01),
		ArrivalRate: 10000, ServiceRate: 400, Duration: 2, Seed: 1,
	}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStickyPinsHotKeyToOneNode(t *testing.T) {
	// All traffic on one key: sticky serves it from exactly one node,
	// least-queue spreads it over the whole replica group.
	base := Config{
		Nodes:       6,
		Replication: 3,
		Dist:        workload.NewUniform(100, 1),
		ArrivalRate: 900,
		ServiceRate: 1000,
		Duration:    10,
		Seed:        8,
	}
	sticky := base
	sticky.Policy = PolicySticky
	rs, err := Run(sticky)
	if err != nil {
		t.Fatal(err)
	}
	activeSticky := 0
	for _, served := range rs.NodeServed {
		if served > 0 {
			activeSticky++
		}
	}
	if activeSticky != 1 {
		t.Errorf("sticky served the hot key from %d nodes, want 1", activeSticky)
	}

	lq := base
	lq.Policy = PolicyLeastQueue
	rl, err := Run(lq)
	if err != nil {
		t.Fatal(err)
	}
	activeLQ := 0
	for _, served := range rl.NodeServed {
		if served > 0 {
			activeLQ++
		}
	}
	if activeLQ != 3 {
		t.Errorf("least-queue served the hot key from %d nodes, want 3 (the replica group)", activeLQ)
	}
	// And the spreading buys latency: least-queue p99 below sticky p99.
	if rl.P99Latency >= rs.P99Latency {
		t.Errorf("least-queue p99 %v not below sticky p99 %v", rl.P99Latency, rs.P99Latency)
	}
}

// TestMD1Latency checks deterministic service against the M/D/1 closed
// form: W = 1/µ + ρ/(2µ(1−ρ)).
func TestMD1Latency(t *testing.T) {
	const lambda, mu = 700.0, 1000.0
	res, err := Run(Config{
		Nodes:       1,
		Replication: 1,
		Dist:        workload.NewUniform(100, 100),
		ArrivalRate: lambda,
		ServiceRate: mu,
		ServiceDist: "det",
		Duration:    300,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	want := 1/mu + rho/(2*mu*(1-rho)) // ≈ 2.17 ms
	got := res.Latency.Mean()
	if math.Abs(got-want)/want > 0.10 {
		t.Errorf("M/D/1 mean sojourn %v, theory %v (>10%% off)", got, want)
	}
	// M/D/1 waits are half of M/M/1's queueing delay: must be clearly
	// below the exponential-service result at the same load.
	mm1 := 1 / (mu - lambda)
	if got >= mm1 {
		t.Errorf("M/D/1 sojourn %v not below M/M/1 %v", got, mm1)
	}
}

func TestServiceDistValidation(t *testing.T) {
	cfg := Config{
		Nodes: 1, Replication: 1, Dist: workload.NewUniform(10, 10),
		ArrivalRate: 1, ServiceRate: 1, Duration: 1, ServiceDist: "pareto",
	}
	if _, err := Run(cfg); err == nil {
		t.Error("unknown service distribution accepted")
	}
}
