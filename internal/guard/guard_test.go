package guard

import (
	"strings"
	"testing"

	"securecache/internal/cluster"
	"securecache/internal/core"
	"securecache/internal/workload"
	"securecache/internal/xrand"
)

func testParams(c int) core.Params {
	return core.Params{Nodes: 50, Replication: 3, Items: 5000, CacheSize: c, KOverride: 1.2}
}

func mustGuard(t *testing.T, cfg Config) *Guard {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{},                                      // invalid params
		{Params: testParams(0), AlertGain: 0.9}, // alert <= 1
		{Params: testParams(0), AlertGain: 1.5, CriticalGain: 1.4},
		{Params: testParams(0), Smoothing: 2},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	if _, err := New(Config{Params: testParams(0)}); err != nil {
		t.Errorf("defaulted config rejected: %v", err)
	}
}

func TestObserveInputValidation(t *testing.T) {
	g := mustGuard(t, Config{Params: testParams(10)})
	if _, err := g.Observe(make([]float64, 3)); err == nil {
		t.Error("wrong-length load vector accepted")
	}
	loads := make([]float64, 50)
	loads[0] = -1
	if _, err := g.Observe(loads); err == nil {
		t.Error("negative load accepted")
	}
}

func TestBalancedVerdict(t *testing.T) {
	g := mustGuard(t, Config{Params: testParams(200), Smoothing: 1})
	loads := make([]float64, 50)
	for i := range loads {
		loads[i] = 100
	}
	obs, err := g.Observe(loads)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Verdict != VerdictBalanced {
		t.Errorf("flat loads verdict %s", obs.Verdict)
	}
	if obs.NormalizedMax != 1 {
		t.Errorf("norm max %v, want 1", obs.NormalizedMax)
	}
	if obs.Vulnerable {
		t.Error("c=200 > c*=61 flagged vulnerable")
	}
}

func TestCriticalVerdictUnderConcentration(t *testing.T) {
	g := mustGuard(t, Config{Params: testParams(10), Smoothing: 1})
	loads := make([]float64, 50)
	for i := range loads {
		loads[i] = 10
	}
	loads[7] = 500 // hot node
	obs, err := g.Observe(loads)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Verdict != VerdictCritical {
		t.Errorf("verdict %s, want critical (norm max %v)", obs.Verdict, obs.NormalizedMax)
	}
	if !obs.Vulnerable {
		t.Error("c=10 < c* not flagged vulnerable")
	}
	if obs.RecommendedCacheSize != testParams(10).RequiredCacheSize() {
		t.Error("recommendation != c*")
	}
	if !strings.Contains(obs.String(), "grow to c*") {
		t.Errorf("String() missing recommendation: %s", obs.String())
	}
}

func TestEWMASmoothing(t *testing.T) {
	g := mustGuard(t, Config{Params: testParams(10), Smoothing: 0.5})
	flat := make([]float64, 50)
	spike := make([]float64, 50)
	for i := range flat {
		flat[i] = 10
		spike[i] = 10
	}
	spike[0] = 1000
	// Prime with flat traffic.
	for i := 0; i < 5; i++ {
		if _, err := g.Observe(flat); err != nil {
			t.Fatal(err)
		}
	}
	// One spike window must not immediately push the EWMA to the raw max.
	obs, err := g.Observe(spike)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Smoothed >= obs.NormalizedMax {
		t.Errorf("EWMA %v not below raw %v after one spike", obs.Smoothed, obs.NormalizedMax)
	}
	// Sustained spikes converge upward.
	for i := 0; i < 10; i++ {
		obs, err = g.Observe(spike)
		if err != nil {
			t.Fatal(err)
		}
	}
	if obs.Verdict != VerdictCritical {
		t.Errorf("sustained concentration verdict %s", obs.Verdict)
	}
	if g.Windows() != 16 {
		t.Errorf("Windows = %d, want 16", g.Windows())
	}
}

func TestZeroWindowIgnored(t *testing.T) {
	g := mustGuard(t, Config{Params: testParams(10)})
	obs, err := g.Observe(make([]float64, 50))
	if err != nil {
		t.Fatal(err)
	}
	if obs.Verdict != VerdictBalanced || g.Windows() != 0 {
		t.Errorf("empty window: verdict %s, windows %d", obs.Verdict, g.Windows())
	}
}

// TestGuardDetectsSimulatedAttack wires the guard to the cluster
// simulator: benign Zipf traffic through an adequate cache stays
// balanced; the optimal attack against a small cache trips the alarm.
func TestGuardDetectsSimulatedAttack(t *testing.T) {
	const n, d, m, c = 50, 3, 5000, 10
	cl, err := cluster.New(cluster.Config{Nodes: n, Replication: d, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	g := mustGuard(t, Config{Params: testParams(c), Smoothing: 1})

	// Benign: Zipf through a perfect cache of the top c keys.
	zipf := workload.NewZipf(m, 1.01)
	cached := cluster.CachedSet(workload.TopC(zipf, c))
	rep := cl.ApplyLoad(zipf, 10000, cached, xrand.New(1))
	obs, err := g.Observe(rep.Loads)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Verdict == VerdictCritical {
		t.Errorf("benign zipf flagged critical (norm max %v)", obs.NormalizedMax)
	}

	// Attack: x = c+1 equal keys.
	atk := workload.NewAdversarial(m, c+1, 0)
	cachedAtk := cluster.CachedSet(workload.TopC(atk, c))
	rep = cl.ApplyLoad(atk, 10000, cachedAtk, xrand.New(2))
	obs, err = g.Observe(rep.Loads)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Verdict != VerdictCritical {
		t.Errorf("attack verdict %s (norm max %v), want critical", obs.Verdict, obs.NormalizedMax)
	}
}
