// Package guard turns the paper's theory into an operational monitor: it
// watches per-node load samples, detects when the cluster's load shape
// looks adversarial (hottest node far above the even share), and
// recommends the front-end cache size that would make such an attack
// impossible.
//
// Detection is deliberately simple and assumption-light — it needs only
// the per-node load vector the back ends already export (requests_total
// deltas) — because the paper's whole point is that *prevention* is a
// provisioning decision, not a filtering one. The guard tells you that
// you are under (or vulnerable to) load-concentration attack and what c*
// to provision; it does not try to identify attacker keys.
package guard

import (
	"fmt"
	"math"

	"securecache/internal/core"
)

// Verdict classifies one load observation window.
type Verdict string

// Verdicts.
const (
	// VerdictBalanced: the load shape is consistent with benign traffic
	// through a working cache (normalized max below the alert level).
	VerdictBalanced Verdict = "balanced"
	// VerdictSkewed: one node is meaningfully above the even share —
	// either an attack below the provisioning threshold or organic skew
	// leaking past the cache.
	VerdictSkewed Verdict = "skewed"
	// VerdictCritical: the hottest node is beyond the critical level
	// (default 2x the even share); service degradation is imminent.
	VerdictCritical Verdict = "critical"
)

// Config parameterizes a Guard.
type Config struct {
	// Params describes the protected cluster (Nodes, Replication, Items,
	// CacheSize, and optionally the bound constant). Required fields as
	// per core.Params.Validate.
	Params core.Params
	// AlertGain is the normalized max load above which the verdict is
	// Skewed. Default 1.2 (the even share plus the Θ(1) slack the
	// d-choice allocation itself can produce).
	AlertGain float64
	// CriticalGain is the level above which the verdict is Critical.
	// Default 2.0.
	CriticalGain float64
	// Smoothing is the EWMA factor applied to successive windows in
	// (0, 1]; 1 means no smoothing. Default 0.3.
	Smoothing float64
}

// Guard is a stateful monitor. It is not safe for concurrent use; feed it
// from a single collection loop.
type Guard struct {
	cfg    Config
	ewma   float64
	primed bool
	obs    int
}

// New validates cfg and returns a Guard.
func New(cfg Config) (*Guard, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("guard: %w", err)
	}
	if cfg.AlertGain == 0 {
		cfg.AlertGain = 1.2
	}
	if cfg.CriticalGain == 0 {
		cfg.CriticalGain = 2.0
	}
	if cfg.AlertGain <= 1 || cfg.CriticalGain <= cfg.AlertGain {
		return nil, fmt.Errorf("guard: need 1 < AlertGain (%v) < CriticalGain (%v)",
			cfg.AlertGain, cfg.CriticalGain)
	}
	if cfg.Smoothing < 0 || cfg.Smoothing > 1 {
		return nil, fmt.Errorf("guard: Smoothing %v outside [0, 1]", cfg.Smoothing)
	}
	if cfg.Smoothing == 0 {
		cfg.Smoothing = 0.3
	}
	return &Guard{cfg: cfg}, nil
}

// Observation is the guard's assessment of one window.
type Observation struct {
	// NormalizedMax is max(loads) / mean(loads) for this window: the
	// realized attack gain, assuming the window's total is the offered
	// backend load.
	NormalizedMax float64
	// Smoothed is the EWMA of NormalizedMax across windows.
	Smoothed float64
	// Verdict classifies the smoothed value.
	Verdict Verdict
	// Vulnerable reports whether the configured cache is below the
	// provisioning threshold (an attack like this window's shape is
	// *expected* to be possible).
	Vulnerable bool
	// RecommendedCacheSize is c* for the cluster — the provisioning fix.
	RecommendedCacheSize int
}

// Observe ingests one window of per-node loads (request-count deltas or
// rates; any consistent unit). It returns the assessment, or an error for
// malformed input. Windows with zero total load return VerdictBalanced
// and do not move the EWMA.
func (g *Guard) Observe(loads []float64) (Observation, error) {
	if len(loads) != g.cfg.Params.Nodes {
		return Observation{}, fmt.Errorf("guard: %d load samples for %d nodes",
			len(loads), g.cfg.Params.Nodes)
	}
	var total, maxLoad float64
	for i, l := range loads {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return Observation{}, fmt.Errorf("guard: invalid load %v at node %d", l, i)
		}
		total += l
		if l > maxLoad {
			maxLoad = l
		}
	}
	obs := Observation{
		Vulnerable:           g.cfg.Params.EffectiveAttackPossible(),
		RecommendedCacheSize: g.cfg.Params.RequiredCacheSize(),
	}
	if total == 0 {
		obs.Verdict = VerdictBalanced
		obs.Smoothed = g.ewma
		return obs, nil
	}
	obs.NormalizedMax = maxLoad / (total / float64(len(loads)))
	if !g.primed {
		g.ewma = obs.NormalizedMax
		g.primed = true
	} else {
		g.ewma = g.cfg.Smoothing*obs.NormalizedMax + (1-g.cfg.Smoothing)*g.ewma
	}
	g.obs++
	obs.Smoothed = g.ewma
	switch {
	case obs.Smoothed >= g.cfg.CriticalGain:
		obs.Verdict = VerdictCritical
	case obs.Smoothed >= g.cfg.AlertGain:
		obs.Verdict = VerdictSkewed
	default:
		obs.Verdict = VerdictBalanced
	}
	return obs, nil
}

// Windows returns the number of non-empty windows observed.
func (g *Guard) Windows() int { return g.obs }

// SetParams re-derives the guard's thresholds for a new cluster shape —
// the elastic-membership hook: when n changes, the Eq. 10 bound, the
// vulnerability check, and the recommended c* all change with it, and a
// guard still judging the old n would mis-size every verdict. The EWMA
// is preserved: normalized max load is scale-free (max/mean), so the
// smoothed attack-gain history stays meaningful across the resize.
func (g *Guard) SetParams(p core.Params) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("guard: %w", err)
	}
	g.cfg.Params = p
	return nil
}

// Params returns the cluster parameters the guard currently judges
// against.
func (g *Guard) Params() core.Params { return g.cfg.Params }

// String renders an observation for operator logs.
func (o Observation) String() string {
	s := fmt.Sprintf("norm-max=%.3f (ewma %.3f) verdict=%s", o.NormalizedMax, o.Smoothed, o.Verdict)
	if o.Vulnerable {
		s += fmt.Sprintf(" — cache below threshold, grow to c*=%d", o.RecommendedCacheSize)
	}
	return s
}
