package guard_test

import (
	"fmt"

	"securecache/internal/core"
	"securecache/internal/guard"
)

// Watch a small cluster's load windows and catch a concentration attack.
func ExampleGuard_Observe() {
	g, err := guard.New(guard.Config{
		Params: core.Params{
			Nodes: 10, Replication: 3, Items: 10000, CacheSize: 2, KOverride: 1.2,
		},
		Smoothing: 1, // no EWMA smoothing, for a deterministic example
	})
	if err != nil {
		panic(err)
	}

	// Window 1: balanced traffic.
	flat := []float64{100, 101, 99, 100, 98, 102, 100, 100, 99, 101}
	obs, _ := g.Observe(flat)
	fmt.Println("flat:   ", obs.Verdict)

	// Window 2: one node carries 5x its share.
	hot := []float64{100, 100, 100, 500, 100, 100, 100, 100, 100, 100}
	obs, _ = g.Observe(hot)
	fmt.Println("hot:    ", obs.Verdict)
	fmt.Println("vulnerable below c*:", obs.Vulnerable)
	fmt.Println("recommended cache:", obs.RecommendedCacheSize)
	// Output:
	// flat:    balanced
	// hot:     critical
	// vulnerable below c*: true
	// recommended cache: 13
}
