package guard

import (
	"testing"

	"securecache/internal/core"
)

func TestSetParamsRescalesVerdicts(t *testing.T) {
	p := core.Params{Nodes: 4, Replication: 3, Items: 1000, CacheSize: 64}
	g, err := New(Config{Params: p, Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Observe([]float64{10, 10, 10, 10}); err != nil {
		t.Fatal(err)
	}
	// Grown to 6 nodes: a 4-wide sample must now be rejected and a
	// 6-wide one accepted; c* recommendations track the new n.
	grown := p
	grown.Nodes = 6
	if err := g.SetParams(grown); err != nil {
		t.Fatal(err)
	}
	if g.Params().Nodes != 6 {
		t.Fatalf("Params().Nodes = %d", g.Params().Nodes)
	}
	if _, err := g.Observe([]float64{10, 10, 10, 10}); err == nil {
		t.Fatal("stale-width load vector accepted after SetParams")
	}
	obs, err := g.Observe([]float64{10, 10, 10, 10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	want := grown.RequiredCacheSize()
	if obs.RecommendedCacheSize != want {
		t.Fatalf("recommended c* = %d, want %d", obs.RecommendedCacheSize, want)
	}
	if obs.Verdict != VerdictBalanced {
		t.Fatalf("balanced load judged %q", obs.Verdict)
	}
}

func TestSetParamsPreservesEWMA(t *testing.T) {
	p := core.Params{Nodes: 4, Replication: 3, Items: 1000, CacheSize: 64}
	g, err := New(Config{Params: p, Smoothing: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := g.Observe([]float64{100, 0, 0, 0}) // norm-max 4.0
	if err != nil {
		t.Fatal(err)
	}
	before := obs.Smoothed
	grown := p
	grown.Nodes = 5
	if err := g.SetParams(grown); err != nil {
		t.Fatal(err)
	}
	obs, err = g.Observe([]float64{100, 0, 0, 0, 0}) // norm-max 5.0
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.5*5.0 + 0.5*before; obs.Smoothed != want {
		t.Fatalf("smoothed = %v, want %v (EWMA continued across SetParams)", obs.Smoothed, want)
	}
}

func TestSetParamsValidates(t *testing.T) {
	g, err := New(Config{Params: core.Params{Nodes: 4, Replication: 3, Items: 10, CacheSize: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetParams(core.Params{Nodes: 1, Replication: 3, Items: 10}); err == nil {
		t.Fatal("invalid params accepted")
	}
	if g.Params().Nodes != 4 {
		t.Fatal("failed SetParams mutated state")
	}
}
