package overload

import (
	"testing"
	"time"
)

func TestTokenBucketSetRate(t *testing.T) {
	tb := NewTokenBucket(1000, 10)
	for i := 0; i < 10; i++ {
		if !tb.Allow() {
			t.Fatalf("burst draw %d refused", i)
		}
	}
	// Drop to a crawl: ~1 token per 100ms. An immediate draw fails.
	tb.SetRate(10)
	if tb.Rate() != 10 {
		t.Fatalf("Rate() = %v after SetRate(10)", tb.Rate())
	}
	if tb.Allow() {
		t.Fatal("empty bucket admitted right after rate drop")
	}
	// Ramp back up: tokens accrue at the new rate.
	tb.SetRate(1000)
	time.Sleep(20 * time.Millisecond)
	if !tb.Allow() {
		t.Fatal("no token accrued at restored rate")
	}
}

func TestTokenBucketSetRateNoops(t *testing.T) {
	var nilBucket *TokenBucket
	nilBucket.SetRate(5) // must not panic
	if nilBucket.Rate() != 0 {
		t.Fatal("nil bucket reports a rate")
	}
	tb := NewTokenBucket(100, 1)
	tb.SetRate(0)
	tb.SetRate(-3)
	if tb.Rate() != 100 {
		t.Fatalf("non-positive SetRate changed rate to %v", tb.Rate())
	}
}
