// Package overload implements server-side admission control and
// client-side retry damping for the kvstore servers.
//
// The paper's provisioning rule (c* = n·k + 1) bounds each backend's load
// *in expectation*; this package is what keeps a node useful when an
// adversary (or a partial outage) pushes realized load past provisioned
// capacity anyway. Three mechanisms, composable via Gate:
//
//   - TokenBucket: a classic rate limiter. Requests beyond the sustained
//     rate (plus burst) are shed immediately with StatusBusy instead of
//     queueing, so in-budget traffic keeps its latency.
//   - Semaphore: a bounded in-flight limit with a short admission wait.
//     Bounds memory and goroutine occupancy; a full server sheds rather
//     than stacking unbounded work behind a slow resource.
//   - RetryBudget: a token bucket refilled by request *successes*. Caps
//     the ratio of retries to useful work so a client fleet cannot
//     amplify an overload into a retry storm (the mechanism popularized
//     by Finagle/Envoy retry budgets).
//
// All types are safe for concurrent use and nil-tolerant: a nil Gate or
// RetryBudget admits everything, so callers need no "is it configured"
// branches on the hot path.
package overload

import (
	"sync"
	"sync/atomic"
	"time"
)

// Defaults used by Limits.withDefaults and NewRetryBudget(0, 0).
const (
	// DefaultAdmissionWait is how long an arriving request may wait for
	// an in-flight slot before being shed. Short on purpose: waiting
	// longer than a healthy service time just moves the queue inside
	// the server.
	DefaultAdmissionWait = 2 * time.Millisecond
	// DefaultRetryBudgetMax is the retry budget's bucket capacity (also
	// its initial balance, so cold-start retries are not starved).
	DefaultRetryBudgetMax = 10
	// DefaultRetryBudgetRatio is how much budget one success refills:
	// at 0.1, sustained retries are capped near 10% of successes.
	DefaultRetryBudgetRatio = 0.1
)

// TokenBucket is a monotonic-clock token-bucket rate limiter.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket returns a bucket sustaining rate requests/second with
// the given burst capacity (burst < 1 is raised to 1 so a full bucket
// always admits at least one request). rate <= 0 returns nil, which
// Allow treats as unlimited.
func NewTokenBucket(rate float64, burst float64) *TokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// SetRate changes the bucket's sustained rate in place (tokens already
// accrued are kept; accrual up to now happens at the old rate). The
// migration pressure controller uses this to shed migration throughput
// when backends report busy and ramp it back when they recover. rate <=
// 0 and nil receivers are no-ops — an unlimited bucket stays unlimited.
func (tb *TokenBucket) SetRate(rate float64) {
	if tb == nil || rate <= 0 {
		return
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens += dt * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	tb.rate = rate
}

// Rate returns the current sustained rate (0 for a nil bucket).
func (tb *TokenBucket) Rate() float64 {
	if tb == nil {
		return 0
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.rate
}

// Allow takes one token if available. Nil receiver always admits.
func (tb *TokenBucket) Allow() bool {
	if tb == nil {
		return true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		tb.tokens += dt * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// Semaphore bounds concurrent in-flight work.
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore returns a semaphore with n slots; n <= 0 returns nil,
// which admits everything.
func NewSemaphore(n int) *Semaphore {
	if n <= 0 {
		return nil
	}
	return &Semaphore{slots: make(chan struct{}, n)}
}

// TryAcquire takes a slot, waiting up to wait for one to free. Nil
// receiver always admits.
func (s *Semaphore) TryAcquire(wait time.Duration) bool {
	if s == nil {
		return true
	}
	select {
	case s.slots <- struct{}{}:
		return true
	default:
	}
	if wait <= 0 {
		return false
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		return true
	case <-t.C:
		return false
	}
}

// Release frees a slot taken by TryAcquire.
func (s *Semaphore) Release() {
	if s == nil {
		return
	}
	<-s.slots
}

// Inflight returns the current number of held slots.
func (s *Semaphore) Inflight() int {
	if s == nil {
		return 0
	}
	return len(s.slots)
}

// Limits configures a Gate. The zero value means "no limits" (every
// field 0 = that mechanism disabled), so embedding it in a server config
// is backward compatible.
type Limits struct {
	// MaxInflight bounds concurrently admitted requests (0 = unlimited).
	MaxInflight int
	// MaxConns bounds concurrently open connections (0 = unlimited).
	// Excess connections are closed at accept time, before they can
	// hold a handler goroutine.
	MaxConns int
	// RateLimit bounds sustained admitted requests/second
	// (0 = unlimited).
	RateLimit float64
	// RateBurst is the rate limiter's burst capacity
	// (0 = max(1, RateLimit)).
	RateBurst float64
	// AdmissionWait is how long a request may wait for an in-flight
	// slot before being shed (0 = DefaultAdmissionWait, negative = no
	// wait).
	AdmissionWait time.Duration
}

// Enabled reports whether any limit is configured.
func (l Limits) Enabled() bool {
	return l.MaxInflight > 0 || l.MaxConns > 0 || l.RateLimit > 0
}

func (l Limits) withDefaults() Limits {
	if l.RateLimit > 0 && l.RateBurst <= 0 {
		l.RateBurst = l.RateLimit
		if l.RateBurst < 1 {
			l.RateBurst = 1
		}
	}
	switch {
	case l.AdmissionWait == 0:
		l.AdmissionWait = DefaultAdmissionWait
	case l.AdmissionWait < 0:
		l.AdmissionWait = 0
	}
	return l
}

// Gate is a server's combined admission controller: connection cap, rate
// limit, and in-flight bound. A nil Gate admits everything.
type Gate struct {
	lim    Limits
	bucket *TokenBucket
	sem    *Semaphore
	conns  atomic.Int64
	// frames counts admitted requests currently in flight. Tracked
	// per-frame (not per-conn slot) so the count stays meaningful on
	// pipelined connections, where one conn dispatches many requests
	// concurrently — and regardless of whether MaxInflight is set.
	frames atomic.Int64
}

// NewGate builds a Gate from lim, or returns nil when lim is all-zero.
func NewGate(lim Limits) *Gate {
	if !lim.Enabled() {
		return nil
	}
	lim = lim.withDefaults()
	return &Gate{
		lim:    lim,
		bucket: NewTokenBucket(lim.RateLimit, lim.RateBurst),
		sem:    NewSemaphore(lim.MaxInflight),
	}
}

// AdmitConn reserves a connection slot, reporting false when the server
// is at MaxConns. Pair with ReleaseConn.
func (g *Gate) AdmitConn() bool {
	if g == nil || g.lim.MaxConns <= 0 {
		return true
	}
	if g.conns.Add(1) > int64(g.lim.MaxConns) {
		g.conns.Add(-1)
		return false
	}
	return true
}

// ReleaseConn frees a slot reserved by a successful AdmitConn.
func (g *Gate) ReleaseConn() {
	if g == nil || g.lim.MaxConns <= 0 {
		return
	}
	g.conns.Add(-1)
}

// Admit decides one request: the rate limiter is consulted first (cheap,
// never blocks), then an in-flight slot is acquired with the configured
// short wait. False means "shed now with StatusBusy". A true return must
// be paired with Release after the response is written.
func (g *Gate) Admit() bool {
	if g == nil {
		return true
	}
	if !g.bucket.Allow() {
		return false
	}
	if !g.sem.TryAcquire(g.lim.AdmissionWait) {
		return false
	}
	g.frames.Add(1)
	return true
}

// Release frees the in-flight slot taken by a successful Admit.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	g.frames.Add(-1)
	g.sem.Release()
}

// Inflight returns the number of currently admitted requests (frames,
// not connections — on a pipelined conn each in-flight frame counts).
func (g *Gate) Inflight() int {
	if g == nil {
		return 0
	}
	return int(g.frames.Load())
}

// RetryBudget caps retries as a fraction of successful work. Each retry
// spends one token; each success refills ratio tokens (capped at max).
// The budget starts full so isolated cold-start failures still get their
// configured retries; only a sustained failure wave drains it.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64

	exhausted atomic.Uint64
}

// NewRetryBudget returns a budget with the given capacity and
// per-success refill ratio (0 = the package defaults; max < 0 returns
// nil, which Spend always allows).
func NewRetryBudget(max, ratio float64) *RetryBudget {
	if max < 0 {
		return nil
	}
	if max == 0 {
		max = DefaultRetryBudgetMax
	}
	if ratio <= 0 {
		ratio = DefaultRetryBudgetRatio
	}
	return &RetryBudget{tokens: max, max: max, ratio: ratio}
}

// OnSuccess credits the budget for one successful request.
func (b *RetryBudget) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Spend consumes one token for a retry, reporting false (and counting an
// exhaustion) when the budget is dry. Nil receiver always allows.
func (b *RetryBudget) Spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	if !ok {
		b.exhausted.Add(1)
	}
	return ok
}

// Exhausted returns how many retries the budget has refused.
func (b *RetryBudget) Exhausted() uint64 {
	if b == nil {
		return 0
	}
	return b.exhausted.Load()
}

// Tokens returns the current balance (for tests and introspection).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
