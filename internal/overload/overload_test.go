package overload

import (
	"sync"
	"testing"
	"time"
)

func TestTokenBucketBurstThenRate(t *testing.T) {
	tb := NewTokenBucket(10, 5) // 10/s sustained, burst 5
	admitted := 0
	for i := 0; i < 20; i++ {
		if tb.Allow() {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("burst admitted %d, want 5", admitted)
	}
	// ~10/s: after 150ms at least one token has accrued.
	time.Sleep(150 * time.Millisecond)
	if !tb.Allow() {
		t.Fatal("bucket did not refill at the sustained rate")
	}
}

func TestTokenBucketNilAndDisabled(t *testing.T) {
	var tb *TokenBucket
	if !tb.Allow() {
		t.Fatal("nil bucket must admit")
	}
	if NewTokenBucket(0, 5) != nil || NewTokenBucket(-1, 5) != nil {
		t.Fatal("rate <= 0 must build a nil (unlimited) bucket")
	}
}

func TestSemaphoreBoundsAndWait(t *testing.T) {
	s := NewSemaphore(2)
	if !s.TryAcquire(0) || !s.TryAcquire(0) {
		t.Fatal("first two acquisitions must succeed")
	}
	if s.TryAcquire(0) {
		t.Fatal("third immediate acquisition must fail")
	}
	if got := s.Inflight(); got != 2 {
		t.Fatalf("Inflight = %d, want 2", got)
	}
	// A waiter succeeds when a slot frees within its wait.
	go func() {
		time.Sleep(20 * time.Millisecond)
		s.Release()
	}()
	if !s.TryAcquire(500 * time.Millisecond) {
		t.Fatal("waiter did not get the freed slot")
	}
	// And times out when nothing frees.
	start := time.Now()
	if s.TryAcquire(30 * time.Millisecond) {
		t.Fatal("acquisition succeeded with no free slot")
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("TryAcquire returned before its wait elapsed")
	}
}

func TestGateNilAndDisabled(t *testing.T) {
	var g *Gate
	if !g.Admit() || !g.AdmitConn() {
		t.Fatal("nil gate must admit")
	}
	g.Release()
	g.ReleaseConn()
	if NewGate(Limits{}) != nil {
		t.Fatal("zero Limits must build a nil gate")
	}
	if (Limits{}).Enabled() {
		t.Fatal("zero Limits reports Enabled")
	}
	if !(Limits{MaxInflight: 1}).Enabled() {
		t.Fatal("MaxInflight alone must enable the gate")
	}
}

func TestGateMaxConns(t *testing.T) {
	g := NewGate(Limits{MaxConns: 2})
	if !g.AdmitConn() || !g.AdmitConn() {
		t.Fatal("conn slots under the cap must admit")
	}
	if g.AdmitConn() {
		t.Fatal("conn over the cap admitted")
	}
	g.ReleaseConn()
	if !g.AdmitConn() {
		t.Fatal("freed conn slot not reusable")
	}
}

func TestGateInflightShedsConcurrently(t *testing.T) {
	g := NewGate(Limits{MaxInflight: 4, AdmissionWait: -1})
	var mu sync.Mutex
	admitted, shed := 0, 0
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if g.Admit() {
				mu.Lock()
				admitted++
				mu.Unlock()
				<-release
				g.Release()
			} else {
				mu.Lock()
				shed++
				mu.Unlock()
			}
		}()
	}
	// Wait until the gate saturates, then let the holders go.
	deadline := time.Now().Add(2 * time.Second)
	for g.Inflight() < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if admitted < 4 || admitted+shed != 32 {
		t.Fatalf("admitted %d, shed %d", admitted, shed)
	}
	if shed == 0 {
		t.Fatal("no request was shed past MaxInflight")
	}
	if g.Inflight() != 0 {
		t.Fatalf("Inflight after release = %d", g.Inflight())
	}
}

func TestGateRateLimitSheds(t *testing.T) {
	g := NewGate(Limits{RateLimit: 5, RateBurst: 2})
	admitted := 0
	for i := 0; i < 50; i++ {
		if g.Admit() {
			g.Release()
			admitted++
		}
	}
	// Burst 2 plus whatever trickled in during the loop; far below 50.
	if admitted < 2 || admitted > 10 {
		t.Fatalf("rate-limited gate admitted %d of 50", admitted)
	}
}

func TestRetryBudgetDrainsAndRefills(t *testing.T) {
	b := NewRetryBudget(3, 0.5)
	for i := 0; i < 3; i++ {
		if !b.Spend() {
			t.Fatalf("spend %d refused with a full budget", i)
		}
	}
	if b.Spend() {
		t.Fatal("spend succeeded on an empty budget")
	}
	if got := b.Exhausted(); got != 1 {
		t.Fatalf("Exhausted = %d, want 1", got)
	}
	// Two successes refill one whole token.
	b.OnSuccess()
	b.OnSuccess()
	if !b.Spend() {
		t.Fatal("refilled budget refused a retry")
	}
	// Refill is capped at max.
	for i := 0; i < 100; i++ {
		b.OnSuccess()
	}
	if got := b.Tokens(); got != 3 {
		t.Fatalf("Tokens after saturation = %v, want 3", got)
	}
}

func TestRetryBudgetNilAndDefaults(t *testing.T) {
	var b *RetryBudget
	if !b.Spend() {
		t.Fatal("nil budget must allow retries")
	}
	b.OnSuccess()
	if b.Exhausted() != 0 {
		t.Fatal("nil budget counted an exhaustion")
	}
	if NewRetryBudget(-1, 0) != nil {
		t.Fatal("max < 0 must build a nil (unlimited) budget")
	}
	d := NewRetryBudget(0, 0)
	if d.max != DefaultRetryBudgetMax || d.ratio != DefaultRetryBudgetRatio {
		t.Fatalf("defaults = max %v ratio %v", d.max, d.ratio)
	}
}

func TestLimitsWithDefaults(t *testing.T) {
	l := Limits{RateLimit: 0.5, MaxInflight: 1}.withDefaults()
	if l.RateBurst != 1 {
		t.Fatalf("sub-1 rate burst = %v, want 1", l.RateBurst)
	}
	if l.AdmissionWait != DefaultAdmissionWait {
		t.Fatalf("AdmissionWait = %v, want default", l.AdmissionWait)
	}
	if w := (Limits{MaxInflight: 1, AdmissionWait: -1}).withDefaults().AdmissionWait; w != 0 {
		t.Fatalf("negative AdmissionWait resolved to %v, want 0", w)
	}
}

// TestGateInflightPerFrame: the in-flight count is per admitted frame,
// and is tracked even when no MaxInflight semaphore is configured —
// pipelined connections report occupancy through exactly this.
func TestGateInflightPerFrame(t *testing.T) {
	g := NewGate(Limits{RateLimit: 1e9, RateBurst: 1e9})
	if g == nil {
		t.Fatal("rate-limited gate should be non-nil")
	}
	for i := 0; i < 5; i++ {
		if !g.Admit() {
			t.Fatalf("admit %d refused", i)
		}
	}
	if got := g.Inflight(); got != 5 {
		t.Fatalf("Inflight = %d, want 5 (per-frame accounting without MaxInflight)", got)
	}
	for i := 0; i < 5; i++ {
		g.Release()
	}
	if got := g.Inflight(); got != 0 {
		t.Fatalf("Inflight after release = %d", got)
	}
}
