package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the canonical C implementation.
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64MatchesSplitMixStep(t *testing.T) {
	// Mix64(x) must equal the first output of a SplitMix64 seeded with x.
	for _, seed := range []uint64{0, 1, 42, math.MaxUint64, 0xdeadbeef} {
		s := NewSplitMix64(seed)
		if got, want := s.Uint64(), Mix64(seed); got != want {
			t.Errorf("Mix64(%#x) = %#x, want %#x", seed, want, got)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestXoshiroDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("generators with different seeds agreed on %d/1000 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(7)
	for i := 0; i < 100000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v, want in [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := New(99)
	const trials = 200000
	var sum float64
	for i := 0; i < trials; i++ {
		sum += x.Float64()
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	x := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 1000; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d, out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared style check: each of 10 buckets should get ~10% of draws.
	x := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[x.Intn(n)]++
	}
	want := float64(trials) / n
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates too far from %v", b, c, want)
		}
	}
}

func TestUint64nSmallBiasCheck(t *testing.T) {
	// n = 3 exercises the rejection path of Lemire's algorithm.
	x := New(5)
	counts := make([]int, 3)
	const trials = 300000
	for i := 0; i < trials; i++ {
		counts[x.Uint64n(3)]++
	}
	for v, c := range counts {
		frac := float64(c) / trials
		if math.Abs(frac-1.0/3) > 0.01 {
			t.Errorf("Uint64n(3): value %d frequency %v, want ~1/3", v, frac)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := New(17)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	x := New(23)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	x.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Errorf("Shuffle changed element multiset: sum %d -> %d", sum, got)
	}
}

func TestDeriveProperties(t *testing.T) {
	// Distinct paths must (essentially always) give distinct seeds.
	seen := make(map[uint64][2]uint64)
	for e := uint64(0); e < 50; e++ {
		for r := uint64(0); r < 50; r++ {
			s := Derive(42, e, r)
			if prev, dup := seen[s]; dup {
				t.Fatalf("Derive collision: (%d,%d) and (%d,%d) -> %#x", e, r, prev[0], prev[1], s)
			}
			seen[s] = [2]uint64{e, r}
		}
	}
}

func TestDeriveOrderSensitive(t *testing.T) {
	if Derive(1, 2, 3) == Derive(1, 3, 2) {
		t.Error("Derive is not order-sensitive")
	}
	if Derive(1, 2) == Derive(1, 2, 0) {
		t.Error("Derive is not length-sensitive")
	}
}

func TestDeriveDeterministic(t *testing.T) {
	f := func(root, a, b uint64) bool {
		return Derive(root, a, b) == Derive(root, a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMul64AgainstBigComputation(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x, %#x) = (%#x, %#x), want (%#x, %#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestRandAdapter(t *testing.T) {
	r := New(31).Rand()
	v := r.Intn(10)
	if v < 0 || v >= 10 {
		t.Errorf("adapter Intn out of range: %d", v)
	}
	z := r.NormFloat64()
	if math.IsNaN(z) {
		t.Error("NormFloat64 returned NaN")
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	x := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.Intn(1000)
	}
	_ = sink
}

func TestSeedResetsStream(t *testing.T) {
	a := New(5)
	a.Uint64()
	a.Uint64()
	a.Seed(9)
	b := New(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Seed did not reset the stream to match a fresh generator")
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	x := New(2)
	for i := 0; i < 10000; i++ {
		if v := x.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestUint64nPowerOfTwoAndLargeBounds(t *testing.T) {
	x := New(3)
	// Power-of-two bound: thresh == 0, no rejection loop entered.
	for i := 0; i < 1000; i++ {
		if v := x.Uint64n(1 << 32); v >= 1<<32 {
			t.Fatalf("out of range: %d", v)
		}
	}
	// Near-max bound exercises the rejection path heavily.
	const bound = math.MaxUint64 - 3
	for i := 0; i < 1000; i++ {
		if v := x.Uint64n(bound); v >= bound {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}
