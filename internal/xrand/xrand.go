// Package xrand provides deterministic, high-quality pseudo-random number
// generation for simulations.
//
// The package exists because reproducibility is a hard requirement of the
// experiment harness: every simulation run must be replayable from a single
// 64-bit seed, including runs executed in parallel. math/rand's global
// source cannot provide that, and seeding many math/rand.Rand instances
// with correlated seeds (seed, seed+1, ...) produces correlated streams.
//
// xrand offers:
//
//   - SplitMix64: a tiny, statistically strong generator used both directly
//     and as a seed expander (its output is equidistributed over 2^64).
//   - Xoshiro256: xoshiro256** 1.0, the main workhorse generator.
//   - Derive: hierarchical seed derivation, so that run i of experiment e
//     gets an independent stream from a single root seed.
//
// All generators in this package are NOT safe for concurrent use; create
// one per goroutine via Derive.
package xrand

import "math/rand"

// golden is the 64-bit golden-ratio constant used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// SplitMix64 is the splitmix64 generator by Sebastiano Vigna. It passes
// BigCrush, has a full 2^64 period, and — uniquely among small generators —
// every seed produces a distinct, well-mixed stream, which makes it the
// right tool for expanding one seed into many.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the splitmix64 finalizer to x. It is a strong 64-bit
// avalanche function: flipping any input bit flips each output bit with
// probability ~1/2. Used for stateless hashing of small integers.
func Mix64(x uint64) uint64 {
	x += golden
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements xoshiro256** 1.0 (Blackman & Vigna). It is the
// package's general-purpose generator: 2^256−1 period, excellent
// statistical quality, and about 1 ns per call.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 whose state is expanded from seed via
// SplitMix64, as recommended by the xoshiro authors.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// An all-zero state would be absorbing; splitmix cannot emit four
	// consecutive zeros, but guard anyway for defence in depth.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = golden
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Int63 returns a non-negative 63-bit value, satisfying rand.Source.
func (x *Xoshiro256) Int63() int64 { return int64(x.Uint64() >> 1) }

// Seed re-seeds the generator, satisfying rand.Source.
func (x *Xoshiro256) Seed(seed int64) { *x = *New(uint64(seed)) }

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded algorithm, which is unbiased.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(x.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Lemire (2019): multiply-shift with rejection of the biased region.
	v := x.Uint64()
	hi, lo := mul64(v, n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			v = x.Uint64()
			hi, lo = mul64(v, n)
		}
	}
	_ = lo
	return hi
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Perm returns a random permutation of [0, n), like rand.Perm but on the
// package's deterministic source.
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := x.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, as
// rand.Shuffle does.
func (x *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		swap(i, j)
	}
}

// Rand wraps the generator in a *rand.Rand for callers that need the full
// math/rand API (NormFloat64, Zipf, ...). The returned Rand shares state
// with x and inherits its non-concurrency.
func (x *Xoshiro256) Rand() *rand.Rand { return rand.New(x) }

// Derive deterministically derives an independent child seed from a root
// seed and a path of indices. Derive(s) != s in general, and any two
// distinct paths yield (with overwhelming probability) unrelated streams:
//
//	runSeed := xrand.Derive(rootSeed, uint64(experimentID), uint64(runIdx))
//
// The derivation hashes each path element into the accumulated state with
// the splitmix finalizer, so it is order- and position-sensitive.
func Derive(root uint64, path ...uint64) uint64 {
	s := Mix64(root ^ 0x5ecc5ecc5ecc5ecc)
	for i, p := range path {
		s = Mix64(s ^ Mix64(p+uint64(i)*golden))
	}
	return s
}
