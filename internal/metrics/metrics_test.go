package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 80000 {
		t.Errorf("Value = %d, want 80000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	bounds, cum := h.Snapshot()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("snapshot lengths %d/%d", len(bounds), len(cum))
	}
	// <=1: 0.5 and 1; <=10: +5; <=100: +50; total: +500.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if math.Abs(h.Sum()-556.5) > 1e-9 {
		t.Errorf("Sum = %v, want 556.5", h.Sum())
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := NewHistogram(1000)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Total() != 20000 || math.Abs(h.Sum()-20000) > 1e-6 {
		t.Errorf("Total/Sum = %d/%v, want 20000/20000", h.Total(), h.Sum())
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no bounds":    func() { NewHistogram() },
		"unsorted":     func() { NewHistogram(2, 1) },
		"equal bounds": func() { NewHistogram(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs")
	b := r.Counter("reqs")
	if a != b {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("depth") != r.Gauge("depth") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("lat", 1, 2) != r.Histogram("lat") {
		t.Error("Histogram not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	r.Gauge("reqs")
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Gauge("conns").Set(2)
	r.Histogram("lat_us", 100, 1000).Observe(250)
	blob, err := r.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if m["hits"].(float64) != 3 {
		t.Errorf("hits = %v", m["hits"])
	}
	if m["conns"].(float64) != 2 {
		t.Errorf("conns = %v", m["conns"])
	}
	lat, ok := m["lat_us"].(map[string]interface{})
	if !ok || lat["total"].(float64) != 1 {
		t.Errorf("lat_us = %v", m["lat_us"])
	}
}
