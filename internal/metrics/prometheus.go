package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// WritePrometheus renders every instrument in the Prometheus text
// exposition format (version 0.0.4), so a standard Prometheus scraper
// can consume the same registry the JSON snapshot serves:
//
//	# TYPE requests_total counter
//	requests_total 1027
//	# TYPE rtt_seconds histogram
//	rtt_seconds_bucket{le="0.001"} 95
//	rtt_seconds_bucket{le="+Inf"} 100
//	rtt_seconds_sum 0.0123
//	rtt_seconds_count 100
//
// Counters map to counter, gauges to gauge, histograms to histogram with
// cumulative buckets (the internal representation is already cumulative).
// Names are sanitized to the Prometheus grammar; output is sorted by name
// so scrapes are diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.items))
	for name := range r.items {
		names = append(names, name)
	}
	sort.Strings(names)
	items := make(map[string]interface{}, len(names))
	for _, name := range names {
		items[name] = r.items[name]
	}
	r.mu.Unlock()

	for _, name := range names {
		pn := sanitizeMetricName(name)
		var err error
		switch v := items[name].(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, v.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, v.Value())
		case *Histogram:
			bounds, cum := v.Snapshot()
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			for i, b := range bounds {
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatBound(b), cum[i]); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				pn, cum[len(cum)-1], pn, formatFloat(v.Sum()), pn, v.Total())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a histogram upper bound the way Prometheus does
// (shortest round-trippable representation; +Inf never appears here —
// the implicit bucket is emitted separately).
func formatBound(b float64) string { return formatFloat(b) }

func formatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// sanitizeMetricName maps a registry name onto the Prometheus metric
// name grammar [a-zA-Z_:][a-zA-Z0-9_:]*, replacing anything else with
// '_'. Registry names in this repo already conform; this is a guard, not
// a feature.
func sanitizeMetricName(name string) string {
	if name == "" {
		return "_"
	}
	out := []byte(name)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				out[i] = '_'
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
