// Package metrics is a small, dependency-free metrics library for the
// kvstore servers: atomic counters and gauges, bucketed histograms, and a
// registry that renders a JSON snapshot for the STATS protocol verb and
// for operators.
//
// All instruments are safe for concurrent use; the hot-path cost of a
// counter increment is one atomic add.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into caller-defined buckets (upper bounds,
// ascending, with an implicit +Inf bucket). It is safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1
	sum    atomic.Uint64   // float64 bits accumulated via CAS
	total  atomic.Uint64
}

// NewHistogram returns a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: NewHistogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending at %d", i))
		}
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Total returns the observation count.
func (h *Histogram) Total() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot returns bucket upper bounds and cumulative counts (Prometheus
// style: counts[i] = observations <= bounds[i]; the final entry is the
// total).
func (h *Histogram) Snapshot() (bounds []float64, cumulative []uint64) {
	bounds = make([]float64, len(h.bounds))
	copy(bounds, h.bounds)
	cumulative = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return bounds, cumulative
}

// Registry is a named collection of instruments. The zero value is not
// usable; create with NewRegistry. All methods are safe for concurrent
// use; Counter/Gauge/Histogram return an existing instrument when the
// name is already registered (and panic if it is of a different kind).
type Registry struct {
	mu    sync.Mutex
	items map[string]interface{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]interface{})}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.items[name]; ok {
		c, ok := existing.(*Counter)
		if !ok {
			panic(fmt.Sprintf("metrics: %q already registered as %T", name, existing))
		}
		return c
	}
	c := &Counter{}
	r.items[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.items[name]; ok {
		g, ok := existing.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("metrics: %q already registered as %T", name, existing))
		}
		return g
	}
	g := &Gauge{}
	r.items[name] = g
	return g
}

// Histogram returns the named histogram, creating it with bounds if
// needed. Bounds are ignored when the histogram already exists.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.items[name]; ok {
		h, ok := existing.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("metrics: %q already registered as %T", name, existing))
		}
		return h
	}
	h := NewHistogram(bounds...)
	r.items[name] = h
	return h
}

// Snapshot renders all instruments as a JSON object: counters and gauges
// as numbers, histograms as {sum, total, buckets}.
func (r *Registry) Snapshot() ([]byte, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.items))
	for name := range r.items {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]interface{}, len(names))
	for _, name := range names {
		switch v := r.items[name].(type) {
		case *Counter:
			out[name] = v.Value()
		case *Gauge:
			out[name] = v.Value()
		case *Histogram:
			bounds, cum := v.Snapshot()
			out[name] = map[string]interface{}{
				"sum":        v.Sum(),
				"total":      v.Total(),
				"bounds":     bounds,
				"cumulative": cum,
			}
		}
	}
	r.mu.Unlock()
	return json.Marshal(out)
}
