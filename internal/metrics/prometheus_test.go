package metrics

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// parseProm parses the text exposition back into a flat map of
// "name" / "name_bucket{le=...}" / "name_sum" / "name_count" -> value,
// plus a map of declared types. A minimal scrape-side parser: enough to
// prove the round trip, not a full OpenMetrics implementation.
func parseProm(t *testing.T, blob []byte) (values map[string]float64, types map[string]string) {
	t.Helper()
	values = make(map[string]float64)
	types = make(map[string]string)
	sc := bufio.NewScanner(bytes.NewReader(blob))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndex(line, " ")
		if idx < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		values[line[:idx]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return values, types
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Add(1027)
	g := r.Gauge("partition_epoch")
	g.Set(2)
	neg := r.Gauge("drift")
	neg.Set(-5)
	h := r.Histogram("latency_seconds", 0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.0007, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	values, types := parseProm(t, buf.Bytes())

	if types["requests_total"] != "counter" || values["requests_total"] != 1027 {
		t.Errorf("counter: type %q value %v", types["requests_total"], values["requests_total"])
	}
	if types["partition_epoch"] != "gauge" || values["partition_epoch"] != 2 {
		t.Errorf("gauge: type %q value %v", types["partition_epoch"], values["partition_epoch"])
	}
	if values["drift"] != -5 {
		t.Errorf("negative gauge: %v", values["drift"])
	}
	if types["latency_seconds"] != "histogram" {
		t.Errorf("histogram type %q", types["latency_seconds"])
	}
	wantBuckets := map[string]float64{
		`latency_seconds_bucket{le="0.001"}`: 2,
		`latency_seconds_bucket{le="0.01"}`:  3,
		`latency_seconds_bucket{le="0.1"}`:   4,
		`latency_seconds_bucket{le="+Inf"}`:  5,
	}
	for k, want := range wantBuckets {
		if values[k] != want {
			t.Errorf("%s = %v, want %v", k, values[k], want)
		}
	}
	if values["latency_seconds_count"] != 5 {
		t.Errorf("count %v", values["latency_seconds_count"])
	}
	wantSum := 0.0005 + 0.0007 + 0.005 + 0.05 + 0.5
	if got := values["latency_seconds_sum"]; got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("sum %v, want ~%v", got, wantSum)
	}
}

func TestWritePrometheusSortedAndStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Inc()
	r.Counter("alpha").Inc()
	r.Gauge("mid").Set(1)
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of an unchanged registry differ")
	}
	za, zm := strings.Index(a.String(), "zeta"), strings.Index(a.String(), "alpha")
	if za < zm {
		t.Error("output not sorted by name")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"requests_total": "requests_total",
		"weird-name.9":   "weird_name_9",
		"9starts_digit":  "_starts_digit",
		"":               "_",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
