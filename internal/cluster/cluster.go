// Package cluster models the back-end of the paper's architecture: n
// nodes behind a front-end cache, serving a randomly partitioned key
// space with replication factor d.
//
// The model is rate-based: a workload distribution plus a total client
// rate R induces a per-key query rate, the front-end cache absorbs the
// rates of cached keys, and every uncached key's rate lands on back-end
// nodes according to the replica-selection policy. The resulting per-node
// loads are what the paper's Figures 3-5 plot (normalized by the ideal
// even share R/n).
package cluster

import (
	"fmt"
	"math"

	"securecache/internal/partition"
	"securecache/internal/workload"
	"securecache/internal/xrand"
)

// Policy selects how a key's query rate is spread over its replica group.
type Policy string

// Replica-selection policies.
const (
	// PolicyLeastLoaded assigns each key wholly to the least loaded node
	// of its replica group at assignment time — the greedy d-choice
	// balls-into-bins process the paper's analysis assumes.
	PolicyLeastLoaded Policy = "least-loaded"
	// PolicyRandomReplica assigns each key wholly to one uniformly random
	// node of its group (what a client that picks a random replica per
	// session does).
	PolicyRandomReplica Policy = "random"
	// PolicySplit divides each key's rate evenly across its d replicas —
	// the steady-state of per-query round-robin or per-query random
	// selection.
	PolicySplit Policy = "split"
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is n, the number of back-end nodes. Required.
	Nodes int
	// Replication is d, the replica-group size. Required.
	Replication int
	// Partitioner maps keys to replica groups. If nil, a hash partitioner
	// keyed by Seed is used.
	Partitioner partition.Partitioner
	// Policy selects replica usage. Empty selects PolicyLeastLoaded.
	Policy Policy
	// Seed keys the default partitioner and the random-replica policy.
	Seed uint64
	// NodeCapacity is the max sustainable query rate r_i per node;
	// 0 means unlimited. Load beyond capacity is reported as dropped.
	NodeCapacity float64
	// Cost optionally weights each key's queries (Assumption 4 relaxes
	// to non-uniform per-operation costs the way Fan et al. §4 does: a
	// key of cost w contributes w load units per query). Nil means
	// uniform cost 1. Must return positive, finite values.
	Cost func(key int) float64
}

// Cluster is a simulated back-end cluster. Construct with New; a Cluster
// is immutable and safe for concurrent use (each ApplyLoad works on its
// own state).
type Cluster struct {
	cfg  Config
	part partition.Partitioner
}

// New validates cfg and returns a Cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: Nodes = %d, must be positive", cfg.Nodes)
	}
	if cfg.Replication <= 0 || cfg.Replication > cfg.Nodes {
		return nil, fmt.Errorf("cluster: Replication = %d, must be in [1, Nodes=%d]",
			cfg.Replication, cfg.Nodes)
	}
	switch cfg.Policy {
	case "", PolicyLeastLoaded, PolicyRandomReplica, PolicySplit:
	default:
		return nil, fmt.Errorf("cluster: unknown policy %q", cfg.Policy)
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyLeastLoaded
	}
	if cfg.NodeCapacity < 0 {
		return nil, fmt.Errorf("cluster: NodeCapacity = %v, must be >= 0", cfg.NodeCapacity)
	}
	part := cfg.Partitioner
	if part == nil {
		part = partition.NewHash(cfg.Nodes, cfg.Replication, cfg.Seed)
	} else {
		if part.Nodes() != cfg.Nodes || part.Replicas() != cfg.Replication {
			return nil, fmt.Errorf("cluster: partitioner is %d nodes x%d replicas, config wants %dx%d",
				part.Nodes(), part.Replicas(), cfg.Nodes, cfg.Replication)
		}
	}
	return &Cluster{cfg: cfg, part: part}, nil
}

// Nodes returns n.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Replication returns d.
func (c *Cluster) Replication() int { return c.cfg.Replication }

// Partitioner exposes the key -> replica-group mapping (for the kvstore
// front end and for tests).
func (c *Cluster) Partitioner() partition.Partitioner { return c.part }

// LoadReport summarizes the outcome of applying a workload.
type LoadReport struct {
	// Loads[i] is the query rate landing on node i.
	Loads []float64
	// OfferedRate is the total client rate R.
	OfferedRate float64
	// CachedRate is the rate absorbed by the front-end cache.
	CachedRate float64
	// BackendRate is the rate reaching back-end nodes (before drops).
	BackendRate float64
	// DroppedRate is the rate beyond node capacities (0 when unlimited).
	DroppedRate float64
	// SaturatedNodes counts nodes pushed beyond capacity.
	SaturatedNodes int
	// KeysAssigned counts distinct uncached keys placed on nodes.
	KeysAssigned int
}

// MaxLoad returns the load of the most loaded node.
func (r *LoadReport) MaxLoad() float64 {
	m := 0.0
	for _, l := range r.Loads {
		if l > m {
			m = l
		}
	}
	return m
}

// NormalizedMaxLoad returns MaxLoad / (R/n): the paper's "normalized max
// workload", whose expectation is the Attack Gain. Values above 1.0 mean
// the most loaded node carries more than the ideal even share of the
// offered rate.
func (r *LoadReport) NormalizedMaxLoad() float64 {
	if r.OfferedRate == 0 {
		return 0
	}
	return r.MaxLoad() / (r.OfferedRate / float64(len(r.Loads)))
}

// ApplyLoad runs the rate-based model: every key of dist with non-zero
// probability contributes p*totalRate; keys for which cached returns true
// are absorbed by the front end; the rest are placed on back-end nodes per
// the cluster's policy. rng drives the random-replica policy and is
// ignored by the others (it may be nil for them); pass a derived
// per-run rng for reproducibility.
//
// cached may be nil, meaning no front-end cache.
func (c *Cluster) ApplyLoad(dist workload.Distribution, totalRate float64,
	cached func(key int) bool, rng *xrand.Xoshiro256) *LoadReport {
	if totalRate < 0 {
		panic(fmt.Sprintf("cluster: ApplyLoad with negative rate %v", totalRate))
	}
	if c.cfg.Policy == PolicyRandomReplica && rng == nil {
		panic("cluster: random-replica policy requires an rng")
	}
	report := &LoadReport{
		Loads:       make([]float64, c.cfg.Nodes),
		OfferedRate: totalRate,
	}
	group := make([]int, 0, c.cfg.Replication)
	dist.EachNonzero(func(key int, p float64) bool {
		rate := p * totalRate
		if cached != nil && cached(key) {
			report.CachedRate += rate
			return true
		}
		if c.cfg.Cost != nil {
			w := c.cfg.Cost(key)
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				panic(fmt.Sprintf("cluster: Cost(%d) = %v, must be positive and finite", key, w))
			}
			rate *= w
		}
		report.BackendRate += rate
		report.KeysAssigned++
		group = c.part.GroupAppend(group[:0], uint64(key))
		switch c.cfg.Policy {
		case PolicySplit:
			share := rate / float64(len(group))
			for _, node := range group {
				report.Loads[node] += share
			}
		case PolicyRandomReplica:
			report.Loads[group[rng.Intn(len(group))]] += rate
		default: // PolicyLeastLoaded
			best := group[0]
			for _, node := range group[1:] {
				if report.Loads[node] < report.Loads[best] {
					best = node
				}
			}
			report.Loads[best] += rate
		}
		return true
	})
	if capacity := c.cfg.NodeCapacity; capacity > 0 {
		for _, l := range report.Loads {
			if l > capacity {
				report.DroppedRate += l - capacity
				report.SaturatedNodes++
			}
		}
	}
	return report
}

// CachedSet adapts a workload.TopC result (or any key set) to the cached
// callback ApplyLoad expects.
func CachedSet(set map[int]bool) func(key int) bool {
	if set == nil {
		return nil
	}
	return func(key int) bool { return set[key] }
}
