package cluster

import (
	"math"
	"testing"

	"securecache/internal/partition"
	"securecache/internal/workload"
	"securecache/internal/xrand"
)

func mustNew(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Nodes: 0, Replication: 1},
		{Nodes: 10, Replication: 0},
		{Nodes: 10, Replication: 11},
		{Nodes: 10, Replication: 3, Policy: "bogus"},
		{Nodes: 10, Replication: 3, NodeCapacity: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Mismatched explicit partitioner.
	p := partition.NewHash(5, 2, 1)
	if _, err := New(Config{Nodes: 10, Replication: 3, Partitioner: p}); err == nil {
		t.Error("mismatched partitioner accepted")
	}
}

func TestApplyLoadConservation(t *testing.T) {
	c := mustNew(t, Config{Nodes: 50, Replication: 3, Seed: 1})
	dist := workload.NewUniform(1000, 1000)
	const rate = 5000.0
	rep := c.ApplyLoad(dist, rate, nil, nil)
	var sum float64
	for _, l := range rep.Loads {
		sum += l
	}
	if math.Abs(sum-rate) > 1e-6 {
		t.Errorf("backend loads sum to %v, want %v", sum, rate)
	}
	if math.Abs(rep.BackendRate-rate) > 1e-6 || rep.CachedRate != 0 {
		t.Errorf("rates: backend %v cached %v, want %v / 0", rep.BackendRate, rep.CachedRate, rate)
	}
	if rep.KeysAssigned != 1000 {
		t.Errorf("KeysAssigned = %d, want 1000", rep.KeysAssigned)
	}
}

func TestApplyLoadWithCache(t *testing.T) {
	c := mustNew(t, Config{Nodes: 10, Replication: 2, Seed: 2})
	dist := workload.NewUniform(100, 100)
	cached := CachedSet(workload.TopC(dist, 40))
	rep := c.ApplyLoad(dist, 1000, cached, nil)
	if math.Abs(rep.CachedRate-400) > 1e-6 {
		t.Errorf("CachedRate = %v, want 400", rep.CachedRate)
	}
	if math.Abs(rep.BackendRate-600) > 1e-6 {
		t.Errorf("BackendRate = %v, want 600", rep.BackendRate)
	}
	if rep.KeysAssigned != 60 {
		t.Errorf("KeysAssigned = %d, want 60", rep.KeysAssigned)
	}
}

func TestCachedSetNil(t *testing.T) {
	if CachedSet(nil) != nil {
		t.Error("CachedSet(nil) should be nil (no cache)")
	}
}

func TestPolicySplitSpreadsEvenly(t *testing.T) {
	// One key, split policy: each of its d replicas gets rate/d.
	c := mustNew(t, Config{Nodes: 10, Replication: 5, Policy: PolicySplit, Seed: 3})
	dist := workload.NewUniform(1, 1)
	rep := c.ApplyLoad(dist, 100, nil, nil)
	nonzero := 0
	for _, l := range rep.Loads {
		if l == 0 {
			continue
		}
		nonzero++
		if math.Abs(l-20) > 1e-9 {
			t.Errorf("replica load %v, want 20", l)
		}
	}
	if nonzero != 5 {
		t.Errorf("%d nodes loaded, want 5", nonzero)
	}
}

func TestPolicyLeastLoadedSingleKeyConcentrates(t *testing.T) {
	// One key under least-loaded: the whole rate lands on one node. This
	// is the adversary's x = c+1 situation.
	c := mustNew(t, Config{Nodes: 10, Replication: 3, Seed: 4})
	dist := workload.NewUniform(1, 1)
	rep := c.ApplyLoad(dist, 100, nil, nil)
	if rep.MaxLoad() != 100 {
		t.Errorf("MaxLoad = %v, want 100", rep.MaxLoad())
	}
	if got := rep.NormalizedMaxLoad(); math.Abs(got-10) > 1e-9 {
		t.Errorf("NormalizedMaxLoad = %v, want 10 (= n * 1/1)", got)
	}
}

func TestPolicyRandomReplicaRequiresRNG(t *testing.T) {
	c := mustNew(t, Config{Nodes: 10, Replication: 3, Policy: PolicyRandomReplica})
	defer func() {
		if recover() == nil {
			t.Error("random policy without rng did not panic")
		}
	}()
	c.ApplyLoad(workload.NewUniform(10, 10), 1, nil, nil)
}

func TestPolicyRandomReplicaStaysInGroup(t *testing.T) {
	c := mustNew(t, Config{Nodes: 20, Replication: 3, Policy: PolicyRandomReplica, Seed: 5})
	dist := workload.NewUniform(200, 200)
	rng := xrand.New(6)
	rep := c.ApplyLoad(dist, 200, nil, rng)
	var sum float64
	for _, l := range rep.Loads {
		sum += l
	}
	if math.Abs(sum-200) > 1e-6 {
		t.Errorf("loads sum %v, want 200", sum)
	}
}

func TestPolicyOrderingLeastLoadedWins(t *testing.T) {
	// With many equal-rate keys the max load orders
	// least-loaded <= split <= random: the d-choice gap (ln ln n / ln d)
	// beats even splitting (a 1-choice process with d× lighter balls,
	// gap ~ sqrt(M d ln n / n)/d), which beats plain 1-choice.
	const n, d, keys, runs = 100, 3, 5000, 5
	dist := workload.NewUniform(keys, keys)
	avg := func(policy Policy) float64 {
		var total float64
		for r := 0; r < runs; r++ {
			c := mustNew(t, Config{Nodes: n, Replication: d, Policy: policy, Seed: uint64(10 + r)})
			rng := xrand.New(uint64(100 + r))
			total += c.ApplyLoad(dist, float64(keys), nil, rng).MaxLoad()
		}
		return total / runs
	}
	ll, rr, sp := avg(PolicyLeastLoaded), avg(PolicyRandomReplica), avg(PolicySplit)
	if ll >= sp {
		t.Errorf("least-loaded max %v not below split %v", ll, sp)
	}
	if sp >= rr {
		t.Errorf("split max %v not below random %v", sp, rr)
	}
}

func TestNodeCapacityDrops(t *testing.T) {
	// One key, whole rate 100 on one node, capacity 30: 70 dropped.
	c := mustNew(t, Config{Nodes: 5, Replication: 2, Seed: 7, NodeCapacity: 30})
	rep := c.ApplyLoad(workload.NewUniform(1, 1), 100, nil, nil)
	if math.Abs(rep.DroppedRate-70) > 1e-9 {
		t.Errorf("DroppedRate = %v, want 70", rep.DroppedRate)
	}
	if rep.SaturatedNodes != 1 {
		t.Errorf("SaturatedNodes = %d, want 1", rep.SaturatedNodes)
	}
}

func TestNormalizedMaxLoadZeroRate(t *testing.T) {
	c := mustNew(t, Config{Nodes: 5, Replication: 2, Seed: 8})
	rep := c.ApplyLoad(workload.NewUniform(10, 10), 0, nil, nil)
	if rep.NormalizedMaxLoad() != 0 {
		t.Error("zero offered rate should normalize to 0")
	}
}

func TestApplyLoadNegativeRatePanics(t *testing.T) {
	c := mustNew(t, Config{Nodes: 5, Replication: 2})
	defer func() {
		if recover() == nil {
			t.Error("negative rate did not panic")
		}
	}()
	c.ApplyLoad(workload.NewUniform(10, 10), -1, nil, nil)
}

func TestDeterministicAcrossCalls(t *testing.T) {
	// Same config and distribution -> identical loads (least-loaded policy
	// uses no rng).
	cfg := Config{Nodes: 30, Replication: 3, Seed: 42}
	dist := workload.NewZipf(500, 1.01)
	a := mustNew(t, cfg).ApplyLoad(dist, 1000, nil, nil)
	b := mustNew(t, cfg).ApplyLoad(dist, 1000, nil, nil)
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			t.Fatalf("node %d load differs: %v vs %v", i, a.Loads[i], b.Loads[i])
		}
	}
}

func TestAccessors(t *testing.T) {
	c := mustNew(t, Config{Nodes: 7, Replication: 2, Seed: 1})
	if c.Nodes() != 7 || c.Replication() != 2 {
		t.Error("accessors wrong")
	}
	if c.Partitioner() == nil {
		t.Error("partitioner not exposed")
	}
}

func TestDefaultPolicyIsLeastLoaded(t *testing.T) {
	// An empty policy must behave identically to PolicyLeastLoaded.
	dist := workload.NewUniform(100, 100)
	a := mustNew(t, Config{Nodes: 10, Replication: 3, Seed: 9}).ApplyLoad(dist, 100, nil, nil)
	b := mustNew(t, Config{Nodes: 10, Replication: 3, Seed: 9, Policy: PolicyLeastLoaded}).ApplyLoad(dist, 100, nil, nil)
	for i := range a.Loads {
		if a.Loads[i] != b.Loads[i] {
			t.Fatal("default policy differs from least-loaded")
		}
	}
}

func BenchmarkApplyLoadLeastLoaded(b *testing.B) {
	c, err := New(Config{Nodes: 1000, Replication: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	dist := workload.NewUniform(100000, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ApplyLoad(dist, 1e5, nil, nil)
	}
}

func TestCostWeightedLoad(t *testing.T) {
	// Two keys, equal rates, but key 1 costs 5x: its node carries 5x the
	// load units of key 0's node.
	c := mustNew(t, Config{
		Nodes: 10, Replication: 2, Seed: 11,
		Cost: func(key int) float64 {
			if key == 1 {
				return 5
			}
			return 1
		},
	})
	rep := c.ApplyLoad(workload.NewUniform(2, 2), 100, nil, nil)
	if math.Abs(rep.BackendRate-(50+250)) > 1e-9 {
		t.Errorf("BackendRate = %v, want 300 (50 + 5*50)", rep.BackendRate)
	}
	if got := rep.MaxLoad(); math.Abs(got-250) > 1e-9 {
		t.Errorf("MaxLoad = %v, want 250", got)
	}
}

func TestCostValidation(t *testing.T) {
	c := mustNew(t, Config{
		Nodes: 5, Replication: 2, Seed: 1,
		Cost: func(int) float64 { return -1 },
	})
	defer func() {
		if recover() == nil {
			t.Error("negative cost did not panic")
		}
	}()
	c.ApplyLoad(workload.NewUniform(2, 2), 10, nil, nil)
}
