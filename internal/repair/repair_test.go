package repair

import (
	"errors"
	"os"
	"sort"
	"sync"
	"testing"

	"securecache/internal/hashing"
	"securecache/internal/proto"
)

func writeFile(path string, blob []byte) error { return os.WriteFile(path, blob, 0o644) }

func testKeyID(key string) uint64 { return hashing.Hash64(key, 0xfeed5eed) }

// fakeEntry mirrors a store entry for the fake cluster.
type fakeEntry struct {
	value []byte
	epoch uint32
	ver   uint64
	tomb  bool
}

// fakeCluster is an in-memory Transport: nodes hold maps, groups come
// from a fixed assignment.
type fakeCluster struct {
	mu     sync.Mutex
	nodes  []map[string]fakeEntry
	groups map[string][]int // default: all nodes
}

func newFakeCluster(n int) *fakeCluster {
	c := &fakeCluster{groups: map[string][]int{}}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, map[string]fakeEntry{})
	}
	return c
}

func (c *fakeCluster) set(node int, key string, e fakeEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[node][key] = e
}

func (c *fakeCluster) ScanDigest(node int, cursor uint64, limit int) ([]proto.ScanEntry, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	type pair struct {
		id  uint64
		key string
	}
	var ids []pair
	for k := range c.nodes[node] {
		if id := testKeyID(k); id > cursor {
			ids = append(ids, pair{id, k})
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].id < ids[j].id })
	var out []proto.ScanEntry
	lastID := cursor
	for _, p := range ids {
		if len(out) >= limit {
			return out, lastID, nil
		}
		e := c.nodes[node][p.key]
		se := proto.ScanEntry{Key: p.key, Epoch: e.epoch, Ver: e.ver}
		if e.tomb {
			se.Tomb = true
		} else {
			se.Digest = true
			se.Sum = hashing.Hash64(string(e.value), 0x5ca9)
		}
		out = append(out, se)
		lastID = p.id
	}
	return out, 0, nil
}

func (c *fakeCluster) Fetch(node int, key string) ([]byte, uint64, bool, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.nodes[node][key]
	if !ok {
		return nil, 0, false, false, nil
	}
	return append([]byte(nil), e.value...), e.ver, e.tomb, true, nil
}

func (c *fakeCluster) Apply(node int, e Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.nodes[node][e.Key]
	if e.Ver != 0 && ok && cur.ver >= e.Ver {
		return nil
	}
	c.nodes[node][e.Key] = fakeEntry{
		value: append([]byte(nil), e.Value...),
		epoch: e.Epoch,
		ver:   e.Ver,
		tomb:  e.Del,
	}
	return nil
}

func (c *fakeCluster) Group(key string) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.groups[key]; ok {
		return g
	}
	all := make([]int, len(c.nodes))
	for i := range all {
		all[i] = i
	}
	return all
}

func newTestRepairer(t *testing.T, c *fakeCluster, nodes int) *Repairer {
	t.Helper()
	r, err := NewRepairer(Config{Nodes: nodes, KeyID: testKeyID, Batch: 4}, c)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRepairerFillsMissingReplica(t *testing.T) {
	c := newFakeCluster(2)
	c.set(0, "k", fakeEntry{value: []byte("v"), ver: 5, epoch: 1})
	r := newTestRepairer(t, c, 2)
	n, err := r.Pass(nil)
	if err != nil || n != 1 {
		t.Fatalf("Pass = %d, %v", n, err)
	}
	e := c.nodes[1]["k"]
	if string(e.value) != "v" || e.ver != 5 || e.epoch != 1 || e.tomb {
		t.Fatalf("node 1 after repair: %+v", e)
	}
	// A second pass finds nothing to do.
	if n, _ := r.Pass(nil); n != 0 {
		t.Errorf("second pass repaired %d", n)
	}
}

func TestRepairerHigherVersionWins(t *testing.T) {
	c := newFakeCluster(2)
	c.set(0, "k", fakeEntry{value: []byte("old"), ver: 3})
	c.set(1, "k", fakeEntry{value: []byte("new"), ver: 7})
	r := newTestRepairer(t, c, 2)
	if _, err := r.Pass(nil); err != nil {
		t.Fatal(err)
	}
	for node := 0; node < 2; node++ {
		e := c.nodes[node]["k"]
		if string(e.value) != "new" || e.ver != 7 {
			t.Errorf("node %d: %+v", node, e)
		}
	}
}

func TestRepairerPropagatesTombstone(t *testing.T) {
	c := newFakeCluster(2)
	c.set(0, "k", fakeEntry{value: []byte("stale"), ver: 3})
	c.set(1, "k", fakeEntry{ver: 8, tomb: true})
	r := newTestRepairer(t, c, 2)
	if _, err := r.Pass(nil); err != nil {
		t.Fatal(err)
	}
	e := c.nodes[0]["k"]
	if !e.tomb || e.ver != 8 {
		t.Fatalf("tombstone did not propagate: %+v", e)
	}
}

func TestRepairerSettlesLegacySplit(t *testing.T) {
	// Version-0 divergence (pre-versioning data): deterministic winner,
	// and repeated passes converge.
	c := newFakeCluster(2)
	c.set(0, "k", fakeEntry{value: []byte("alpha")})
	c.set(1, "k", fakeEntry{value: []byte("beta")})
	r := newTestRepairer(t, c, 2)
	if _, err := r.Pass(nil); err != nil {
		t.Fatal(err)
	}
	if string(c.nodes[0]["k"].value) != string(c.nodes[1]["k"].value) {
		t.Fatalf("still split: %q vs %q", c.nodes[0]["k"].value, c.nodes[1]["k"].value)
	}
	if n, _ := r.Pass(nil); n != 0 {
		t.Errorf("pass after convergence repaired %d", n)
	}
}

func TestRepairerRespectsGroupMembership(t *testing.T) {
	// Key homed on nodes {0, 2}: the (0,1) comparison must not copy it
	// to node 1.
	c := newFakeCluster(3)
	c.groups["k"] = []int{0, 2}
	c.set(0, "k", fakeEntry{value: []byte("v"), ver: 5})
	r := newTestRepairer(t, c, 3)
	if _, err := r.Pass(nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.nodes[1]["k"]; ok {
		t.Error("key copied to a node outside its group")
	}
	if e := c.nodes[2]["k"]; string(e.value) != "v" || e.ver != 5 {
		t.Errorf("in-group replica not repaired: %+v", e)
	}
}

func TestRepairerManyKeysBothDirections(t *testing.T) {
	c := newFakeCluster(2)
	// 50 keys only on node 0, 50 only on node 1, 20 diverged, 30 synced.
	keys := func(prefix string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = prefix + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		return out
	}
	for _, k := range keys("only0-", 50) {
		c.set(0, k, fakeEntry{value: []byte("x"), ver: 2})
	}
	for _, k := range keys("only1-", 50) {
		c.set(1, k, fakeEntry{value: []byte("y"), ver: 2})
	}
	for i, k := range keys("split-", 20) {
		c.set(0, k, fakeEntry{value: []byte("old"), ver: uint64(10 + i)})
		c.set(1, k, fakeEntry{value: []byte("new"), ver: uint64(100 + i)})
	}
	for _, k := range keys("sync-", 30) {
		c.set(0, k, fakeEntry{value: []byte("same"), ver: 4})
		c.set(1, k, fakeEntry{value: []byte("same"), ver: 4})
	}
	diffs, repairs := 0, 0
	r, err := NewRepairer(Config{
		Nodes: 2, KeyID: testKeyID, Batch: 7,
		OnDiff:   func() { diffs++ },
		OnRepair: func() { repairs++ },
	}, c)
	if err != nil {
		t.Fatal(err)
	}
	n, err := r.Pass(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 120 || repairs != 120 || diffs != 120 {
		t.Fatalf("repaired %d (hooks: diff=%d repair=%d), want 120", n, diffs, repairs)
	}
	if len(c.nodes[0]) != len(c.nodes[1]) {
		t.Fatalf("store sizes differ: %d vs %d", len(c.nodes[0]), len(c.nodes[1]))
	}
	for k, e0 := range c.nodes[0] {
		e1 := c.nodes[1][k]
		if string(e0.value) != string(e1.value) || e0.ver != e1.ver {
			t.Fatalf("key %s still split: %+v vs %+v", k, e0, e1)
		}
	}
	if n, _ := r.Pass(nil); n != 0 {
		t.Errorf("second pass repaired %d", n)
	}
}

func TestRepairerStops(t *testing.T) {
	c := newFakeCluster(2)
	for i := 0; i < 50; i++ {
		c.set(0, keyN(i), fakeEntry{value: []byte("v"), ver: 1})
	}
	stop := make(chan struct{})
	close(stop)
	r := newTestRepairer(t, c, 2)
	if _, err := r.Pass(stop); !errors.Is(err, ErrStopped) {
		t.Fatalf("Pass with closed stop: %v", err)
	}
}

func keyN(i int) string { return string(rune('a'+i%26)) + string(rune('A'+i/26)) }

func TestRepairerConfigValidation(t *testing.T) {
	c := newFakeCluster(2)
	if _, err := NewRepairer(Config{Nodes: 2, KeyID: testKeyID}, nil); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewRepairer(Config{Nodes: 1, KeyID: testKeyID}, c); err == nil {
		t.Error("single node accepted")
	}
	if _, err := NewRepairer(Config{Nodes: 2}, c); err == nil {
		t.Error("nil KeyID accepted")
	}
}
