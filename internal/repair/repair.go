package repair

import (
	"errors"
	"fmt"
	"time"

	"securecache/internal/overload"
	"securecache/internal/proto"
)

// Entry is one repair action: place this state on a node. Del means the
// state is a tombstone (Value empty).
type Entry struct {
	Key   string
	Value []byte
	Epoch uint32
	Ver   uint64
	Del   bool
}

// Transport is how the Repairer talks to the cluster. In production it
// is the frontend's backend clients; tests plug in an in-memory fake.
type Transport interface {
	// ScanDigest returns one page of node's store in key-ID order with
	// tombstones included and live values elided to content hashes
	// (ScanEntry.Sum), plus the next cursor (0 = node drained).
	ScanDigest(node int, cursor uint64, limit int) ([]proto.ScanEntry, uint64, error)
	// Fetch reads one key's full current state from node. ok is false
	// when the node no longer holds the key at all.
	Fetch(node int, key string) (value []byte, ver uint64, tomb, ok bool, err error)
	// Apply places e on node as a versioned write (or tombstone): the
	// node keeps whatever it holds if that is at least as new.
	Apply(node int, e Entry) error
	// Group returns the key's current replica group. Repair touches a
	// key only when the pair under comparison are both members — other
	// divergence (old-generation leftovers mid-rotation) belongs to the
	// migrator, not the repairer.
	Group(key string) []int
}

// ErrStopped reports that a repair pass was cancelled via the stop
// channel.
var ErrStopped = errors.New("repair: stopped")

// Config parameterizes a Repairer.
type Config struct {
	// Nodes is the number of backend nodes, compared as IDs 0..Nodes-1.
	// Required (>= 2 to have any pairs to compare) unless NodeIDs is set.
	Nodes int
	// NodeIDs, when non-empty, is the explicit set of node IDs to pair up
	// (overrides Nodes). Elastic clusters pass the committed membership's
	// member list — drained IDs must stop being scanned, joined IDs must
	// start.
	NodeIDs []int
	// Batch is the digest scan page size (default 256).
	Batch int
	// Limiter rate-limits repair Apply calls; nil = unlimited. Repair
	// traffic competes with client traffic for backend capacity — size
	// this below the cluster's spare headroom.
	Limiter *overload.TokenBucket
	// KeyID maps a key to the 64-bit ID that orders scans. Required:
	// the pairwise merge walks both scans in ID order.
	KeyID func(string) uint64
	// OnDiff, when non-nil, is called once per divergent key found.
	OnDiff func()
	// OnRepair, when non-nil, is called once per repair applied.
	OnRepair func()
}

// Repairer walks every replica pair comparing digest scans and
// re-converges divergent copies: the higher version wins, tombstones
// propagate, and version-0 (legacy unversioned) splits are settled
// deterministically by copying the lower-numbered node's state. One
// Pass touches every pair once; drive it on an interval.
type Repairer struct {
	cfg Config
	t   Transport
}

// NewRepairer validates cfg and returns a Repairer.
func NewRepairer(cfg Config, t Transport) (*Repairer, error) {
	if t == nil {
		return nil, errors.New("repair: nil transport")
	}
	if len(cfg.NodeIDs) == 0 {
		if cfg.Nodes < 2 {
			return nil, fmt.Errorf("repair: %d nodes (need >= 2)", cfg.Nodes)
		}
		cfg.NodeIDs = make([]int, cfg.Nodes)
		for i := range cfg.NodeIDs {
			cfg.NodeIDs[i] = i
		}
	}
	if len(cfg.NodeIDs) < 2 {
		return nil, fmt.Errorf("repair: %d nodes (need >= 2)", len(cfg.NodeIDs))
	}
	if cfg.KeyID == nil {
		return nil, errors.New("repair: nil KeyID")
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	return &Repairer{cfg: cfg, t: t}, nil
}

// Pass compares every node pair once and applies repairs, returning how
// many repairs were applied. A transport error aborts the pass (the
// next interval retries); closing stop aborts with ErrStopped.
func (r *Repairer) Pass(stop <-chan struct{}) (int, error) {
	repaired := 0
	ids := r.cfg.NodeIDs
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			n, err := r.repairPair(ids[i], ids[j], stop)
			repaired += n
			if err != nil {
				return repaired, err
			}
		}
	}
	return repaired, nil
}

// stream pages one node's digest scan in key-ID order.
type stream struct {
	r      *Repairer
	node   int
	buf    []proto.ScanEntry
	idx    int
	cursor uint64
	done   bool
}

// peek returns the stream's current entry, nil when drained.
func (s *stream) peek() (*proto.ScanEntry, error) {
	for s.idx >= len(s.buf) {
		if s.done {
			return nil, nil
		}
		entries, next, err := s.r.t.ScanDigest(s.node, s.cursor, s.r.cfg.Batch)
		if err != nil {
			return nil, err
		}
		s.buf, s.idx = entries, 0
		if next == 0 {
			s.done = true
		} else {
			s.cursor = next
		}
	}
	return &s.buf[s.idx], nil
}

func (s *stream) pop() { s.idx++ }

// repairPair merge-walks nodes a and b's digest scans and converges
// every shared-group key they disagree on.
func (r *Repairer) repairPair(a, b int, stop <-chan struct{}) (int, error) {
	sa := &stream{r: r, node: a}
	sb := &stream{r: r, node: b}
	repaired := 0
	for {
		select {
		case <-stop:
			return repaired, ErrStopped
		default:
		}
		ea, err := sa.peek()
		if err != nil {
			return repaired, err
		}
		eb, err := sb.peek()
		if err != nil {
			return repaired, err
		}
		if ea == nil && eb == nil {
			return repaired, nil
		}
		var key string
		var onA, onB *proto.ScanEntry
		switch {
		case eb == nil || (ea != nil && r.cfg.KeyID(ea.Key) < r.cfg.KeyID(eb.Key)):
			key, onA = ea.Key, ea
			sa.pop()
		case ea == nil || r.cfg.KeyID(eb.Key) < r.cfg.KeyID(ea.Key):
			key, onB = eb.Key, eb
			sb.pop()
		default:
			// Equal IDs. Distinct keys colliding on a 64-bit ID would
			// break the merge invariant; treat them as unordered and
			// skip (astronomically rare, self-heals next pass).
			if ea.Key != eb.Key {
				sa.pop()
				sb.pop()
				continue
			}
			key, onA, onB = ea.Key, ea, eb
			sa.pop()
			sb.pop()
		}
		n, err := r.repairKey(key, a, b, onA, onB, stop)
		repaired += n
		if err != nil {
			return repaired, err
		}
	}
}

// repairKey converges one key across the pair. onA/onB are the digest
// entries (nil = the node's scan did not show the key).
func (r *Repairer) repairKey(key string, a, b int, onA, onB *proto.ScanEntry, stop <-chan struct{}) (int, error) {
	if !bothInGroup(r.t.Group(key), a, b) {
		return 0, nil
	}
	var src, dst int
	switch {
	case onB == nil:
		src, dst = a, b
	case onA == nil:
		src, dst = b, a
	case onA.Ver == onB.Ver && onA.Tomb == onB.Tomb && (onA.Tomb || onA.Sum == onB.Sum):
		return 0, nil // in sync
	case onA.Ver > onB.Ver:
		src, dst = a, b
	case onB.Ver > onA.Ver:
		src, dst = b, a
	default:
		// Same version, different content: legacy version-0 divergence
		// (versioned writes can't reach this state). Copy the
		// lower-numbered node's state — arbitrary but deterministic, so
		// repeated passes converge instead of flip-flopping.
		src, dst = a, b
	}
	if r.cfg.OnDiff != nil {
		r.cfg.OnDiff()
	}
	if err := r.wait(stop); err != nil {
		return 0, err
	}
	// Fetch the source's full current state: the digest may be stale by
	// now, and Apply must carry real bytes, not a hash.
	value, ver, tomb, ok, err := r.t.Fetch(src, key)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil // vanished under us; next pass settles it
	}
	var srcEpoch uint32
	if src == a && onA != nil {
		srcEpoch = onA.Epoch
	} else if src == b && onB != nil {
		srcEpoch = onB.Epoch
	}
	e := Entry{Key: key, Epoch: srcEpoch, Ver: ver, Del: tomb}
	if !tomb {
		e.Value = value
	}
	if err := r.t.Apply(dst, e); err != nil {
		return 0, err
	}
	if r.cfg.OnRepair != nil {
		r.cfg.OnRepair()
	}
	return 1, nil
}

// wait blocks until the rate limiter admits one repair (or stop closes).
func (r *Repairer) wait(stop <-chan struct{}) error {
	for !r.cfg.Limiter.Allow() {
		select {
		case <-stop:
			return ErrStopped
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

func bothInGroup(group []int, a, b int) bool {
	foundA, foundB := false, false
	for _, n := range group {
		if n == a {
			foundA = true
		}
		if n == b {
			foundB = true
		}
	}
	return foundA && foundB
}
