package repair

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

func TestHintQueueDedupHighestVersionWins(t *testing.T) {
	q, err := NewHintQueue(10, "")
	if err != nil {
		t.Fatal(err)
	}
	q.Add(Hint{Node: 1, Key: "k", Ver: 5, Value: []byte("v5")})
	q.Add(Hint{Node: 1, Key: "k", Ver: 3, Value: []byte("v3")}) // older: ignored
	q.Add(Hint{Node: 1, Key: "k", Ver: 9, Value: []byte("v9")}) // newer: replaces
	if got := q.Pending(1); got != 1 {
		t.Fatalf("Pending = %d, want 1 (dedup by key)", got)
	}
	var drained []Hint
	if _, err := q.Drain(1, func(h Hint) error {
		drained = append(drained, h)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(drained) != 1 || drained[0].Ver != 9 || string(drained[0].Value) != "v9" {
		t.Fatalf("drained %+v, want single ver-9 hint", drained)
	}
	if q.Total() != 0 {
		t.Errorf("Total after drain = %d", q.Total())
	}
}

func TestHintQueueBounded(t *testing.T) {
	q, _ := NewHintQueue(3, "")
	for i := 0; i < 5; i++ {
		q.Add(Hint{Node: 0, Key: fmt.Sprintf("k%d", i), Ver: uint64(i + 1)})
	}
	if got := q.Pending(0); got != 3 {
		t.Errorf("Pending = %d, want limit 3", got)
	}
	if got := q.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	// Updating an already-queued key is not a drop even at the limit.
	if !q.Add(Hint{Node: 0, Key: "k0", Ver: 100}) {
		t.Error("update of queued key rejected at full queue")
	}
}

func TestHintQueueDrainStopsOnError(t *testing.T) {
	q, _ := NewHintQueue(10, "")
	q.Add(Hint{Node: 2, Key: "a", Ver: 1})
	q.Add(Hint{Node: 2, Key: "b", Ver: 2})
	boom := errors.New("node still down")
	calls := 0
	applied, err := q.Drain(2, func(Hint) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || applied != 0 || calls != 1 {
		t.Fatalf("applied=%d calls=%d err=%v", applied, calls, err)
	}
	if q.Pending(2) != 2 {
		t.Errorf("failed drain lost hints: pending=%d", q.Pending(2))
	}
}

func TestHintQueueKeepsNewerHintQueuedDuringDrain(t *testing.T) {
	q, _ := NewHintQueue(10, "")
	q.Add(Hint{Node: 0, Key: "k", Ver: 1})
	raced := false
	if _, err := q.Drain(0, func(h Hint) error {
		if !raced {
			raced = true
			// A newer write lands while ver 1 is in flight: it must
			// survive this drain iteration's removal.
			q.Add(Hint{Node: 0, Key: "k", Ver: 2})
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if q.Pending(0) != 0 {
		t.Errorf("pending=%d after full drain", q.Pending(0))
	}
	if !raced {
		t.Fatal("apply never ran")
	}
}

func TestHintQueuePersistence(t *testing.T) {
	dir := t.TempDir()
	q1, err := NewHintQueue(10, dir)
	if err != nil {
		t.Fatal(err)
	}
	q1.Add(Hint{Node: 1, Key: "a", Ver: 7, Value: []byte("v"), Epoch: 2})
	q1.Add(Hint{Node: 1, Key: "b", Ver: 8, Del: true})
	q1.Add(Hint{Node: 3, Key: "c", Ver: 9})
	if err := q1.Sync(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh queue over the same directory.
	q2, err := NewHintQueue(10, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := q2.Total(); got != 3 {
		t.Fatalf("restored %d hints, want 3", got)
	}
	if !reflect.DeepEqual(q2.Nodes(), []int{1, 3}) {
		t.Errorf("Nodes = %v", q2.Nodes())
	}
	var got []Hint
	q2.Drain(1, func(h Hint) error { got = append(got, h); return nil })
	if len(got) != 2 {
		t.Fatalf("drained %d hints from node 1", len(got))
	}
	// Draining must clear the file on Sync so a second restart doesn't
	// resurrect applied hints.
	if err := q2.Sync(); err != nil {
		t.Fatal(err)
	}
	q3, err := NewHintQueue(10, dir)
	if err != nil {
		t.Fatal(err)
	}
	if q3.Pending(1) != 0 || q3.Pending(3) != 1 {
		t.Errorf("after drain+sync restart: node1=%d node3=%d", q3.Pending(1), q3.Pending(3))
	}
}

func TestHintQueueCorruptFileSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(filepath.Join(dir, "hints-0.json"), []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	q, err := NewHintQueue(10, dir)
	if err != nil {
		t.Fatalf("corrupt hint file fatal: %v", err)
	}
	if q.Total() != 0 {
		t.Errorf("Total = %d", q.Total())
	}
}
