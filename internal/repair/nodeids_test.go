package repair

import "testing"

func TestPassWithExplicitNodeIDs(t *testing.T) {
	// Four nodes, but only {0, 2, 3} are members: divergence on node 1
	// must be left alone (it has drained; the migrator owns its data),
	// while members converge as usual.
	c := newFakeCluster(4)
	c.set(0, "k", fakeEntry{value: []byte("new"), ver: 9})
	c.set(2, "k", fakeEntry{value: []byte("old"), ver: 3})
	c.set(1, "k", fakeEntry{value: []byte("stale"), ver: 1})
	c.groups["k"] = []int{0, 2, 3}
	r, err := NewRepairer(Config{NodeIDs: []int{0, 2, 3}, KeyID: testKeyID, Batch: 4}, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Pass(nil); err != nil {
		t.Fatal(err)
	}
	if got := c.nodes[2]["k"]; string(got.value) != "new" || got.ver != 9 {
		t.Fatalf("member node 2 not repaired: %+v", got)
	}
	if got := c.nodes[1]["k"]; string(got.value) != "stale" {
		t.Fatalf("non-member node 1 touched by repair: %+v", got)
	}
}

func TestNodeIDsValidation(t *testing.T) {
	c := newFakeCluster(3)
	if _, err := NewRepairer(Config{NodeIDs: []int{1}, KeyID: testKeyID}, c); err == nil {
		t.Fatal("single-ID repairer accepted")
	}
	if _, err := NewRepairer(Config{NodeIDs: []int{0, 2}, KeyID: testKeyID}, c); err != nil {
		t.Fatalf("two-ID repairer rejected: %v", err)
	}
}
