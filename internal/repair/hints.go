// Package repair is the write-durability and replica-convergence layer:
// hinted handoff queues that buffer writes a down replica missed, and a
// background anti-entropy repairer that walks replica pairs comparing
// digest scans and re-converges divergent copies highest-version-wins.
// Both lean on the store's versioned write semantics — every repair
// action is an idempotent versioned Set or tombstone, so replays and
// races are harmless by construction.
package repair

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DefaultHintLimit bounds buffered hints per node. A node that stays
// down long enough to overflow its queue is repaired by anti-entropy
// instead — the queue is a fast path, not the correctness backstop.
const DefaultHintLimit = 4096

// Hint is one write a replica missed: replay it as a versioned Set (or
// tombstone when Del) once the node is reachable again.
type Hint struct {
	Node  int    `json:"node"`
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
	Epoch uint32 `json:"epoch"`
	Ver   uint64 `json:"ver"`
	Del   bool   `json:"del,omitempty"`
}

// HintQueue buffers missed writes per node, deduplicating by key
// (highest version wins — replaying only the newest write per key is
// correct because versioned writes are order-free). Optionally persists
// to a directory so hints survive a frontend restart. Safe for
// concurrent use.
type HintQueue struct {
	limit int
	dir   string // "" = memory only

	mu      sync.Mutex
	nodes   map[int]map[string]Hint
	dirty   map[int]bool
	dropped uint64
}

// NewHintQueue returns a queue holding at most limit hints per node
// (<= 0 = DefaultHintLimit). If dir is non-empty, per-node hint files
// are loaded from it now and written back on Sync.
func NewHintQueue(limit int, dir string) (*HintQueue, error) {
	if limit <= 0 {
		limit = DefaultHintLimit
	}
	q := &HintQueue{
		limit: limit,
		dir:   dir,
		nodes: make(map[int]map[string]Hint),
		dirty: make(map[int]bool),
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("repair: hint dir: %w", err)
		}
		if err := q.load(); err != nil {
			return nil, err
		}
	}
	return q, nil
}

// Add buffers a missed write, reporting whether it was kept. A hint for
// a key already queued replaces it only if at least as new; a full queue
// drops the hint (counted in Dropped) — anti-entropy will carry it.
func (q *HintQueue) Add(h Hint) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	m := q.nodes[h.Node]
	if m == nil {
		m = make(map[string]Hint)
		q.nodes[h.Node] = m
	}
	if old, ok := m[h.Key]; ok {
		if old.Ver > h.Ver {
			return true // queue already carries something newer
		}
	} else if len(m) >= q.limit {
		q.dropped++
		return false
	}
	m[h.Key] = h
	q.dirty[h.Node] = true
	return true
}

// Pending returns how many hints are queued for node.
func (q *HintQueue) Pending(node int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.nodes[node])
}

// Total returns the queued hint count across all nodes.
func (q *HintQueue) Total() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, m := range q.nodes {
		n += len(m)
	}
	return n
}

// Dropped returns how many hints were discarded to full queues.
func (q *HintQueue) Dropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Nodes returns the nodes with pending hints, ascending.
func (q *HintQueue) Nodes() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]int, 0, len(q.nodes))
	for n, m := range q.nodes {
		if len(m) > 0 {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Drain replays node's hints through apply, stopping at the first
// failure (the hint stays queued for the next drain). A hint re-queued
// at a newer version while its old version is in flight is kept — only
// the exact hint handed to apply is removed. Returns how many hints
// apply accepted.
func (q *HintQueue) Drain(node int, apply func(Hint) error) (int, error) {
	applied := 0
	for {
		q.mu.Lock()
		m := q.nodes[node]
		var h Hint
		found := false
		for _, cand := range m {
			h = cand
			found = true
			break
		}
		q.mu.Unlock()
		if !found {
			return applied, nil
		}
		if err := apply(h); err != nil {
			return applied, err
		}
		q.mu.Lock()
		if cur, ok := m[h.Key]; ok && cur.Ver == h.Ver && cur.Del == h.Del {
			delete(m, h.Key)
			q.dirty[node] = true
		}
		q.mu.Unlock()
		applied++
	}
}

// Sync writes changed per-node hint files (atomic temp+rename). No-op
// without a persistence directory.
func (q *HintQueue) Sync() error {
	if q.dir == "" {
		return nil
	}
	q.mu.Lock()
	type fileState struct {
		node  int
		hints []Hint
	}
	var work []fileState
	for node := range q.dirty {
		hints := make([]Hint, 0, len(q.nodes[node]))
		for _, h := range q.nodes[node] {
			hints = append(hints, h)
		}
		sort.Slice(hints, func(i, j int) bool { return hints[i].Key < hints[j].Key })
		work = append(work, fileState{node, hints})
		delete(q.dirty, node)
	}
	q.mu.Unlock()
	for _, fs := range work {
		if err := q.writeNodeFile(fs.node, fs.hints); err != nil {
			q.mu.Lock()
			q.dirty[fs.node] = true // retry next Sync
			q.mu.Unlock()
			return err
		}
	}
	return nil
}

func (q *HintQueue) nodePath(node int) string {
	return filepath.Join(q.dir, fmt.Sprintf("hints-%d.json", node))
}

func (q *HintQueue) writeNodeFile(node int, hints []Hint) error {
	path := q.nodePath(node)
	if len(hints) == 0 {
		err := os.Remove(path)
		if err != nil && !os.IsNotExist(err) {
			return err
		}
		return nil
	}
	blob, err := json.Marshal(hints)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// load restores hint files written by a previous process. A corrupt file
// is skipped (and removed at the next Sync), not fatal: hints are an
// optimization and anti-entropy covers the loss.
func (q *HintQueue) load() error {
	matches, err := filepath.Glob(filepath.Join(q.dir, "hints-*.json"))
	if err != nil {
		return err
	}
	for _, path := range matches {
		blob, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var hints []Hint
		if json.Unmarshal(blob, &hints) != nil {
			continue
		}
		for _, h := range hints {
			q.Add(h)
		}
	}
	return nil
}
