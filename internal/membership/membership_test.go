package membership

import (
	"errors"
	"testing"
)

func TestBootView(t *testing.T) {
	tr := NewTracker([]string{"a:1", "b:2", "c:3"})
	v := tr.View()
	if v.Version != 1 {
		t.Fatalf("boot version = %d, want 1", v.Version)
	}
	if got := v.Members(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("boot members = %v", got)
	}
	if addrs := v.MemberAddrs(); addrs[1] != "b:2" {
		t.Fatalf("member addrs = %v", addrs)
	}
	if tr.Changing() {
		t.Fatal("boot tracker reports a change in progress")
	}
}

func TestStageJoinCommit(t *testing.T) {
	tr := NewTracker([]string{"a:1", "b:2"})
	staged, err := tr.StageJoin("c:3")
	if err != nil {
		t.Fatalf("StageJoin: %v", err)
	}
	if staged.Version != 2 {
		t.Fatalf("staged version = %d, want 2", staged.Version)
	}
	if got := staged.Members(); len(got) != 3 || got[2] != 2 {
		t.Fatalf("staged members = %v, want [0 1 2]", got)
	}
	if n, ok := staged.Node(2); !ok || n.State != StateJoining {
		t.Fatalf("staged node 2 = %+v ok=%v", n, ok)
	}
	// Committed view unchanged until Commit.
	if got := tr.View().Members(); len(got) != 2 {
		t.Fatalf("committed members before commit = %v", got)
	}
	v := tr.Commit()
	if n, _ := v.Node(2); n.State != StateActive {
		t.Fatalf("node 2 after commit = %+v", n)
	}
	if tr.Changing() {
		t.Fatal("still changing after commit")
	}
}

func TestStageDrainCommit(t *testing.T) {
	tr := NewTracker([]string{"a:1", "b:2", "c:3"})
	staged, err := tr.StageDrain(1)
	if err != nil {
		t.Fatalf("StageDrain: %v", err)
	}
	if got := staged.Members(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("staged members = %v, want [0 2]", got)
	}
	v := tr.Commit()
	if n, _ := v.Node(1); n.State != StateDead {
		t.Fatalf("drained node state = %q, want dead", n.State)
	}
	if got := v.Members(); len(got) != 2 {
		t.Fatalf("committed members = %v", got)
	}
}

func TestAbortJoinBurnsID(t *testing.T) {
	tr := NewTracker([]string{"a:1", "b:2"})
	staged, err := tr.StageJoin("c:3")
	if err != nil {
		t.Fatal(err)
	}
	joinedID := staged.Members()[2]
	v := tr.Abort()
	if got := v.Members(); len(got) != 2 {
		t.Fatalf("members after abort = %v", got)
	}
	if n, ok := v.Node(joinedID); !ok || n.State != StateDead {
		t.Fatalf("aborted joiner = %+v ok=%v, want dead", n, ok)
	}
	if v.Version <= staged.Version {
		t.Fatalf("abort version %d not past staged %d", v.Version, staged.Version)
	}
	// The burned ID is never reused.
	staged2, err := tr.StageJoin("d:4")
	if err != nil {
		t.Fatal(err)
	}
	newID := staged2.Members()[2]
	if newID == joinedID {
		t.Fatalf("ID %d reused after abort", joinedID)
	}
}

func TestAbortDrainRestoresActive(t *testing.T) {
	tr := NewTracker([]string{"a:1", "b:2", "c:3"})
	if _, err := tr.StageDrain(2); err != nil {
		t.Fatal(err)
	}
	v := tr.Abort()
	if n, _ := v.Node(2); n.State != StateActive {
		t.Fatalf("node 2 after drain abort = %q, want active", n.State)
	}
	if got := v.Members(); len(got) != 3 {
		t.Fatalf("members after drain abort = %v", got)
	}
}

func TestStageErrors(t *testing.T) {
	tr := NewTracker([]string{"a:1", "b:2"})
	if _, err := tr.StageChange(nil, nil); err == nil {
		t.Fatal("empty change accepted")
	}
	if _, err := tr.StageDrain(7); err == nil {
		t.Fatal("drain of unknown node accepted")
	}
	if _, err := tr.StageJoin("a:1"); err == nil {
		t.Fatal("duplicate-address join accepted")
	}
	if _, err := tr.StageJoin("c:3"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.StageJoin("d:4"); !errors.Is(err, ErrChangeActive) {
		t.Fatalf("second stage = %v, want ErrChangeActive", err)
	}
	tr.Commit()
	// Draining a non-active (dead) node is rejected.
	if _, err := tr.StageDrain(0); err != nil {
		t.Fatal(err)
	}
	tr.Commit()
	if _, err := tr.StageDrain(0); err == nil {
		t.Fatal("drain of dead node accepted")
	}
}

func TestCurrentFollowsStaged(t *testing.T) {
	tr := NewTracker([]string{"a:1", "b:2"})
	if got := tr.Current(); got.Version != 1 {
		t.Fatalf("current = v%d", got.Version)
	}
	tr.StageJoin("c:3")
	if got := tr.Current(); got.Version != 2 || len(got.Members()) != 3 {
		t.Fatalf("current during change = v%d members %v", got.Version, got.Members())
	}
	tr.Abort()
	if got := tr.Current(); len(got.Members()) != 2 {
		t.Fatalf("current after abort = %v", got.Members())
	}
}
