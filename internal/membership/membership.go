// Package membership tracks the cluster's versioned node view: which
// back-end nodes exist, their addresses, and where each one is in the
// join/active/drain/dead lifecycle.
//
// The paper's analysis fixes n at provisioning time, but a production
// cluster adds and drains nodes live. The membership view is the source
// of truth the rest of the system derives from on every change: the
// partitioner maps keys over the view's members, the auto-provisioner
// recomputes c* = n·(ln ln n / ln d) + n·k′ + 1 from the member count,
// and secguard re-derives its Eq. 10 verdict thresholds.
//
// A view change is a two-phase transition mirroring the epoch rotation
// it rides on (internal/rotation): Stage* opens a staged view (joining
// nodes included in the member set, draining nodes excluded), the
// epoch migrator re-places every key whose replica group changed, and
// Commit (joining -> active, draining -> dead) or Abort (staged view
// discarded) closes it. Node IDs are grow-only and never reused, so an
// ID observed anywhere in the system — hint queues, breaker state,
// epoch-tagged store entries — can never silently point at a different
// machine after a sequence of changes.
package membership

import (
	"errors"
	"fmt"
	"sync"
)

// State is a node's position in the membership lifecycle.
type State string

// Node lifecycle states.
const (
	// StateJoining: staged into the member set; the migrator is filling
	// it. It serves reads/writes for groups the staged mapping assigns
	// it, but the change has not committed.
	StateJoining State = "joining"
	// StateActive: a committed member.
	StateActive State = "active"
	// StateDraining: staged out of the member set; the migrator is
	// moving its keys off. It keeps serving old-generation reads until
	// the change commits.
	StateDraining State = "draining"
	// StateDead: drained out (or failed out) of the cluster. Kept in the
	// view for ID-allocation history; never a member again.
	StateDead State = "dead"
)

// Node is one back-end in the view.
type Node struct {
	ID    int    `json:"id"`
	Addr  string `json:"addr"`
	State State  `json:"state"`
}

// View is one immutable version of the cluster membership.
type View struct {
	Version uint64 `json:"version"`
	Nodes   []Node `json:"nodes"`
}

// Members returns the IDs of nodes that hold data under this view's
// mapping: active and joining nodes, in ascending ID order. Draining
// and dead nodes are excluded — removing a node from the mapping is
// exactly what staging its drain means.
func (v View) Members() []int {
	var ids []int
	for _, n := range v.Nodes {
		if n.State == StateActive || n.State == StateJoining {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// MemberAddrs returns the addresses parallel to Members().
func (v View) MemberAddrs() []string {
	var addrs []string
	for _, n := range v.Nodes {
		if n.State == StateActive || n.State == StateJoining {
			addrs = append(addrs, n.Addr)
		}
	}
	return addrs
}

// Node returns the node with the given ID and whether it exists.
func (v View) Node(id int) (Node, bool) {
	for _, n := range v.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// clone deep-copies the view so callers can hold it without racing the
// tracker.
func (v View) clone() View {
	out := View{Version: v.Version, Nodes: make([]Node, len(v.Nodes))}
	copy(out.Nodes, v.Nodes)
	return out
}

// ErrChangeActive reports a Stage* while a change is already staged.
var ErrChangeActive = errors.New("membership: view change already in progress")

// Tracker holds the committed view plus (during a change) the staged
// view. Safe for concurrent use.
type Tracker struct {
	mu     sync.Mutex
	view   View
	staged *View
	nextID int
}

// NewTracker seeds a tracker with the boot membership: nodes 0..n-1
// active at the given addresses, view version 1.
func NewTracker(addrs []string) *Tracker {
	t := &Tracker{view: View{Version: 1}, nextID: len(addrs)}
	for i, a := range addrs {
		t.view.Nodes = append(t.view.Nodes, Node{ID: i, Addr: a, State: StateActive})
	}
	return t
}

// View returns the committed view.
func (t *Tracker) View() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.view.clone()
}

// Staged returns the staged view and whether a change is open.
func (t *Tracker) Staged() (View, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.staged == nil {
		return View{}, false
	}
	return t.staged.clone(), true
}

// Changing reports whether a view change is staged.
func (t *Tracker) Changing() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.staged != nil
}

// Current returns the view requests should be interpreted against: the
// staged view during a change, the committed view otherwise.
func (t *Tracker) Current() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.staged != nil {
		return t.staged.clone()
	}
	return t.view.clone()
}

// StageChange opens a view change: joinAddrs become joining nodes with
// freshly allocated IDs, drainIDs move active -> draining. The staged
// view's Members() is the node set the new mapping must cover. Only one
// change may be open at a time.
func (t *Tracker) StageChange(joinAddrs []string, drainIDs []int) (View, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.staged != nil {
		return View{}, ErrChangeActive
	}
	if len(joinAddrs) == 0 && len(drainIDs) == 0 {
		return View{}, errors.New("membership: empty view change")
	}
	next := t.view.clone()
	next.Version++
	for _, id := range drainIDs {
		found := false
		for i := range next.Nodes {
			if next.Nodes[i].ID != id {
				continue
			}
			found = true
			if next.Nodes[i].State != StateActive {
				return View{}, fmt.Errorf("membership: drain node %d in state %q (need active)", id, next.Nodes[i].State)
			}
			next.Nodes[i].State = StateDraining
		}
		if !found {
			return View{}, fmt.Errorf("membership: drain unknown node %d", id)
		}
	}
	for _, addr := range joinAddrs {
		if addr == "" {
			return View{}, errors.New("membership: join with empty address")
		}
		for _, n := range next.Nodes {
			if n.Addr == addr && n.State != StateDead {
				return View{}, fmt.Errorf("membership: address %q already joined as node %d", addr, n.ID)
			}
		}
		next.Nodes = append(next.Nodes, Node{ID: t.nextID, Addr: addr, State: StateJoining})
		t.nextID++
	}
	if len(next.Members()) < 1 {
		return View{}, errors.New("membership: change would leave no members")
	}
	t.staged = &next
	return next.clone(), nil
}

// StageJoin stages the addition of new nodes.
func (t *Tracker) StageJoin(addrs ...string) (View, error) {
	return t.StageChange(addrs, nil)
}

// StageDrain stages the removal of existing nodes.
func (t *Tracker) StageDrain(ids ...int) (View, error) {
	return t.StageChange(nil, ids)
}

// Commit finalizes the staged change: joining nodes become active,
// draining nodes become dead, and the staged view becomes the committed
// one. Panics if no change is staged (the caller owns the lifecycle).
func (t *Tracker) Commit() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.staged == nil {
		panic("membership: Commit with no change staged")
	}
	v := t.staged.clone()
	for i := range v.Nodes {
		switch v.Nodes[i].State {
		case StateJoining:
			v.Nodes[i].State = StateActive
		case StateDraining:
			v.Nodes[i].State = StateDead
		}
	}
	t.view = v
	t.staged = nil
	return v.clone()
}

// Abort discards the staged change, reverting to the committed view.
// Joining nodes are recorded dead — their IDs are burned, never reused —
// and draining nodes return to active. Panics if no change is staged.
func (t *Tracker) Abort() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.staged == nil {
		panic("membership: Abort with no change staged")
	}
	v := t.view.clone()
	v.Version = t.staged.Version + 1
	// Keep the aborted joiners in the dead ledger so their IDs stay
	// allocated and the next change gets a fresh version history.
	for _, n := range t.staged.Nodes {
		if n.State == StateJoining {
			v.Nodes = append(v.Nodes, Node{ID: n.ID, Addr: n.Addr, State: StateDead})
		}
	}
	t.view = v
	t.staged = nil
	return v.clone()
}
