package attack

import (
	"testing"

	"securecache/internal/partition"
)

func TestKeysForVictim(t *testing.T) {
	part := partition.NewHash(50, 3, 42)
	adv := TargetedAdversary{Part: part, Victim: 7}
	keys, err := adv.KeysForVictim(10000, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 200 {
		t.Fatalf("found %d keys, want 200 (d/n of key space ≈ 600 qualify)", len(keys))
	}
	for _, k := range keys {
		found := false
		for _, node := range part.Group(uint64(k)) {
			if node == 7 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("key %d does not map to the victim", k)
		}
	}
}

func TestKeysForVictimValidation(t *testing.T) {
	part := partition.NewHash(10, 2, 1)
	cases := []TargetedAdversary{
		{Part: nil, Victim: 0},
		{Part: part, Victim: -1},
		{Part: part, Victim: 10},
	}
	for i, adv := range cases {
		if _, err := adv.KeysForVictim(100, 10); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := TargetedAdversary{Part: part, Victim: 0}
	if _, err := good.KeysForVictim(0, 10); err == nil {
		t.Error("zero key space accepted")
	}
	if _, err := good.KeysForVictim(100, 0); err == nil {
		t.Error("zero limit accepted")
	}
}

func TestTargetedAttackDefeatsAnyCache(t *testing.T) {
	// The headline negative result: once the mapping leaks, even a cache
	// far beyond c* cannot protect the victim. n=100, d=3: c* = 121 with
	// k=1.2; give the defender a luxurious c=500 and watch gain ≈ n/d.
	const n, d, m = 100, 3, 50000
	part := partition.NewHash(n, d, 1337) // the leaked secret
	adv := TargetedAdversary{Part: part, Victim: 13}

	gain, err := adv.Evaluate(m, 1000, 500, 10000, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Expected ≈ (n/d)·(1 − 500/1000) ≈ 16.7; anything clearly effective
	// proves the point.
	if float64(gain) < 5 {
		t.Errorf("targeted gain %v with c=500, want >> 1 (cache cannot defend a leaked mapping)", gain)
	}
}

func TestTargetedAttackScalesWithKeys(t *testing.T) {
	// More targeted keys dilute the cache further: gain grows toward n/d.
	const n, d, m, c = 100, 3, 50000, 100
	part := partition.NewHash(n, d, 7)
	adv := TargetedAdversary{Part: part, Victim: 0}
	few, err := adv.Evaluate(m, 150, c, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := adv.Evaluate(m, 1200, c, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if float64(many) <= float64(few) {
		t.Errorf("gain did not grow with targeted keys: %v (150 keys) vs %v (1200 keys)", few, many)
	}
}

func TestTargetedDistributionShape(t *testing.T) {
	part := partition.NewHash(20, 2, 3)
	adv := TargetedAdversary{Part: part, Victim: 5}
	dist, err := adv.Distribution(5000, 50)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Support() != 50 {
		t.Errorf("support = %d, want 50", dist.Support())
	}
	// Uniform over the selected keys.
	var firstP float64
	dist.EachNonzero(func(k int, p float64) bool {
		if firstP == 0 {
			firstP = p
		} else if p != firstP {
			t.Errorf("non-uniform targeted distribution at key %d", k)
			return false
		}
		return true
	})
}
