package attack

import (
	"fmt"

	"securecache/internal/cluster"
	"securecache/internal/core"
	"securecache/internal/partition"
	"securecache/internal/workload"
	"securecache/internal/xrand"
)

// TargetedAdversary models the insider threat the paper's Assumption 1
// rules out: an attacker who has learned the secret partition mapping
// (leaked seed, compromised front end, or a store with predictable
// placement like a range-partitioned column store). Such an attacker does
// not need to out-guess the cache — it enumerates keys whose replica
// group contains the victim node and spreads its budget over as many of
// them as it likes, so the cache absorbs an arbitrarily small fraction.
//
// With x victim-mapped keys and a c-entry cache, the victim's gain
// approaches (n/d)·(1 − c/x) when replicas are chosen per key at random
// (each targeted key has a 1/d chance of being served by the victim),
// and the full n·(1 − c/x) when the key→serving-node rule is
// deterministic and known (the attacker filters for keys the victim
// serves). Either way the gain grows with n and is unbounded by any
// cache size: no cache of any size prevents it. This is the quantitative
// justification for the paper's randomized-mapping requirement (and for
// excluding BigTable/HBase-style predictable partitioning).
//
// Least-loaded selection resists the naive version — the victim's group
// mates absorb load — but the attacker counters by targeting a whole
// replica-group set S (keys with group ⊆ S), trapping the load inside
// |S| nodes; the defense still cannot come from the cache.
type TargetedAdversary struct {
	// Part is the leaked partitioner.
	Part partition.Partitioner
	// Victim is the node to overload.
	Victim int
}

// KeysForVictim enumerates up to limit keys (scanning key IDs from 0)
// whose replica group contains the victim. On average a fraction d/n of
// the key space qualifies. It returns an error if the victim is out of
// range or limit is not positive.
func (t TargetedAdversary) KeysForVictim(keySpace, limit int) ([]int, error) {
	if t.Part == nil {
		return nil, fmt.Errorf("attack: targeted adversary needs the leaked partitioner")
	}
	if t.Victim < 0 || t.Victim >= t.Part.Nodes() {
		return nil, fmt.Errorf("attack: victim %d out of [0, %d)", t.Victim, t.Part.Nodes())
	}
	if limit <= 0 || keySpace <= 0 {
		return nil, fmt.Errorf("attack: KeysForVictim(keySpace=%d, limit=%d)", keySpace, limit)
	}
	var keys []int
	group := make([]int, 0, t.Part.Replicas())
	for k := 0; k < keySpace && len(keys) < limit; k++ {
		group = t.Part.GroupAppend(group[:0], uint64(k))
		for _, node := range group {
			if node == t.Victim {
				keys = append(keys, k)
				break
			}
		}
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("attack: no keys of %d map to victim %d", keySpace, t.Victim)
	}
	return keys, nil
}

// Distribution builds the targeted attack workload: uniform over up to
// maxKeys victim-mapped keys of the keySpace. With x keys and a front-end
// cache of c entries the cache can absorb at most c/x of the rate, so
// picking maxKeys >> c makes the attack cache-proof.
func (t TargetedAdversary) Distribution(keySpace, maxKeys int) (workload.Distribution, error) {
	keys, err := t.KeysForVictim(keySpace, maxKeys)
	if err != nil {
		return nil, err
	}
	probs := make([]float64, keySpace)
	p := 1 / float64(len(keys))
	for _, k := range keys {
		probs[k] = p
	}
	return workload.NewPMF(probs), nil
}

// Evaluate measures the targeted attack against a cluster built on the
// SAME (leaked) partitioner, with a perfect cache of c entries, under
// per-key random replica selection (the honest policy for this attack:
// the victim serves ~1/d of the targeted keys). Because the mapping is
// fixed, the only randomness left is the replica choice, driven by seed.
func (t TargetedAdversary) Evaluate(keySpace, maxKeys, cacheSize int,
	rate float64, seed uint64) (core.AttackGain, error) {
	dist, err := t.Distribution(keySpace, maxKeys)
	if err != nil {
		return 0, err
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:       t.Part.Nodes(),
		Replication: t.Part.Replicas(),
		Partitioner: t.Part,
		Policy:      cluster.PolicyRandomReplica,
	})
	if err != nil {
		return 0, err
	}
	cached := cluster.CachedSet(workload.TopC(dist, cacheSize))
	rep := cl.ApplyLoad(dist, rate, cached, xrand.New(seed))
	return core.AttackGain(rep.NormalizedMaxLoad()), nil
}
