package attack

import (
	"testing"
)

// smallAdversary targets a scaled-down cluster that keeps tests fast while
// preserving the paper's qualitative regimes. With n=100, d=3, k=1.2 the
// provisioning threshold is c* = 121.
func smallAdversary(c int) Adversary {
	return Adversary{Items: 5000, Nodes: 100, Replication: 3, CacheSize: c, KOverride: 1.2}
}

func fastCfg() EvalConfig {
	return EvalConfig{Rate: 10000, Runs: 30, Seed: 7}
}

func TestBestXRegimes(t *testing.T) {
	if got := smallAdversary(50).BestX(); got != 51 {
		t.Errorf("below threshold: BestX = %d, want 51", got)
	}
	if got := smallAdversary(200).BestX(); got != 5000 {
		t.Errorf("above threshold: BestX = %d, want m", got)
	}
}

func TestDistributionForXValidation(t *testing.T) {
	a := smallAdversary(50)
	if _, err := a.DistributionForX(0); err == nil {
		t.Error("x=0 accepted")
	}
	if _, err := a.DistributionForX(5001); err == nil {
		t.Error("x>m accepted")
	}
	d, err := a.DistributionForX(51)
	if err != nil {
		t.Fatal(err)
	}
	if d.Support() != 51 {
		t.Errorf("support = %d, want 51", d.Support())
	}
}

func TestBestDistribution(t *testing.T) {
	a := smallAdversary(50)
	d, err := a.BestDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if d.Support() != 51 {
		t.Errorf("best distribution support = %d, want 51", d.Support())
	}
}

func TestSmallCacheAttackIsEffective(t *testing.T) {
	// c = 50 < c* = 121: attacking with x = c+1 must achieve gain > 1.
	a := smallAdversary(50)
	r, err := a.Evaluate(a.BestX(), fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !r.MaxGain.Effective() {
		t.Errorf("gain %v at c=50 (below c*), want effective", r.MaxGain)
	}
	// With one uncached key at rate R/51 on one node: gain ≈ n/51 ≈ 1.96.
	if float64(r.MaxGain) < 1.5 || float64(r.MaxGain) > 2.5 {
		t.Errorf("gain %v, want ≈ 1.96", r.MaxGain)
	}
}

func TestLargeCacheAttackIsIneffective(t *testing.T) {
	// c = 200 > c* = 121: even the best strategy stays below gain 1... in
	// expectation. The max over runs includes the balls-into-bins spread,
	// so allow the paper's margin: mean must be < 1, max must be modest.
	a := smallAdversary(200)
	r, err := a.EvaluateBest(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanGain.Effective() {
		t.Errorf("mean gain %v at c=200 (above c*), want < 1", r.MeanGain)
	}
	if r.X != 5000 {
		t.Errorf("best x = %d, want m = 5000", r.X)
	}
}

func TestEvaluateBestPicksLargerGain(t *testing.T) {
	// Below threshold the x = c+1 candidate must win.
	a := smallAdversary(50)
	r, err := a.EvaluateBest(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.X != 51 {
		t.Errorf("best x = %d, want 51", r.X)
	}
}

func TestEvaluateBestTinyCache(t *testing.T) {
	// c = 0 forces the x >= 2 clamp.
	a := smallAdversary(0)
	r, err := a.EvaluateBest(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.X < 2 {
		t.Errorf("best x = %d, want >= 2", r.X)
	}
}

func TestSweepXShape(t *testing.T) {
	a := smallAdversary(50)
	cfg := fastCfg()
	cfg.Runs = 20
	tbl, err := a.SweepX([]int{51, 100, 500, 2000, 5000}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 5 {
		t.Fatalf("table rows = %d, want 5", tbl.Rows())
	}
	xs := tbl.Column("x")
	gains := tbl.Column("max_gain")
	bounds := tbl.Column("bound")
	// Small cache: gain decreases with x.
	if gains[0] <= gains[len(gains)-1] {
		t.Errorf("gain not decreasing in x: first %v last %v", gains[0], gains[len(gains)-1])
	}
	// The Eq. 10 bound is a heavily-loaded asymptotic: it must dominate
	// the simulation at the attack optimum x = c+1 and deep in the
	// heavily-loaded regime (x - c >> n). In the lightly-loaded middle,
	// integer load granularity can push the simulated max slightly above
	// the smooth bound — the paper's figures show the same small gap —
	// so there we only require the bound to stay within a factor of 2.
	a2 := smallAdversary(50)
	for i, g := range gains {
		heavy := int(xs[i])-a2.CacheSize >= 10*a2.Nodes
		atOptimum := int(xs[i]) == a2.CacheSize+1
		switch {
		case atOptimum || heavy:
			if bounds[i] < g*0.95 {
				t.Errorf("x=%v: bound %v below simulated gain %v", xs[i], bounds[i], g)
			}
		default:
			if bounds[i] < g/2 {
				t.Errorf("x=%v: bound %v more than 2x below simulated gain %v", xs[i], bounds[i], g)
			}
		}
	}
}

func TestEvaluateGainConsistency(t *testing.T) {
	a := smallAdversary(50)
	r, err := a.Evaluate(51, fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if float64(r.MaxGain) < float64(r.MeanGain) {
		t.Errorf("max gain %v below mean gain %v", r.MaxGain, r.MeanGain)
	}
	if r.Aggregate == nil || r.Aggregate.NormMax.N() != 30 {
		t.Error("aggregate missing or wrong run count")
	}
}

func TestEvaluateInvalidX(t *testing.T) {
	a := smallAdversary(50)
	if _, err := a.Evaluate(-1, fastCfg()); err == nil {
		t.Error("negative x accepted")
	}
}
