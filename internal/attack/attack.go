// Package attack models the paper's adversary: a client that knows the
// public system parameters — the stored key set (m), the number of
// back-end nodes (n), the replication factor (d), and the front-end cache
// size (c) — but not the randomized key-to-group mapping, and who crafts
// an access pattern to maximize the load of the hottest back-end node.
//
// The package glues the theory (internal/core: what the optimal pattern
// is) to the simulator (internal/sim: what that pattern actually achieves
// against a concrete random partition), and is what the Figure 4/5
// experiments and the secattack binary drive.
package attack

import (
	"fmt"

	"securecache/internal/cluster"
	"securecache/internal/core"
	"securecache/internal/partition"
	"securecache/internal/sim"
	"securecache/internal/workload"
)

// Adversary holds the knowledge the paper grants the attacker.
type Adversary struct {
	// Items is m, the number of keys stored in the system.
	Items int
	// Nodes is n.
	Nodes int
	// Replication is d.
	Replication int
	// CacheSize is c.
	CacheSize int
	// KOverride optionally fixes the bound constant k (the paper's
	// figures use 1.2); zero selects the calibrated default.
	KOverride float64
}

// Params converts the adversary's knowledge to core.Params.
func (a Adversary) Params() core.Params {
	return core.Params{
		Nodes:       a.Nodes,
		Replication: a.Replication,
		Items:       a.Items,
		CacheSize:   a.CacheSize,
		KOverride:   a.KOverride,
	}
}

// BestX returns the theory-optimal number of keys to query (c+1 below the
// provisioning threshold, m above).
func (a Adversary) BestX() int { return a.Params().BestAdversarialX() }

// DistributionForX returns the canonical Theorem-1 attack distribution
// querying exactly x keys (equal rates, h = 1/x — what the paper's
// simulations replay). It returns an error if x is outside [1, m].
func (a Adversary) DistributionForX(x int) (workload.Distribution, error) {
	if x < 1 || x > a.Items {
		return nil, fmt.Errorf("attack: x = %d outside [1, m=%d]", x, a.Items)
	}
	return workload.NewAdversarial(a.Items, x, 0), nil
}

// BestDistribution returns the attack distribution at the theory-optimal
// x.
func (a Adversary) BestDistribution() (workload.Distribution, error) {
	return a.DistributionForX(a.BestX())
}

// EvalConfig fixes the execution parameters of an empirical attack
// evaluation.
type EvalConfig struct {
	// Rate is the total attack rate R (> 0).
	Rate float64
	// Runs is the number of fresh random partitions to attack (0 = 200).
	Runs int
	// Seed roots all per-run randomness.
	Seed uint64
	// Policy is the cluster's replica-selection policy (default
	// least-loaded).
	Policy cluster.Policy
	// Partitioner is the partitioning scheme (default hash).
	Partitioner partition.Kind
}

// Result is the outcome of one empirical attack evaluation.
type Result struct {
	// X is the number of keys queried.
	X int
	// Aggregate is the full multi-run aggregate.
	Aggregate *sim.Aggregate
	// MaxGain is the max over runs of the normalized max load — the
	// statistic the paper's Figure 3 reports ("max of the maximum load").
	MaxGain core.AttackGain
	// MeanGain is the mean over runs.
	MeanGain core.AttackGain
}

// Evaluate attacks with exactly x queried keys and measures the achieved
// gains.
func (a Adversary) Evaluate(x int, cfg EvalConfig) (Result, error) {
	dist, err := a.DistributionForX(x)
	if err != nil {
		return Result{}, err
	}
	agg, err := sim.Run(sim.Scenario{
		Nodes:       a.Nodes,
		Replication: a.Replication,
		CacheSize:   a.CacheSize,
		Dist:        dist,
		Rate:        cfg.Rate,
		Runs:        cfg.Runs,
		Seed:        cfg.Seed,
		Policy:      cfg.Policy,
		Partitioner: cfg.Partitioner,
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		X:         x,
		Aggregate: agg,
		MaxGain:   core.AttackGain(agg.MaxOfNormMax()),
		MeanGain:  core.AttackGain(agg.NormMax.Mean()),
	}, nil
}

// EvaluateBest empirically determines the adversary's best move the way
// the paper's Figure 5 does: try the two theory candidates — the smallest
// uncacheable attack x = c+1 and the full key space x = m — and return
// the one with the higher achieved (max-over-runs) gain.
func (a Adversary) EvaluateBest(cfg EvalConfig) (Result, error) {
	candidates := []int{a.CacheSize + 1, a.Items}
	if candidates[0] < 2 {
		candidates[0] = 2
	}
	if candidates[0] >= a.Items {
		candidates = candidates[1:]
	}
	var best Result
	for i, x := range candidates {
		r, err := a.Evaluate(x, cfg)
		if err != nil {
			return Result{}, err
		}
		if i == 0 || r.MaxGain > best.MaxGain {
			best = r
		}
	}
	return best, nil
}

// SweepX evaluates a list of x values and returns a table with columns
// x, max gain, mean gain, and the Eq. 10 bound — the data behind
// Figure 3.
func (a Adversary) SweepX(xs []int, cfg EvalConfig) (*sim.Table, error) {
	p := a.Params()
	tbl := sim.NewTable(
		fmt.Sprintf("normalized max load vs x (n=%d d=%d c=%d, %d runs)",
			a.Nodes, a.Replication, a.CacheSize, cfg.Runs),
		"x", "max_gain", "mean_gain", "bound")
	for _, x := range xs {
		r, err := a.Evaluate(x, cfg)
		if err != nil {
			return nil, err
		}
		bound := 0.0
		if x > a.CacheSize && x >= 2 {
			bound = p.BoundNormalizedMaxLoad(x)
		}
		tbl.AddRow(float64(x), float64(r.MaxGain), float64(r.MeanGain), bound)
	}
	return tbl, nil
}
