// Package experiments contains one driver per figure of the paper's
// evaluation (§IV), plus the ablations DESIGN.md calls out. Every driver
// returns a sim.Table whose rows are the series the corresponding figure
// plots; the secexperiments binary renders them and bench_test.go runs
// scaled-down versions.
//
// Paper defaults (§IV): n = 1000 back-end nodes, replication d = 3,
// m = 10^5 stored keys, client rate R = 10^5 qps, 200 runs per point,
// bound constant k = 1.2, least-loaded replica selection, perfect cache.
package experiments

import (
	"fmt"
	"math"

	"securecache/internal/attack"
	"securecache/internal/cluster"
	"securecache/internal/core"
	"securecache/internal/partition"
	"securecache/internal/sim"
	"securecache/internal/workload"
)

// Config holds the shared experiment parameters.
type Config struct {
	// Nodes is the base cluster size n.
	Nodes int
	// Replication is d.
	Replication int
	// Items is the stored key count m.
	Items int
	// Rate is the client rate R.
	Rate float64
	// Runs is the repetitions per sweep point.
	Runs int
	// K is the bound constant of Eq. 10 (the paper fits k = 1.2).
	K float64
	// Seed roots all randomness.
	Seed uint64
}

// Default returns the paper's §IV parameters.
func Default() Config {
	return Config{
		Nodes:       1000,
		Replication: 3,
		Items:       100000,
		Rate:        100000,
		Runs:        200,
		K:           1.2,
		Seed:        2013, // ICDCS'13
	}
}

// Small returns a scaled-down configuration (n/10, m/20, fewer runs) that
// preserves every qualitative regime: the provisioning threshold
// c* = n·k+1 = 121 still sits well inside the swept cache range. Used by
// tests and benchmarks.
func Small() Config {
	return Config{
		Nodes:       100,
		Replication: 3,
		Items:       5000,
		Rate:        10000,
		Runs:        30,
		K:           1.2,
		Seed:        2013,
	}
}

func (c Config) validate() error {
	if c.Nodes < 2 || c.Replication < 2 || c.Items < 1 || c.Rate <= 0 || c.Runs < 1 {
		return fmt.Errorf("experiments: invalid config %+v", c)
	}
	if c.K == 0 {
		return fmt.Errorf("experiments: K must be set (the paper uses 1.2)")
	}
	return nil
}

func (c Config) adversary(cacheSize int) attack.Adversary {
	return attack.Adversary{
		Items:       c.Items,
		Nodes:       c.Nodes,
		Replication: c.Replication,
		CacheSize:   cacheSize,
		KOverride:   c.K,
	}
}

func (c Config) evalConfig() attack.EvalConfig {
	return attack.EvalConfig{Rate: c.Rate, Runs: c.Runs, Seed: c.Seed}
}

// geomSweep returns ~points geometrically spaced integers covering
// [lo, hi], always including both endpoints, strictly increasing.
func geomSweep(lo, hi, points int) []int {
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		return []int{lo}
	}
	if points < 2 {
		points = 2
	}
	out := make([]int, 0, points)
	ratio := float64(hi) / float64(lo)
	for i := 0; i < points; i++ {
		v := int(float64(lo) * math.Pow(ratio, float64(i)/float64(points-1)))
		if len(out) > 0 && v <= out[len(out)-1] {
			v = out[len(out)-1] + 1
		}
		if v > hi {
			v = hi
		}
		out = append(out, v)
		if v == hi {
			break
		}
	}
	if out[len(out)-1] != hi {
		out = append(out, hi)
	}
	return out
}

// Fig3a reproduces Figure 3(a): normalized max workload vs the number of
// queried keys x, with a small cache (c = n/5, the paper's 200 for
// n = 1000). The simulated max-over-runs gain decreases with x and the
// adversary profits from querying just over c keys; the Eq. 10 bound with
// the fitted k tracks the curve from above at the optimum and in the
// heavily loaded regime.
func Fig3a(cfg Config) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := cfg.Nodes / 5
	return fig3(cfg, c, "Fig 3(a)")
}

// Fig3b reproduces Figure 3(b): same sweep with a large cache (c = 2n,
// the paper's 2000). The gain now increases with x toward (but below) 1:
// the adversary's best move is to query the whole key space and still
// fails.
func Fig3b(cfg Config) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := 2 * cfg.Nodes
	return fig3(cfg, c, "Fig 3(b)")
}

func fig3(cfg Config, cacheSize int, label string) (*sim.Table, error) {
	adv := cfg.adversary(cacheSize)
	xs := geomSweep(cacheSize+1, cfg.Items, 14)
	tbl, err := adv.SweepX(xs, cfg.evalConfig())
	if err != nil {
		return nil, err
	}
	tbl.Title = fmt.Sprintf("%s: normalized max load vs x (n=%d d=%d c=%d m=%d R=%g runs=%d k=%g)",
		label, cfg.Nodes, cfg.Replication, cacheSize, cfg.Items, cfg.Rate, cfg.Runs, cfg.K)
	return tbl, nil
}

// Fig4 reproduces Figure 4: normalized max workload vs the number of
// back-end nodes under three access patterns — uniform over all keys,
// Zipf(1.01), and the adversarial best strategy — with a fixed cache
// c = base n / 10 (the paper's 100). Uniform stays flat near 1, Zipf is
// the cheapest to serve (the cache absorbs the skew), and the adversarial
// curve grows once n·k + 1 exceeds c.
func Fig4(cfg Config) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cacheSize := cfg.Nodes / 10
	nodeSweep := geomSweep(cfg.Nodes/10, 2*cfg.Nodes, 7)
	tbl := sim.NewTable(
		fmt.Sprintf("Fig 4: normalized max load vs n (c=%d d=%d m=%d R=%g runs=%d)",
			cacheSize, cfg.Replication, cfg.Items, cfg.Rate, cfg.Runs),
		"n", "uniform", "zipf_1.01", "adversarial")
	zipf := workload.NewZipf(cfg.Items, 1.01)
	uniform := workload.NewUniform(cfg.Items, cfg.Items)
	for _, n := range nodeSweep {
		if n < cfg.Replication {
			continue
		}
		row := make([]float64, 0, 4)
		row = append(row, float64(n))
		for _, dist := range []workload.Distribution{uniform, zipf} {
			agg, err := sim.Run(sim.Scenario{
				Nodes:       n,
				Replication: cfg.Replication,
				CacheSize:   cacheSize,
				Dist:        dist,
				Rate:        cfg.Rate,
				Runs:        cfg.Runs,
				Seed:        cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, agg.MaxOfNormMax())
		}
		advCfg := cfg
		advCfg.Nodes = n
		res, err := advCfg.adversary(cacheSize).EvaluateBest(advCfg.evalConfig())
		if err != nil {
			return nil, err
		}
		row = append(row, float64(res.MaxGain))
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// Fig5 computes the shared sweep behind Figures 5(a) and 5(b): for each
// cache size, the adversary's best achievable normalized max load and the
// number of keys that best attack queries. The returned table has columns
// c, best_gain, bound, best_x, and the analytic threshold is reported in
// the title.
func Fig5(cfg Config) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cstar := core.Params{
		Nodes:       cfg.Nodes,
		Replication: cfg.Replication,
		Items:       cfg.Items,
		KOverride:   cfg.K,
	}.RequiredCacheSize()
	sweep := geomSweep(cfg.Nodes/50, 4*cfg.Nodes, 13)
	tbl := sim.NewTable(
		fmt.Sprintf("Fig 5: best adversarial gain and queried keys vs cache size (n=%d d=%d m=%d runs=%d, analytic c*=%d)",
			cfg.Nodes, cfg.Replication, cfg.Items, cfg.Runs, cstar),
		"c", "best_gain", "bound", "best_x")
	for _, c := range sweep {
		adv := cfg.adversary(c)
		res, err := adv.EvaluateBest(cfg.evalConfig())
		if err != nil {
			return nil, err
		}
		p := adv.Params()
		boundX := p.BestAdversarialX()
		if boundX < 2 {
			boundX = 2
		}
		bound := 0.0
		if boundX > c {
			bound = p.BoundNormalizedMaxLoad(boundX)
		}
		tbl.AddRow(float64(c), float64(res.MaxGain), bound, float64(res.X))
	}
	return tbl, nil
}

// Fig5a reproduces Figure 5(a): best achievable normalized max load vs
// cache size, with the Eq. 10 bound. The curve decreases in c and crosses
// 1.0 at a critical point close to the analytic c* = n·k + 1.
func Fig5a(cfg Config) (*sim.Table, error) {
	full, err := Fig5(cfg)
	if err != nil {
		return nil, err
	}
	tbl := sim.NewTable(full.Title+" — (a) best gain", "c", "best_gain", "bound")
	for i := 0; i < full.Rows(); i++ {
		row := full.Row(i)
		tbl.AddRow(row[0], row[1], row[2])
	}
	return tbl, nil
}

// Fig5b reproduces Figure 5(b): the number of keys the best adversary
// queries vs cache size. Below the critical point the adversary queries
// c+1 keys; above it, the entire key space m.
func Fig5b(cfg Config) (*sim.Table, error) {
	full, err := Fig5(cfg)
	if err != nil {
		return nil, err
	}
	tbl := sim.NewTable(full.Title+" — (b) queried keys", "c", "best_x")
	for i := 0; i < full.Rows(); i++ {
		row := full.Row(i)
		tbl.AddRow(row[0], row[3])
	}
	return tbl, nil
}

// CriticalPoint empirically locates the cache size at which the best
// adversarial gain stops exceeding 1.0 (the crossing the paper's Fig 5(a)
// marks) and returns it together with the analytic c* for comparison.
func CriticalPoint(cfg Config) (empirical, analytic int, err error) {
	if err := cfg.validate(); err != nil {
		return 0, 0, err
	}
	analytic = core.Params{
		Nodes:       cfg.Nodes,
		Replication: cfg.Replication,
		Items:       cfg.Items,
		KOverride:   cfg.K,
	}.RequiredCacheSize()
	gain := func(c int) float64 {
		res, gerr := cfg.adversary(c).EvaluateBest(cfg.evalConfig())
		if gerr != nil {
			err = gerr
			return 0
		}
		return float64(res.MaxGain)
	}
	empirical, cerr := core.CriticalPoint(1, 4*cfg.Nodes, 1.0, gain)
	if err != nil {
		return 0, 0, err
	}
	if cerr != nil {
		return 0, 0, cerr
	}
	return empirical, analytic, nil
}

// ReplicationSweep is an ablation beyond the paper: the attack gain at a
// fixed sub-threshold cache and the required cache size c*, as the
// replication factor d varies. More replication tightens the bound
// (ln ln n / ln d shrinks), so c* decreases in d.
func ReplicationSweep(cfg Config, ds []int) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(ds) == 0 {
		ds = []int{2, 3, 4, 5}
	}
	cacheSize := cfg.Nodes / 5
	tbl := sim.NewTable(
		fmt.Sprintf("Ablation: replication factor sweep (n=%d c=%d m=%d runs=%d)",
			cfg.Nodes, cacheSize, cfg.Items, cfg.Runs),
		"d", "gap_term", "required_c", "best_gain")
	for _, d := range ds {
		if d < 2 || d > cfg.Nodes {
			return nil, fmt.Errorf("experiments: replication %d out of range", d)
		}
		dcfg := cfg
		dcfg.Replication = d
		// Use the theoretical k for cross-d comparisons: the fitted 1.2
		// was calibrated for d=3 only.
		p := core.Params{Nodes: cfg.Nodes, Replication: d, Items: cfg.Items}
		adv := dcfg.adversary(cacheSize)
		res, err := adv.EvaluateBest(dcfg.evalConfig())
		if err != nil {
			return nil, err
		}
		tbl.AddRow(float64(d), p.Gap(), float64(p.RequiredCacheSize()), float64(res.MaxGain))
	}
	return tbl, nil
}

// PolicyAblation compares replica-selection policies under the best
// adversarial pattern at a fixed sub-threshold cache: least-loaded (the
// paper's model), random replica, and split. Least-loaded should win.
func PolicyAblation(cfg Config) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cacheSize := cfg.Nodes / 5
	// In this regime the best attack queries c+1 keys.
	x := cacheSize + 1
	dist := workload.NewAdversarial(cfg.Items, x, 0)
	tbl := sim.NewTable(
		fmt.Sprintf("Ablation: replica-selection policy under attack (n=%d d=%d c=%d x=%d runs=%d)",
			cfg.Nodes, cfg.Replication, cacheSize, x, cfg.Runs),
		"policy", "max_gain", "mean_gain")
	for i, policy := range []cluster.Policy{cluster.PolicyLeastLoaded, cluster.PolicyRandomReplica, cluster.PolicySplit} {
		agg, err := sim.Run(sim.Scenario{
			Nodes:       cfg.Nodes,
			Replication: cfg.Replication,
			CacheSize:   cacheSize,
			Dist:        dist,
			Rate:        cfg.Rate,
			Runs:        cfg.Runs,
			Seed:        cfg.Seed,
			Policy:      policy,
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(float64(i), agg.MaxOfNormMax(), agg.NormMax.Mean())
	}
	return tbl, nil
}

// PolicyNames maps PolicyAblation row indices to policy names (tables are
// numeric; callers label rows with this).
var PolicyNames = []string{string(cluster.PolicyLeastLoaded), string(cluster.PolicyRandomReplica), string(cluster.PolicySplit)}

// PartitionerAblation confirms the results are partitioner-independent:
// the attack gain at a fixed sub-threshold cache under hash, ring, and
// rendezvous partitioning should agree within noise.
func PartitionerAblation(cfg Config) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cacheSize := cfg.Nodes / 5
	adv := cfg.adversary(cacheSize)
	x := adv.BestX()
	dist, err := adv.DistributionForX(x)
	if err != nil {
		return nil, err
	}
	tbl := sim.NewTable(
		fmt.Sprintf("Ablation: partitioner scheme under attack (n=%d d=%d c=%d x=%d runs=%d)",
			cfg.Nodes, cfg.Replication, cacheSize, x, cfg.Runs),
		"partitioner", "max_gain", "mean_gain")
	for i, kind := range []partition.Kind{partition.KindHash, partition.KindRing, partition.KindRendezvous} {
		agg, err := sim.Run(sim.Scenario{
			Nodes:       cfg.Nodes,
			Replication: cfg.Replication,
			CacheSize:   cacheSize,
			Dist:        dist,
			Rate:        cfg.Rate,
			Runs:        cfg.Runs,
			Seed:        cfg.Seed,
			Partitioner: kind,
		})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(float64(i), agg.MaxOfNormMax(), agg.NormMax.Mean())
	}
	return tbl, nil
}

// PartitionerNames labels PartitionerAblation rows.
var PartitionerNames = []string{string(partition.KindHash), string(partition.KindRing), string(partition.KindRendezvous)}
