package experiments

import "testing"

func TestTwoLayerBoundsHold(t *testing.T) {
	tbl, err := TwoLayer(tiny())
	if err != nil {
		t.Fatal(err)
	}
	ks := tbl.Column("k")
	xs := tbl.Column("x")
	fMax := tbl.Column("front_max")
	fMean := tbl.Column("front_mean")
	fBound := tbl.Column("front_bound")
	fOne := tbl.Column("front_onechoice")
	bMax := tbl.Column("back_max")
	bMean := tbl.Column("back_mean")
	bBound := tbl.Column("back_bound")
	seen := map[int]bool{}
	for i := range ks {
		k, x := int(ks[i]), int(xs[i])
		seen[k] = true
		// The bounds are on E[L_max]: the mean-over-runs statistic must
		// sit below them at every point of both layers. The backend
		// bound is computed with the paper's FITTED k = 1.2, which at
		// c = c* collapses to exactly 1.0 while the true expectation
		// hovers a hair above — the same boundary noise CriticalPoint
		// tolerates — so allow a few percent of slack.
		if fMean[i] > 1.05*fBound[i] {
			t.Errorf("k=%d x=%d: front_mean %.4f exceeds tier bound %.4f", k, x, fMean[i], fBound[i])
		}
		if bMean[i] > 1.05*bBound[i] {
			t.Errorf("k=%d x=%d: back_mean %.4f exceeds Eq. 10 bound %.4f", k, x, bMean[i], bBound[i])
		}
		// The max-over-runs tail statistic may poke above an expectation
		// bound, but only by run-to-run noise — the same factor band the
		// paper uses when calling the bound tight.
		if fMax[i] > 1.5*fBound[i] {
			t.Errorf("k=%d x=%d: front_max %.4f far above tier bound %.4f", k, x, fMax[i], fBound[i])
		}
		if bMax[i] > 1.5*bBound[i] {
			t.Errorf("k=%d x=%d: back_max %.4f far above Eq. 10 bound %.4f", k, x, bMax[i], bBound[i])
		}
		if fMax[i] < 1 {
			t.Errorf("k=%d x=%d: front_max %.4f below 1; normalization broken", k, x, fMax[i])
		}
	}
	for _, k := range TierWidths {
		if !seen[k] {
			t.Errorf("tier width %d missing from the sweep", k)
		}
	}

	// The two-choice policy must be load-bearing: against the naive
	// first-candidate client the topology-aware attack concentrates
	// ~k/2 of the even share on the victim for wide tiers.
	for i := range ks {
		if k := int(ks[i]); k >= 4 && fOne[i] < 1.5 {
			t.Errorf("k=%d x=%d: one-choice client load %.4f; topology-aware attack should overload it", k, int(xs[i]), fOne[i])
		}
		if fOne[i] < fMax[i]-1e-9 {
			t.Errorf("k=%d x=%d: one-choice %.4f beat two-choice %.4f", int(ks[i]), int(xs[i]), fOne[i], fMax[i])
		}
	}
}

func TestTwoLayerValidatesConfig(t *testing.T) {
	if _, err := TwoLayer(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	// A key space too small for the widest tier's candidate pool must be
	// rejected, not silently truncated.
	cfg := tiny()
	cfg.Items = 200 // c*+1 = 122 > 3*200/16
	if _, err := TwoLayer(cfg); err == nil {
		t.Fatal("undersized key space accepted")
	}
}
