package experiments

import (
	"fmt"

	"securecache/internal/ballsbins"
	"securecache/internal/core"
	"securecache/internal/disttier"
	"securecache/internal/partition"
	"securecache/internal/sim"
	"securecache/internal/xrand"
)

// TierWidths is the tier-width sweep of the two-layer experiment.
var TierWidths = []int{1, 2, 4, 8}

// tierKPrime is the fitted Θ(1) constant of the tier-layer bound, the
// same role k' = -0.559 plays in the backend bound: the balanced-
// allocations gap is ln ln k / ln 2 + Θ(1), and the constant is fitted
// so the plotted bound majorizes the realized max-over-runs statistic
// (the paper fits its overall k = 1.2 the same way).
const tierKPrime = 2.0

// tierBound is the tier-layer analogue of Eq. 10. The adversary spreads
// rate R over x keys (R/x each); the two-choice client realizes a
// balanced allocation of those keys onto the k frontends, so the loaded
// frontend holds at most x/k + lnln k/ln 2 + Θ(1) of them. Normalizing
// its load by the even share R/k:
//
//	L_front_max / (R/k) <= 1 + k·(lnln k / ln 2 + k'_tier) / x
//
// — the same "1 + additive term vanishing in x" shape as the backend
// bound, with the tier width k in the role of n. A 1-wide tier is
// trivially balanced.
func tierBound(k, x int) float64 {
	if k < 2 {
		return 1
	}
	return 1 + float64(k)*(ballsbins.GapTerm(k, 2)+tierKPrime)/float64(x)
}

// TwoLayer runs the two-layer (DistCache-style) experiment: k tier
// frontends in front of the n backends, an adversary who KNOWS the
// public tier topology, and the power-of-two-choices client policy.
//
// The adversary picks the x keys that all share one victim frontend as a
// candidate — the strongest concentration the public tier mapping
// permits — and spreads its rate evenly over them. The table reports,
// per (k, x), both normalized max-load statistics at each layer — the
// mean over runs (the E[L_max] the bounds are about) and the paper's
// max-over-runs, which can poke above an expectation bound by tail
// noise — next to each layer's bound:
//
//   - front_max vs front_bound: the two-choice client keeps the victim
//     within the tier-layer balanced-allocations bound (tierBound);
//     front_onechoice shows the same attack against a naive
//     first-candidate client, which concentrates ~k/2 of the even share
//     on the victim — the two-choice policy is load-bearing.
//   - back_max vs back_bound: what leaks past the tier's caches (each
//     frontend holds its CacheShare(c*, k) slice of the provision)
//     stays within Eq. 10 at c = c*, because the tier mapping is
//     independent of the secret backend partition — the topology-aware
//     key selection carries no information about backend placement.
func TwoLayer(cfg Config) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	params := core.Params{
		Nodes:       cfg.Nodes,
		Replication: cfg.Replication,
		Items:       cfg.Items,
		KOverride:   cfg.K,
	}
	cstar := params.RequiredCacheSize()
	tbl := sim.NewTable(
		fmt.Sprintf("Two-layer tier: normalized max load at both layers vs topology-aware attack (n=%d d=%d c*=%d m=%d runs=%d k=%g)",
			cfg.Nodes, cfg.Replication, cstar, cfg.Items, cfg.Runs, cfg.K),
		"k", "x", "front_max", "front_mean", "front_bound", "front_onechoice", "back_max", "back_mean", "back_bound")
	backParams := params
	backParams.CacheSize = cstar
	for _, k := range TierWidths {
		share := disttier.CacheShare(cstar, k)
		// The adversary can only query keys that exist; its victim is a
		// candidate for ~2/k of the m-key space, so cap the sweep at 75%
		// of that expectation to keep every run's pool sufficient.
		hi := cfg.Items
		if k > 2 {
			hi = 3 * cfg.Items / (2 * k)
		}
		if hi <= cstar+1 {
			return nil, fmt.Errorf("experiments: TwoLayer k=%d has no attackable x in [%d, %d]; raise Items", k, cstar+1, hi)
		}
		for _, x := range geomSweep(cstar+1, hi, 5) {
			var fMax, fSum, fOneMax, bMax, bSum float64
			for run := 0; run < cfg.Runs; run++ {
				seed := xrand.Derive(cfg.Seed, 0x7153, uint64(k), uint64(run))
				fN, fOne, bN, err := twoLayerOnce(cfg.Nodes, cfg.Replication, k, cfg.Items, share, x, seed)
				if err != nil {
					return nil, err
				}
				fSum += fN
				bSum += bN
				if fN > fMax {
					fMax = fN
				}
				if fOne > fOneMax {
					fOneMax = fOne
				}
				if bN > bMax {
					bMax = bN
				}
			}
			runs := float64(cfg.Runs)
			tbl.AddRow(float64(k), float64(x),
				fMax, fSum/runs, tierBound(k, x), fOneMax,
				bMax, bSum/runs, backParams.BoundNormalizedMaxLoad(x))
		}
	}
	return tbl, nil
}

// twoLayerOnce simulates one run of the topology-aware attack: the
// adversary selects x keys sharing frontend 0 as a candidate, the
// two-choice client routes each key to its less-loaded candidate (keys
// stick, as on the real client where hints converge), every frontend
// absorbs up to its share of the hottest assigned keys, and the leak
// lands on the backends by the secret d-choice partition. Rates cancel
// in the normalized statistics, so the per-key rate never appears.
func twoLayerOnce(n, d, k, m, share, x int, seed uint64) (frontNorm, frontOneNorm, backNorm float64, err error) {
	ids := make([]int, k)
	for i := range ids {
		ids[i] = i
	}
	tm, err := disttier.NewMap(ids, xrand.Derive(seed, 0x7E))
	if err != nil {
		return 0, 0, 0, err
	}
	const victim = 0
	keys := make([]uint64, 0, x)
	for id := uint64(0); id < uint64(m) && len(keys) < x; id++ {
		if tm.IsCandidate(id, victim) {
			keys = append(keys, id)
		}
	}
	if len(keys) < x {
		return 0, 0, 0, fmt.Errorf("experiments: only %d of %d keys have frontend %d as candidate, need x=%d",
			len(keys), m, victim, x)
	}
	rng := xrand.New(xrand.Derive(seed, 0x5F))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })

	// Tier layer: greedy two-choice over the candidates vs the naive
	// first-candidate client, same key stream.
	counts := make([]int, k)
	countsOne := make([]int, k)
	frontKeys := make([][]uint64, k)
	for _, key := range keys {
		a, b := tm.Candidates(key)
		countsOne[a]++
		pick := a
		if counts[b] < counts[a] {
			pick = b
		}
		counts[pick]++
		frontKeys[pick] = append(frontKeys[pick], key)
	}
	maxFront, maxFrontOne := 0, 0
	var leaked []uint64
	for fid := 0; fid < k; fid++ {
		if counts[fid] > maxFront {
			maxFront = counts[fid]
		}
		if countsOne[fid] > maxFrontOne {
			maxFrontOne = countsOne[fid]
		}
		if len(frontKeys[fid]) > share {
			leaked = append(leaked, frontKeys[fid][share:]...)
		}
	}
	frontNorm = float64(maxFront) * float64(k) / float64(x)
	frontOneNorm = float64(maxFrontOne) * float64(k) / float64(x)

	// Backend layer: the leak is partitioned by the independent secret
	// mapping; sticky least-loaded replica choice, as everywhere else.
	part := partition.NewHash(n, d, xrand.Derive(seed, 0xB5))
	backCounts := make([]int, n)
	group := make([]int, 0, d)
	for _, key := range leaked {
		group = part.GroupAppend(group[:0], key)
		node := group[0]
		for _, cand := range group[1:] {
			if backCounts[cand] < backCounts[node] {
				node = cand
			}
		}
		backCounts[node]++
	}
	maxBack := 0
	for _, c := range backCounts {
		if c > maxBack {
			maxBack = c
		}
	}
	backNorm = float64(maxBack) * float64(n) / float64(x)
	return frontNorm, frontOneNorm, backNorm, nil
}
