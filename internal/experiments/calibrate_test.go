package experiments

import "testing"

func TestFitKPaperRegime(t *testing.T) {
	// n=1000, d=3, heavily loaded: the realized gap should be a small
	// constant in the neighbourhood of the paper's fitted k = 1.2 and
	// below the loose theory term + O(1).
	res, err := FitK(1000, 3, 100, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.KFitMean < 0.5 || res.KFitMean > 3 {
		t.Errorf("fitted mean k = %v, want a small constant near 1-2", res.KFitMean)
	}
	if res.KFitMax < res.KFitMean {
		t.Errorf("max-fit %v below mean-fit %v", res.KFitMax, res.KFitMean)
	}
	if res.GapTheory <= 0 {
		t.Errorf("theory gap %v", res.GapTheory)
	}
	// The observed gap must not exceed theory by more than the Θ(1) the
	// bound absorbs.
	if res.GapMaxObserved > res.GapTheory+2.5 {
		t.Errorf("observed gap %v far above theory %v", res.GapMaxObserved, res.GapTheory)
	}
}

func TestFitKMoreChoicesSmallerGap(t *testing.T) {
	d2, err := FitK(500, 2, 50, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := FitK(500, 4, 50, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d4.GapMeanObserved > d2.GapMeanObserved {
		t.Errorf("gap with d=4 (%v) above d=2 (%v)", d4.GapMeanObserved, d2.GapMeanObserved)
	}
}

func TestFitKValidation(t *testing.T) {
	for name, args := range map[string][4]int{
		"n too small": {1, 2, 10, 5},
		"d too small": {100, 1, 10, 5},
		"d > n":       {10, 11, 10, 5},
		"no balls":    {100, 3, 0, 5},
		"no runs":     {100, 3, 10, 0},
	} {
		if _, err := FitK(args[0], args[1], args[2], args[3], 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
