package experiments

import (
	"fmt"

	"securecache/internal/cache"
	"securecache/internal/core"
	"securecache/internal/sim"
	"securecache/internal/workload"
	"securecache/internal/xrand"
)

// ReplicationBenefit quantifies the paper's improvement over the Fan et
// al. (SoCC'11) single-choice baseline it extends: the cache size each
// scheme needs to pin the worst-case attack gain at or below a target.
//
// For the replicated system the requirement is the paper's
// c* = ceil(n·k + 1) = O(n · ln ln n / ln d), guaranteeing gain <= 1.
// The single-choice baseline cannot guarantee gain <= 1 at all; the table
// reports its requirement for the relaxed target gain <= 1.1, which is
// Θ(n·ln n) — the asymptotic gap the paper's title result closes.
//
// Rows: scheme index (0 = single-choice baseline, i >= 1 per replication
// factor), columns: d (1 for baseline), required cache entries, entries
// per node.
func ReplicationBenefit(cfg Config, ds []int) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(ds) == 0 {
		ds = []int{2, 3, 5}
	}
	const relaxedTarget = 1.1
	tbl := sim.NewTable(
		fmt.Sprintf("Baseline comparison: cache required to neutralize the worst attack (n=%d m=%d; single-choice target gain<=%.1f, replicated target gain<=1)",
			cfg.Nodes, cfg.Items, relaxedTarget),
		"d", "required_c", "entries_per_node")

	sc := core.SingleChoiceParams{Nodes: cfg.Nodes, Items: cfg.Items}
	scRequired, err := sc.RequiredCacheForGain(relaxedTarget)
	if err != nil {
		return nil, err
	}
	tbl.AddRow(1, float64(scRequired), float64(scRequired)/float64(cfg.Nodes))

	for _, d := range ds {
		p := core.Params{Nodes: cfg.Nodes, Replication: d, Items: cfg.Items}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		cstar := p.RequiredCacheSize()
		tbl.AddRow(float64(d), float64(cstar), float64(cstar)/float64(cfg.Nodes))
	}
	return tbl, nil
}

// AdaptiveAttackNames labels AdaptiveAttackAblation rows.
var AdaptiveAttackNames = []string{"perfect", "lru", "lfu", "slru", "tinylfu", "arc"}

// AdaptiveAttackAblation extends the cache-policy ablation with an
// attacker that adapts to the replacement policy: besides the static
// Theorem-1 pattern (optimal against a perfect cache), it replays a
// *cyclic* scan over c+1 keys — the classic LRU-killer sequence, which
// makes every query a miss under recency-based policies. The reported
// number per policy is the worst (max) normalized node load across both
// attacks and all runs.
//
// The punchline the table shows: LRU's apparent immunity to the static
// attack (its churn diffuses the leak) evaporates under the cyclic
// attack, while the provisioning rule — which assumed the worst case all
// along — is unaffected.
func AdaptiveAttackAblation(cfg Config, queriesPerRun int) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if queriesPerRun < 1 {
		return nil, fmt.Errorf("experiments: queriesPerRun = %d", queriesPerRun)
	}
	cacheSize := cfg.Nodes / 5
	x := cacheSize + 1
	static, err := cfg.adversary(cacheSize).DistributionForX(x)
	if err != nil {
		return nil, err
	}
	tbl := sim.NewTable(
		fmt.Sprintf("Ablation: adaptive attacker vs cache policy (n=%d d=%d c=%d x=%d queries=%d runs=%d)",
			cfg.Nodes, cfg.Replication, cacheSize, x, queriesPerRun, cfg.Runs),
		"policy", "static_max_load", "cyclic_max_load", "cyclic_hit_ratio")
	for i, name := range AdaptiveAttackNames {
		var staticMax, cyclicMax, cyclicHits float64
		for run := 0; run < cfg.Runs; run++ {
			c1 := buildAblationCache(name, cacheSize, static)
			res, err := DiscreteRun(cfg.Nodes, cfg.Replication, c1, static, queriesPerRun,
				xrand.Derive(cfg.Seed, 0xA1, uint64(i), uint64(run)))
			if err != nil {
				return nil, err
			}
			if res.NormMax > staticMax {
				staticMax = res.NormMax
			}
			c2 := buildAblationCache(name, cacheSize, static)
			cyc, err := DiscreteRunStream(cfg.Nodes, cfg.Replication, c2,
				func(q int) int { return q % x }, queriesPerRun,
				xrand.Derive(cfg.Seed, 0xA2, uint64(i), uint64(run)))
			if err != nil {
				return nil, err
			}
			if cyc.NormMax > cyclicMax {
				cyclicMax = cyc.NormMax
			}
			cyclicHits += cyc.HitRatio
		}
		tbl.AddRow(float64(i), staticMax, cyclicMax, cyclicHits/float64(cfg.Runs))
	}
	return tbl, nil
}

// buildAblationCache constructs a named cache policy for the ablations;
// the perfect cache pins the top keys of dist.
func buildAblationCache(name string, capacity int, dist workload.Distribution) cache.Cache {
	switch name {
	case "perfect":
		set := make(map[uint64]bool, capacity)
		for k := range workload.TopC(dist, capacity) {
			set[uint64(k)] = true
		}
		return cache.NewPerfect(set)
	case "lru":
		return cache.NewLRU(capacity)
	case "lfu":
		return cache.NewLFU(capacity)
	case "slru":
		return cache.NewSLRU(capacity)
	case "tinylfu":
		return cache.NewTinyLFU(capacity, 0)
	case "arc":
		return cache.NewARC(capacity)
	default:
		panic(fmt.Sprintf("experiments: unknown cache policy %q", name))
	}
}
