package experiments

import (
	"fmt"

	"securecache/internal/ballsbins"
	"securecache/internal/stats"
	"securecache/internal/xrand"
)

// FitResult is the outcome of calibrating the bound constant k.
type FitResult struct {
	// GapTheory is ln ln n / ln d.
	GapTheory float64
	// GapMeanObserved is the mean over runs of (max bin count − M/N) in
	// the heavily loaded regime — the realized additive gap.
	GapMeanObserved float64
	// GapMaxObserved is the max over runs (the statistic the paper's
	// figures use).
	GapMaxObserved float64
	// KFitMean and KFitMax are the k values that make Eq. 8 exact for the
	// mean and max statistics respectively.
	KFitMean float64
	KFitMax  float64
}

// FitK empirically calibrates the constant k of Eq. 8 the way the paper
// did before fixing k = 1.2: allocate ballsPerBin·n balls into n bins via
// least-loaded-of-d and measure the additive gap above the mean. The
// fitted k is the gap a bound user should plug in: with k >= KFitMax the
// Eq. 10 curve dominates the corresponding simulation statistic in the
// heavily loaded regime.
func FitK(n, d, ballsPerBin, runs int, seed uint64) (FitResult, error) {
	if n < 2 || d < 2 || d > n {
		return FitResult{}, fmt.Errorf("experiments: FitK with n=%d d=%d", n, d)
	}
	if ballsPerBin < 1 || runs < 1 {
		return FitResult{}, fmt.Errorf("experiments: FitK with ballsPerBin=%d runs=%d", ballsPerBin, runs)
	}
	balls := ballsPerBin * n
	var gap stats.Summary
	for run := 0; run < runs; run++ {
		rng := xrand.New(xrand.Derive(seed, 0xF17, uint64(run)))
		a := ballsbins.Assign(balls, n, ballsbins.UniformChoice(n, d, rng))
		gap.Add(float64(a.MaxCount()) - float64(balls)/float64(n))
	}
	theory := ballsbins.GapTerm(n, d)
	return FitResult{
		GapTheory:       theory,
		GapMeanObserved: gap.Mean(),
		GapMaxObserved:  gap.Max(),
		KFitMean:        gap.Mean(),
		KFitMax:         gap.Max(),
	}, nil
}
