package experiments

import (
	"math"
	"testing"
)

// tiny returns a configuration small enough for unit tests while keeping
// both provisioning regimes inside the swept ranges.
func tiny() Config {
	cfg := Small()
	cfg.Runs = 10
	cfg.Items = 2000
	return cfg
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Nodes: 10, Replication: 3, Items: 100, Rate: 1, Runs: 1}, // K unset
		{Nodes: 1, Replication: 3, Items: 100, Rate: 1, Runs: 1, K: 1.2},
		{Nodes: 10, Replication: 3, Items: 100, Rate: 0, Runs: 1, K: 1.2},
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := Default().validate(); err != nil {
		t.Errorf("Default() invalid: %v", err)
	}
	if err := Small().validate(); err != nil {
		t.Errorf("Small() invalid: %v", err)
	}
}

func TestGeomSweep(t *testing.T) {
	s := geomSweep(10, 1000, 5)
	if s[0] != 10 || s[len(s)-1] != 1000 {
		t.Errorf("sweep endpoints wrong: %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Errorf("sweep not strictly increasing: %v", s)
		}
	}
	// Degenerate ranges.
	if got := geomSweep(5, 5, 10); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate sweep = %v", got)
	}
	if got := geomSweep(0, 3, 2); got[0] != 1 {
		t.Errorf("lo clamped sweep = %v", got)
	}
}

func TestFig3aShape(t *testing.T) {
	tbl, err := Fig3a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	gains := tbl.Column("max_gain")
	xs := tbl.Column("x")
	if len(gains) < 5 {
		t.Fatalf("too few sweep points: %d", len(gains))
	}
	// Small cache (c = n/5 = 20 < c* = 121): the first point (x = c+1)
	// must be an effective attack, and the overall trend decreasing.
	if gains[0] <= 1 {
		t.Errorf("x=%v: gain %v, want > 1 (effective attack)", xs[0], gains[0])
	}
	if gains[0] <= gains[len(gains)-1] {
		t.Errorf("gain not decreasing overall: %v ... %v", gains[0], gains[len(gains)-1])
	}
}

func TestFig3bShape(t *testing.T) {
	tbl, err := Fig3b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	gains := tbl.Column("max_gain")
	// Large cache (c = 2n = 200 > c* = 121): no point exceeds 1 by more
	// than noise, and the trend is increasing toward 1.
	for i, g := range gains {
		if g > 1.15 {
			t.Errorf("row %d: gain %v, want <= ~1 (ineffective regime)", i, g)
		}
	}
	if gains[len(gains)-1] <= gains[0] {
		t.Errorf("gain not increasing: first %v last %v", gains[0], gains[len(gains)-1])
	}
}

func TestFig4Shape(t *testing.T) {
	cfg := tiny()
	cfg.Runs = 8
	// A fatter key space keeps the Zipf head inside the cache's reach,
	// matching the paper's m = 10^5 >> c regime.
	cfg.Items = 20000
	tbl, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ns := tbl.Column("n")
	uniform := tbl.Column("uniform")
	zipf := tbl.Column("zipf_1.01")
	adversarial := tbl.Column("adversarial")
	last := len(ns) - 1
	// Adversarial grows with n; at the largest n it must dwarf uniform.
	if adversarial[last] <= adversarial[0] {
		t.Errorf("adversarial gain not growing in n: %v ... %v", adversarial[0], adversarial[last])
	}
	if adversarial[last] < 2*uniform[last] {
		t.Errorf("at n=%v adversarial %v not well above uniform %v", ns[last], adversarial[last], uniform[last])
	}
	// The paper's claim 1: the system serves Zipf best. That holds up to
	// roughly the base cluster size (beyond it the hottest uncached Zipf
	// key alone can exceed the even share); check at the row nearest the
	// base n.
	base := 0
	for i := range ns {
		if math.Abs(ns[i]-float64(cfg.Nodes)) < math.Abs(ns[base]-float64(cfg.Nodes)) {
			base = i
		}
	}
	if zipf[base] > uniform[base]*1.1 {
		t.Errorf("at n=%v zipf %v above uniform %v", ns[base], zipf[base], uniform[base])
	}
}

func TestFig5Shapes(t *testing.T) {
	cfg := tiny()
	tbl, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs := tbl.Column("c")
	gains := tbl.Column("best_gain")
	bestX := tbl.Column("best_x")
	// Gain decreasing in c; crosses 1.0 somewhere inside the sweep.
	if gains[0] <= 1 {
		t.Errorf("smallest cache gain %v, want > 1", gains[0])
	}
	if gains[len(gains)-1] >= 1 {
		t.Errorf("largest cache gain %v, want < 1", gains[len(gains)-1])
	}
	// best_x follows the dichotomy: c+1 in the effective regime, m in the
	// ineffective one.
	for i := range cs {
		if gains[i] > 1.0 && bestX[i] == float64(cfg.Items) && cs[i] < float64(cfg.Items)-1 {
			// Effective attacks via querying everything happen only at
			// the boundary; tolerate but record.
			t.Logf("c=%v: effective attack with x=m (boundary noise)", cs[i])
		}
	}
	// The x=m rows appear at large c.
	if bestX[len(bestX)-1] != float64(cfg.Items) {
		t.Errorf("largest cache best_x = %v, want m = %d", bestX[len(bestX)-1], cfg.Items)
	}
	if bestX[0] != cs[0]+1 {
		t.Errorf("smallest cache best_x = %v, want c+1 = %v", bestX[0], cs[0]+1)
	}
}

func TestFig5aFig5bConsistentWithFig5(t *testing.T) {
	cfg := tiny()
	cfg.Runs = 5
	full, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Fig5a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig5b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows() != full.Rows() || b.Rows() != full.Rows() {
		t.Fatalf("row counts differ: %d/%d/%d", full.Rows(), a.Rows(), b.Rows())
	}
	for i := 0; i < full.Rows(); i++ {
		if a.Row(i)[1] != full.Row(i)[1] {
			t.Errorf("row %d: Fig5a gain %v != Fig5 %v", i, a.Row(i)[1], full.Row(i)[1])
		}
		if b.Row(i)[1] != full.Row(i)[3] {
			t.Errorf("row %d: Fig5b x %v != Fig5 %v", i, b.Row(i)[1], full.Row(i)[3])
		}
	}
}

func TestCriticalPointNearAnalytic(t *testing.T) {
	cfg := tiny()
	cfg.Runs = 20
	empirical, analytic, err := CriticalPoint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// n=100, k=1.2 -> analytic c* = 121. The empirical crossing uses the
	// max-over-runs statistic, which sits above the expectation, so the
	// empirical point can exceed the analytic one; it must be within a
	// factor-2 band (the paper: "our bound is tight as it is very close
	// to the critical point").
	if analytic != 121 {
		t.Errorf("analytic c* = %d, want 121", analytic)
	}
	lo, hi := analytic/2, analytic*2
	if empirical < lo || empirical > hi {
		t.Errorf("empirical critical point %d outside [%d, %d]", empirical, lo, hi)
	}
}

func TestReplicationSweep(t *testing.T) {
	cfg := tiny()
	cfg.Runs = 5
	tbl, err := ReplicationSweep(cfg, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	req := tbl.Column("required_c")
	gap := tbl.Column("gap_term")
	for i := 1; i < len(req); i++ {
		if req[i] >= req[i-1] {
			t.Errorf("required cache not decreasing in d: %v", req)
		}
		if gap[i] >= gap[i-1] {
			t.Errorf("gap term not decreasing in d: %v", gap)
		}
	}
	if _, err := ReplicationSweep(cfg, []int{1}); err == nil {
		t.Error("d=1 accepted")
	}
}

func TestPolicyAblation(t *testing.T) {
	cfg := tiny()
	cfg.Runs = 10
	tbl, err := PolicyAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != len(PolicyNames) {
		t.Fatalf("rows = %d, want %d", tbl.Rows(), len(PolicyNames))
	}
	gains := tbl.Column("max_gain")
	// Under x = c+1 (a single uncached key) the split policy divides the
	// hot key across d nodes, so it must beat both whole-key policies.
	if gains[2] >= gains[0] {
		t.Errorf("split gain %v not below least-loaded %v for a single hot key", gains[2], gains[0])
	}
}

func TestPartitionerAblationAgrees(t *testing.T) {
	cfg := tiny()
	cfg.Runs = 10
	tbl, err := PartitionerAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gains := tbl.Column("max_gain")
	for i := 1; i < len(gains); i++ {
		if math.Abs(gains[i]-gains[0]) > 0.5*gains[0] {
			t.Errorf("partitioner %s gain %v far from %s gain %v",
				PartitionerNames[i], gains[i], PartitionerNames[0], gains[0])
		}
	}
}

func TestDiscreteRunValidation(t *testing.T) {
	cfg := tiny()
	dist, _ := cfg.adversary(20).DistributionForX(21)
	if _, err := DiscreteRun(0, 1, nil, dist, 10, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := DiscreteRun(10, 11, nil, dist, 10, 1); err == nil {
		t.Error("d>n accepted")
	}
	if _, err := DiscreteRun(10, 3, nil, dist, 0, 1); err == nil {
		t.Error("0 queries accepted")
	}
}

func TestCachePolicyAblation(t *testing.T) {
	cfg := tiny()
	cfg.Runs = 3
	tbl, err := CachePolicyAblation(cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != len(CachePolicyNames) {
		t.Fatalf("rows = %d, want %d", tbl.Rows(), len(CachePolicyNames))
	}
	hit := tbl.Column("mean_hit_ratio")
	// Perfect cache under the canonical attack (x = c+1 equal rates)
	// serves c/(c+1) of queries; every practical policy is below that
	// but LFU/TinyLFU should be within 20% of perfect on a static
	// distribution.
	perfect := hit[0]
	if perfect < 0.90 {
		t.Errorf("perfect hit ratio %v, want ~c/(c+1)", perfect)
	}
	for i, name := range CachePolicyNames {
		if hit[i] > perfect+0.02 {
			t.Errorf("%s hit ratio %v above perfect %v", name, hit[i], perfect)
		}
	}
	lfu := hit[2]
	if lfu < perfect-0.2 {
		t.Errorf("lfu hit ratio %v more than 0.2 below perfect %v", lfu, perfect)
	}
	if _, err := CachePolicyAblation(cfg, 0); err == nil {
		t.Error("0 queries accepted")
	}
}

func TestLatencyUnderAttack(t *testing.T) {
	cfg := tiny()
	tbl, err := LatencyUnderAttack(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != len(LatencyScenarioNames) {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	util := tbl.Column("max_util")
	drops := tbl.Column("drop_rate")
	served := tbl.Column("backend_served")
	// Small cache (c = n/5 < c*): the victim node saturates — utilization
	// pinned at ~1 and/or drops appear.
	if util[1] < 0.95 && drops[1] == 0 {
		t.Errorf("small cache: max util %v, drops %v — expected a saturated victim", util[1], drops[1])
	}
	// Provisioned cache: the attack degenerates to near-uniform traffic at
	// 50%% capacity; no node saturates and nothing is dropped.
	if util[2] > 0.95 {
		t.Errorf("provisioned cache: max util %v, want < 0.95", util[2])
	}
	if drops[2] != 0 {
		t.Errorf("provisioned cache dropped %v", drops[2])
	}
	// No cache at all is at least as bad as the small cache in backend load.
	if served[0] < served[1] {
		t.Errorf("no-cache served %v < small-cache served %v", served[0], served[1])
	}
	if _, err := LatencyUnderAttack(cfg, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestReplicationBenefit(t *testing.T) {
	cfg := tiny()
	tbl, err := ReplicationBenefit(cfg, []int{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", tbl.Rows())
	}
	req := tbl.Column("required_c")
	// Single-choice (row 0) needs far more cache than any replicated
	// configuration — the paper's headline asymptotic gap (n·ln n vs
	// n·ln ln n / ln d).
	for i := 1; i < len(req); i++ {
		if req[0] <= req[i] {
			t.Errorf("single-choice requirement %v not above d=%v requirement %v",
				req[0], tbl.Row(i)[0], req[i])
		}
	}
	// Replicated requirements decrease with d.
	for i := 2; i < len(req); i++ {
		if req[i] >= req[i-1] {
			t.Errorf("required cache not decreasing in d: %v", req)
		}
	}
}

func TestAdaptiveAttackAblation(t *testing.T) {
	cfg := tiny()
	cfg.Runs = 3
	tbl, err := AdaptiveAttackAblation(cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows() != len(AdaptiveAttackNames) {
		t.Fatalf("rows = %d", tbl.Rows())
	}
	static := tbl.Column("static_max_load")
	cyclic := tbl.Column("cyclic_max_load")
	hits := tbl.Column("cyclic_hit_ratio")
	// Perfect cache (row 0): both attacks leak exactly the residual key
	// stream; static and cyclic loads are both ~n/(c+1).
	if static[0] < 2 || cyclic[0] < 2 {
		t.Errorf("perfect cache loads %v/%v, want ~n/(c+1) ≈ 4.8", static[0], cyclic[0])
	}
	// LRU (row 1): the cyclic scan makes every query a miss...
	if hits[1] > 0.05 {
		t.Errorf("lru cyclic hit ratio %v, want ~0 (scan defeats recency)", hits[1])
	}
	// ...restoring an effective attack that the static pattern hid.
	if cyclic[1] < 2*static[1] {
		t.Errorf("lru: cyclic load %v not well above static %v", cyclic[1], static[1])
	}
	if _, err := AdaptiveAttackAblation(cfg, 0); err == nil {
		t.Error("0 queries accepted")
	}
}
