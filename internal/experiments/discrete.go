package experiments

import (
	"fmt"

	"securecache/internal/cache"
	"securecache/internal/partition"
	"securecache/internal/sim"
	"securecache/internal/workload"
	"securecache/internal/xrand"
)

// DiscreteResult is the outcome of one discrete (per-query) simulation.
type DiscreteResult struct {
	// Queries is the number of queries replayed.
	Queries int
	// HitRatio is the front-end cache hit ratio.
	HitRatio float64
	// NormMax is the normalized max back-end load: the hottest node's
	// query count divided by the even share (total queries / n).
	NormMax float64
}

// DiscreteRun replays a concrete query stream through a real cache in
// front of the partitioned back end, counting per-node queries. Unlike
// sim.Run (which works on exact rates under the perfect-cache
// assumption), this path exercises replacement/admission dynamics, so it
// is the evaluator for the cache-policy ablation.
//
// Serving follows the paper's model at key granularity: the first miss of
// a key picks the least-loaded replica of its group (the d-choice
// process), and the key then *sticks* to that node — "the node which
// ultimately serves it" is fixed (Assumption 1). Re-evaluating the choice
// per query would quietly split a hot key across its replicas and
// understate the attack.
func DiscreteRun(n, d int, c cache.Cache, dist workload.Distribution,
	queries int, seed uint64) (DiscreteResult, error) {
	rng := xrand.New(xrand.Derive(seed, 0xD2))
	return DiscreteRunStream(n, d, c, func(int) int { return dist.Sample(rng) }, queries, seed)
}

// DiscreteRunStream is DiscreteRun for an arbitrary query stream: next(q)
// returns the q-th query's key. It enables attackers whose pattern is a
// *sequence* rather than a distribution — e.g. the cyclic scan that
// defeats recency-based caches (AdaptiveAttackAblation).
func DiscreteRunStream(n, d int, c cache.Cache, next func(q int) int,
	queries int, seed uint64) (DiscreteResult, error) {
	if n < 1 || d < 1 || d > n {
		return DiscreteResult{}, fmt.Errorf("experiments: DiscreteRun with n=%d d=%d", n, d)
	}
	if queries < 1 {
		return DiscreteResult{}, fmt.Errorf("experiments: DiscreteRun with %d queries", queries)
	}
	part := partition.NewHash(n, d, xrand.Derive(seed, 0xD1))
	counts := make([]int, n)
	assigned := make(map[uint64]int) // key -> its serving node, fixed at first miss
	group := make([]int, 0, d)
	hits := 0
	for q := 0; q < queries; q++ {
		key := uint64(next(q))
		if _, ok := c.Get(key); ok {
			hits++
			continue
		}
		c.Put(key, nil)
		node, ok := assigned[key]
		if !ok {
			group = part.GroupAppend(group[:0], key)
			node = group[0]
			for _, cand := range group[1:] {
				if counts[cand] < counts[node] {
					node = cand
				}
			}
			assigned[key] = node
		}
		counts[node]++
	}
	maxCount := 0
	for _, cnt := range counts {
		if cnt > maxCount {
			maxCount = cnt
		}
	}
	return DiscreteResult{
		Queries:  queries,
		HitRatio: float64(hits) / float64(queries),
		NormMax:  float64(maxCount) / (float64(queries) / float64(n)),
	}, nil
}

// CachePolicyNames labels CachePolicyAblation rows.
var CachePolicyNames = []string{"perfect", "lru", "lfu", "slru", "tinylfu", "arc"}

// CachePolicyAblation measures how close practical cache policies come to
// the paper's perfect-cache assumption under the adversarial pattern: it
// replays the best attack stream against perfect, LRU, LFU, SLRU, and
// TinyLFU front ends of the same size and reports hit ratio and
// normalized max load for each. queriesPerRun discrete queries are
// replayed cfg.Runs times with fresh partitions and caches; the max over
// runs is reported, matching the paper's statistic.
func CachePolicyAblation(cfg Config, queriesPerRun int) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if queriesPerRun < 1 {
		return nil, fmt.Errorf("experiments: queriesPerRun = %d", queriesPerRun)
	}
	cacheSize := cfg.Nodes / 5
	adv := cfg.adversary(cacheSize)
	dist, err := adv.DistributionForX(adv.BestX())
	if err != nil {
		return nil, err
	}
	tbl := sim.NewTable(
		fmt.Sprintf("Ablation: cache policy under attack (n=%d d=%d c=%d x=%d queries=%d runs=%d)",
			cfg.Nodes, cfg.Replication, cacheSize, adv.BestX(), queriesPerRun, cfg.Runs),
		"policy", "max_norm_load", "mean_hit_ratio")
	for i, name := range CachePolicyNames {
		var maxNorm, hitSum float64
		for run := 0; run < cfg.Runs; run++ {
			res, err := DiscreteRun(cfg.Nodes, cfg.Replication,
				buildAblationCache(name, cacheSize, dist), dist,
				queriesPerRun, xrand.Derive(cfg.Seed, 0xAB, uint64(i), uint64(run)))
			if err != nil {
				return nil, err
			}
			if res.NormMax > maxNorm {
				maxNorm = res.NormMax
			}
			hitSum += res.HitRatio
		}
		tbl.AddRow(float64(i), maxNorm, hitSum/float64(cfg.Runs))
	}
	return tbl, nil
}
