package experiments

import (
	"fmt"

	"securecache/internal/des"
	"securecache/internal/sim"
	"securecache/internal/workload"
)

// LatencyScenarioNames labels LatencyUnderAttack rows.
var LatencyScenarioNames = []string{"no-cache", "small-cache", "provisioned-cache"}

// LatencyUnderAttack measures the operational damage of the optimal
// attack in the time domain (queueing simulation, internal/des): p99
// sojourn time, the busiest node's utilization, and the drop rate under
// bounded queues, for three front-end configurations — no cache, an
// under-provisioned cache, and a cache at the provisioning threshold.
//
// The cluster is sized so that the offered rate is a comfortable 50% of
// aggregate capacity: a benign workload sails through, and any latency
// blow-up is attributable to adversarial concentration.
func LatencyUnderAttack(cfg Config, duration float64) (*sim.Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if duration <= 0 {
		return nil, fmt.Errorf("experiments: duration = %v", duration)
	}
	smallCache := cfg.Nodes / 5
	provisioned := cfg.adversary(0).Params().RequiredCacheSize()
	// Per-node service rate: offered rate fills half the aggregate
	// capacity.
	serviceRate := 2 * cfg.Rate / float64(cfg.Nodes)

	scenarios := []struct {
		cacheSize int
	}{
		{0},
		{smallCache},
		{provisioned},
	}
	tbl := sim.NewTable(
		fmt.Sprintf("Latency under optimal attack (n=%d d=%d R=%g µ=%g/node queue-cap=1000, %gs simulated)",
			cfg.Nodes, cfg.Replication, cfg.Rate, serviceRate, duration),
		"scenario", "cache", "p99_ms", "max_util", "drop_rate", "backend_served")
	for i, sc := range scenarios {
		adv := cfg.adversary(sc.cacheSize)
		x := adv.BestX()
		if x < 2 {
			x = 2
		}
		dist, err := adv.DistributionForX(x)
		if err != nil {
			return nil, err
		}
		var cached func(int) bool
		if sc.cacheSize > 0 {
			set := workload.TopC(dist, sc.cacheSize)
			cached = func(key int) bool { return set[key] }
		}
		res, err := des.Run(des.Config{
			Nodes:         cfg.Nodes,
			Replication:   cfg.Replication,
			PartitionSeed: cfg.Seed,
			Dist:          dist,
			Cached:        cached,
			ArrivalRate:   cfg.Rate,
			ServiceRate:   serviceRate,
			// Sticky per-key serving is the paper's Assumption 1 (the
			// node that ultimately serves a key is fixed); per-query
			// least-queue would quietly split a single hot key over its
			// d replicas and mask the attack.
			Policy:   des.PolicySticky,
			QueueCap: 1000,
			Duration: duration,
			Seed:     cfg.Seed + uint64(i),
		})
		if err != nil {
			return nil, err
		}
		p99ms := res.P99Latency * 1000
		if res.Served == 0 {
			p99ms = 0 // cache absorbed everything; no backend latency
		}
		tbl.AddRow(float64(i), float64(sc.cacheSize), p99ms,
			res.MaxUtilization(), res.DropRate(), float64(res.Served))
	}
	return tbl, nil
}
