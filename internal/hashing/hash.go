// Package hashing provides the hash primitives used for randomized service
// partitioning: a seeded 64-bit string hash, and three node-selection
// schemes built on it (consistent-hash ring, rendezvous hashing, and jump
// consistent hash).
//
// The security property the paper relies on is *opacity*: the mapping from
// keys to replica groups must be unpredictable to a client that does not
// know the seed. All hashes here are therefore keyed — the same key hashes
// differently under different seeds — and the partitioners in
// internal/partition keep their seed private.
package hashing

// FNV-1a constants (64-bit variant).
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// Hash64 returns a keyed 64-bit hash of key. It is FNV-1a seeded with a
// mixed seed and strengthened with a splitmix-style avalanche finalizer, so
// that near-identical keys (e.g. "key-1", "key-2") produce uncorrelated
// outputs. It allocates nothing.
func Hash64(key string, seed uint64) uint64 {
	h := fnvOffset64 ^ mix(seed)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return mix(h)
}

// Hash64Bytes is Hash64 for a byte slice key.
func Hash64Bytes(key []byte, seed uint64) uint64 {
	h := fnvOffset64 ^ mix(seed)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return mix(h)
}

// Hash64Uint returns a keyed hash of an integer key without formatting it
// into a string. Integer keys are the common case in simulations, where the
// key space is simply [0, m).
func Hash64Uint(key, seed uint64) uint64 {
	return mix(mix(key^0x9e3779b97f4a7c15) ^ mix(seed))
}

// mix is the splitmix64 finalizer: a full-avalanche 64-bit permutation.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// JumpHash implements Lamping & Veach's jump consistent hash: it maps hash
// to a bucket in [0, buckets) such that changing buckets from b to b+1
// remaps only ~1/(b+1) of the keys. It panics if buckets <= 0.
func JumpHash(hash uint64, buckets int) int {
	if buckets <= 0 {
		panic("hashing: JumpHash with non-positive bucket count")
	}
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		hash = hash*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((hash>>33)+1)))
	}
	return int(b)
}
