package hashing

import (
	"math"
	"testing"
)

func TestRendezvousGetNDistinctInRange(t *testing.T) {
	r := NewRendezvous(15, 42)
	for k := uint64(0); k < 2000; k++ {
		nodes := r.GetNUint(k, 4)
		if len(nodes) != 4 {
			t.Fatalf("GetNUint returned %d nodes, want 4", len(nodes))
		}
		seen := map[int]bool{}
		for _, n := range nodes {
			if n < 0 || n >= 15 || seen[n] {
				t.Fatalf("invalid node list %v", nodes)
			}
			seen[n] = true
		}
	}
}

func TestRendezvousDeterministic(t *testing.T) {
	a, b := NewRendezvous(10, 7), NewRendezvous(10, 7)
	for k := uint64(0); k < 500; k++ {
		na, nb := a.GetNUint(k, 3), b.GetNUint(k, 3)
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("same-seed HRW disagrees on key %d", k)
			}
		}
	}
}

func TestRendezvousBalance(t *testing.T) {
	const nodes, keys = 10, 50000
	r := NewRendezvous(nodes, 9)
	counts := make([]int, nodes)
	for k := uint64(0); k < keys; k++ {
		counts[r.GetNUint(k, 1)[0]]++
	}
	want := float64(keys) / nodes
	for n, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("node %d received %d keys, want ~%v", n, c, want)
		}
	}
}

func TestRendezvousOrderIsByWeight(t *testing.T) {
	// The first element of GetN(k, n) must equal Get(k) — highest weight
	// first.
	r := NewRendezvous(12, 5)
	for k := 0; k < 200; k++ {
		key := "key-" + string(rune('a'+k%26)) + string(rune('0'+k%10))
		if r.GetN(key, 3)[0] != r.Get(key) {
			t.Fatalf("GetN first element != Get for %q", key)
		}
	}
}

func TestRendezvousGetNClamped(t *testing.T) {
	r := NewRendezvous(3, 1)
	if got := len(r.GetNUint(1, 10)); got != 3 {
		t.Errorf("GetN(10) over 3 nodes returned %d", got)
	}
}

func TestRendezvousPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRendezvous(0) did not panic")
		}
	}()
	NewRendezvous(0, 1)
}

func TestRendezvousMinimalDisruptionOnGrowth(t *testing.T) {
	// Growing n -> n+1 should move ~1/(n+1) of the keys (only those whose
	// new node wins).
	const keys = 20000
	small, big := NewRendezvous(10, 3), NewRendezvous(11, 3)
	moved := 0
	for k := uint64(0); k < keys; k++ {
		if small.GetNUint(k, 1)[0] != big.GetNUint(k, 1)[0] {
			moved++
		}
	}
	frac := float64(moved) / keys
	if math.Abs(frac-1.0/11) > 0.02 {
		t.Errorf("moved fraction %v, want ~%v", frac, 1.0/11)
	}
}

func BenchmarkRendezvousGetN(b *testing.B) {
	r := NewRendezvous(100, 1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.GetNUint(uint64(i), 3)[0]
	}
	_ = sink
}
