package hashing

import (
	"math"
	"testing"
)

func newTestRing(n int, opts ...RingOption) *Ring {
	r := NewRing(42, opts...)
	for i := 0; i < n; i++ {
		r.Add(i)
	}
	return r
}

func TestRingGetNDistinctAndInRange(t *testing.T) {
	r := newTestRing(20)
	for k := uint64(0); k < 2000; k++ {
		nodes := r.GetNUint(k, 3)
		if len(nodes) != 3 {
			t.Fatalf("GetNUint returned %d nodes, want 3", len(nodes))
		}
		seen := map[int]bool{}
		for _, n := range nodes {
			if n < 0 || n >= 20 {
				t.Fatalf("node %d out of range", n)
			}
			if seen[n] {
				t.Fatalf("duplicate node %d in %v", n, nodes)
			}
			seen[n] = true
		}
	}
}

func TestRingDeterministic(t *testing.T) {
	a, b := newTestRing(10), newTestRing(10)
	for k := uint64(0); k < 500; k++ {
		ga, gb := a.GetNUint(k, 3), b.GetNUint(k, 3)
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("rings with same seed disagree on key %d: %v vs %v", k, ga, gb)
			}
		}
	}
}

func TestRingSeedChangesMapping(t *testing.T) {
	a := NewRing(1)
	b := NewRing(2)
	for i := 0; i < 10; i++ {
		a.Add(i)
		b.Add(i)
	}
	same := 0
	const keys = 1000
	for k := uint64(0); k < keys; k++ {
		if a.GetNUint(k, 1)[0] == b.GetNUint(k, 1)[0] {
			same++
		}
	}
	// Two independent uniform mappings to 10 nodes agree ~10% of the time.
	if float64(same)/keys > 0.25 {
		t.Errorf("rings with different seeds agree on %d/%d keys", same, keys)
	}
}

func TestRingBalance(t *testing.T) {
	const nodes, keys = 10, 50000
	r := newTestRing(nodes, WithVirtualNodes(256))
	counts := make([]int, nodes)
	for k := uint64(0); k < keys; k++ {
		counts[r.GetNUint(k, 1)[0]]++
	}
	want := float64(keys) / nodes
	for n, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.25 {
			t.Errorf("node %d received %d keys, want within 25%% of %v", n, c, want)
		}
	}
}

func TestRingConsistencyOnRemoval(t *testing.T) {
	// Removing one node must only remap keys that were owned by it.
	const nodes, keys = 10, 5000
	r := newTestRing(nodes)
	before := make([]int, keys)
	for k := 0; k < keys; k++ {
		before[k] = r.GetNUint(uint64(k), 1)[0]
	}
	const victim = 3
	r.Remove(victim)
	for k := 0; k < keys; k++ {
		after := r.GetNUint(uint64(k), 1)[0]
		if before[k] != victim && after != before[k] {
			t.Fatalf("key %d moved from %d to %d although node %d was removed",
				k, before[k], after, victim)
		}
		if after == victim {
			t.Fatalf("key %d still mapped to removed node", k)
		}
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := newTestRing(5)
	points := len(r.points)
	r.Add(3) // duplicate
	if len(r.points) != points {
		t.Error("duplicate Add changed the ring")
	}
	r.Remove(99) // absent
	if len(r.points) != points {
		t.Error("Remove of absent node changed the ring")
	}
	if r.Len() != 5 {
		t.Errorf("Len = %d, want 5", r.Len())
	}
}

func TestRingGetNMoreThanNodes(t *testing.T) {
	r := newTestRing(3)
	nodes := r.GetNUint(1, 10)
	if len(nodes) != 3 {
		t.Errorf("GetN(10) over 3 nodes returned %d nodes", len(nodes))
	}
}

func TestRingEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("lookup on empty ring did not panic")
		}
	}()
	NewRing(1).Get("x")
}

func TestRingStringAndUintLookups(t *testing.T) {
	r := newTestRing(8)
	// Just exercise both entry points; they hash differently by design.
	if n := r.Get("hello"); n < 0 || n >= 8 {
		t.Errorf("Get returned out-of-range node %d", n)
	}
	if ns := r.GetN("hello", 2); len(ns) != 2 {
		t.Errorf("GetN returned %d nodes", len(ns))
	}
}

func BenchmarkRingGetN(b *testing.B) {
	r := newTestRing(1000)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.GetNUint(uint64(i), 3)[0]
	}
	_ = sink
}

func TestRingLazyFinalize(t *testing.T) {
	r := NewRing(1)
	r.Add(0)
	r.Add(1)
	// Lookup before explicit Finalize must still work (implicit sort).
	if n := r.GetNUint(5, 1)[0]; n != 0 && n != 1 {
		t.Errorf("lookup on lazily-built ring returned %d", n)
	}
	// Adding after a lookup re-dirties; the next lookup re-sorts.
	r.Add(2)
	seen := map[int]bool{}
	for k := uint64(0); k < 300; k++ {
		seen[r.GetNUint(k, 1)[0]] = true
	}
	if !seen[2] {
		t.Error("node added after finalize never owns a key")
	}
	// Finalize is idempotent.
	r.Finalize()
	r.Finalize()
}

func BenchmarkRingConstruct1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := NewRing(1)
		for n := 0; n < 1000; n++ {
			r.Add(n)
		}
		r.Finalize()
	}
}
