package hashing

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Nodes are identified
// by integer IDs; each node owns Replicas points on the 64-bit ring, and a
// key is assigned to the first N distinct nodes found walking clockwise
// from the key's hash.
//
// The zero value is not usable; construct with NewRing. Ring is not safe
// for concurrent mutation; concurrent reads are safe once built.
type Ring struct {
	seed     uint64
	replicas int
	points   []ringPoint // sorted by pos once built (see dirty)
	dirty    bool        // points need re-sorting before the next lookup
	nodes    map[int]bool
}

type ringPoint struct {
	pos  uint64
	node int
}

// RingOption configures a Ring.
type RingOption func(*Ring)

// WithVirtualNodes sets the number of virtual nodes (ring points) per
// physical node. More virtual nodes give a more uniform key distribution
// at the cost of memory and lookup constant factors. Default 128.
func WithVirtualNodes(v int) RingOption {
	return func(r *Ring) {
		if v > 0 {
			r.replicas = v
		}
	}
}

// NewRing returns an empty ring whose placement is keyed by seed.
func NewRing(seed uint64, opts ...RingOption) *Ring {
	r := &Ring{seed: seed, replicas: 128, nodes: make(map[int]bool)}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Add inserts a node. Adding an existing node is a no-op. The new virtual
// points are merged lazily: the next lookup (or an explicit Finalize)
// sorts the ring, so adding n nodes costs one O(n·v·log(n·v)) sort rather
// than n of them.
func (r *Ring) Add(node int) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for v := 0; v < r.replicas; v++ {
		pos := Hash64Uint(uint64(node)<<20|uint64(v), r.seed^0x52494e47) // "RING"
		r.points = append(r.points, ringPoint{pos: pos, node: node})
	}
	r.dirty = true
}

// Finalize sorts the ring after a batch of Adds. Lookups call it
// implicitly; calling it once after construction makes the Ring safe for
// concurrent readers (lookups on a finalized ring do not mutate).
func (r *Ring) Finalize() {
	if !r.dirty {
		return
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
	r.dirty = false
}

// Remove deletes a node and its virtual points. Removing an absent node is
// a no-op.
func (r *Ring) Remove(node int) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len reports the number of physical nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Get returns the node owning key, i.e. the first node clockwise from the
// key's position. It panics if the ring is empty.
func (r *Ring) Get(key string) int {
	nodes := r.GetN(key, 1)
	return nodes[0]
}

// GetN returns the first n distinct nodes clockwise from the key's
// position. If fewer than n nodes exist, all nodes are returned (in walk
// order). It panics if the ring is empty or n <= 0.
func (r *Ring) GetN(key string, n int) []int {
	return r.getN(Hash64(key, r.seed), n)
}

// GetNUint is GetN for integer keys.
func (r *Ring) GetNUint(key uint64, n int) []int {
	return r.getN(Hash64Uint(key, r.seed), n)
}

func (r *Ring) getN(h uint64, n int) []int {
	if len(r.points) == 0 {
		panic("hashing: lookup on empty ring")
	}
	r.Finalize()
	if n <= 0 {
		panic(fmt.Sprintf("hashing: GetN with n=%d", n))
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
