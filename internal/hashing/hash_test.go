package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	f := func(key string, seed uint64) bool {
		return Hash64(key, seed) == Hash64(key, seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64SeedDependence(t *testing.T) {
	// The same key under different seeds must hash differently (the
	// opacity property the partitioner relies on).
	keys := []string{"", "a", "key-1", "key-2", "user:12345"}
	for _, k := range keys {
		if Hash64(k, 1) == Hash64(k, 2) {
			t.Errorf("Hash64(%q) identical under seeds 1 and 2", k)
		}
	}
}

func TestHash64BytesMatchesString(t *testing.T) {
	f := func(key []byte, seed uint64) bool {
		return Hash64Bytes(key, seed) == Hash64(string(key), seed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHash64UintAvalanche(t *testing.T) {
	// Consecutive integer keys must produce well-spread hashes: check that
	// bucketizing 100k consecutive keys into 64 buckets is near-uniform.
	const n, buckets = 100000, 64
	counts := make([]int, buckets)
	for k := uint64(0); k < n; k++ {
		counts[Hash64Uint(k, 7)%buckets]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: %d hashes, want ~%v", b, c, want)
		}
	}
}

func TestJumpHashRange(t *testing.T) {
	f := func(h uint64) bool {
		b := JumpHash(h, 10)
		return b >= 0 && b < 10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJumpHashSingleBucket(t *testing.T) {
	for _, h := range []uint64{0, 1, math.MaxUint64} {
		if got := JumpHash(h, 1); got != 0 {
			t.Errorf("JumpHash(%d, 1) = %d, want 0", h, got)
		}
	}
}

func TestJumpHashMinimalDisruption(t *testing.T) {
	// Growing from b to b+1 buckets should remap roughly 1/(b+1) of keys.
	const keys = 50000
	const from, to = 10, 11
	moved := 0
	for k := uint64(0); k < keys; k++ {
		h := Hash64Uint(k, 3)
		if JumpHash(h, from) != JumpHash(h, to) {
			moved++
		}
	}
	frac := float64(moved) / keys
	want := 1.0 / to
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("moved fraction %v, want ~%v", frac, want)
	}
}

func TestJumpHashPanicsOnZeroBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("JumpHash(_, 0) did not panic")
		}
	}()
	JumpHash(1, 0)
}

func TestJumpHashUniform(t *testing.T) {
	const keys, buckets = 100000, 13
	counts := make([]int, buckets)
	for k := uint64(0); k < keys; k++ {
		counts[JumpHash(Hash64Uint(k, 9), buckets)]++
	}
	want := float64(keys) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: %d keys, want ~%v", b, c, want)
		}
	}
}

func BenchmarkHash64(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Hash64("benchmark-key-123456", uint64(i))
	}
	_ = sink
}

func BenchmarkHash64Uint(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Hash64Uint(uint64(i), 42)
	}
	_ = sink
}
