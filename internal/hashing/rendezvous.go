package hashing

import "container/heap"

// Rendezvous implements highest-random-weight (HRW, "rendezvous") hashing
// over nodes 0..n-1. A key is assigned to the node(s) with the highest
// keyed hash of the (key, node) pair. Rendezvous hashing gives perfectly
// uniform placement in expectation and minimal disruption on membership
// change, at O(n) lookup cost.
//
// Rendezvous is safe for concurrent use: it is immutable after creation.
type Rendezvous struct {
	seed uint64
	n    int
}

// NewRendezvous returns an HRW hasher over n nodes keyed by seed.
// It panics if n <= 0.
func NewRendezvous(n int, seed uint64) *Rendezvous {
	if n <= 0 {
		panic("hashing: NewRendezvous with n <= 0")
	}
	return &Rendezvous{seed: seed, n: n}
}

// Len reports the number of nodes.
func (r *Rendezvous) Len() int { return r.n }

// Get returns the single highest-weight node for key.
func (r *Rendezvous) Get(key string) int {
	h := Hash64(key, r.seed)
	return r.topOfUint(h, 1)[0]
}

// GetN returns the n highest-weight distinct nodes for key, in decreasing
// weight order. If n exceeds the node count, all nodes are returned.
func (r *Rendezvous) GetN(key string, n int) []int {
	return r.topOfUint(Hash64(key, r.seed), n)
}

// GetNUint is GetN for integer keys.
func (r *Rendezvous) GetNUint(key uint64, n int) []int {
	return r.topOfUint(Hash64Uint(key, r.seed), n)
}

// weightHeap is a min-heap of (weight, node) used to track the current
// top-n candidates in a single pass.
type weightHeap []weightedNode

type weightedNode struct {
	w    uint64
	node int
}

func (h weightHeap) Len() int            { return len(h) }
func (h weightHeap) Less(i, j int) bool  { return h[i].w < h[j].w }
func (h weightHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *weightHeap) Push(x interface{}) { *h = append(*h, x.(weightedNode)) }
func (h *weightHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (r *Rendezvous) topOfUint(keyHash uint64, n int) []int {
	if n <= 0 {
		panic("hashing: GetN with non-positive n")
	}
	if n > r.n {
		n = r.n
	}
	h := make(weightHeap, 0, n)
	for node := 0; node < r.n; node++ {
		w := Hash64Uint(keyHash^uint64(node)*0x9e3779b97f4a7c15, r.seed+uint64(node))
		if len(h) < n {
			heap.Push(&h, weightedNode{w: w, node: node})
		} else if w > h[0].w {
			h[0] = weightedNode{w: w, node: node}
			heap.Fix(&h, 0)
		}
	}
	// Extract in decreasing weight order.
	out := make([]int, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(weightedNode).node
	}
	return out
}
