// Package trace records and replays query traces: compact binary streams
// of integer keys. Traces decouple workload generation from execution —
// the same attack trace can be replayed against the analytical simulator,
// the discrete simulator, and the live kvstore cluster, making results
// directly comparable. They also stand in for the production traces the
// paper's setting assumes but that no lab has: a recorded synthetic trace
// is the reproducible equivalent.
//
// Format:
//
//	magic   "SCTR" (4 bytes)
//	version uint16 (currently 1)
//	m       uint64 key-space size
//	count   uint64 number of queries
//	keys    count × uvarint key
//
// Keys are varint-encoded: adversarial traces (small keys) compress to
// ~1-2 bytes per query.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"securecache/internal/workload"
)

var magic = [4]byte{'S', 'C', 'T', 'R'}

const version = 1

// Trace is an in-memory query trace over a key space of size M.
type Trace struct {
	// M is the key-space size; all keys are in [0, M).
	M int
	// Keys is the query sequence.
	Keys []int
}

// Record samples count queries from dist into a new trace.
func Record(dist workload.Distribution, count int, seed uint64) *Trace {
	if count < 0 {
		panic(fmt.Sprintf("trace: Record with count=%d", count))
	}
	g := workload.NewGenerator(dist, seed)
	return &Trace{M: dist.NumKeys(), Keys: g.Batch(make([]int, 0, count), count)}
}

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	if t.M <= 0 {
		return fmt.Errorf("trace: key space %d invalid", t.M)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [18]byte
	binary.BigEndian.PutUint16(hdr[0:], version)
	binary.BigEndian.PutUint64(hdr[2:], uint64(t.M))
	binary.BigEndian.PutUint64(hdr[10:], uint64(len(t.Keys)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for i, k := range t.Keys {
		if k < 0 || k >= t.M {
			return fmt.Errorf("trace: key %d at index %d outside [0, %d)", k, i, t.M)
		}
		n := binary.PutUvarint(buf[:], uint64(k))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Errors returned by Read.
var (
	ErrBadMagic   = errors.New("trace: bad magic (not a trace file)")
	ErrBadVersion = errors.New("trace: unsupported version")
)

// maxTraceKeys bounds allocation when reading untrusted headers.
const maxTraceKeys = 1 << 30

// Read deserializes a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m4 [4]byte
	if _, err := io.ReadFull(br, m4[:]); err != nil {
		return nil, err
	}
	if m4 != magic {
		return nil, ErrBadMagic
	}
	var hdr [18]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if v := binary.BigEndian.Uint16(hdr[0:]); v != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	m := binary.BigEndian.Uint64(hdr[2:])
	count := binary.BigEndian.Uint64(hdr[10:])
	if m == 0 || m > maxTraceKeys || count > maxTraceKeys {
		return nil, fmt.Errorf("trace: implausible header m=%d count=%d", m, count)
	}
	t := &Trace{M: int(m), Keys: make([]int, 0, int(count))}
	for i := uint64(0); i < count; i++ {
		k, err := binary.ReadUvarint(br)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("trace: key %d: %w", i, err)
		}
		if k >= m {
			return nil, fmt.Errorf("trace: key %d out of range at index %d", k, i)
		}
		t.Keys = append(t.Keys, int(k))
	}
	return t, nil
}

// Frequencies returns the empirical key-frequency vector of the trace
// (length M), for comparing a trace against its source distribution.
func (t *Trace) Frequencies() []float64 {
	freq := make([]float64, t.M)
	if len(t.Keys) == 0 {
		return freq
	}
	inc := 1 / float64(len(t.Keys))
	for _, k := range t.Keys {
		freq[k] += inc
	}
	return freq
}

// Distribution converts the trace's empirical frequencies into a PMF, so
// recorded traffic can drive the rate-based simulator.
func (t *Trace) Distribution() (*workload.PMF, error) {
	if len(t.Keys) == 0 {
		return nil, errors.New("trace: empty trace has no distribution")
	}
	return workload.NewPMF(t.Frequencies()), nil
}
