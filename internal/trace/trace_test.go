package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"securecache/internal/workload"
)

func TestRecordAndRoundTrip(t *testing.T) {
	dist := workload.NewZipf(1000, 1.01)
	tr := Record(dist, 5000, 42)
	if tr.M != 1000 || len(tr.Keys) != 5000 {
		t.Fatalf("trace shape %d/%d", tr.M, len(tr.Keys))
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.M != tr.M || len(got.Keys) != len(tr.Keys) {
		t.Fatalf("round trip shape %d/%d", got.M, len(got.Keys))
	}
	for i := range tr.Keys {
		if got.Keys[i] != tr.Keys[i] {
			t.Fatalf("key %d differs", i)
		}
	}
}

func TestRecordDeterministic(t *testing.T) {
	dist := workload.NewUniform(100, 100)
	a := Record(dist, 100, 7)
	b := Record(dist, 100, 7)
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			t.Fatal("same-seed traces differ")
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{M: 10}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.M != 10 || len(got.Keys) != 0 {
		t.Errorf("empty trace round trip: %+v", got)
	}
	if _, err := got.Distribution(); err == nil {
		t.Error("empty trace produced a distribution")
	}
}

func TestWriteValidation(t *testing.T) {
	bad := &Trace{M: 5, Keys: []int{7}}
	if err := bad.Write(io.Discard); err == nil {
		t.Error("out-of-range key written")
	}
	if err := (&Trace{M: 0}).Write(io.Discard); err == nil {
		t.Error("zero key space written")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); !errors.Is(err, ErrBadMagic) {
		t.Errorf("garbage read error %v, want ErrBadMagic", err)
	}
	// Right magic, wrong version.
	raw := append([]byte("SCTR"), 0, 99)
	raw = append(raw, make([]byte, 16)...)
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Errorf("version error %v, want ErrBadVersion", err)
	}
}

func TestReadTruncated(t *testing.T) {
	tr := Record(workload.NewUniform(50, 50), 100, 1)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestReadImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("SCTR")
	hdr := make([]byte, 18)
	hdr[1] = 1 // version 1
	// m = 0
	buf.Write(hdr)
	if _, err := Read(&buf); err == nil {
		t.Error("m=0 header accepted")
	}
}

func TestFrequenciesMatchDistribution(t *testing.T) {
	dist := workload.NewAdversarial(100, 10, 0)
	tr := Record(dist, 100000, 3)
	freq := tr.Frequencies()
	for k := 0; k < 100; k++ {
		if math.Abs(freq[k]-dist.Prob(k)) > 0.01 {
			t.Errorf("key %d: empirical %v vs true %v", k, freq[k], dist.Prob(k))
		}
	}
}

func TestTraceDistributionDrivesSimulator(t *testing.T) {
	src := workload.NewAdversarial(200, 21, 0)
	tr := Record(src, 50000, 9)
	pmf, err := tr.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	if pmf.NumKeys() != 200 {
		t.Errorf("PMF keys = %d", pmf.NumKeys())
	}
	// The recorded distribution should have close to the source's support.
	if pmf.Support() < 20 || pmf.Support() > 21 {
		t.Errorf("support = %d, want ~21", pmf.Support())
	}
}

func TestRecordPanicsOnNegativeCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative count did not panic")
		}
	}()
	Record(workload.NewUniform(10, 10), -1, 1)
}
