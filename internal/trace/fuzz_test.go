package trace

import (
	"bytes"
	"testing"

	"securecache/internal/workload"
)

// FuzzRead hammers the trace decoder with arbitrary bytes: it must never
// panic or allocate unboundedly, and accepted traces must round-trip.
func FuzzRead(f *testing.F) {
	var good bytes.Buffer
	if err := Record(workload.NewUniform(20, 20), 50, 1).Write(&good); err != nil {
		f.Fatal(err)
	}
	var empty bytes.Buffer
	if err := (&Trace{M: 1}).Write(&empty); err != nil {
		f.Fatal(err)
	}
	for _, s := range [][]byte{good.Bytes(), empty.Bytes(), []byte("SCTR"), {}, []byte("garbage")} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := Read(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("accepted trace fails to write: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded trace fails to read: %v", err)
		}
		if back.M != tr.M || len(back.Keys) != len(tr.Keys) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", tr.M, len(tr.Keys), back.M, len(back.Keys))
		}
		for i := range tr.Keys {
			if back.Keys[i] != tr.Keys[i] {
				t.Fatalf("round trip changed key %d", i)
			}
		}
	})
}
