package stats

import (
	"math"
	"strings"
	"testing"

	"securecache/internal/xrand"
)

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{0, 0.5, 1, 5.5, 9.999, -1, 10, 11} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	if h.Underflow() != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow())
	}
	if h.Count(0) != 2 { // 0 and 0.5
		t.Errorf("bucket 0 count = %d, want 2", h.Count(0))
	}
	if h.Count(1) != 1 || h.Count(5) != 1 || h.Count(9) != 1 {
		t.Error("mid buckets miscounted")
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	h := NewHistogram(2, 12, 5)
	lo, hi := h.BucketBounds(0)
	if lo != 2 || hi != 4 {
		t.Errorf("bucket 0 bounds = [%v,%v), want [2,4)", lo, hi)
	}
	lo, hi = h.BucketBounds(4)
	if lo != 10 || hi != 12 {
		t.Errorf("bucket 4 bounds = [%v,%v), want [10,12)", lo, hi)
	}
	if h.Buckets() != 5 {
		t.Errorf("Buckets = %d, want 5", h.Buckets())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 1, 4)
	b := NewHistogram(0, 1, 4)
	a.Add(0.1)
	b.Add(0.1)
	b.Add(0.9)
	b.Add(2) // overflow
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 4 || a.Count(0) != 2 || a.Count(3) != 1 || a.Overflow() != 1 {
		t.Errorf("merge result wrong: total=%d c0=%d c3=%d over=%d",
			a.Total(), a.Count(0), a.Count(3), a.Overflow())
	}
}

func TestHistogramMergeGeometryMismatch(t *testing.T) {
	a := NewHistogram(0, 1, 4)
	b := NewHistogram(0, 2, 4)
	if err := a.Merge(b); err == nil {
		t.Error("merge of mismatched histograms did not error")
	}
}

func TestHistogramQuantileEstimate(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	rng := xrand.New(3)
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		x := rng.Float64() * 100
		h.Add(x)
		samples = append(samples, x)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		est := h.QuantileEstimate(q)
		exact := Quantile(samples, q)
		if math.Abs(est-exact) > 2 { // within 2 bucket widths
			t.Errorf("q=%v: histogram estimate %v, exact %v", q, est, exact)
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"hi<=lo":       func() { NewHistogram(1, 1, 4) },
		"zero buckets": func() { NewHistogram(0, 1, 0) },
		"empty q":      func() { NewHistogram(0, 1, 2).QuantileEstimate(0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(-3)
	h.Add(99)
	s := h.String()
	if !strings.Contains(s, "underflow 1") || !strings.Contains(s, "overflow 1") {
		t.Errorf("String() missing under/overflow lines:\n%s", s)
	}
}

func TestP2QuantileAgainstExact(t *testing.T) {
	rng := xrand.New(5)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		p := NewP2Quantile(q)
		samples := make([]float64, 0, 50000)
		for i := 0; i < 50000; i++ {
			x := rng.Float64()
			p.Add(x)
			samples = append(samples, x)
		}
		exact := Quantile(samples, q)
		if math.Abs(p.Value()-exact) > 0.01 {
			t.Errorf("P2(%v) = %v, exact %v", q, p.Value(), exact)
		}
		if p.N() != 50000 {
			t.Errorf("P2 N = %d, want 50000", p.N())
		}
	}
}

func TestP2QuantileSmallN(t *testing.T) {
	p := NewP2Quantile(0.5)
	if !math.IsNaN(p.Value()) {
		t.Error("empty P2 estimator should return NaN")
	}
	p.Add(3)
	p.Add(1)
	p.Add(2)
	if got := p.Value(); got != 2 {
		t.Errorf("P2 median of {1,2,3} = %v, want 2", got)
	}
}

func TestP2QuantilePanicsOnBadQ(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2Quantile(%v) did not panic", q)
				}
			}()
			NewP2Quantile(q)
		}()
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	var s Summary
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
	}
}

func BenchmarkP2Add(b *testing.B) {
	p := NewP2Quantile(0.99)
	for i := 0; i < b.N; i++ {
		p.Add(float64(i % 1000))
	}
}
