package stats

import (
	"math"
	"testing"
	"testing/quick"

	"securecache/internal/xrand"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEqual(s.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if !almostEqual(s.Sum(), 40, 1e-12) {
		t.Errorf("Sum = %v, want 40", s.Sum())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty summary should return NaN statistics")
	}
	if !math.IsNaN(s.Variance()) {
		t.Error("empty summary variance should be NaN")
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := xrand.New(1)
	var all, a, b Summary
	for i := 0; i < 10000; i++ {
		x := rng.Float64()*100 - 50
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v != sequential %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Errorf("merged variance %v != sequential %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Merge(b) // empty into empty
	if a.N() != 0 {
		t.Error("merge of empties should stay empty")
	}
	b.Add(3)
	a.Merge(b) // non-empty into empty
	if a.N() != 1 || a.Mean() != 3 {
		t.Error("merge into empty lost data")
	}
	var c Summary
	a.Merge(c) // empty into non-empty
	if a.N() != 1 {
		t.Error("merging an empty summary changed data")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	rng := xrand.New(2)
	var small, large Summary
	for i := 0; i < 100; i++ {
		small.Add(rng.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(rng.Float64())
	}
	if small.CI95() <= large.CI95() {
		t.Errorf("CI95 did not shrink: n=100 gives %v, n=10000 gives %v",
			small.CI95(), large.CI95())
	}
}

func TestQuantileExactValues(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(data, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	data := []float64{5, 1, 3}
	Quantile(data, 0.5)
	if data[0] != 5 || data[1] != 1 || data[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileSingleton(t *testing.T) {
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("Quantile of singleton = %v, want 7", got)
	}
}

func TestQuantilesMatchesQuantile(t *testing.T) {
	data := []float64{9, 1, 4, 4, 7, 2, 8}
	qs := []float64{0, 0.3, 0.5, 0.9, 1}
	multi := Quantiles(data, qs...)
	for i, q := range qs {
		if single := Quantile(data, q); !almostEqual(multi[i], single, 1e-12) {
			t.Errorf("Quantiles[%v] = %v, Quantile = %v", q, multi[i], single)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMaxOfMeanOf(t *testing.T) {
	data := []float64{3, -1, 4, 1, 5}
	if MaxOf(data) != 5 {
		t.Errorf("MaxOf = %v, want 5", MaxOf(data))
	}
	if !almostEqual(MeanOf(data), 2.4, 1e-12) {
		t.Errorf("MeanOf = %v, want 2.4", MeanOf(data))
	}
}

func TestSummaryQuickProperty(t *testing.T) {
	// Mean is always within [min, max].
	f := func(xs []float64) bool {
		var s Summary
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				continue
			}
			s.Add(x)
		}
		if s.N() > 0 {
			// Welford's mean can land a few ULPs outside [min, max];
			// allow a relative slack proportional to the range.
			slack := 1e-9 * (1 + s.Max() - s.Min())
			ok = s.Mean() >= s.Min()-slack && s.Mean() <= s.Max()+slack
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
