package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram over [Lo, Hi) with equal-width
// buckets, plus underflow and overflow buckets. It records counts only;
// use Summary alongside it for moments.
type Histogram struct {
	lo, hi    float64
	width     float64
	counts    []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram returns a histogram over [lo, hi) with buckets equal-width
// bins. It panics if hi <= lo or buckets <= 0.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if hi <= lo {
		panic(fmt.Sprintf("stats: NewHistogram with hi %v <= lo %v", hi, lo))
	}
	if buckets <= 0 {
		panic("stats: NewHistogram with non-positive bucket count")
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(buckets),
		counts: make([]int64, buckets),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.counts) { // guard against float rounding at hi
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Total returns the number of observations, including under/overflow.
func (h *Histogram) Total() int64 { return h.total }

// Count returns the count in bucket i.
func (h *Histogram) Count(i int) int64 { return h.counts[i] }

// Buckets returns the number of regular buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	return h.lo + float64(i)*h.width, h.lo + float64(i+1)*h.width
}

// Underflow and Overflow return out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.underflow }

// Overflow returns the count of observations >= Hi.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Merge adds another histogram's counts into h. The two histograms must
// have identical geometry.
func (h *Histogram) Merge(o *Histogram) error {
	if h.lo != o.lo || h.hi != o.hi || len(h.counts) != len(o.counts) {
		return fmt.Errorf("stats: merging histograms with different geometry ([%v,%v)x%d vs [%v,%v)x%d)",
			h.lo, h.hi, len(h.counts), o.lo, o.hi, len(o.counts))
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.underflow += o.underflow
	h.overflow += o.overflow
	h.total += o.total
	return nil
}

// QuantileEstimate returns an estimate of the q-quantile assuming uniform
// density within each bucket. Out-of-range mass is attributed to the
// boundary values. It panics on an empty histogram.
func (h *Histogram) QuantileEstimate(q float64) float64 {
	if h.total == 0 {
		panic("stats: QuantileEstimate of empty histogram")
	}
	target := q * float64(h.total)
	cum := float64(h.underflow)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.counts {
		if cum+float64(c) >= target && c > 0 {
			lo, _ := h.BucketBounds(i)
			frac := (target - cum) / float64(c)
			return lo + frac*h.width
		}
		cum += float64(c)
	}
	return h.hi
}

// String renders a compact ASCII bar chart, for experiment logs.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := int64(1)
	for _, c := range h.counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.counts {
		lo, hi := h.BucketBounds(i)
		bar := strings.Repeat("#", int(math.Round(40*float64(c)/float64(maxC))))
		fmt.Fprintf(&b, "[%10.4g,%10.4g) %8d %s\n", lo, hi, c, bar)
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.overflow)
	}
	return b.String()
}

// P2Quantile estimates a single quantile online with O(1) memory using the
// P² algorithm (Jain & Chlamtac, 1985). It is used where the harness cannot
// afford to retain all samples (e.g. per-request latencies in the kvstore).
type P2Quantile struct {
	q       float64
	n       int
	heights [5]float64
	pos     [5]float64
	desired [5]float64
	inc     [5]float64
	initial []float64
}

// NewP2Quantile returns an estimator for the q-quantile, 0 < q < 1.
func NewP2Quantile(q float64) *P2Quantile {
	if q <= 0 || q >= 1 {
		panic(fmt.Sprintf("stats: NewP2Quantile with q=%v", q))
	}
	p := &P2Quantile{q: q, initial: make([]float64, 0, 5)}
	p.desired = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add records one observation.
func (p *P2Quantile) Add(x float64) {
	if p.n < 5 {
		p.initial = append(p.initial, x)
		p.n++
		if p.n == 5 {
			sortFive(p.initial)
			copy(p.heights[:], p.initial)
			p.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	p.n++
	// Find cell k such that heights[k] <= x < heights[k+1].
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.desired {
		p.desired[i] += p.inc[i]
	}
	// Adjust the three middle markers if needed.
	for i := 1; i <= 3; i++ {
		d := p.desired[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2Quantile) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return p.heights[i] + d*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// N returns the number of observations so far.
func (p *P2Quantile) N() int { return p.n }

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact sample quantile.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	if p.n < 5 {
		tmp := make([]float64, len(p.initial))
		copy(tmp, p.initial)
		return Quantile(tmp, p.q)
	}
	return p.heights[2]
}

func sortFive(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
