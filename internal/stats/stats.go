// Package stats provides the streaming statistics used by the simulation
// harness: numerically stable moment accumulation (Welford), histograms,
// P² streaming quantiles, and cross-run aggregation.
//
// Everything in this package is allocation-light and deterministic; none of
// the types are safe for concurrent use (the harness shards work per
// goroutine and merges afterwards).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates count, mean, variance, min and max of a stream using
// Welford's online algorithm. The zero value is ready to use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Merge folds another summary into s (parallel-merge formula of Chan et
// al.), so per-goroutine summaries can be combined exactly.
func (s *Summary) Merge(o Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.mean += delta * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or NaN if empty.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Min returns the minimum observation, or NaN if empty.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the maximum observation, or NaN if empty.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Sum returns n * mean.
func (s *Summary) Sum() float64 { return float64(s.n) * s.mean }

// Variance returns the unbiased sample variance, or NaN with fewer than
// two observations.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean. With the hundreds of runs the harness uses, the
// normal approximation to the t distribution is accurate to <1%.
func (s *Summary) CI95() float64 { return 1.96 * s.StdErr() }

// String formats the summary for experiment logs.
func (s *Summary) String() string {
	if s.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g max=%.4g",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Quantile computes the q-quantile (0 <= q <= 1) of data using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// The input slice is not modified. It panics on empty data or q outside
// [0,1].
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		panic("stats: Quantile of empty data")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile with q=%v", q))
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles computes several quantiles with one sort.
func Quantiles(data []float64, qs ...float64) []float64 {
	if len(data) == 0 {
		panic("stats: Quantiles of empty data")
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			panic(fmt.Sprintf("stats: Quantiles with q=%v", q))
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// MaxOf returns the maximum of data; it panics on empty input.
func MaxOf(data []float64) float64 {
	if len(data) == 0 {
		panic("stats: MaxOf empty data")
	}
	m := data[0]
	for _, v := range data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MeanOf returns the mean of data; it panics on empty input.
func MeanOf(data []float64) float64 {
	if len(data) == 0 {
		panic("stats: MeanOf empty data")
	}
	var s float64
	for _, v := range data {
		s += v
	}
	return s / float64(len(data))
}
