// Package proto defines the binary wire protocol spoken between kvstore
// clients, the front-end, and back-end nodes.
//
// Every message is a length-prefixed frame:
//
//	uint32  body length (big endian, excludes the prefix itself)
//	body    request or response payload
//
// Request body:
//
//	byte    op (OpGet, OpSet, OpDel, OpStats, OpPing)
//	uint16  key length, then key bytes (absent for OpStats/OpPing)
//	uint32  value length, then value bytes (OpSet and OpCas)
//	uint64  expected version (OpCas only)
//	[ext]   optional epoch extension (see below)
//
// Single-key requests (and OpScan) may carry one trailing extension
// block tagging the request with a partition epoch:
//
//	byte    0xE1 (extension tag)
//	uint32  epoch
//	byte    flags (bit 0: epoch-guarded write)
//
// The block is emitted only when the epoch or a flag is non-zero, so
// pre-rotation peers and pre-extension frames stay byte-identical.
// Unknown tags or flags are rejected as malformed — the extension is a
// versioning escape hatch, not a skip-what-you-don't-know channel.
//
// Response body:
//
//	byte    status (StatusOK, StatusNotFound, StatusError, StatusBusy,
//	        StatusConflict)
//	uint32  payload length, then payload bytes
//	        (the value for GET, JSON metrics for STATS, the error
//	        message for StatusError)
//	[ext]   optional load-hint extension (see below)
//
// Responses may carry one trailing extension block piggybacking the
// server's instantaneous load (tier frontends report in-flight
// requests so power-of-two-choices clients can pick the less-loaded
// candidate without extra round trips):
//
//	byte    0xE3 (load-hint tag)
//	uint32  load
//
// The block is emitted only when the server opts in (LoadHinted), so
// every pre-extension frame stays byte-identical and old peers are
// unaffected unless they talk to a hinting frontend.
//
// Requests and responses may both carry a correlation-ID extension,
// which is what turns the lockstep protocol into a pipelined one:
//
//	byte    0xE4 (correlation tag)
//	uvarint correlation ID (non-zero)
//
// A client that pipelines stamps every request with a connection-unique
// non-zero ID and may have many frames in flight; the server echoes the
// ID on the matching response, which may be written out of order. ID 0
// encodes as no extension at all, so a non-pipelining client's frames
// are byte-identical to the pre-extension format and the exchange stays
// strict lockstep: one request, one response, in order. Servers treat
// the first correlated frame on a connection as the upgrade signal;
// peers that predate the extension reject the unknown tag as malformed,
// so a pipelining client talking to an old server fails loudly on the
// first frame instead of desynchronizing mid-stream.
//
// There is still no versioning negotiation. Frames are bounded
// (MaxKeyLen, MaxValueLen) so a malicious peer cannot make a server
// allocate unbounded memory.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Op identifies a request operation.
type Op byte

// Request operations.
const (
	OpGet Op = iota + 1
	OpSet
	OpDel
	OpStats
	OpPing
)

// OpGetV is the versioned read: like OpGet, but the response carries the
// entry's logical version so replica copies are comparable. StatusOK
// payload is [uint64 version][value bytes]; StatusNotFound payload is
// either empty (key unknown) or [uint64 version] (a tombstone — the key
// was deleted at that version, which is authoritative against any older
// live copy). See EncodeGetVPayload.
const OpGetV Op = 8

// OpInvalidate asks a tier frontend to drop its cached copy of a key.
// Power-of-two-choices clients route a write through one of the key's
// two candidate frontends; the other candidate may still hold the old
// value, so the client (or the writing frontend) follows up with an
// OpInvalidate to bound the staleness window to one round trip. The
// response is StatusOK whether or not the key was cached. Backends
// answer StatusError (they hold no cache).
const OpInvalidate Op = 10

// OpCas is a versioned compare-and-swap write. The body carries the key,
// the new value, and a fixed [uint64 expected version] after the value:
// the write applies only if the entry's current live version equals the
// expectation (0 expects an absent or tombstoned key). The new version
// rides the 0xE2 version extension (0 = the server assigns one). On
// success the response is StatusOK with payload [uint64 new version]; on
// a precondition miss it is StatusConflict with payload [uint64 current
// live version] (plus an optional disposition byte — see StatusConflict).
const OpCas Op = 11

// OpMembers asks a frontend for its current membership view. Key-less,
// like OpStats; the StatusOK payload is a JSON document (the kvstore
// MembershipStatus: view version, node list with states, the member
// addresses, and the provisioned cache size). Load generators use it to
// refresh their address lists when a node they are polling drains, and
// secguard uses it to re-derive Eq. 10 thresholds when n changes.
// Backends answer StatusError (they do not own the view).
const OpMembers Op = 9

// String names the op for logs and errors.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDel:
		return "DEL"
	case OpStats:
		return "STATS"
	case OpPing:
		return "PING"
	case OpMGet:
		return "MGET"
	case OpScan:
		return "SCAN"
	case OpGetV:
		return "GETV"
	case OpMembers:
		return "MEMBERS"
	case OpInvalidate:
		return "INVALIDATE"
	case OpCas:
		return "CAS"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

func (o Op) valid() bool {
	return (o >= OpGet && o <= OpPing) || o == OpMGet || o == OpScan || o == OpGetV || o == OpMembers || o == OpInvalidate || o == OpCas
}

// hasKey reports whether the op carries a key.
func (o Op) hasKey() bool {
	return o == OpGet || o == OpSet || o == OpDel || o == OpGetV || o == OpInvalidate || o == OpCas
}

// hasValue reports whether the op carries a value.
func (o Op) hasValue() bool { return o == OpSet || o == OpCas }

// Status identifies a response outcome.
type Status byte

// Response statuses.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusError
	// StatusBusy means the server shed the request under overload
	// control: it is alive and healthy but refuses to queue more work.
	// Clients should fail over to another replica (or back off) rather
	// than treat the node as failed — a shedding node must not trip
	// circuit breakers.
	StatusBusy
	// StatusConflict means an OpCas found a live version different from
	// the expectation. The payload is [uint64 current live version],
	// optionally followed by one disposition byte: 0x01 marks a partial
	// conflict — the new value reached at least one replica but fewer
	// than the write quorum, so the CAS may still surface through
	// anti-entropy and the caller must treat its fate as ambiguous.
	StatusConflict
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusError:
		return "ERROR"
	case StatusBusy:
		return "BUSY"
	case StatusConflict:
		return "CONFLICT"
	default:
		return fmt.Sprintf("Status(%d)", byte(s))
	}
}

func (s Status) valid() bool { return s >= StatusOK && s <= StatusConflict }

// Size limits. Oversized frames are rejected before allocation.
const (
	MaxKeyLen   = 1 << 10 // 1 KiB keys
	MaxValueLen = 1 << 22 // 4 MiB values
	maxFrame    = MaxValueLen + MaxKeyLen + 16
	// MaxPayloadLen bounds a response payload: a max-size value plus
	// per-entry framing (key, lengths, epoch) must fit, so a scan page
	// carrying one maximal entry is still deliverable.
	MaxPayloadLen = maxFrame - 5
)

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("proto: frame exceeds size limit")
	ErrMalformed     = errors.New("proto: malformed message")
	// ErrBusy is returned for StatusBusy responses: the server shed the
	// request under overload control. Retrying the same node immediately
	// only feeds the overload; fail over or back off instead.
	ErrBusy = errors.New("proto: server busy, request shed")
	// ErrConflict is returned for StatusConflict responses: a
	// compare-and-swap found a live version different from the one the
	// caller expected. Re-read the entry and retry with the fresh
	// version; the request was answered, not lost.
	ErrConflict = errors.New("proto: compare-and-swap conflict")
)

// Epoch extension encoding: tag byte, uint32 epoch, flag byte.
const (
	extEpochTag    = 0xE1
	extEpochLen    = 6
	flagEpochGuard = 1 << 0
	// flagScanTombs (OpScan only) includes tombstones in the page so
	// anti-entropy can propagate deletes; migration scans omit them.
	flagScanTombs = 1 << 1
	// flagScanDigest (OpScan only) elides value bytes from the page,
	// substituting a 64-bit content hash — the cheap mode the anti-entropy
	// repairer diffs replica pairs with.
	flagScanDigest = 1 << 2
)

// Load-hint extension encoding (responses only): tag byte, uint32 load.
// Emitted only when Response.LoadHinted is set, so hint-less frames are
// byte-identical to the pre-extension format.
const (
	extLoadTag = 0xE3
	extLoadLen = 5
)

// Version extension encoding: tag byte, uint64 logical version. Valid on
// OpSet (the write applies only over strictly older versions) and OpDel
// (delete becomes a versioned tombstone write). Version 0 encodes as no
// extension — the unversioned last-write-wins semantics of the seed.
const (
	extVerTag = 0xE2
	extVerLen = 9
)

// Correlation extension encoding: tag byte, uvarint correlation ID.
// Valid on every request op (including OpMGet) and on responses. ID 0
// encodes as no extension — the legacy lockstep exchange — so only
// pipelined peers ever emit the tag. See the package comment for the
// pipelining contract.
const extCorrTag = 0xE4

// corrExtLen returns the encoded size of the correlation extension for
// a given ID (tag byte plus uvarint).
func corrExtLen(corr uint64) int {
	n := 1
	for {
		n++
		corr >>= 7
		if corr == 0 {
			return n
		}
	}
}

// appendCorrExt appends the correlation extension block.
func appendCorrExt(dst []byte, corr uint64) []byte {
	dst = append(dst, extCorrTag)
	return binary.AppendUvarint(dst, corr)
}

// parseCorrExt decodes the uvarint after an extCorrTag byte, returning
// the ID and the remaining body. A zero or unparseable ID is malformed:
// zero must encode as no extension, so an explicit zero is a confused
// (or hostile) peer.
func parseCorrExt(body []byte) (uint64, []byte, error) {
	corr, n := binary.Uvarint(body)
	if n <= 0 || corr == 0 {
		return 0, nil, fmt.Errorf("%w: bad correlation extension", ErrMalformed)
	}
	return corr, body[n:], nil
}

// Request is a client -> server message. Key/Value apply to the
// single-key ops; Keys applies to OpMGet; ScanCursor/ScanLimit apply to
// OpScan.
type Request struct {
	Op    Op
	Key   string
	Value []byte
	Keys  []string

	// Epoch tags the request with a partition epoch. For OpSet it is
	// the epoch the stored entry is stamped with; for OpScan it is an
	// exclusive filter (only entries below this epoch are returned,
	// 0 = all). Zero epoch with no flags is encoded as no extension at
	// all, keeping pre-rotation frames unchanged.
	Epoch uint32
	// EpochGuard marks an OpSet as a migration copy: the store applies
	// it only if the key is absent or stored under a strictly older
	// epoch, so a racing client write (stamped with the current epoch)
	// can never be clobbered by stale migrated data.
	EpochGuard bool

	// Ver is the entry's logical version (0 = unversioned). On OpSet the
	// store applies the write only over a strictly older stored version;
	// on OpDel it turns the delete into a tombstone write at this
	// version, so replicas that missed the delete can be reconciled
	// without resurrecting the key. On OpCas it is the version the new
	// value will be stored at (0 = the server assigns one).
	Ver uint64

	// CasExpect is the OpCas precondition: the entry's current live
	// version must equal it for the swap to apply. 0 expects an absent
	// or tombstoned key, so CAS-create is expressible.
	CasExpect uint64

	// ScanCursor resumes an OpScan after the entry with this key ID
	// (0 starts from the beginning).
	ScanCursor uint64
	// ScanLimit caps the entries per OpScan response, in
	// [1, MaxBatchKeys].
	ScanLimit uint16
	// ScanTombs includes tombstones in an OpScan page.
	ScanTombs bool
	// ScanDigest replaces value bytes with 64-bit content hashes in an
	// OpScan page.
	ScanDigest bool

	// Corr is the request's correlation ID (0 = lockstep, encoded as no
	// extension). A pipelining client assigns a connection-unique
	// non-zero ID per in-flight frame; the server echoes it on the
	// response so out-of-order completions can be matched.
	Corr uint64
}

// hasEpochExt reports whether the request carries the epoch extension.
func (req *Request) hasEpochExt() bool {
	return req.Epoch != 0 || req.EpochGuard || req.ScanTombs || req.ScanDigest
}

// hasVerExt reports whether the request carries the version extension.
func (req *Request) hasVerExt() bool { return req.Ver != 0 }

// Response is a server -> client message. For StatusError, Payload holds
// the UTF-8 error message.
type Response struct {
	Status  Status
	Payload []byte

	// Load is the server's instantaneous load (in-flight requests) when
	// LoadHinted is set. Tier frontends piggyback it on every response so
	// power-of-two-choices clients can balance without polling.
	Load uint32
	// LoadHinted reports whether the response carried (or should carry)
	// the load-hint extension. A zero Load with LoadHinted set is still
	// encoded — "idle" is a meaningful hint.
	LoadHinted bool

	// Corr echoes the matched request's correlation ID (0 = lockstep,
	// encoded as no extension). Pipelined clients use it to pair a
	// response with its request; anything unknown is a protocol
	// violation that tears the connection down.
	Corr uint64
}

// Err returns the response's error: ErrBusy for StatusBusy, ErrConflict
// for StatusConflict, the remote message for StatusError, nil otherwise.
func (r *Response) Err() error {
	switch r.Status {
	case StatusBusy:
		return ErrBusy
	case StatusConflict:
		return ErrConflict
	case StatusError:
		return fmt.Errorf("proto: remote error: %s", r.Payload)
	default:
		return nil
	}
}

// AppendRequest encodes req into dst (after the 4-byte frame prefix) and
// returns the grown slice. It validates limits.
func AppendRequest(dst []byte, req *Request) ([]byte, error) {
	if !req.Op.valid() {
		return dst, fmt.Errorf("%w: bad op %d", ErrMalformed, req.Op)
	}
	if req.Op == OpMGet {
		if req.hasEpochExt() {
			return dst, fmt.Errorf("%w: batch requests cannot carry an epoch extension", ErrMalformed)
		}
		return appendMGetRequestCorr(dst, req.Keys, req.Corr)
	}
	if len(req.Key) > MaxKeyLen {
		return dst, fmt.Errorf("%w: key length %d", ErrFrameTooLarge, len(req.Key))
	}
	if len(req.Value) > MaxValueLen {
		return dst, fmt.Errorf("%w: value length %d", ErrFrameTooLarge, len(req.Value))
	}
	if req.Op == OpScan && (req.ScanLimit == 0 || req.ScanLimit > MaxBatchKeys) {
		return dst, fmt.Errorf("%w: scan limit %d outside [1, %d]", ErrMalformed, req.ScanLimit, MaxBatchKeys)
	}
	if (req.ScanTombs || req.ScanDigest) && req.Op != OpScan {
		return dst, fmt.Errorf("%w: scan flags on %s", ErrMalformed, req.Op)
	}
	if req.hasVerExt() && req.Op != OpSet && req.Op != OpDel && req.Op != OpCas {
		return dst, fmt.Errorf("%w: version extension on %s", ErrMalformed, req.Op)
	}
	if req.CasExpect != 0 && req.Op != OpCas {
		return dst, fmt.Errorf("%w: CAS expectation on %s", ErrMalformed, req.Op)
	}
	body := 1
	if req.Op.hasKey() {
		body += 2 + len(req.Key)
	}
	if req.Op.hasValue() {
		body += 4 + len(req.Value)
	}
	if req.Op == OpCas {
		body += 8
	}
	if req.Op == OpScan {
		body += 8 + 2
	}
	if req.hasEpochExt() {
		body += extEpochLen
	}
	if req.hasVerExt() {
		body += extVerLen
	}
	if req.Corr != 0 {
		body += corrExtLen(req.Corr)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(req.Op))
	if req.Op.hasKey() {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Key)))
		dst = append(dst, req.Key...)
	}
	if req.Op.hasValue() {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(req.Value)))
		dst = append(dst, req.Value...)
	}
	if req.Op == OpCas {
		dst = binary.BigEndian.AppendUint64(dst, req.CasExpect)
	}
	if req.Op == OpScan {
		dst = binary.BigEndian.AppendUint64(dst, req.ScanCursor)
		dst = binary.BigEndian.AppendUint16(dst, req.ScanLimit)
	}
	if req.hasEpochExt() {
		dst = append(dst, extEpochTag)
		dst = binary.BigEndian.AppendUint32(dst, req.Epoch)
		var flags byte
		if req.EpochGuard {
			flags |= flagEpochGuard
		}
		if req.ScanTombs {
			flags |= flagScanTombs
		}
		if req.ScanDigest {
			flags |= flagScanDigest
		}
		dst = append(dst, flags)
	}
	if req.hasVerExt() {
		dst = append(dst, extVerTag)
		dst = binary.BigEndian.AppendUint64(dst, req.Ver)
	}
	if req.Corr != 0 {
		dst = appendCorrExt(dst, req.Corr)
	}
	return dst, nil
}

// WriteRequest frames and writes req to w. The encode buffer is pooled;
// w must not retain the slice past the Write call.
func WriteRequest(w io.Writer, req *Request) error {
	fb := getBuf()
	buf, err := AppendRequest(fb.b, req)
	fb.b = buf
	if err == nil {
		_, err = w.Write(buf)
	}
	fb.release()
	return err
}

// reqPool and respPool recycle decoded message structs on the serving
// hot path: one struct allocation per message read is measurable at
// pipelined throughputs. Only the struct shell is pooled — key,
// value, and payload backing storage is always freshly allocated by
// the readers (stores and callers retain those slices), so releasing
// a message never invalidates data previously extracted from it.
var (
	reqPool  = sync.Pool{New: func() interface{} { return new(Request) }}
	respPool = sync.Pool{New: func() interface{} { return new(Response) }}
)

// AcquireRequest returns a zeroed Request from the pool. Callers on
// hot paths pair it with ReleaseRequest once the request has been
// encoded and answered; everyone else can keep building requests with
// composite literals.
func AcquireRequest() *Request { return reqPool.Get().(*Request) }

// ReleaseRequest recycles req's struct for a future ReadRequest or
// AcquireRequest. The caller must be done with the struct itself;
// strings and slices read out of it earlier remain valid. Optional —
// an unreleased request is ordinary garbage.
func ReleaseRequest(req *Request) {
	*req = Request{}
	reqPool.Put(req)
}

// ReleaseResponse recycles resp's struct for a future ReadResponse;
// same contract as ReleaseRequest.
func ReleaseResponse(resp *Response) {
	*resp = Response{}
	respPool.Put(resp)
}

// ReadRequest reads one framed request from r.
func ReadRequest(r io.Reader) (*Request, error) {
	fb, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	// The frame is pooled: every field parsed below is copied out of it
	// (string conversions, explicit value copies) before release.
	defer fb.release()
	body := fb.b
	if len(body) < 1 {
		return nil, fmt.Errorf("%w: empty body", ErrMalformed)
	}
	req := reqPool.Get().(*Request)
	req.Op = Op(body[0])
	body = body[1:]
	if !req.Op.valid() {
		return nil, fmt.Errorf("%w: bad op %d", ErrMalformed, req.Op)
	}
	if req.Op == OpMGet {
		keys, corr, err := parseMGetBody(body)
		if err != nil {
			return nil, err
		}
		req.Keys = keys
		req.Corr = corr
		return req, nil
	}
	if req.Op.hasKey() {
		if len(body) < 2 {
			return nil, fmt.Errorf("%w: truncated key length", ErrMalformed)
		}
		klen := int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if klen > MaxKeyLen || len(body) < klen {
			return nil, fmt.Errorf("%w: key length %d vs body %d", ErrMalformed, klen, len(body))
		}
		req.Key = string(body[:klen])
		body = body[klen:]
	}
	if req.Op.hasValue() {
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: truncated value length", ErrMalformed)
		}
		vlen := int(binary.BigEndian.Uint32(body))
		body = body[4:]
		if vlen > MaxValueLen || len(body) < vlen {
			return nil, fmt.Errorf("%w: value length %d vs body %d", ErrMalformed, vlen, len(body))
		}
		req.Value = append([]byte(nil), body[:vlen]...)
		body = body[vlen:]
	}
	if req.Op == OpCas {
		if len(body) < 8 {
			return nil, fmt.Errorf("%w: truncated CAS expectation", ErrMalformed)
		}
		req.CasExpect = binary.BigEndian.Uint64(body)
		body = body[8:]
	}
	if req.Op == OpScan {
		if len(body) < 10 {
			return nil, fmt.Errorf("%w: truncated scan body", ErrMalformed)
		}
		req.ScanCursor = binary.BigEndian.Uint64(body)
		req.ScanLimit = binary.BigEndian.Uint16(body[8:])
		body = body[10:]
		if req.ScanLimit == 0 || req.ScanLimit > MaxBatchKeys {
			return nil, fmt.Errorf("%w: scan limit %d outside [1, %d]", ErrMalformed, req.ScanLimit, MaxBatchKeys)
		}
	}
	sawEpoch, sawVer := false, false
	for len(body) > 0 {
		switch body[0] {
		case extEpochTag:
			if sawEpoch || len(body) < extEpochLen {
				return nil, fmt.Errorf("%w: bad epoch extension (%d bytes)", ErrMalformed, len(body))
			}
			sawEpoch = true
			req.Epoch = binary.BigEndian.Uint32(body[1:])
			flags := body[5]
			if flags&^byte(flagEpochGuard|flagScanTombs|flagScanDigest) != 0 {
				return nil, fmt.Errorf("%w: unknown epoch flags %#x", ErrMalformed, flags)
			}
			req.EpochGuard = flags&flagEpochGuard != 0
			req.ScanTombs = flags&flagScanTombs != 0
			req.ScanDigest = flags&flagScanDigest != 0
			if (req.ScanTombs || req.ScanDigest) && req.Op != OpScan {
				return nil, fmt.Errorf("%w: scan flags on %s", ErrMalformed, req.Op)
			}
			body = body[extEpochLen:]
		case extVerTag:
			if sawVer || len(body) < extVerLen {
				return nil, fmt.Errorf("%w: bad version extension (%d bytes)", ErrMalformed, len(body))
			}
			if req.Op != OpSet && req.Op != OpDel && req.Op != OpCas {
				return nil, fmt.Errorf("%w: version extension on %s", ErrMalformed, req.Op)
			}
			sawVer = true
			req.Ver = binary.BigEndian.Uint64(body[1:])
			body = body[extVerLen:]
		case extCorrTag:
			if req.Corr != 0 {
				return nil, fmt.Errorf("%w: duplicate correlation extension", ErrMalformed)
			}
			var err error
			req.Corr, body, err = parseCorrExt(body[1:])
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(body))
		}
	}
	return req, nil
}

// EncodeGetVPayload packs a versioned-read result: [uint64 version] then
// the value bytes (tombstone responses carry the version alone on a
// StatusNotFound — see OpGetV).
func EncodeGetVPayload(ver uint64, value []byte) ([]byte, error) {
	if len(value) > MaxValueLen {
		return nil, fmt.Errorf("%w: value length %d", ErrFrameTooLarge, len(value))
	}
	out := make([]byte, 0, 8+len(value))
	out = binary.BigEndian.AppendUint64(out, ver)
	return append(out, value...), nil
}

// DecodeGetVPayload unpacks an OpGetV StatusOK payload.
func DecodeGetVPayload(payload []byte) (ver uint64, value []byte, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: GETV payload %d bytes", ErrMalformed, len(payload))
	}
	ver = binary.BigEndian.Uint64(payload)
	if len(payload) > 8 {
		value = append([]byte(nil), payload[8:]...)
	}
	return ver, value, nil
}

// casPartialFlag marks a StatusConflict whose losing write still reached
// at least one replica (see StatusConflict).
const casPartialFlag = 0x01

// EncodeCasConflictPayload packs a StatusConflict payload: the current
// live version, plus a disposition byte when the losing write partially
// applied.
func EncodeCasConflictPayload(dst []byte, cur uint64, partial bool) []byte {
	dst = binary.BigEndian.AppendUint64(dst, cur)
	if partial {
		dst = append(dst, casPartialFlag)
	}
	return dst
}

// DecodeCasConflictPayload unpacks a StatusConflict payload.
func DecodeCasConflictPayload(payload []byte) (cur uint64, partial bool, err error) {
	if len(payload) < 8 {
		return 0, false, fmt.Errorf("%w: CAS conflict payload %d bytes", ErrMalformed, len(payload))
	}
	cur = binary.BigEndian.Uint64(payload)
	rest := payload[8:]
	switch {
	case len(rest) == 0:
	case len(rest) == 1 && rest[0] == casPartialFlag:
		partial = true
	default:
		return 0, false, fmt.Errorf("%w: CAS conflict disposition %x", ErrMalformed, rest)
	}
	return cur, partial, nil
}

// AppendResponse encodes resp into dst and returns the grown slice.
func AppendResponse(dst []byte, resp *Response) ([]byte, error) {
	if !resp.Status.valid() {
		return dst, fmt.Errorf("%w: bad status %d", ErrMalformed, resp.Status)
	}
	if len(resp.Payload) > MaxPayloadLen {
		return dst, fmt.Errorf("%w: payload length %d", ErrFrameTooLarge, len(resp.Payload))
	}
	body := 1 + 4 + len(resp.Payload)
	if resp.LoadHinted {
		body += extLoadLen
	}
	if resp.Corr != 0 {
		body += corrExtLen(resp.Corr)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(resp.Status))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.Payload)))
	dst = append(dst, resp.Payload...)
	if resp.LoadHinted {
		dst = append(dst, extLoadTag)
		dst = binary.BigEndian.AppendUint32(dst, resp.Load)
	}
	if resp.Corr != 0 {
		dst = appendCorrExt(dst, resp.Corr)
	}
	return dst, nil
}

// WriteResponse frames and writes resp to w. The encode buffer is
// pooled; w must not retain the slice past the Write call.
func WriteResponse(w io.Writer, resp *Response) error {
	fb := getBuf()
	buf, err := AppendResponse(fb.b, resp)
	fb.b = buf
	if err == nil {
		_, err = w.Write(buf)
	}
	fb.release()
	return err
}

// ReadResponse reads one framed response from r.
func ReadResponse(r io.Reader) (*Response, error) {
	fb, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	// Pooled frame: the payload is copied out below before release.
	defer fb.release()
	body := fb.b
	if len(body) < 5 {
		return nil, fmt.Errorf("%w: response body %d bytes", ErrMalformed, len(body))
	}
	resp := respPool.Get().(*Response)
	resp.Status = Status(body[0])
	if !resp.Status.valid() {
		return nil, fmt.Errorf("%w: bad status %d", ErrMalformed, resp.Status)
	}
	plen := int(binary.BigEndian.Uint32(body[1:]))
	body = body[5:]
	if plen > MaxPayloadLen || len(body) < plen {
		return nil, fmt.Errorf("%w: payload length %d vs body %d", ErrMalformed, plen, len(body))
	}
	if plen > 0 {
		resp.Payload = append([]byte(nil), body[:plen]...)
	}
	body = body[plen:]
	for len(body) > 0 {
		switch body[0] {
		case extLoadTag:
			if resp.LoadHinted || len(body) < extLoadLen {
				return nil, fmt.Errorf("%w: bad load-hint extension (%d bytes)", ErrMalformed, len(body))
			}
			resp.LoadHinted = true
			resp.Load = binary.BigEndian.Uint32(body[1:])
			body = body[extLoadLen:]
		case extCorrTag:
			if resp.Corr != 0 {
				return nil, fmt.Errorf("%w: duplicate correlation extension", ErrMalformed)
			}
			var err error
			resp.Corr, body, err = parseCorrExt(body[1:])
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: %d trailing response bytes", ErrMalformed, len(body))
		}
	}
	return resp, nil
}

// readFrame reads the 4-byte prefix and then the body into a pooled
// buffer (fb.b). The caller must release it once done parsing; nothing
// that outlives the call may alias fb.b.
//
// The body is read in frameChunk pieces, growing the buffer only as
// bytes actually arrive: a hostile peer claiming a maxFrame-sized body
// costs at most one chunk of memory until it delivers real data, instead
// of a multi-megabyte up-front allocation per connection.
func readFrame(r io.Reader) (*frameBuf, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err // io.EOF passes through for clean closes
	}
	n := int(binary.BigEndian.Uint32(prefix[:]))
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	fb := getBuf()
	for len(fb.b) < n {
		chunk := n - len(fb.b)
		if chunk > frameChunk {
			chunk = frameChunk
		}
		start := len(fb.b)
		fb.grow(start + chunk)
		fb.b = fb.b[:start+chunk]
		if _, err := io.ReadFull(r, fb.b[start:]); err != nil {
			fb.release()
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return fb, nil
}
