package proto

import (
	"bytes"
	"strings"
	"testing"
)

func TestMGetRequestRoundTrip(t *testing.T) {
	req := &Request{Op: OpMGet, Keys: []string{"a", "key-two", "", "third"}}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != OpMGet || len(got.Keys) != 4 {
		t.Fatalf("round trip: %+v", got)
	}
	for i, k := range req.Keys {
		if got.Keys[i] != k {
			t.Errorf("key %d: %q != %q", i, got.Keys[i], k)
		}
	}
}

func TestMGetRequestLimits(t *testing.T) {
	if _, err := AppendMGetRequest(nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	big := make([]string, MaxBatchKeys+1)
	if _, err := AppendMGetRequest(nil, big); err == nil {
		t.Error("oversized batch accepted")
	}
	if _, err := AppendMGetRequest(nil, []string{strings.Repeat("k", MaxKeyLen+1)}); err == nil {
		t.Error("oversized key accepted")
	}
}

func TestMGetPayloadRoundTrip(t *testing.T) {
	in := []MGetResult{
		{Found: true, Value: []byte("hello")},
		{Found: false},
		{Found: true, Value: nil},
	}
	payload, err := EncodeMGetPayload(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeMGetPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("decoded %d results", len(out))
	}
	if !out[0].Found || string(out[0].Value) != "hello" {
		t.Errorf("result 0: %+v", out[0])
	}
	if out[1].Found || out[2].Value != nil && len(out[2].Value) != 0 {
		t.Errorf("results 1/2: %+v %+v", out[1], out[2])
	}
	if !out[2].Found {
		t.Error("result 2 should be found with empty value")
	}
}

func TestMGetPayloadMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"zero count":    {0, 0},
		"truncated":     {0, 2, 1, 0, 0, 0, 0},
		"value overrun": {0, 1, 1, 0, 0, 0, 9, 'x'},
	}
	for name, raw := range cases {
		if _, err := DecodeMGetPayload(raw); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMGetRequestMalformedBody(t *testing.T) {
	// op byte + truncated count.
	raw := []byte{0, 0, 0, 2, byte(OpMGet), 0}
	if _, err := ReadRequest(bytes.NewReader(raw)); err == nil {
		t.Error("truncated MGET accepted")
	}
	// Claims 2 keys, provides 1.
	raw = []byte{0, 0, 0, 6, byte(OpMGet), 0, 2, 0, 1, 'k'}
	if _, err := ReadRequest(bytes.NewReader(raw)); err == nil {
		t.Error("short MGET accepted")
	}
}

func TestOpMGetString(t *testing.T) {
	if OpMGet.String() != "MGET" {
		t.Errorf("OpMGet.String() = %q", OpMGet.String())
	}
}
