package proto

import (
	"encoding/binary"
	"fmt"
)

// Batch reads: OpMGet carries up to MaxBatchKeys keys; the response
// payload packs per-key results. Batching matters operationally (a
// front-end can fetch a whole miss set from one backend in one round
// trip) and for the attack tooling (kvload drives much higher rates).
//
// Request body (after the op byte):
//
//	uint16  key count
//	count × [uint16 key length][key]
//
// Response payload (StatusOK):
//
//	uint16  result count (== key count, same order)
//	count × [byte found][uint32 value length][value]   (length 0 if !found)

// OpMGet is the batch-read operation.
const OpMGet Op = 6

// MaxBatchKeys bounds the keys per OpMGet request.
const MaxBatchKeys = 1024

// MGetResult is one key's outcome in a batch read.
type MGetResult struct {
	Found bool
	Value []byte
}

// AppendMGetRequest encodes a batch-read request (lockstep form; the
// pipelined path goes through AppendRequest, which threads the
// correlation ID).
func AppendMGetRequest(dst []byte, keys []string) ([]byte, error) {
	return appendMGetRequestCorr(dst, keys, 0)
}

// appendMGetRequestCorr encodes a batch-read request, appending the
// correlation extension when corr is non-zero.
func appendMGetRequestCorr(dst []byte, keys []string, corr uint64) ([]byte, error) {
	if len(keys) == 0 || len(keys) > MaxBatchKeys {
		return dst, fmt.Errorf("%w: %d keys in batch (limit %d)", ErrMalformed, len(keys), MaxBatchKeys)
	}
	body := 1 + 2
	for _, k := range keys {
		if len(k) > MaxKeyLen {
			return dst, fmt.Errorf("%w: key length %d", ErrFrameTooLarge, len(k))
		}
		body += 2 + len(k)
	}
	if corr != 0 {
		body += corrExtLen(corr)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(OpMGet))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(keys)))
	for _, k := range keys {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(k)))
		dst = append(dst, k...)
	}
	if corr != 0 {
		dst = appendCorrExt(dst, corr)
	}
	return dst, nil
}

// parseMGetBody decodes the post-op portion of an OpMGet request body:
// the keys, then an optional trailing correlation extension.
func parseMGetBody(body []byte) ([]string, uint64, error) {
	if len(body) < 2 {
		return nil, 0, fmt.Errorf("%w: truncated batch count", ErrMalformed)
	}
	count := int(binary.BigEndian.Uint16(body))
	body = body[2:]
	if count == 0 || count > MaxBatchKeys {
		return nil, 0, fmt.Errorf("%w: batch of %d keys", ErrMalformed, count)
	}
	keys := make([]string, 0, count)
	for i := 0; i < count; i++ {
		if len(body) < 2 {
			return nil, 0, fmt.Errorf("%w: truncated key %d length", ErrMalformed, i)
		}
		klen := int(binary.BigEndian.Uint16(body))
		body = body[2:]
		if klen > MaxKeyLen || len(body) < klen {
			return nil, 0, fmt.Errorf("%w: key %d length %d vs body %d", ErrMalformed, i, klen, len(body))
		}
		keys = append(keys, string(body[:klen]))
		body = body[klen:]
	}
	var corr uint64
	if len(body) > 0 && body[0] == extCorrTag {
		var err error
		corr, body, err = parseCorrExt(body[1:])
		if err != nil {
			return nil, 0, err
		}
	}
	if len(body) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes after batch", ErrMalformed, len(body))
	}
	return keys, corr, nil
}

// EncodeMGetPayload packs per-key results into a response payload.
func EncodeMGetPayload(results []MGetResult) ([]byte, error) {
	if len(results) == 0 || len(results) > MaxBatchKeys {
		return nil, fmt.Errorf("%w: %d batch results", ErrMalformed, len(results))
	}
	size := 2
	for _, r := range results {
		if len(r.Value) > MaxValueLen {
			return nil, fmt.Errorf("%w: value length %d", ErrFrameTooLarge, len(r.Value))
		}
		size += 1 + 4 + len(r.Value)
	}
	if size > MaxValueLen {
		return nil, fmt.Errorf("%w: batch payload %d bytes", ErrFrameTooLarge, size)
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint16(out, uint16(len(results)))
	for _, r := range results {
		if r.Found {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		out = binary.BigEndian.AppendUint32(out, uint32(len(r.Value)))
		out = append(out, r.Value...)
	}
	return out, nil
}

// DecodeMGetPayload unpacks a batch-read response payload.
func DecodeMGetPayload(payload []byte) ([]MGetResult, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("%w: truncated batch payload", ErrMalformed)
	}
	count := int(binary.BigEndian.Uint16(payload))
	payload = payload[2:]
	if count == 0 || count > MaxBatchKeys {
		return nil, fmt.Errorf("%w: batch of %d results", ErrMalformed, count)
	}
	out := make([]MGetResult, 0, count)
	for i := 0; i < count; i++ {
		if len(payload) < 5 {
			return nil, fmt.Errorf("%w: truncated result %d", ErrMalformed, i)
		}
		found := payload[0] == 1
		vlen := int(binary.BigEndian.Uint32(payload[1:]))
		payload = payload[5:]
		if vlen > MaxValueLen || len(payload) < vlen {
			return nil, fmt.Errorf("%w: result %d value length %d vs body %d", ErrMalformed, i, vlen, len(payload))
		}
		r := MGetResult{Found: found}
		if vlen > 0 {
			r.Value = append([]byte(nil), payload[:vlen]...)
		}
		out = append(out, r)
		payload = payload[vlen:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch payload", ErrMalformed, len(payload))
	}
	return out, nil
}
