package proto

import (
	"encoding/binary"
	"fmt"
)

// Key migration: OpScan pages through a backend's store in key-ID order
// so a frontend-driven migrator can stream every entry during an epoch
// rotation without the backend holding iterator state. The request body
// (after the op byte) is a resume cursor plus a page limit; an epoch
// extension on the request filters to entries stored under a strictly
// older epoch, so completed passes shrink as migration progresses.
//
// Response payload (StatusOK):
//
//	uint64  next cursor (0 = scan complete)
//	uint16  entry count (may be 0)
//	count × [uint16 key length][key][uint32 value length][value][uint32 epoch]

// OpScan is the migration page-read operation.
const OpScan Op = 7

// ScanEntry is one stored record in a scan page.
type ScanEntry struct {
	Key   string
	Value []byte
	Epoch uint32
}

// EncodeScanPayload packs a scan page into a response payload. A page
// with zero entries is valid (the filter excluded everything in range).
func EncodeScanPayload(next uint64, entries []ScanEntry) ([]byte, error) {
	if len(entries) > MaxBatchKeys {
		return nil, fmt.Errorf("%w: %d scan entries (limit %d)", ErrMalformed, len(entries), MaxBatchKeys)
	}
	size := 8 + 2
	for _, e := range entries {
		if len(e.Key) > MaxKeyLen {
			return nil, fmt.Errorf("%w: key length %d", ErrFrameTooLarge, len(e.Key))
		}
		if len(e.Value) > MaxValueLen {
			return nil, fmt.Errorf("%w: value length %d", ErrFrameTooLarge, len(e.Value))
		}
		size += 2 + len(e.Key) + 4 + len(e.Value) + 4
	}
	if size > MaxPayloadLen {
		return nil, fmt.Errorf("%w: scan payload %d bytes", ErrFrameTooLarge, size)
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint64(out, next)
	out = binary.BigEndian.AppendUint16(out, uint16(len(entries)))
	for _, e := range entries {
		out = binary.BigEndian.AppendUint16(out, uint16(len(e.Key)))
		out = append(out, e.Key...)
		out = binary.BigEndian.AppendUint32(out, uint32(len(e.Value)))
		out = append(out, e.Value...)
		out = binary.BigEndian.AppendUint32(out, e.Epoch)
	}
	return out, nil
}

// DecodeScanPayload unpacks a scan response payload.
func DecodeScanPayload(payload []byte) (entries []ScanEntry, next uint64, err error) {
	if len(payload) < 10 {
		return nil, 0, fmt.Errorf("%w: truncated scan payload", ErrMalformed)
	}
	next = binary.BigEndian.Uint64(payload)
	count := int(binary.BigEndian.Uint16(payload[8:]))
	payload = payload[10:]
	if count > MaxBatchKeys {
		return nil, 0, fmt.Errorf("%w: scan page of %d entries", ErrMalformed, count)
	}
	entries = make([]ScanEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(payload) < 2 {
			return nil, 0, fmt.Errorf("%w: truncated scan entry %d key length", ErrMalformed, i)
		}
		klen := int(binary.BigEndian.Uint16(payload))
		payload = payload[2:]
		if klen > MaxKeyLen || len(payload) < klen {
			return nil, 0, fmt.Errorf("%w: scan entry %d key length %d vs body %d", ErrMalformed, i, klen, len(payload))
		}
		key := string(payload[:klen])
		payload = payload[klen:]
		if len(payload) < 4 {
			return nil, 0, fmt.Errorf("%w: truncated scan entry %d value length", ErrMalformed, i)
		}
		vlen := int(binary.BigEndian.Uint32(payload))
		payload = payload[4:]
		if vlen > MaxValueLen || len(payload) < vlen {
			return nil, 0, fmt.Errorf("%w: scan entry %d value length %d vs body %d", ErrMalformed, i, vlen, len(payload))
		}
		e := ScanEntry{Key: key}
		if vlen > 0 {
			e.Value = append([]byte(nil), payload[:vlen]...)
		}
		payload = payload[vlen:]
		if len(payload) < 4 {
			return nil, 0, fmt.Errorf("%w: truncated scan entry %d epoch", ErrMalformed, i)
		}
		e.Epoch = binary.BigEndian.Uint32(payload)
		payload = payload[4:]
		entries = append(entries, e)
	}
	if len(payload) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes after scan payload", ErrMalformed, len(payload))
	}
	return entries, next, nil
}
