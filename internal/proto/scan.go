package proto

import (
	"encoding/binary"
	"fmt"
)

// Key migration and anti-entropy: OpScan pages through a backend's store
// in key-ID order so a frontend-driven migrator or repairer can stream
// every entry without the backend holding iterator state. The request
// body (after the op byte) is a resume cursor plus a page limit; an
// epoch extension on the request filters to entries stored under a
// strictly older epoch, and its flags select tombstone inclusion and
// digest mode (values replaced by 64-bit content hashes).
//
// Response payload (StatusOK):
//
//	uint64  next cursor (0 = scan complete)
//	uint16  entry count (may be 0)
//	count × [uint16 key length][key][byte flags][uint64 version][uint32 epoch]
//	        then, per flags: value entries carry [uint32 value length][value];
//	        digest and tombstone entries carry [uint64 content hash] instead
//
// Entry flags: bit 0 = tombstone, bit 1 = value present. A tombstone
// never carries a value; an entry with neither bit is a digest (the value
// exists server-side but only its hash travels).

// OpScan is the migration/anti-entropy page-read operation.
const OpScan Op = 7

// Scan-entry flags.
const (
	scanEntryTomb     = 1 << 0
	scanEntryHasValue = 1 << 1
)

// ScanEntry is one stored record in a scan page.
type ScanEntry struct {
	Key   string
	Value []byte
	Epoch uint32
	// Ver is the entry's logical version (0 for unversioned writes).
	Ver uint64
	// Tomb marks a tombstone: the key was deleted at Ver and holds no
	// value.
	Tomb bool
	// Digest marks a value elided by digest mode; Sum is its 64-bit
	// content hash.
	Digest bool
	Sum    uint64
}

// EncodeScanPayload packs a scan page into a response payload. A page
// with zero entries is valid (the filter excluded everything in range).
func EncodeScanPayload(next uint64, entries []ScanEntry) ([]byte, error) {
	if len(entries) > MaxBatchKeys {
		return nil, fmt.Errorf("%w: %d scan entries (limit %d)", ErrMalformed, len(entries), MaxBatchKeys)
	}
	size := 8 + 2
	for _, e := range entries {
		if len(e.Key) > MaxKeyLen {
			return nil, fmt.Errorf("%w: key length %d", ErrFrameTooLarge, len(e.Key))
		}
		if e.Tomb && (len(e.Value) > 0 || e.Digest) {
			return nil, fmt.Errorf("%w: tombstone scan entry with a value", ErrMalformed)
		}
		if len(e.Value) > MaxValueLen {
			return nil, fmt.Errorf("%w: value length %d", ErrFrameTooLarge, len(e.Value))
		}
		size += 2 + len(e.Key) + 1 + 8 + 4
		if e.hasValue() {
			size += 4 + len(e.Value)
		} else {
			size += 8
		}
	}
	if size > MaxPayloadLen {
		return nil, fmt.Errorf("%w: scan payload %d bytes", ErrFrameTooLarge, size)
	}
	out := make([]byte, 0, size)
	out = binary.BigEndian.AppendUint64(out, next)
	out = binary.BigEndian.AppendUint16(out, uint16(len(entries)))
	for _, e := range entries {
		out = binary.BigEndian.AppendUint16(out, uint16(len(e.Key)))
		out = append(out, e.Key...)
		var flags byte
		if e.Tomb {
			flags |= scanEntryTomb
		}
		if e.hasValue() {
			flags |= scanEntryHasValue
		}
		out = append(out, flags)
		out = binary.BigEndian.AppendUint64(out, e.Ver)
		out = binary.BigEndian.AppendUint32(out, e.Epoch)
		if e.hasValue() {
			out = binary.BigEndian.AppendUint32(out, uint32(len(e.Value)))
			out = append(out, e.Value...)
		} else {
			out = binary.BigEndian.AppendUint64(out, e.Sum)
		}
	}
	return out, nil
}

// hasValue reports whether the entry travels with its value bytes (live,
// not digest-elided).
func (e *ScanEntry) hasValue() bool { return !e.Tomb && !e.Digest }

// DecodeScanPayload unpacks a scan response payload.
func DecodeScanPayload(payload []byte) (entries []ScanEntry, next uint64, err error) {
	if len(payload) < 10 {
		return nil, 0, fmt.Errorf("%w: truncated scan payload", ErrMalformed)
	}
	next = binary.BigEndian.Uint64(payload)
	count := int(binary.BigEndian.Uint16(payload[8:]))
	payload = payload[10:]
	if count > MaxBatchKeys {
		return nil, 0, fmt.Errorf("%w: scan page of %d entries", ErrMalformed, count)
	}
	entries = make([]ScanEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(payload) < 2 {
			return nil, 0, fmt.Errorf("%w: truncated scan entry %d key length", ErrMalformed, i)
		}
		klen := int(binary.BigEndian.Uint16(payload))
		payload = payload[2:]
		if klen > MaxKeyLen || len(payload) < klen {
			return nil, 0, fmt.Errorf("%w: scan entry %d key length %d vs body %d", ErrMalformed, i, klen, len(payload))
		}
		e := ScanEntry{Key: string(payload[:klen])}
		payload = payload[klen:]
		if len(payload) < 1+8+4 {
			return nil, 0, fmt.Errorf("%w: truncated scan entry %d header", ErrMalformed, i)
		}
		flags := payload[0]
		if flags&^byte(scanEntryTomb|scanEntryHasValue) != 0 {
			return nil, 0, fmt.Errorf("%w: scan entry %d flags %#x", ErrMalformed, i, flags)
		}
		if flags&scanEntryTomb != 0 && flags&scanEntryHasValue != 0 {
			return nil, 0, fmt.Errorf("%w: scan entry %d tombstone with value", ErrMalformed, i)
		}
		e.Tomb = flags&scanEntryTomb != 0
		e.Ver = binary.BigEndian.Uint64(payload[1:])
		e.Epoch = binary.BigEndian.Uint32(payload[9:])
		payload = payload[13:]
		if flags&scanEntryHasValue != 0 {
			if len(payload) < 4 {
				return nil, 0, fmt.Errorf("%w: truncated scan entry %d value length", ErrMalformed, i)
			}
			vlen := int(binary.BigEndian.Uint32(payload))
			payload = payload[4:]
			if vlen > MaxValueLen || len(payload) < vlen {
				return nil, 0, fmt.Errorf("%w: scan entry %d value length %d vs body %d", ErrMalformed, i, vlen, len(payload))
			}
			if vlen > 0 {
				e.Value = append([]byte(nil), payload[:vlen]...)
			}
			payload = payload[vlen:]
		} else {
			if len(payload) < 8 {
				return nil, 0, fmt.Errorf("%w: truncated scan entry %d digest", ErrMalformed, i)
			}
			e.Digest = !e.Tomb
			e.Sum = binary.BigEndian.Uint64(payload)
			payload = payload[8:]
		}
		entries = append(entries, e)
	}
	if len(payload) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes after scan payload", ErrMalformed, len(payload))
	}
	return entries, next, nil
}
