package proto

import "sync"

// Frame buffer pool. Every request/response used to pay two transient
// allocations per side — the encode buffer on write and the frame body on
// read — which at hot-path rates turns straight into GC pressure. Both
// now come from one sync.Pool.
//
// Ownership rule (the only one): a pooled buffer NEVER escapes the
// function that took it. WriteRequest/WriteResponse hand the buffer to
// w.Write and release it before returning, so the io.Writer must not
// retain the slice past the call (bufio.Writer and net.Conn both copy or
// complete synchronously). ReadRequest/ReadResponse parse the body into
// freshly owned memory (string conversions and explicit copies) and
// release the frame before returning. Anything that must outlive the
// call — req.Value, resp.Payload — is copied out first.
const (
	// minPooledBuf sizes fresh pool buffers: big enough for typical
	// single-key frames so the first use rarely grows.
	minPooledBuf = 1 << 9
	// maxPooledBuf caps what the pool retains. Oversized frames (bulk
	// MGET/SCAN pages, multi-MiB values) are left to the GC rather than
	// pinning megabytes per idle pool slot.
	maxPooledBuf = 64 << 10
	// frameChunk is the incremental read granularity in readFrame: a
	// hostile length prefix claiming maxFrame bytes costs at most one
	// chunk of memory until the peer actually delivers that much data.
	frameChunk = 64 << 10
)

// frameBuf is the pooled unit. Pooling the struct (not the slice) keeps
// Put from re-boxing the slice header on every release.
type frameBuf struct {
	b []byte
}

var bufPool = sync.Pool{
	New: func() interface{} { return &frameBuf{b: make([]byte, 0, minPooledBuf)} },
}

func getBuf() *frameBuf {
	fb := bufPool.Get().(*frameBuf)
	fb.b = fb.b[:0]
	return fb
}

// release returns the buffer to the pool unless it grew past the
// retention cap.
func (fb *frameBuf) release() {
	if cap(fb.b) > maxPooledBuf {
		return
	}
	bufPool.Put(fb)
}

// Frame is one encoded wire frame in a pooled buffer whose ownership
// HAS escaped the encoding function — the one sanctioned exception to
// the ownership rule above, for pipelined flushers that coalesce many
// frames into a single writev. The contract moves with the value:
// exactly one goroutine owns a Frame at a time, Bytes must not be
// retained after Release, and Release must be called exactly once.
type Frame struct {
	fb *frameBuf
}

// NewRequestFrame encodes req into a pooled frame (prefix included).
func NewRequestFrame(req *Request) (Frame, error) {
	fb := getBuf()
	buf, err := AppendRequest(fb.b, req)
	fb.b = buf
	if err != nil {
		fb.release()
		return Frame{}, err
	}
	return Frame{fb: fb}, nil
}

// NewResponseFrame encodes resp into a pooled frame (prefix included).
func NewResponseFrame(resp *Response) (Frame, error) {
	fb := getBuf()
	buf, err := AppendResponse(fb.b, resp)
	fb.b = buf
	if err != nil {
		fb.release()
		return Frame{}, err
	}
	return Frame{fb: fb}, nil
}

// Bytes returns the encoded frame (length prefix plus body). Valid only
// until Release.
func (f Frame) Bytes() []byte {
	if f.fb == nil {
		return nil
	}
	return f.fb.b
}

// Release returns the buffer to the pool. The Frame must not be used
// afterwards.
func (f Frame) Release() {
	if f.fb != nil {
		f.fb.release()
	}
}

// grow ensures room for total bytes of content, preserving fb.b's
// current contents. Growth doubles but never exceeds total, so a frame
// that trickles in converges without over-reserving.
func (fb *frameBuf) grow(total int) {
	if cap(fb.b) >= total {
		return
	}
	newCap := 2 * cap(fb.b)
	if newCap < minPooledBuf {
		newCap = minPooledBuf
	}
	if newCap < total {
		newCap = total
	}
	nb := make([]byte, len(fb.b), newCap)
	copy(nb, fb.b)
	fb.b = nb
}
