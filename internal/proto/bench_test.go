package proto

import (
	"bytes"
	"io"
	"testing"
)

// BenchmarkWire measures the wire codec hot path: what one request or
// response costs to frame and parse. Run with -benchmem — the point of
// the frame buffer pool is the allocs/op column.

type rewinder struct {
	data []byte
	r    bytes.Reader
}

func (rw *rewinder) next() io.Reader {
	rw.r.Reset(rw.data)
	return &rw.r
}

func BenchmarkWire(b *testing.B) {
	getReq := &Request{Op: OpGet, Key: "hot-key-0042"}
	setReq := &Request{Op: OpSet, Key: "hot-key-0042", Value: bytes.Repeat([]byte("v"), 128), Ver: 7}
	okResp := &Response{Status: StatusOK, Payload: bytes.Repeat([]byte("p"), 128)}

	b.Run("WriteRequestGet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := WriteRequest(io.Discard, getReq); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("WriteRequestSet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := WriteRequest(io.Discard, setReq); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("WriteResponse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := WriteResponse(io.Discard, okResp); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("ReadRequestGet", func(b *testing.B) {
		frame, err := AppendRequest(nil, getReq)
		if err != nil {
			b.Fatal(err)
		}
		rw := &rewinder{data: frame}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ReadRequest(rw.next()); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("ReadRequestSet", func(b *testing.B) {
		frame, err := AppendRequest(nil, setReq)
		if err != nil {
			b.Fatal(err)
		}
		rw := &rewinder{data: frame}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ReadRequest(rw.next()); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("ReadResponse", func(b *testing.B) {
		frame, err := AppendResponse(nil, okResp)
		if err != nil {
			b.Fatal(err)
		}
		rw := &rewinder{data: frame}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ReadResponse(rw.next()); err != nil {
				b.Fatal(err)
			}
		}
	})

	// One full GET exchange as the frontend's backend clients see it:
	// request framed and parsed, response framed and parsed.
	b.Run("GetExchange", func(b *testing.B) {
		reqFrame, _ := AppendRequest(nil, getReq)
		respFrame, _ := AppendResponse(nil, okResp)
		reqRW := &rewinder{data: reqFrame}
		respRW := &rewinder{data: respFrame}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := WriteRequest(io.Discard, getReq); err != nil {
				b.Fatal(err)
			}
			if _, err := ReadRequest(reqRW.next()); err != nil {
				b.Fatal(err)
			}
			if err := WriteResponse(io.Discard, okResp); err != nil {
				b.Fatal(err)
			}
			if _, err := ReadResponse(respRW.next()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
