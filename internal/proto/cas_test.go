package proto

import (
	"bytes"
	"errors"
	"testing"
)

func TestCasRequestRoundTrip(t *testing.T) {
	cases := []*Request{
		{Op: OpCas, Key: "k1", Value: []byte("v1"), CasExpect: 0},
		{Op: OpCas, Key: "k2", Value: []byte("v2"), CasExpect: 41, Ver: 42},
		{Op: OpCas, Key: "k3", Value: nil, CasExpect: 7, Ver: 8, Epoch: 3},
	}
	for _, req := range cases {
		got := roundTripRequest(t, req)
		if got.Op != OpCas || got.Key != req.Key || !bytes.Equal(got.Value, req.Value) ||
			got.CasExpect != req.CasExpect || got.Ver != req.Ver || got.Epoch != req.Epoch {
			t.Errorf("round trip %+v -> %+v", req, got)
		}
	}
}

func TestCasExpectRejectedOnOtherOps(t *testing.T) {
	var buf bytes.Buffer
	err := WriteRequest(&buf, &Request{Op: OpSet, Key: "k", Value: []byte("v"), CasExpect: 3})
	if !errors.Is(err, ErrMalformed) {
		t.Errorf("CAS expectation on SET: err = %v, want ErrMalformed", err)
	}
}

func TestCasVersionExtensionAllowed(t *testing.T) {
	// The 0xE2 version extension is valid on OpCas (the new version) but
	// still rejected on reads.
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{Op: OpCas, Key: "k", Value: []byte("v"), Ver: 9}); err != nil {
		t.Fatalf("CAS with version ext: %v", err)
	}
	if err := WriteRequest(&buf, &Request{Op: OpGet, Key: "k", Ver: 9}); !errors.Is(err, ErrMalformed) {
		t.Errorf("GET with version ext: err = %v, want ErrMalformed", err)
	}
}

func TestCasRequestMalformed(t *testing.T) {
	cases := map[string][]byte{
		// op, klen=1, 'k', vlen=0 — then the mandatory 8-byte expectation
		// is missing entirely or truncated.
		"missing expectation":   {0, 0, 0, 8, byte(OpCas), 0, 1, 'k', 0, 0, 0, 0},
		"truncated expectation": {0, 0, 0, 11, byte(OpCas), 0, 1, 'k', 0, 0, 0, 0, 0, 0, 0},
	}
	for name, raw := range cases {
		if _, err := ReadRequest(bytes.NewReader(raw)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v, want ErrMalformed", name, err)
		}
	}
}

func TestStatusConflict(t *testing.T) {
	if StatusConflict.String() != "CONFLICT" {
		t.Errorf("StatusConflict.String() = %q", StatusConflict.String())
	}
	if OpCas.String() != "CAS" {
		t.Errorf("OpCas.String() = %q", OpCas.String())
	}
	resp := &Response{Status: StatusConflict, Payload: EncodeCasConflictPayload(nil, 17, false)}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatalf("WriteResponse: %v", err)
	}
	got, err := ReadResponse(&buf)
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if got.Status != StatusConflict {
		t.Fatalf("status %v", got.Status)
	}
	if !errors.Is(got.Err(), ErrConflict) {
		t.Errorf("Err() = %v, want ErrConflict", got.Err())
	}
	cur, partial, err := DecodeCasConflictPayload(got.Payload)
	if err != nil || cur != 17 || partial {
		t.Errorf("conflict payload = (%d, %v, %v), want (17, false, nil)", cur, partial, err)
	}
}

func TestCasConflictPayload(t *testing.T) {
	p := EncodeCasConflictPayload(nil, 99, true)
	cur, partial, err := DecodeCasConflictPayload(p)
	if err != nil || cur != 99 || !partial {
		t.Fatalf("partial payload = (%d, %v, %v)", cur, partial, err)
	}
	if _, _, err := DecodeCasConflictPayload([]byte{1, 2}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short payload: err = %v", err)
	}
	if _, _, err := DecodeCasConflictPayload(append(EncodeCasConflictPayload(nil, 1, false), 0x7f)); !errors.Is(err, ErrMalformed) {
		t.Errorf("unknown disposition: err = %v", err)
	}
}
