package proto

import (
	"bytes"
	"errors"
	"testing"
)

func TestEpochExtensionRoundTrip(t *testing.T) {
	cases := []*Request{
		{Op: OpGet, Key: "k", Epoch: 1},
		{Op: OpSet, Key: "k", Value: []byte("v"), Epoch: 42},
		{Op: OpSet, Key: "k", Value: []byte("v"), Epoch: 42, EpochGuard: true},
		{Op: OpDel, Key: "k", Epoch: 9},
		{Op: OpScan, ScanCursor: 1 << 40, ScanLimit: MaxBatchKeys, Epoch: 3},
		{Op: OpScan, ScanCursor: 0, ScanLimit: 1},
		{Op: OpSet, Key: "k", Value: []byte("v"), Ver: 77},
		{Op: OpSet, Key: "k", Value: []byte("v"), Epoch: 2, Ver: 1 << 60},
		{Op: OpDel, Key: "k", Epoch: 2, Ver: 12345},
		{Op: OpScan, ScanCursor: 9, ScanLimit: 8, ScanTombs: true},
		{Op: OpScan, ScanCursor: 9, ScanLimit: 8, ScanTombs: true, ScanDigest: true},
		{Op: OpGetV, Key: "k"},
	}
	for _, req := range cases {
		got := roundTripRequest(t, req)
		if got.Op != req.Op || got.Key != req.Key || !bytes.Equal(got.Value, req.Value) ||
			got.Epoch != req.Epoch || got.EpochGuard != req.EpochGuard ||
			got.Ver != req.Ver || got.ScanTombs != req.ScanTombs || got.ScanDigest != req.ScanDigest ||
			got.ScanCursor != req.ScanCursor || got.ScanLimit != req.ScanLimit {
			t.Errorf("%s: round trip %+v -> %+v", req.Op, req, got)
		}
	}
}

func TestVersionExtensionValidation(t *testing.T) {
	// The version extension is a write-path concept: reads must not carry
	// it (a versioned read is OpGetV, whose version rides the response).
	if _, err := AppendRequest(nil, &Request{Op: OpGet, Key: "k", Ver: 1}); !errors.Is(err, ErrMalformed) {
		t.Errorf("versioned GET: error %v, want ErrMalformed", err)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpGet, Key: "k", ScanTombs: true}); !errors.Is(err, ErrMalformed) {
		t.Errorf("scan flags on GET: error %v, want ErrMalformed", err)
	}
}

func TestEpochExtensionWireCompatible(t *testing.T) {
	// A request without epoch data must encode byte-identically to the
	// pre-extension format: rolling upgrades depend on it.
	plain, err := AppendRequest(nil, &Request{Op: OpGet, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 0, 4, byte(OpGet), 0, 1, 'k'}
	if !bytes.Equal(plain, want) {
		t.Fatalf("zero-epoch GET encodes as % x, want % x", plain, want)
	}
}

func TestEpochExtensionMalformed(t *testing.T) {
	cases := map[string][]byte{
		"unknown tag":      {0, 0, 0, 10, byte(OpGet), 0, 1, 'k', 0xE3, 0, 0, 0, 1, 0},
		"truncated ext":    {0, 0, 0, 7, byte(OpGet), 0, 1, 'k', 0xE1, 0, 0},
		"unknown flags":    {0, 0, 0, 10, byte(OpGet), 0, 1, 'k', 0xE1, 0, 0, 0, 1, 0x80},
		"bytes past ext":   {0, 0, 0, 11, byte(OpGet), 0, 1, 'k', 0xE1, 0, 0, 0, 1, 0, 'z'},
		"scan zero lim":    {0, 0, 0, 11, byte(OpScan), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"scan truncated":   {0, 0, 0, 5, byte(OpScan), 0, 0, 0, 0},
		"ver ext on GET":   {0, 0, 0, 13, byte(OpGet), 0, 1, 'k', 0xE2, 0, 0, 0, 0, 0, 0, 0, 1},
		"ver ext cut":      {0, 0, 0, 8, byte(OpDel), 0, 1, 'k', 0xE2, 0, 0, 0},
		"dup epoch ext":    {0, 0, 0, 16, byte(OpGet), 0, 1, 'k', 0xE1, 0, 0, 0, 1, 0, 0xE1, 0, 0, 0, 2, 0},
		"scan flag on GET": {0, 0, 0, 10, byte(OpGet), 0, 1, 'k', 0xE1, 0, 0, 0, 1, 0x02},
	}
	for name, raw := range cases {
		if _, err := ReadRequest(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v, want ErrMalformed", name, err)
		}
	}
}

func TestMGetRejectsEpoch(t *testing.T) {
	_, err := AppendRequest(nil, &Request{Op: OpMGet, Keys: []string{"a"}, Epoch: 1})
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("MGet with epoch: error %v, want ErrMalformed", err)
	}
}

func TestScanPayloadRoundTrip(t *testing.T) {
	entries := []ScanEntry{
		{Key: "a", Value: []byte("one"), Epoch: 1},
		{Key: "b", Value: nil, Epoch: 0},
		{Key: "c", Value: []byte{0, 1, 2}, Epoch: 1<<32 - 1},
		{Key: "d", Value: []byte("versioned"), Epoch: 2, Ver: 1 << 50},
		{Key: "e", Tomb: true, Ver: 99, Epoch: 2},
		{Key: "f", Digest: true, Sum: 0xDEADBEEF, Ver: 7, Epoch: 1},
	}
	payload, err := EncodeScanPayload(777, entries)
	if err != nil {
		t.Fatal(err)
	}
	got, next, err := DecodeScanPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if next != 777 || len(got) != len(entries) {
		t.Fatalf("decoded %d entries, cursor %d", len(got), next)
	}
	for i := range entries {
		if got[i].Key != entries[i].Key || !bytes.Equal(got[i].Value, entries[i].Value) ||
			got[i].Epoch != entries[i].Epoch || got[i].Ver != entries[i].Ver ||
			got[i].Tomb != entries[i].Tomb || got[i].Digest != entries[i].Digest ||
			got[i].Sum != entries[i].Sum {
			t.Errorf("entry %d: %+v -> %+v", i, entries[i], got[i])
		}
	}
}

func TestScanPayloadRejectsTombWithValue(t *testing.T) {
	if _, err := EncodeScanPayload(0, []ScanEntry{{Key: "k", Tomb: true, Value: []byte("v")}}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("tombstone with value: error %v, want ErrMalformed", err)
	}
}

func TestScanPayloadEmptyPage(t *testing.T) {
	payload, err := EncodeScanPayload(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	entries, next, err := DecodeScanPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if next != 0 || len(entries) != 0 {
		t.Fatalf("empty page decoded as %d entries, cursor %d", len(entries), next)
	}
}

func TestScanPayloadMalformed(t *testing.T) {
	cases := map[string][]byte{
		"truncated header": {0, 0, 0},
		"count overrun":    {0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 1, 'a'},
		"trailing bytes": func() []byte {
			p, _ := EncodeScanPayload(0, nil)
			return append(p, 'z')
		}(),
	}
	for name, raw := range cases {
		if _, _, err := DecodeScanPayload(raw); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v, want ErrMalformed", name, err)
		}
	}
}

func TestScanLimitValidation(t *testing.T) {
	if _, err := AppendRequest(nil, &Request{Op: OpScan, ScanLimit: 0}); !errors.Is(err, ErrMalformed) {
		t.Errorf("zero scan limit: error %v, want ErrMalformed", err)
	}
	if OpScan.String() != "SCAN" {
		t.Errorf("OpScan.String() = %q", OpScan.String())
	}
}
