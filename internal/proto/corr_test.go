package proto

import (
	"bytes"
	"errors"
	"testing"
)

// TestCorrRequestRoundTrip: the correlation ID survives encode/decode on
// every request shape that can carry one, including combinations with
// the epoch and version extensions and the MGET body path.
func TestCorrRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, Key: "k", Corr: 1},
		{Op: OpGetV, Key: "k", Corr: 2},
		{Op: OpPing, Corr: 3},
		{Op: OpStats, Corr: 0x7fffffffffffffff},
		{Op: OpSet, Key: "k", Value: []byte("v"), Corr: 128},
		{Op: OpSet, Key: "k", Value: []byte("v"), Epoch: 9, Ver: 77, Corr: 1 << 56},
		{Op: OpDel, Key: "k", Ver: 12, Corr: 300},
		{Op: OpCas, Key: "k", Value: []byte("v"), CasExpect: 4, Ver: 5, Corr: 6},
		{Op: OpScan, ScanCursor: 10, ScanLimit: 16, ScanTombs: true, Corr: 11},
		{Op: OpMGet, Keys: []string{"a", "bb", "ccc"}, Corr: 1 << 33},
		{Op: OpMembers, Corr: 99},
		{Op: OpInvalidate, Key: "k", Corr: 100},
	}
	for _, want := range cases {
		buf, err := AppendRequest(nil, &want)
		if err != nil {
			t.Fatalf("%s corr %d: encode: %v", want.Op, want.Corr, err)
		}
		got, err := ReadRequest(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%s corr %d: decode: %v", want.Op, want.Corr, err)
		}
		if got.Corr != want.Corr {
			t.Errorf("%s: corr %d round-tripped to %d", want.Op, want.Corr, got.Corr)
		}
		if got.Op != want.Op || got.Key != want.Key || got.Ver != want.Ver ||
			got.Epoch != want.Epoch || got.CasExpect != want.CasExpect ||
			len(got.Keys) != len(want.Keys) {
			t.Errorf("%s: fields changed: %+v vs %+v", want.Op, got, want)
		}
	}
}

// TestCorrResponseRoundTrip: same for responses, alone and stacked with
// the load-hint extension.
func TestCorrResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Status: StatusOK, Corr: 1},
		{Status: StatusOK, Payload: []byte("value"), Corr: 1 << 50},
		{Status: StatusNotFound, Corr: 2},
		{Status: StatusBusy, Corr: 3},
		{Status: StatusConflict, Payload: EncodeCasConflictPayload(nil, 9, true), Corr: 4},
		{Status: StatusOK, Payload: []byte("v"), Load: 17, LoadHinted: true, Corr: 5},
	}
	for _, want := range cases {
		buf, err := AppendResponse(nil, &want)
		if err != nil {
			t.Fatalf("%s corr %d: encode: %v", want.Status, want.Corr, err)
		}
		got, err := ReadResponse(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("%s corr %d: decode: %v", want.Status, want.Corr, err)
		}
		if got.Corr != want.Corr || got.Status != want.Status ||
			!bytes.Equal(got.Payload, want.Payload) ||
			got.Load != want.Load || got.LoadHinted != want.LoadHinted {
			t.Errorf("%s: round trip changed: %+v vs %+v", want.Status, got, want)
		}
	}
}

// TestCorrZeroUnchangedEncoding: corr 0 is the legacy lockstep exchange
// and must encode byte-identically to the pre-extension format — that IS
// the interop rule with old peers.
func TestCorrZeroUnchangedEncoding(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: "k"},
		{Op: OpSet, Key: "k", Value: []byte("v"), Epoch: 3, Ver: 7},
		{Op: OpMGet, Keys: []string{"a", "b"}},
	}
	for _, r := range reqs {
		buf, err := AppendRequest(nil, &r)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.IndexByte(buf, extCorrTag) >= 0 && r.Op != OpSet {
			// (OpSet's value bytes could legitimately contain 0xE4; only
			// structural frames are checked byte-wise.)
			t.Errorf("%s with corr 0 emitted the correlation tag: %x", r.Op, buf)
		}
	}
	resp := Response{Status: StatusOK}
	buf, err := AppendResponse(nil, &resp)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 0, 5, byte(StatusOK), 0, 0, 0, 0}
	if !bytes.Equal(buf, want) {
		t.Errorf("corr-0 response frame changed: %x vs %x", buf, want)
	}
}

// TestCorrMalformed: explicit zero IDs, duplicate extensions, and
// truncated uvarints are all rejected — the extension is a versioning
// escape hatch, not a lenient channel.
func TestCorrMalformed(t *testing.T) {
	frame := func(body ...byte) []byte {
		out := []byte{0, 0, 0, byte(len(body))}
		return append(out, body...)
	}
	cases := map[string][]byte{
		"explicit zero corr":  frame(byte(OpPing), extCorrTag, 0x00),
		"truncated uvarint":   frame(byte(OpPing), extCorrTag, 0x80),
		"duplicate extension": frame(byte(OpPing), extCorrTag, 0x01, extCorrTag, 0x02),
		"mget zero corr":      frame(byte(OpMGet), 0, 1, 0, 1, 'a', extCorrTag, 0x00),
	}
	for name, raw := range cases {
		if _, err := ReadRequest(bytes.NewReader(raw)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
	respCases := map[string][]byte{
		"resp zero corr":  frame(byte(StatusOK), 0, 0, 0, 0, extCorrTag, 0x00),
		"resp truncated":  frame(byte(StatusOK), 0, 0, 0, 0, extCorrTag, 0xff),
		"resp duplicate":  frame(byte(StatusOK), 0, 0, 0, 0, extCorrTag, 0x01, extCorrTag, 0x01),
		"legacy peer tag": frame(byte(StatusOK), 0, 0, 0, 0, 0xE9, 0x01),
	}
	for name, raw := range respCases {
		if _, err := ReadResponse(bytes.NewReader(raw)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: got %v, want ErrMalformed", name, err)
		}
	}
}

// TestFrameOwnershipAPI: the exported Frame carries a valid encoded
// frame and survives the pool round trip.
func TestFrameOwnershipAPI(t *testing.T) {
	req := &Request{Op: OpGet, Key: "k", Corr: 42}
	f, err := NewRequestFrame(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bytes.NewReader(f.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Corr != 42 || got.Key != "k" {
		t.Fatalf("frame decoded to %+v", got)
	}
	f.Release()

	rf, err := NewResponseFrame(&Response{Status: StatusOK, Payload: []byte("p"), Corr: 7})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(bytes.NewReader(rf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Corr != 7 || string(resp.Payload) != "p" {
		t.Fatalf("frame decoded to %+v", resp)
	}
	rf.Release()

	if _, err := NewRequestFrame(&Request{Op: 0}); err == nil {
		t.Fatal("encode error did not surface through NewRequestFrame")
	}
}
