package proto

import (
	"bytes"
	"testing"
)

// FuzzReadRequest hammers the request decoder with arbitrary bytes: it
// must never panic or over-allocate, and everything it accepts must
// re-encode to an equivalent message.
func FuzzReadRequest(f *testing.F) {
	seed := [][]byte{
		{},
		{0, 0, 0, 0},
		{0, 0, 0, 1, byte(OpPing)},
		mustReq(&Request{Op: OpGet, Key: "k"}),
		mustReq(&Request{Op: OpSet, Key: "key", Value: []byte("value")}),
		mustReq(&Request{Op: OpDel, Key: ""}),
		{0xff, 0xff, 0xff, 0xff, 1, 2, 3},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := ReadRequest(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Round-trip: whatever decoded must encode and decode identically.
		re, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("accepted request %+v fails to encode: %v", req, err)
		}
		back, err := ReadRequest(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("re-encoded request fails to decode: %v", err)
		}
		if back.Op != req.Op || back.Key != req.Key || !bytes.Equal(back.Value, req.Value) {
			t.Fatalf("round trip changed the message: %+v vs %+v", req, back)
		}
	})
}

// FuzzReadResponse is the response-side analogue.
func FuzzReadResponse(f *testing.F) {
	seed := [][]byte{
		{},
		mustResp(&Response{Status: StatusOK, Payload: []byte("v")}),
		mustResp(&Response{Status: StatusNotFound}),
		mustResp(&Response{Status: StatusError, Payload: []byte("boom")}),
		{0, 0, 0, 5, 77, 0, 0, 0, 0},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		resp, err := ReadResponse(bytes.NewReader(raw))
		if err != nil {
			return
		}
		re, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("accepted response %+v fails to encode: %v", resp, err)
		}
		back, err := ReadResponse(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("re-encoded response fails to decode: %v", err)
		}
		if back.Status != resp.Status || !bytes.Equal(back.Payload, resp.Payload) {
			t.Fatalf("round trip changed the message: %+v vs %+v", resp, back)
		}
	})
}

func mustReq(r *Request) []byte {
	b, err := AppendRequest(nil, r)
	if err != nil {
		panic(err)
	}
	return b
}

func mustResp(r *Response) []byte {
	b, err := AppendResponse(nil, r)
	if err != nil {
		panic(err)
	}
	return b
}
