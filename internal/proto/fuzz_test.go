package proto

import (
	"bytes"
	"testing"
)

// FuzzReadRequest hammers the request decoder with arbitrary bytes: it
// must never panic or over-allocate, and everything it accepts must
// re-encode to an equivalent message.
func FuzzReadRequest(f *testing.F) {
	seed := [][]byte{
		{},
		{0, 0, 0, 0},
		{0, 0, 0, 1, byte(OpPing)},
		mustReq(&Request{Op: OpGet, Key: "k"}),
		mustReq(&Request{Op: OpSet, Key: "key", Value: []byte("value")}),
		mustReq(&Request{Op: OpDel, Key: ""}),
		mustReq(&Request{Op: OpGet, Key: "k", Epoch: 7}),
		mustReq(&Request{Op: OpSet, Key: "key", Value: []byte("v"), Epoch: 3, EpochGuard: true}),
		mustReq(&Request{Op: OpScan, ScanCursor: 12345, ScanLimit: 64, Epoch: 2}),
		mustReq(&Request{Op: OpSet, Key: "key", Value: []byte("v"), Ver: 42}),
		mustReq(&Request{Op: OpDel, Key: "key", Epoch: 1, Ver: 42}),
		mustReq(&Request{Op: OpScan, ScanCursor: 1, ScanLimit: 8, ScanTombs: true, ScanDigest: true}),
		mustReq(&Request{Op: OpGetV, Key: "k"}),
		mustReq(&Request{Op: OpGet, Key: "k", Corr: 1}),
		mustReq(&Request{Op: OpSet, Key: "key", Value: []byte("v"), Epoch: 3, Ver: 9, Corr: 1 << 40}),
		mustReq(&Request{Op: OpMGet, Keys: []string{"a", "b"}, Corr: 7}),
		{0xff, 0xff, 0xff, 0xff, 1, 2, 3},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		req, err := ReadRequest(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// Round-trip: whatever decoded must encode and decode identically.
		re, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("accepted request %+v fails to encode: %v", req, err)
		}
		back, err := ReadRequest(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("re-encoded request fails to decode: %v", err)
		}
		if back.Op != req.Op || back.Key != req.Key || !bytes.Equal(back.Value, req.Value) ||
			back.Epoch != req.Epoch || back.EpochGuard != req.EpochGuard ||
			back.Ver != req.Ver || back.ScanTombs != req.ScanTombs || back.ScanDigest != req.ScanDigest ||
			back.ScanCursor != req.ScanCursor || back.ScanLimit != req.ScanLimit ||
			back.Corr != req.Corr {
			t.Fatalf("round trip changed the message: %+v vs %+v", req, back)
		}
	})
}

// FuzzScanPayload hammers the scan-page decoder: anything it accepts
// must re-encode to an identical page.
func FuzzScanPayload(f *testing.F) {
	one, _ := EncodeScanPayload(99, []ScanEntry{{Key: "k", Value: []byte("v"), Epoch: 2}})
	versioned, _ := EncodeScanPayload(7, []ScanEntry{
		{Key: "t", Tomb: true, Ver: 5, Epoch: 1},
		{Key: "d", Digest: true, Sum: 42, Ver: 6},
	})
	empty, _ := EncodeScanPayload(0, nil)
	seed := [][]byte{{}, one, versioned, empty, {0, 0, 0, 0, 0, 0, 0, 0, 0, 3}}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		entries, next, err := DecodeScanPayload(raw)
		if err != nil {
			return
		}
		re, err := EncodeScanPayload(next, entries)
		if err != nil {
			t.Fatalf("accepted scan page fails to encode: %v", err)
		}
		back, backNext, err := DecodeScanPayload(re)
		if err != nil {
			t.Fatalf("re-encoded scan page fails to decode: %v", err)
		}
		if backNext != next || len(back) != len(entries) {
			t.Fatalf("round trip changed the page: %d/%d entries, cursor %d/%d",
				len(back), len(entries), backNext, next)
		}
		for i := range entries {
			if back[i].Key != entries[i].Key || !bytes.Equal(back[i].Value, entries[i].Value) ||
				back[i].Epoch != entries[i].Epoch || back[i].Ver != entries[i].Ver ||
				back[i].Tomb != entries[i].Tomb || back[i].Digest != entries[i].Digest ||
				back[i].Sum != entries[i].Sum {
				t.Fatalf("round trip changed entry %d: %+v vs %+v", i, entries[i], back[i])
			}
		}
	})
}

// FuzzReadResponse is the response-side analogue.
func FuzzReadResponse(f *testing.F) {
	seed := [][]byte{
		{},
		mustResp(&Response{Status: StatusOK, Payload: []byte("v")}),
		mustResp(&Response{Status: StatusNotFound}),
		mustResp(&Response{Status: StatusError, Payload: []byte("boom")}),
		mustResp(&Response{Status: StatusOK, Payload: []byte("v"), Corr: 3}),
		mustResp(&Response{Status: StatusBusy, Load: 9, LoadHinted: true, Corr: 1 << 62}),
		{0, 0, 0, 5, 77, 0, 0, 0, 0},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		resp, err := ReadResponse(bytes.NewReader(raw))
		if err != nil {
			return
		}
		re, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("accepted response %+v fails to encode: %v", resp, err)
		}
		back, err := ReadResponse(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("re-encoded response fails to decode: %v", err)
		}
		if back.Status != resp.Status || !bytes.Equal(back.Payload, resp.Payload) ||
			back.Load != resp.Load || back.LoadHinted != resp.LoadHinted || back.Corr != resp.Corr {
			t.Fatalf("round trip changed the message: %+v vs %+v", resp, back)
		}
	})
}

func mustReq(r *Request) []byte {
	b, err := AppendRequest(nil, r)
	if err != nil {
		panic(err)
	}
	return b
}

func mustResp(r *Response) []byte {
	b, err := AppendResponse(nil, r)
	if err != nil {
		panic(err)
	}
	return b
}
