package proto

import (
	"bytes"
	"errors"
	"testing"
)

func TestLoadHintRoundTrip(t *testing.T) {
	cases := []*Response{
		{Status: StatusOK, Payload: []byte("value"), Load: 17, LoadHinted: true},
		{Status: StatusOK, Load: 0, LoadHinted: true}, // idle is a meaningful hint
		{Status: StatusNotFound, Load: 4_000_000_000, LoadHinted: true},
		{Status: StatusBusy, Payload: nil, Load: 999, LoadHinted: true},
		{Status: StatusError, Payload: []byte("boom"), Load: 1, LoadHinted: true},
	}
	for _, resp := range cases {
		var buf bytes.Buffer
		if err := WriteResponse(&buf, resp); err != nil {
			t.Fatalf("WriteResponse(%+v): %v", resp, err)
		}
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("ReadResponse(%+v): %v", resp, err)
		}
		if got.Status != resp.Status || !bytes.Equal(got.Payload, resp.Payload) {
			t.Errorf("round trip %+v -> %+v", resp, got)
		}
		if !got.LoadHinted || got.Load != resp.Load {
			t.Errorf("load hint %d lost: got hinted=%v load=%d", resp.Load, got.LoadHinted, got.Load)
		}
	}
}

// Hint-less responses must stay byte-identical to the pre-extension
// format: a frontend that never opts in is indistinguishable on the wire.
func TestLoadHintAbsentUnchangedEncoding(t *testing.T) {
	resp := &Response{Status: StatusOK, Payload: []byte("v")}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatalf("WriteResponse: %v", err)
	}
	want := []byte{0, 0, 0, 6, byte(StatusOK), 0, 0, 0, 1, 'v'}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("hint-less encoding changed: %v want %v", buf.Bytes(), want)
	}
	got, err := ReadResponse(&buf)
	if err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	if got.LoadHinted || got.Load != 0 {
		t.Fatalf("phantom hint: %+v", got)
	}
}

func TestLoadHintMalformed(t *testing.T) {
	frame := func(body []byte) []byte {
		out := []byte{0, 0, 0, byte(len(body))}
		return append(out, body...)
	}
	cases := map[string][]byte{
		"truncated ext":   frame([]byte{byte(StatusOK), 0, 0, 0, 0, extLoadTag, 0, 0}),
		"unknown tag":     frame([]byte{byte(StatusOK), 0, 0, 0, 0, 0x7F, 1, 2, 3, 4}),
		"duplicate hint":  frame([]byte{byte(StatusOK), 0, 0, 0, 0, extLoadTag, 0, 0, 0, 1, extLoadTag, 0, 0, 0, 2}),
		"tag after value": frame([]byte{byte(StatusOK), 0, 0, 0, 1, 'v', 0x11, 0, 0, 0, 1}),
	}
	for name, raw := range cases {
		if _, err := ReadResponse(bytes.NewReader(raw)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: want ErrMalformed, got %v", name, err)
		}
	}
}

func TestInvalidateRoundTrip(t *testing.T) {
	req := &Request{Op: OpInvalidate, Key: "hot:key:1"}
	got := roundTripRequest(t, req)
	if got.Op != OpInvalidate || got.Key != req.Key {
		t.Fatalf("round trip %+v -> %+v", req, got)
	}
	if OpInvalidate.String() != "INVALIDATE" {
		t.Fatalf("String() = %q", OpInvalidate.String())
	}
}
