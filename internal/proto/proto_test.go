package proto

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func roundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []*Request{
		{Op: OpGet, Key: "k00000001"},
		{Op: OpSet, Key: "user:42", Value: []byte("hello world")},
		{Op: OpSet, Key: "empty-value", Value: nil},
		{Op: OpDel, Key: "gone"},
		{Op: OpStats},
		{Op: OpPing},
	}
	for _, req := range cases {
		got := roundTripRequest(t, req)
		if got.Op != req.Op || got.Key != req.Key || !bytes.Equal(got.Value, req.Value) {
			t.Errorf("%s: round trip %+v -> %+v", req.Op, req, got)
		}
	}
}

func TestRequestRoundTripQuick(t *testing.T) {
	f := func(key string, value []byte, pickSet bool) bool {
		if len(key) > MaxKeyLen || len(value) > MaxValueLen {
			return true // out of protocol bounds; rejected separately
		}
		req := &Request{Op: OpGet, Key: key}
		if pickSet {
			req = &Request{Op: OpSet, Key: key, Value: value}
		}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			return false
		}
		got, err := ReadRequest(&buf)
		if err != nil {
			return false
		}
		return got.Op == req.Op && got.Key == req.Key && bytes.Equal(got.Value, req.Value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []*Response{
		{Status: StatusOK, Payload: []byte("value-bytes")},
		{Status: StatusOK},
		{Status: StatusNotFound},
		{Status: StatusError, Payload: []byte("node down")},
	}
	for _, resp := range cases {
		var buf bytes.Buffer
		if err := WriteResponse(&buf, resp); err != nil {
			t.Fatalf("WriteResponse: %v", err)
		}
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("ReadResponse: %v", err)
		}
		if got.Status != resp.Status || !bytes.Equal(got.Payload, resp.Payload) {
			t.Errorf("round trip %+v -> %+v", resp, got)
		}
	}
}

func TestResponseErr(t *testing.T) {
	ok := &Response{Status: StatusOK}
	if ok.Err() != nil {
		t.Error("OK response has error")
	}
	e := &Response{Status: StatusError, Payload: []byte("boom")}
	if err := e.Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Err() = %v", err)
	}
}

func TestWriteRequestLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{Op: OpGet, Key: strings.Repeat("k", MaxKeyLen+1)}); err == nil {
		t.Error("oversized key accepted")
	}
	if err := WriteRequest(&buf, &Request{Op: OpSet, Key: "k", Value: make([]byte, MaxValueLen+1)}); err == nil {
		t.Error("oversized value accepted")
	}
	if err := WriteRequest(&buf, &Request{Op: 0, Key: "k"}); err == nil {
		t.Error("invalid op accepted")
	}
}

func TestReadRequestMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty body":       {0, 0, 0, 0},
		"bad op":           {0, 0, 0, 1, 99},
		"truncated keylen": {0, 0, 0, 2, byte(OpGet), 0},
		"key overrun":      {0, 0, 0, 4, byte(OpGet), 0, 9, 'k'},
		"trailing bytes":   {0, 0, 0, 5, byte(OpGet), 0, 1, 'k', 'z'},
		"set no value len": {0, 0, 0, 4, byte(OpSet), 0, 1, 'k'},
	}
	for name, raw := range cases {
		if _, err := ReadRequest(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v, want ErrMalformed", name, err)
		}
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	raw := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadRequest(bytes.NewReader(raw)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("error %v, want ErrFrameTooLarge", err)
	}
}

func TestReadRequestCleanEOF(t *testing.T) {
	if _, err := ReadRequest(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream error %v, want io.EOF", err)
	}
}

func TestReadRequestTruncatedBody(t *testing.T) {
	raw := []byte{0, 0, 0, 10, byte(OpGet)} // claims 10 bytes, has 1
	if _, err := ReadRequest(bytes.NewReader(raw)); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated body error %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadResponseMalformed(t *testing.T) {
	cases := map[string][]byte{
		"short body":     {0, 0, 0, 1, byte(StatusOK)},
		"bad status":     {0, 0, 0, 5, 99, 0, 0, 0, 0},
		"payload length": {0, 0, 0, 5, byte(StatusOK), 0, 0, 0, 9},
	}
	for name, raw := range cases {
		if _, err := ReadResponse(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if OpGet.String() != "GET" || OpSet.String() != "SET" || OpDel.String() != "DEL" ||
		OpStats.String() != "STATS" || OpPing.String() != "PING" {
		t.Error("op names wrong")
	}
	if Op(99).String() == "" || Status(99).String() == "" {
		t.Error("unknown op/status should still format")
	}
	if StatusOK.String() != "OK" || StatusNotFound.String() != "NOT_FOUND" || StatusError.String() != "ERROR" {
		t.Error("status names wrong")
	}
}

func TestMultipleMessagesOnOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteRequest(&buf, &Request{Op: OpGet, Key: workKey(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		req, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if req.Key != workKey(i) {
			t.Fatalf("message %d: key %q", i, req.Key)
		}
	}
}

func workKey(i int) string { return string(rune('a' + i)) }

func BenchmarkAppendRequest(b *testing.B) {
	req := &Request{Op: OpSet, Key: "k00001234", Value: bytes.Repeat([]byte("x"), 128)}
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf, _ = AppendRequest(buf[:0], req)
	}
	_ = buf
}

func BenchmarkReadRequest(b *testing.B) {
	raw, _ := AppendRequest(nil, &Request{Op: OpSet, Key: "k00001234", Value: bytes.Repeat([]byte("x"), 128)})
	r := bytes.NewReader(raw)
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		if _, err := ReadRequest(r); err != nil {
			b.Fatal(err)
		}
	}
}
