package partition

import (
	"testing"
)

// movedOrFatal wraps MovedFraction for the regression tests below.
func movedOrFatal(t *testing.T, a, b Partitioner, samples int) float64 {
	t.Helper()
	f, err := MovedFraction(a, b, samples)
	if err != nil {
		t.Fatalf("MovedFraction: %v", err)
	}
	return f
}

// Regression for the elastic-membership moved-fraction fix: a one-node
// grow under the modular hash partitioner reshuffles nearly every group,
// while jump hash moves only ~d/(n+1). These bounds are pinned so a
// change to either implementation that destroys the property fails CI.
func TestJumpMovedFractionOnGrow(t *testing.T) {
	const n, d, samples = 10, 3, 20000
	const seed = 0xA11CE

	hashMoved := movedOrFatal(t, NewHash(n, d, seed), NewHash(n+1, d, seed), samples)
	if hashMoved < 0.90 {
		t.Errorf("hash grow moved %.3f — baseline changed, update ISSUE rationale", hashMoved)
	}

	jumpMoved := movedOrFatal(t, NewJump(n, d, seed), NewJump(n+1, d, seed), samples)
	// Minimal consistent cost: every key whose new group includes the
	// joiner must move, ≈ d/(n+1) ≈ 0.27. Allow slack for probe shifts.
	if jumpMoved > 0.35 {
		t.Errorf("jump grow moved %.3f, want ≤ 0.35 (~d/(n+1) = %.3f)", jumpMoved, float64(d)/float64(n+1))
	}
	if jumpMoved < 0.05 {
		t.Errorf("jump grow moved %.3f — joiner is not taking its share", jumpMoved)
	}
}

// A seed change must still reshuffle (that is the point of rotation):
// jump's stability is with respect to membership, never the secret.
func TestJumpSeedRotationStillReshuffles(t *testing.T) {
	moved := movedOrFatal(t, NewJump(20, 3, 1), NewJump(20, 3, 2), 10000)
	if moved < 0.90 {
		t.Errorf("seed change moved only %.3f of keys — rotation would not re-randomize", moved)
	}
}

// MemberRing is the variant live membership uses: removing a middle
// member (a drain, leaving a hole in the ID space) moves only the
// drained member's arcs, where Remap-wrapped dense partitioners shift
// every later member's identity.
func TestMemberRingMovedFractionOnDrain(t *testing.T) {
	const d, samples = 3, 20000
	const seed = 0xBEEF
	before := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	after := []int{0, 1, 2, 3, 5, 6, 7, 8, 9} // member 4 drained

	moved := movedOrFatal(t, NewMemberRing(before, d, seed, 0), NewMemberRing(after, d, seed, 0), samples)
	// Floor: every key member 4 served must move, ≈ d/n = 0.3.
	if moved > 0.40 {
		t.Errorf("member-ring drain moved %.3f, want ≤ 0.40 (~d/n = %.3f)", moved, float64(d)/10)
	}
	if moved < 0.10 {
		t.Errorf("member-ring drain moved %.3f — drained member was serving almost nothing", moved)
	}

	// The dense-remap baseline this replaces: the same drain through
	// Remap(Hash) reshuffles nearly everything.
	remapBefore := NewRemap(NewHash(len(before), d, seed), before)
	remapAfter := NewRemap(NewHash(len(after), d, seed), after)
	remapMoved := movedOrFatal(t, remapBefore, remapAfter, samples)
	if remapMoved < 0.90 {
		t.Errorf("remap(hash) drain moved %.3f — baseline changed", remapMoved)
	}
}

func TestMemberRingMovedFractionOnJoin(t *testing.T) {
	const d, samples = 3, 20000
	before := []int{0, 1, 2, 3, 4}
	after := []int{0, 1, 2, 3, 4, 7} // joiner gets a non-contiguous ID

	moved := movedOrFatal(t, NewMemberRing(before, d, 99, 0), NewMemberRing(after, d, 99, 0), samples)
	if moved > 0.75 {
		t.Errorf("member-ring join moved %.3f, want ≤ 0.75 (~d/(n+1) = %.3f)", moved, float64(d)/6)
	}
	if moved < 0.15 {
		t.Errorf("member-ring join moved %.3f — joiner is not taking its share", moved)
	}
}

// Seed rotation reshuffles the ring too: vnode placement is seed-keyed.
func TestMemberRingSeedRotationStillReshuffles(t *testing.T) {
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	moved := movedOrFatal(t, NewMemberRing(ids, 3, 1, 0), NewMemberRing(ids, 3, 2, 0), 10000)
	if moved < 0.90 {
		t.Errorf("seed change moved only %.3f of keys", moved)
	}
}

func TestKindJumpFactory(t *testing.T) {
	p, err := New(KindJump, 8, 3, 42)
	if err != nil {
		t.Fatalf("New(KindJump): %v", err)
	}
	if _, ok := p.(*Jump); !ok {
		t.Fatalf("New(KindJump) returned %T", p)
	}
}

func TestMemberRingPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"duplicate": func() { NewMemberRing([]int{1, 1}, 1, 0, 0) },
		"negative":  func() { NewMemberRing([]int{-1, 2}, 1, 0, 0) },
		"d>n":       func() { NewMemberRing([]int{1, 2}, 3, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
