package partition

import "fmt"

// Remap translates an inner partitioner's dense node indices [0, n)
// into an explicit list of cluster node IDs. It exists for elastic
// membership: the hash/ring/rendezvous partitioners place keys over a
// contiguous index space, but a cluster that has joined and drained
// nodes addresses its members by grow-only global IDs with holes.
// Wrapping the mapping in a Remap keeps the placement math dense (and
// identical for equal member sets regardless of history) while Group
// returns the real node IDs.
//
// Remap deliberately relaxes one clause of the Partitioner contract:
// Group returns IDs drawn from the member list, which need not lie in
// [0, Nodes()). Nodes() still returns the member COUNT n — that is the
// n of every formula (c*, Eq. 10, the gap term), which cares how many
// nodes share the load, not how they are numbered.
type Remap struct {
	inner Partitioner
	ids   []int
}

// NewRemap wraps inner so that inner's node index i reads as ids[i].
// len(ids) must equal inner.Nodes() and the IDs must be distinct.
func NewRemap(inner Partitioner, ids []int) *Remap {
	if inner == nil {
		panic("partition: NewRemap with nil inner partitioner")
	}
	if len(ids) != inner.Nodes() {
		panic(fmt.Sprintf("partition: %d ids for %d nodes", len(ids), inner.Nodes()))
	}
	seen := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		if id < 0 {
			panic(fmt.Sprintf("partition: negative node ID %d", id))
		}
		if _, dup := seen[id]; dup {
			panic(fmt.Sprintf("partition: duplicate node ID %d", id))
		}
		seen[id] = struct{}{}
	}
	return &Remap{inner: inner, ids: append([]int(nil), ids...)}
}

// Nodes returns the member count n.
func (r *Remap) Nodes() int { return r.inner.Nodes() }

// Replicas returns d.
func (r *Remap) Replicas() int { return r.inner.Replicas() }

// IDs returns a copy of the member ID list (index -> ID).
func (r *Remap) IDs() []int { return append([]int(nil), r.ids...) }

// Group returns the key's replica group as member IDs.
func (r *Remap) Group(key uint64) []int {
	return r.GroupAppend(make([]int, 0, r.inner.Replicas()), key)
}

// GroupAppend appends the key's replica group (as member IDs) to dst.
func (r *Remap) GroupAppend(dst []int, key uint64) []int {
	start := len(dst)
	dst = r.inner.GroupAppend(dst, key)
	for i := start; i < len(dst); i++ {
		dst[i] = r.ids[dst[i]]
	}
	return dst
}

var _ Partitioner = (*Remap)(nil)
