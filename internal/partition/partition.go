// Package partition maps keys to replica groups: the d distinct back-end
// nodes that can serve each key.
//
// The paper's security model requires the mapping to be (1) stable — the
// same key always maps to the same group, since moving service between
// nodes is expensive — and (2) opaque — unpredictable to a client that
// does not know the partitioner's secret seed. All partitioners here take
// the seed at construction and never expose it.
//
// Three interchangeable implementations are provided, and the partitioner
// ablation in internal/experiments confirms the paper's results do not
// depend on which one is used:
//
//   - Hash: d pseudo-random distinct nodes derived from a keyed hash
//     stream. Cheapest; the default for simulations.
//   - Ring: walk a consistent-hash ring, taking the first d distinct
//     owners. What memcached/Dynamo-style systems deploy.
//   - Rendezvous: the d highest-random-weight nodes. Perfectly uniform.
package partition

import (
	"fmt"

	"securecache/internal/hashing"
	"securecache/internal/xrand"
)

// Partitioner maps an integer key to its replica group. Implementations
// are immutable after construction and safe for concurrent use.
type Partitioner interface {
	// Nodes returns the total number of back-end nodes n.
	Nodes() int
	// Replicas returns the replication factor d.
	Replicas() int
	// Group returns the key's replica group: d distinct node IDs in
	// [0, Nodes()). The result is deterministic per key. Callers must not
	// modify the returned slice if they plan to call Group again; use
	// GroupAppend for an owned copy.
	Group(key uint64) []int
	// GroupAppend appends the key's replica group to dst and returns it.
	GroupAppend(dst []int, key uint64) []int
}

// validate enforces the shared constructor contract.
func validate(n, d int) {
	if n <= 0 {
		panic(fmt.Sprintf("partition: node count %d must be positive", n))
	}
	if d <= 0 || d > n {
		panic(fmt.Sprintf("partition: replication factor %d must be in [1, n=%d]", d, n))
	}
}

// Hash derives each key's group from a per-key deterministic random
// stream: seed the stream with the keyed hash of the key, then draw d
// distinct nodes. Group(k) costs O(d) expected time.
type Hash struct {
	n, d int
	seed uint64
}

// NewHash returns a hash partitioner over n nodes with replication d,
// keyed by seed.
func NewHash(n, d int, seed uint64) *Hash {
	validate(n, d)
	return &Hash{n: n, d: d, seed: seed}
}

// Nodes returns n.
func (h *Hash) Nodes() int { return h.n }

// Replicas returns d.
func (h *Hash) Replicas() int { return h.d }

// Group returns the key's replica group.
func (h *Hash) Group(key uint64) []int {
	return h.GroupAppend(make([]int, 0, h.d), key)
}

// GroupAppend appends the key's replica group to dst.
func (h *Hash) GroupAppend(dst []int, key uint64) []int {
	// A per-key splitmix stream seeded by the keyed hash gives an
	// unbounded supply of deterministic draws for rejection sampling.
	stream := xrand.NewSplitMix64(hashing.Hash64Uint(key, h.seed))
	start := len(dst)
	for len(dst)-start < h.d {
		cand := int(stream.Uint64() % uint64(h.n))
		dup := false
		for _, v := range dst[start:] {
			if v == cand {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, cand)
		}
	}
	return dst
}

// Ring maps keys through a consistent-hash ring: the group is the first d
// distinct nodes clockwise from the key's position.
type Ring struct {
	n, d int
	ring *hashing.Ring
}

// NewRing returns a ring partitioner over n nodes with replication d,
// keyed by seed. vnodes controls placement uniformity (0 = default 128).
func NewRing(n, d int, seed uint64, vnodes int) *Ring {
	validate(n, d)
	var opts []hashing.RingOption
	if vnodes > 0 {
		opts = append(opts, hashing.WithVirtualNodes(vnodes))
	}
	r := hashing.NewRing(seed, opts...)
	for i := 0; i < n; i++ {
		r.Add(i)
	}
	r.Finalize() // one sort for the whole batch; lookups are then read-only
	return &Ring{n: n, d: d, ring: r}
}

// Nodes returns n.
func (r *Ring) Nodes() int { return r.n }

// Replicas returns d.
func (r *Ring) Replicas() int { return r.d }

// Group returns the key's replica group.
func (r *Ring) Group(key uint64) []int { return r.ring.GetNUint(key, r.d) }

// GroupAppend appends the key's replica group to dst.
func (r *Ring) GroupAppend(dst []int, key uint64) []int {
	return append(dst, r.ring.GetNUint(key, r.d)...)
}

// Rendezvous maps keys through highest-random-weight hashing: the group is
// the d nodes with the highest keyed weights.
type Rendezvous struct {
	n, d int
	hrw  *hashing.Rendezvous
}

// NewRendezvous returns an HRW partitioner over n nodes with replication
// d, keyed by seed.
func NewRendezvous(n, d int, seed uint64) *Rendezvous {
	validate(n, d)
	return &Rendezvous{n: n, d: d, hrw: hashing.NewRendezvous(n, seed)}
}

// Nodes returns n.
func (r *Rendezvous) Nodes() int { return r.n }

// Replicas returns d.
func (r *Rendezvous) Replicas() int { return r.d }

// Group returns the key's replica group.
func (r *Rendezvous) Group(key uint64) []int { return r.hrw.GetNUint(key, r.d) }

// GroupAppend appends the key's replica group to dst.
func (r *Rendezvous) GroupAppend(dst []int, key uint64) []int {
	return append(dst, r.hrw.GetNUint(key, r.d)...)
}

// Kind names a partitioner implementation, for configs and flags.
type Kind string

// Supported partitioner kinds.
const (
	KindHash       Kind = "hash"
	KindRing       Kind = "ring"
	KindRendezvous Kind = "rendezvous"
	// KindJump is the jump-consistent-hash variant: same d-replica load
	// profile as KindHash, but a bucket-count change moves only ~d/n of
	// replica groups (see Jump for the dense-index caveat).
	KindJump Kind = "jump"
)

// New constructs a partitioner of the given kind. It returns an error for
// unknown kinds (flag values come from users).
func New(kind Kind, n, d int, seed uint64) (Partitioner, error) {
	switch kind {
	case KindHash, "":
		return NewHash(n, d, seed), nil
	case KindRing:
		return NewRing(n, d, seed, 0), nil
	case KindRendezvous:
		return NewRendezvous(n, d, seed), nil
	case KindJump:
		return NewJump(n, d, seed), nil
	default:
		return nil, fmt.Errorf("partition: unknown partitioner kind %q", kind)
	}
}
