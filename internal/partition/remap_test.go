package partition

import (
	"testing"
)

func TestRemapTranslatesIDs(t *testing.T) {
	ids := []int{3, 7, 0, 12}
	inner := NewHash(4, 2, 42)
	r := NewRemap(inner, ids)
	if r.Nodes() != 4 || r.Replicas() != 2 {
		t.Fatalf("Nodes/Replicas = %d/%d", r.Nodes(), r.Replicas())
	}
	allowed := map[int]bool{3: true, 7: true, 0: true, 12: true}
	for key := uint64(0); key < 2000; key++ {
		g := r.Group(key)
		if len(g) != 2 {
			t.Fatalf("key %d group %v: wrong size", key, g)
		}
		if g[0] == g[1] {
			t.Fatalf("key %d group %v: duplicate member", key, g)
		}
		for _, id := range g {
			if !allowed[id] {
				t.Fatalf("key %d group %v: %d not a member", key, g, id)
			}
		}
		// The remapped group is the inner group, translated.
		ig := inner.Group(key)
		for i := range ig {
			if g[i] != ids[ig[i]] {
				t.Fatalf("key %d: remap %v != translate(%v)", key, g, ig)
			}
		}
	}
}

func TestRemapIdentity(t *testing.T) {
	// Remapping onto [0..n) is a no-op: boot clusters wrap their initial
	// mapping for uniformity and must not perturb placement.
	inner := NewHash(5, 3, 99)
	r := NewRemap(inner, []int{0, 1, 2, 3, 4})
	frac, err := MovedFraction(inner, r, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0 {
		t.Fatalf("identity remap moved %.3f of keys", frac)
	}
}

func TestRemapGroupAppendPreservesPrefix(t *testing.T) {
	r := NewRemap(NewHash(3, 2, 7), []int{10, 20, 30})
	dst := []int{-1, -2}
	dst = r.GroupAppend(dst, 123)
	if dst[0] != -1 || dst[1] != -2 {
		t.Fatalf("prefix clobbered: %v", dst)
	}
	if len(dst) != 4 {
		t.Fatalf("appended %d entries, want 2", len(dst)-2)
	}
}

func TestRemapValidation(t *testing.T) {
	inner := NewHash(3, 2, 7)
	for name, ids := range map[string][]int{
		"wrong length": {1, 2},
		"duplicate":    {1, 2, 2},
		"negative":     {1, -2, 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRemap(%s) did not panic", name)
				}
			}()
			NewRemap(inner, ids)
		}()
	}
}

func TestRemapMovedFractionOnJoin(t *testing.T) {
	// Adding one node to an 8-node hash cluster (same seed) moves some —
	// but far from all — keys: the fraction prediction the kvstore
	// migration regression pins itself against.
	const seed = 1234
	old := NewRemap(NewHash(8, 3, seed), []int{0, 1, 2, 3, 4, 5, 6, 7})
	next := NewRemap(NewHash(9, 3, seed), []int{0, 1, 2, 3, 4, 5, 6, 7, 8})
	frac, err := MovedFraction(old, next, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 || frac >= 1 {
		t.Fatalf("join moved fraction = %.3f, want in (0, 1)", frac)
	}
}
