package partition

import "testing"

func TestMovedFractionIdentical(t *testing.T) {
	a := NewRing(20, 3, 5, 0)
	b := NewRing(20, 3, 5, 0)
	if f := MovedFraction(a, b, 2000); f != 0 {
		t.Errorf("identical partitioners moved %v of keys", f)
	}
}

func TestMovedFractionRingGrowth(t *testing.T) {
	// Growing a ring from 20 to 21 nodes should move roughly d/(n+1) of
	// the keys' groups — the minimal-disruption property.
	const d = 3
	a := NewRing(20, d, 5, 256)
	b := NewRing(21, d, 5, 256)
	f := MovedFraction(a, b, 20000)
	// Expected ≈ 1 - (1 - 1/21)^d ≈ 0.136; allow generous noise.
	if f > 0.30 {
		t.Errorf("ring growth moved %v of keys, want ~0.14", f)
	}
	if f == 0 {
		t.Error("ring growth moved nothing")
	}
}

func TestMovedFractionRendezvousGrowth(t *testing.T) {
	const d = 3
	a := NewRendezvous(20, d, 5)
	b := NewRendezvous(21, d, 5)
	f := MovedFraction(a, b, 20000)
	if f > 0.25 {
		t.Errorf("rendezvous growth moved %v of keys, want ~d/(n+1)", f)
	}
	if f == 0 {
		t.Error("rendezvous growth moved nothing")
	}
}

func TestMovedFractionHashGrowthIsDisruptive(t *testing.T) {
	// The plain hash partitioner has no minimal-disruption property: a
	// node-count change reshuffles nearly everything. This is exactly why
	// real systems (and the ring/rendezvous options here) exist.
	a := NewHash(20, 3, 5)
	b := NewHash(21, 3, 5)
	f := MovedFraction(a, b, 20000)
	if f < 0.5 {
		t.Errorf("hash partitioner growth moved only %v of keys; expected heavy reshuffle", f)
	}
}

func TestMovedFractionSeedChangeMovesEverything(t *testing.T) {
	// Rotating the secret seed is the nuclear option against an adversary
	// who learned the mapping — and costs a full reshuffle.
	a := NewRendezvous(20, 3, 5)
	b := NewRendezvous(20, 3, 6)
	f := MovedFraction(a, b, 5000)
	if f < 0.9 {
		t.Errorf("seed rotation moved only %v of keys", f)
	}
}

func TestMovedFractionIgnoresOrder(t *testing.T) {
	// Two partitioners returning the same sets in different orders move
	// nothing. Build via the sameSet helper directly.
	if !sameSet([]int{1, 2, 3}, []int{3, 1, 2}) {
		t.Error("sameSet order-sensitive")
	}
	if sameSet([]int{1, 2, 3}, []int{1, 2, 4}) {
		t.Error("sameSet missed a difference")
	}
	if sameSet([]int{1, 2}, []int{1, 2, 3}) {
		t.Error("sameSet ignored length")
	}
}

func TestMovedFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive samples did not panic")
		}
	}()
	MovedFraction(NewHash(5, 2, 1), NewHash(5, 2, 1), 0)
}
