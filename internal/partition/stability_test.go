package partition

import "testing"

// mustMovedFraction is the test shorthand for the well-formed-input case.
func mustMovedFraction(t *testing.T, a, b Partitioner, samples int) float64 {
	t.Helper()
	f, err := MovedFraction(a, b, samples)
	if err != nil {
		t.Fatalf("MovedFraction: %v", err)
	}
	return f
}

func TestMovedFractionIdentical(t *testing.T) {
	a := NewRing(20, 3, 5, 0)
	b := NewRing(20, 3, 5, 0)
	if f := mustMovedFraction(t, a, b, 2000); f != 0 {
		t.Errorf("identical partitioners moved %v of keys", f)
	}
}

func TestMovedFractionRingGrowth(t *testing.T) {
	// Growing a ring from 20 to 21 nodes should move roughly d/(n+1) of
	// the keys' groups — the minimal-disruption property.
	const d = 3
	a := NewRing(20, d, 5, 256)
	b := NewRing(21, d, 5, 256)
	f := mustMovedFraction(t, a, b, 20000)
	// Expected ≈ 1 - (1 - 1/21)^d ≈ 0.136; allow generous noise.
	if f > 0.30 {
		t.Errorf("ring growth moved %v of keys, want ~0.14", f)
	}
	if f == 0 {
		t.Error("ring growth moved nothing")
	}
}

func TestMovedFractionRendezvousGrowth(t *testing.T) {
	const d = 3
	a := NewRendezvous(20, d, 5)
	b := NewRendezvous(21, d, 5)
	f := mustMovedFraction(t, a, b, 20000)
	if f > 0.25 {
		t.Errorf("rendezvous growth moved %v of keys, want ~d/(n+1)", f)
	}
	if f == 0 {
		t.Error("rendezvous growth moved nothing")
	}
}

func TestMovedFractionHashGrowthIsDisruptive(t *testing.T) {
	// The plain hash partitioner has no minimal-disruption property: a
	// node-count change reshuffles nearly everything. This is exactly why
	// real systems (and the ring/rendezvous options here) exist.
	a := NewHash(20, 3, 5)
	b := NewHash(21, 3, 5)
	f := mustMovedFraction(t, a, b, 20000)
	if f < 0.5 {
		t.Errorf("hash partitioner growth moved only %v of keys; expected heavy reshuffle", f)
	}
}

func TestMovedFractionSeedChangeMovesEverything(t *testing.T) {
	// Rotating the secret seed is the nuclear option against an adversary
	// who learned the mapping — and costs a full reshuffle.
	a := NewRendezvous(20, 3, 5)
	b := NewRendezvous(20, 3, 6)
	f := mustMovedFraction(t, a, b, 5000)
	if f < 0.9 {
		t.Errorf("seed rotation moved only %v of keys", f)
	}
}

func TestMovedFractionIgnoresOrder(t *testing.T) {
	// Two partitioners returning the same sets in different orders move
	// nothing. Build via the sameSet helper directly.
	if !sameSet([]int{1, 2, 3}, []int{3, 1, 2}) {
		t.Error("sameSet order-sensitive")
	}
	if sameSet([]int{1, 2, 3}, []int{1, 2, 4}) {
		t.Error("sameSet missed a difference")
	}
	if sameSet([]int{1, 2}, []int{1, 2, 3}) {
		t.Error("sameSet ignored length")
	}
}

func TestMovedFractionBadSamples(t *testing.T) {
	a := NewHash(5, 2, 1)
	for _, samples := range []int{0, -1} {
		if _, err := MovedFraction(a, a, samples); err == nil {
			t.Errorf("samples=%d accepted", samples)
		}
	}
	// The same call with a positive count must succeed.
	if _, err := MovedFraction(a, a, 1); err != nil {
		t.Errorf("samples=1 rejected: %v", err)
	}
}
