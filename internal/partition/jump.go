package partition

import (
	"securecache/internal/hashing"
)

// Jump derives each key's group from d independent jump-consistent-hash
// draws, one per replica slot, deduplicated by linear probing. Jump hash
// (Lamping & Veale) has the minimal-disruption property: growing the
// bucket count n -> n+1 moves each (key, slot) pair with probability
// exactly 1/(n+1), so a one-node join moves ~d/(n+1) of replica groups
// instead of reshuffling nearly all of them the way the modular Hash
// partitioner does.
//
// The draw for slot r is keyed by the secret seed (salted per slot), so
// the mapping stays opaque to clients without the seed, and rotating the
// seed still reshuffles every group — the stability is with respect to
// membership changes only, which is exactly what elastic membership
// wants and exactly what secret rotation must not have.
//
// Jump places over the dense index space [0, n): it is stable when the
// space grows or shrinks at the TOP (append a node, retire the highest
// node). Member lists with holes (drain of a middle member) should use
// MemberRing instead, whose placement is keyed by the member IDs
// themselves.
type Jump struct {
	n, d int
	seed uint64
}

// NewJump returns a jump-hash partitioner over n nodes with replication
// d, keyed by seed.
func NewJump(n, d int, seed uint64) *Jump {
	validate(n, d)
	return &Jump{n: n, d: d, seed: seed}
}

// Nodes returns n.
func (j *Jump) Nodes() int { return j.n }

// Replicas returns d.
func (j *Jump) Replicas() int { return j.d }

// Group returns the key's replica group.
func (j *Jump) Group(key uint64) []int {
	return j.GroupAppend(make([]int, 0, j.d), key)
}

// slotSalt decorrelates the per-replica-slot draws. The odd constant is
// the splitmix64 increment; any odd multiplier works.
func slotSalt(seed uint64, slot int) uint64 {
	return seed ^ (uint64(slot+1) * 0x9E3779B97F4A7C15)
}

// GroupAppend appends the key's replica group to dst.
func (j *Jump) GroupAppend(dst []int, key uint64) []int {
	start := len(dst)
	for r := 0; len(dst)-start < j.d; r++ {
		cand := hashing.JumpHash(hashing.Hash64Uint(key, slotSalt(j.seed, r)), j.n)
		// Linear-probe duplicates upward: a collision (prob ~d/n per
		// slot) shifts load to the next index, which stays uniform
		// because cand itself is uniform. Probing, unlike re-drawing,
		// keeps the slot's placement independent of n except through
		// jump hash itself, preserving the 1/(n+1) movement bound.
		for probing := true; probing; {
			probing = false
			for _, v := range dst[start:] {
				if v == cand {
					cand = (cand + 1) % j.n
					probing = true
					break
				}
			}
		}
		dst = append(dst, cand)
	}
	return dst
}

var _ Partitioner = (*Jump)(nil)
