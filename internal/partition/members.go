package partition

import (
	"fmt"

	"securecache/internal/hashing"
)

// MemberRing maps keys onto an explicit member-ID list through a
// consistent-hash ring whose virtual points are derived from the member
// IDs themselves (not from dense indices). That makes it the stable
// mapping for elastic membership: a ±1 member view change moves only the
// arcs the joining/draining member owns — ~d/n of replica groups —
// because every other member's ring points are untouched. Compare
// Remap(Hash), where the modular draw reshuffles nearly every group, and
// Remap(Jump), where a mid-list drain shifts the dense index of every
// later member.
//
// Placement is keyed by the secret seed exactly like Ring, so the
// mapping stays opaque without the seed and a seed rotation still
// reshuffles every group. Nodes() returns the member COUNT (the n of
// c* and the Eq. 10 bound), and Group returns global member IDs — the
// same contract relaxation Remap documents.
type MemberRing struct {
	d    int
	ids  []int
	ring *hashing.Ring
}

// NewMemberRing builds a ring partitioner over the given member IDs with
// replication d, keyed by seed. vnodes controls placement uniformity
// (0 = default 128). The IDs must be distinct and non-negative.
func NewMemberRing(ids []int, d int, seed uint64, vnodes int) *MemberRing {
	validate(len(ids), d)
	var opts []hashing.RingOption
	if vnodes > 0 {
		opts = append(opts, hashing.WithVirtualNodes(vnodes))
	}
	r := hashing.NewRing(seed, opts...)
	seen := make(map[int]struct{}, len(ids))
	for _, id := range ids {
		if id < 0 {
			panic(fmt.Sprintf("partition: negative member ID %d", id))
		}
		if _, dup := seen[id]; dup {
			panic(fmt.Sprintf("partition: duplicate member ID %d", id))
		}
		seen[id] = struct{}{}
		r.Add(id)
	}
	r.Finalize() // one sort; lookups are then read-only and concurrency-safe
	return &MemberRing{d: d, ids: append([]int(nil), ids...), ring: r}
}

// Nodes returns the member count n.
func (m *MemberRing) Nodes() int { return len(m.ids) }

// Replicas returns d.
func (m *MemberRing) Replicas() int { return m.d }

// IDs returns a copy of the member ID list.
func (m *MemberRing) IDs() []int { return append([]int(nil), m.ids...) }

// Group returns the key's replica group as member IDs.
func (m *MemberRing) Group(key uint64) []int { return m.ring.GetNUint(key, m.d) }

// GroupAppend appends the key's replica group (as member IDs) to dst.
func (m *MemberRing) GroupAppend(dst []int, key uint64) []int {
	return append(dst, m.ring.GetNUint(key, m.d)...)
}

var _ Partitioner = (*MemberRing)(nil)
