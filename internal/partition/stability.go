package partition

import "fmt"

// Stability quantifies Assumption 4 of the paper ("costly to shift
// results: the partitioning is relatively stable"): when cluster
// membership changes, how many keys move?
//
// MovedFraction samples the key space and reports the fraction of keys
// whose replica group changed between two partitioners (e.g. before and
// after adding a node). Consistent-hash and rendezvous partitioners move
// only O(d/n) of the keys per membership change, while a naive modulo or
// freshly-seeded hash partitioner reshuffles almost everything — which is
// why deployments pay for ring/HRW partitioning even though the paper's
// bound itself is partitioner-agnostic.

// MovedFraction samples keys 0..samples-1 and returns the fraction whose
// replica group differs between a and b. Group order is ignored: a key
// "moves" only if the *set* of nodes serving it changes (a reordering
// costs nothing — the data is already on all group members). A
// non-positive sample count is an error, not a panic: the count now
// arrives from operator-facing surfaces (the rotation admin verb), and a
// bad request must not take the frontend down.
func MovedFraction(a, b Partitioner, samples int) (float64, error) {
	if samples <= 0 {
		return 0, fmt.Errorf("partition: MovedFraction sample count %d, want > 0", samples)
	}
	moved := 0
	ga := make([]int, 0, a.Replicas())
	gb := make([]int, 0, b.Replicas())
	for key := 0; key < samples; key++ {
		ga = a.GroupAppend(ga[:0], uint64(key))
		gb = b.GroupAppend(gb[:0], uint64(key))
		if !sameSet(ga, gb) {
			moved++
		}
	}
	return float64(moved) / float64(samples), nil
}

// sameSet reports whether two small int slices contain the same elements
// (d is tiny, so the quadratic check beats allocating maps).
func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
outer:
	for _, x := range a {
		for _, y := range b {
			if x == y {
				continue outer
			}
		}
		return false
	}
	return true
}
