package partition

import (
	"math"
	"testing"
	"testing/quick"
)

func allKinds(n, d int, seed uint64) map[string]Partitioner {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return map[string]Partitioner{
		"hash":        NewHash(n, d, seed),
		"ring":        NewRing(n, d, seed, 0),
		"rendezvous":  NewRendezvous(n, d, seed),
		"jump":        NewJump(n, d, seed),
		"member-ring": NewMemberRing(ids, d, seed, 0),
	}
}

func TestGroupDistinctInRange(t *testing.T) {
	for name, p := range allKinds(17, 4, 42) {
		for key := uint64(0); key < 2000; key++ {
			g := p.Group(key)
			if len(g) != 4 {
				t.Fatalf("%s: group size %d, want 4", name, len(g))
			}
			seen := map[int]bool{}
			for _, node := range g {
				if node < 0 || node >= 17 || seen[node] {
					t.Fatalf("%s: invalid group %v for key %d", name, g, key)
				}
				seen[node] = true
			}
		}
	}
}

func TestGroupDeterministic(t *testing.T) {
	for name, p := range allKinds(20, 3, 7) {
		q := allKinds(20, 3, 7)[name]
		for key := uint64(0); key < 500; key++ {
			a, b := p.Group(key), q.Group(key)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: key %d groups differ: %v vs %v", name, key, a, b)
				}
			}
		}
	}
}

func TestGroupSeedOpacity(t *testing.T) {
	// Different seeds must give (mostly) different groups: a client who
	// does not know the seed cannot predict the mapping.
	for name := range allKinds(2, 1, 0) {
		a := allKinds(50, 3, 1)[name]
		b := allKinds(50, 3, 2)[name]
		identical := 0
		const keys = 1000
		for key := uint64(0); key < keys; key++ {
			ga, gb := a.Group(key), b.Group(key)
			same := true
			for i := range ga {
				if ga[i] != gb[i] {
					same = false
					break
				}
			}
			if same {
				identical++
			}
		}
		// P(same ordered 3-of-50 group) ≈ 1/(50·49·48); anything above a
		// few per thousand indicates seed leakage.
		if identical > 5 {
			t.Errorf("%s: %d/%d keys kept identical groups across seeds", name, identical, keys)
		}
	}
}

func TestGroupAppendMatchesGroup(t *testing.T) {
	for name, p := range allKinds(12, 3, 9) {
		for key := uint64(0); key < 200; key++ {
			base := []int{-1}
			got := p.GroupAppend(base, key)
			if len(got) != 4 || got[0] != -1 {
				t.Fatalf("%s: GroupAppend did not append (got %v)", name, got)
			}
			want := p.Group(key)
			for i := range want {
				if got[i+1] != want[i] {
					t.Fatalf("%s: GroupAppend %v != Group %v", name, got[1:], want)
				}
			}
		}
	}
}

func TestGroupUniformity(t *testing.T) {
	// Every node should appear in roughly keys*d/n groups.
	const n, d, keys = 20, 3, 40000
	for name, p := range allKinds(n, d, 5) {
		counts := make([]int, n)
		for key := uint64(0); key < keys; key++ {
			for _, node := range p.Group(key) {
				counts[node]++
			}
		}
		want := float64(keys) * d / n
		for node, c := range counts {
			// The ring's vnode placement is noisier; allow 20%.
			if math.Abs(float64(c)-want)/want > 0.20 {
				t.Errorf("%s: node %d in %d groups, want within 20%% of %v", name, node, c, want)
			}
		}
	}
}

func TestGroupFullReplication(t *testing.T) {
	// d == n: every group is all nodes.
	for name, p := range allKinds(5, 5, 3) {
		g := p.Group(123)
		seen := map[int]bool{}
		for _, node := range g {
			seen[node] = true
		}
		if len(seen) != 5 {
			t.Errorf("%s: d=n group %v does not cover all nodes", name, g)
		}
	}
}

func TestValidatePanics(t *testing.T) {
	cases := []struct{ n, d int }{{0, 1}, {5, 0}, {5, 6}, {-1, 1}}
	for _, tc := range cases {
		for _, ctor := range []func(){
			func() { NewHash(tc.n, tc.d, 1) },
			func() { NewRing(tc.n, tc.d, 1, 0) },
			func() { NewRendezvous(tc.n, tc.d, 1) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("constructor with n=%d d=%d did not panic", tc.n, tc.d)
					}
				}()
				ctor()
			}()
		}
	}
}

func TestNewByKind(t *testing.T) {
	for _, kind := range []Kind{KindHash, KindRing, KindRendezvous, ""} {
		p, err := New(kind, 10, 3, 1)
		if err != nil {
			t.Fatalf("New(%q) error: %v", kind, err)
		}
		if p.Nodes() != 10 || p.Replicas() != 3 {
			t.Errorf("New(%q) accessors wrong", kind)
		}
	}
	if _, err := New("bogus", 10, 3, 1); err == nil {
		t.Error("New(bogus) did not error")
	}
}

func TestHashGroupQuickProperty(t *testing.T) {
	p := NewHash(31, 3, 99)
	f := func(key uint64) bool {
		g := p.Group(key)
		if len(g) != 3 {
			return false
		}
		return g[0] != g[1] && g[1] != g[2] && g[0] != g[2]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkHashGroup(b *testing.B) {
	p := NewHash(1000, 3, 1)
	buf := make([]int, 0, 3)
	for i := 0; i < b.N; i++ {
		buf = p.GroupAppend(buf[:0], uint64(i))
	}
	_ = buf
}

func BenchmarkRingGroup(b *testing.B) {
	p := NewRing(1000, 3, 1, 0)
	for i := 0; i < b.N; i++ {
		p.Group(uint64(i))
	}
}

func BenchmarkRendezvousGroup(b *testing.B) {
	p := NewRendezvous(1000, 3, 1)
	for i := 0; i < b.N; i++ {
		p.Group(uint64(i))
	}
}
