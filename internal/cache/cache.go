// Package cache implements the front-end caches of the paper's
// architecture.
//
// The paper analyses an idealized "perfect cache" that always holds the c
// most popular items (Assumption 2). Perfect implements exactly that, given
// the true popularity order. Deployed systems approximate it with
// replacement and admission policies; the package provides LRU, LFU,
// segmented LRU, and a TinyLFU-style admission filter so the experiments
// can measure how close practice gets to the perfect-cache assumption.
//
// All caches map uint64 keys to opaque []byte values (nil values are
// legal, and the simulation uses them throughout — only presence matters
// there). Caches are not safe for concurrent use; the kvstore front end
// wraps them in a mutex.
package cache

import "fmt"

// Cache is a bounded key-value cache.
type Cache interface {
	// Get returns the cached value and whether the key was present.
	// Get counts toward hit/miss statistics and updates recency or
	// frequency state.
	Get(key uint64) ([]byte, bool)
	// Put inserts or updates a key. Admission-controlled caches may
	// decline to insert; Put reports whether the key is cached afterwards.
	Put(key uint64, value []byte) bool
	// Contains reports presence without updating any policy state or
	// statistics.
	Contains(key uint64) bool
	// Remove invalidates key, reporting whether it was present. For the
	// Perfect cache — whose membership is fixed by definition — Remove
	// drops the stored value only, so the next Get hit carries no stale
	// data.
	Remove(key uint64) bool
	// Len returns the number of cached keys.
	Len() int
	// Cap returns the maximum number of cached keys.
	Cap() int
	// Stats returns cumulative hit/miss counters.
	Stats() Stats
}

// Resizable is implemented by caches whose capacity can change while
// serving, reporting whether the resize was applied. The kvstore
// auto-provisioner resizes the frontend cache to the new c* on every
// membership change; policies that cannot resize simply return false
// and keep their capacity (the operator sees the gap in the
// cache_capacity gauge).
type Resizable interface {
	Resize(capacity int) bool
}

// Stats holds cumulative cache counters.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// String formats the counters for logs.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d ratio=%.4f", s.Hits, s.Misses, s.HitRatio())
}

// Kind names a cache implementation, for configs and flags.
type Kind string

// Supported cache kinds.
const (
	KindPerfect Kind = "perfect"
	KindLRU     Kind = "lru"
	KindLFU     Kind = "lfu"
	KindSLRU    Kind = "slru"
	KindTinyLFU Kind = "tinylfu"
	KindARC     Kind = "arc"
)

// New constructs a cache of the given kind and capacity. Perfect caches
// cannot be built here — they need the popularity order; use NewPerfect.
func New(kind Kind, capacity int) (Cache, error) {
	switch kind {
	case KindLRU, "":
		return NewLRU(capacity), nil
	case KindLFU:
		return NewLFU(capacity), nil
	case KindSLRU:
		return NewSLRU(capacity), nil
	case KindTinyLFU:
		return NewTinyLFU(capacity, 0), nil
	case KindARC:
		return NewARC(capacity), nil
	case KindPerfect:
		return nil, fmt.Errorf("cache: perfect cache requires the popularity set; use NewPerfect")
	default:
		return nil, fmt.Errorf("cache: unknown cache kind %q", kind)
	}
}

func validateCapacity(c int) {
	if c < 0 {
		panic(fmt.Sprintf("cache: negative capacity %d", c))
	}
}
