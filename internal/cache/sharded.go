package cache

import (
	"fmt"
	"runtime"
	"sync"
)

// Sharded is a concurrency-safe cache built from 2^k independently
// locked shards, each wrapping one single-threaded Cache (LRU, LFU,
// SLRU, TinyLFU, ARC — the policies stay oblivious). Keys are already
// 64-bit hashes (the frontend's KeyID), so a fixed multiplicative mix of
// the key picks the shard; concurrent operations on different shards
// never touch the same lock, which is what lets the front-end serve
// cache hits from all cores instead of serializing them on one mutex.
//
// Capacity is split evenly: each shard holds ceil(capacity/shards)
// entries, so the total is never below the requested capacity. The split
// is static — the c hottest keys spread over the shards like balls into
// bins, so a shard can overflow its quota while another has room. With
// the ceil rounding plus the paper's own slack in c* this is negligible
// for realistic shard counts (see DESIGN.md "Performance"); provision
// headroom if c is within a few entries of the working set.
type Sharded struct {
	shards []cacheShard
	mask   uint64
	shift  uint
}

type cacheShard struct {
	mu sync.Mutex
	c  Cache
	// Pad to a cache line so adjacent shard locks do not false-share.
	_ [40]byte
}

var _ Cache = (*Sharded)(nil)

// DefaultShards picks a shard count for this machine: the smallest power
// of two >= 2*GOMAXPROCS, clamped to [1, 64]. More shards than that buys
// nothing — the goal is that two running cores rarely collide on a lock.
func DefaultShards() int {
	want := 2 * runtime.GOMAXPROCS(0)
	n := 1
	for n < want && n < 64 {
		n <<= 1
	}
	return n
}

// NewShardedWith builds a sharded cache from a per-shard constructor.
// shards must be a power of two (0 = DefaultShards()); capacity is the
// total entry budget, split as ceil(capacity/shards) per shard.
func NewShardedWith(shards, capacity int, newShard func(capacity int) (Cache, error)) (*Sharded, error) {
	if shards == 0 {
		shards = DefaultShards()
	}
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("cache: shard count %d is not a power of two", shards)
	}
	validateCapacity(capacity)
	perShard := (capacity + shards - 1) / shards
	s := &Sharded{shards: make([]cacheShard, shards), mask: uint64(shards - 1)}
	for shards>>s.shift != 1 {
		s.shift++
	}
	for i := range s.shards {
		c, err := newShard(perShard)
		if err != nil {
			return nil, err
		}
		s.shards[i].c = c
	}
	return s, nil
}

// NewSharded builds a sharded cache of the given policy kind (see New).
// shards must be a power of two, or 0 for DefaultShards().
func NewSharded(kind Kind, capacity, shards int) (*Sharded, error) {
	return NewShardedWith(shards, capacity, func(capacity int) (Cache, error) {
		return New(kind, capacity)
	})
}

// ConcurrentSafe marks Sharded as safe for concurrent use: the kvstore
// frontend skips its own serializing mutex for caches carrying this
// method.
func (s *Sharded) ConcurrentSafe() {}

// shard maps a key to its shard. Keys are hashes already, but their low
// bits also index the inner caches' maps; a multiplicative mix of the
// HIGH bits keeps shard choice independent of those.
func (s *Sharded) shard(key uint64) *cacheShard {
	return &s.shards[(key*0x9e3779b97f4a7c15)>>(64-s.shift)&s.mask]
}

// Get returns the cached value and whether the key was present.
func (s *Sharded) Get(key uint64) ([]byte, bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	v, ok := sh.c.Get(key)
	sh.mu.Unlock()
	return v, ok
}

// Put inserts or updates a key, reporting whether it is cached afterwards.
func (s *Sharded) Put(key uint64, value []byte) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	ok := sh.c.Put(key, value)
	sh.mu.Unlock()
	return ok
}

// PutIfPresent updates key only if it is already cached, atomically with
// respect to the shard — the frontend's write path uses it so a Set
// refresh can never evict a popular entry to admit a cold key.
func (s *Sharded) PutIfPresent(key uint64, value []byte) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	ok := sh.c.Contains(key) && sh.c.Put(key, value)
	sh.mu.Unlock()
	return ok
}

// Contains reports presence without updating policy state.
func (s *Sharded) Contains(key uint64) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	ok := sh.c.Contains(key)
	sh.mu.Unlock()
	return ok
}

// Remove invalidates key, reporting whether it was present.
func (s *Sharded) Remove(key uint64) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	ok := sh.c.Remove(key)
	sh.mu.Unlock()
	return ok
}

// Len returns the number of cached keys across all shards.
func (s *Sharded) Len() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.c.Len()
		sh.mu.Unlock()
	}
	return total
}

// Cap returns the total capacity across all shards (>= the requested
// capacity, by the ceil split).
func (s *Sharded) Cap() int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		total += sh.c.Cap()
		sh.mu.Unlock()
	}
	return total
}

// Shards returns the shard count (for logs and tests).
func (s *Sharded) Shards() int { return len(s.shards) }

// Resize re-splits a new total capacity over the shards
// (ceil(capacity/shards) each, matching the constructor's split),
// reporting whether every shard's policy applied it. Policies that are
// not Resizable leave their shard untouched — all-or-nothing per shard,
// best-effort across shards, and the report tells the caller whether
// Cap now reflects the request.
func (s *Sharded) Resize(capacity int) bool {
	validateCapacity(capacity)
	perShard := (capacity + len(s.shards) - 1) / len(s.shards)
	applied := true
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if r, ok := sh.c.(Resizable); ok {
			if !r.Resize(perShard) {
				applied = false
			}
		} else {
			applied = false
		}
		sh.mu.Unlock()
	}
	return applied
}

var _ Resizable = (*Sharded)(nil)

// Stats sums the per-shard hit/miss counters.
func (s *Sharded) Stats() Stats {
	var out Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st := sh.c.Stats()
		sh.mu.Unlock()
		out.Hits += st.Hits
		out.Misses += st.Misses
	}
	return out
}
