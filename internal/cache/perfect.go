package cache

// Perfect is the paper's idealized front-end cache: it permanently holds a
// fixed set of keys (the c most popular items under the true query
// distribution) and never evicts. Queries for member keys always hit;
// everything else always misses — exactly Assumption 2 of the paper.
//
// Values are stored lazily on Put so the kvstore can also run with a
// Perfect cache when the workload is known.
type Perfect struct {
	member map[uint64]bool
	values map[uint64][]byte
	stats  Stats
}

var _ Cache = (*Perfect)(nil)

// NewPerfect returns a perfect cache pinned to exactly the given key set.
func NewPerfect(keys map[uint64]bool) *Perfect {
	member := make(map[uint64]bool, len(keys))
	for k, ok := range keys {
		if ok {
			member[k] = true
		}
	}
	return &Perfect{
		member: member,
		values: make(map[uint64][]byte, len(member)),
	}
}

// NewPerfectFromSlice returns a perfect cache pinned to the listed keys.
func NewPerfectFromSlice(keys []uint64) *Perfect {
	member := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		member[k] = true
	}
	return &Perfect{member: member, values: make(map[uint64][]byte, len(member))}
}

// Get hits iff key is in the pinned set.
func (p *Perfect) Get(key uint64) ([]byte, bool) {
	if p.member[key] {
		p.stats.Hits++
		return p.values[key], true
	}
	p.stats.Misses++
	return nil, false
}

// Put stores a value only for pinned keys and reports whether the key is
// cached.
func (p *Perfect) Put(key uint64, value []byte) bool {
	if !p.member[key] {
		return false
	}
	p.values[key] = value
	return true
}

// Contains reports pinned membership without touching statistics.
func (p *Perfect) Contains(key uint64) bool { return p.member[key] }

// Remove drops the stored value for key (membership is permanent by
// definition of the perfect cache). It reports whether a value was
// stored.
func (p *Perfect) Remove(key uint64) bool {
	_, had := p.values[key]
	delete(p.values, key)
	return had
}

// Len returns the pinned-set size (membership is permanent, so Len == Cap).
func (p *Perfect) Len() int { return len(p.member) }

// Cap returns the pinned-set size.
func (p *Perfect) Cap() int { return len(p.member) }

// Stats returns cumulative counters.
func (p *Perfect) Stats() Stats { return p.stats }
