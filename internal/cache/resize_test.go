package cache

import "testing"

func TestLRUResizeShrinkEvictsOldest(t *testing.T) {
	c := NewLRU(8)
	for i := uint64(0); i < 8; i++ {
		c.Put(i, nil)
	}
	// Touch 0..3 so they are the most recent.
	for i := uint64(0); i < 4; i++ {
		c.Get(i)
	}
	if !c.Resize(4) {
		t.Fatal("LRU resize not applied")
	}
	if c.Cap() != 4 || c.Len() != 4 {
		t.Fatalf("cap/len = %d/%d, want 4/4", c.Cap(), c.Len())
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Contains(i) {
			t.Fatalf("recent key %d evicted by shrink", i)
		}
	}
	for i := uint64(4); i < 8; i++ {
		if c.Contains(i) {
			t.Fatalf("stale key %d survived shrink", i)
		}
	}
}

func TestLRUResizeGrowKeepsEntries(t *testing.T) {
	c := NewLRU(2)
	c.Put(1, nil)
	c.Put(2, nil)
	c.Resize(10)
	if c.Cap() != 10 || !c.Contains(1) || !c.Contains(2) {
		t.Fatalf("grow lost entries: cap=%d", c.Cap())
	}
	for i := uint64(3); i < 11; i++ {
		c.Put(i, nil)
	}
	if c.Len() != 10 {
		t.Fatalf("len = %d after filling grown cache", c.Len())
	}
}

func TestShardedResize(t *testing.T) {
	s, err := NewSharded(KindLRU, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		s.Put(i, nil)
	}
	if !s.Resize(16) {
		t.Fatal("sharded LRU resize not applied")
	}
	if got := s.Cap(); got != 16 {
		t.Fatalf("cap after shrink = %d, want 16", got)
	}
	if got := s.Len(); got > 16 {
		t.Fatalf("len after shrink = %d, want <= 16", got)
	}
	if !s.Resize(128) {
		t.Fatal("grow not applied")
	}
	if got := s.Cap(); got != 128 {
		t.Fatalf("cap after grow = %d, want 128", got)
	}
}

func TestShardedResizeUnsupportedPolicy(t *testing.T) {
	// LFU has no Resize; the sharded wrapper must report that rather
	// than silently pretending.
	s, err := NewSharded(KindLFU, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Resize(16) {
		t.Fatal("sharded LFU reported resize applied")
	}
	if got := s.Cap(); got != 64 {
		t.Fatalf("cap changed to %d despite unsupported policy", got)
	}
}
