package cache

import "container/list"

// LRU is a classic least-recently-used cache: every Get and Put moves the
// key to the front; inserting into a full cache evicts the back.
type LRU struct {
	capacity int
	order    *list.List // front = most recent
	items    map[uint64]*list.Element
	stats    Stats
}

type lruEntry struct {
	key   uint64
	value []byte
}

var _ Cache = (*LRU)(nil)

// NewLRU returns an LRU cache holding at most capacity keys. A capacity of
// zero yields a cache that never stores anything (useful as the "no cache"
// baseline).
func NewLRU(capacity int) *LRU {
	validateCapacity(capacity)
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[uint64]*list.Element, capacity),
	}
}

// Get returns the cached value, refreshing the key's recency.
func (c *LRU) Get(key uint64) ([]byte, bool) {
	if e, ok := c.items[key]; ok {
		c.order.MoveToFront(e)
		c.stats.Hits++
		return e.Value.(*lruEntry).value, true
	}
	c.stats.Misses++
	return nil, false
}

// Put inserts or refreshes key, evicting the least recently used entry if
// full. It always admits (returns true) unless capacity is zero.
func (c *LRU) Put(key uint64, value []byte) bool {
	if c.capacity == 0 {
		return false
	}
	if e, ok := c.items[key]; ok {
		c.order.MoveToFront(e)
		e.Value.(*lruEntry).value = value
		return true
	}
	if c.order.Len() >= c.capacity {
		c.evictOldest()
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, value: value})
	return true
}

func (c *LRU) evictOldest() {
	back := c.order.Back()
	if back == nil {
		return
	}
	c.order.Remove(back)
	delete(c.items, back.Value.(*lruEntry).key)
}

// Contains reports presence without updating recency or statistics.
func (c *LRU) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

// Victim returns the key that would be evicted next and whether one
// exists. TinyLFU admission uses it to compare candidate vs victim
// frequency.
func (c *LRU) Victim() (uint64, bool) {
	back := c.order.Back()
	if back == nil {
		return 0, false
	}
	return back.Value.(*lruEntry).key, true
}

// Remove deletes key if present, reporting whether it was.
func (c *LRU) Remove(key uint64) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(e)
	delete(c.items, key)
	return true
}

// Len returns the number of cached keys.
func (c *LRU) Len() int { return c.order.Len() }

// Cap returns the capacity.
func (c *LRU) Cap() int { return c.capacity }

// Resize changes the capacity in place, evicting from the LRU end when
// shrinking. Growing keeps every resident entry. Always applied.
func (c *LRU) Resize(capacity int) bool {
	validateCapacity(capacity)
	c.capacity = capacity
	for c.order.Len() > c.capacity {
		c.evictOldest()
	}
	return true
}

var _ Resizable = (*LRU)(nil)

// Stats returns cumulative counters.
func (c *LRU) Stats() Stats { return c.stats }
