package cache

import (
	"testing"

	"securecache/internal/workload"
	"securecache/internal/xrand"
)

// allCaches builds one of each policy at the given capacity.
func allCaches(capacity int) map[string]Cache {
	perfectSet := make(map[uint64]bool, capacity)
	for k := uint64(0); k < uint64(capacity); k++ {
		perfectSet[k] = true
	}
	return map[string]Cache{
		"perfect": NewPerfect(perfectSet),
		"lru":     NewLRU(capacity),
		"lfu":     NewLFU(capacity),
		"slru":    NewSLRU(capacity),
		"tinylfu": NewTinyLFU(capacity, 0),
		"arc":     NewARC(capacity),
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	rng := xrand.New(1)
	for name, c := range allCaches(16) {
		for i := 0; i < 5000; i++ {
			k := uint64(rng.Intn(200))
			c.Get(k)
			c.Put(k, nil)
			if c.Len() > c.Cap() {
				t.Fatalf("%s: Len %d > Cap %d", name, c.Len(), c.Cap())
			}
		}
	}
}

func TestGetAfterPut(t *testing.T) {
	for name, c := range allCaches(16) {
		if admitted := c.Put(3, []byte("v3")); admitted {
			v, ok := c.Get(3)
			if !ok || string(v) != "v3" {
				t.Errorf("%s: Get(3) = %q, %v after admitted Put", name, v, ok)
			}
		}
	}
}

func TestContainsDoesNotCountStats(t *testing.T) {
	for name, c := range allCaches(8) {
		c.Put(1, nil)
		c.Contains(1)
		c.Contains(99)
		s := c.Stats()
		if s.Hits != 0 || s.Misses != 0 {
			t.Errorf("%s: Contains affected stats: %v", name, s)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	for name, c := range allCaches(8) {
		c.Put(1, nil)
		c.Get(1)  // hit
		c.Get(42) // miss (42 outside perfect set of size 8)
		s := c.Stats()
		if s.Hits != 1 || s.Misses != 1 {
			t.Errorf("%s: stats = %+v, want 1 hit 1 miss", name, s)
		}
		if got := s.HitRatio(); got != 0.5 {
			t.Errorf("%s: HitRatio = %v, want 0.5", name, got)
		}
	}
}

func TestHitRatioEmpty(t *testing.T) {
	var s Stats
	if s.HitRatio() != 0 {
		t.Error("HitRatio of zero stats should be 0")
	}
}

func TestZeroCapacityNeverCaches(t *testing.T) {
	for name, c := range map[string]Cache{
		"lru":     NewLRU(0),
		"lfu":     NewLFU(0),
		"slru":    NewSLRU(0),
		"tinylfu": NewTinyLFU(0, 0),
		"arc":     NewARC(0),
		"perfect": NewPerfect(nil),
	} {
		if c.Put(1, nil) {
			t.Errorf("%s: zero-capacity cache admitted a key", name)
		}
		if _, ok := c.Get(1); ok {
			t.Errorf("%s: zero-capacity cache hit", name)
		}
		if c.Len() != 0 {
			t.Errorf("%s: zero-capacity cache Len %d", name, c.Len())
		}
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"lru":     func() { NewLRU(-1) },
		"lfu":     func() { NewLFU(-1) },
		"slru":    func() { NewSLRU(-1) },
		"tinylfu": func() { NewTinyLFU(-1, 0) },
		"arc":     func() { NewARC(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative capacity did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewByKind(t *testing.T) {
	for _, kind := range []Kind{KindLRU, KindLFU, KindSLRU, KindTinyLFU, KindARC, ""} {
		c, err := New(kind, 10)
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		if c.Cap() != 10 {
			t.Errorf("New(%q).Cap() = %d", kind, c.Cap())
		}
	}
	if _, err := New(KindPerfect, 10); err == nil {
		t.Error("New(perfect) should error (needs popularity set)")
	}
	if _, err := New("bogus", 10); err == nil {
		t.Error("New(bogus) should error")
	}
}

// hitRatioUnder runs queries queries from dist through c with
// always-put-on-miss and returns the hit ratio.
func hitRatioUnder(c Cache, dist workload.Distribution, queries int, seed uint64) float64 {
	g := workload.NewGenerator(dist, seed)
	for i := 0; i < queries; i++ {
		k := uint64(g.Next())
		if _, ok := c.Get(k); !ok {
			c.Put(k, nil)
		}
	}
	return c.Stats().HitRatio()
}

func TestPoliciesApproachPerfectUnderStaticSkew(t *testing.T) {
	// Under a static Zipf workload every reasonable policy should achieve
	// a hit ratio within striking distance of the perfect cache.
	const m, capacity, queries = 2000, 200, 200000
	dist := workload.NewZipf(m, 1.01)

	perfectKeys := make(map[uint64]bool, capacity)
	for k := range workload.TopC(dist, capacity) {
		perfectKeys[uint64(k)] = true
	}
	perfect := NewPerfect(perfectKeys)
	perfectRatio := hitRatioUnder(perfect, dist, queries, 9)

	for name, c := range map[string]Cache{
		"lru":     NewLRU(capacity),
		"lfu":     NewLFU(capacity),
		"slru":    NewSLRU(capacity),
		"tinylfu": NewTinyLFU(capacity, 0),
		"arc":     NewARC(capacity),
	} {
		ratio := hitRatioUnder(c, dist, queries, 9)
		if ratio < perfectRatio-0.15 {
			t.Errorf("%s: hit ratio %.3f, perfect %.3f — more than 0.15 below",
				name, ratio, perfectRatio)
		}
		if ratio > perfectRatio+0.01 {
			t.Errorf("%s: hit ratio %.3f exceeds perfect %.3f", name, ratio, perfectRatio)
		}
	}
}

func TestRemoveAcrossPolicies(t *testing.T) {
	for name, c := range allCaches(8) {
		c.Put(3, []byte("v"))
		removed := c.Remove(3)
		if !removed {
			t.Errorf("%s: Remove of present key returned false", name)
		}
		if c.Remove(3) {
			t.Errorf("%s: double Remove returned true", name)
		}
		// After removal, a Get must not return the stale value.
		if v, ok := c.Get(3); ok && string(v) == "v" {
			t.Errorf("%s: stale value served after Remove", name)
		}
	}
}

func TestRemoveAbsentKey(t *testing.T) {
	for name, c := range allCaches(4) {
		if c.Remove(12345) {
			t.Errorf("%s: Remove of never-seen key returned true", name)
		}
	}
}
