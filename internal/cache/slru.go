package cache

// SLRU is a segmented LRU: a probationary segment absorbs new keys and a
// protected segment holds keys that have been hit at least once while
// probationary. Scans (long runs of one-touch keys) can only churn the
// probation segment, so frequently reused keys survive — a cheap step from
// plain LRU toward the perfect cache.
//
// The protected segment gets 80% of the capacity (the ratio used by
// Caffeine and the 2Q literature); probation gets the rest, with a minimum
// of one slot each when capacity >= 2.
type SLRU struct {
	probation *LRU
	protected *LRU
	capacity  int
	stats     Stats
}

var _ Cache = (*SLRU)(nil)

// NewSLRU returns a segmented LRU with the given total capacity.
func NewSLRU(capacity int) *SLRU {
	validateCapacity(capacity)
	protCap := capacity * 8 / 10
	if capacity >= 2 && protCap == 0 {
		protCap = 1
	}
	if capacity >= 2 && protCap == capacity {
		protCap = capacity - 1
	}
	return &SLRU{
		probation: NewLRU(capacity - protCap),
		protected: NewLRU(protCap),
		capacity:  capacity,
	}
}

// Get returns the cached value. A probationary hit promotes the key to the
// protected segment (possibly demoting the protected LRU victim back to
// probation).
func (c *SLRU) Get(key uint64) ([]byte, bool) {
	if v, ok := c.protected.Get(key); ok {
		c.stats.Hits++
		return v, true
	}
	if v, ok := peekRemove(c.probation, key); ok {
		c.stats.Hits++
		c.promote(key, v)
		return v, true
	}
	c.stats.Misses++
	return nil, false
}

// peekRemove removes key from l and returns its value, without touching
// l's own statistics (the segment caches are internal).
func peekRemove(l *LRU, key uint64) ([]byte, bool) {
	e, ok := l.items[key]
	if !ok {
		return nil, false
	}
	v := e.Value.(*lruEntry).value
	l.order.Remove(e)
	delete(l.items, key)
	return v, true
}

// promote moves a key into the protected segment, demoting its victim to
// probation if needed.
func (c *SLRU) promote(key uint64, value []byte) {
	if c.protected.Cap() == 0 {
		c.probation.Put(key, value)
		return
	}
	if c.protected.Len() >= c.protected.Cap() {
		if vk, ok := c.protected.Victim(); ok {
			vv, _ := peekRemove(c.protected, vk)
			c.probation.Put(vk, vv)
		}
	}
	c.protected.Put(key, value)
}

// Put inserts a new key into probation (or refreshes an existing key in
// place). Always admits unless capacity is zero.
func (c *SLRU) Put(key uint64, value []byte) bool {
	if c.capacity == 0 {
		return false
	}
	if c.protected.Contains(key) {
		c.protected.Put(key, value)
		return true
	}
	return c.probation.Put(key, value)
}

// Contains reports presence in either segment, without state updates.
func (c *SLRU) Contains(key uint64) bool {
	return c.protected.Contains(key) || c.probation.Contains(key)
}

// Remove deletes key from whichever segment holds it.
func (c *SLRU) Remove(key uint64) bool {
	return c.protected.Remove(key) || c.probation.Remove(key)
}

// Victim returns the next eviction candidate: the probation victim if the
// probation segment is non-empty, else the protected victim.
func (c *SLRU) Victim() (uint64, bool) {
	if k, ok := c.probation.Victim(); ok {
		return k, true
	}
	return c.protected.Victim()
}

// Len returns the number of cached keys across both segments.
func (c *SLRU) Len() int { return c.probation.Len() + c.protected.Len() }

// Cap returns the total capacity.
func (c *SLRU) Cap() int { return c.capacity }

// Stats returns cumulative counters.
func (c *SLRU) Stats() Stats { return c.stats }
