package cache

import (
	"testing"
)

func TestPerfectMembershipFixed(t *testing.T) {
	p := NewPerfectFromSlice([]uint64{1, 2, 3})
	if p.Len() != 3 || p.Cap() != 3 {
		t.Errorf("Len/Cap = %d/%d, want 3/3", p.Len(), p.Cap())
	}
	if _, ok := p.Get(1); !ok {
		t.Error("member key missed")
	}
	if _, ok := p.Get(4); ok {
		t.Error("non-member key hit")
	}
	// Put of a non-member must not grow the set.
	if p.Put(4, []byte("x")) {
		t.Error("non-member admitted")
	}
	if p.Contains(4) {
		t.Error("non-member contained after Put")
	}
}

func TestPerfectIgnoresFalseEntries(t *testing.T) {
	p := NewPerfect(map[uint64]bool{1: true, 2: false})
	if p.Contains(2) {
		t.Error("false map entry treated as member")
	}
	if p.Len() != 1 {
		t.Errorf("Len = %d, want 1", p.Len())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(3)
	c.Put(1, nil)
	c.Put(2, nil)
	c.Put(3, nil)
	c.Get(1)      // 1 becomes most recent; order (new->old): 1,3,2
	c.Put(4, nil) // evicts 2
	if c.Contains(2) {
		t.Error("LRU evicted the wrong key (2 should be gone)")
	}
	for _, k := range []uint64{1, 3, 4} {
		if !c.Contains(k) {
			t.Errorf("key %d missing", k)
		}
	}
}

func TestLRUVictim(t *testing.T) {
	c := NewLRU(2)
	if _, ok := c.Victim(); ok {
		t.Error("empty cache has a victim")
	}
	c.Put(1, nil)
	c.Put(2, nil)
	if v, ok := c.Victim(); !ok || v != 1 {
		t.Errorf("Victim = %d,%v, want 1,true", v, ok)
	}
	c.Get(1) // now 2 is oldest
	if v, _ := c.Victim(); v != 2 {
		t.Errorf("Victim after Get(1) = %d, want 2", v)
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU(2)
	c.Put(1, nil)
	if !c.Remove(1) {
		t.Error("Remove of present key returned false")
	}
	if c.Remove(1) {
		t.Error("Remove of absent key returned true")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after removal", c.Len())
	}
}

func TestLRUUpdateValueInPlace(t *testing.T) {
	c := NewLRU(2)
	c.Put(1, []byte("a"))
	c.Put(1, []byte("b"))
	if c.Len() != 1 {
		t.Errorf("duplicate Put grew cache to %d", c.Len())
	}
	v, _ := c.Get(1)
	if string(v) != "b" {
		t.Errorf("value = %q, want b", v)
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewLFU(3)
	c.Put(1, nil)
	c.Put(2, nil)
	c.Put(3, nil)
	// Bump 1 and 2 well above 3.
	for i := 0; i < 5; i++ {
		c.Get(1)
		c.Get(2)
	}
	c.Put(4, nil) // must evict 3 (count 1)
	if c.Contains(3) {
		t.Error("LFU kept the least-frequent key")
	}
	if !c.Contains(1) || !c.Contains(2) || !c.Contains(4) {
		t.Error("LFU evicted a frequent key")
	}
}

func TestLFUCountTracking(t *testing.T) {
	c := NewLFU(4)
	c.Put(7, nil)
	if got := c.Count(7); got != 1 {
		t.Errorf("Count after Put = %d, want 1", got)
	}
	c.Get(7)
	c.Get(7)
	if got := c.Count(7); got != 3 {
		t.Errorf("Count after 2 Gets = %d, want 3", got)
	}
	if got := c.Count(99); got != 0 {
		t.Errorf("Count of absent key = %d, want 0", got)
	}
}

func TestLFUTieBreaksByRecency(t *testing.T) {
	c := NewLFU(2)
	c.Put(1, nil) // count 1
	c.Put(2, nil) // count 1, more recent
	c.Put(3, nil) // evicts the stalest count-1 entry: 1
	if c.Contains(1) {
		t.Error("LFU tie-break evicted the newer key")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("LFU lost a key it should have kept")
	}
}

func TestSLRUPromotion(t *testing.T) {
	c := NewSLRU(10) // probation 2, protected 8
	c.Put(1, nil)    // probation
	if c.protected.Contains(1) {
		t.Error("new key went straight to protected")
	}
	c.Get(1) // promote
	if !c.protected.Contains(1) {
		t.Error("hit key was not promoted to protected")
	}
	if c.probation.Contains(1) {
		t.Error("promoted key still in probation")
	}
}

func TestSLRUScanResistance(t *testing.T) {
	// Promote a working set, then scan many one-touch keys: the working
	// set must survive.
	c := NewSLRU(10)
	for k := uint64(0); k < 5; k++ {
		c.Put(k, nil)
		c.Get(k) // promote
	}
	for k := uint64(100); k < 1000; k++ {
		c.Put(k, nil) // scan through probation
	}
	for k := uint64(0); k < 5; k++ {
		if !c.Contains(k) {
			t.Errorf("scan evicted protected key %d", k)
		}
	}
}

func TestSLRUCapacitySplit(t *testing.T) {
	c := NewSLRU(10)
	if c.probation.Cap()+c.protected.Cap() != 10 {
		t.Errorf("segments %d+%d != 10", c.probation.Cap(), c.protected.Cap())
	}
	// Tiny capacities still give both segments at least one slot.
	c2 := NewSLRU(2)
	if c2.probation.Cap() < 1 || c2.protected.Cap() < 1 {
		t.Errorf("capacity-2 split %d/%d lacks a slot", c2.probation.Cap(), c2.protected.Cap())
	}
	c1 := NewSLRU(1)
	if c1.Cap() != 1 {
		t.Errorf("capacity-1 Cap = %d", c1.Cap())
	}
	c1.Put(5, nil)
	if c1.Len() != 1 {
		t.Errorf("capacity-1 cache did not store a key (len %d)", c1.Len())
	}
}

func TestSLRUVictimPrefersProbation(t *testing.T) {
	c := NewSLRU(10)
	c.Put(1, nil)
	c.Get(1)      // 1 protected
	c.Put(2, nil) // 2 probation
	if v, ok := c.Victim(); !ok || v != 2 {
		t.Errorf("Victim = %d,%v, want 2,true", v, ok)
	}
}

func TestTinyLFUAdmissionFiltersColdKeys(t *testing.T) {
	c := NewTinyLFU(4, 1<<30) // no halving during the test
	// Warm up: insert each key and hit it immediately so it is promoted
	// past the one-slot probation segment, then keep all four hot.
	for k := uint64(1); k <= 4; k++ {
		c.Put(k, nil)
		c.Get(k)
	}
	for i := 0; i < 50; i++ {
		for k := uint64(1); k <= 4; k++ {
			if _, ok := c.Get(k); !ok {
				t.Fatalf("warm key %d fell out during warm-up", k)
			}
		}
	}
	// A cold key seen once must be rejected.
	c.Get(99)
	if c.Put(99, nil) {
		t.Error("cold key admitted over warm incumbents")
	}
	for k := uint64(1); k <= 4; k++ {
		if !c.Contains(k) {
			t.Errorf("warm key %d evicted by cold candidate", k)
		}
	}
}

func TestTinyLFUAdmitsHotCandidate(t *testing.T) {
	c := NewTinyLFU(2, 1<<30)
	c.Put(1, nil)
	c.Put(2, nil)
	// Make key 3 hotter than the victim by repeated observation.
	for i := 0; i < 10; i++ {
		c.Get(3) // misses, but feeds the sketch
	}
	if !c.Put(3, nil) {
		t.Error("hot candidate rejected")
	}
	if !c.Contains(3) {
		t.Error("hot candidate not cached after admission")
	}
}

func TestTinyLFUWindowHalving(t *testing.T) {
	// With a tiny window the sketch halves often; this just exercises the
	// path and confirms no state corruption.
	c := NewTinyLFU(8, 4)
	for i := 0; i < 1000; i++ {
		k := uint64(i % 16)
		if _, ok := c.Get(k); !ok {
			c.Put(k, nil)
		}
		if c.Len() > c.Cap() {
			t.Fatal("capacity exceeded during halving churn")
		}
	}
}

func BenchmarkLRUGetHit(b *testing.B) {
	c := NewLRU(1024)
	for k := uint64(0); k < 1024; k++ {
		c.Put(k, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(uint64(i) % 1024)
	}
}

func BenchmarkLFUGetHit(b *testing.B) {
	c := NewLFU(1024)
	for k := uint64(0); k < 1024; k++ {
		c.Put(k, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(uint64(i) % 1024)
	}
}

func BenchmarkTinyLFUMixed(b *testing.B) {
	c := NewTinyLFU(1024, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) % 4096
		if _, ok := c.Get(k); !ok {
			c.Put(k, nil)
		}
	}
}
