package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedBasics(t *testing.T) {
	s, err := NewSharded(KindLRU, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", s.Shards())
	}
	if s.Cap() < 64 {
		t.Fatalf("Cap() = %d, want >= 64 (ceil split must not shrink the budget)", s.Cap())
	}
	for k := uint64(0); k < 32; k++ {
		if !s.Put(k, []byte{byte(k)}) {
			t.Fatalf("Put(%d) declined", k)
		}
	}
	if s.Len() != 32 {
		t.Fatalf("Len() = %d, want 32", s.Len())
	}
	for k := uint64(0); k < 32; k++ {
		v, ok := s.Get(k)
		if !ok || len(v) != 1 || v[0] != byte(k) {
			t.Fatalf("Get(%d) = %v, %v", k, v, ok)
		}
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false", k)
		}
	}
	if _, ok := s.Get(99); ok {
		t.Fatal("Get(99) hit on a missing key")
	}
	st := s.Stats()
	if st.Hits != 32 || st.Misses != 1 {
		t.Fatalf("Stats() = %+v, want 32 hits / 1 miss", st)
	}
	if !s.Remove(0) || s.Remove(0) {
		t.Fatal("Remove(0) should succeed once")
	}
}

func TestShardedPutIfPresent(t *testing.T) {
	s, err := NewSharded(KindLRU, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.PutIfPresent(7, []byte("x")) {
		t.Fatal("PutIfPresent admitted an absent key")
	}
	if s.Contains(7) {
		t.Fatal("PutIfPresent left a trace of the absent key")
	}
	s.Put(7, []byte("old"))
	if !s.PutIfPresent(7, []byte("new")) {
		t.Fatal("PutIfPresent declined a present key")
	}
	if v, _ := s.Get(7); string(v) != "new" {
		t.Fatalf("Get(7) = %q, want %q", v, "new")
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(KindLRU, 16, 3); err == nil {
		t.Fatal("want error for non-power-of-two shard count")
	}
	if _, err := NewSharded(KindPerfect, 16, 4); err == nil {
		t.Fatal("want error for perfect cache (needs the popularity set)")
	}
	s, err := NewSharded(KindLFU, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() < 1 || s.Shards()&(s.Shards()-1) != 0 {
		t.Fatalf("default shard count %d not a power of two", s.Shards())
	}
}

// TestShardedConcurrent hammers one Sharded cache from many goroutines
// doing Get/Put/Remove/PutIfPresent across the whole key range. Run
// under -race this is the wrapper's safety proof; the final check
// verifies per-shard stats still add up to the operations performed.
func TestShardedConcurrent(t *testing.T) {
	for _, kind := range []Kind{KindLRU, KindLFU, KindTinyLFU, KindARC} {
		t.Run(string(kind), func(t *testing.T) {
			s, err := NewSharded(kind, 256, 8)
			if err != nil {
				t.Fatal(err)
			}
			const (
				workers = 8
				opsEach = 2000
				keys    = 512
			)
			var wg sync.WaitGroup
			gets := make([]uint64, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rnd := uint64(w)*0x9e3779b9 + 1
					for i := 0; i < opsEach; i++ {
						rnd = rnd*6364136223846793005 + 1442695040888963407
						k := rnd % keys
						switch i % 8 {
						case 0:
							s.Put(k, []byte{byte(k)})
						case 1:
							s.PutIfPresent(k, []byte{byte(k)})
						case 2:
							s.Remove(k)
						case 3:
							s.Contains(k)
						default:
							if v, ok := s.Get(k); ok {
								if len(v) != 1 || v[0] != byte(k) {
									t.Errorf("Get(%d) returned another key's value %v", k, v)
									return
								}
							}
							gets[w]++
						}
					}
				}(w)
			}
			wg.Wait()
			var wantLookups uint64
			for _, g := range gets {
				wantLookups += g
			}
			st := s.Stats()
			if st.Hits+st.Misses != wantLookups {
				t.Fatalf("stats lost updates: hits+misses = %d, want %d", st.Hits+st.Misses, wantLookups)
			}
			if s.Len() > s.Cap() {
				t.Fatalf("Len %d exceeds Cap %d", s.Len(), s.Cap())
			}
		})
	}
}

// TestShardedStatsAddUp drives a deterministic single-threaded workload
// and checks the summed stats match an unsharded cache of the same
// policy fed the same operations (same hashed keyspace, so per-key
// placement differs, but the hit accounting must be consistent).
func TestShardedStatsAddUp(t *testing.T) {
	s, err := NewSharded(KindLRU, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 500; k++ {
		s.Put(k, nil)
	}
	hits, misses := 0, 0
	for k := uint64(0); k < 1000; k++ {
		if _, ok := s.Get(k); ok {
			hits++
		} else {
			misses++
		}
	}
	// Capacity exceeds the working set, so presence is exact.
	if hits != 500 || misses != 500 {
		t.Fatalf("observed %d hits / %d misses, want 500/500", hits, misses)
	}
	st := s.Stats()
	if st.Hits != uint64(hits) || st.Misses != uint64(misses) {
		t.Fatalf("Stats() = %+v, want {%d %d}", st, hits, misses)
	}
}

func BenchmarkShardedGet(b *testing.B) {
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := NewSharded(KindLFU, 4096, shards)
			if err != nil {
				b.Fatal(err)
			}
			for k := uint64(0); k < 2048; k++ {
				s.Put(k, []byte("value"))
			}
			b.SetParallelism(16)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				k := uint64(0)
				for pb.Next() {
					s.Get(k % 2048)
					k++
				}
			})
		})
	}
}
