package cache

import (
	"securecache/internal/sketch"
)

// TinyLFU wraps an SLRU main cache with a frequency-based admission filter
// (Einziger, Friedman & Manes, 2017): a count-min sketch estimates each
// key's recent popularity, and a candidate is admitted on miss only if it
// is estimated more popular than the main cache's eviction victim. A
// periodic halving ("reset") keeps the sketch adaptive.
//
// Under a static adversarial distribution TinyLFU converges to caching the
// plateau keys — the closest a practical policy gets to the paper's
// perfect-cache assumption, which is why it anchors the cache-policy
// ablation.
type TinyLFU struct {
	main       *SLRU
	sketch     *sketch.CountMin
	window     uint64 // halve the sketch every window admissions-samples
	sinceReset uint64
	stats      Stats
}

var _ Cache = (*TinyLFU)(nil)

// NewTinyLFU returns a TinyLFU cache with the given capacity. window is
// the sample count between sketch halvings; 0 selects 10× capacity, the
// ratio from the TinyLFU paper.
func NewTinyLFU(capacity int, window uint64) *TinyLFU {
	validateCapacity(capacity)
	if window == 0 {
		window = uint64(capacity) * 10
		if window == 0 {
			window = 1
		}
	}
	// Sketch width ~4× capacity keeps the estimate error below the
	// popularity differences that matter for admission.
	width := 4 * capacity
	if width < 64 {
		width = 64
	}
	return &TinyLFU{
		main:   NewSLRU(capacity),
		sketch: sketch.NewCountMin(width, 4, 0x71f9),
		window: window,
	}
}

// Get returns the cached value, recording the access in the frequency
// sketch either way.
func (c *TinyLFU) Get(key uint64) ([]byte, bool) {
	c.observe(key)
	v, ok := c.main.Get(key)
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return v, ok
}

func (c *TinyLFU) observe(key uint64) {
	c.sketch.AddUint(key, 1)
	c.sinceReset++
	if c.sinceReset >= c.window {
		c.sketch.Halve()
		c.sinceReset = 0
	}
}

// Put admits key only if the main cache has room or the key is estimated
// at least as popular as the eviction victim. It reports whether the key
// is cached afterwards.
func (c *TinyLFU) Put(key uint64, value []byte) bool {
	if c.main.Cap() == 0 {
		return false
	}
	if c.main.Contains(key) || c.main.Len() < c.main.Cap() {
		return c.main.Put(key, value)
	}
	victim, ok := c.main.Victim()
	if !ok {
		return c.main.Put(key, value)
	}
	if c.sketch.EstimateUint(key) < c.sketch.EstimateUint(victim) {
		return false // candidate loses; keep the incumbent
	}
	return c.main.Put(key, value)
}

// Contains reports presence without state updates.
func (c *TinyLFU) Contains(key uint64) bool { return c.main.Contains(key) }

// Remove deletes key from the main cache (the sketch intentionally keeps
// its counts: popularity history survives invalidation).
func (c *TinyLFU) Remove(key uint64) bool { return c.main.Remove(key) }

// Len returns the number of cached keys.
func (c *TinyLFU) Len() int { return c.main.Len() }

// Cap returns the capacity.
func (c *TinyLFU) Cap() int { return c.main.Cap() }

// Stats returns cumulative counters (of the TinyLFU wrapper, not the
// internal SLRU).
func (c *TinyLFU) Stats() Stats { return c.stats }
