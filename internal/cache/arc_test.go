package cache

import (
	"testing"

	"securecache/internal/workload"
	"securecache/internal/xrand"
)

func TestARCBasics(t *testing.T) {
	c := NewARC(4)
	if c.Cap() != 4 || c.Len() != 0 {
		t.Fatal("fresh ARC shape wrong")
	}
	c.Put(1, []byte("a"))
	v, ok := c.Get(1)
	if !ok || string(v) != "a" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	c.Put(1, []byte("b"))
	if v, _ := c.Get(1); string(v) != "b" {
		t.Error("update lost")
	}
	if !c.Contains(1) || c.Contains(9) {
		t.Error("Contains wrong")
	}
}

func TestARCCapacityBound(t *testing.T) {
	rng := xrand.New(1)
	c := NewARC(16)
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(200))
		if _, ok := c.Get(k); !ok {
			c.Put(k, nil)
		}
		if c.Len() > c.Cap() {
			t.Fatalf("resident %d > cap %d at step %d", c.Len(), c.Cap(), i)
		}
		if c.t1.Len()+c.t2.Len()+c.b1.Len()+c.b2.Len() > 2*c.Cap()+1 {
			t.Fatalf("total directory %d > 2c", c.t1.Len()+c.t2.Len()+c.b1.Len()+c.b2.Len())
		}
	}
}

func TestARCPromotionToT2(t *testing.T) {
	c := NewARC(4)
	c.Put(1, nil)
	if c.items[1].where != arcT1 {
		t.Fatal("new key not in T1")
	}
	c.Get(1)
	if c.items[1].where != arcT2 {
		t.Fatal("hit key not promoted to T2")
	}
}

func TestARCGhostHitAdaptsTarget(t *testing.T) {
	c := NewARC(4)
	// Seed T2 (ghosting from T1 only happens once T2 holds pages: with
	// T1 occupying the whole cache, canonical ARC drops T1's LRU without
	// a ghost). Then scan: T1 evictions now demote into B1.
	c.Put(0, nil)
	c.Put(1, nil)
	c.Get(0)
	c.Get(1)
	for k := uint64(10); k < 18; k++ {
		c.Put(k, nil)
	}
	// Some scanned key should now be a B1 ghost.
	var ghost uint64
	found := false
	for k := uint64(10); k < 18; k++ {
		if e, ok := c.items[k]; ok && e.where == arcB1 {
			ghost, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no B1 ghost produced by scan overflow")
	}
	before := c.Target()
	c.Put(ghost, nil) // ghost hit: p must grow
	if c.Target() <= before {
		t.Errorf("B1 ghost hit did not grow target (was %d, now %d)", before, c.Target())
	}
	if !c.Contains(ghost) {
		t.Error("ghost-hit key not resident")
	}
}

func TestARCZeroCapacity(t *testing.T) {
	c := NewARC(0)
	if c.Put(1, nil) {
		t.Error("zero-capacity ARC admitted")
	}
	if _, ok := c.Get(1); ok {
		t.Error("zero-capacity ARC hit")
	}
}

func TestARCRemove(t *testing.T) {
	c := NewARC(4)
	c.Put(1, []byte("v"))
	if !c.Remove(1) {
		t.Error("Remove of resident returned false")
	}
	if c.Remove(1) {
		t.Error("double Remove returned true")
	}
	if _, ok := c.Get(1); ok {
		t.Error("removed key still hits")
	}
}

func TestARCStatsAndInterface(t *testing.T) {
	var c Cache = NewARC(8)
	c.Put(1, nil)
	c.Get(1)
	c.Get(2)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestARCScanResistanceBeatsLRU(t *testing.T) {
	// A working set with repeated hits plus a long one-touch scan: ARC
	// should retain more of the working set than plain LRU.
	const capacity = 32
	workingSet := 16
	runPolicy := func(c Cache) float64 {
		rng := xrand.New(7)
		hits, lookups := 0, 0
		for i := 0; i < 60000; i++ {
			var k uint64
			if i%2 == 0 { // alternate working-set hits and scan keys
				k = uint64(rng.Intn(workingSet))
			} else {
				k = uint64(1000 + i) // never repeats
			}
			lookups++
			if _, ok := c.Get(k); ok {
				hits++
			} else {
				c.Put(k, nil)
			}
		}
		return float64(hits) / float64(lookups)
	}
	arcRatio := runPolicy(NewARC(capacity))
	lruRatio := runPolicy(NewLRU(capacity))
	if arcRatio <= lruRatio {
		t.Errorf("ARC hit ratio %.3f not above LRU %.3f under scan+working-set", arcRatio, lruRatio)
	}
}

func TestARCApproachesPerfectUnderZipf(t *testing.T) {
	const m, capacity, queries = 2000, 200, 200000
	dist := workload.NewZipf(m, 1.01)
	perfectKeys := make(map[uint64]bool, capacity)
	for k := range workload.TopC(dist, capacity) {
		perfectKeys[uint64(k)] = true
	}
	perfect := hitRatioUnder(NewPerfect(perfectKeys), dist, queries, 9)
	arc := hitRatioUnder(NewARC(capacity), dist, queries, 9)
	if arc < perfect-0.15 {
		t.Errorf("ARC hit ratio %.3f more than 0.15 below perfect %.3f", arc, perfect)
	}
}
