package cache

import "container/list"

// ARC is the Adaptive Replacement Cache (Megiddo & Modha, FAST'03): it
// balances recency and frequency online by keeping two resident lists —
// T1 (seen once recently) and T2 (seen at least twice) — plus two ghost
// lists of recently evicted keys (B1, B2). Hits in a ghost list signal
// that the adaptive target p should shift capacity toward the
// corresponding resident list.
//
// ARC matters for the cache-policy ablation because it self-tunes between
// the LRU-like behaviour (diffusing an equal-rate attack) and the
// LFU-like behaviour (pinning the popular set) without a workload-
// specific knob.
type ARC struct {
	capacity int
	p        int        // adaptive target size of t1
	t1, t2   *list.List // resident: recency / frequency
	b1, b2   *list.List // ghosts: evicted from t1 / t2
	items    map[uint64]*arcEntry
	stats    Stats
}

type arcList byte

const (
	arcT1 arcList = iota + 1
	arcT2
	arcB1
	arcB2
)

type arcEntry struct {
	key   uint64
	value []byte
	where arcList
	pos   *list.Element
}

var _ Cache = (*ARC)(nil)

// NewARC returns an ARC cache holding at most capacity resident keys
// (ghost lists track up to capacity additional evicted keys' metadata).
func NewARC(capacity int) *ARC {
	validateCapacity(capacity)
	return &ARC{
		capacity: capacity,
		t1:       list.New(),
		t2:       list.New(),
		b1:       list.New(),
		b2:       list.New(),
		items:    make(map[uint64]*arcEntry, 2*capacity),
	}
}

// Get returns the cached value; a resident hit promotes the key to the
// frequency list T2.
func (c *ARC) Get(key uint64) ([]byte, bool) {
	e, ok := c.items[key]
	if !ok || (e.where != arcT1 && e.where != arcT2) {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.moveTo(e, arcT2)
	return e.value, true
}

// Put inserts or updates key following the ARC replacement algorithm.
// It always admits (returns true) unless capacity is zero.
func (c *ARC) Put(key uint64, value []byte) bool {
	if c.capacity == 0 {
		return false
	}
	e, ok := c.items[key]
	switch {
	case ok && (e.where == arcT1 || e.where == arcT2):
		// Resident: update value, promote to T2.
		e.value = value
		c.moveTo(e, arcT2)
	case ok && e.where == arcB1:
		// Ghost hit in B1: recency list was too small; grow p.
		c.p = min(c.capacity, c.p+max(1, c.b2.Len()/max(1, c.b1.Len())))
		c.replace(false)
		e.value = value
		c.moveTo(e, arcT2)
	case ok && e.where == arcB2:
		// Ghost hit in B2: frequency list was too small; shrink p.
		c.p = max(0, c.p-max(1, c.b1.Len()/max(1, c.b2.Len())))
		c.replace(true)
		e.value = value
		c.moveTo(e, arcT2)
	default:
		// Brand new key.
		if c.t1.Len()+c.b1.Len() >= c.capacity {
			if c.t1.Len() < c.capacity {
				c.dropOldest(c.b1)
				c.replace(false)
			} else {
				c.dropOldest(c.t1)
			}
		} else if c.t1.Len()+c.t2.Len()+c.b1.Len()+c.b2.Len() >= c.capacity {
			if c.t1.Len()+c.t2.Len()+c.b1.Len()+c.b2.Len() >= 2*c.capacity {
				c.dropOldest(c.b2)
			}
			if c.t1.Len()+c.t2.Len() >= c.capacity {
				c.replace(false)
			}
		}
		e = &arcEntry{key: key, value: value}
		c.items[key] = e
		e.where = arcT1
		e.pos = c.t1.PushFront(e)
	}
	return true
}

// replace evicts from T1 or T2 into the corresponding ghost list,
// following the adaptive target p. b2Hit biases toward evicting from T1.
func (c *ARC) replace(b2Hit bool) {
	if c.t1.Len() > 0 && (c.t1.Len() > c.p || (b2Hit && c.t1.Len() == c.p)) {
		c.demote(c.t1, arcB1)
	} else if c.t2.Len() > 0 {
		c.demote(c.t2, arcB2)
	} else if c.t1.Len() > 0 {
		c.demote(c.t1, arcB1)
	}
}

// demote moves the LRU entry of src into ghost list dst (value dropped).
func (c *ARC) demote(src *list.List, dst arcList) {
	back := src.Back()
	if back == nil {
		return
	}
	e := back.Value.(*arcEntry)
	src.Remove(back)
	e.value = nil
	e.where = dst
	e.pos = c.ghost(dst).PushFront(e)
}

// dropOldest fully forgets the LRU entry of l.
func (c *ARC) dropOldest(l *list.List) {
	back := l.Back()
	if back == nil {
		return
	}
	e := back.Value.(*arcEntry)
	l.Remove(back)
	delete(c.items, e.key)
}

func (c *ARC) ghost(w arcList) *list.List {
	if w == arcB1 {
		return c.b1
	}
	return c.b2
}

func (c *ARC) listOf(w arcList) *list.List {
	switch w {
	case arcT1:
		return c.t1
	case arcT2:
		return c.t2
	case arcB1:
		return c.b1
	default:
		return c.b2
	}
}

// moveTo relocates e to the front of the given resident list, ensuring
// capacity by replacing first when needed.
func (c *ARC) moveTo(e *arcEntry, dst arcList) {
	if e.where == dst && dst == arcT2 {
		c.t2.MoveToFront(e.pos)
		return
	}
	wasGhost := e.where == arcB1 || e.where == arcB2
	c.listOf(e.where).Remove(e.pos)
	if wasGhost && c.t1.Len()+c.t2.Len() >= c.capacity {
		c.replace(e.where == arcB2)
	}
	e.where = dst
	e.pos = c.listOf(dst).PushFront(e)
}

// Contains reports residency (ghost entries do not count) without state
// updates.
func (c *ARC) Contains(key uint64) bool {
	e, ok := c.items[key]
	return ok && (e.where == arcT1 || e.where == arcT2)
}

// Remove invalidates key entirely (resident or ghost).
func (c *ARC) Remove(key uint64) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	resident := e.where == arcT1 || e.where == arcT2
	c.listOf(e.where).Remove(e.pos)
	delete(c.items, key)
	return resident
}

// Len returns the number of resident keys.
func (c *ARC) Len() int { return c.t1.Len() + c.t2.Len() }

// Cap returns the resident capacity.
func (c *ARC) Cap() int { return c.capacity }

// Stats returns cumulative counters.
func (c *ARC) Stats() Stats { return c.stats }

// Target returns the adaptive T1-target p (exposed for tests).
func (c *ARC) Target() int { return c.p }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
