package cache

import "container/list"

// LFU is an O(1) least-frequently-used cache (Shah, Mitra & Matani's
// frequency-list construction): entries live in buckets of equal access
// count; eviction takes the least recently used entry of the lowest
// bucket. LFU approximates the perfect cache well under static
// popularity — which is exactly the adversarial setting — because the
// plateau keys accumulate the highest counts and stick.
type LFU struct {
	capacity int
	freqs    *list.List // of *lfuBucket, ascending count
	items    map[uint64]*lfuItem
	stats    Stats
}

type lfuBucket struct {
	count   uint64
	entries *list.List // of *lfuItem, front = most recent
}

type lfuItem struct {
	key    uint64
	value  []byte
	bucket *list.Element // the *lfuBucket this item is in
	pos    *list.Element // position within bucket.entries
}

var _ Cache = (*LFU)(nil)

// NewLFU returns an LFU cache holding at most capacity keys.
func NewLFU(capacity int) *LFU {
	validateCapacity(capacity)
	return &LFU{
		capacity: capacity,
		freqs:    list.New(),
		items:    make(map[uint64]*lfuItem, capacity),
	}
}

// Get returns the cached value, incrementing the key's frequency.
func (c *LFU) Get(key uint64) ([]byte, bool) {
	it, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.touch(it)
	return it.value, true
}

// touch moves it to the next-higher frequency bucket.
func (c *LFU) touch(it *lfuItem) {
	cur := it.bucket.Value.(*lfuBucket)
	nextCount := cur.count + 1
	next := it.bucket.Next()
	var dst *list.Element
	if next != nil && next.Value.(*lfuBucket).count == nextCount {
		dst = next
	} else {
		dst = c.freqs.InsertAfter(&lfuBucket{count: nextCount, entries: list.New()}, it.bucket)
	}
	cur.entries.Remove(it.pos)
	if cur.entries.Len() == 0 {
		c.freqs.Remove(it.bucket)
	}
	it.bucket = dst
	it.pos = dst.Value.(*lfuBucket).entries.PushFront(it)
}

// Put inserts or updates key with frequency 1 (new) or bumped (existing),
// evicting the least frequent entry if full. Always admits unless
// capacity is zero.
func (c *LFU) Put(key uint64, value []byte) bool {
	if c.capacity == 0 {
		return false
	}
	if it, ok := c.items[key]; ok {
		it.value = value
		c.touch(it)
		return true
	}
	if len(c.items) >= c.capacity {
		c.evict()
	}
	// New entries enter a count-1 bucket at the front of the list.
	front := c.freqs.Front()
	var dst *list.Element
	if front != nil && front.Value.(*lfuBucket).count == 1 {
		dst = front
	} else {
		dst = c.freqs.PushFront(&lfuBucket{count: 1, entries: list.New()})
	}
	it := &lfuItem{key: key, value: value, bucket: dst}
	it.pos = dst.Value.(*lfuBucket).entries.PushFront(it)
	c.items[key] = it
	return true
}

// evict removes the LRU entry of the lowest-frequency bucket.
func (c *LFU) evict() {
	front := c.freqs.Front()
	if front == nil {
		return
	}
	bucket := front.Value.(*lfuBucket)
	victim := bucket.entries.Back()
	if victim == nil {
		c.freqs.Remove(front)
		return
	}
	it := victim.Value.(*lfuItem)
	bucket.entries.Remove(victim)
	if bucket.entries.Len() == 0 {
		c.freqs.Remove(front)
	}
	delete(c.items, it.key)
}

// Contains reports presence without updating frequency or statistics.
func (c *LFU) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

// Remove deletes key if present, reporting whether it was.
func (c *LFU) Remove(key uint64) bool {
	it, ok := c.items[key]
	if !ok {
		return false
	}
	bucket := it.bucket.Value.(*lfuBucket)
	bucket.entries.Remove(it.pos)
	if bucket.entries.Len() == 0 {
		c.freqs.Remove(it.bucket)
	}
	delete(c.items, key)
	return true
}

// Count returns the access count of key (0 if absent). Exposed for tests
// and for the cache-policy ablation's introspection.
func (c *LFU) Count(key uint64) uint64 {
	it, ok := c.items[key]
	if !ok {
		return 0
	}
	return it.bucket.Value.(*lfuBucket).count
}

// Len returns the number of cached keys.
func (c *LFU) Len() int { return len(c.items) }

// Cap returns the capacity.
func (c *LFU) Cap() int { return c.capacity }

// Stats returns cumulative counters.
func (c *LFU) Stats() Stats { return c.stats }
