package cache

// LFU is an O(1) least-frequently-used cache (Shah, Mitra & Matani's
// frequency-list construction): entries live in buckets of equal access
// count; eviction takes the least recently used entry of the lowest
// bucket. LFU approximates the perfect cache well under static
// popularity — which is exactly the adversarial setting — because the
// plateau keys accumulate the highest counts and stick.
//
// Both lists (buckets by count, entries within a bucket) are intrusive:
// a Get on a cached key moves pointers but allocates nothing. This is a
// hot-path property, not a nicety — the frontend touches this structure
// once per cached GET, and with the pipelined transport pushing
// hundreds of thousands of GETs per second, per-touch garbage was the
// single largest allocation source in the whole serving path.
type LFU struct {
	capacity int
	// Frequency buckets in ascending count order; head is the eviction
	// end. spare holds the most recently emptied bucket so the steady
	// state (keys marching up the count ladder together) recycles one
	// bucket instead of allocating one per promotion.
	head, tail *lfuBucket
	spare      *lfuBucket
	items      map[uint64]*lfuItem
	stats      Stats
}

type lfuBucket struct {
	count      uint64
	prev, next *lfuBucket
	// Entries with this count; front = most recently touched, back =
	// the LRU tie-break victim.
	front, back *lfuItem
	n           int
}

type lfuItem struct {
	key        uint64
	value      []byte
	bucket     *lfuBucket
	prev, next *lfuItem
}

var _ Cache = (*LFU)(nil)

// NewLFU returns an LFU cache holding at most capacity keys.
func NewLFU(capacity int) *LFU {
	validateCapacity(capacity)
	return &LFU{
		capacity: capacity,
		items:    make(map[uint64]*lfuItem, capacity),
	}
}

// pushFront links it as b's most recent entry.
func (b *lfuBucket) pushFront(it *lfuItem) {
	it.bucket = b
	it.prev = nil
	it.next = b.front
	if b.front != nil {
		b.front.prev = it
	} else {
		b.back = it
	}
	b.front = it
	b.n++
}

// removeItem unlinks it from b.
func (b *lfuBucket) removeItem(it *lfuItem) {
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		b.front = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		b.back = it.prev
	}
	it.prev, it.next = nil, nil
	b.n--
}

// newBucket returns an empty bucket with the given count, recycling the
// spare if one is parked.
func (c *LFU) newBucket(count uint64) *lfuBucket {
	if b := c.spare; b != nil {
		c.spare = nil
		b.count = count
		return b
	}
	return &lfuBucket{count: count}
}

// insertAfter links b into the frequency list after prev (prev == nil
// means at the head).
func (c *LFU) insertAfter(b, prev *lfuBucket) {
	b.prev = prev
	if prev != nil {
		b.next = prev.next
		prev.next = b
	} else {
		b.next = c.head
		c.head = b
	}
	if b.next != nil {
		b.next.prev = b
	} else {
		c.tail = b
	}
}

// removeBucket unlinks an emptied b and parks it as the spare.
func (c *LFU) removeBucket(b *lfuBucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		c.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		c.tail = b.prev
	}
	b.prev, b.next = nil, nil
	c.spare = b
}

// Get returns the cached value, incrementing the key's frequency.
func (c *LFU) Get(key uint64) ([]byte, bool) {
	it, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.stats.Hits++
	c.touch(it)
	return it.value, true
}

// touch moves it to the next-higher frequency bucket. Allocation-free:
// a sole occupant whose bucket has no count+1 neighbor is promoted by
// bumping the bucket's count in place, and a bucket emptied by the move
// is recycled through the spare slot.
func (c *LFU) touch(it *lfuItem) {
	cur := it.bucket
	next := cur.next
	nextCount := cur.count + 1
	if cur.n == 1 && (next == nil || next.count != nextCount) {
		cur.count = nextCount
		return
	}
	var dst *lfuBucket
	if next != nil && next.count == nextCount {
		cur.removeItem(it)
		if cur.n == 0 {
			c.removeBucket(cur)
		}
		dst = next
	} else {
		// cur keeps other entries (the sole-occupant case returned
		// above), so the promotion needs a fresh bucket after cur.
		cur.removeItem(it)
		dst = c.newBucket(nextCount)
		c.insertAfter(dst, cur)
	}
	dst.pushFront(it)
}

// Put inserts or updates key with frequency 1 (new) or bumped (existing),
// evicting the least frequent entry if full. Always admits unless
// capacity is zero.
func (c *LFU) Put(key uint64, value []byte) bool {
	if c.capacity == 0 {
		return false
	}
	if it, ok := c.items[key]; ok {
		it.value = value
		c.touch(it)
		return true
	}
	if len(c.items) >= c.capacity {
		c.evict()
	}
	// New entries enter a count-1 bucket at the front of the list.
	dst := c.head
	if dst == nil || dst.count != 1 {
		dst = c.newBucket(1)
		c.insertAfter(dst, nil)
	}
	it := &lfuItem{key: key, value: value}
	dst.pushFront(it)
	c.items[key] = it
	return true
}

// evict removes the LRU entry of the lowest-frequency bucket.
func (c *LFU) evict() {
	front := c.head
	if front == nil {
		return
	}
	victim := front.back
	if victim == nil {
		c.removeBucket(front)
		return
	}
	front.removeItem(victim)
	if front.n == 0 {
		c.removeBucket(front)
	}
	delete(c.items, victim.key)
}

// Contains reports presence without updating frequency or statistics.
func (c *LFU) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

// Remove deletes key if present, reporting whether it was.
func (c *LFU) Remove(key uint64) bool {
	it, ok := c.items[key]
	if !ok {
		return false
	}
	b := it.bucket
	b.removeItem(it)
	if b.n == 0 {
		c.removeBucket(b)
	}
	delete(c.items, key)
	return true
}

// Count returns the access count of key (0 if absent). Exposed for tests
// and for the cache-policy ablation's introspection.
func (c *LFU) Count(key uint64) uint64 {
	it, ok := c.items[key]
	if !ok {
		return 0
	}
	return it.bucket.count
}

// Len returns the number of cached keys.
func (c *LFU) Len() int { return len(c.items) }

// Cap returns the capacity.
func (c *LFU) Cap() int { return c.capacity }

// Stats returns cumulative counters.
func (c *LFU) Stats() Stats { return c.stats }
