package core

import (
	"fmt"
	"math"
)

// This file implements the baseline the paper extends: Fan, Lim, Andersen
// & Kaminsky, "Small Cache, Big Effect: Provable Load Balancing for
// Randomly Partitioned Cluster Services" (SoCC'11) — reference [18] —
// where each key is served by exactly ONE node (no replication). The
// placement process is then single-choice balls-into-bins, whose heavily
// loaded deviation is Θ(sqrt(M ln n / N)) instead of the d-choice
// ln ln n / ln d, and the adversary's calculus changes qualitatively:
//
//   - The normalized load bound becomes
//     gain(x) <= (x−c)/(x−1) + n/(x−1) · sqrt(2 (x−c) ln n / n) + n·k1/(x−1)
//     which is NOT monotone in x: the adversary tunes a finite optimal
//     x*(c, n) (a continuous function of c and n, as the paper notes).
//   - In the regime that matters (c ≲ n·ln n, i.e. any O(n)-sized cache)
//     the optimal attack keeps gain > 1: with an O(n) cache the baseline
//     provides provable load *balancing* (gain bounded by a small
//     constant) but not the replication paper's hard "gain <= 1" DDoS
//     prevention. Driving the single-choice gain to ~1 requires
//     c = Ω(n·ln n) — exactly Fan et al.'s O(n log n) provisioning —
//     whereas replication achieves it with c* = O(n·ln ln n / ln d).
//
// SingleChoiceParams mirrors Params for the d = 1 baseline.
type SingleChoiceParams struct {
	// Nodes is n (>= 2).
	Nodes int
	// Items is m (>= 1).
	Items int
	// CacheSize is c (>= 0).
	CacheSize int
	// K1 is the Θ(1) additive constant of the single-choice bound
	// (analogous to k'); 0 selects a neutral default of 0.
	K1 float64
}

// Validate checks parameter sanity.
func (p SingleChoiceParams) Validate() error {
	if p.Nodes < 2 {
		return fmt.Errorf("core: single-choice Nodes = %d, need >= 2", p.Nodes)
	}
	if p.Items < 1 {
		return fmt.Errorf("core: single-choice Items = %d, need >= 1", p.Items)
	}
	if p.CacheSize < 0 {
		return fmt.Errorf("core: single-choice CacheSize = %d, need >= 0", p.CacheSize)
	}
	return nil
}

// BoundNormalizedMaxLoad returns the single-choice analogue of Eq. 10:
// the normalized max load of an adversary querying x keys,
//
//	gain(x) <= (x−c)/(x−1) + sqrt(2·n·(x−c)·ln n)/(x−1) + n·K1/(x−1).
//
// Derivation: x−c uncached balls into n bins, single choice, max count
// (x−c)/n + sqrt(2 (x−c) ln n / n) + K1, per-key rate R/(x−1), normalized
// by R/n. It panics if x <= c or x < 2.
func (p SingleChoiceParams) BoundNormalizedMaxLoad(x int) float64 {
	if x <= p.CacheSize {
		panic(fmt.Sprintf("core: single-choice bound with x=%d <= c=%d", x, p.CacheSize))
	}
	if x < 2 {
		panic(fmt.Sprintf("core: single-choice bound with x=%d < 2", x))
	}
	n := float64(p.Nodes)
	balls := float64(x - p.CacheSize)
	dev := math.Sqrt(2 * n * balls * math.Log(n))
	return (balls + dev + n*p.K1) / float64(x-1)
}

// BestAdversarialX numerically maximizes the bound over x in (c, m]. The
// gain function is unimodal (a decreasing term plus a term maximized at
// finite x), so a golden-section-style scan over the integer range is
// robust; the range is scanned geometrically then refined.
func (p SingleChoiceParams) BestAdversarialX() int {
	lo := p.CacheSize + 1
	if lo < 2 {
		lo = 2
	}
	if lo >= p.Items {
		return p.Items
	}
	bestX, bestGain := lo, p.BoundNormalizedMaxLoad(lo)
	// Geometric scan.
	for x := lo; x <= p.Items; x = x*11/10 + 1 {
		if g := p.BoundNormalizedMaxLoad(x); g > bestGain {
			bestX, bestGain = x, g
		}
	}
	if g := p.BoundNormalizedMaxLoad(p.Items); g > bestGain {
		bestX, bestGain = p.Items, g
	}
	// Local refinement around the geometric winner.
	span := bestX / 10
	if span < 10 {
		span = 10
	}
	loRef, hiRef := bestX-span, bestX+span
	if loRef < lo {
		loRef = lo
	}
	if hiRef > p.Items {
		hiRef = p.Items
	}
	step := (hiRef - loRef) / 200
	if step < 1 {
		step = 1
	}
	for x := loRef; x <= hiRef; x += step {
		if g := p.BoundNormalizedMaxLoad(x); g > bestGain {
			bestX, bestGain = x, g
		}
	}
	return bestX
}

// TheoreticalOptimalX returns the closed-form stationary point of the
// dominant term of the bound: maximizing sqrt(2n(x−c)ln n)/(x−1) over
// continuous x gives x* = 2c − 1 + 2(1 − c)... — in the regime c >> 1 it
// reduces to x* ≈ 2c. Exposed for tests and for comparing with the
// numeric optimum.
func (p SingleChoiceParams) TheoreticalOptimalX() float64 {
	// d/dx [ sqrt(x−c)/(x−1) ] = 0  =>  (x−1) = 2(x−c)  =>  x = 2c − 1.
	x := 2*float64(p.CacheSize) - 1
	if x < 2 {
		x = 2
	}
	if x > float64(p.Items) {
		x = float64(p.Items)
	}
	return x
}

// RequiredCacheForGain returns the smallest cache size whose worst-case
// bound stays at or below the target gain (> 1; the single-choice system
// cannot reach gain <= 1 for any finite cache — that is precisely the
// replication paper's improvement). It returns an error if even a cache
// of m entries cannot meet the target.
func (p SingleChoiceParams) RequiredCacheForGain(target float64) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if target <= 1 {
		return 0, fmt.Errorf("core: single-choice cannot guarantee gain <= %v (needs replication)", target)
	}
	worst := func(c int) float64 {
		q := p
		q.CacheSize = c
		x := q.BestAdversarialX()
		if x <= c {
			return 0
		}
		if x < 2 {
			x = 2
		}
		return q.BoundNormalizedMaxLoad(x)
	}
	if worst(p.Items) > target {
		return 0, fmt.Errorf("core: even caching all %d items leaves worst gain %v > %v",
			p.Items, worst(p.Items), target)
	}
	lo, hi := 0, p.Items
	for lo < hi {
		mid := lo + (hi-lo)/2
		if worst(mid) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
