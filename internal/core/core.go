// Package core implements the paper's analytical contribution: the
// throughput bound for randomly partitioned services with replication
// under the worst-case (adversarial) access pattern, and the cache
// provisioning rule that follows from it.
//
// Notation follows Table I of the paper:
//
//	n  number of back-end nodes
//	m  number of (key, value) items stored in the system
//	c  number of items cached at the front end
//	d  replication factor (replica-group size)
//	R  total client query rate
//	x  number of distinct keys the adversary queries
//
// The chain of results:
//
//  1. Theorem 1: the optimal adversarial distribution queries x keys — the
//     first x−1 (including all c cached keys) at equal probability h and
//     the last at the residual 1−(x−1)h. Any other distribution can be
//     improved by shifting mass between uncached keys (Theorem1Step).
//  2. Eq. 8: with keys assigned to nodes by the d-choice balls-into-bins
//     process, E[L_max] <= [ (x−c)/n + k ] · R/(x−1), where
//     k = ln ln n / ln d + k' (Berenbrink et al. gap plus a Θ(1) constant).
//  3. Eq. 10: normalizing by the even share R/n,
//     AttackGain <= 1 + (1 − c + n·k)/(x − 1).
//  4. Dichotomy: if c < n·k + 1 the bound exceeds 1 and is decreasing in
//     x, so the best attack queries x = c+1 and is always effective; if
//     c >= n·k + 1 the bound is below 1 and increasing in x, so the best
//     the adversary can do is query the whole key space — never effective.
//     RequiredCacheSize returns the threshold c* = ceil(n·k + 1).
package core

import (
	"fmt"
	"math"

	"securecache/internal/ballsbins"
)

// DefaultKPrime is the fitted Θ(1) constant k' such that k = gap + k'
// reproduces the paper's bound curves. The paper plots Eq. 10 with the
// overall constant k = 1.2 for n = 1000, d = 3 (where the pure gap term is
// ln ln 1000 / ln 3 ≈ 1.76); k' = k − gap ≈ −0.56 recovers that choice.
// Exposed so experiments can document the paper's exact setting.
const DefaultKPrime = -0.559

// Params bundles the system parameters of the analysis.
type Params struct {
	// Nodes is n, the number of back-end nodes (required, >= 2).
	Nodes int
	// Replication is d, the replica-group size (required, >= 2 for the
	// d-choice bound; d = 1 reduces to the Fan et al. single-copy case,
	// which this analysis does not cover).
	Replication int
	// Items is m, the number of keys stored (required, >= 1).
	Items int
	// CacheSize is c, the number of front-end cache entries (>= 0).
	CacheSize int
	// KPrime is the Θ(1) additive constant k' of k = gap + k'.
	// The zero value selects DefaultKPrime; to force exactly 0, use a
	// tiny non-zero value or set K directly via KOverride.
	KPrime float64
	// KOverride, if non-zero, bypasses gap+k' and uses this k directly
	// (the paper's figures fix k = 1.2).
	KOverride float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Nodes < 2 {
		return fmt.Errorf("core: Nodes = %d, need >= 2", p.Nodes)
	}
	if p.Replication < 2 {
		return fmt.Errorf("core: Replication = %d, the d-choice bound needs d >= 2", p.Replication)
	}
	if p.Replication > p.Nodes {
		return fmt.Errorf("core: Replication %d exceeds Nodes %d", p.Replication, p.Nodes)
	}
	if p.Items < 1 {
		return fmt.Errorf("core: Items = %d, need >= 1", p.Items)
	}
	if p.CacheSize < 0 {
		return fmt.Errorf("core: CacheSize = %d, need >= 0", p.CacheSize)
	}
	return nil
}

// K returns the constant k = ln ln n / ln d + k' of Eq. 8/10 (or the
// override).
func (p Params) K() float64 {
	if p.KOverride != 0 {
		return p.KOverride
	}
	kPrime := p.KPrime
	if kPrime == 0 {
		kPrime = DefaultKPrime
	}
	return ballsbins.GapTerm(p.Nodes, p.Replication) + kPrime
}

// Gap returns the pure balls-into-bins gap term ln ln n / ln d.
func (p Params) Gap() float64 { return ballsbins.GapTerm(p.Nodes, p.Replication) }

// BoundMaxLoad returns the Eq. 8 upper bound on E[L_max] for an adversary
// querying x keys at total rate R:
//
//	E[L_max] <= [ (x−c)/n + k ] · R/(x−1)
//
// It panics if x <= c (the cache absorbs everything; no load reaches the
// back end) or x < 2 (the per-key rate R/(x−1) is undefined).
func (p Params) BoundMaxLoad(x int, rate float64) float64 {
	if x <= p.CacheSize {
		panic(fmt.Sprintf("core: BoundMaxLoad with x=%d <= c=%d (attack fully cached)", x, p.CacheSize))
	}
	if x < 2 {
		panic(fmt.Sprintf("core: BoundMaxLoad with x=%d < 2", x))
	}
	perKey := rate / float64(x-1)
	return (float64(x-p.CacheSize)/float64(p.Nodes) + p.K()) * perKey
}

// BoundNormalizedMaxLoad returns the Eq. 10 upper bound on the normalized
// max load (the Attack Gain):
//
//	E[L_max] / (R/n) <= 1 + (1 − c + n·k)/(x − 1)
//
// Same domain restrictions as BoundMaxLoad.
func (p Params) BoundNormalizedMaxLoad(x int) float64 {
	if x <= p.CacheSize {
		panic(fmt.Sprintf("core: BoundNormalizedMaxLoad with x=%d <= c=%d", x, p.CacheSize))
	}
	if x < 2 {
		panic(fmt.Sprintf("core: BoundNormalizedMaxLoad with x=%d < 2", x))
	}
	return 1 + (1-float64(p.CacheSize)+float64(p.Nodes)*p.K())/float64(x-1)
}

// RequiredCacheSize returns c* = ceil(n·k + 1), the smallest cache size
// for which no adversarial access pattern achieves Attack Gain > 1 — the
// paper's provisioning rule. It is O(n · ln ln n / ln d), independent of
// the number of items m.
func (p Params) RequiredCacheSize() int {
	return int(math.Ceil(float64(p.Nodes)*p.K() + 1))
}

// EffectiveAttackPossible reports whether the configured cache is below
// the provisioning threshold, i.e. whether an adversary can push the most
// loaded node above the even share (Case 1 of the analysis).
func (p Params) EffectiveAttackPossible() bool {
	return float64(p.CacheSize) < float64(p.Nodes)*p.K()+1
}

// BestAdversarialX returns the number of keys an optimal adversary
// queries: c+1 when an effective attack is possible (the bound decreases
// in x, so the adversary minimizes x), and m otherwise (the bound
// increases toward 1, so the adversary queries everything).
func (p Params) BestAdversarialX() int {
	if p.EffectiveAttackPossible() {
		x := p.CacheSize + 1
		if x < 2 {
			x = 2 // an x of 1 leaves the per-key rate undefined; with
			// c = 0 the adversary still spreads over 2 keys
		}
		if x > p.Items {
			x = p.Items
		}
		return x
	}
	return p.Items
}

// AttackGain is the normalized workload of the most loaded node,
// E[L_max]/(R/n) (Definition 1 of the paper).
type AttackGain float64

// Effective reports whether the gain exceeds 1.0 (Definition 2: an
// effective DDoS makes the hottest node carry more than the even share).
func (g AttackGain) Effective() bool { return g > 1.0 }

// String formats the gain with its classification.
func (g AttackGain) String() string {
	verdict := "ineffective"
	if g.Effective() {
		verdict = "EFFECTIVE"
	}
	return fmt.Sprintf("%.4f (%s)", float64(g), verdict)
}
