package core

import (
	"fmt"
	"math"
)

// Theorem1Step applies one load-shifting step of Theorem 1 to a query
// distribution, in place.
//
// probs is a PMF over keys in decreasing-popularity order; the first c
// entries are the cached keys, all at the plateau probability h =
// probs[0] (for c = 0 the plateau is free and taken as min(1, the largest
// current entry... see below). The step finds the first uncached key i
// with 0 < probs[i] < h and the last key j with probs[j] > 0, j > i, and
// shifts δ = min(h − probs[i], probs[j]) from j to i. The paper proves
// this never decreases E[L_max].
//
// It returns true if a shift was performed, false if the distribution is
// already in the Theorem-1 normal form (a plateau of h followed by one
// residual key).
//
// The function panics if probs is not a valid PMF, if c is out of range,
// or if the cached prefix is not a plateau dominating the uncached tail.
func Theorem1Step(probs []float64, c int) bool {
	h := validateTheorem1Input(probs, c)
	// First uncached key strictly below the plateau with room to grow.
	i := -1
	for k := c; k < len(probs); k++ {
		if probs[k] > 0 && probs[k] < h-1e-15 {
			i = k
			break
		}
	}
	if i == -1 {
		return false // all positive uncached keys already at the plateau
	}
	// Last positive key.
	j := -1
	for k := len(probs) - 1; k > i; k-- {
		if probs[k] > 0 {
			j = k
			break
		}
	}
	if j == -1 {
		return false // i is the single residual key: normal form
	}
	delta := math.Min(h-probs[i], probs[j])
	probs[i] += delta
	probs[j] -= delta
	if probs[j] < 1e-15 {
		probs[j] = 0
	}
	return true
}

// Theorem1Normalize applies Theorem1Step until a fixed point, returning
// the number of steps. The result is the Theorem-1 normal form: every
// positive key except at most one sits at the cached plateau h, followed
// by a single residual key. For a start with x0 positive keys the loop
// terminates in at most x0 steps (each step zeroes the tail key or
// saturates key i).
func Theorem1Normalize(probs []float64, c int) int {
	steps := 0
	for Theorem1Step(probs, c) {
		steps++
		if steps > 4*len(probs) {
			panic("core: Theorem1Normalize failed to converge (invalid input?)")
		}
	}
	return steps
}

// validateTheorem1Input checks the PMF and plateau structure, returning
// the plateau probability h.
func validateTheorem1Input(probs []float64, c int) float64 {
	if len(probs) == 0 {
		panic("core: Theorem1Step on empty distribution")
	}
	if c < 0 || c >= len(probs) {
		panic(fmt.Sprintf("core: Theorem1Step with c=%d out of range [0, %d)", c, len(probs)))
	}
	var sum float64
	for k, p := range probs {
		if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
			panic(fmt.Sprintf("core: Theorem1Step: probs[%d] = %v invalid", k, p))
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("core: Theorem1Step: probabilities sum to %v, want 1", sum))
	}
	// Plateau: the cached keys must share the maximum probability.
	var h float64
	if c > 0 {
		h = probs[0]
		for k := 1; k < c; k++ {
			if math.Abs(probs[k]-h) > 1e-12 {
				panic(fmt.Sprintf("core: Theorem1Step: cached keys not a plateau (probs[%d]=%v != h=%v)", k, probs[k], h))
			}
		}
		for k := c; k < len(probs); k++ {
			if probs[k] > h+1e-12 {
				panic(fmt.Sprintf("core: Theorem1Step: uncached probs[%d]=%v above plateau h=%v", k, probs[k], h))
			}
		}
	} else {
		// No cache: the plateau is the current maximum (shifting toward
		// the most-queried key still never decreases E[L_max]).
		for _, p := range probs {
			if p > h {
				h = p
			}
		}
	}
	return h
}

// NormalFormX returns the number of positive keys of a distribution in
// Theorem-1 normal form, i.e. the adversary's x. It panics if the
// distribution is not in normal form (call Theorem1Normalize first).
func NormalFormX(probs []float64, c int) int {
	h := validateTheorem1Input(probs, c)
	x := 0
	belowPlateau := 0
	for k, p := range probs {
		if p <= 0 {
			continue
		}
		x++
		if p < h-1e-12 {
			belowPlateau++
			if belowPlateau > 1 {
				panic(fmt.Sprintf("core: distribution not in normal form: key %d below plateau", k))
			}
		}
	}
	return x
}
