package core

import (
	"math"
	"testing"
)

func scParams(c int) SingleChoiceParams {
	return SingleChoiceParams{Nodes: 1000, Items: 100000, CacheSize: c}
}

func TestSingleChoiceValidate(t *testing.T) {
	if err := scParams(10).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []SingleChoiceParams{
		{Nodes: 1, Items: 10},
		{Nodes: 10, Items: 0},
		{Nodes: 10, Items: 10, CacheSize: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestSingleChoiceEffectiveUpToNLogN(t *testing.T) {
	// The baseline's defining property: for every O(n)-sized cache (and
	// in fact up to c ~ n·ln n) the optimal attack keeps gain > 1 — no
	// hard prevention without replication.
	for _, c := range []int{0, 100, 1000, 10000} { // n·ln n ≈ 6908
		p := scParams(c)
		x := p.BestAdversarialX()
		if x <= c {
			t.Fatalf("c=%d: best x=%d <= c", c, x)
		}
		if g := p.BoundNormalizedMaxLoad(x); g <= 1 {
			t.Errorf("c=%d: single-choice worst gain %v <= 1 in the sub-n·ln n regime", c, g)
		}
	}
	// And the crossover: a cache of ~2·n·ln n entries finally pushes the
	// worst gain toward 1 — Fan et al.'s O(n log n) provisioning.
	big := scParams(4 * 6908)
	if g := big.BoundNormalizedMaxLoad(big.BestAdversarialX()); g > 1.2 {
		t.Errorf("c=4n·ln n: worst gain %v, want near 1", g)
	}
}

func TestSingleChoiceOptimalXNearTheory(t *testing.T) {
	// The stationary point of the sqrt term alone is x* ≈ 2c − 1. It is a
	// good predictor while that term dominates (c << n·ln n); the numeric
	// optimum, which also sees the increasing (x−c)/(x−1) term, sits at
	// or above it.
	for _, c := range []int{500, 2000} {
		p := scParams(c)
		got := float64(p.BestAdversarialX())
		want := p.TheoreticalOptimalX()
		if got < want/2 || got > want*4 {
			t.Errorf("c=%d: numeric optimum x=%v, sqrt-term theory ~%v", c, got, want)
		}
	}
}

func TestSingleChoiceOptimalXIsInterior(t *testing.T) {
	// Unlike the replication case, the optimum is neither c+1 nor m: it
	// is a finite interior point (for moderate c).
	p := scParams(2000)
	x := p.BestAdversarialX()
	if x == p.CacheSize+1 || x == p.Items {
		t.Errorf("single-choice best x = %d, want an interior optimum", x)
	}
	// And the gain there must beat both endpoints.
	gOpt := p.BoundNormalizedMaxLoad(x)
	gLo := p.BoundNormalizedMaxLoad(p.CacheSize + 1)
	gHi := p.BoundNormalizedMaxLoad(p.Items)
	if gOpt < gLo || gOpt < gHi {
		t.Errorf("interior gain %v below endpoints (%v, %v)", gOpt, gLo, gHi)
	}
}

func TestSingleChoiceBoundPanics(t *testing.T) {
	p := scParams(100)
	for name, f := range map[string]func(){
		"x<=c": func() { p.BoundNormalizedMaxLoad(100) },
		"x<2":  func() { SingleChoiceParams{Nodes: 10, Items: 10}.BoundNormalizedMaxLoad(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRequiredCacheForGain(t *testing.T) {
	p := scParams(0)
	c2, err := p.RequiredCacheForGain(2.0)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := p.RequiredCacheForGain(3.0)
	if err != nil {
		t.Fatal(err)
	}
	if c2 <= c3 {
		t.Errorf("tighter gain target needs smaller cache? c(2.0)=%d c(3.0)=%d", c2, c3)
	}
	// Verify the returned size actually meets the target and c-1 doesn't.
	q := p
	q.CacheSize = c2
	if g := q.BoundNormalizedMaxLoad(q.BestAdversarialX()); g > 2.0 {
		t.Errorf("c=%d gives gain %v > 2.0", c2, g)
	}
	if c2 > 0 {
		q.CacheSize = c2 - 1
		if g := q.BoundNormalizedMaxLoad(q.BestAdversarialX()); g <= 2.0 {
			t.Errorf("c=%d already gives gain %v <= 2.0; %d not minimal", c2-1, g, c2)
		}
	}
}

func TestRequiredCacheForGainErrors(t *testing.T) {
	if _, err := scParams(0).RequiredCacheForGain(1.0); err == nil {
		t.Error("gain <= 1 target accepted for single choice")
	}
	if _, err := (SingleChoiceParams{}).RequiredCacheForGain(2); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestReplicationBeatsSingleChoice quantifies the paper's improvement
// over the baseline: at the replication threshold c* the d-choice system
// guarantees gain <= ~1 while the single-choice system at the same cache
// size still admits a strictly effective attack.
func TestReplicationBeatsSingleChoice(t *testing.T) {
	rep := Params{Nodes: 1000, Replication: 3, Items: 100000, KOverride: 1.2}
	cstar := rep.RequiredCacheSize()

	sc := SingleChoiceParams{Nodes: 1000, Items: 100000, CacheSize: cstar}
	xSC := sc.BestAdversarialX()
	gainSC := sc.BoundNormalizedMaxLoad(xSC)

	repAt := rep
	repAt.CacheSize = cstar
	gainRep := repAt.BoundNormalizedMaxLoad(repAt.Items) // best x = m in this regime

	if gainSC <= 1.5 {
		t.Errorf("single-choice gain at c*=%d is %v; expected clearly effective", cstar, gainSC)
	}
	if gainRep > 1.0+1e-9 {
		t.Errorf("replicated gain at c* is %v, want <= 1", gainRep)
	}
	if gainSC < 2*gainRep {
		t.Errorf("replication advantage too small: %v vs %v", gainSC, gainRep)
	}
	if math.IsNaN(gainSC) || math.IsNaN(gainRep) {
		t.Fatal("NaN gains")
	}
}
