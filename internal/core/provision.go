package core

import (
	"fmt"
	"math"
)

// Provision is the result of sizing a front-end cache for a cluster.
type Provision struct {
	// Params echoes the input.
	Params Params
	// K is the constant used (gap + k' or the override).
	K float64
	// Gap is the pure ln ln n / ln d term.
	Gap float64
	// RequiredCacheSize is c* = ceil(n·k + 1).
	RequiredCacheSize int
	// CurrentEffective reports whether the configured CacheSize already
	// prevents effective attacks.
	CurrentEffective bool
	// WorstGainAtCurrent is the Eq. 10 bound on the attack gain at the
	// configured cache size, evaluated at the adversary's best x.
	WorstGainAtCurrent AttackGain
	// BestX is the adversary's optimal number of queried keys at the
	// configured cache size.
	BestX int
}

// Provision computes the provisioning summary for p. It returns an error
// if p fails validation.
func (p Params) Provision() (Provision, error) {
	if err := p.Validate(); err != nil {
		return Provision{}, err
	}
	bestX := p.BestAdversarialX()
	gainX := bestX
	if gainX <= p.CacheSize {
		// The whole key space fits in the cache; no query reaches the
		// back end and the gain is 0 by convention.
		return Provision{
			Params:            p,
			K:                 p.K(),
			Gap:               p.Gap(),
			RequiredCacheSize: p.RequiredCacheSize(),
			CurrentEffective:  true,
			BestX:             bestX,
		}, nil
	}
	if gainX < 2 {
		gainX = 2
	}
	return Provision{
		Params:             p,
		K:                  p.K(),
		Gap:                p.Gap(),
		RequiredCacheSize:  p.RequiredCacheSize(),
		CurrentEffective:   !p.EffectiveAttackPossible(),
		WorstGainAtCurrent: AttackGain(p.BoundNormalizedMaxLoad(gainX)),
		BestX:              bestX,
	}, nil
}

// String renders a human-readable provisioning report.
func (pr Provision) String() string {
	status := "VULNERABLE: effective DDoS possible"
	if pr.CurrentEffective {
		status = "protected: no effective DDoS exists"
	}
	return fmt.Sprintf(
		"n=%d d=%d m=%d c=%d | k=%.4f (gap %.4f) | required c*=%d | best x=%d | worst gain bound=%.4f | %s",
		pr.Params.Nodes, pr.Params.Replication, pr.Params.Items, pr.Params.CacheSize,
		pr.K, pr.Gap, pr.RequiredCacheSize, pr.BestX, float64(pr.WorstGainAtCurrent), status)
}

// CriticalPoint finds the smallest cache size c in [lo, hi] for which
// bestGain(c) <= threshold, assuming bestGain is non-increasing in c (true
// in expectation: a larger cache can only absorb more attack mass). It
// returns an error if even hi fails the threshold.
//
// bestGain is typically an empirical evaluator — run the simulated
// adversary's best strategy at cache size c and return the achieved
// normalized max load — so each call may be expensive; the search makes
// O(log(hi−lo)) calls.
func CriticalPoint(lo, hi int, threshold float64, bestGain func(c int) float64) (int, error) {
	if lo < 0 || hi < lo {
		return 0, fmt.Errorf("core: CriticalPoint with invalid range [%d, %d]", lo, hi)
	}
	if math.IsNaN(threshold) {
		return 0, fmt.Errorf("core: CriticalPoint with NaN threshold")
	}
	if bestGain(hi) > threshold {
		return 0, fmt.Errorf("core: CriticalPoint: gain %v at c=%d still above threshold %v",
			bestGain(hi), hi, threshold)
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if bestGain(mid) <= threshold {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
