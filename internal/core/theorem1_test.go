package core

import (
	"math"
	"testing"

	"securecache/internal/workload"
	"securecache/internal/xrand"
)

func pmfSum(probs []float64) float64 {
	var s float64
	for _, p := range probs {
		s += p
	}
	return s
}

func TestTheorem1StepShiftsTailToHead(t *testing.T) {
	// c=2 cached at 0.3 each; uncached: 0.2, 0.15, 0.05.
	probs := []float64{0.3, 0.3, 0.2, 0.15, 0.05}
	changed := Theorem1Step(probs, 2)
	if !changed {
		t.Fatal("step reported no change")
	}
	// Key 2 (first below plateau) grows by δ = min(0.3-0.2, 0.05) = 0.05,
	// taken from key 4 (last positive).
	want := []float64{0.3, 0.3, 0.25, 0.15, 0}
	for i, w := range want {
		if math.Abs(probs[i]-w) > 1e-12 {
			t.Errorf("probs[%d] = %v, want %v", i, probs[i], w)
		}
	}
	if math.Abs(pmfSum(probs)-1) > 1e-12 {
		t.Errorf("sum drifted to %v", pmfSum(probs))
	}
}

func TestTheorem1StepSaturatesAtPlateau(t *testing.T) {
	// δ limited by h - p_i: key 2 can only grow to h.
	probs := []float64{0.3, 0.3, 0.25, 0.15}
	Theorem1Step(probs, 2)
	if math.Abs(probs[2]-0.3) > 1e-12 {
		t.Errorf("probs[2] = %v, want saturated at 0.3", probs[2])
	}
	if math.Abs(probs[3]-0.1) > 1e-12 {
		t.Errorf("probs[3] = %v, want 0.1", probs[3])
	}
}

func TestTheorem1NormalFormFixedPoint(t *testing.T) {
	// Already canonical adversarial shape: no step applies.
	probs := []float64{0.25, 0.25, 0.25, 0.25}
	if Theorem1Step(probs, 2) {
		t.Error("step changed a normal-form distribution")
	}
	probs = []float64{0.3, 0.3, 0.3, 0.1}
	if Theorem1Step(probs, 2) {
		t.Error("step changed a plateau+residual distribution")
	}
}

func TestTheorem1NormalizeConverges(t *testing.T) {
	// A messy long tail must collapse to plateau + residual.
	rng := xrand.New(3)
	const m, c = 50, 5
	probs := make([]float64, m)
	// Cached plateau at h = 0.04; remaining mass 0.8 spread decreasingly.
	for i := 0; i < c; i++ {
		probs[i] = 0.04
	}
	rest := 0.8
	weights := make([]float64, m-c)
	var wsum float64
	for i := range weights {
		weights[i] = rng.Float64()
		wsum += weights[i]
	}
	// Sort descending so the input respects monotone ordering under h.
	for i := range weights {
		weights[i] = weights[i] / wsum * rest
	}
	// Clamp any entry above h by redistributing (simple approach: scale
	// all to be below h).
	for i := range weights {
		if weights[i] > 0.04 {
			weights[i] = 0.039
		}
	}
	var used float64
	for _, w := range weights {
		used += w
	}
	// Renormalize the whole PMF to sum to 1.
	total := 0.2 + used
	for i := 0; i < c; i++ {
		probs[i] = 0.04 / total
	}
	for i := c; i < m; i++ {
		probs[i] = weights[i-c] / total
	}

	steps := Theorem1Normalize(probs, c)
	if steps == 0 {
		t.Fatal("expected at least one step")
	}
	x := NormalFormX(probs, c)
	if x <= c {
		t.Fatalf("normal form x = %d, want > c = %d", x, c)
	}
	// Structure: all positive keys at plateau except at most one.
	h := probs[0]
	below := 0
	for _, p := range probs {
		if p > 0 && p < h-1e-12 {
			below++
		}
	}
	if below > 1 {
		t.Errorf("%d keys below plateau after normalization, want <= 1", below)
	}
	if math.Abs(pmfSum(probs)-1) > 1e-9 {
		t.Errorf("sum drifted to %v", pmfSum(probs))
	}
}

func TestTheorem1NormalizeMatchesAdversarialDistribution(t *testing.T) {
	// Normalizing uniform-over-x' mass under plateau h = 1/x should yield
	// the same support as workload.NewAdversarial.
	const m, c = 20, 4
	// Start: cached at 1/10 each, six uncached keys at 1/10 each but the
	// last two at 1/20 + 1/20 spread.
	probs := make([]float64, m)
	for i := 0; i < 8; i++ {
		probs[i] = 0.1
	}
	probs[8], probs[9], probs[10], probs[11] = 0.05, 0.05, 0.05, 0.05
	Theorem1Normalize(probs, c)
	x := NormalFormX(probs, c)
	ref := workload.NewAdversarial(m, x, probs[0])
	for k := 0; k < m; k++ {
		if math.Abs(probs[k]-ref.Prob(k)) > 1e-9 {
			t.Errorf("key %d: normalized %v != adversarial reference %v", k, probs[k], ref.Prob(k))
		}
	}
}

func TestTheorem1StepValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":          func() { Theorem1Step(nil, 0) },
		"c out of range": func() { Theorem1Step([]float64{1}, 1) },
		"negative":       func() { Theorem1Step([]float64{1.5, -0.5}, 0) },
		"sum != 1":       func() { Theorem1Step([]float64{0.5, 0.4}, 0) },
		"broken plateau": func() { Theorem1Step([]float64{0.5, 0.3, 0.2}, 2) },
		"tail above h":   func() { Theorem1Step([]float64{0.2, 0.2, 0.6}, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTheorem1ZeroCachePlateauIsMax(t *testing.T) {
	// c = 0: plateau is the current max; mass shifts toward key 0.
	probs := []float64{0.5, 0.3, 0.2}
	if !Theorem1Step(probs, 0) {
		t.Fatal("no step applied")
	}
	// Key 1 grows by min(0.5-0.3, 0.2) = 0.2.
	want := []float64{0.5, 0.5, 0}
	for i, w := range want {
		if math.Abs(probs[i]-w) > 1e-12 {
			t.Errorf("probs[%d] = %v, want %v", i, probs[i], w)
		}
	}
}

func TestNormalFormXPanicsOnNonNormal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NormalFormX accepted a non-normal distribution")
		}
	}()
	NormalFormX([]float64{0.4, 0.4, 0.1, 0.1}, 1) // two keys below plateau
}
