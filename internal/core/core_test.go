package core

import (
	"math"
	"testing"

	"securecache/internal/ballsbins"
)

// paperParams are the evaluation parameters of §IV: n=1000, d=3, m=1e5,
// with the paper's fitted k = 1.2.
func paperParams(c int) Params {
	return Params{Nodes: 1000, Replication: 3, Items: 100000, CacheSize: c, KOverride: 1.2}
}

func TestValidate(t *testing.T) {
	good := paperParams(100)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Nodes: 1, Replication: 2, Items: 10},
		{Nodes: 10, Replication: 1, Items: 10},
		{Nodes: 10, Replication: 11, Items: 10},
		{Nodes: 10, Replication: 3, Items: 0},
		{Nodes: 10, Replication: 3, Items: 10, CacheSize: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestKOverrideAndDefault(t *testing.T) {
	p := paperParams(100)
	if p.K() != 1.2 {
		t.Errorf("KOverride: K() = %v, want 1.2", p.K())
	}
	p.KOverride = 0
	// Default: gap + DefaultKPrime.
	want := ballsbins.GapTerm(1000, 3) + DefaultKPrime
	if math.Abs(p.K()-want) > 1e-12 {
		t.Errorf("default K() = %v, want %v", p.K(), want)
	}
	// DefaultKPrime is calibrated so that n=1000, d=3 gives k ≈ 1.2.
	if math.Abs(p.K()-1.2) > 0.01 {
		t.Errorf("calibrated K() = %v, want ≈ 1.2", p.K())
	}
	p.KPrime = 0.5
	if math.Abs(p.K()-(ballsbins.GapTerm(1000, 3)+0.5)) > 1e-12 {
		t.Error("explicit KPrime not honored")
	}
}

func TestBoundNormalizedMaxLoadEq10(t *testing.T) {
	// Hand-check Eq. 10: n=1000, k=1.2, c=200, x=2001:
	// 1 + (1 - 200 + 1200)/2000 = 1.5005.
	p := paperParams(200)
	got := p.BoundNormalizedMaxLoad(2001)
	if math.Abs(got-1.5005) > 1e-12 {
		t.Errorf("bound = %v, want 1.5005", got)
	}
}

func TestBoundMaxLoadConsistentWithNormalized(t *testing.T) {
	// BoundMaxLoad / (R/n) must equal BoundNormalizedMaxLoad.
	p := paperParams(200)
	const rate = 1e5
	for _, x := range []int{201, 500, 5000, 100000} {
		abs := p.BoundMaxLoad(x, rate)
		norm := p.BoundNormalizedMaxLoad(x)
		if math.Abs(abs/(rate/1000)-norm) > 1e-9 {
			t.Errorf("x=%d: absolute/normalized bounds inconsistent: %v vs %v", x, abs/(rate/1000), norm)
		}
	}
}

func TestBoundMonotonicity(t *testing.T) {
	small := paperParams(200) // below threshold: bound decreasing in x
	prev := math.Inf(1)
	for x := 201; x < 10000; x += 97 {
		b := small.BoundNormalizedMaxLoad(x)
		if b > prev+1e-12 {
			t.Fatalf("small cache: bound increased at x=%d", x)
		}
		if b <= 1 {
			t.Fatalf("small cache: bound fell to %v <= 1 at x=%d (Case 1 says it stays above 1)", b, x)
		}
		prev = b
	}
	large := paperParams(2000) // above threshold: bound increasing in x, < 1
	prev = math.Inf(-1)
	for x := 2001; x < 100000; x += 997 {
		b := large.BoundNormalizedMaxLoad(x)
		if b < prev-1e-12 {
			t.Fatalf("large cache: bound decreased at x=%d", x)
		}
		if b >= 1 {
			t.Fatalf("large cache: bound %v >= 1 at x=%d (Case 2 says it stays below 1)", b, x)
		}
		prev = b
	}
}

func TestBoundPanics(t *testing.T) {
	p := paperParams(200)
	for name, f := range map[string]func(){
		"x<=c norm": func() { p.BoundNormalizedMaxLoad(200) },
		"x<=c abs":  func() { p.BoundMaxLoad(150, 1) },
		"x<2 norm":  func() { Params{Nodes: 10, Replication: 2, Items: 5, KOverride: 1}.BoundNormalizedMaxLoad(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRequiredCacheSizePaperSetting(t *testing.T) {
	// n=1000, k=1.2: c* = ceil(1000*1.2 + 1) = 1201.
	p := paperParams(0)
	if got := p.RequiredCacheSize(); got != 1201 {
		t.Errorf("RequiredCacheSize = %d, want 1201", got)
	}
}

func TestRequiredCacheSizeScalesLinearly(t *testing.T) {
	// c* is O(n): doubling n roughly doubles c* (gap grows only lnln).
	mk := func(n int) int {
		return Params{Nodes: n, Replication: 3, Items: 1 << 20}.RequiredCacheSize()
	}
	c1, c2 := mk(1000), mk(2000)
	ratio := float64(c2) / float64(c1)
	if ratio < 1.9 || ratio > 2.2 {
		t.Errorf("c*(2000)/c*(1000) = %v, want ~2 (O(n) scaling)", ratio)
	}
}

func TestRequiredCacheSizeIndependentOfItems(t *testing.T) {
	a := Params{Nodes: 500, Replication: 3, Items: 1000}.RequiredCacheSize()
	b := Params{Nodes: 500, Replication: 3, Items: 100000000}.RequiredCacheSize()
	if a != b {
		t.Errorf("c* depends on m: %d vs %d", a, b)
	}
}

func TestRequiredCacheSizeDecreasesWithReplication(t *testing.T) {
	mk := func(d int) int {
		return Params{Nodes: 1000, Replication: d, Items: 1 << 20}.RequiredCacheSize()
	}
	prev := math.MaxInt32
	for d := 2; d <= 6; d++ {
		c := mk(d)
		if c >= prev {
			t.Errorf("c* not decreasing in d: c*(%d)=%d, c*(%d)=%d", d-1, prev, d, c)
		}
		prev = c
	}
}

func TestDichotomyAtThreshold(t *testing.T) {
	p := paperParams(0)
	cstar := p.RequiredCacheSize()
	below := paperParams(cstar - 1)
	if !below.EffectiveAttackPossible() {
		t.Error("c = c*-1 should permit an effective attack")
	}
	at := paperParams(cstar)
	if at.EffectiveAttackPossible() {
		t.Error("c = c* should prevent effective attacks")
	}
	// Best x flips from c+1 to m across the threshold.
	if got := below.BestAdversarialX(); got != cstar {
		t.Errorf("below threshold: best x = %d, want c+1 = %d", got, cstar)
	}
	if got := at.BestAdversarialX(); got != at.Items {
		t.Errorf("at threshold: best x = %d, want m = %d", got, at.Items)
	}
}

func TestBestAdversarialXZeroCache(t *testing.T) {
	p := paperParams(0)
	if got := p.BestAdversarialX(); got != 2 {
		t.Errorf("c=0: best x = %d, want 2 (per-key rate needs x >= 2)", got)
	}
}

func TestBestAdversarialXClampedToItems(t *testing.T) {
	p := Params{Nodes: 100, Replication: 3, Items: 50, CacheSize: 49, KOverride: 1.2}
	if got := p.BestAdversarialX(); got != 50 {
		t.Errorf("best x = %d, want clamped to m = 50", got)
	}
}

func TestAttackGainClassification(t *testing.T) {
	if AttackGain(0.99).Effective() {
		t.Error("gain 0.99 classified effective")
	}
	if !AttackGain(1.01).Effective() {
		t.Error("gain 1.01 classified ineffective")
	}
	if s := AttackGain(2.5).String(); s == "" {
		t.Error("empty String()")
	}
}

func TestProvisionReport(t *testing.T) {
	pr, err := paperParams(200).Provision()
	if err != nil {
		t.Fatal(err)
	}
	if pr.RequiredCacheSize != 1201 || pr.CurrentEffective {
		t.Errorf("provision: %+v", pr)
	}
	if !pr.WorstGainAtCurrent.Effective() {
		t.Error("worst gain at c=200 should be effective")
	}
	if pr.BestX != 201 {
		t.Errorf("BestX = %d, want 201", pr.BestX)
	}
	if pr.String() == "" {
		t.Error("empty report")
	}

	safe, err := paperParams(1500).Provision()
	if err != nil {
		t.Fatal(err)
	}
	if !safe.CurrentEffective {
		t.Error("c=1500 should be protected")
	}
	if safe.WorstGainAtCurrent.Effective() {
		t.Errorf("protected config has effective worst gain %v", safe.WorstGainAtCurrent)
	}
	if safe.String() == "" {
		t.Error("empty report")
	}
}

func TestProvisionFullyCachedKeySpace(t *testing.T) {
	p := Params{Nodes: 10, Replication: 3, Items: 5, CacheSize: 5, KOverride: 1.2}
	pr, err := p.Provision()
	if err != nil {
		t.Fatal(err)
	}
	if !pr.CurrentEffective || pr.WorstGainAtCurrent != 0 {
		t.Errorf("fully cached key space: %+v", pr)
	}
}

func TestProvisionInvalid(t *testing.T) {
	if _, err := (Params{}).Provision(); err == nil {
		t.Error("Provision of zero params did not error")
	}
}

func TestCriticalPointFindsThreshold(t *testing.T) {
	// Synthetic gain curve: crosses 1.0 exactly at c = 137.
	gain := func(c int) float64 {
		if c >= 137 {
			return 0.9
		}
		return 1.5
	}
	got, err := CriticalPoint(0, 1000, 1.0, gain)
	if err != nil {
		t.Fatal(err)
	}
	if got != 137 {
		t.Errorf("CriticalPoint = %d, want 137", got)
	}
}

func TestCriticalPointErrors(t *testing.T) {
	if _, err := CriticalPoint(10, 5, 1, func(int) float64 { return 0 }); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := CriticalPoint(0, 10, 1, func(int) float64 { return 2 }); err == nil {
		t.Error("never-crossing gain accepted")
	}
	if _, err := CriticalPoint(0, 10, math.NaN(), func(int) float64 { return 0 }); err == nil {
		t.Error("NaN threshold accepted")
	}
}

func TestCriticalPointMatchesAnalyticalThreshold(t *testing.T) {
	// Use the Eq. 10 bound itself as the gain evaluator: the empirical
	// critical point must equal RequiredCacheSize (up to the ceil).
	base := paperParams(0)
	gain := func(c int) float64 {
		p := paperParams(c)
		x := p.BestAdversarialX()
		if x <= c {
			return 0
		}
		if x < 2 {
			x = 2
		}
		return p.BoundNormalizedMaxLoad(x)
	}
	got, err := CriticalPoint(0, 5000, 1.0, gain)
	if err != nil {
		t.Fatal(err)
	}
	want := base.RequiredCacheSize()
	if got < want-1 || got > want {
		t.Errorf("empirical critical point %d, analytical c* %d", got, want)
	}
}
