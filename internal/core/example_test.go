package core_test

import (
	"fmt"

	"securecache/internal/core"
)

// Size the front-end cache for the paper's evaluation cluster.
func ExampleParams_Provision() {
	p := core.Params{
		Nodes:       1000,
		Replication: 3,
		Items:       100000,
		CacheSize:   200,
		KOverride:   1.2, // the paper's fitted constant
	}
	report, err := p.Provision()
	if err != nil {
		panic(err)
	}
	fmt.Println("required cache size:", report.RequiredCacheSize)
	fmt.Println("adversary's best x:", report.BestX)
	fmt.Printf("worst-case gain bound: %.4f\n", float64(report.WorstGainAtCurrent))
	// Output:
	// required cache size: 1201
	// adversary's best x: 201
	// worst-case gain bound: 6.0050
}

// The Eq. 10 bound across the two regimes.
func ExampleParams_BoundNormalizedMaxLoad() {
	small := core.Params{Nodes: 1000, Replication: 3, Items: 100000, CacheSize: 200, KOverride: 1.2}
	large := core.Params{Nodes: 1000, Replication: 3, Items: 100000, CacheSize: 2000, KOverride: 1.2}
	fmt.Printf("c=200,  x=201:    %.4f (decreasing in x, > 1)\n", small.BoundNormalizedMaxLoad(201))
	fmt.Printf("c=200,  x=100000: %.4f\n", small.BoundNormalizedMaxLoad(100000))
	fmt.Printf("c=2000, x=2001:   %.4f (increasing in x, < 1)\n", large.BoundNormalizedMaxLoad(2001))
	fmt.Printf("c=2000, x=100000: %.4f\n", large.BoundNormalizedMaxLoad(100000))
	// Output:
	// c=200,  x=201:    6.0050 (decreasing in x, > 1)
	// c=200,  x=100000: 1.0100
	// c=2000, x=2001:   0.6005 (increasing in x, < 1)
	// c=2000, x=100000: 0.9920
}

// Theorem 1's load-shifting step collapses any distribution toward the
// plateau + residual normal form.
func ExampleTheorem1Normalize() {
	// Two cached keys at 0.3, three uncached keys below the plateau.
	probs := []float64{0.3, 0.3, 0.2, 0.15, 0.05}
	steps := core.Theorem1Normalize(probs, 2)
	fmt.Println("steps:", steps)
	fmt.Println("normal form:", probs)
	fmt.Println("x =", core.NormalFormX(probs, 2))
	// Output:
	// steps: 2
	// normal form: [0.3 0.3 0.3 0.1 0]
	// x = 4
}
