package rotation

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"securecache/internal/overload"
)

// Entry is one record streamed out of a node during migration. Ver is
// the entry's logical version (0 for unversioned data); guarded copies
// carry it so a migrated entry keeps its place in the version order.
type Entry struct {
	Key   string
	Value []byte
	Epoch uint32
	Ver   uint64
}

// Transport is how the Migrator talks to the cluster. In production it
// is the frontend's backend clients (SCAN pages + epoch-guarded
// copies); tests plug in an in-memory fake.
type Transport interface {
	// Scan returns one page of node's un-migrated entries after cursor,
	// plus the next cursor (0 = node drained for this pass).
	Scan(node int, cursor uint64, limit int) ([]Entry, uint64, error)
	// Move re-places one entry under the new mapping. It must be
	// idempotent and guarded: a concurrent client write at the new
	// epoch wins, and re-moving an already-moved entry is a no-op.
	Move(e Entry) error
}

// ErrStopped reports that migration was cancelled via the stop channel.
var ErrStopped = errors.New("rotation: migration stopped")

// MigratorConfig parameterizes a Migrator.
type MigratorConfig struct {
	// Nodes is the number of backend nodes to drain, scanned as IDs
	// 0..Nodes-1. Required unless NodeIDs is set.
	Nodes int
	// NodeIDs, when non-empty, is the explicit set of node IDs to scan
	// (overrides Nodes). Elastic clusters pass the union of the old and
	// new generations' members: data can only live where a generation
	// placed it.
	NodeIDs []int
	// Unavailable, when non-nil, reports that a node is known to be
	// unreachable (in practice: its circuit breaker is open). The
	// migrator skips such a node's scan for the pass instead of burning
	// MaxAttempts against it, and a scan whose retries exhaust is
	// demoted to a skip if the node has become unavailable meanwhile.
	// Skipped nodes are recorded per pass (Skipped); with replication
	// d >= 2 a dead node's keys remain reachable through its group
	// siblings' scans, so the caller may still commit when fewer than d
	// nodes were skipped.
	Unavailable func(node int) bool
	// OnSkip, when non-nil, is called once per node skipped in a pass.
	OnSkip func(node int)
	// Batch is the SCAN page size (default 256).
	Batch int
	// Limiter rate-limits Move calls; nil = unlimited. This is the
	// knob that keeps migration from becoming its own overload: size
	// it below the cluster's spare capacity.
	Limiter *overload.TokenBucket
	// MaxAttempts bounds retries of one failing scan or move before
	// the migration aborts (default 50). Busy responses count here —
	// an overloaded cluster stalls migration rather than failing it
	// instantly, but a wedged node cannot stall it forever.
	MaxAttempts int
	// Backoff is the base retry backoff, doubling up to 100x
	// (default 5ms).
	Backoff time.Duration
	// OnMoved, when non-nil, is called after each successful move (the
	// frontend hooks rotation_keys_moved_total here).
	OnMoved func()
	// OnInflight, when non-nil, is called with +1/-1 around each move
	// (the rotation_inflight gauge).
	OnInflight func(delta int)
}

// Migrator drains every node's un-migrated entries through a Transport
// until a full pass over the cluster finds nothing left to move.
type Migrator struct {
	cfg     MigratorConfig
	t       Transport
	moved   atomic.Uint64
	skipMu  sync.Mutex
	skipped []int // nodes skipped in the most recent completed pass
}

// NewMigrator validates cfg and returns a Migrator.
func NewMigrator(cfg MigratorConfig, t Transport) (*Migrator, error) {
	if t == nil {
		return nil, errors.New("rotation: nil transport")
	}
	if len(cfg.NodeIDs) == 0 {
		if cfg.Nodes < 1 {
			return nil, fmt.Errorf("rotation: %d nodes", cfg.Nodes)
		}
		cfg.NodeIDs = make([]int, cfg.Nodes)
		for i := range cfg.NodeIDs {
			cfg.NodeIDs[i] = i
		}
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 50
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 5 * time.Millisecond
	}
	return &Migrator{cfg: cfg, t: t}, nil
}

// Moved returns the number of entries moved so far (readable while Run
// is in flight).
func (m *Migrator) Moved() uint64 { return m.moved.Load() }

// Skipped returns the nodes skipped as unavailable during the most
// recent completed pass. A drained Run (nil error) with a non-empty
// skip list means those nodes' own scans were never confirmed empty —
// the caller decides whether replication makes committing safe.
func (m *Migrator) Skipped() []int {
	m.skipMu.Lock()
	defer m.skipMu.Unlock()
	return append([]int(nil), m.skipped...)
}

func (m *Migrator) setSkipped(nodes []int) {
	m.skipMu.Lock()
	m.skipped = nodes
	m.skipMu.Unlock()
}

// Run migrates until a full pass over all nodes moves nothing (the
// cluster is drained: every entry a scan can see is at the new epoch),
// returning the total moved. Closing stop cancels with ErrStopped.
//
// Sources are scanned repeatedly rather than tracked: a client write
// landing mid-pass re-tags its key at the new epoch, so it simply
// stops appearing in later scans. Convergence needs only that moves
// retire entries faster than rotation-era writes create old-epoch ones
// — and nothing writes old-epoch entries once the rotation has begun.
func (m *Migrator) Run(stop <-chan struct{}) (uint64, error) {
	for {
		n, err := m.pass(stop)
		if err != nil {
			return m.moved.Load(), err
		}
		if n == 0 {
			return m.moved.Load(), nil
		}
	}
}

// pass drains each node once, returning how many entries it moved.
func (m *Migrator) pass(stop <-chan struct{}) (int, error) {
	total := 0
	var skipped []int
	defer func() { m.setSkipped(skipped) }()
	for _, node := range m.cfg.NodeIDs {
		if m.cfg.Unavailable != nil && m.cfg.Unavailable(node) {
			skipped = append(skipped, node)
			if m.cfg.OnSkip != nil {
				m.cfg.OnSkip(node)
			}
			continue
		}
		cursor := uint64(0)
		for {
			entries, next, err := m.scanRetry(node, cursor, stop)
			if err != nil {
				if !errors.Is(err, ErrStopped) && m.cfg.Unavailable != nil && m.cfg.Unavailable(node) {
					// The node died mid-scan: demote to a skip so one dead
					// node cannot wedge the whole pass. Its surviving
					// replicas' scans still cover every key it held.
					skipped = append(skipped, node)
					if m.cfg.OnSkip != nil {
						m.cfg.OnSkip(node)
					}
					break
				}
				return total, err
			}
			for _, e := range entries {
				if err := m.wait(stop); err != nil {
					return total, err
				}
				if m.cfg.OnInflight != nil {
					m.cfg.OnInflight(1)
				}
				err := m.moveRetry(e, stop)
				if m.cfg.OnInflight != nil {
					m.cfg.OnInflight(-1)
				}
				if err != nil {
					return total, err
				}
				m.moved.Add(1)
				total++
				if m.cfg.OnMoved != nil {
					m.cfg.OnMoved()
				}
			}
			if next == 0 {
				break
			}
			cursor = next
		}
	}
	return total, nil
}

// wait blocks until the rate limiter admits one move (or stop closes).
func (m *Migrator) wait(stop <-chan struct{}) error {
	for !m.cfg.Limiter.Allow() {
		select {
		case <-stop:
			return ErrStopped
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case <-stop:
		return ErrStopped
	default:
		return nil
	}
}

func (m *Migrator) scanRetry(node int, cursor uint64, stop <-chan struct{}) ([]Entry, uint64, error) {
	var lastErr error
	for attempt := 0; attempt < m.cfg.MaxAttempts; attempt++ {
		if err := m.sleep(attempt, stop); err != nil {
			return nil, 0, err
		}
		entries, next, err := m.t.Scan(node, cursor, m.cfg.Batch)
		if err == nil {
			return entries, next, nil
		}
		lastErr = err
	}
	return nil, 0, fmt.Errorf("rotation: scan node %d: %w", node, lastErr)
}

func (m *Migrator) moveRetry(e Entry, stop <-chan struct{}) error {
	var lastErr error
	for attempt := 0; attempt < m.cfg.MaxAttempts; attempt++ {
		if err := m.sleep(attempt, stop); err != nil {
			return err
		}
		if err := m.t.Move(e); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return fmt.Errorf("rotation: move %q: %w", e.Key, lastErr)
}

// sleep backs off before retry attempt n (attempt 0 is free).
func (m *Migrator) sleep(attempt int, stop <-chan struct{}) error {
	if attempt == 0 {
		select {
		case <-stop:
			return ErrStopped
		default:
			return nil
		}
	}
	d := m.cfg.Backoff
	for i := 1; i < attempt && d < 100*m.cfg.Backoff; i++ {
		d *= 2
	}
	select {
	case <-stop:
		return ErrStopped
	case <-time.After(d):
		return nil
	}
}
