package rotation

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"securecache/internal/overload"
)

// fakeTransport is an in-memory cluster: per-node sorted entry lists
// plus a "moved" sink. Moves retire entries from their source node,
// which is what makes a repeated pass come up dry.
type fakeTransport struct {
	mu       sync.Mutex
	nodes    [][]Entry
	moved    []Entry
	scanErrs int // inject this many scan failures first
	moveErrs int // inject this many move failures first
}

func (f *fakeTransport) Scan(node int, cursor uint64, limit int) ([]Entry, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.scanErrs > 0 {
		f.scanErrs--
		return nil, 0, errors.New("injected scan failure")
	}
	var page []Entry
	// Entries are keyed by index: cursor is the 1-based position of the
	// last returned entry so deletions behind the cursor are harmless.
	entries := f.nodes[node]
	start := int(cursor)
	for i := start; i < len(entries) && len(page) < limit; i++ {
		page = append(page, entries[i])
	}
	next := uint64(start + len(page))
	if int(next) >= len(entries) {
		next = 0
	}
	return page, next, nil
}

func (f *fakeTransport) Move(e Entry) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.moveErrs > 0 {
		f.moveErrs--
		return errors.New("injected move failure")
	}
	f.moved = append(f.moved, e)
	// Retire the entry from every node (a real Move re-tags or purges
	// the source copies, so later scans no longer see it).
	for n := range f.nodes {
		kept := f.nodes[n][:0]
		for _, cur := range f.nodes[n] {
			if cur.Key != e.Key {
				kept = append(kept, cur)
			}
		}
		f.nodes[n] = kept
	}
	return nil
}

func seedTransport(nodes, perNode int) *fakeTransport {
	f := &fakeTransport{nodes: make([][]Entry, nodes)}
	for n := 0; n < nodes; n++ {
		for i := 0; i < perNode; i++ {
			f.nodes[n] = append(f.nodes[n], Entry{
				Key:   fmt.Sprintf("n%d-k%d", n, i),
				Value: []byte("v"),
				Epoch: 0,
			})
		}
	}
	return f
}

func TestMigratorDrainsAllNodes(t *testing.T) {
	ft := seedTransport(4, 30)
	moves := 0
	m, err := NewMigrator(MigratorConfig{
		Nodes:   4,
		Batch:   7,
		OnMoved: func() { moves++ },
	}, ft)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 120 || moves != 120 || m.Moved() != 120 {
		t.Fatalf("moved %d (hook %d, Moved %d), want 120", moved, moves, m.Moved())
	}
	if len(ft.moved) != 120 {
		t.Fatalf("transport saw %d moves", len(ft.moved))
	}
}

func TestMigratorRetriesTransientErrors(t *testing.T) {
	ft := seedTransport(2, 5)
	ft.scanErrs = 3
	ft.moveErrs = 2
	m, err := NewMigrator(MigratorConfig{Nodes: 2, Backoff: time.Microsecond}, ft)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := m.Run(nil)
	if err != nil || moved != 10 {
		t.Fatalf("moved %d, err %v", moved, err)
	}
}

func TestMigratorGivesUpAfterMaxAttempts(t *testing.T) {
	ft := seedTransport(1, 3)
	ft.moveErrs = 1000
	m, err := NewMigrator(MigratorConfig{Nodes: 1, MaxAttempts: 3, Backoff: time.Microsecond}, ft)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil); err == nil {
		t.Fatal("permanently failing move did not abort the migration")
	}
}

func TestMigratorStop(t *testing.T) {
	ft := seedTransport(1, 1000)
	stop := make(chan struct{})
	// Throttle hard so the run is guaranteed to still be in flight when
	// stop closes.
	m, err := NewMigrator(MigratorConfig{
		Nodes:   1,
		Limiter: overload.NewTokenBucket(50, 1),
	}, ft)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.Run(stop)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("stop returned %v, want ErrStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("migrator did not stop")
	}
	if m.Moved() >= 1000 {
		t.Fatal("migration finished despite the throttle; stop was never exercised")
	}
}

func TestMigratorHonorsRateLimit(t *testing.T) {
	const keys = 60
	ft := seedTransport(1, keys)
	rate := 1000.0
	m, err := NewMigrator(MigratorConfig{
		Nodes:   1,
		Limiter: overload.NewTokenBucket(rate, 1),
	}, ft)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	moved, err := m.Run(nil)
	elapsed := time.Since(start)
	if err != nil || moved != keys {
		t.Fatalf("moved %d, err %v", moved, err)
	}
	// 60 keys at 1000/s with burst 1 needs >= ~59ms; allow generous
	// scheduling slack below that floor.
	if min := time.Duration(float64(keys-1) / rate * 0.7 * float64(time.Second)); elapsed < min {
		t.Fatalf("migration of %d keys at %v/s finished in %v (< %v): limiter not applied",
			keys, rate, elapsed, min)
	}
}
