package rotation

import (
	"errors"
	"testing"

	"securecache/internal/partition"
)

func TestEpochPartitionerLifecycle(t *testing.T) {
	old := partition.NewHash(8, 3, 1)
	next := partition.NewHash(8, 3, 2)
	ep := NewEpochPartitioner(old)

	if ep.Epoch() != 1 || ep.Rotating() {
		t.Fatalf("fresh partitioner: epoch %d, rotating %v", ep.Epoch(), ep.Rotating())
	}
	if got := ep.Group(42); !sameInts(got, old.Group(42)) {
		t.Fatalf("pre-rotation group %v != old mapping %v", got, old.Group(42))
	}

	epoch, err := ep.Begin(next)
	if err != nil || epoch != 2 {
		t.Fatalf("Begin: epoch %d, err %v", epoch, err)
	}
	if !ep.Rotating() {
		t.Fatal("not rotating after Begin")
	}
	if got := ep.Group(42); !sameInts(got, next.Group(42)) {
		t.Fatalf("mid-rotation group %v should follow the new mapping %v", got, next.Group(42))
	}
	_, cur, prev := ep.Snapshot()
	if cur != next || prev != old {
		t.Fatal("snapshot generations wrong")
	}
	if _, err := ep.Begin(partition.NewHash(8, 3, 3)); !errors.Is(err, ErrRotationActive) {
		t.Fatalf("double Begin: %v, want ErrRotationActive", err)
	}

	ep.MarkMigrated(42)
	if !ep.Migrated(42) || ep.Migrated(43) || ep.MigratedCount() != 1 {
		t.Fatal("migration watermark wrong")
	}

	ep.Commit()
	if ep.Rotating() || ep.Migrated(42) {
		t.Fatal("commit did not clear rotation state")
	}
	if ep.Epoch() != 2 {
		t.Fatalf("epoch %d after commit, want 2", ep.Epoch())
	}
}

func TestEpochPartitionerAbort(t *testing.T) {
	old := partition.NewHash(4, 2, 1)
	ep := NewEpochPartitioner(old)
	if err := ep.Abort(); err == nil {
		t.Fatal("Abort outside a rotation should fail")
	}
	if _, err := ep.Begin(partition.NewHash(4, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := ep.Abort(); err != nil {
		t.Fatal(err)
	}
	if ep.Rotating() {
		t.Fatal("still rotating after abort")
	}
	if got := ep.Group(7); !sameInts(got, old.Group(7)) {
		t.Fatal("abort did not revert the mapping")
	}
	// The epoch must advance past the aborted generation so entries
	// stamped with it read as stale, never as current.
	if ep.Epoch() != 3 {
		t.Fatalf("epoch %d after abort, want 3", ep.Epoch())
	}
}

func TestEpochPartitionerRejectsNodeCountChange(t *testing.T) {
	ep := NewEpochPartitioner(partition.NewHash(4, 2, 1))
	if _, err := ep.Begin(partition.NewHash(5, 2, 2)); err == nil {
		t.Fatal("node-count change accepted")
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
