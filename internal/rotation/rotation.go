// Package rotation implements epoch-based secret remapping: rotating the
// key -> replica-group mapping to a fresh secret seed while the cluster
// keeps serving.
//
// The paper's provisioning bound (Theorem 1 / Eq. 10) rests on
// Assumption 1 — the mapping is unpredictable to clients. Once the seed
// leaks, a targeted adversary concentrates its whole request stream on
// one replica group and the bound collapses (internal/attack shows
// this). Rotation restores the secrecy premise the same way DistCache's
// re-randomization defeats a learning adversary: pick a new seed, move
// every key to its new group, retire the old mapping.
//
// Doing that live needs three pieces, all here:
//
//   - EpochPartitioner: a versioned partitioner holding the current and
//     (during a rotation) previous generation, plus a per-key migration
//     watermark so readers can skip the old-generation fallback once a
//     key has provably moved.
//   - Migrator: a background engine that streams un-migrated entries out
//     of every node (via the owner-provided Transport, in practice the
//     proto SCAN op) and re-places them under the new mapping,
//     rate-limited through an overload.TokenBucket so migration traffic
//     cannot itself become the overload it exists to prevent.
//   - Responder (responder.go): the guard -> rotation trigger with
//     hysteresis and cooldown, so a flapping detector cannot thrash the
//     cluster through back-to-back migrations.
package rotation

import (
	"errors"
	"fmt"
	"sync"

	"securecache/internal/partition"
)

// ErrRotationActive reports a Begin while a rotation is already open.
var ErrRotationActive = errors.New("rotation: rotation already in progress")

// EpochPartitioner is a partition.Partitioner whose mapping can be
// swapped live. Epochs count up from 1; during a rotation both the new
// (current) and old (previous) generations are visible so callers can
// run a dual-epoch read path. It is safe for concurrent use.
type EpochPartitioner struct {
	mu       sync.RWMutex
	epoch    uint32
	cur      partition.Partitioner
	prev     partition.Partitioner
	migrated map[uint64]struct{} // key IDs settled at the current epoch
}

// NewEpochPartitioner wraps an initial mapping as epoch 1.
func NewEpochPartitioner(p partition.Partitioner) *EpochPartitioner {
	if p == nil {
		panic("rotation: nil partitioner")
	}
	return &EpochPartitioner{epoch: 1, cur: p}
}

// Epoch returns the current epoch number.
func (e *EpochPartitioner) Epoch() uint32 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epoch
}

// Rotating reports whether a rotation is open (a previous generation is
// still visible).
func (e *EpochPartitioner) Rotating() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.prev != nil
}

// Snapshot returns the epoch plus the current and previous generations
// (prev is nil outside a rotation). The three values are mutually
// consistent — callers should route one request off one snapshot rather
// than re-reading state between steps.
func (e *EpochPartitioner) Snapshot() (epoch uint32, cur, prev partition.Partitioner) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epoch, e.cur, e.prev
}

// Begin opens a rotation to the next generation and returns the new
// epoch number. The node count must match (the cluster membership is
// fixed across a seed rotation; a node-set change goes through
// BeginMembership). Fails with ErrRotationActive if a rotation is
// already open.
func (e *EpochPartitioner) Begin(next partition.Partitioner) (uint32, error) {
	return e.begin(next, false)
}

// BeginMembership opens an epoch change whose new generation may cover
// a different node set (a join or drain): the same dual-generation
// machinery as a seed rotation, with the node-count check relaxed. The
// caller owns the membership bookkeeping — this type only versions the
// mapping.
func (e *EpochPartitioner) BeginMembership(next partition.Partitioner) (uint32, error) {
	return e.begin(next, true)
}

func (e *EpochPartitioner) begin(next partition.Partitioner, allowResize bool) (uint32, error) {
	if next == nil {
		return 0, errors.New("rotation: Begin with nil partitioner")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.prev != nil {
		return 0, ErrRotationActive
	}
	if !allowResize && next.Nodes() != e.cur.Nodes() {
		return 0, fmt.Errorf("rotation: node count %d != current %d", next.Nodes(), e.cur.Nodes())
	}
	e.prev = e.cur
	e.cur = next
	e.epoch++
	e.migrated = make(map[uint64]struct{})
	return e.epoch, nil
}

// Reverse swaps the open rotation's direction: the previous generation
// becomes current again (under a fresh epoch number) while the rotation
// STAYS OPEN, with the abandoned generation now playing the "previous"
// role. This is how a failed view change rolls back without losing
// data: entries already moved live only under the abandoned mapping, so
// a plain Abort would orphan them — instead the caller reverses and
// runs a forward migration back toward the old mapping, committing once
// the scans drain. The migration watermark resets (nothing has migrated
// toward the restored generation yet).
func (e *EpochPartitioner) Reverse() (uint32, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.prev == nil {
		return 0, errors.New("rotation: Reverse with no rotation open")
	}
	e.cur, e.prev = e.prev, e.cur
	e.epoch++
	e.migrated = make(map[uint64]struct{})
	return e.epoch, nil
}

// Commit closes the rotation: the previous generation and the migration
// watermark are dropped. Call only after the migrator has drained.
func (e *EpochPartitioner) Commit() {
	e.mu.Lock()
	e.prev = nil
	e.migrated = nil
	e.mu.Unlock()
}

// Abort cancels an open rotation, reverting to the previous mapping
// under a fresh epoch number (entries already stamped with the aborted
// epoch must read as stale, so the epoch never goes backwards).
func (e *EpochPartitioner) Abort() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.prev == nil {
		return errors.New("rotation: Abort with no rotation open")
	}
	e.cur = e.prev
	e.prev = nil
	e.epoch++
	e.migrated = nil
	return nil
}

// MarkMigrated records that a key ID is fully present in its
// current-epoch replica group, letting readers skip the old-generation
// fallback. No-op outside a rotation.
func (e *EpochPartitioner) MarkMigrated(id uint64) {
	e.mu.Lock()
	if e.migrated != nil {
		e.migrated[id] = struct{}{}
	}
	e.mu.Unlock()
}

// Migrated reports whether a key ID has been marked migrated in the open
// rotation (false outside one).
func (e *EpochPartitioner) Migrated(id uint64) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.migrated == nil {
		return false
	}
	_, ok := e.migrated[id]
	return ok
}

// MigratedCount returns the size of the migration watermark.
func (e *EpochPartitioner) MigratedCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.migrated)
}

// Nodes implements partition.Partitioner against the current generation.
func (e *EpochPartitioner) Nodes() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cur.Nodes()
}

// Replicas implements partition.Partitioner against the current
// generation.
func (e *EpochPartitioner) Replicas() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cur.Replicas()
}

// Group implements partition.Partitioner against the current generation.
func (e *EpochPartitioner) Group(key uint64) []int {
	e.mu.RLock()
	p := e.cur
	e.mu.RUnlock()
	return p.Group(key)
}

// GroupAppend implements partition.Partitioner against the current
// generation.
func (e *EpochPartitioner) GroupAppend(dst []int, key uint64) []int {
	e.mu.RLock()
	p := e.cur
	e.mu.RUnlock()
	return p.GroupAppend(dst, key)
}

var _ partition.Partitioner = (*EpochPartitioner)(nil)
