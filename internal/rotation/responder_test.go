package rotation

import (
	"errors"
	"testing"
	"time"

	"securecache/internal/guard"
)

func obsWith(v guard.Verdict) guard.Observation {
	return guard.Observation{Verdict: v}
}

func TestResponderRequiresConsecutiveWindows(t *testing.T) {
	fired := 0
	r, err := NewResponder(ResponderConfig{
		Windows: 3,
		Rotate:  func() error { fired++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	seq := []guard.Verdict{
		guard.VerdictCritical,
		guard.VerdictCritical,
		guard.VerdictBalanced, // streak broken
		guard.VerdictCritical,
		guard.VerdictCritical,
	}
	for _, v := range seq {
		if ok, err := r.Observe(obsWith(v)); err != nil || ok {
			t.Fatalf("premature fire on %s", v)
		}
	}
	ok, err := r.Observe(obsWith(guard.VerdictCritical))
	if err != nil || !ok || fired != 1 {
		t.Fatalf("third consecutive critical: fired=%v err=%v count=%d", ok, err, fired)
	}
}

func TestResponderCooldown(t *testing.T) {
	now := time.Unix(1000, 0)
	fired := 0
	r, err := NewResponder(ResponderConfig{
		Windows:  1,
		Cooldown: time.Minute,
		Rotate:   func() error { fired++; return nil },
		Now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := r.Observe(obsWith(guard.VerdictCritical)); !ok {
		t.Fatal("first critical did not fire")
	}
	// The detector stays hot right after a rotation (migration is still
	// draining) — the cooldown must absorb that.
	for i := 0; i < 10; i++ {
		now = now.Add(5 * time.Second)
		if ok, _ := r.Observe(obsWith(guard.VerdictCritical)); ok {
			t.Fatal("fired inside cooldown")
		}
	}
	now = now.Add(time.Minute)
	if ok, _ := r.Observe(obsWith(guard.VerdictCritical)); !ok || fired != 2 {
		t.Fatalf("post-cooldown fire: ok=%v fired=%d", ok, fired)
	}
}

func TestResponderTriggerLevel(t *testing.T) {
	fired := 0
	r, err := NewResponder(ResponderConfig{
		Trigger: guard.VerdictSkewed,
		Windows: 1,
		Rotate:  func() error { fired++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// Critical outranks the skewed trigger; balanced does not reach it.
	if ok, _ := r.Observe(obsWith(guard.VerdictBalanced)); ok {
		t.Fatal("fired on balanced")
	}
	if ok, _ := r.Observe(obsWith(guard.VerdictCritical)); !ok {
		t.Fatal("critical did not satisfy a skewed trigger")
	}
	if fired != 1 {
		t.Fatalf("fired %d", fired)
	}
}

func TestResponderRotateErrorStartsCooldown(t *testing.T) {
	now := time.Unix(0, 0)
	boom := errors.New("rotation already in progress")
	calls := 0
	r, err := NewResponder(ResponderConfig{
		Windows:  1,
		Cooldown: time.Minute,
		Rotate:   func() error { calls++; return boom },
		Now:      func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := r.Observe(obsWith(guard.VerdictCritical)); ok || !errors.Is(err, boom) {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// The failed trigger must not be hammered every window.
	now = now.Add(time.Second)
	if _, err := r.Observe(obsWith(guard.VerdictCritical)); err != nil {
		t.Fatal("re-fired during cooldown after a failed trigger")
	}
	if calls != 1 || r.Fired() != 0 {
		t.Fatalf("calls=%d fired=%d", calls, r.Fired())
	}
}

func TestResponderConfigValidation(t *testing.T) {
	if _, err := NewResponder(ResponderConfig{}); err == nil {
		t.Fatal("nil Rotate accepted")
	}
	if _, err := NewResponder(ResponderConfig{
		Trigger: guard.VerdictBalanced,
		Rotate:  func() error { return nil },
	}); err == nil {
		t.Fatal("balanced trigger accepted")
	}
}
