package rotation

import (
	"errors"
	"fmt"
	"time"

	"securecache/internal/guard"
)

// ResponderConfig parameterizes a Responder.
type ResponderConfig struct {
	// Trigger is the minimum guard verdict that counts toward firing
	// (default guard.VerdictCritical; guard.VerdictSkewed responds
	// earlier at the cost of reacting to organic skew).
	Trigger guard.Verdict
	// Windows is how many consecutive triggering observations are
	// required before rotating (default 2). This is the hysteresis: a
	// single noisy window — one hot scrape interval — must not move
	// the whole key space.
	Windows int
	// Cooldown is the minimum spacing between rotations (default 1m).
	// A rotation leaves the detector hot until the attacker's learned
	// keys stop concentrating, so without a cooldown the responder
	// would fire again on its own wake.
	Cooldown time.Duration
	// Rotate triggers the rotation (required). In production it POSTs
	// the frontend's /rotate admin verb.
	Rotate func() error
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Responder turns guard observations into rotation triggers with
// hysteresis and cooldown. Like the guard itself it is not safe for
// concurrent use: feed it from the single observation loop.
type Responder struct {
	cfg    ResponderConfig
	streak int
	last   time.Time
	fired  int
}

// NewResponder validates cfg and returns a Responder.
func NewResponder(cfg ResponderConfig) (*Responder, error) {
	if cfg.Rotate == nil {
		return nil, errors.New("rotation: ResponderConfig.Rotate is required")
	}
	if cfg.Trigger == "" {
		cfg.Trigger = guard.VerdictCritical
	}
	if verdictRank(cfg.Trigger) <= verdictRank(guard.VerdictBalanced) {
		return nil, fmt.Errorf("rotation: trigger verdict %q would fire on balanced load", cfg.Trigger)
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 2
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Responder{cfg: cfg}, nil
}

// Observe ingests one guard observation and fires the rotation once the
// trigger verdict has held for the configured number of consecutive
// windows and the cooldown has elapsed. It returns whether a rotation
// was triggered; a Rotate error is returned as-is (the cooldown still
// starts, so a failing trigger is not hammered every window).
func (r *Responder) Observe(obs guard.Observation) (bool, error) {
	if verdictRank(obs.Verdict) < verdictRank(r.cfg.Trigger) {
		r.streak = 0
		return false, nil
	}
	r.streak++
	if r.streak < r.cfg.Windows {
		return false, nil
	}
	now := r.cfg.Now()
	if !r.last.IsZero() && now.Sub(r.last) < r.cfg.Cooldown {
		return false, nil
	}
	r.last = now
	r.streak = 0
	if err := r.cfg.Rotate(); err != nil {
		return false, err
	}
	r.fired++
	return true, nil
}

// Fired returns how many rotations this responder has triggered.
func (r *Responder) Fired() int { return r.fired }

// verdictRank orders verdicts by severity.
func verdictRank(v guard.Verdict) int {
	switch v {
	case guard.VerdictBalanced:
		return 0
	case guard.VerdictSkewed:
		return 1
	case guard.VerdictCritical:
		return 2
	default:
		return -1
	}
}
