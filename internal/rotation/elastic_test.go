package rotation

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"securecache/internal/partition"
)

func TestBeginMembershipAllowsResize(t *testing.T) {
	e := NewEpochPartitioner(partition.NewHash(4, 2, 1))
	// The strict Begin still refuses a node-count change.
	if _, err := e.Begin(partition.NewHash(5, 2, 1)); err == nil {
		t.Fatal("Begin accepted a node-count change")
	}
	epoch, err := e.BeginMembership(partition.NewRemap(partition.NewHash(5, 2, 1), []int{0, 1, 2, 3, 4}))
	if err != nil {
		t.Fatalf("BeginMembership: %v", err)
	}
	if epoch != 2 || !e.Rotating() {
		t.Fatalf("epoch %d rotating %v after BeginMembership", epoch, e.Rotating())
	}
	if e.Nodes() != 5 {
		t.Fatalf("current generation has %d nodes, want 5", e.Nodes())
	}
	_, cur, prev := e.Snapshot()
	if cur.Nodes() != 5 || prev.Nodes() != 4 {
		t.Fatalf("snapshot nodes cur=%d prev=%d", cur.Nodes(), prev.Nodes())
	}
	// Still one change at a time.
	if _, err := e.BeginMembership(partition.NewHash(6, 2, 1)); !errors.Is(err, ErrRotationActive) {
		t.Fatalf("second BeginMembership = %v, want ErrRotationActive", err)
	}
}

func TestReverseSwapsGenerationsAndStaysOpen(t *testing.T) {
	old := partition.NewHash(4, 2, 1)
	next := partition.NewHash(5, 2, 1)
	e := NewEpochPartitioner(old)
	if _, err := e.Reverse(); err == nil {
		t.Fatal("Reverse with no rotation open succeeded")
	}
	if _, err := e.BeginMembership(next); err != nil {
		t.Fatal(err)
	}
	e.MarkMigrated(42)
	epoch, err := e.Reverse()
	if err != nil {
		t.Fatalf("Reverse: %v", err)
	}
	if epoch != 3 {
		t.Fatalf("epoch after Reverse = %d, want 3", epoch)
	}
	if !e.Rotating() {
		t.Fatal("rotation closed by Reverse; must stay open for the rollback migration")
	}
	_, cur, prev := e.Snapshot()
	if cur != partition.Partitioner(old) || prev != partition.Partitioner(next) {
		t.Fatal("Reverse did not swap generations")
	}
	if e.Migrated(42) {
		t.Fatal("watermark survived Reverse; nothing has migrated toward the restored generation")
	}
	e.Commit()
	if e.Rotating() {
		t.Fatal("still rotating after commit")
	}
	if e.Nodes() != 4 {
		t.Fatalf("committed generation has %d nodes, want 4 (the original)", e.Nodes())
	}
}

// sparseTransport is an in-memory cluster keyed by arbitrary node IDs,
// with a configurable set of dead nodes whose scans fail.
type sparseTransport struct {
	mu    sync.Mutex
	nodes map[int][]Entry
	moved []Entry
	dead  map[int]bool
}

func newSparseTransport(perNode int, ids ...int) *sparseTransport {
	st := &sparseTransport{nodes: make(map[int][]Entry), dead: make(map[int]bool)}
	for _, id := range ids {
		for i := 0; i < perNode; i++ {
			st.nodes[id] = append(st.nodes[id], Entry{Key: fmt.Sprintf("n%d-k%d", id, i), Value: []byte("v")})
		}
	}
	return st
}

func (st *sparseTransport) Scan(node int, cursor uint64, limit int) ([]Entry, uint64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.dead[node] {
		return nil, 0, errors.New("connection refused")
	}
	entries, ok := st.nodes[node]
	if !ok {
		return nil, 0, fmt.Errorf("scan of unknown node %d", node)
	}
	var page []Entry
	start := int(cursor)
	for i := start; i < len(entries) && len(page) < limit; i++ {
		page = append(page, entries[i])
	}
	next := uint64(start + len(page))
	if int(next) >= len(entries) {
		next = 0
	}
	return page, next, nil
}

func (st *sparseTransport) Move(e Entry) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.moved = append(st.moved, e)
	for n := range st.nodes {
		kept := st.nodes[n][:0]
		for _, cur := range st.nodes[n] {
			if cur.Key != e.Key {
				kept = append(kept, cur)
			}
		}
		st.nodes[n] = kept
	}
	return nil
}

func TestMigratorScansExplicitNodeIDs(t *testing.T) {
	st := newSparseTransport(10, 2, 5, 9)
	m, err := NewMigrator(MigratorConfig{NodeIDs: []int{2, 5, 9}, Batch: 4}, st)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 30 {
		t.Fatalf("moved %d, want 30", moved)
	}
	if skipped := m.Skipped(); len(skipped) != 0 {
		t.Fatalf("skipped %v on a healthy cluster", skipped)
	}
}

func TestMigratorSkipsUnavailableNode(t *testing.T) {
	st := newSparseTransport(8, 1, 2, 3)
	st.dead[2] = true
	var skips []int
	m, err := NewMigrator(MigratorConfig{
		NodeIDs:     []int{1, 2, 3},
		MaxAttempts: 2,
		Unavailable: func(node int) bool { return node == 2 },
		OnSkip:      func(node int) { skips = append(skips, node) },
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	moved, err := m.Run(nil)
	if err != nil {
		t.Fatalf("Run with a skippable dead node: %v", err)
	}
	// Node 2's entries are unique here (no replication in the fake), so
	// only nodes 1 and 3 drain.
	if moved != 16 {
		t.Fatalf("moved %d, want 16", moved)
	}
	if got := m.Skipped(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Skipped() = %v, want [2]", got)
	}
	if len(skips) == 0 || skips[0] != 2 {
		t.Fatalf("OnSkip calls = %v", skips)
	}
	// The node recovers: the next Run drains it and the skip list clears.
	st.mu.Lock()
	st.dead[2] = false
	st.mu.Unlock()
	m2, err := NewMigrator(MigratorConfig{
		NodeIDs:     []int{1, 2, 3},
		Unavailable: func(node int) bool { return false },
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	moved2, err := m2.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if moved2 != 8 {
		t.Fatalf("recovery pass moved %d, want 8", moved2)
	}
	if got := m2.Skipped(); len(got) != 0 {
		t.Fatalf("Skipped() after recovery = %v", got)
	}
}

func TestMigratorDemotesMidScanDeathToSkip(t *testing.T) {
	// The node is reachable when the pass starts but dies mid-scan; once
	// the breaker marks it unavailable the exhausted scan becomes a skip
	// rather than a migration failure.
	st := newSparseTransport(8, 1, 2)
	unavailable := false
	m, err := NewMigrator(MigratorConfig{
		NodeIDs:     []int{1, 2},
		MaxAttempts: 2,
		Unavailable: func(node int) bool { return node == 2 && unavailable },
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.dead[2] = true
	st.mu.Unlock()
	unavailable = true
	moved, err := m.Run(nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if moved != 8 {
		t.Fatalf("moved %d, want 8 (node 1 only)", moved)
	}
	if got := m.Skipped(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Skipped() = %v, want [2]", got)
	}
}
