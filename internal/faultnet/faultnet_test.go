package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// startEcho returns the address of a TCP echo server that lives until
// the test ends.
func startEcho(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(conn)
		}
	}()
	return l.Addr().String()
}

func startProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := Start(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func roundTrip(t *testing.T, addr string, msg []byte, timeout time.Duration) ([]byte, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	_, err = io.ReadFull(conn, got)
	return got, err
}

func TestTransparentForwarding(t *testing.T) {
	p := startProxy(t, startEcho(t))
	msg := []byte("hello through the proxy")
	got, err := roundTrip(t, p.Addr(), msg, 2*time.Second)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo through clear proxy = %q, %v", got, err)
	}
	if acc, _, fwd := statsOf(p); acc != 1 || fwd < uint64(2*len(msg)) {
		t.Fatalf("stats: accepted %d, forwarded %d bytes", acc, fwd)
	}
}

func statsOf(p *Proxy) (uint64, uint64, uint64) { return p.Stats() }

func TestLatencyInjection(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetFaults(Faults{Latency: 100 * time.Millisecond})
	start := time.Now()
	msg := []byte("slow")
	got, err := roundTrip(t, p.Addr(), msg, 3*time.Second)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo with latency = %q, %v", got, err)
	}
	// One chunk each way: at least 2×100ms.
	if elapsed := time.Since(start); elapsed < 180*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~200ms of injected latency", elapsed)
	}
}

func TestBlackholeStallsThenRecovers(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetFaults(Faults{Blackhole: true})
	if _, err := roundTrip(t, p.Addr(), []byte("void"), 200*time.Millisecond); err == nil {
		t.Fatal("read through a blackhole succeeded")
	}
	p.Clear()
	msg := []byte("back")
	got, err := roundTrip(t, p.Addr(), msg, 2*time.Second)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo after clearing blackhole = %q, %v", got, err)
	}
}

func TestRejectConns(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetFaults(Faults{RejectConns: true})
	// The dial itself may succeed (the listener accepts then closes), but
	// no data ever comes back.
	if _, err := roundTrip(t, p.Addr(), []byte("x"), 300*time.Millisecond); err == nil {
		t.Fatal("round trip through rejecting proxy succeeded")
	}
	_, rejected, _ := p.Stats()
	if rejected == 0 {
		t.Fatal("no connection counted as rejected")
	}
	p.Clear()
	if _, err := roundTrip(t, p.Addr(), []byte("y"), 2*time.Second); err != nil {
		t.Fatalf("round trip after clearing rejection: %v", err)
	}
}

func TestTruncateMidStream(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetFaults(Faults{TruncateAfterBytes: 3})
	conn, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(conn)
	if err != nil && !isClosedNetErr(err) {
		t.Fatalf("read after truncation: %v", err)
	}
	if string(got) != "012" {
		t.Fatalf("received %q, want exactly the 3 pre-truncation bytes", got)
	}
}

func isClosedNetErr(err error) bool {
	_, ok := err.(net.Error)
	return ok
}

func TestCloseExistingSeversFlows(t *testing.T) {
	p := startProxy(t, startEcho(t))
	conn, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(conn, one); err != nil {
		t.Fatal(err)
	}
	p.CloseExisting()
	if _, err := conn.Read(one); err == nil {
		t.Fatal("read on a severed flow succeeded")
	}
}

// TestOneWayDrops pins the asymmetric-partition semantics: each drop
// direction silences exactly its own direction, the connection stays
// open throughout, and clearing the fault heals the SAME connection —
// no reconnect required (silence, not reset, is the failure mode).
func TestOneWayDrops(t *testing.T) {
	p := startProxy(t, startEcho(t))
	conn, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Healthy baseline on this connection.
	echo := func(msg string, timeout time.Duration) (string, error) {
		conn.SetDeadline(time.Now().Add(timeout))
		if _, err := conn.Write([]byte(msg)); err != nil {
			return "", err
		}
		got := make([]byte, len(msg))
		_, err := io.ReadFull(conn, got)
		return string(got), err
	}
	if got, err := echo("base", 2*time.Second); err != nil || got != "base" {
		t.Fatalf("baseline echo = %q, %v", got, err)
	}

	// DropToServer: the request never reaches the echo server, so no
	// reply ever comes — but the read fails with a timeout, not a reset.
	p.SetFaults(Faults{DropToServer: true})
	if _, err := echo("lost", 200*time.Millisecond); err == nil {
		t.Fatal("echo through a client->server drop succeeded")
	} else if !isTimeout(err) {
		t.Fatalf("client->server drop produced %v, want a timeout (silence, not reset)", err)
	}

	// Heal: the SAME connection works again.
	p.Clear()
	if got, err := echo("healed", 2*time.Second); err != nil || got != "healed" {
		t.Fatalf("echo after heal = %q, %v", got, err)
	}

	// DropToClient: the server processes the request (bytes_forwarded
	// climbs on the inbound direction) but the reply is swallowed.
	_, _, fwdBefore := p.Stats()
	p.SetFaults(Faults{DropToClient: true})
	if _, err := echo("ack-lost", 200*time.Millisecond); err == nil {
		t.Fatal("echo through a server->client drop succeeded")
	} else if !isTimeout(err) {
		t.Fatalf("server->client drop produced %v, want a timeout", err)
	}
	if _, _, fwdAfter := p.Stats(); fwdAfter <= fwdBefore {
		t.Fatal("request bytes did not reach the server under DropToClient")
	}

	// Heal again; the swallowed reply is gone for good (the server wrote
	// it during the drop window), so drain with a fresh round trip on a
	// new connection instead of asserting on the poisoned one.
	p.Clear()
	msg := []byte("fresh")
	got, err := roundTrip(t, p.Addr(), msg, 2*time.Second)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("fresh echo after heal = %q, %v", got, err)
	}
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// TestPartitionWindows checks the flap-schedule helper: windows
// alternate fault/heal for the requested cycle count and RunSchedule
// leaves the link healed without closing one-way-dropped connections.
func TestPartitionWindows(t *testing.T) {
	fault := Faults{DropToServer: true}
	steps := PartitionWindows(fault, 40*time.Millisecond, 40*time.Millisecond, 2)
	if len(steps) != 4 {
		t.Fatalf("PartitionWindows produced %d steps, want 4", len(steps))
	}
	for i, s := range steps {
		if i%2 == 0 && s.Faults != fault {
			t.Fatalf("step %d = %+v, want the fault window", i, s.Faults)
		}
		if i%2 == 1 && s.Faults != (Faults{}) {
			t.Fatalf("step %d = %+v, want a heal window", i, s.Faults)
		}
	}

	p := startProxy(t, startEcho(t))
	conn, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.RunSchedule(steps)
	}()
	<-done
	// One-way windows must not have severed the idle connection: it
	// still round-trips after the schedule drains.
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Fatalf("write after flap schedule: %v", err)
	}
	got := make([]byte, 2)
	if _, err := io.ReadFull(conn, got); err != nil || string(got) != "ok" {
		t.Fatalf("echo after flap schedule = %q, %v", got, err)
	}
}

func TestRunScheduleAppliesAndClears(t *testing.T) {
	p := startProxy(t, startEcho(t))
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.RunSchedule([]Step{
			{Faults: Faults{Blackhole: true}, Dur: 80 * time.Millisecond},
			{Faults: Faults{Latency: time.Millisecond}, Dur: 80 * time.Millisecond},
		})
	}()
	time.Sleep(20 * time.Millisecond)
	if !p.CurrentFaults().Blackhole {
		t.Fatal("schedule step 1 not active")
	}
	<-done
	if f := p.CurrentFaults(); f != (Faults{}) {
		t.Fatalf("faults after schedule = %+v, want cleared", f)
	}
	msg := []byte("post-schedule")
	got, err := roundTrip(t, p.Addr(), msg, 2*time.Second)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo after schedule = %q, %v", got, err)
	}
}
