package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// startEcho returns the address of a TCP echo server that lives until
// the test ends.
func startEcho(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(conn)
		}
	}()
	return l.Addr().String()
}

func startProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := Start(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func roundTrip(t *testing.T, addr string, msg []byte, timeout time.Duration) ([]byte, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := conn.Write(msg); err != nil {
		return nil, err
	}
	got := make([]byte, len(msg))
	_, err = io.ReadFull(conn, got)
	return got, err
}

func TestTransparentForwarding(t *testing.T) {
	p := startProxy(t, startEcho(t))
	msg := []byte("hello through the proxy")
	got, err := roundTrip(t, p.Addr(), msg, 2*time.Second)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo through clear proxy = %q, %v", got, err)
	}
	if acc, _, fwd := statsOf(p); acc != 1 || fwd < uint64(2*len(msg)) {
		t.Fatalf("stats: accepted %d, forwarded %d bytes", acc, fwd)
	}
}

func statsOf(p *Proxy) (uint64, uint64, uint64) { return p.Stats() }

func TestLatencyInjection(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetFaults(Faults{Latency: 100 * time.Millisecond})
	start := time.Now()
	msg := []byte("slow")
	got, err := roundTrip(t, p.Addr(), msg, 3*time.Second)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo with latency = %q, %v", got, err)
	}
	// One chunk each way: at least 2×100ms.
	if elapsed := time.Since(start); elapsed < 180*time.Millisecond {
		t.Fatalf("round trip took %v, want >= ~200ms of injected latency", elapsed)
	}
}

func TestBlackholeStallsThenRecovers(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetFaults(Faults{Blackhole: true})
	if _, err := roundTrip(t, p.Addr(), []byte("void"), 200*time.Millisecond); err == nil {
		t.Fatal("read through a blackhole succeeded")
	}
	p.Clear()
	msg := []byte("back")
	got, err := roundTrip(t, p.Addr(), msg, 2*time.Second)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo after clearing blackhole = %q, %v", got, err)
	}
}

func TestRejectConns(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetFaults(Faults{RejectConns: true})
	// The dial itself may succeed (the listener accepts then closes), but
	// no data ever comes back.
	if _, err := roundTrip(t, p.Addr(), []byte("x"), 300*time.Millisecond); err == nil {
		t.Fatal("round trip through rejecting proxy succeeded")
	}
	_, rejected, _ := p.Stats()
	if rejected == 0 {
		t.Fatal("no connection counted as rejected")
	}
	p.Clear()
	if _, err := roundTrip(t, p.Addr(), []byte("y"), 2*time.Second); err != nil {
		t.Fatalf("round trip after clearing rejection: %v", err)
	}
}

func TestTruncateMidStream(t *testing.T) {
	p := startProxy(t, startEcho(t))
	p.SetFaults(Faults{TruncateAfterBytes: 3})
	conn, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(conn)
	if err != nil && !isClosedNetErr(err) {
		t.Fatalf("read after truncation: %v", err)
	}
	if string(got) != "012" {
		t.Fatalf("received %q, want exactly the 3 pre-truncation bytes", got)
	}
}

func isClosedNetErr(err error) bool {
	_, ok := err.(net.Error)
	return ok
}

func TestCloseExistingSeversFlows(t *testing.T) {
	p := startProxy(t, startEcho(t))
	conn, err := net.DialTimeout("tcp", p.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1)
	if _, err := io.ReadFull(conn, one); err != nil {
		t.Fatal(err)
	}
	p.CloseExisting()
	if _, err := conn.Read(one); err == nil {
		t.Fatal("read on a severed flow succeeded")
	}
}

func TestRunScheduleAppliesAndClears(t *testing.T) {
	p := startProxy(t, startEcho(t))
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.RunSchedule([]Step{
			{Faults: Faults{Blackhole: true}, Dur: 80 * time.Millisecond},
			{Faults: Faults{Latency: time.Millisecond}, Dur: 80 * time.Millisecond},
		})
	}()
	time.Sleep(20 * time.Millisecond)
	if !p.CurrentFaults().Blackhole {
		t.Fatal("schedule step 1 not active")
	}
	<-done
	if f := p.CurrentFaults(); f != (Faults{}) {
		t.Fatalf("faults after schedule = %+v, want cleared", f)
	}
	msg := []byte("post-schedule")
	got, err := roundTrip(t, p.Addr(), msg, 2*time.Second)
	if err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("echo after schedule = %q, %v", got, err)
	}
}
