// Package faultnet is an in-process TCP fault-injection proxy for chaos
// testing the kvstore over real sockets.
//
// A Proxy listens on loopback and forwards byte streams to a fixed
// target address. The faults active at any moment are a plain value
// (Faults) swapped atomically with SetFaults, so a test can script a
// deterministic schedule — add latency, throttle bandwidth, truncate a
// response mid-frame, blackhole the link, flap it up and down — while
// clients and servers run unmodified. Faults apply per forwarded chunk,
// so a change takes effect on in-flight connections, not only new ones.
//
// The proxy itself never fabricates protocol bytes: every failure mode
// it produces (stalls, partial frames, connection resets) is one a real
// network can produce, which is exactly what the chaos suite asserts the
// stack survives.
package faultnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Faults describes the failure modes currently injected. The zero value
// is a transparent proxy.
type Faults struct {
	// Latency is added before each forwarded chunk, in each direction
	// (so one request/response round trip pays roughly 2×Latency).
	Latency time.Duration
	// BandwidthBps throttles each connection direction to this many
	// bytes per second (0 = unlimited).
	BandwidthBps int
	// Blackhole swallows all bytes in both directions: connections stay
	// open but nothing is delivered — the shape of a silent partition
	// or a switch eating packets.
	Blackhole bool
	// DropToServer swallows only client→server bytes; server→client
	// traffic still flows. Connections stay open, so the client sees its
	// requests vanish into silence (no reset, no refusal) while anything
	// the server was still sending arrives fine — the shape of an
	// ASYMMETRIC (one-way) partition, which distributed systems routinely
	// mishandle because each side draws a different conclusion about who
	// is alive.
	DropToServer bool
	// DropToClient is the mirror image: requests reach the server and
	// are processed, but every response is swallowed. This is the
	// nastiest write-path fault — the server applied the operation, the
	// client cannot know — and exactly the case consistency histories
	// must record as an ambiguous ("maybe applied") outcome.
	DropToClient bool
	// RejectConns closes new client connections immediately (the shape
	// of a hard partition / refused route). Existing connections are
	// unaffected; combine with CloseExisting for a full partition.
	RejectConns bool
	// TruncateAfterBytes, when > 0, closes both sides of a connection
	// after that many server→client bytes have been forwarded on it —
	// with a value smaller than a response frame, the client observes a
	// mid-frame truncation.
	TruncateAfterBytes int64
}

// Step is one entry of a fault schedule: apply Faults, hold for Dur.
type Step struct {
	Faults Faults
	Dur    time.Duration
}

// Proxy is the fault-injecting TCP forwarder. Start one per backend (or
// in front of the frontend) and point the client at Addr().
type Proxy struct {
	target string
	l      net.Listener
	faults atomic.Value // Faults

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	connsTotal    atomic.Uint64
	connsRejected atomic.Uint64
	bytesForward  atomic.Uint64
}

// Start listens on an ephemeral loopback port and forwards to target.
func Start(target string) (*Proxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: target, l: l, conns: make(map[net.Conn]struct{})}
	p.faults.Store(Faults{})
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (give this to clients).
func (p *Proxy) Addr() string { return p.l.Addr().String() }

// Target returns the upstream address the proxy forwards to.
func (p *Proxy) Target() string { return p.target }

// SetFaults atomically replaces the active fault set.
func (p *Proxy) SetFaults(f Faults) { p.faults.Store(f) }

// Clear removes all faults (transparent proxying).
func (p *Proxy) Clear() { p.SetFaults(Faults{}) }

// CurrentFaults returns the active fault set.
func (p *Proxy) CurrentFaults() Faults { return p.faults.Load().(Faults) }

// CloseExisting drops every live proxied connection (both directions),
// simulating a reset of all flows. New connections are still accepted
// unless RejectConns is set.
func (p *Proxy) CloseExisting() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// RunSchedule applies each step in order, holding it for its duration,
// then clears all faults. It blocks for the schedule's total length;
// run it on a goroutine for concurrent traffic.
func (p *Proxy) RunSchedule(steps []Step) {
	for _, s := range steps {
		p.SetFaults(s.Faults)
		if s.Faults.RejectConns || s.Faults.Blackhole {
			// A partition severs existing flows too.
			p.CloseExisting()
		}
		time.Sleep(s.Dur)
	}
	p.Clear()
}

// PartitionWindows builds a flapping-fault schedule: cycles repetitions
// of (fault held for onDur, healthy for offDur). Feed it to RunSchedule
// to exercise partition/heal churn — the fault matrix uses it with the
// one-way drops so each window severs a direction and then heals it,
// repeatedly, while a recorded history is in flight. RunSchedule clears
// faults at the end, so the link always comes back healed.
func PartitionWindows(fault Faults, onDur, offDur time.Duration, cycles int) []Step {
	steps := make([]Step, 0, 2*cycles)
	for i := 0; i < cycles; i++ {
		steps = append(steps,
			Step{Faults: fault, Dur: onDur},
			Step{Faults: Faults{}, Dur: offDur},
		)
	}
	return steps
}

// Stats returns (connections accepted, connections rejected, bytes
// forwarded) so tests can assert the proxy actually carried traffic.
func (p *Proxy) Stats() (accepted, rejected, bytes uint64) {
	return p.connsTotal.Load(), p.connsRejected.Load(), p.bytesForward.Load()
}

// Close stops the listener and tears down all connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.l.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.l.Accept()
		if err != nil {
			return
		}
		if p.CurrentFaults().RejectConns {
			p.connsRejected.Add(1)
			conn.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.serve(conn)
	}
}

// track registers c for teardown and returns false if the proxy already
// closed.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	if !p.track(client) || !p.track(server) {
		client.Close()
		server.Close()
		p.untrack(client)
		return
	}
	p.connsTotal.Add(1)
	// truncBudget is this connection's remaining server→client bytes
	// before a scheduled truncation (loaded lazily on first use so the
	// fault can be installed after the conn exists).
	var truncBudget atomic.Int64
	truncBudget.Store(-1)

	var wg sync.WaitGroup
	wg.Add(2)
	closeBoth := func() {
		client.Close()
		server.Close()
	}
	go func() {
		defer wg.Done()
		p.pipe(server, client, false, nil, closeBoth) // client → server
	}()
	go func() {
		defer wg.Done()
		p.pipe(client, server, true, &truncBudget, closeBoth) // server → client
	}()
	wg.Wait()
	closeBoth()
	p.untrack(client)
	p.untrack(server)
}

// pipe forwards src→dst applying the active faults per chunk. toClient
// marks the server→client direction (the only one trunc applies to).
func (p *Proxy) pipe(dst, src net.Conn, toClient bool, trunc *atomic.Int64, closeBoth func()) {
	// Small chunks keep latency/bandwidth shaping and truncation points
	// fine-grained (a response frame spans several chunks).
	buf := make([]byte, 512)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			f := p.CurrentFaults()
			if f.Latency > 0 {
				time.Sleep(f.Latency)
				f = p.CurrentFaults() // faults may have changed mid-sleep
			}
			if f.Blackhole {
				continue // swallow silently; connection stays open
			}
			if (toClient && f.DropToClient) || (!toClient && f.DropToServer) {
				continue // one-way partition: swallow this direction only
			}
			if f.BandwidthBps > 0 {
				time.Sleep(time.Duration(float64(n) / float64(f.BandwidthBps) * float64(time.Second)))
			}
			out := buf[:n]
			if trunc != nil && f.TruncateAfterBytes > 0 {
				if trunc.Load() < 0 {
					trunc.Store(f.TruncateAfterBytes)
				}
				rem := trunc.Load()
				if int64(len(out)) >= rem {
					out = out[:rem]
					if len(out) > 0 {
						dst.Write(out)
						p.bytesForward.Add(uint64(len(out)))
					}
					closeBoth()
					return
				}
				trunc.Store(rem - int64(len(out)))
			}
			if _, werr := dst.Write(out); werr != nil {
				closeBoth()
				return
			}
			p.bytesForward.Add(uint64(n))
		}
		if err != nil {
			closeBoth()
			return
		}
	}
}
