package consistency

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func convPass(t *testing.T, h History, opts ConvergenceOpts) {
	t.Helper()
	if res := CheckConvergence(h, opts); !res.Ok {
		t.Fatalf("history rejected: %v", res)
	}
}

func convFail(t *testing.T, h History, opts ConvergenceOpts, wantSubstr string) {
	t.Helper()
	res := CheckConvergence(h, opts)
	if res.Ok {
		t.Fatal("bad history accepted")
	}
	for _, f := range res.Failures {
		if strings.Contains(f, wantSubstr) {
			return
		}
	}
	t.Fatalf("failures %v do not mention %q", res.Failures, wantSubstr)
}

func TestConvergenceProvenance(t *testing.T) {
	convPass(t, seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindSet, Key: "k", Arg: []byte("ghost"), Out: OutMaybe},
		{Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("ghost"), Ver: 20},
	}), ConvergenceOpts{})
	convFail(t, seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("invented"), Ver: 10},
	}), ConvergenceOpts{}, "never written")
}

func TestConvergenceVersionBinding(t *testing.T) {
	// Two different values claiming one (key, version) — from a client
	// read and a replica observation — is a version-assignment bug.
	h := seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindSet, Key: "k", Arg: []byte("b"), Out: OutMaybe},
	})
	h.Replica = []ReplicaObs{
		{Replica: 0, Key: "k", Present: true, Val: []byte("b"), Ver: 10, T: 100},
	}
	convFail(t, h, ConvergenceOpts{}, "bound to")
}

func TestConvergenceReplicaMonotonicity(t *testing.T) {
	h := History{Replica: []ReplicaObs{
		{Replica: 0, Session: 0, Key: "k", Present: true, Val: []byte("a"), Ver: 20, T: 1},
		{Replica: 0, Session: 0, Key: "k", Present: true, Val: []byte("b"), Ver: 10, T: 2},
	}}
	// Within one session a version rollback is forbidden...
	convFail(t, h, ConvergenceOpts{}, "regressed")
	// ...but a crash that lost unflushed state opens a new session, and
	// the rewind is legitimate.
	h.Replica[1].Session = 1
	h.Replica[1].Val = []byte("a") // distinct ver per value, avoid binding noise
	h.Replica[1].Ver = 10
	convPass(t, h, ConvergenceOpts{})
}

func TestConvergenceNoResurrection(t *testing.T) {
	h := seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindDel, Key: "k", Out: OutOK, Ver: 20},
		{Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("a"), Ver: 10},
	})
	convFail(t, h, ConvergenceOpts{StrictDeletes: true}, "resurrected")
	// Under a sloppy quorum (StrictDeletes off) the same history is
	// staleness, not a violation.
	convPass(t, h, ConvergenceOpts{})

	// A replica still holding the pre-delete value post-delete is the
	// replica-side flavor (what disabling tombstone authority leaks).
	h2 := seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindDel, Key: "k", Out: OutOK, Ver: 20},
	})
	h2.Replica = []ReplicaObs{
		{Replica: 1, Key: "k", Present: true, Val: []byte("a"), Ver: 10, T: 100},
	}
	convFail(t, h2, ConvergenceOpts{StrictDeletes: true}, "live at ver")
}

func TestConvergencePostBarrierAgreement(t *testing.T) {
	base := seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindSet, Key: "k", Arg: []byte("b"), Out: OutOK, Ver: 20},
	})
	base.Barrier = 50

	agree := base
	agree.Replica = []ReplicaObs{
		{Replica: 0, Key: "k", Present: true, Val: []byte("b"), Ver: 20, T: 60},
		{Replica: 1, Key: "k", Present: true, Val: []byte("b"), Ver: 20, T: 61},
	}
	convPass(t, agree, ConvergenceOpts{})

	split := base
	split.Replica = []ReplicaObs{
		{Replica: 0, Key: "k", Present: true, Val: []byte("b"), Ver: 20, T: 60},
		{Replica: 1, Key: "k", Present: true, Val: []byte("a"), Ver: 10, T: 61},
	}
	convFail(t, split, ConvergenceOpts{}, "disagreement")

	// Pre-barrier divergence is expected mid-fault and must NOT fail.
	healed := agree
	healed.Replica = append([]ReplicaObs{
		{Replica: 1, Key: "k", Present: true, Val: []byte("a"), Ver: 10, T: 30},
	}, healed.Replica...)
	convPass(t, healed, ConvergenceOpts{})

	// A replica that simply LACKS the key its sibling holds after the
	// barrier is divergence too — this is what disabling read repair
	// leaves behind.
	hole := base
	hole.Replica = []ReplicaObs{
		{Replica: 0, Key: "k", Present: true, Val: []byte("b"), Ver: 20, T: 60},
		{Replica: 1, Key: "k", Present: false, T: 61},
	}
	convFail(t, hole, ConvergenceOpts{}, "disagreement")

	// A post-barrier client read contradicting the replica consensus.
	clientSplit := agree
	clientSplit.Ops = append(append([]Op(nil), clientSplit.Ops...), Op{
		Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("a"), Ver: 10, Call: 70, Ret: 71,
	})
	convFail(t, clientSplit, ConvergenceOpts{}, "post-barrier read disagrees")
}

func TestRecorderBuildsWellFormedHistory(t *testing.T) {
	r := NewRecorder()
	p0, p1 := r.NewProc(), r.NewProc()

	a := r.Invoke(p0, KindSet, "k", []byte("a"), 0)
	b := r.Invoke(p1, KindGet, "k", nil, 0)
	a.OK(nil, 10)
	b.Maybe()
	r.Observe(ReplicaObs{Replica: 0, Key: "k", Present: true, Val: []byte("a"), Ver: 10})
	r.MarkBarrier()
	c := r.Invoke(p0, KindGet, "k", nil, 0)
	c.OK([]byte("a"), 10)

	h := r.History()
	if len(h.Ops) != 3 || len(h.Replica) != 1 || h.Barrier == 0 {
		t.Fatalf("history shape: %d ops, %d obs, barrier %d", len(h.Ops), len(h.Replica), h.Barrier)
	}
	for i := 1; i < len(h.Ops); i++ {
		if h.Ops[i].Call <= h.Ops[i-1].Call {
			t.Fatal("ops not sorted by Call")
		}
	}
	for _, op := range h.Ops {
		if op.Out == OutMaybe {
			if op.Ret != RetInfinity {
				t.Fatalf("maybe op has finite Ret %d", op.Ret)
			}
		} else if op.Ret <= op.Call {
			t.Fatalf("op %v returns before it was called", op)
		}
	}
	if h.Replica[0].T <= h.Ops[0].Call || h.Barrier <= h.Replica[0].T {
		t.Fatal("observation/barrier timestamps out of order")
	}
	if post := h.Ops[2]; post.Call <= h.Barrier {
		t.Fatal("post-barrier op stamped before the barrier")
	}
	mustPass(t, h)
	convPass(t, h, ConvergenceOpts{StrictDeletes: true})
}

// fakeKV drives RecordedKV without a cluster.
type fakeKV struct {
	getErr, casErr error
	val            []byte
	ver            uint64
}

var errFakeNotFound = errors.New("fake: not found")

type fakeConflict struct {
	cur     uint64
	partial bool
}

func (e *fakeConflict) Error() string { return "fake: conflict" }

func (f *fakeKV) Get(string) ([]byte, error) { return f.val, f.getErr }
func (f *fakeKV) GetV(string) ([]byte, uint64, bool, error) {
	return f.val, f.ver, false, f.getErr
}
func (f *fakeKV) SetV(string, []byte) (uint64, error) { return f.ver, f.getErr }
func (f *fakeKV) DelV(string) (uint64, error)         { return f.ver, f.getErr }
func (f *fakeKV) Cas(string, []byte, uint64) (uint64, error) {
	if f.casErr != nil {
		return 0, f.casErr
	}
	return f.ver, nil
}

func fakeErrs() Errs {
	return Errs{
		IsNotFound: func(err error) bool { return errors.Is(err, errFakeNotFound) },
		Conflict: func(err error) (uint64, bool, bool) {
			var c *fakeConflict
			if errors.As(err, &c) {
				return c.cur, c.partial, true
			}
			return 0, false, false
		},
	}
}

func TestRecordedKVOutcomeClassification(t *testing.T) {
	kv := &fakeKV{val: []byte("v"), ver: 10}
	r := NewRecorder()
	rk := NewRecordedKV(kv, r, fakeErrs())

	rk.SetV("k", []byte("v")) // OK
	rk.GetV("k")              // OK
	kv.getErr = errFakeNotFound
	rk.GetV("k") // NotFound
	kv.getErr = errors.New("conn reset")
	rk.GetV("k") // Maybe
	kv.getErr = nil
	kv.casErr = &fakeConflict{cur: 10}
	rk.Cas("k", []byte("w"), 5) // Conflict (definite)
	kv.casErr = &fakeConflict{cur: 10, partial: true}
	rk.Cas("k", []byte("w"), 5) // Maybe (partial conflict)
	kv.casErr = errors.New("timeout")
	rk.Cas("k", []byte("w"), 5) // Maybe (transport)
	kv.casErr = nil
	rk.Cas("k", []byte("w"), 10) // OK

	want := []Outcome{OutOK, OutOK, OutNotFound, OutMaybe, OutConflict, OutMaybe, OutMaybe, OutOK}
	h := r.History()
	if len(h.Ops) != len(want) {
		t.Fatalf("recorded %d ops, want %d", len(h.Ops), len(want))
	}
	for i, op := range h.Ops {
		if op.Out != want[i] {
			t.Errorf("op %d (%v): outcome %v, want %v", i, op, op.Out, want[i])
		}
	}
	if h.Ops[4].Ver != 10 {
		t.Errorf("definite conflict did not record cur: %v", h.Ops[4])
	}
	if sib := rk.WithProc(); sib.Proc == rk.Proc {
		t.Error("WithProc reused the proc ID")
	}
}

func TestArtifactRoundTripAndRecheck(t *testing.T) {
	h := seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("z"), Ver: 10},
	})
	res := CheckLinearizable(h, RegisterModel{}, 0)
	if res.Ok {
		t.Fatal("fixture history unexpectedly linearizable")
	}
	art := &Artifact{
		Scenario: "unit-fixture", Seed: 42, Model: "register",
		Failure: res.Failures, History: h,
	}
	path := filepath.Join(t.TempDir(), "failures", "unit.json")
	if err := art.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded artifact re-checks to the same verdict...
	re, err := loaded.Recheck(0)
	if err != nil || re.Ok {
		t.Fatalf("recheck = %v, %v; want same failure", re, err)
	}
	if len(re.Failures) != len(res.Failures) || re.Failures[0] != res.Failures[0] {
		t.Fatalf("recheck failures %v != original %v", re.Failures, res.Failures)
	}
	// ...and re-saves byte-identically: the replay artifact is stable.
	path2 := filepath.Join(t.TempDir(), "resaved.json")
	if err := loaded.Save(path2); err != nil {
		t.Fatal(err)
	}
	b1, b2 := mustRead(t, path), mustRead(t, path2)
	if string(b1) != string(b2) {
		t.Fatal("artifact did not round-trip byte-identically")
	}

	if _, err := (&Artifact{Model: "nonsense"}).Recheck(0); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
