// Package consistency turns the kvstore's behavior under faults into a
// checkable artifact. A Recorder timestamps the invoke and return of
// every client operation into an append-only History; a porcupine-style
// checker (checker.go) then searches for a linearization of that
// history against a versioned-register model (models.go), and a
// complementary convergence checker (convergence.go) enforces the
// weaker-but-always-required contract — reads return written values,
// versions never regress on a replica, deletes don't resurrect, and
// replicas agree after quiescence.
//
// The package is deliberately ignorant of the kvstore: operations
// arrive through the KV interface (record.go) and error classification
// is injected, so the checker can be unit-tested on hand-built
// histories and reused against any client that speaks the same
// versioned Get/Set/Del/Cas vocabulary.
package consistency

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Kind is the operation vocabulary the models understand.
type Kind uint8

const (
	KindGet Kind = iota
	KindSet
	KindDel
	KindCas
)

func (k Kind) String() string {
	switch k {
	case KindGet:
		return "get"
	case KindSet:
		return "set"
	case KindDel:
		return "del"
	case KindCas:
		return "cas"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Outcome classifies how an operation completed. The three definite
// outcomes carry full information; OutMaybe is the crucial fourth: the
// request may or may not have taken effect (connection died mid-call,
// partial CAS, quorum timeout). A checker that ignored ambiguity would
// flag correct systems constantly; one that treated ambiguity as
// success would miss real bugs. Maybe ops get Ret = ∞ and the checker
// may linearize them as applied or drop them as never-happened.
type Outcome uint8

const (
	OutOK Outcome = iota
	OutNotFound
	OutConflict
	OutMaybe
)

func (o Outcome) String() string {
	switch o {
	case OutOK:
		return "ok"
	case OutNotFound:
		return "notfound"
	case OutConflict:
		return "conflict"
	case OutMaybe:
		return "maybe"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// RetInfinity is the Ret timestamp of an ambiguous (Maybe) operation:
// it never "returned" with a definite answer, so nothing is ordered
// after it.
const RetInfinity = int64(math.MaxInt64)

// Op is one recorded client operation.
type Op struct {
	// Proc identifies the logical client process; ops of one Proc never
	// overlap in time (the recorder's per-proc discipline).
	Proc int    `json:"proc"`
	Kind Kind   `json:"kind"`
	Key  string `json:"key"`
	// Arg is the value written (Set/Cas).
	Arg []byte `json:"arg,omitempty"`
	// Expect is the CAS expectation (live version, 0 = create).
	Expect uint64 `json:"expect,omitempty"`

	Out Outcome `json:"out"`
	// Val is the value read (Get, OutOK).
	Val []byte `json:"val,omitempty"`
	// Ver is the version the outcome carried: the committed version for
	// Set/Del/Cas OK, the read version for Get OK, the tombstone version
	// for an authoritative miss, the live version evidence for a CAS
	// conflict. 0 = the operation carried no version (plain Get path,
	// clean miss).
	Ver uint64 `json:"ver,omitempty"`
	// Tomb marks a Get NotFound as an authoritative tombstone miss
	// (deleted at Ver) rather than a clean never-written miss.
	Tomb bool `json:"tomb,omitempty"`

	// Call and Ret are logical timestamps from the recorder's global
	// clock. Ret == RetInfinity for Maybe ops.
	Call int64 `json:"call"`
	Ret  int64 `json:"ret"`
}

func (op Op) String() string {
	return fmt.Sprintf("p%d %s(%q) -> %s val=%q ver=%d expect=%d [%d,%d]",
		op.Proc, op.Kind, op.Key, op.Out, op.Val, op.Ver, op.Expect, op.Call, op.Ret)
}

// ReplicaObs is one direct observation of a replica's stored state,
// taken by the test harness reading a backend directly (bypassing the
// frontend). Session increments each time the replica restarts —
// version monotonicity holds within a session, while a crash that loses
// unflushed state legitimately rewinds it.
type ReplicaObs struct {
	Replica int    `json:"replica"`
	Session int    `json:"session"`
	Key     string `json:"key"`
	// Present reports the key exists at the replica (live value or
	// tombstone); Tomb distinguishes the two.
	Present bool   `json:"present"`
	Tomb    bool   `json:"tomb,omitempty"`
	Val     []byte `json:"val,omitempty"`
	Ver     uint64 `json:"ver,omitempty"`
	// T is when the observation was taken, on the same clock as Op
	// timestamps.
	T int64 `json:"t"`
}

// History is everything one scenario recorded: the client-visible ops,
// the replica observations, and the barrier timestamp after which the
// harness had quiesced the cluster (healed faults, drained hints, ran a
// repair pass). Convergence is only demanded of post-barrier state.
type History struct {
	Ops     []Op         `json:"ops"`
	Replica []ReplicaObs `json:"replica,omitempty"`
	// Barrier is the quiescence timestamp (0 = never quiesced; the
	// convergence checker then skips its agreement phase).
	Barrier int64 `json:"barrier,omitempty"`
}

// Keys returns the distinct keys appearing in Ops, sorted.
func (h History) Keys() []string {
	seen := make(map[string]bool)
	for _, op := range h.Ops {
		seen[op.Key] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Recorder builds a History concurrently: Invoke stamps the call edge
// and returns a handle whose completion method stamps the return edge
// and appends the finished op. The clock is a single logical counter —
// real-time ordering between ops is exactly "Ret(a) < Call(b)", which
// is all linearizability needs, and logical stamps make recorded
// histories deterministic enough to replay byte-identically.
type Recorder struct {
	mu    sync.Mutex
	clock int64
	ops   []Op
	obs   []ReplicaObs
	bar   int64
	procs int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewProc allocates a fresh process ID. One proc must never have two
// ops in flight at once — give each goroutine its own.
func (r *Recorder) NewProc() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.procs
	r.procs++
	return p
}

func (r *Recorder) tick() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock++
	return r.clock
}

// Pending is an invoked-but-uncompleted op. Exactly one completion
// method must be called.
type Pending struct {
	r  *Recorder
	op Op
}

// Invoke stamps the call edge of an operation.
func (r *Recorder) Invoke(proc int, kind Kind, key string, arg []byte, expect uint64) *Pending {
	return &Pending{r: r, op: Op{
		Proc: proc, Kind: kind, Key: key,
		Arg: cloneBytes(arg), Expect: expect,
		Call: r.tick(),
	}}
}

func (p *Pending) complete(out Outcome, val []byte, ver uint64, tomb bool) {
	p.op.Out = out
	p.op.Val = cloneBytes(val)
	p.op.Ver = ver
	p.op.Tomb = tomb
	if out == OutMaybe {
		// Tick the clock anyway so the failure still advances time, but
		// the op itself never returns.
		p.r.tick()
		p.op.Ret = RetInfinity
	} else {
		p.op.Ret = p.r.tick()
	}
	p.r.mu.Lock()
	p.r.ops = append(p.r.ops, p.op)
	p.r.mu.Unlock()
}

// OK completes the op with a definite success.
func (p *Pending) OK(val []byte, ver uint64) { p.complete(OutOK, val, ver, false) }

// NotFound completes a read with a definite miss; tomb marks it
// authoritative (deleted at ver).
func (p *Pending) NotFound(ver uint64, tomb bool) { p.complete(OutNotFound, nil, ver, tomb) }

// Conflict completes a CAS with a definite precondition miss; cur is
// the live-version evidence the server returned.
func (p *Pending) Conflict(cur uint64) { p.complete(OutConflict, nil, cur, false) }

// Maybe completes the op ambiguously: it may have applied, it may not
// have. The checker owns the doubt from here.
func (p *Pending) Maybe() { p.complete(OutMaybe, nil, 0, false) }

// Observe appends a replica observation, stamping it now.
func (r *Recorder) Observe(obs ReplicaObs) {
	obs.Val = cloneBytes(obs.Val)
	obs.T = r.tick()
	r.mu.Lock()
	r.obs = append(r.obs, obs)
	r.mu.Unlock()
}

// MarkBarrier stamps the quiescence point: the harness promises all
// faults are healed and all repair queues drained BEFORE calling this.
func (r *Recorder) MarkBarrier() {
	t := r.tick()
	r.mu.Lock()
	r.bar = t
	r.mu.Unlock()
}

// History snapshots everything recorded so far, ops sorted by Call.
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := History{
		Ops:     append([]Op(nil), r.ops...),
		Replica: append([]ReplicaObs(nil), r.obs...),
		Barrier: r.bar,
	}
	sort.SliceStable(h.Ops, func(i, j int) bool { return h.Ops[i].Call < h.Ops[j].Call })
	return h
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
