package consistency

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Artifact is a replayable failure capture: the scenario's identity and
// seed, the full recorded history, and which checker rejected it. A
// dumped artifact re-checks byte-identically — Recheck runs the same
// checker on the same history, and Save/Load round-trips exactly — so a
// CI failure travels as one JSON file anyone can rerun locally.
type Artifact struct {
	// Scenario names the fault-matrix test that produced the history.
	Scenario string `json:"scenario"`
	// Seed reproduces the scenario's randomized schedule (key choice,
	// op mix, fault timing) via -consistency-seed.
	Seed uint64 `json:"seed"`
	// Model is which checker failed: "register" or "convergence".
	Model string `json:"model"`
	// Strict records ConvergenceOpts.StrictDeletes for convergence runs.
	Strict bool `json:"strict,omitempty"`
	// Failure is the checker's verdict text at capture time.
	Failure []string `json:"failure"`
	// History is the complete recorded history.
	History History `json:"history"`
}

// Save writes the artifact as indented JSON, creating parent
// directories. Marshaling is deterministic (fixed field order, sorted
// ops by Call from Recorder.History), so saving a reloaded artifact
// reproduces the file byte for byte.
func (a *Artifact) Save(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads an artifact back.
func Load(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("consistency: artifact %s: %w", path, err)
	}
	return &a, nil
}

// Recheck reruns the checker the artifact names against its recorded
// history and returns the fresh verdict — the replay path for a
// CI-captured failure.
func (a *Artifact) Recheck(budget int) (Result, error) {
	switch a.Model {
	case "register":
		return CheckLinearizable(a.History, RegisterModel{}, budget), nil
	case "convergence":
		return CheckConvergence(a.History, ConvergenceOpts{StrictDeletes: a.Strict}), nil
	default:
		return Result{}, fmt.Errorf("consistency: artifact names unknown model %q", a.Model)
	}
}
