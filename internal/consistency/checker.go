package consistency

import (
	"fmt"
	"sort"
)

// DefaultBudget bounds the WGL search per key, counted in visited
// (linearized-set, state) nodes. Recorded histories here are hundreds
// of ops across tens of keys with little per-key concurrency, so real
// searches stay tiny; the budget exists so an adversarial history
// degrades to Exhausted instead of hanging the suite.
const DefaultBudget = 2_000_000

// Result is a checker verdict. Ok means a linearization was found for
// every key (or, for the convergence checker, every invariant held).
// Exhausted means the search hit its budget before deciding some key —
// the history is reported as passing, but the verdict is advisory, and
// tests treat Exhausted as a failure of the scenario's sizing rather
// than of the system.
type Result struct {
	Ok        bool
	Exhausted bool
	// Failures describes each violated key or invariant, human-first.
	Failures []string
}

func (r Result) String() string {
	if r.Ok {
		if r.Exhausted {
			return "ok (search exhausted; advisory)"
		}
		return "ok"
	}
	return fmt.Sprintf("FAILED: %v", r.Failures)
}

// CheckLinearizable runs the WGL (Wing & Gong, with memoization per
// Lowe) search: per key — linearizability is local, a history is
// linearizable iff each key's subhistory is — it tries to order the
// overlapping ops into a sequence the model accepts.
//
// Ops with Out == OutMaybe are optional: the search may linearize one
// as an applied write (StepMaybe) or never linearize it, and acceptance
// only requires every definite op placed.
func CheckLinearizable(h History, m Model, budget int) Result {
	if budget <= 0 {
		budget = DefaultBudget
	}
	byKey := make(map[string][]Op)
	for _, op := range h.Ops {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	res := Result{Ok: true}
	for _, key := range keys {
		ok, exhausted := checkKey(byKey[key], m, budget)
		if exhausted {
			res.Exhausted = true
		}
		if !ok {
			res.Ok = false
			res.Failures = append(res.Failures,
				fmt.Sprintf("key %q: no linearization of %d ops against model %s", key, len(byKey[key]), m.Name()))
		}
	}
	return res
}

// node is one WGL search state: which ops are linearized (bitset) plus
// the model state they produced.
type node struct {
	mask  []byte
	state State
}

func checkKey(ops []Op, m Model, budget int) (ok, exhausted bool) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Call < ops[j].Call })
	n := len(ops)
	concrete := 0
	for _, op := range ops {
		if op.Out != OutMaybe {
			concrete++
		}
	}
	if concrete == 0 {
		return true, false
	}
	maskLen := (n + 7) / 8
	start := node{mask: make([]byte, maskLen), state: m.Init()}
	visited := map[string]bool{encodeNode(m, start): true}
	stack := []node{start}
	steps := 0
	for len(stack) > 0 {
		steps++
		if steps > budget {
			return true, true // advisory pass; caller sees Exhausted
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		// Accept when every definite op is linearized.
		done := 0
		minRet := RetInfinity
		for i, op := range ops {
			if bitSet(cur.mask, i) {
				if op.Out != OutMaybe {
					done++
				}
				continue
			}
			if op.Out != OutMaybe && op.Ret < minRet {
				minRet = op.Ret
			}
		}
		if done == concrete {
			return true, false
		}

		// Candidates: unlinearized ops invoked before the earliest return
		// among unlinearized definite ops — the op holding minRet must be
		// placed before anything invoked after it completed.
		for i, op := range ops {
			if bitSet(cur.mask, i) || op.Call > minRet {
				continue
			}
			var next State
			var fits bool
			if op.Out == OutMaybe {
				next, fits = m.StepMaybe(cur.state, op)
			} else {
				next, fits = m.Step(cur.state, op)
			}
			if !fits {
				continue
			}
			child := node{mask: setBit(cur.mask, i), state: next}
			enc := encodeNode(m, child)
			if visited[enc] {
				continue
			}
			visited[enc] = true
			stack = append(stack, child)
		}
	}
	return false, false
}

func bitSet(mask []byte, i int) bool { return mask[i/8]&(1<<uint(i%8)) != 0 }

func setBit(mask []byte, i int) []byte {
	out := append([]byte(nil), mask...)
	out[i/8] |= 1 << uint(i%8)
	return out
}

func encodeNode(m Model, nd node) string {
	return string(nd.mask) + "|" + m.Encode(nd.state)
}
