package consistency

import (
	"testing"
)

// seqOps builds a history of non-overlapping ops in the given order.
func seqHistory(ops []Op) History {
	t := int64(0)
	for i := range ops {
		t++
		ops[i].Call = t
		t++
		if ops[i].Out == OutMaybe {
			ops[i].Ret = RetInfinity
		} else {
			ops[i].Ret = t
		}
	}
	return History{Ops: ops}
}

func mustPass(t *testing.T, h History) {
	t.Helper()
	res := CheckLinearizable(h, RegisterModel{}, 0)
	if !res.Ok || res.Exhausted {
		t.Fatalf("history rejected: %v", res)
	}
}

func mustFail(t *testing.T, h History) {
	t.Helper()
	res := CheckLinearizable(h, RegisterModel{}, 0)
	if res.Ok {
		t.Fatal("bad history accepted")
	}
}

func TestRegisterSequentialLifecycle(t *testing.T) {
	mustPass(t, seqHistory([]Op{
		{Proc: 0, Kind: KindGet, Key: "k", Out: OutNotFound},
		{Proc: 0, Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Proc: 0, Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("a"), Ver: 10},
		{Proc: 0, Kind: KindCas, Key: "k", Arg: []byte("b"), Expect: 10, Out: OutOK, Ver: 20},
		{Proc: 0, Kind: KindCas, Key: "k", Arg: []byte("x"), Expect: 10, Out: OutConflict, Ver: 20},
		{Proc: 0, Kind: KindDel, Key: "k", Out: OutOK, Ver: 30},
		{Proc: 0, Kind: KindGet, Key: "k", Out: OutNotFound, Tomb: true, Ver: 30},
		{Proc: 0, Kind: KindCas, Key: "k", Arg: []byte("c"), Expect: 0, Out: OutOK, Ver: 40},
		{Proc: 0, Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("c"), Ver: 40},
	}))
}

func TestRegisterRejectsStaleRead(t *testing.T) {
	// Read of the overwritten value after the overwrite returned.
	mustFail(t, seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindSet, Key: "k", Arg: []byte("b"), Out: OutOK, Ver: 20},
		{Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("a"), Ver: 10},
	}))
}

func TestRegisterRejectsLostUpdate(t *testing.T) {
	// Two CAS ops against the same expectation both succeeding is the
	// canonical lost update — exactly what quorum intersection forbids.
	mustFail(t, seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("base"), Out: OutOK, Ver: 10},
		{Kind: KindCas, Key: "k", Arg: []byte("x"), Expect: 10, Out: OutOK, Ver: 20},
		{Kind: KindCas, Key: "k", Arg: []byte("y"), Expect: 10, Out: OutOK, Ver: 30},
	}))
}

func TestRegisterRejectsFalseConflict(t *testing.T) {
	// A conflict against the actually-live expectation is a CAS check bug
	// (the disableCasCheck mutation produces the successful mirror image).
	mustFail(t, seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindCas, Key: "k", Arg: []byte("b"), Expect: 10, Out: OutConflict, Ver: 10},
	}))
}

func TestRegisterRejectsResurrectedRead(t *testing.T) {
	mustFail(t, seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindDel, Key: "k", Out: OutOK, Ver: 20},
		{Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("a"), Ver: 10},
	}))
}

func TestRegisterConcurrentOrderFreedom(t *testing.T) {
	// A read overlapping an in-flight write may linearize before it:
	// reading the old value during the overlap, the new one after.
	h := History{Ops: []Op{
		{Proc: 0, Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10, Call: 1, Ret: 2},
		{Proc: 1, Kind: KindSet, Key: "k", Arg: []byte("b"), Out: OutOK, Ver: 20, Call: 3, Ret: 8},
		{Proc: 2, Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("a"), Ver: 10, Call: 4, Ret: 5},
		{Proc: 2, Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("b"), Ver: 20, Call: 9, Ret: 10},
	}}
	mustPass(t, h)
	// The same reads WITHOUT the overlap (everything sequential) leave
	// no legal order — the stale read must be rejected:
	mustFail(t, seqHistory([]Op{
		{Proc: 0, Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Proc: 1, Kind: KindSet, Key: "k", Arg: []byte("b"), Out: OutOK, Ver: 20},
		{Proc: 2, Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("a"), Ver: 10},
		{Proc: 2, Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("b"), Ver: 20},
	}))
}

func TestRegisterMaybeWriteMayApply(t *testing.T) {
	// A timed-out write whose value is later read: legal iff the checker
	// linearizes the Maybe as applied.
	mustPass(t, seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("ghost"), Out: OutMaybe},
		{Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("ghost"), Ver: 10},
	}))
	// And legal if it never applied.
	mustPass(t, seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("ghost"), Out: OutMaybe},
		{Kind: KindGet, Key: "k", Out: OutNotFound},
	}))
	// But a value nobody even maybe-wrote stays illegal.
	mustFail(t, seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("ghost"), Out: OutMaybe},
		{Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("invented"), Ver: 10},
	}))
}

func TestRegisterMaybeCasPrecondition(t *testing.T) {
	// A Maybe CAS may apply only where its expectation held: reading its
	// value after an intervening delete (live version 0 ≠ expect 10)
	// requires an impossible linearization.
	mustFail(t, seqHistory([]Op{
		{Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindDel, Key: "k", Out: OutOK, Ver: 20},
		{Kind: KindCas, Key: "k", Arg: []byte("swap"), Expect: 10, Out: OutMaybe},
		{Kind: KindGet, Key: "k", Out: OutOK, Val: []byte("swap"), Ver: 30},
	}))
	// Whereas the same Maybe CAS invoked while "a" was still live may
	// have applied before the delete: a later tombstone read is fine.
	mustPass(t, History{Ops: []Op{
		{Proc: 0, Kind: KindSet, Key: "k", Arg: []byte("a"), Out: OutOK, Ver: 10, Call: 1, Ret: 2},
		{Proc: 1, Kind: KindCas, Key: "k", Arg: []byte("swap"), Expect: 10, Out: OutMaybe, Call: 3, Ret: RetInfinity},
		{Proc: 0, Kind: KindDel, Key: "k", Out: OutOK, Ver: 30, Call: 4, Ret: 5},
		{Proc: 0, Kind: KindGet, Key: "k", Out: OutNotFound, Tomb: true, Ver: 30, Call: 6, Ret: 7},
	}})
}

func TestRegisterPerKeyIndependence(t *testing.T) {
	// A violation on one key names that key, and a healthy key alongside
	// stays healthy.
	h := seqHistory([]Op{
		{Kind: KindSet, Key: "good", Arg: []byte("a"), Out: OutOK, Ver: 10},
		{Kind: KindGet, Key: "good", Out: OutOK, Val: []byte("a"), Ver: 10},
		{Kind: KindSet, Key: "bad", Arg: []byte("x"), Out: OutOK, Ver: 10},
		{Kind: KindGet, Key: "bad", Out: OutOK, Val: []byte("y"), Ver: 10},
	})
	res := CheckLinearizable(h, RegisterModel{}, 0)
	if res.Ok || len(res.Failures) != 1 {
		t.Fatalf("result = %v, want exactly the bad key flagged", res)
	}
}

func TestCheckerBudgetExhaustion(t *testing.T) {
	// A pile of mutually overlapping ops with a budget of 1: the checker
	// must give up loudly, not hang or fail.
	ops := make([]Op, 12)
	for i := range ops {
		ops[i] = Op{Proc: i, Kind: KindSet, Key: "k", Arg: []byte{byte(i)}, Out: OutOK,
			Ver: uint64(10 + i), Call: 1, Ret: 100}
	}
	res := CheckLinearizable(History{Ops: ops}, RegisterModel{}, 1)
	if !res.Exhausted {
		t.Fatalf("result = %v, want Exhausted", res)
	}
}
