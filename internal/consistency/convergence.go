package consistency

import (
	"bytes"
	"fmt"
	"sort"
)

// ConvergenceOpts tunes CheckConvergence.
type ConvergenceOpts struct {
	// StrictDeletes enables the no-resurrection rule. It is SOUND ONLY
	// when the write quorum covers the whole group (W = d): then an
	// acked delete placed its tombstone on every replica, and any later
	// sighting of an older live value is a resurrection bug. With W < d
	// a replica that legitimately missed the delete can serve the old
	// value until repair, which is staleness, not resurrection.
	StrictDeletes bool
}

// CheckConvergence enforces the contract the system owes under EVERY
// configuration, including sloppy quorums where the register model is
// off the table:
//
//  1. Provenance: every successful read returns a value some write
//     (definite or ambiguous) produced for that key — the store never
//     invents or corrupts bytes.
//  2. Version binding: a (key, version) pair names ONE value, across
//     client reads, committed writes, and replica observations alike.
//     Replicas may lag, but two different values at one version mean
//     the version-assignment discipline broke.
//  3. Replica monotonicity: within one replica session, an observed
//     version never regresses — highest-version-wins forbids it.
//  4. No resurrection (StrictDeletes): after an acked delete returns,
//     no read or observation shows the key live at a version below the
//     tombstone's.
//  5. Post-barrier agreement: once the harness quiesced (faults healed,
//     hints drained, repair run — Barrier marks it), every replica
//     observation of a key agrees on (tomb, version, value), and every
//     post-barrier client read agrees with the replicas.
func CheckConvergence(h History, opts ConvergenceOpts) Result {
	res := Result{Ok: true}
	fail := func(format string, args ...interface{}) {
		res.Ok = false
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	// 1. Provenance.
	written := make(map[string]map[string]bool) // key -> value -> written
	for _, op := range h.Ops {
		if (op.Kind == KindSet || op.Kind == KindCas) && op.Out != OutConflict {
			// OK and Maybe writes both count: a Maybe write may have
			// applied, so reading its value back is legitimate.
			if written[op.Key] == nil {
				written[op.Key] = make(map[string]bool)
			}
			written[op.Key][string(op.Arg)] = true
		}
	}
	for i, op := range h.Ops {
		if op.Kind == KindGet && op.Out == OutOK && !written[op.Key][string(op.Val)] {
			fail("op %d (%s): read value %q never written to key %q", i, op, op.Val, op.Key)
		}
	}

	// 2. Version binding. Tombstones bind as a distinct marker.
	type binding struct {
		val  string
		from string
	}
	bind := make(map[string]binding) // "key\x00ver" -> value
	record := func(key string, ver uint64, val string, from string) {
		if ver == 0 {
			return
		}
		bk := fmt.Sprintf("%s\x00%d", key, ver)
		if prev, ok := bind[bk]; ok {
			if prev.val != val {
				fail("key %q version %d bound to %q (%s) and %q (%s)", key, ver, prev.val, prev.from, val, from)
			}
			return
		}
		bind[bk] = binding{val: val, from: from}
	}
	const tombMarker = "\x00tomb"
	for i, op := range h.Ops {
		from := fmt.Sprintf("op %d (%s)", i, op)
		switch {
		case op.Kind == KindGet && op.Out == OutOK:
			record(op.Key, op.Ver, string(op.Val), from)
		case op.Kind == KindGet && op.Out == OutNotFound && op.Tomb:
			record(op.Key, op.Ver, tombMarker, from)
		case op.Kind == KindSet && op.Out == OutOK:
			record(op.Key, op.Ver, string(op.Arg), from)
		case op.Kind == KindCas && op.Out == OutOK:
			record(op.Key, op.Ver, string(op.Arg), from)
		case op.Kind == KindDel && op.Out == OutOK:
			record(op.Key, op.Ver, tombMarker, from)
		}
	}
	for i, ob := range h.Replica {
		if !ob.Present {
			continue
		}
		from := fmt.Sprintf("replica %d obs %d", ob.Replica, i)
		if ob.Tomb {
			record(ob.Key, ob.Ver, tombMarker, from)
		} else {
			record(ob.Key, ob.Ver, string(ob.Val), from)
		}
	}

	// 3. Replica monotonicity per (replica, session, key).
	type rsk struct {
		replica, session int
		key              string
	}
	last := make(map[rsk]ReplicaObs)
	obs := append([]ReplicaObs(nil), h.Replica...)
	sort.SliceStable(obs, func(i, j int) bool { return obs[i].T < obs[j].T })
	for _, ob := range obs {
		k := rsk{ob.Replica, ob.Session, ob.Key}
		if prev, ok := last[k]; ok && prev.Present && ob.Present && ob.Ver < prev.Ver {
			fail("replica %d session %d key %q: version regressed %d -> %d", ob.Replica, ob.Session, ob.Key, prev.Ver, ob.Ver)
		}
		last[k] = ob
	}

	// 4. No resurrection.
	if opts.StrictDeletes {
		type tombEdge struct {
			ver uint64
			ret int64
		}
		tombs := make(map[string][]tombEdge)
		for _, op := range h.Ops {
			if op.Kind == KindDel && op.Out == OutOK {
				tombs[op.Key] = append(tombs[op.Key], tombEdge{ver: op.Ver, ret: op.Ret})
			}
		}
		liveBelow := func(key string, ver uint64, t int64) *tombEdge {
			for i := range tombs[key] {
				te := &tombs[key][i]
				if t > te.ret && ver < te.ver {
					return te
				}
			}
			return nil
		}
		for i, op := range h.Ops {
			if op.Kind == KindGet && op.Out == OutOK {
				if te := liveBelow(op.Key, op.Ver, op.Call); te != nil {
					fail("op %d (%s): key %q resurrected — read ver %d after delete at ver %d returned", i, op, op.Key, op.Ver, te.ver)
				}
			}
		}
		for i, ob := range obs {
			if ob.Present && !ob.Tomb {
				if te := liveBelow(ob.Key, ob.Ver, ob.T); te != nil {
					fail("replica %d obs %d: key %q live at ver %d after delete at ver %d returned", ob.Replica, i, ob.Key, ob.Ver, te.ver)
				}
			}
		}
	}

	// 5. Post-barrier agreement. An absent observation participates too:
	// a replica that simply lacks a key its group siblings hold after
	// quiescence is exactly the divergence repair was supposed to erase.
	if h.Barrier > 0 {
		type agreed struct {
			present bool
			tomb    bool
			val     []byte
			ver     uint64
			from    string
		}
		final := make(map[string]agreed)
		for i, ob := range obs {
			if ob.T <= h.Barrier {
				continue
			}
			cur := agreed{present: ob.Present, tomb: ob.Tomb, val: ob.Val, ver: ob.Ver, from: fmt.Sprintf("replica %d obs %d", ob.Replica, i)}
			if prev, ok := final[ob.Key]; ok {
				if prev.present != cur.present || prev.tomb != cur.tomb || prev.ver != cur.ver || !bytes.Equal(prev.val, cur.val) {
					fail("post-barrier disagreement on %q: %s has (present=%v tomb=%v ver=%d val=%q), %s has (present=%v tomb=%v ver=%d val=%q)",
						ob.Key, prev.from, prev.present, prev.tomb, prev.ver, prev.val, cur.from, cur.present, cur.tomb, cur.ver, cur.val)
				}
				continue
			}
			final[ob.Key] = cur
		}
		for i, op := range h.Ops {
			if op.Call <= h.Barrier || op.Kind != KindGet {
				continue
			}
			fin, ok := final[op.Key]
			if !ok {
				continue
			}
			switch op.Out {
			case OutOK:
				if !fin.present || fin.tomb || !bytes.Equal(fin.val, op.Val) || (op.Ver != 0 && op.Ver != fin.ver) {
					fail("op %d (%s): post-barrier read disagrees with replicas (present=%v tomb=%v ver=%d val=%q)", i, op, fin.present, fin.tomb, fin.ver, fin.val)
				}
			case OutNotFound:
				if fin.present && !fin.tomb {
					fail("op %d (%s): post-barrier miss but replicas hold %q at ver %d", i, op, fin.val, fin.ver)
				}
			}
		}
	}
	return res
}
