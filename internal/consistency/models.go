package consistency

import (
	"bytes"
	"fmt"
)

// Model is the sequential specification the checker linearizes against.
// States are opaque to the checker; Encode must return a canonical
// string (two equal states encode equally) because the WGL search
// memoizes on (linearized-set, state).
type Model interface {
	// Init is the state before any operation.
	Init() State
	// Step applies a DEFINITE op (OK/NotFound/Conflict) to the state,
	// returning (next, true) if the op is linearizable there.
	Step(st State, op Op) (State, bool)
	// StepMaybe applies an ambiguous op AS IF it succeeded, returning
	// (next, true) if that is plausible. The checker also always has the
	// option of never linearizing a Maybe op at all.
	StepMaybe(st State, op Op) (State, bool)
	// Encode canonicalizes a state for memoization.
	Encode(st State) string
	// Name labels the model in results and artifacts.
	Name() string
}

// State is an opaque model state.
type State interface{}

// regState is the versioned register: one key's linearizable value.
//
// verKnown is the model's humility bit. The store assigns versions on
// the server side, so after a Maybe write the model knows WHAT may have
// been written but not at WHICH version. A state with verKnown=false
// accepts any observed version and binds to it — strictness resumes one
// definite observation later. Soundness leans acceptor-friendly: an
// unknown version never manufactures a violation, it only delays one.
type regState struct {
	present  bool
	val      []byte
	ver      uint64
	verKnown bool
}

// RegisterModel is the per-key linearizable versioned register.
//
// It is the STRONG model: valid only for configurations where every
// read intersects every committed write (single frontend with d=1, or
// read paths that consult a write quorum). Under sloppy reads (first
// live replica answers, W < d) a lagging-but-healthy replica serves
// stale state that is NOT a bug — use the convergence checker there.
//
// Version monotonicity is baked in: the store applies writes
// highest-version-wins and one frontend's version clock is monotonic,
// so a committed write always carries a version strictly above the live
// one. A history violating that is a version-assignment bug even before
// it is a linearizability bug.
type RegisterModel struct{}

func (RegisterModel) Name() string { return "register" }

func (RegisterModel) Init() State {
	// Keys start absent with version 0 — exactly the state CAS-create
	// (expect 0) tests against.
	return regState{verKnown: true}
}

func (RegisterModel) Encode(st State) string {
	s := st.(regState)
	return fmt.Sprintf("%t|%x|%d|%t", s.present, s.val, s.ver, s.verKnown)
}

// liveVer is the version CAS judges: a tombstoned or absent key has
// live version 0 regardless of the tombstone's own version.
func (s regState) liveVer() uint64 {
	if s.present {
		return s.ver
	}
	return 0
}

// verAdmits reports whether writing at version v is consistent with the
// state's version knowledge: strictly above the current version
// (highest-version-wins would silently drop anything else, so a
// committed write below it could never have been acked by a correct
// store), or anything when the version is unknown. v 0 means the op
// carried no version and there is nothing to check.
func (s regState) verAdmits(v uint64) bool {
	return v == 0 || !s.verKnown || v > s.ver
}

func (RegisterModel) Step(st State, op Op) (State, bool) {
	s := st.(regState)
	switch op.Kind {
	case KindGet:
		switch op.Out {
		case OutOK:
			if !s.present || !bytes.Equal(s.val, op.Val) {
				return nil, false
			}
			if op.Ver != 0 {
				if s.verKnown {
					if op.Ver != s.ver {
						return nil, false
					}
				} else {
					// First definite sighting after a Maybe write: bind.
					s.ver, s.verKnown = op.Ver, true
				}
			}
			return s, true
		case OutNotFound:
			if s.present {
				return nil, false
			}
			if op.Tomb && op.Ver != 0 {
				if s.verKnown {
					if op.Ver != s.ver {
						return nil, false
					}
				} else {
					s.ver, s.verKnown = op.Ver, true
				}
			}
			return s, true
		}
	case KindSet:
		if op.Out == OutOK {
			if !s.verAdmits(op.Ver) {
				return nil, false
			}
			return regState{present: true, val: op.Arg, ver: op.Ver, verKnown: op.Ver != 0}, true
		}
	case KindDel:
		if op.Out == OutOK {
			if !s.verAdmits(op.Ver) {
				return nil, false
			}
			next := regState{present: false, ver: op.Ver, verKnown: op.Ver != 0}
			return next, true
		}
	case KindCas:
		switch op.Out {
		case OutOK:
			// The precondition must hold at the linearization point —
			// unless the live version is unknown (Maybe write upstream),
			// where the model cannot refute it.
			if s.verKnown && s.liveVer() != op.Expect {
				return nil, false
			}
			if !s.verAdmits(op.Ver) {
				return nil, false
			}
			return regState{present: true, val: op.Arg, ver: op.Ver, verKnown: op.Ver != 0}, true
		case OutConflict:
			// A definite conflict asserts the live version was NOT the
			// expectation. With the version unknown the model can't
			// falsify that, so it accepts.
			if s.verKnown && s.liveVer() == op.Expect {
				return nil, false
			}
			return s, true
		}
	}
	return nil, false
}

func (RegisterModel) StepMaybe(st State, op Op) (State, bool) {
	s := st.(regState)
	switch op.Kind {
	case KindGet:
		// A read that may have happened changed nothing either way;
		// linearizing it is a no-op, so the checker never needs to.
		return s, true
	case KindSet:
		return regState{present: true, val: op.Arg}, true
	case KindDel:
		return regState{present: false}, true
	case KindCas:
		// Linearizable-as-success only if the precondition plausibly
		// held; afterwards both value and version knowledge degrade to
		// "whatever the swap stamped".
		if s.verKnown && s.liveVer() != op.Expect {
			return nil, false
		}
		return regState{present: true, val: op.Arg}, true
	}
	return nil, false
}
