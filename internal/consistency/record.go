package consistency

// KV is the versioned client vocabulary the recorder wraps. It is the
// intersection of kvstore's Frontend, Client, and TierClient APIs —
// defined here so this package needs no kvstore import and the checker
// can wrap any of the three (or a test double).
type KV interface {
	Get(key string) ([]byte, error)
	GetV(key string) (value []byte, ver uint64, tomb bool, err error)
	SetV(key string, value []byte) (uint64, error)
	DelV(key string) (uint64, error)
	Cas(key string, value []byte, expect uint64) (uint64, error)
}

// Errs classifies a KV implementation's errors for recording. Every
// classifier must be side-effect free.
type Errs struct {
	// IsNotFound reports a definite miss (kvstore.ErrNotFound).
	IsNotFound func(error) bool
	// Conflict extracts a CAS conflict: (live-version evidence, partial
	// flag, true) when err is one. A PARTIAL conflict is recorded as
	// Maybe — the swap landed on some replicas and may yet win.
	Conflict func(error) (cur uint64, partial bool, ok bool)
}

// RecordedKV wraps a KV so every call lands in the recorder as a
// timestamped op with the honest outcome classification:
//
//   - definite answers (success, miss, clean conflict) record as
//     themselves;
//   - everything else — transport errors, quorum failures, sheds,
//     partial conflicts — records as Maybe, because the operation may
//     have taken effect server-side.
//
// One RecordedKV is one logical process: never issue concurrent calls
// through the same instance (clone per goroutine with WithProc).
type RecordedKV struct {
	KV   KV
	R    *Recorder
	Proc int
	Errs Errs
}

// NewRecordedKV wraps kv with a fresh proc ID from r.
func NewRecordedKV(kv KV, r *Recorder, errs Errs) *RecordedKV {
	return &RecordedKV{KV: kv, R: r, Proc: r.NewProc(), Errs: errs}
}

// WithProc returns a sibling recorder sharing kv and history but with
// its own proc ID — one per concurrent client goroutine.
func (rk *RecordedKV) WithProc() *RecordedKV {
	return &RecordedKV{KV: rk.KV, R: rk.R, Proc: rk.R.NewProc(), Errs: rk.Errs}
}

// Get records an unversioned read.
func (rk *RecordedKV) Get(key string) ([]byte, error) {
	p := rk.R.Invoke(rk.Proc, KindGet, key, nil, 0)
	v, err := rk.KV.Get(key)
	switch {
	case err == nil:
		p.OK(v, 0)
	case rk.Errs.IsNotFound(err):
		p.NotFound(0, false)
	default:
		p.Maybe()
	}
	return v, err
}

// GetV records a versioned read, the recommended read for histories —
// it binds values to versions, which is most of the checker's power.
func (rk *RecordedKV) GetV(key string) ([]byte, uint64, bool, error) {
	p := rk.R.Invoke(rk.Proc, KindGet, key, nil, 0)
	v, ver, tomb, err := rk.KV.GetV(key)
	switch {
	case err == nil:
		p.OK(v, ver)
	case rk.Errs.IsNotFound(err):
		p.NotFound(ver, tomb)
	default:
		p.Maybe()
	}
	return v, ver, tomb, err
}

// SetV records a versioned write.
func (rk *RecordedKV) SetV(key string, value []byte) (uint64, error) {
	p := rk.R.Invoke(rk.Proc, KindSet, key, value, 0)
	ver, err := rk.KV.SetV(key, value)
	if err == nil {
		p.OK(nil, ver)
	} else {
		p.Maybe()
	}
	return ver, err
}

// DelV records a versioned delete.
func (rk *RecordedKV) DelV(key string) (uint64, error) {
	p := rk.R.Invoke(rk.Proc, KindDel, key, nil, 0)
	ver, err := rk.KV.DelV(key)
	if err == nil {
		p.OK(nil, ver)
	} else {
		p.Maybe()
	}
	return ver, err
}

// Cas records a compare-and-swap with the full three-valued outcome:
// success, definite conflict (with the live-version evidence), or Maybe
// for partial conflicts and transport failures.
func (rk *RecordedKV) Cas(key string, value []byte, expect uint64) (uint64, error) {
	p := rk.R.Invoke(rk.Proc, KindCas, key, value, expect)
	ver, err := rk.KV.Cas(key, value, expect)
	switch {
	case err == nil:
		p.OK(nil, ver)
	default:
		if cur, partial, ok := rk.Errs.Conflict(err); ok && !partial {
			p.Conflict(cur)
		} else {
			p.Maybe()
		}
	}
	return ver, err
}
