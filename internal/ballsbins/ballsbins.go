// Package ballsbins implements the balls-into-bins allocation models the
// paper's analysis rests on.
//
// The system analogy: keys are balls, back-end nodes are bins. A key with
// replication factor d may be served by any of d randomly chosen nodes,
// and the analysis assumes the node that ultimately serves it is the least
// loaded of the d — the classic "power of d choices" allocation. For the
// heavily loaded case (M >> N balls), Berenbrink, Czumaj, Steger & Vöcking
// (STOC'00) prove the maximum bin load is
//
//	M/N + ln(ln N)/ln(d) ± Θ(1)            (d >= 2)
//
// with high probability, while for d = 1 the deviation is the much larger
// Θ(sqrt(M ln N / N)). The gap term ln ln N / ln d is what makes a small
// O(n)-size cache sufficient: it does not grow with the number of keys.
//
// The package provides both the simulation (Assign, AssignWeighted) and
// the closed-form expectations (ExpectedMaxLoad*, GapTerm).
package ballsbins

import (
	"fmt"
	"math"

	"securecache/internal/xrand"
)

// Choice selects candidate bins for a ball. It abstracts the partitioner:
// the simulator uses a hash-based implementation, tests use explicit
// lists. Candidates must be distinct bins in [0, bins).
type Choice func(ball uint64) []int

// UniformChoice returns a Choice drawing d distinct uniform bins per ball
// using rng. The same ball gets the same candidates only if the caller
// memoizes; for allocation experiments each ball is placed once, so fresh
// randomness per call is exactly the model.
func UniformChoice(bins, d int, rng *xrand.Xoshiro256) Choice {
	if d <= 0 || d > bins {
		panic(fmt.Sprintf("ballsbins: UniformChoice(bins=%d, d=%d): need 0 < d <= bins", bins, d))
	}
	return func(uint64) []int {
		return SampleDistinct(bins, d, rng)
	}
}

// SampleDistinct draws d distinct values from [0, n) uniformly (Floyd's
// algorithm, O(d) expected time, no allocation beyond the result).
func SampleDistinct(n, d int, rng *xrand.Xoshiro256) []int {
	if d <= 0 || d > n {
		panic(fmt.Sprintf("ballsbins: SampleDistinct(n=%d, d=%d): need 0 < d <= n", n, d))
	}
	out := make([]int, 0, d)
	// Floyd's subset sampling: for j in [n-d, n), pick t in [0, j]; take t
	// unless already taken, else take j.
	taken := make(map[int]bool, d)
	for j := n - d; j < n; j++ {
		t := rng.Intn(j + 1)
		if taken[t] {
			t = j
		}
		taken[t] = true
		out = append(out, t)
	}
	return out
}

// Assignment is the result of placing balls into bins.
type Assignment struct {
	// Loads[b] is the total weight placed in bin b.
	Loads []float64
	// Counts[b] is the number of balls placed in bin b.
	Counts []int
}

// MaxLoad returns the largest bin weight.
func (a *Assignment) MaxLoad() float64 {
	m := 0.0
	for _, l := range a.Loads {
		if l > m {
			m = l
		}
	}
	return m
}

// TotalLoad returns the sum of all bin weights.
func (a *Assignment) TotalLoad() float64 {
	var s float64
	for _, l := range a.Loads {
		s += l
	}
	return s
}

// MaxCount returns the largest bin ball count.
func (a *Assignment) MaxCount() int {
	m := 0
	for _, c := range a.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Assign places balls unit-weight balls into bins bins, each ball going to
// the least loaded of the d candidates supplied by choose (ties broken
// toward the first candidate). This is the greedy d-choice process of the
// Berenbrink et al. analysis.
func Assign(balls, bins int, choose Choice) *Assignment {
	return AssignWeighted(bins, uniformWeights(balls), choose)
}

// uniformWeights returns a weight function assigning 1 to each of n balls.
func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// AssignWeighted places len(weights) balls, ball i carrying weights[i],
// into bins bins via greedy least-loaded-of-d. Weighted balls model keys
// with unequal query rates (e.g. Zipf tails).
func AssignWeighted(bins int, weights []float64, choose Choice) *Assignment {
	if bins <= 0 {
		panic(fmt.Sprintf("ballsbins: AssignWeighted with bins=%d", bins))
	}
	a := &Assignment{
		Loads:  make([]float64, bins),
		Counts: make([]int, bins),
	}
	for ball, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("ballsbins: ball %d has negative weight %v", ball, w))
		}
		cands := choose(uint64(ball))
		best := cands[0]
		for _, b := range cands[1:] {
			if a.Loads[b] < a.Loads[best] {
				best = b
			}
		}
		a.Loads[best] += w
		a.Counts[best]++
	}
	return a
}

// GapTerm returns ln(ln n)/ln(d), the additive gap of the heavily loaded
// d-choice bound (d >= 2). For d = 1 the gap concept does not apply and
// the function panics; use ExpectedMaxLoadOneChoice instead. For n <= e
// the inner log is clamped to keep the result finite and non-negative.
func GapTerm(n, d int) float64 {
	if d < 2 {
		panic(fmt.Sprintf("ballsbins: GapTerm with d=%d (defined for d >= 2)", d))
	}
	if n < 2 {
		panic(fmt.Sprintf("ballsbins: GapTerm with n=%d", n))
	}
	inner := math.Log(float64(n))
	if inner < 1 {
		inner = 1 // clamp so ln ln n >= 0
	}
	return math.Log(inner) / math.Log(float64(d))
}

// ExpectedMaxLoad returns the Berenbrink et al. estimate of the maximum
// bin count for balls balls in bins bins with d >= 2 choices:
// balls/bins + ln ln bins / ln d. The Θ(1) term is omitted (callers add a
// fitted constant; the paper uses k = gap + k' with fitted k = 1.2).
func ExpectedMaxLoad(balls, bins, d int) float64 {
	return float64(balls)/float64(bins) + GapTerm(bins, d)
}

// ExpectedMaxLoadOneChoice returns the classical single-choice estimate
// for the heavily loaded case: balls/bins + sqrt(2·balls·ln(bins)/bins).
func ExpectedMaxLoadOneChoice(balls, bins int) float64 {
	m, n := float64(balls), float64(bins)
	return m/n + math.Sqrt(2*m*math.Log(n)/n)
}
