package ballsbins

import (
	"math"
	"testing"

	"securecache/internal/xrand"
)

func TestSampleDistinct(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 1000; trial++ {
		s := SampleDistinct(20, 5, rng)
		if len(s) != 5 {
			t.Fatalf("got %d values, want 5", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("invalid sample %v", s)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctFullRange(t *testing.T) {
	rng := xrand.New(2)
	s := SampleDistinct(5, 5, rng)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("SampleDistinct(5,5) = %v, want a permutation of 0..4", s)
	}
}

func TestSampleDistinctUniform(t *testing.T) {
	// Each value should appear in a d-of-n sample with probability d/n.
	rng := xrand.New(3)
	const n, d, trials = 10, 3, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range SampleDistinct(n, d, rng) {
			counts[v]++
		}
	}
	want := float64(trials) * d / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("value %d appeared %d times, want ~%v", v, c, want)
		}
	}
}

func TestSampleDistinctPanics(t *testing.T) {
	rng := xrand.New(1)
	for _, tc := range []struct{ n, d int }{{5, 0}, {5, 6}, {0, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleDistinct(%d,%d) did not panic", tc.n, tc.d)
				}
			}()
			SampleDistinct(tc.n, tc.d, rng)
		}()
	}
}

func TestAssignConservation(t *testing.T) {
	rng := xrand.New(4)
	a := Assign(10000, 100, UniformChoice(100, 3, rng))
	if got := a.TotalLoad(); math.Abs(got-10000) > 1e-6 {
		t.Errorf("total load %v, want 10000", got)
	}
	totalCount := 0
	for _, c := range a.Counts {
		totalCount += c
	}
	if totalCount != 10000 {
		t.Errorf("total count %d, want 10000", totalCount)
	}
}

func TestAssignTwoChoicesBeatsOne(t *testing.T) {
	// The power of two choices: max load with d=2 must be well below d=1.
	const balls, bins, trials = 20000, 200, 10
	var max1, max2 float64
	for trial := 0; trial < trials; trial++ {
		rng1 := xrand.New(uint64(100 + trial))
		rng2 := xrand.New(uint64(200 + trial))
		max1 += Assign(balls, bins, UniformChoice(bins, 1, rng1)).MaxLoad()
		max2 += Assign(balls, bins, UniformChoice(bins, 2, rng2)).MaxLoad()
	}
	max1 /= trials
	max2 /= trials
	if max2 >= max1 {
		t.Errorf("d=2 max load %v not below d=1 max load %v", max2, max1)
	}
	// d=2 should be close to M/N + lnln: within a few balls of 100.
	if max2 > 110 {
		t.Errorf("d=2 max load %v, want near 100", max2)
	}
}

func TestAssignMatchesTheoryHeavilyLoaded(t *testing.T) {
	// With M=100k balls and N=1000 bins, d=3: theory says max ≈ 100 +
	// lnln(1000)/ln(3) ≈ 101.76 ± Θ(1).
	rng := xrand.New(7)
	a := Assign(100000, 1000, UniformChoice(1000, 3, rng))
	theory := ExpectedMaxLoad(100000, 1000, 3)
	if got := float64(a.MaxCount()); math.Abs(got-theory) > 3 {
		t.Errorf("simulated max count %v vs theory %v (|diff| > 3)", got, theory)
	}
}

func TestAssignWeighted(t *testing.T) {
	// Three balls of weight 5 into 3 bins with full choice (d=3) must
	// end up one per bin (greedy least-loaded).
	choose := func(uint64) []int { return []int{0, 1, 2} }
	a := AssignWeighted(3, []float64{5, 5, 5}, choose)
	for b, l := range a.Loads {
		if l != 5 {
			t.Errorf("bin %d load %v, want 5", b, l)
		}
	}
	if a.MaxLoad() != 5 || a.MaxCount() != 1 {
		t.Errorf("MaxLoad/MaxCount = %v/%d, want 5/1", a.MaxLoad(), a.MaxCount())
	}
}

func TestAssignWeightedUnequal(t *testing.T) {
	// Greedy: weights 10, 1, 1, 1 with choices {0,1}: ball0->0 (tie
	// toward first), ball1->1, ball2->1 (1 < 10), ball3->1 (2 < 10)...
	choose := func(uint64) []int { return []int{0, 1} }
	a := AssignWeighted(2, []float64{10, 1, 1, 1}, choose)
	if a.Loads[0] != 10 || a.Loads[1] != 3 {
		t.Errorf("loads = %v, want [10 3]", a.Loads)
	}
}

func TestAssignTieBreakFirstCandidate(t *testing.T) {
	choose := func(uint64) []int { return []int{2, 0, 1} }
	a := Assign(1, 3, choose)
	if a.Counts[2] != 1 {
		t.Errorf("tie not broken toward first candidate: counts %v", a.Counts)
	}
}

func TestAssignPanics(t *testing.T) {
	choose := func(uint64) []int { return []int{0} }
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero bins did not panic")
			}
		}()
		AssignWeighted(0, []float64{1}, choose)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative weight did not panic")
			}
		}()
		AssignWeighted(2, []float64{-1}, choose)
	}()
}

func TestGapTerm(t *testing.T) {
	// GapTerm(1000, 3) = ln(ln 1000)/ln 3 ≈ 1.759.
	got := GapTerm(1000, 3)
	want := math.Log(math.Log(1000)) / math.Log(3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("GapTerm(1000,3) = %v, want %v", got, want)
	}
	// Monotone: more choices -> smaller gap.
	if GapTerm(1000, 4) >= GapTerm(1000, 3) {
		t.Error("gap not decreasing in d")
	}
	// More bins -> larger gap.
	if GapTerm(10000, 3) <= GapTerm(100, 3) {
		t.Error("gap not increasing in n")
	}
	// The paper's observation that the gap stays a small constant for all
	// deployed cluster sizes (n < 1e5, d >= 3). The exact "< 2" claim in
	// the paper is slightly loose — ln ln 1e5 / ln 3 ≈ 2.22 — but the
	// point stands: the term is O(1), so the cache-size rule is O(n).
	if g := GapTerm(99999, 3); g >= 2.3 {
		t.Errorf("GapTerm(1e5-1, 3) = %v, want < 2.3 (paper's O(n) claim)", g)
	}
}

func TestGapTermClampSmallN(t *testing.T) {
	if g := GapTerm(2, 2); g != 0 {
		t.Errorf("GapTerm(2,2) = %v, want 0 (clamped)", g)
	}
}

func TestGapTermPanics(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{1000, 1}, {1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GapTerm(%d,%d) did not panic", tc.n, tc.d)
				}
			}()
			GapTerm(tc.n, tc.d)
		}()
	}
}

func TestExpectedMaxLoadFormulas(t *testing.T) {
	// d-choice: M/N + gap.
	if got, want := ExpectedMaxLoad(100000, 1000, 3), 100+GapTerm(1000, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedMaxLoad = %v, want %v", got, want)
	}
	// one-choice is much larger in the heavy regime.
	if ExpectedMaxLoadOneChoice(100000, 1000) <= ExpectedMaxLoad(100000, 1000, 2) {
		t.Error("one-choice bound not above two-choice bound")
	}
}

func TestUniformChoicePanics(t *testing.T) {
	rng := xrand.New(1)
	for _, tc := range []struct{ bins, d int }{{5, 0}, {5, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("UniformChoice(%d,%d) did not panic", tc.bins, tc.d)
				}
			}()
			UniformChoice(tc.bins, tc.d, rng)
		}()
	}
}

func BenchmarkAssignD3(b *testing.B) {
	rng := xrand.New(1)
	choose := UniformChoice(1000, 3, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Assign(10000, 1000, choose)
	}
}
