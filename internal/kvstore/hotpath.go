package kvstore

import (
	"sync"

	"securecache/internal/cache"
)

// This file holds the frontend's hot-path plumbing: the concurrency-safe
// cache view and the miss-coalescing singleflight group.

// syncCache is the frontend's concurrency-safe view of the configured
// cache. Cache policies themselves are single-threaded; the frontend
// either wraps one behind a mutex (lockedCache, the seed behavior) or —
// when the configured cache declares itself concurrency-safe, like
// cache.Sharded — uses it directly and lets hits proceed in parallel.
type syncCache interface {
	Get(id uint64) ([]byte, bool)
	Put(id uint64, blob []byte) bool
	// PutIfPresent refreshes id only if it is already cached, atomically,
	// so the write path can never evict a popular entry for a cold key.
	PutIfPresent(id uint64, blob []byte) bool
	Remove(id uint64) bool
	Stats() cache.Stats
}

// resizableCache is what the auto-provisioner needs from a syncCache to
// apply a new c* live (cache.Sharded satisfies it directly; lockedCache
// forwards under its mutex to any policy implementing cache.Resizable).
type resizableCache interface {
	Resize(capacity int) bool
}

// concurrentCache is what a cache must provide for the frontend to skip
// its serializing mutex: the base interface, the atomic write-path
// refresh, and the ConcurrentSafe marker (cache.Sharded carries all
// three).
type concurrentCache interface {
	cache.Cache
	PutIfPresent(id uint64, blob []byte) bool
	ConcurrentSafe()
}

// newSyncCache wraps c for concurrent use (nil for a nil cache).
func newSyncCache(c cache.Cache) syncCache {
	switch c := c.(type) {
	case nil:
		return nil
	case concurrentCache:
		return c
	default:
		return &lockedCache{c: c}
	}
}

// lockedCache serializes a single-threaded cache policy behind one
// mutex.
type lockedCache struct {
	mu sync.Mutex
	c  cache.Cache
}

func (l *lockedCache) Get(id uint64) ([]byte, bool) {
	l.mu.Lock()
	v, ok := l.c.Get(id)
	l.mu.Unlock()
	return v, ok
}

func (l *lockedCache) Put(id uint64, blob []byte) bool {
	l.mu.Lock()
	ok := l.c.Put(id, blob)
	l.mu.Unlock()
	return ok
}

func (l *lockedCache) PutIfPresent(id uint64, blob []byte) bool {
	l.mu.Lock()
	ok := l.c.Contains(id) && l.c.Put(id, blob)
	l.mu.Unlock()
	return ok
}

func (l *lockedCache) Remove(id uint64) bool {
	l.mu.Lock()
	ok := l.c.Remove(id)
	l.mu.Unlock()
	return ok
}

func (l *lockedCache) Stats() cache.Stats {
	l.mu.Lock()
	st := l.c.Stats()
	l.mu.Unlock()
	return st
}

func (l *lockedCache) Resize(capacity int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.c.(cache.Resizable)
	return ok && r.Resize(capacity)
}

func (l *lockedCache) Cap() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Cap()
}

// flightGroup coalesces concurrent fetches of the same key: the first
// caller (the leader) runs the fetch, everyone else arriving before it
// finishes waits and shares the result. Under a miss storm on a hot key
// — exactly the adversarial pattern the paper's provisioning rule feeds
// the backends — the replica group sees ONE read instead of one per
// client. Hand-rolled because the repo carries no external dependencies.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do runs fn for key, coalescing concurrent calls. shared reports that
// this caller joined an existing flight instead of running fn. The
// returned value may alias other callers' — the same rule as cache
// reads, whose returned slices alias the cached blob.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (v []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if fl, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-fl.done
		return fl.val, fl.err, true
	}
	fl := &flight{done: make(chan struct{})}
	g.m[key] = fl
	g.mu.Unlock()

	fl.val, fl.err = fn()
	close(fl.done)

	g.mu.Lock()
	// Forget may already have replaced or removed the entry; only the
	// leader's own flight is cleared.
	if g.m[key] == fl {
		delete(g.m, key)
	}
	g.mu.Unlock()
	return fl.val, fl.err, false
}

// Forget detaches any in-progress flight for key: callers already
// waiting still get its result, but the next Do starts fresh. The write
// path calls this after mutating a key so a post-write miss can never
// join a fetch that began before the write.
func (g *flightGroup) Forget(key string) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}
