package kvstore

import (
	"errors"
	"fmt"
	"strings"

	"securecache/internal/repair"
)

// Cas performs a replicated compare-and-swap: value replaces the entry
// only if its live version equals expect (0 = CAS-create over an absent
// or tombstoned key), succeeding once W replicas applied the swap.
//
// Why quorum intersection makes this linearizable per key: the frontend
// stamps each CAS with a fresh version from its monotonic clock and
// fans it out to the key's group, where every replica checks the
// precondition under its shard lock. With W a majority of d, two CAS
// ops expecting the same version share at least one replica; that
// replica's shard lock serializes them and the loser fails its check
// there, so it cannot collect W applied acks. At most one swap per
// expectation wins.
//
// Failure reporting is three-valued, and callers must honor all three:
//
//   - nil: the swap committed at the returned version.
//   - *CasConflictError with Partial false: definitely rejected —
//     replicas with conflict evidence answered and nothing was written.
//   - *CasConflictError with Partial true, or any transport/quorum
//     error: AMBIGUOUS. The value reached some replicas but the quorum
//     outcome is unknown (a partially applied swap at the highest
//     version can still win anti-entropy later). Recorded histories
//     must treat these as "maybe applied" — the consistency checker's
//     register model does.
func (f *Frontend) Cas(key string, value []byte, expect uint64) (uint64, error) {
	f.requestsTotal.Inc()
	f.casTotal.Inc()
	// As in Set: once the swap is down, no later miss may join a fetch
	// that started before it.
	defer f.flights.Forget(key)
	f.rotMu.RLock()
	defer f.rotMu.RUnlock()
	epoch, cur, prev := f.part.Snapshot()
	id := KeyID(key)
	if prev != nil && !f.part.Migrated(id) {
		// Mid-rotation the new group may not hold the key yet, and a CAS
		// judged against its emptiness would misfire (an expect-0 create
		// "succeeding" over a live old-generation value). Pull the key
		// through the dual-epoch read first: a fallback hit migrates it
		// into the new group (readRepair -> moveEntry), after which the
		// precondition is judged against real state. A clean miss in both
		// generations means live version 0 is the truth.
		if _, _, err := f.fetchReplicasVersioned(key); err != nil && !errors.Is(err, ErrNotFound) {
			return 0, fmt.Errorf("kvstore: cas %q: pre-migration read: %w", key, err)
		}
	}
	if prev != nil {
		// The key may legitimately exist again after the swap: drop any
		// rotation-era tombstone, as Set does.
		f.tombMu.Lock()
		delete(f.tombs, key)
		f.tombMu.Unlock()
	}
	ver := f.nextVer()
	acks, busies := 0, 0
	conflictCur := uint64(0) // highest newer-than-expect live version seen
	laggingCur := uint64(0)  // highest older-than-expect live version seen
	var lagging []int        // replicas whose live version was older than expect
	var failed []int         // transport/shed failures
	var failures []string
	ns := f.fleet.Load()
	for _, node := range cur.Group(id) {
		ns.inflight[node].Add(1)
		got, err := ns.clients[node].CasVersioned(key, value, epoch, expect, ver)
		ns.inflight[node].Add(-1)
		var conflict *CasConflictError
		switch {
		case err == nil:
			f.health.onSuccess(node)
			acks++
		case errors.As(err, &conflict):
			// A conflict answer is a healthy answer. Split it by
			// direction: a NEWER live version is real evidence the
			// expectation lost; an OLDER one just means this replica
			// missed the write the caller read (it is lagging, and the
			// quorum that holds the newer state decides).
			f.health.onSuccess(node)
			if got > expect {
				if got > conflictCur {
					conflictCur = got
				}
			} else {
				if got > laggingCur {
					laggingCur = got
				}
				lagging = append(lagging, node)
			}
		default:
			f.noteBackendError(node, err)
			if errors.Is(err, ErrBusy) {
				busies++
			}
			failed = append(failed, node)
			failures = append(failures, fmt.Sprintf("node %d: %v", node, err))
		}
	}
	if acks >= f.writeQuorum {
		// Committed. Converge the stragglers: replicas that failed, were
		// lagging, or even conflicted (their newer version belonged to a
		// below-quorum loser) all converge to value@ver through hinted
		// handoff — ver is the highest version in the group, so the
		// replay wins everywhere.
		for _, node := range failed {
			f.enqueueHint(repair.Hint{Node: node, Key: key, Value: value, Epoch: epoch, Ver: ver})
		}
		for _, node := range lagging {
			f.enqueueHint(repair.Hint{Node: node, Key: key, Value: value, Epoch: epoch, Ver: ver})
		}
		if f.cache != nil {
			f.cache.PutIfPresent(id, encodeEntry(key, ver, value))
		}
		return ver, nil
	}
	// Below quorum: whatever the cache holds may now contradict some
	// replicas either way.
	f.cacheRemove(key)
	if conflictCur > 0 || (expect > 0 && len(lagging) > 0 && acks == 0 && len(failed) == 0) {
		// The expectation lost. Partial marks the ambiguous flavor: our
		// value landed on acks replicas (or its fate is clouded by
		// transport failures), so the caller cannot treat the swap as
		// never-happened. No hints here — actively spreading a failed
		// CAS would manufacture exactly the lost-update CAS exists to
		// prevent; a partial copy either loses to the conflicting newer
		// version during anti-entropy or (rarely) wins with this
		// frontend's highest version, which is why Partial must be
		// surfaced rather than swallowed.
		f.casConflicts.Inc()
		cur := conflictCur
		if cur == 0 {
			// Unanimous lagging conflict: the whole group answered with
			// versions OLDER than the caller's expectation. Report the
			// highest one as the retry basis — that is the group's live
			// truth right now.
			cur = laggingCur
		}
		return cur, &CasConflictError{Cur: cur, Partial: acks > 0 || len(failed) > 0}
	}
	if len(failures) > 0 && busies == len(failures) && acks == 0 && conflictCur == 0 && len(lagging) == 0 {
		return 0, fmt.Errorf("kvstore: cas %q: %d/%d acks (need %d): %s: %w",
			key, acks, len(cur.Group(id)), f.writeQuorum, strings.Join(failures, "; "), ErrBusy)
	}
	detail := ""
	if len(failures) > 0 {
		detail = ": " + strings.Join(failures, "; ")
	}
	return 0, fmt.Errorf("kvstore: cas %q: %d/%d acks (need %d, %d lagging)%s",
		key, acks, len(cur.Group(id)), f.writeQuorum, len(lagging), detail)
}
