package kvstore

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// checkGoroutineLeaks snapshots the goroutine count when called and, at
// test cleanup, asserts the count returns to that level (with retries,
// since conn teardown is asynchronous). It keeps probe loops, handler
// goroutines, and shed paths from regressing silently: every Close must
// actually reap what Serve spawned.
//
// Not safe for t.Parallel() tests — the count is process-global.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			runtime.Gosched()
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after cleanup\n%s", before, now, shortenStacks(string(buf[:n])))
	})
}

// shortenStacks keeps leak reports readable: first line of each stack.
func shortenStacks(s string) string {
	var out []string
	for _, block := range strings.Split(s, "\n\n") {
		lines := strings.SplitN(block, "\n", 3)
		if len(lines) >= 2 {
			out = append(out, lines[0]+" | "+strings.TrimSpace(lines[1]))
		}
	}
	return strings.Join(out, "\n")
}

// TestCloseLeavesNoGoroutines drives real traffic through a full
// cluster — including the probe loop (one backend is killed so the
// breaker opens and probing starts) — then closes everything and
// asserts the process returns to its pre-cluster goroutine count.
func TestCloseLeavesNoGoroutines(t *testing.T) {
	checkGoroutineLeaks(t)
	lc, err := StartLocalCluster(LocalConfig{
		Nodes: 3, Replication: 2, PartitionSeed: 21,
		Client: ClientConfig{MaxRetries: -1, RetryBackoff: time.Millisecond},
		Health: HealthConfig{FailureThreshold: 2, ProbeInterval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(lc.FrontendAddr)
	for i := 0; i < 20; i++ {
		if err := c.Set(testKeyName(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Kill one backend and keep reading so the breaker opens and the
	// probe loop has real work when the cluster shuts down.
	lc.Backends[0].Close()
	for i := 0; i < 20; i++ {
		c.Get(testKeyName(i))
	}
	c.Close()
	lc.Close()
}

// testKeyName mirrors workload.KeyName without importing it (avoids a
// package cycle risk in test-only code).
func testKeyName(i int) string { return "key-" + string(rune('a'+i%26)) + "-" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
