package kvstore

import (
	"fmt"
	"sync"
	"testing"
)

// scanAll pages through the whole store and returns every entry seen.
func scanAll(t *testing.T, s *Store, opts ScanOptions) map[string]int {
	t.Helper()
	seen := make(map[string]int)
	cursor := uint64(0)
	for {
		page, next := s.Scan(cursor, 64, 0, 1<<20, opts)
		for _, e := range page {
			seen[e.Key]++
		}
		if next == 0 {
			return seen
		}
		cursor = next
	}
}

// TestStoreConcurrentVersionedWrites hammers one store with concurrent
// versioned writes, deletes, and scans, then verifies the bookkeeping the
// hot path depends on: a full SCAN sees every surviving key exactly once,
// and the O(1) Len/TombCount counters match a brute-force recount via
// GetVersioned. Run under -race this is the sharded store's safety proof.
func TestStoreConcurrentVersionedWrites(t *testing.T) {
	s := NewStore()
	const (
		workers = 8
		keys    = 256
		opsEach = 1500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rnd := uint64(w)*0x9e3779b9 + 1
			for i := 0; i < opsEach; i++ {
				rnd = rnd*6364136223846793005 + 1442695040888963407
				k := fmt.Sprintf("ckey-%03d", rnd%keys)
				// Versions unique per op so highest-version-wins has a
				// total order to converge to.
				ver := uint64(w*opsEach+i) + 1
				switch rnd % 8 {
				case 0:
					s.DeleteVersioned(k, 0, ver)
				case 1:
					s.SetGuarded(k, []byte(k), uint32(rnd%4), ver)
				case 2:
					s.Get(k)
				case 3:
					s.Scan(0, 16, 0, 1<<16, ScanOptions{Tombs: true})
				default:
					s.SetVersioned(k, []byte(k), 0, ver)
				}
			}
		}(w)
	}
	wg.Wait()

	// Brute-force recount of live keys and tombstones.
	live, tombs := 0, 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("ckey-%03d", i)
		if _, _, _, tomb, ok := s.GetVersioned(k); ok {
			if tomb {
				tombs++
			} else {
				live++
			}
		}
	}
	if got := s.Len(); got != live {
		t.Errorf("Len() = %d, recount says %d live keys", got, live)
	}
	if got := s.TombCount(); got != tombs {
		t.Errorf("TombCount() = %d, recount says %d tombstones", got, tombs)
	}

	// Quiescent SCAN must deliver every surviving key exactly once.
	seen := scanAll(t, s, ScanOptions{})
	if len(seen) != live {
		t.Errorf("scan saw %d keys, want %d live", len(seen), live)
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("scan saw %q %d times", k, n)
		}
		if _, ok := s.Get(k); !ok {
			t.Errorf("scan returned %q which reads as absent", k)
		}
	}
	withTombs := scanAll(t, s, ScanOptions{Tombs: true})
	if len(withTombs) != live+tombs {
		t.Errorf("tombstone scan saw %d entries, want %d", len(withTombs), live+tombs)
	}
}

// TestStoreTombCounter walks every mutation that can create or destroy a
// tombstone and checks the O(1) counters after each step.
func TestStoreTombCounter(t *testing.T) {
	s := NewStore()
	check := func(step string, wantLive, wantTombs int) {
		t.Helper()
		if got := s.Len(); got != wantLive {
			t.Fatalf("%s: Len() = %d, want %d", step, got, wantLive)
		}
		if got := s.TombCount(); got != wantTombs {
			t.Fatalf("%s: TombCount() = %d, want %d", step, got, wantTombs)
		}
	}
	check("empty", 0, 0)

	s.SetVersioned("a", []byte("1"), 0, 1)
	check("set a", 1, 0)
	s.DeleteVersioned("a", 0, 2)
	check("tombstone a", 0, 1)
	// Same-version repeat: no state change either way.
	s.DeleteVersioned("a", 0, 2)
	check("repeat tombstone a", 0, 1)
	// Stale write under the tombstone's version must not apply.
	if s.SetVersioned("a", []byte("stale"), 0, 1) {
		t.Fatal("stale write applied over tombstone")
	}
	check("stale set a", 0, 1)
	// Newer write resurrects the key and retires the tombstone.
	s.SetVersioned("a", []byte("3"), 0, 3)
	check("resurrect a", 1, 0)

	// Tombstone an absent key.
	s.DeleteVersioned("b", 0, 5)
	check("tombstone b", 1, 1)
	// Guarded migration copy over the tombstone (newer epoch wins).
	if !s.SetGuarded("b", []byte("mig"), 2, 4) {
		t.Fatal("guarded copy declined over older-epoch tombstone")
	}
	check("migrate b", 2, 0)

	// Hard delete of a tombstone.
	s.DeleteVersioned("c", 0, 7)
	check("tombstone c", 2, 1)
	s.Delete("c")
	check("hard-delete c", 2, 0)

	// Sweep only takes tombstones below the horizon.
	s.DeleteVersioned("d", 0, 10)
	s.DeleteVersioned("e", 0, 20)
	check("two tombstones", 2, 2)
	if swept := s.SweepTombstones(15); swept != 1 {
		t.Fatalf("SweepTombstones(15) = %d, want 1", swept)
	}
	check("after sweep", 2, 1)
}

// TestStoreAppendValue covers the copy-free read used by the backend GET
// path: value bytes land in the caller's buffer, tombstones and unknown
// keys append nothing.
func TestStoreAppendValue(t *testing.T) {
	s := NewStore()
	s.SetVersioned("k", []byte("hello"), 0, 3)
	buf := make([]byte, 0, 64)
	buf = append(buf, "hdr:"...)
	out, ver, tomb, ok := s.AppendValue(buf, "k")
	if !ok || tomb || ver != 3 || string(out) != "hdr:hello" {
		t.Fatalf("AppendValue(k) = %q, ver=%d, tomb=%v, ok=%v", out, ver, tomb, ok)
	}
	out, _, tomb, ok = s.AppendValue(out[:0], "missing")
	if ok || tomb || len(out) != 0 {
		t.Fatalf("AppendValue(missing) = %q, tomb=%v, ok=%v", out, tomb, ok)
	}
	s.DeleteVersioned("k", 0, 9)
	out, ver, tomb, ok = s.AppendValue(out[:0], "k")
	if !ok || !tomb || ver != 9 || len(out) != 0 {
		t.Fatalf("AppendValue(tombstoned) = %q, ver=%d, tomb=%v, ok=%v", out, ver, tomb, ok)
	}
}
