package kvstore

import (
	"bufio"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"securecache/internal/overload"
	"securecache/internal/proto"
)

// TestBackendShedsOnRateLimit: requests beyond the token bucket come
// back StatusBusy (ErrBusy to the caller) instead of queueing, and the
// shed is counted. Ping is exempt so probes keep working.
func TestBackendShedsOnRateLimit(t *testing.T) {
	checkGoroutineLeaks(t)
	b, addr, err := StartBackendWithLimits(0, "127.0.0.1:0",
		overload.Limits{RateLimit: 5, RateBurst: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Store().Set("k", []byte("v"))

	c := NewClientWithConfig(addr, ClientConfig{MaxRetries: -1})
	defer c.Close()

	var ok, busy int
	for i := 0; i < 40; i++ {
		_, err := c.Get("k")
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrBusy):
			busy++
		default:
			t.Fatalf("Get %d: %v", i, err)
		}
	}
	if ok == 0 || busy == 0 {
		t.Fatalf("ok=%d busy=%d; want both non-zero under a rate limit", ok, busy)
	}
	if got := b.Metrics().Counter("shed_total").Value(); got != uint64(busy) {
		t.Errorf("shed_total = %d, want %d", got, busy)
	}
	// Probes bypass admission: a saturated node still answers Ping.
	for i := 0; i < 10; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("Ping %d on saturated node: %v", i, err)
		}
	}
}

// TestBackendMaxConnsRejectsAtAccept: connections past MaxConns are
// closed before they can hold a handler goroutine.
func TestBackendMaxConnsRejectsAtAccept(t *testing.T) {
	checkGoroutineLeaks(t)
	b, addr, err := StartBackendWithLimits(0, "127.0.0.1:0", overload.Limits{MaxConns: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	hold := make([]net.Conn, 0, 2)
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		hold = append(hold, conn)
	}
	// Give the accept loop time to register both.
	waitFor(t, time.Second, func() bool {
		c3, err := net.Dial("tcp", addr)
		if err != nil {
			return true // refused outright also counts as rejected
		}
		defer c3.Close()
		c3.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		_, rerr := c3.Read(make([]byte, 1))
		return rerr == io.EOF
	})
	if got := b.Metrics().Counter("busy_conns_rejected_total").Value(); got == 0 {
		t.Error("busy_conns_rejected_total = 0 after over-cap connects")
	}
	// Established connections still work at the cap.
	cc := hold[0]
	cc.SetDeadline(time.Now().Add(2 * time.Second))
	if err := pingRaw(cc); err != nil {
		t.Fatalf("held conn unusable at MaxConns: %v", err)
	}
}

// pingRaw does one OpPing exchange on an already-established conn (a
// fresh Client would dial a new connection and defeat the point).
func pingRaw(conn net.Conn) error {
	if err := proto.WriteRequest(conn, &proto.Request{Op: proto.OpPing}); err != nil {
		return err
	}
	resp, err := proto.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return err
	}
	return resp.Err()
}

// TestBackendMaxInflightSheds: with one in-flight slot held (a reader
// draining a large response slowly), concurrent requests are shed.
func TestBackendMaxInflightSheds(t *testing.T) {
	checkGoroutineLeaks(t)
	b, addr, err := StartBackendWithLimits(0, "127.0.0.1:0",
		overload.Limits{MaxInflight: 1, AdmissionWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// A value far beyond the socket buffer, so writing the response
	// blocks until the peer reads — the slot stays held.
	big := make([]byte, 4<<20)
	b.Store().Set("big", big)
	b.Store().Set("small", []byte("v"))

	slow, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	// Request the big value and do NOT read the response: the handler
	// occupies the only in-flight slot while blocked on the write.
	if err := proto.WriteRequest(slow, &proto.Request{Op: proto.OpGet, Key: "big"}); err != nil {
		t.Fatal(err)
	}

	c := NewClientWithConfig(addr, ClientConfig{MaxRetries: -1})
	defer c.Close()
	gotBusy := false
	waitFor(t, 2*time.Second, func() bool {
		_, err := c.Get("small")
		if errors.Is(err, ErrBusy) {
			gotBusy = true
		}
		return gotBusy
	})
	if !gotBusy {
		t.Fatal("no request was shed while the in-flight slot was held")
	}
	// Drain the big response: the slot frees and service resumes.
	go io.Copy(io.Discard, slow)
	waitFor(t, 2*time.Second, func() bool {
		_, err := c.Get("small")
		return err == nil
	})
}

// TestFrontendFailsOverOnBusyWithoutTrippingBreaker is the core
// semantic test: a shedding backend is alive, so the frontend must
// fail over to a replica AND keep the shedding node's breaker closed.
func TestFrontendFailsOverOnBusyWithoutTrippingBreaker(t *testing.T) {
	checkGoroutineLeaks(t)
	// Victim node 0 sheds everything (rate ~0); nodes 1, 2 are open.
	victim, vaddr, err := StartBackendWithLimits(0, "127.0.0.1:0",
		overload.Limits{RateLimit: 0.001, RateBurst: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	b1, addr1, err := StartBackend(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b1.Close()
	b2, addr2, err := StartBackend(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()

	f, err := NewFrontend(FrontendConfig{
		BackendAddrs: []string{vaddr, addr1, addr2},
		Replication:  2, PartitionSeed: 31,
		Client: ClientConfig{MaxRetries: -1},
		Health: HealthConfig{FailureThreshold: 2, ProbeInterval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Seed every backend so any replica can serve any key.
	for i := 0; i < 32; i++ {
		for _, b := range []*Backend{victim, b1, b2} {
			b.Store().Set(testKeyName(i), []byte("v"))
		}
	}
	// Burn the victim's single burst token, then hammer keys that have
	// the victim in their group.
	for i := 0; i < 32; i++ {
		if v, err := f.Get(testKeyName(i)); err != nil || string(v) != "v" {
			t.Fatalf("Get %d through shedding victim = %q, %v", i, v, err)
		}
	}
	if victim.Metrics().Counter("shed_total").Value() == 0 {
		t.Fatal("victim shed nothing; test routed no traffic to it")
	}
	if got := f.Metrics().Counter("backend_busy_total").Value(); got == 0 {
		t.Error("frontend recorded no backend_busy_total")
	}
	if got := f.health.state(0); got != breakerClosed {
		t.Errorf("shedding node's breaker state = %d, want closed", got)
	}
	if got := f.Metrics().Counter("breaker_open_total").Value(); got != 0 {
		t.Errorf("breaker_open_total = %d, want 0 — busy must not trip the breaker", got)
	}
}

// TestFrontendOwnListenerSheds: the frontend applies the same admission
// control to its own clients, answering StatusBusy past its limits.
func TestFrontendOwnListenerSheds(t *testing.T) {
	checkGoroutineLeaks(t)
	lc := startCluster(t, LocalConfig{
		Nodes: 2, Replication: 2, PartitionSeed: 17,
		FrontendLimits: overload.Limits{RateLimit: 5, RateBurst: 2},
		Client:         ClientConfig{MaxRetries: -1},
	})
	c := NewClientWithConfig(lc.FrontendAddr, ClientConfig{MaxRetries: -1})
	defer c.Close()
	if err := c.Set("fk", []byte("v")); err != nil && !errors.Is(err, ErrBusy) {
		t.Fatal(err)
	}
	var busy int
	for i := 0; i < 40; i++ {
		if _, err := c.Get("fk"); errors.Is(err, ErrBusy) {
			busy++
		}
	}
	if busy == 0 {
		t.Fatal("frontend shed nothing past its rate limit")
	}
	if got := lc.Frontend.Metrics().Counter("shed_total").Value(); got == 0 {
		t.Error("frontend shed_total = 0")
	}
	// Stats stays reachable on a saturated frontend (exempt op).
	if _, err := c.Stats(); err != nil {
		t.Errorf("Stats on saturated frontend: %v", err)
	}
}

// TestFrontendIdleTimeoutDropsSlowLoris is the regression test for the
// frontend-side slow-loris hole: a client that connects and sends
// nothing must be disconnected once IdleTimeout elapses, not hold a
// goroutine forever.
func TestFrontendIdleTimeoutDropsSlowLoris(t *testing.T) {
	checkGoroutineLeaks(t)
	lc := startCluster(t, LocalConfig{
		Nodes: 2, Replication: 1, PartitionSeed: 23,
		FrontendIdleTimeout: 60 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", lc.FrontendAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	start := time.Now()
	_, rerr := conn.Read(make([]byte, 1))
	if rerr == nil {
		t.Fatal("stalled connection read data")
	}
	if isTimeout(rerr) {
		t.Fatalf("frontend never dropped the stalled connection (read timed out after %v)", time.Since(start))
	}
	// An active client is unaffected: each request resets the window.
	c := NewClient(lc.FrontendAddr)
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("active client Ping %d: %v", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWireErrorsAreSanitized is the regression test for internal error
// leakage: a frontend whose replicas are all unreachable must not put
// backend addresses or dial error detail on the wire.
func TestWireErrorsAreSanitized(t *testing.T) {
	checkGoroutineLeaks(t)
	// Reserve two addresses, then close them: dials will fail fast.
	deadAddrs := make([]string, 2)
	for i := range deadAddrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		deadAddrs[i] = l.Addr().String()
		l.Close()
	}
	f, faddr, err := StartFrontend(FrontendConfig{
		BackendAddrs: deadAddrs,
		Replication:  2, PartitionSeed: 3,
		Client: ClientConfig{MaxRetries: -1, DialTimeout: 200 * time.Millisecond},
		Health: HealthConfig{FailureThreshold: -1},
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c := NewClientWithConfig(faddr, ClientConfig{MaxRetries: -1})
	defer c.Close()
	_, gerr := c.Get("leak-probe")
	if gerr == nil {
		t.Fatal("Get with all backends dead succeeded")
	}
	msg := gerr.Error()
	for _, addr := range deadAddrs {
		if strings.Contains(msg, addr) {
			t.Errorf("wire error leaks backend address %s: %q", addr, msg)
		}
	}
	for _, frag := range []string{"dial", "connection refused", "127.0.0.1"} {
		if strings.Contains(msg, frag) {
			t.Errorf("wire error leaks internal detail %q: %q", frag, msg)
		}
	}
	if !strings.Contains(msg, "internal error") {
		t.Errorf("sanitized message missing marker: %q", msg)
	}
}

// TestRetryBudgetStopsRetryStorm: with a shared budget, a wave of
// failures gets at most budget-many retries in aggregate, not
// MaxRetries × requests.
func TestRetryBudgetStopsRetryStorm(t *testing.T) {
	checkGoroutineLeaks(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	budget := overload.NewRetryBudget(3, 0.1)
	var retries, suppressed int
	c := NewClientWithConfig(dead, ClientConfig{
		MaxRetries:        4,
		RetryBackoff:      time.Microsecond,
		DialTimeout:       100 * time.Millisecond,
		RetryBudget:       budget,
		OnRetry:           func() { retries++ },
		OnRetrySuppressed: func() { suppressed++ },
	})
	defer c.Close()

	const requests = 10
	for i := 0; i < requests; i++ {
		if _, err := c.Get("k"); err == nil {
			t.Fatal("Get against a dead address succeeded")
		}
	}
	// Without the budget this would be MaxRetries×requests = 40.
	if retries != 3 {
		t.Errorf("aggregate retries = %d, want exactly the budget (3)", retries)
	}
	if suppressed == 0 {
		t.Error("no retry was recorded as suppressed")
	}
	if budget.Exhausted() == 0 {
		t.Error("budget.Exhausted() = 0")
	}
}

// TestFrontendRetryBudgetMetric: the frontend's shared budget surfaces
// suppression in retry_budget_exhausted_total.
func TestFrontendRetryBudgetMetric(t *testing.T) {
	checkGoroutineLeaks(t)
	lc := startCluster(t, LocalConfig{
		Nodes: 2, Replication: 2, PartitionSeed: 41,
		Client:         ClientConfig{MaxRetries: 3, RetryBackoff: time.Microsecond, DialTimeout: 100 * time.Millisecond},
		RetryBudgetMax: 2, RetryBudgetRatio: 0.1,
		Health: HealthConfig{FailureThreshold: -1},
	})
	f := lc.Frontend
	if err := f.Set("bk", []byte("v")); err != nil {
		t.Fatal(err)
	}
	lc.Backends[0].Close()
	lc.Backends[1].Close()
	for i := 0; i < 10; i++ {
		f.Get("bk") // all fail; retries drain the shared budget
	}
	if got := f.Metrics().Counter("retry_budget_exhausted_total").Value(); got == 0 {
		t.Error("retry_budget_exhausted_total = 0 after a failure wave")
	}
	if got := f.Metrics().Counter("retries_total").Value(); got > 4 {
		// Budget 2 plus up to one free reused-conn retry per pooled conn.
		t.Errorf("retries_total = %d; budget did not damp the storm", got)
	}
}

// waitFor polls cond until true or the deadline elapses.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
