package kvstore

// Pipelined client transport. The lockstep path in client.go pays one
// full write-syscall + read-syscall round trip per request and holds a
// pooled connection exclusively for its duration; at loopback latencies
// the hot path is pure syscall and scheduler overhead. The pipelined
// path multiplexes every caller onto ONE connection: a bounded window
// of correlated frames is in flight at once, a dedicated writer
// goroutine coalesces queued frames into a single writev
// (net.Buffers), and a dedicated reader matches responses back to
// waiters by correlation ID — out of order, as the server completes
// them.
//
// Failure model: any transport error tears the whole conn down and
// fails every in-flight call with the same error ("fail-all-pending").
// Callers' errors then feed the existing Do retry policy — the pipe is
// redialed lazily by the next call, so a conn death costs one round of
// free retries, exactly like a dropped pooled conn on the lockstep
// path. Response timeouts do NOT tear the conn down: the slot stays
// occupied (the server still owes that frame) and the late response is
// discarded on arrival; only a read deadline expiring with frames
// outstanding — a truly hung server — kills the conn.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"securecache/internal/proto"
)

// maxPipelineDepth caps ClientConfig.PipelineDepth. Beyond a few
// hundred in-flight frames the window stops buying syscall
// amortization and only adds memory and head-of-line latency.
const maxPipelineDepth = 1024

// pipeCall is one in-flight request's rendezvous point. ch is buffered
// (capacity 1) so no sender ever blocks delivering; abandoned marks a
// call whose waiter gave up (response timeout) — the reader discards
// the late response instead of delivering it.
//
// Exactly one of three things arrives on ch: the real response (from
// the reader), pipeRespTimeout (from the watchdog), or pipeRespClosed
// (from teardown). Routing every outcome through the same channel is
// what lets the waiter block in a single chanrecv instead of a
// three-way select with a timer — the measured difference at pipelined
// throughputs is double-digit percent.
type pipeCall struct {
	ch        chan *proto.Response
	deadline  time.Time
	abandoned bool
}

// Sentinel responses delivered on a pipeCall's channel in place of a
// real one. Compared by pointer identity, never read.
var (
	pipeRespTimeout = &proto.Response{}
	pipeRespClosed  = &proto.Response{}
)

// pipeCalls recycles call structs (and their channels): two heap
// allocations per round trip otherwise. A call may be pooled ONLY when
// it is provably settled — out of the pending map with an empty
// channel that nothing will ever send on again. The abandoned-timeout
// path deliberately leaks its call to the GC instead: the entry stays
// in pending until the server answers, and recycling it while the
// reader still holds a route to it would let a late response land in a
// stranger's channel.
var pipeCalls = sync.Pool{New: func() interface{} {
	return &pipeCall{ch: make(chan *proto.Response, 1)}
}}

// pipeConn is one pipelined connection: shared by every caller of a
// pipelined Client, owned by its reader goroutine for teardown.
type pipeConn struct {
	cfg  ClientConfig
	addr string
	conn net.Conn

	// window bounds the frames in flight: senders acquire a slot before
	// registering, the reader releases it when the response arrives (or
	// teardown releases all of them). Bounded in-flight is what keeps a
	// slow server from absorbing unbounded client memory.
	window  chan struct{}
	writeCh chan proto.Frame
	done    chan struct{} // closed by teardown; pc.err is set before

	mu       sync.Mutex
	pending  map[uint64]*pipeCall
	nextCorr uint64
	err      error
	// deadlineAt is when the conn's armed read deadline expires (zero =
	// unarmed). The reader only disarms it (on idle); pushing it forward
	// while responses flow is the watchdog's job, keyed off progress so
	// a silent conn still fails its Read. Guarded by mu.
	deadlineAt time.Time
	// progress counts responses delivered by the reader. The watchdog
	// re-arms the conn deadline only when this advanced since its last
	// tick — re-arming on mere pending-ness would keep a dead-silent
	// conn alive forever. Guarded by mu.
	progress uint64

	wg sync.WaitGroup
}

// pipeTimers recycles the per-call response-wait timers: one heap
// allocation per round trip is real money at pipelined throughputs.
// Timers are always stopped and drained before going back in the pool,
// so Reset on a pooled timer is race-free.
var pipeTimers = sync.Pool{New: func() interface{} {
	t := time.NewTimer(time.Hour)
	t.Stop()
	return t
}}

func pipeTimerGet(d time.Duration) *time.Timer {
	t := pipeTimers.Get().(*time.Timer)
	t.Reset(d)
	return t
}

func pipeTimerPut(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	pipeTimers.Put(t)
}

func newPipeConn(conn net.Conn, addr string, cfg ClientConfig) *pipeConn {
	pc := &pipeConn{
		cfg:     cfg,
		addr:    addr,
		conn:    conn,
		window:  make(chan struct{}, cfg.PipelineDepth),
		writeCh: make(chan proto.Frame, cfg.PipelineDepth),
		done:    make(chan struct{}),
		pending: make(map[uint64]*pipeCall, cfg.PipelineDepth),
	}
	pc.wg.Add(2)
	go pc.writeLoop()
	go pc.readLoop()
	if cfg.ReadTimeout > 0 {
		pc.wg.Add(1)
		go pc.watchdog()
	}
	return pc
}

// watchdog enforces per-call response timeouts so waiters don't have
// to: it periodically sweeps pending for calls past their deadline,
// marks them abandoned (the reader will discard the late response and
// free the window slot when it arrives), and wakes the waiter with the
// timeout sentinel. Scanning at ReadTimeout/4 granularity means a
// timeout fires within [d, d+d/4] — ReadTimeout is a floor, not an
// exact bound, which the lockstep path's deadline handling already
// implies. It also owns re-arming the conn's read deadline while
// calls are in flight (see readLoop).
func (pc *pipeConn) watchdog() {
	defer pc.wg.Done()
	period := pc.cfg.ReadTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTimer(period)
	defer t.Stop()
	var lastProgress uint64
	for {
		select {
		case <-pc.done:
			return
		case now := <-t.C:
			pc.mu.Lock()
			for _, call := range pc.pending {
				if !call.abandoned && now.After(call.deadline) {
					call.abandoned = true
					select {
					case call.ch <- pipeRespTimeout:
					default:
					}
				}
			}
			// Push the conn's liveness backstop forward — but only when
			// the reader actually delivered responses since the last
			// tick. Doing it here, once per tick instead of once per
			// response, keeps time.Now and the runtime timer update off
			// the reader's hot path; gating on progress means a conn
			// that goes silent keeps its last-armed deadline and fails
			// its Read within ReadTimeout+period of the last response
			// (or of the first call, via roundTrip's 0→1 arming).
			if pc.progress != lastProgress && len(pc.pending) > 0 {
				lastProgress = pc.progress
				pc.deadlineAt = now.Add(pc.cfg.ReadTimeout)
				pc.conn.SetReadDeadline(pc.deadlineAt)
			}
			pc.mu.Unlock()
			t.Reset(period)
		}
	}
}

// failErr returns the terminal conn error once done is closed.
func (pc *pipeConn) failErr() error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.err != nil {
		return pc.err
	}
	return net.ErrClosed
}

// writeLoop drains writeCh, coalescing every queued frame into one
// net.Buffers writev. Under load the batch grows to whatever
// accumulated while the previous syscall ran — batching adapts to
// pressure with no timer and no added latency for a lone frame.
func (pc *pipeConn) writeLoop() {
	defer pc.wg.Done()
	bufs := make([][]byte, 0, 64)
	frames := make([]proto.Frame, 0, 64)
	for {
		var first proto.Frame
		select {
		case first = <-pc.writeCh:
		case <-pc.done:
			// Teardown: release anything still queued.
			for {
				select {
				case f := <-pc.writeCh:
					f.Release()
				default:
					return
				}
			}
		}
		bufs, frames = bufs[:0], frames[:0]
		bufs = append(bufs, first.Bytes())
		frames = append(frames, first)
		// One yield before draining: callers that just received their
		// responses are runnable and about to enqueue their next frames.
		// With a free core the queue fills while the previous syscall
		// runs, but on a single P the syscall blocks every producer —
		// without this yield the adaptive batch degenerates to one frame
		// per writev. With nothing else runnable it costs ~100ns.
		runtime.Gosched()
	coalesce:
		for len(frames) < cap(frames) {
			select {
			case f := <-pc.writeCh:
				bufs = append(bufs, f.Bytes())
				frames = append(frames, f)
			default:
				break coalesce
			}
		}
		if d := pc.cfg.WriteTimeout; d > 0 {
			pc.conn.SetWriteDeadline(time.Now().Add(d))
		}
		nb := net.Buffers(bufs)
		_, err := nb.WriteTo(pc.conn) // one writev for the whole batch
		for _, f := range frames {
			f.Release()
		}
		if err != nil {
			// Closing the conn is the teardown signal: the reader's
			// blocked Read fails, and readLoop owns fail-all-pending.
			// Keep looping so queued senders drain (their writes fail
			// instantly on the closed conn until done closes).
			pc.conn.Close()
		}
	}
}

// readLoop is the demultiplexer and the single owner of teardown. The
// read deadline covers the oldest outstanding frame: armed when
// pending goes 0→1, re-armed after every response while frames remain,
// cleared when the pipe idles. An expiry with frames outstanding means
// the server hung — that kills the conn (unlike a per-call response
// timeout, which just abandons the call).
func (pc *pipeConn) readLoop() {
	defer pc.wg.Done()
	r := bufio.NewReaderSize(pc.conn, 32<<10)
	var finalErr error
	for {
		resp, err := proto.ReadResponse(r)
		if err != nil {
			if isTimeout(err) {
				pc.mu.Lock()
				idle := len(pc.pending) == 0
				if idle {
					// Stale deadline fired on an idle pipe: harmless.
					pc.conn.SetReadDeadline(time.Time{})
					pc.deadlineAt = time.Time{}
				}
				pc.mu.Unlock()
				if idle {
					continue
				}
			}
			finalErr = fmt.Errorf("kvstore: %s: pipelined conn: %w", pc.addr, err)
			break
		}
		if resp.Corr == 0 {
			finalErr = fmt.Errorf("kvstore: %s: uncorrelated response on pipelined conn: %w",
				pc.addr, proto.ErrMalformed)
			break
		}
		if resp.LoadHinted && pc.cfg.OnLoadHint != nil {
			pc.cfg.OnLoadHint(resp.Load)
		}
		pc.mu.Lock()
		pc.progress++
		call, ok := pc.pending[resp.Corr]
		abandoned := false
		if ok {
			delete(pc.pending, resp.Corr)
			abandoned = call.abandoned
		}
		// Deadline upkeep while traffic flows belongs to the watchdog
		// (it re-arms every tick); the reader only disarms when the
		// pipe goes idle, so an armed deadline can't fire mid-silence.
		if len(pc.pending) == 0 && !pc.deadlineAt.IsZero() {
			pc.conn.SetReadDeadline(time.Time{})
			pc.deadlineAt = time.Time{}
		}
		pc.mu.Unlock()
		if !ok {
			// A response we never asked for: the stream is corrupt (or
			// the server is confused). Resync is impossible mid-stream.
			finalErr = fmt.Errorf("kvstore: %s: unknown correlation id %d: %w",
				pc.addr, resp.Corr, proto.ErrMalformed)
			break
		}
		<-pc.window // the slot frees when the response lands
		if !abandoned {
			call.ch <- resp // buffered: never blocks
		}
	}
	pc.teardown(finalErr)
}

// teardown fails every in-flight call with err and releases their
// window slots. Reader-owned: runs exactly once, when readLoop exits.
// Waiters are woken by a sentinel sent straight into their call
// channel (the buffered send never blocks; if the watchdog's timeout
// sentinel got there first, that outcome stands).
func (pc *pipeConn) teardown(err error) {
	pc.conn.Close()
	pc.mu.Lock()
	if err == nil {
		err = net.ErrClosed
	}
	pc.err = err
	orphans := len(pc.pending)
	for _, call := range pc.pending {
		select {
		case call.ch <- pipeRespClosed:
		default:
		}
	}
	pc.pending = make(map[uint64]*pipeCall)
	pc.mu.Unlock()
	close(pc.done) // senders blocked on window/writeCh observe this
	for ; orphans > 0; orphans-- {
		<-pc.window
	}
}

// roundTrip sends one request through the pipe and waits for its
// response. The returned tryError feeds Do's retry policy; stage
// "write" marks failures where the request provably never reached the
// wire queue.
func (pc *pipeConn) roundTrip(req *proto.Request) (*proto.Response, *tryError) {
	// Acquire an in-flight slot. The fast path is a non-blocking send;
	// a full window waits (bounded by WriteTimeout) and reports the
	// stall to OnWindowWait — that wait IS the backpressure signal a
	// saturated pipe exerts on its callers.
	select {
	case pc.window <- struct{}{}:
	default:
		var waitStart time.Time
		if pc.cfg.OnWindowWait != nil {
			waitStart = time.Now()
		}
		var timeC <-chan time.Time
		if d := pc.cfg.WriteTimeout; d > 0 {
			t := pipeTimerGet(d)
			defer pipeTimerPut(t)
			timeC = t.C
		}
		select {
		case pc.window <- struct{}{}:
			if pc.cfg.OnWindowWait != nil {
				pc.cfg.OnWindowWait(time.Since(waitStart))
			}
		case <-pc.done:
			return nil, &tryError{stage: "write", err: pc.failErr()}
		case <-timeC:
			return nil, &tryError{stage: "write", err: fmt.Errorf(
				"kvstore: %s %s: in-flight window full: %w", req.Op, pc.addr, os.ErrDeadlineExceeded)}
		}
	}

	// Register under a fresh correlation ID. Arming the read deadline
	// on 0→1 pending is done under mu so it serializes with the
	// reader's own deadline management.
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		<-pc.window
		return nil, &tryError{stage: "write", err: err}
	}
	pc.nextCorr++
	corr := pc.nextCorr
	call := pipeCalls.Get().(*pipeCall)
	call.abandoned = false
	if d := pc.cfg.ReadTimeout; d > 0 {
		now := time.Now()
		call.deadline = now.Add(d)
		if len(pc.pending) == 0 {
			pc.conn.SetReadDeadline(call.deadline)
			pc.deadlineAt = call.deadline
		}
	}
	pc.pending[corr] = call
	pc.mu.Unlock()

	// Encode into a pooled frame. Corr is restored so a retry of the
	// same Request on a fresh pipe gets a fresh ID.
	req.Corr = corr
	frame, err := proto.NewRequestFrame(req)
	req.Corr = 0
	if err != nil {
		pc.backOut(corr, call)
		return nil, &tryError{stage: "write", err: err}
	}

	// Fast path: a buffered send with no competing done case compiles
	// to a single non-blocking channel op, skipping selectgo entirely.
	// writeCh holds a full window, so it only fills when the writer is
	// wedged — the slow select below then keeps teardown observable.
	select {
	case pc.writeCh <- frame:
	default:
		select {
		case pc.writeCh <- frame:
		case <-pc.done:
			frame.Release()
			pc.backOut(corr, call)
			return nil, &tryError{stage: "write", err: pc.failErr()}
		}
	}

	// Wait. Every outcome arrives on call.ch — the real response from
	// the reader, or a sentinel from the watchdog (per-call timeout) or
	// teardown (conn death) — so this is one blocking receive, not a
	// select.
	switch resp := <-call.ch; resp {
	case pipeRespClosed:
		// Teardown swept the call from pending before sending, so
		// nothing will ever send on this channel again: poolable.
		pipeCalls.Put(call)
		return nil, &tryError{stage: "read", err: pc.failErr()}
	case pipeRespTimeout:
		// The watchdog abandoned the call but did NOT release the
		// window slot: the server still owes the frame, so the window
		// stays charged until it answers (or the conn dies). The call
		// also stays in pending — the reader holds a route to it — so
		// it must not be pooled.
		return nil, &tryError{stage: "read", err: fmt.Errorf(
			"kvstore: %s %s: %w", req.Op, pc.addr, os.ErrDeadlineExceeded)}
	default:
		pipeCalls.Put(call) // delivered: out of pending, ch drained
		return resp, nil
	}
}

// backOut cancels a registration whose frame never reached the write
// queue: the pending entry and its window slot are reclaimed if still
// ours (teardown may have swept both concurrently), and the call is
// recycled after draining any sentinel the watchdog or teardown landed
// in the meantime — once the entry is out of pending, nothing else can
// send.
func (pc *pipeConn) backOut(corr uint64, call *pipeCall) {
	pc.mu.Lock()
	cur, ok := pc.pending[corr]
	ok = ok && cur == call
	if ok {
		delete(pc.pending, corr)
		if len(pc.pending) == 0 {
			pc.conn.SetReadDeadline(time.Time{})
			pc.deadlineAt = time.Time{}
		}
	}
	pc.mu.Unlock()
	if ok {
		<-pc.window
		select {
		case <-call.ch:
		default:
		}
		pipeCalls.Put(call)
	}
}

// getPipe returns the live pipe, dialing one if needed. fresh reports
// whether this call established the conn (retry policy: a pre-existing
// pipe's death earns a free retry, like a stale pooled conn).
func (c *Client) getPipe() (pc *pipeConn, fresh bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false, net.ErrClosed
	}
	if c.pipe != nil {
		select {
		case <-c.pipe.done:
			c.pipe = nil // dead: fall through to redial
		default:
			return c.pipe, false, nil
		}
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, false, fmt.Errorf("kvstore: dial %s: %w", c.addr, err)
	}
	c.pipe = newPipeConn(conn, c.addr, c.cfg)
	return c.pipe, true, nil
}

// pipeDo is Do over the pipelined transport: same retry policy, with
// "the shared pipe died under me" taking the role of "my pooled conn
// was stale".
func (c *Client) pipeDo(req *proto.Request) (*proto.Response, error) {
	budget := c.cfg.MaxRetries
	free := 1
	for attempt := 0; ; attempt++ {
		pc, fresh, err := c.getPipe()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil, err
			}
			if budget <= 0 {
				return nil, err
			}
			if !c.cfg.RetryBudget.Spend() {
				if c.cfg.OnRetrySuppressed != nil {
					c.cfg.OnRetrySuppressed()
				}
				return nil, err
			}
			budget--
			c.noteRetry()
			c.backoff(attempt)
			continue
		}
		resp, terr := pc.roundTrip(req)
		if terr == nil {
			if resp.Status != proto.StatusBusy {
				c.cfg.RetryBudget.OnSuccess()
			}
			// Load hints were already delivered by the reader.
			return resp, nil
		}
		if errors.Is(terr.err, net.ErrClosed) || isTimeout(terr.err) {
			return nil, terr.err
		}
		if !fresh && free > 0 && (terr.stage == "write" || isIdempotentReq(req)) {
			// The pipe predates this call and died: one free retry on a
			// redial, like a stale pooled conn — but unlike a pooled conn
			// (idle until our one request, so the peer almost surely never
			// saw it), a pipe dies with a window of frames the server may
			// well have applied. Non-idempotent ops therefore get the free
			// retry only when stage "write" proves the frame never reached
			// the wire queue.
			free--
			c.noteRetry()
			continue
		}
		if !(terr.stage == "write" || isIdempotentReq(req)) || budget <= 0 {
			return nil, terr.err
		}
		if !c.cfg.RetryBudget.Spend() {
			if c.cfg.OnRetrySuppressed != nil {
				c.cfg.OnRetrySuppressed()
			}
			return nil, terr.err
		}
		budget--
		c.noteRetry()
		c.backoff(attempt)
	}
}
