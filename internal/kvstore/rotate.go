package kvstore

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"strconv"
	"time"

	"securecache/internal/overload"
	"securecache/internal/partition"
	"securecache/internal/rotation"
)

// This file is the frontend half of epoch-based secret remapping (the
// mechanism lives in internal/rotation; the storage side is the epoch
// tags and SCAN support in store.go/backend.go). A rotation swaps the
// secret partition seed while the cluster keeps serving:
//
//   1. Rotate() builds the next-generation mapping, reports the expected
//      migration volume (partition.MovedFraction), and flips the epoch
//      under the rotMu write barrier.
//   2. Reads run dual-epoch (fetchFromReplicas below): new group first,
//      then — only on a clean NotFound — the previous generation's
//      group, with read-repair so a key touched once never falls back
//      again. Writes go to the new group only, stamped with the new
//      epoch.
//   3. A background rotation.Migrator streams every old-epoch entry out
//      of each node (OpScan) and re-places it under the new mapping,
//      rate-limited so migration cannot become its own overload. When a
//      full pass finds nothing left, the rotation commits and the old
//      generation is forgotten.
//
// Deletes during a rotation leave tombstones so a concurrent migration
// copy cannot resurrect a removed key; tombstones die with the rotation.

// Default rotation parameters (RotationConfig zero values).
const (
	// DefaultRotationRate caps migration at this many moved keys per
	// second. Deliberately modest: a rotation is damage control, and
	// finishing a little later is cheaper than stealing capacity from
	// the very cluster the rotation is trying to relieve.
	DefaultRotationRate = 2048.0
	// DefaultRotationBurst is the token-bucket burst for the above.
	DefaultRotationBurst = 256
	// DefaultMovedFractionSamples is how many keys Rotate samples to
	// estimate the migration volume it reports.
	DefaultMovedFractionSamples = 4096
)

// RotationConfig tunes live mapping rotation. The zero value uses the
// defaults above.
type RotationConfig struct {
	// Rate caps migration moves per second (0 = DefaultRotationRate;
	// negative = unlimited, for tests and offline bulk moves).
	Rate float64
	// Burst is the migration token-bucket burst (0 = DefaultRotationBurst).
	Burst int
	// Batch is the SCAN page size (0 = the migrator default).
	Batch int
	// MovedFractionSamples sizes the pre-rotation MovedFraction estimate
	// (0 = DefaultMovedFractionSamples).
	MovedFractionSamples int
	// MaxAttempts bounds retries of one failing scan or move before the
	// migration pass surfaces the error (0 = the migrator default). View
	// changes check for a dead joiner between passes, so a lower value
	// makes the join-abort grace period more responsive.
	MaxAttempts int
	// Backoff is the base per-attempt retry backoff (0 = the migrator
	// default).
	Backoff time.Duration
}

// ErrRotationInProgress reports a Rotate while one is already running.
var ErrRotationInProgress = errors.New("kvstore: rotation already in progress")

// RotationReport is what Rotate returns to the operator before the
// migration has finished: the new epoch and how much data is expected to
// move. The new seed itself is deliberately NOT echoed anywhere — it is
// the secret the rotation exists to re-establish.
type RotationReport struct {
	Epoch uint32 `json:"epoch"`
	// ExpectedMovedFraction is the sampled fraction of keys whose replica
	// group changes under the new seed (~1 for a seed rotation of a plain
	// hash partitioner — the full reshuffle is the point).
	ExpectedMovedFraction float64 `json:"expected_moved_fraction"`
}

// RotationStatus is the observable state of the rotation subsystem.
type RotationStatus struct {
	Epoch    uint32 `json:"epoch"`
	Rotating bool   `json:"rotating"`
	// Moved counts keys migrated in the current (or last) rotation.
	Moved uint64 `json:"moved"`
	// Completed counts rotations that have committed since boot.
	Completed uint64 `json:"completed"`
}

// Rotate re-keys the secret mapping: it opens a rotation to a fresh
// partitioner seeded with newSeed, starts the background migration, and
// returns immediately with the new epoch and the expected migration
// volume. The dual-epoch read path keeps every key readable throughout;
// RotationStatus (or the rotation metrics) report progress.
func (f *Frontend) Rotate(newSeed uint64) (RotationReport, error) {
	f.rotateMu.Lock()
	defer f.rotateMu.Unlock()
	if f.part.Rotating() {
		return RotationReport{}, ErrRotationInProgress
	}
	_, cur, _ := f.part.Snapshot()
	// Re-seed over the CURRENT member set (global IDs with holes after
	// membership changes — the Remap translates).
	members := f.memb.Current().Members()
	next, err := newMemberMapping(f.cfg.Partitioner, members, f.cfg.Replication, newSeed)
	if err != nil {
		return RotationReport{}, err
	}
	samples := f.cfg.Rotation.MovedFractionSamples
	if samples <= 0 {
		samples = DefaultMovedFractionSamples
	}
	frac, err := partition.MovedFraction(cur, next, samples)
	if err != nil {
		return RotationReport{}, err
	}

	limiter, rate := f.newMigrationLimiter()
	movedCtr := f.metrics.Counter("rotation_keys_moved_total")
	inflight := f.metrics.Gauge("rotation_inflight")
	mig, err := rotation.NewMigrator(rotation.MigratorConfig{
		NodeIDs:     members,
		Batch:       f.cfg.Rotation.Batch,
		MaxAttempts: f.cfg.Rotation.MaxAttempts,
		Backoff:     f.cfg.Rotation.Backoff,
		Limiter:     limiter,
		Unavailable: f.nodeUnavailable,
		OnSkip:      func(int) { f.metrics.Counter("migration_scan_skipped_total").Inc() },
		OnMoved:     movedCtr.Inc,
		OnInflight:  func(delta int) { inflight.Add(int64(delta)) },
	}, &migrationTransport{f: f, rate: rate})
	if err != nil {
		return RotationReport{}, err
	}

	// The write barrier: once Begin returns, every Set/Del routes and
	// stamps against the new generation — no write spans the flip.
	f.rotMu.Lock()
	epoch, err := f.part.Begin(next)
	f.rotMu.Unlock()
	if err != nil {
		return RotationReport{}, err
	}
	f.curSeed = newSeed
	f.metrics.Counter("rotations_total").Inc()
	f.metrics.Gauge("partition_epoch").Set(int64(epoch))
	f.migrator = mig
	f.rotWG.Add(1)
	go f.runMigration(mig, epoch)
	return RotationReport{Epoch: epoch, ExpectedMovedFraction: frac}, nil
}

// newMigrationLimiter builds the rate limiter for one migration from
// the rotation config, plus the adaptive controller that retunes it
// against backend pushback (nil limiter when unlimited).
func (f *Frontend) newMigrationLimiter() (*overload.TokenBucket, *migRateController) {
	rate := f.cfg.Rotation.Rate
	if rate < 0 {
		return nil, nil
	}
	if rate == 0 {
		rate = DefaultRotationRate
	}
	burst := f.cfg.Rotation.Burst
	if burst <= 0 {
		burst = DefaultRotationBurst
	}
	limiter := overload.NewTokenBucket(rate, float64(burst))
	return limiter, newMigRateController(limiter, rate, f.metrics.Gauge("migration_rate"))
}

// runMigration drives the migrator to completion and commits the
// rotation. A migration error does NOT abort the rotation — keys already
// moved live only under the new mapping, so reverting would lose them.
// Instead the rotation stays open (the dual-epoch read path keeps every
// key reachable at fallback cost) and the migration retries until it
// drains or the frontend closes.
func (f *Frontend) runMigration(mig *rotation.Migrator, epoch uint32) {
	defer f.rotWG.Done()
	for {
		_, err := mig.Run(f.rotStop)
		if err == nil {
			// Unreachable nodes are skipped, not fatal — but committing is
			// only sound while fewer than d were skipped (every key has d
			// replicas, so at least one scanned node covered it). At d or
			// more, a key could live exclusively on the unscanned set.
			if len(mig.Skipped()) < f.cfg.Replication {
				break
			}
			log.Printf("kvstore: rotation to epoch %d: %d nodes unscannable (need < %d to commit); will retry",
				epoch, len(mig.Skipped()), f.cfg.Replication)
		} else {
			if errors.Is(err, rotation.ErrStopped) {
				return
			}
			f.metrics.Counter("rotation_failed_total").Inc()
			log.Printf("kvstore: rotation to epoch %d: migration: %v (will retry)", epoch, err)
		}
		select {
		case <-f.rotStop:
			return
		case <-time.After(time.Second):
		}
	}
	// Drained: every entry a scan can see is at the new epoch. Commit
	// under the write barrier so no Set/Del observes a half-closed
	// rotation, then drop the tombstones (they only guard against
	// resurrection by migration copies, and there are none left).
	f.rotMu.Lock()
	f.part.Commit()
	f.rotMu.Unlock()
	f.tombMu.Lock()
	f.tombs = make(map[string]struct{})
	f.tombMu.Unlock()
	f.metrics.Counter("rotations_completed_total").Inc()
	log.Printf("kvstore: rotation to epoch %d committed: %d keys migrated", epoch, mig.Moved())
}

// RotationStatus reports the current epoch and migration progress.
func (f *Frontend) RotationStatus() RotationStatus {
	f.rotateMu.Lock()
	mig := f.migrator
	f.rotateMu.Unlock()
	var moved uint64
	if mig != nil {
		moved = mig.Moved()
	}
	epoch, _, prev := f.part.Snapshot()
	return RotationStatus{
		Epoch:     epoch,
		Rotating:  prev != nil,
		Moved:     moved,
		Completed: f.metrics.Counter("rotations_completed_total").Value(),
	}
}

// fetchFromReplicas routes one read through the epoch-aware path: the
// current generation's group first; only a clean NotFound may consult
// the previous generation. Neither a transport failure (absence was
// never established) nor a tombstone (absence is authoritative — the
// old copy is precisely the deleted value) may fall back.
func (f *Frontend) fetchFromReplicas(key string) ([]byte, error) {
	v, _, err := f.fetchReplicasVersioned(key)
	return v, err
}

// fetchReplicasVersioned is fetchFromReplicas with the winning replica's
// logical version threaded through (a tombstone miss reports the
// tombstone's version alongside the NotFound-class error).
func (f *Frontend) fetchReplicasVersioned(key string) ([]byte, uint64, error) {
	id := KeyID(key)
	_, cur, prev := f.part.Snapshot()
	if prev == nil || f.part.Migrated(id) {
		return f.fetchGroupVersioned(key, f.orderedGroup(cur.Group(id)))
	}
	v, ver, err := f.fetchGroupVersioned(key, f.orderedGroup(cur.Group(id)))
	if errors.Is(err, errDeleted) {
		return nil, ver, ErrNotFound
	}
	if err == nil || !errors.Is(err, ErrNotFound) {
		return v, ver, err
	}
	f.metrics.Counter("rotation_fallback_reads_total").Inc()
	v, ver, err = f.fetchGroupVersioned(key, f.orderedGroup(prev.Group(id)))
	switch {
	case err == nil:
		if f.part.Migrated(id) {
			// A write or migration landed between our two reads, so the
			// new group is authoritative now and the old value may be
			// stale — re-read rather than return it.
			return f.fetchGroupVersioned(key, f.orderedGroup(cur.Group(id)))
		}
		f.readRepair(key, v, ver)
		return v, ver, nil
	case errors.Is(err, ErrNotFound):
		// In neither generation (a tombstone in the old one counts — the
		// value is gone either way) — unless a migration purged the old
		// copy between our two reads. One second look at the new group
		// settles it (migration copies land before the purge).
		v, ver, err = f.fetchGroupVersioned(key, f.orderedGroup(cur.Group(id)))
		if errors.Is(err, errDeleted) {
			return nil, ver, ErrNotFound
		}
		return v, ver, err
	default:
		return nil, 0, err
	}
}

// readRepair migrates a key the moment a read had to fall back to the
// old generation, so each key pays the dual-read cost at most once. Hot
// keys — exactly the ones an attack concentrates on — therefore move
// within one request of the rotation starting, without waiting for the
// background scan to reach them. Best-effort: on error the migrator
// will reach the key anyway.
func (f *Frontend) readRepair(key string, value []byte, ver uint64) {
	if err := f.moveEntry(key, value, ver); err == nil {
		f.metrics.Counter("rotation_read_repair_total").Inc()
	}
}

// moveEntry re-places one entry under the current mapping: epoch-guarded
// copies to every node of the new group, the migration watermark, then a
// purge from old-only nodes. It is idempotent and safe against every
// concurrent writer:
//
//   - A client Set at the current epoch wins over the guarded copies
//     (stored epoch >= copy epoch -> the copy is a no-op), and its own
//     writes re-tag shared nodes so scans stop seeing them.
//   - A client Del is excluded by tombMu for the duration of the I/O: if
//     the stone is already down we never copy; if Del arrives mid-move
//     it blocks here, then deletes from both generations' homes,
//     removing whatever this call placed.
//
// Note it does NOT short-circuit on Migrated(id): a key marked migrated
// by a client Set still has stale copies on old-only nodes, and the
// purge below is what retires them from the scan.
func (f *Frontend) moveEntry(key string, value []byte, ver uint64) error {
	id := KeyID(key)
	f.tombMu.Lock()
	defer f.tombMu.Unlock()
	if _, dead := f.tombs[key]; dead {
		return nil
	}
	epoch, cur, prev := f.part.Snapshot()
	if prev == nil {
		return nil // rotation closed under us; nothing left to place
	}
	ns := f.fleet.Load()
	newGroup := cur.Group(id)
	oldGroup := prev.Group(id)
	for _, node := range newGroup {
		if err := ns.clients[node].CopyEpoch(key, value, epoch, ver); err != nil {
			f.noteBackendError(node, err)
			return err
		}
		f.health.onSuccess(node)
	}
	// Mark before purging: a reader that sees the watermark skips the old
	// generation entirely, which is only sound once every new-group
	// replica holds the entry (it does, as of the loop above).
	f.part.MarkMigrated(id)
	if equalNodeSets(newGroup, oldGroup) {
		f.metrics.Counter("migration_keys_retagged_total").Inc()
	} else {
		f.metrics.Counter("migration_keys_moved_total").Inc()
	}
	for _, node := range oldGroup {
		if !containsNode(newGroup, node) {
			if err := ns.clients[node].Del(key); err != nil {
				f.noteBackendError(node, err)
				// A purge against a dead node (a drained member that
				// crashed, say) must not wedge the migration: the entry is
				// safely re-homed, and the leftover copy is invisible to
				// reads — the node is out of both groups or demoted. It is
				// re-purged by the next scan pass if the node recovers.
				if f.nodeUnavailable(node) {
					f.metrics.Counter("migration_purge_skipped_total").Inc()
					continue
				}
				return err
			}
			f.health.onSuccess(node)
		}
	}
	return nil
}

// nodeUnavailable reports that node's breaker is open: probes and real
// traffic are failing, so the migrator should scan around it rather
// than wedge on it.
func (f *Frontend) nodeUnavailable(node int) bool {
	return f.health != nil && f.health.state(node) == breakerOpen
}

// equalNodeSets reports whether two replica groups contain the same
// nodes (order-insensitive; groups are tiny).
func equalNodeSets(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for _, n := range a {
		if !containsNode(b, n) {
			return false
		}
	}
	return true
}

// migrationTransport adapts the frontend's backend clients to the
// rotation.Transport interface, feeding the health tracker (so a node
// dying mid-migration is detected by the migration itself, not only by
// client traffic) and the adaptive rate controller.
type migrationTransport struct {
	f    *Frontend
	rate *migRateController
}

func (t *migrationTransport) Scan(node int, cursor uint64, limit int) ([]rotation.Entry, uint64, error) {
	// Filter server-side to entries below the rotation's epoch: entries
	// already moved (or written fresh) are invisible to the scan, which
	// is what makes repeated passes converge.
	entries, next, err := t.f.fleet.Load().clients[node].Scan(cursor, limit, t.f.part.Epoch())
	if err != nil {
		t.f.noteBackendError(node, err)
		return nil, 0, err
	}
	t.f.health.onSuccess(node)
	out := make([]rotation.Entry, len(entries))
	for i, e := range entries {
		out[i] = rotation.Entry{Key: e.Key, Value: e.Value, Epoch: e.Epoch, Ver: e.Ver}
	}
	return out, next, nil
}

func (t *migrationTransport) Move(e rotation.Entry) error {
	err := t.f.moveEntry(e.Key, e.Value, e.Ver)
	if t.rate != nil {
		if errors.Is(err, ErrBusy) {
			t.rate.onBusy()
		} else if err == nil {
			t.rate.onClean()
		}
	}
	return err
}

// AdminHandlers returns the frontend's rotation and membership control
// verbs for mounting on its admin server (StartAdminWith):
//
//	POST /rotate          rotate to a fresh random secret seed
//	POST /rotate?seed=N   rotate to an explicit seed (tests; accepts
//	                      0x-prefixed hex)
//	GET  /rotation        rotation status as JSON
//	POST /join?addr=A     add backend(s) at address(es) A (repeatable)
//	POST /drain?id=N      drain member(s) N out of the cluster
//	GET  /membership      membership status as JSON
//
// /rotate answers 200 with a RotationReport, 409 while a rotation is
// already running. The seed never appears in the response or the logs.
// /join and /drain answer 200 with a MembershipReport, 409 while an
// epoch change (rotation or view change) is open.
func (f *Frontend) AdminHandlers() map[string]http.HandlerFunc {
	h := f.membershipHandlers()
	h["/rotate"], h["/rotation"] = f.rotationHandlers()
	for path, handler := range f.tierHandlers() {
		h[path] = handler
	}
	return h
}

func (f *Frontend) rotationHandlers() (rotate, status http.HandlerFunc) {
	m := map[string]http.HandlerFunc{
		"/rotate": func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			var seed uint64
			if s := r.URL.Query().Get("seed"); s != "" {
				var err error
				seed, err = strconv.ParseUint(s, 0, 64)
				if err != nil {
					http.Error(w, "bad seed: "+err.Error(), http.StatusBadRequest)
					return
				}
			} else {
				var buf [8]byte
				if _, err := rand.Read(buf[:]); err != nil {
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				seed = binary.LittleEndian.Uint64(buf[:])
			}
			report, err := f.Rotate(seed)
			switch {
			case errors.Is(err, ErrRotationInProgress):
				http.Error(w, err.Error(), http.StatusConflict)
				return
			case err != nil:
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(report)
		},
		"/rotation": func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(f.RotationStatus())
		},
	}
	return m["/rotate"], m["/rotation"]
}

// unionNodes returns a ∪ b preserving a's order then b's novel entries
// (groups are tiny; quadratic is fine).
func unionNodes(a, b []int) []int {
	out := append([]int(nil), a...)
	for _, n := range b {
		if !containsNode(out, n) {
			out = append(out, n)
		}
	}
	return out
}

func containsNode(nodes []int, n int) bool {
	for _, x := range nodes {
		if x == n {
			return true
		}
	}
	return false
}
