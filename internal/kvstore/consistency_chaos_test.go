package kvstore

// Consistency fault matrix: recorded histories driven through the full
// cluster under deterministic fault schedules, judged by the
// internal/consistency checkers. Each scenario records every client
// operation's invoke/return through a consistency.Recorder, quiesces the
// cluster (heal faults, drain hints, run anti-entropy), observes replica
// state directly, and then runs the checker the scenario's configuration
// earns:
//
//   - register (linearizable versioned register): sound when every
//     definite outcome is quorum-decided, reads cannot flip-flop between
//     divergent replicas, AND no two writes to one key overlap in time.
//     The last condition is the system's own: versions are assigned at
//     the frontend before replicas order the writes, so concurrent mixed
//     writes (blind Set racing a create-CAS) resolve by
//     highest-version-wins and can mask an acked Set — inherent LWW
//     behavior, not a bug the checker should flag. Every scenario
//     therefore register-checks only single-writer keys: the partitioned
//     writer keys of the single-replica scenario (with racing readers)
//     and the dedicated CAS-chain keys of the partition, rotation, and
//     membership scenarios (quorum intersection decides every swap even
//     mid-fault or mid-migration).
//   - convergence (provenance, version binding, replica monotonicity,
//     no-resurrection, post-barrier agreement): demanded of EVERY
//     scenario; StrictDeletes only where the write quorum covers the
//     group (or the schedule provably keeps the tombstone readable).
//
// The TestConsistencyMutation* tests close the loop: each disables one
// safeguard via testHooks (hooks.go) and asserts the checker FAILS the
// resulting history — proof the contract is enforced, not vacuously
// passed. Failing histories are dumped as replayable artifacts
// (CONSISTENCY_ARTIFACT_DIR or the test's temp dir) that re-check
// byte-identically; -consistency-seed pins the randomized workloads.
//
// Run standalone with `make consistency`.

import (
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"securecache/internal/consistency"
	"securecache/internal/faultnet"
	"securecache/internal/overload"
)

var consistencySeed = flag.Uint64("consistency-seed", 1,
	"seed for the consistency fault-matrix workloads (failure artifacts record it for replay)")

// kvConsErrs classifies kvstore errors for the recorder: ErrNotFound is
// a definite miss, a non-partial CasConflictError is a definite
// conflict, and everything else stays ambiguous.
func kvConsErrs() consistency.Errs {
	return consistency.Errs{
		IsNotFound: func(err error) bool { return errors.Is(err, ErrNotFound) },
		Conflict: func(err error) (uint64, bool, bool) {
			var ce *CasConflictError
			if errors.As(err, &ce) {
				return ce.Cur, ce.Partial, true
			}
			return 0, false, false
		},
	}
}

func consKeys(prefix string, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	return keys
}

// consRNG derives one worker's deterministic stream from the suite seed.
func consRNG(salt uint64) *rand.Rand {
	return rand.New(rand.NewPCG(*consistencySeed, salt))
}

// consMixedOps runs n mixed operations against keys through one
// recorded proc. mix is cumulative percentages {get, set, del}; the
// remainder is CAS. The worker tracks the last version it learned per
// key and uses it as the CAS expectation, adopting the conflict
// evidence when a swap loses — so histories carry successes, definite
// conflicts, and (under faults) ambiguous outcomes.
func consMixedOps(rk *consistency.RecordedKV, rng *rand.Rand, keys []string, n int, mix [3]int) {
	lastVer := make(map[string]uint64)
	for i := 0; i < n; i++ {
		key := keys[rng.IntN(len(keys))]
		val := []byte(fmt.Sprintf("v-p%d-%d-%x", rk.Proc, i, rng.Uint64()))
		switch pick := rng.IntN(100); {
		case pick < mix[0]:
			if _, ver, _, err := rk.GetV(key); err == nil {
				lastVer[key] = ver
			} else if errors.Is(err, ErrNotFound) {
				lastVer[key] = 0
			}
		case pick < mix[0]+mix[1]:
			if ver, err := rk.SetV(key, val); err == nil {
				lastVer[key] = ver
			}
		case pick < mix[0]+mix[1]+mix[2]:
			if _, err := rk.DelV(key); err == nil {
				lastVer[key] = 0
			}
		default:
			ver, err := rk.Cas(key, val, lastVer[key])
			var ce *CasConflictError
			switch {
			case err == nil:
				lastVer[key] = ver
			case errors.As(err, &ce) && !ce.Partial:
				lastVer[key] = ce.Cur
			}
		}
	}
}

// consCasWorker drives one single-writer CAS chain on key until stop
// (and at least minOps ops). A Maybe keeps the stale expectation — the
// next attempt's definite conflict carries the live version and
// re-synchronizes the chain.
func consCasWorker(rk *consistency.RecordedKV, rng *rand.Rand, key string, minOps int, stop func() bool) {
	expect := uint64(0)
	for i := 0; !stop() || i < minOps; i++ {
		val := []byte(fmt.Sprintf("cas-p%d-%d-%x", rk.Proc, i, rng.Uint64()))
		ver, err := rk.Cas(key, val, expect)
		var ce *CasConflictError
		switch {
		case err == nil:
			expect = ver
		case errors.As(err, &ce) && !ce.Partial:
			expect = ce.Cur
		}
	}
}

// consObserve reads each key directly from every replica in its group
// (bypassing the frontend) and records the observations. clients is
// indexed by backend ID; sessions[i] is backend i's restart count.
// Unreachable replicas yield no observation.
func consObserve(rec *consistency.Recorder, f *Frontend, clients []*Client, sessions []int, keys []string) {
	for _, key := range keys {
		for _, node := range f.Group(key) {
			v, ver, tomb, err := clients[node].GetV(key)
			obs := consistency.ReplicaObs{Replica: node, Session: sessions[node], Key: key}
			switch {
			case err == nil:
				obs.Present, obs.Val, obs.Ver = true, v, ver
			case errors.Is(err, ErrNotFound) && tomb:
				obs.Present, obs.Tomb, obs.Ver = true, true, ver
			case errors.Is(err, ErrNotFound):
				// Clean miss: present=false participates in agreement.
			default:
				continue
			}
			rec.Observe(obs)
		}
	}
}

// consClients opens one direct client per backend address, closed on
// test cleanup.
func consClients(t *testing.T, addrs []string) []*Client {
	t.Helper()
	clients := make([]*Client, len(addrs))
	for i, addr := range addrs {
		clients[i] = NewClient(addr)
	}
	t.Cleanup(func() {
		for _, c := range clients {
			c.Close()
		}
	})
	return clients
}

// consFinalReads records one post-barrier read per key through the
// frontend, pinning client-visible state against the replica consensus.
func consFinalReads(rk *consistency.RecordedKV, keys []string) {
	for _, key := range keys {
		rk.GetV(key)
	}
}

func consDrainHints(t *testing.T, f *Frontend) {
	t.Helper()
	g := f.Metrics().Gauge("hints_pending")
	deadline := time.Now().Add(10 * time.Second)
	for g.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hint queue did not drain: %d pending", g.Value())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func consWaitServing(t *testing.T, addr string) {
	t.Helper()
	c := NewClient(addr)
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.Ping() != nil {
		if time.Now().After(deadline) {
			t.Fatalf("backend at %s did not come back", addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func consArtifactDir(t *testing.T) string {
	if dir := os.Getenv("CONSISTENCY_ARTIFACT_DIR"); dir != "" {
		return dir
	}
	return t.TempDir()
}

func consSaveArtifact(t *testing.T, scenario, model string, strict bool, res consistency.Result, h consistency.History) string {
	t.Helper()
	art := &consistency.Artifact{
		Scenario: scenario, Seed: *consistencySeed, Model: model, Strict: strict,
		Failure: res.Failures, History: h,
	}
	path := filepath.Join(consArtifactDir(t), scenario+"-"+model+".json")
	if err := art.Save(path); err != nil {
		t.Fatalf("saving failure artifact: %v", err)
	}
	return path
}

// consRequireOK fails the test (dumping a replay artifact) if the
// checker rejected the history.
func consRequireOK(t *testing.T, scenario, model string, strict bool, res consistency.Result, h consistency.History) {
	t.Helper()
	if res.Exhausted {
		t.Logf("%s: %s check exhausted its budget (advisory pass)", scenario, model)
	}
	if res.Ok {
		return
	}
	path := consSaveArtifact(t, scenario, model, strict, res, h)
	t.Fatalf("%s violated the %s contract:\n  %v\nreplay artifact: %s (seed %d)",
		scenario, model, res.Failures, path, *consistencySeed)
}

// consFilterKeys returns the sub-history of ops on keys with the given
// prefix (observations and barrier carried through).
func consFilterKeys(h consistency.History, prefix string) consistency.History {
	out := consistency.History{Barrier: h.Barrier}
	for _, op := range h.Ops {
		if len(op.Key) >= len(prefix) && op.Key[:len(prefix)] == prefix {
			out.Ops = append(out.Ops, op)
		}
	}
	for _, ob := range h.Replica {
		if len(ob.Key) >= len(prefix) && ob.Key[:len(prefix)] == prefix {
			out.Replica = append(out.Replica, ob)
		}
	}
	return out
}

// TestConsistencyLinearizableSingleReplica: d = 1, no faults. Each
// writer owns a disjoint pair of keys and runs the complete op
// vocabulary against them while two reader procs race Gets across every
// key — so reads genuinely overlap writes, but no two WRITES to one key
// ever overlap. That single-writer-per-key discipline is what makes the
// register model sound here: with concurrent mixed writes, a blind Set
// can draw a lower frontend version than a create-CAS that validated
// against pre-Set state, and highest-version-wins masks the acked Set
// (see the rotation scenario, which documents the same exclusion).
func TestConsistencyLinearizableSingleReplica(t *testing.T) {
	checkGoroutineLeaks(t)
	lc := startCluster(t, LocalConfig{
		Nodes: 1, Replication: 1, PartitionSeed: 3, WriteQuorum: 1,
		RepairInterval: -1, RepairRate: -1,
	})
	rec := consistency.NewRecorder()
	rk := consistency.NewRecordedKV(lc.Frontend, rec, kvConsErrs())
	keys := consKeys("lin", 8)

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		worker := rk.WithProc()
		own := keys[p*2 : p*2+2]
		go func(own []string, salt uint64) {
			defer wg.Done()
			consMixedOps(worker, consRNG(salt), own, 50, [3]int{40, 30, 10})
		}(own, 0x51+uint64(p))
	}
	for p := 0; p < 2; p++ {
		wg.Add(1)
		reader := rk.WithProc()
		go func(salt uint64) {
			defer wg.Done()
			consMixedOps(reader, consRNG(salt), keys, 60, [3]int{100, 0, 0})
		}(0x5EAD + uint64(p))
	}
	wg.Wait()

	consDrainHints(t, lc.Frontend)
	rec.MarkBarrier()
	consFinalReads(rk, keys)
	consObserve(rec, lc.Frontend, consClients(t, lc.BackendAddrs), []int{0}, keys)

	h := rec.History()
	consRequireOK(t, "single-replica", "register", false,
		consistency.CheckLinearizable(h, consistency.RegisterModel{}, 0), h)
	consRequireOK(t, "single-replica", "convergence", true,
		consistency.CheckConvergence(h, consistency.ConvergenceOpts{StrictDeletes: true}), h)
}

// TestConsistencyAsymmetricPartition: three replicas (d = 3, W = 2),
// one behind a faultnet proxy that drops bytes in one direction at a
// time — first client→server (requests vanish, the backend sees
// nothing), then server→client (the backend APPLIES writes whose acks
// vanish — the ack-lost ambiguity OutMaybe exists for). Single-writer
// CAS keys must stay linearizable throughout (quorum intersection
// decides every swap); the mixed-workload keys must converge once the
// partition heals, hints drain, and anti-entropy runs. StrictDeletes is
// OFF: W < d, so a replica may legitimately serve a pre-delete value
// until repair.
func TestConsistencyAsymmetricPartition(t *testing.T) {
	checkGoroutineLeaks(t)
	backends := make([]*Backend, 3)
	addrs := make([]string, 3)
	for i := range backends {
		b, addr, err := StartBackend(i, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		backends[i], addrs[i] = b, addr
	}
	proxy, err := faultnet.Start(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	f, _, err := StartFrontend(FrontendConfig{
		BackendAddrs: []string{proxy.Addr(), addrs[1], addrs[2]},
		Replication:  3, PartitionSeed: 7, WriteQuorum: 2,
		Client: ClientConfig{DialTimeout: 100 * time.Millisecond, ReadTimeout: 100 * time.Millisecond,
			WriteTimeout: 100 * time.Millisecond, MaxRetries: -1, PipelineDepth: 8},
		Health:         HealthConfig{FailureThreshold: 3, ProbeInterval: 20 * time.Millisecond},
		RepairInterval: -1, RepairRate: -1,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rec := consistency.NewRecorder()
	rk := consistency.NewRecordedKV(f, rec, kvConsErrs())
	kvKeys := consKeys("kv", 6)
	casKeys := consKeys("cas", 3)

	var schedDone atomic.Bool
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		steps := faultnet.PartitionWindows(faultnet.Faults{DropToServer: true}, 100*time.Millisecond, 100*time.Millisecond, 3)
		steps = append(steps, faultnet.PartitionWindows(faultnet.Faults{DropToClient: true}, 100*time.Millisecond, 100*time.Millisecond, 3)...)
		proxy.RunSchedule(steps)
		schedDone.Store(true)
	}()

	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		worker := rk.WithProc()
		go func(salt uint64) {
			defer wg.Done()
			rng := consRNG(salt)
			for i := 0; !schedDone.Load() || i < 20; i++ {
				consMixedOps(worker, rng, kvKeys, 1, [3]int{40, 35, 10})
			}
		}(0xA7 + uint64(p))
	}
	for i, key := range casKeys {
		wg.Add(1)
		worker := rk.WithProc()
		go func(key string, salt uint64) {
			defer wg.Done()
			consCasWorker(worker, consRNG(salt), key, 15, schedDone.Load)
		}(key, 0xCA5+uint64(i))
	}
	wg.Wait()
	schedWG.Wait()
	proxy.Clear()

	consDrainHints(t, f)
	if _, err := f.RunRepairPass(); err != nil {
		t.Fatalf("repair pass: %v", err)
	}
	rec.MarkBarrier()
	allKeys := append(append([]string(nil), kvKeys...), casKeys...)
	consFinalReads(rk, allKeys)
	consObserve(rec, f, consClients(t, addrs), []int{0, 0, 0}, allKeys)

	h := rec.History()
	// Quorum-decided CAS chains stay linearizable even through one-way
	// drops; sloppy first-live-replica reads of the kv keys do not, so
	// the register model judges only the CAS sub-history.
	casH := consFilterKeys(h, "cas-")
	consRequireOK(t, "asymmetric-partition", "register", false,
		consistency.CheckLinearizable(casH, consistency.RegisterModel{}, 0), casH)
	consRequireOK(t, "asymmetric-partition", "convergence", false,
		consistency.CheckConvergence(h, consistency.ConvergenceOpts{}), h)
}

// TestConsistencyCrashMidQuorumWrite: a WAL-backed replica is killed
// mid-workload (in-flight quorum writes lose one ack and record Maybe),
// then warm-restarted from its log. With W = d = 2 nothing commits
// while the replica is down, so after hints drain and anti-entropy
// runs the strict convergence contract — including no-resurrection —
// must hold over the whole history. The register model is deliberately
// NOT run: reads are served by the first live replica, and while the
// survivor carries below-quorum partial writes, consecutive reads can
// legally flip between divergent replicas.
func TestConsistencyCrashMidQuorumWrite(t *testing.T) {
	checkGoroutineLeaks(t)
	b0, addr0, err := StartBackend(0, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b0.Close()
	dir := filepath.Join(t.TempDir(), "node1")
	b1, addr1, err := StartBackend(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b1.OpenData(dir, walTestOpts()); err != nil {
		t.Fatal(err)
	}

	f, _, err := StartFrontend(FrontendConfig{
		BackendAddrs: []string{addr0, addr1},
		Replication:  2, PartitionSeed: 13, WriteQuorum: 2,
		Client: ClientConfig{DialTimeout: 200 * time.Millisecond, ReadTimeout: 200 * time.Millisecond,
			WriteTimeout: 200 * time.Millisecond, MaxRetries: -1, PipelineDepth: 8},
		Health:         HealthConfig{FailureThreshold: 3, ProbeInterval: 20 * time.Millisecond},
		RepairInterval: -1, RepairRate: -1,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rec := consistency.NewRecorder()
	rk := consistency.NewRecordedKV(f, rec, kvConsErrs())
	keys := consKeys("crash", 6)

	runPhase := func(ops int, salt uint64) {
		var wg sync.WaitGroup
		for p := 0; p < 3; p++ {
			wg.Add(1)
			worker := rk.WithProc()
			go func(salt uint64) {
				defer wg.Done()
				consMixedOps(worker, consRNG(salt), keys, ops, [3]int{35, 35, 10})
			}(salt + uint64(p))
		}
		wg.Wait()
	}

	// Phase 1: the crash lands mid-workload — quorum writes in flight
	// against node 1 lose their second ack and record Maybe.
	var crashWG sync.WaitGroup
	crashWG.Add(1)
	go func() {
		defer crashWG.Done()
		time.Sleep(40 * time.Millisecond)
		b1.Close()
	}()
	runPhase(40, 0xC0)
	crashWG.Wait()

	// Warm restart from the sealed log on the same address.
	l, err := net.Listen("tcp", addr1)
	if err != nil {
		t.Fatal(err)
	}
	b1r := NewBackend(1)
	recovered, err := b1r.OpenData(dir, walTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	if recovered {
		t.Fatal("clean crash restart took the corruption-recovery path")
	}
	go b1r.Serve(l)
	defer b1r.Close()
	consWaitServing(t, addr1)

	// Phase 2: traffic against the healed pair.
	runPhase(25, 0xC8)

	consDrainHints(t, f)
	if _, err := f.RunRepairPass(); err != nil {
		t.Fatalf("repair pass: %v", err)
	}
	rec.MarkBarrier()
	consFinalReads(rk, keys)
	consObserve(rec, f, consClients(t, []string{addr0, addr1}), []int{0, 1}, keys)

	h := rec.History()
	consRequireOK(t, "crash-mid-quorum-write", "convergence", true,
		consistency.CheckConvergence(h, consistency.ConvergenceOpts{StrictDeletes: true}), h)
}

// TestConsistencyRotationMidHistory: the mapping secret rotates while
// the workload runs. No replica fails and nothing sheds, so every
// outcome is definite. The register model judges the single-writer CAS
// keys — each a quorum-decided chain that the dual-epoch read path and
// the migration are not allowed to break — while the mixed-workload
// keys answer to the strict convergence contract. The mixed keys are
// NOT register-checked: version assignment happens at the frontend
// before the replicas order the write, so a blind Set can commit a
// LOWER version than a concurrent create-CAS that validated against
// pre-Set state. Highest-version-wins then keeps the CAS value, masking
// the acked Set — inherent last-writer-wins behavior for concurrent
// mixed writes to one key, not a rotation regression (rotation's wider
// write fan-out merely makes the overlap likely enough to observe).
func TestConsistencyRotationMidHistory(t *testing.T) {
	checkGoroutineLeaks(t)
	lc := startCluster(t, LocalConfig{
		Nodes: 4, Replication: 2, PartitionSeed: 17, WriteQuorum: 2,
		Client:         ClientConfig{PipelineDepth: 8},
		Health:         HealthConfig{FailureThreshold: 3, ProbeInterval: 20 * time.Millisecond},
		RepairInterval: -1, RepairRate: -1,
	})
	f := lc.Frontend
	rec := consistency.NewRecorder()
	rk := consistency.NewRecordedKV(f, rec, kvConsErrs())
	keys := consKeys("rot", 10)
	casKeys := consKeys("rotcas", 3)

	var done atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		worker := rk.WithProc()
		go func(salt uint64) {
			defer wg.Done()
			rng := consRNG(salt)
			for i := 0; !done.Load() || i < 30; i++ {
				consMixedOps(worker, rng, keys, 1, [3]int{40, 30, 10})
			}
		}(0x40 + uint64(p))
	}
	for i, key := range casKeys {
		wg.Add(1)
		worker := rk.WithProc()
		go func(key string, salt uint64) {
			defer wg.Done()
			consCasWorker(worker, consRNG(salt), key, 20, done.Load)
		}(key, 0x4CA5+uint64(i))
	}

	time.Sleep(100 * time.Millisecond)
	if _, err := f.Rotate(0x5eed); err != nil {
		t.Fatalf("rotate: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for f.RotationStatus().Rotating {
		if time.Now().After(deadline) {
			t.Fatal("rotation did not complete")
		}
		time.Sleep(10 * time.Millisecond)
	}
	done.Store(true)
	wg.Wait()

	consDrainHints(t, f)
	if _, err := f.RunRepairPass(); err != nil {
		t.Fatalf("repair pass: %v", err)
	}
	rec.MarkBarrier()
	allKeys := append(append([]string(nil), keys...), casKeys...)
	consFinalReads(rk, allKeys)
	consObserve(rec, f, consClients(t, lc.BackendAddrs), make([]int, 4), allKeys)

	h := rec.History()
	casH := consFilterKeys(h, "rotcas-")
	consRequireOK(t, "rotation-mid-history", "register", false,
		consistency.CheckLinearizable(casH, consistency.RegisterModel{}, 0), casH)
	consRequireOK(t, "rotation-mid-history", "convergence", true,
		consistency.CheckConvergence(h, consistency.ConvergenceOpts{StrictDeletes: true}), h)
}

// TestConsistencyJoinDrainMidHistory: a backend joins and another
// drains while the workload runs. As with rotation, no faults are
// injected — view changes alone must keep the single-writer CAS chains
// linearizable and the whole history strictly convergent. The mixed
// keys are excluded from the register check for the same reason as in
// the rotation scenario: concurrent blind Set + create-CAS on one key
// resolve by highest-version-wins, which can mask an acked Set.
func TestConsistencyJoinDrainMidHistory(t *testing.T) {
	checkGoroutineLeaks(t)
	lc := startCluster(t, LocalConfig{
		Nodes: 3, Replication: 2, PartitionSeed: 29, WriteQuorum: 2,
		Client:         ClientConfig{PipelineDepth: 8},
		Health:         HealthConfig{FailureThreshold: 3, ProbeInterval: 20 * time.Millisecond},
		RepairInterval: -1, RepairRate: -1,
	})
	f := lc.Frontend
	rec := consistency.NewRecorder()
	rk := consistency.NewRecordedKV(f, rec, kvConsErrs())
	keys := consKeys("mem", 8)
	casKeys := consKeys("memcas", 3)

	var done atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		wg.Add(1)
		worker := rk.WithProc()
		go func(salt uint64) {
			defer wg.Done()
			rng := consRNG(salt)
			for i := 0; !done.Load() || i < 30; i++ {
				consMixedOps(worker, rng, keys, 1, [3]int{40, 30, 10})
			}
		}(0x90 + uint64(p))
	}
	for i, key := range casKeys {
		wg.Add(1)
		worker := rk.WithProc()
		go func(key string, salt uint64) {
			defer wg.Done()
			consCasWorker(worker, consRNG(salt), key, 20, done.Load)
		}(key, 0x9CA5+uint64(i))
	}

	waitIdle := func(what string) {
		deadline := time.Now().Add(15 * time.Second)
		for f.MembershipStatus().Rotating {
			if time.Now().After(deadline) {
				t.Fatalf("%s did not complete", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	time.Sleep(80 * time.Millisecond)
	joinAddr, err := lc.AddBackend(overload.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Join(joinAddr); err != nil {
		t.Fatalf("join: %v", err)
	}
	waitIdle("join")
	if _, err := f.Drain(0); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitIdle("drain")
	done.Store(true)
	wg.Wait()

	consDrainHints(t, f)
	if _, err := f.RunRepairPass(); err != nil {
		t.Fatalf("repair pass: %v", err)
	}
	rec.MarkBarrier()
	allKeys := append(append([]string(nil), keys...), casKeys...)
	consFinalReads(rk, allKeys)
	consObserve(rec, f, consClients(t, lc.BackendAddrs), make([]int, 4), allKeys)

	h := rec.History()
	casH := consFilterKeys(h, "memcas-")
	consRequireOK(t, "join-drain-mid-history", "register", false,
		consistency.CheckLinearizable(casH, consistency.RegisterModel{}, 0), casH)
	consRequireOK(t, "join-drain-mid-history", "convergence", true,
		consistency.CheckConvergence(h, consistency.ConvergenceOpts{StrictDeletes: true}), h)
}

// TestConsistencyPipelinedCasChain: the pinned pipelined-wire scenario.
// The recorded ops travel a pipelined TCP connection — one shared wire
// *Client (PipelineDepth 32) against the frontend's address, every CAS
// chain and mixed worker multiplexed on the same conn — and the
// frontend's own quorum fan-out uses pipelined backend clients. A
// faultnet proxy sits on the client→frontend wire and flaps: dropped
// requests leak window slots until the read deadline tears the conn
// down, dropped responses are the classic ack-lost ambiguity, and a
// hard CloseExisting between the two windows fails a full window of
// in-flight frames at once. The register model over the CAS keys is
// what proves correlation matching never mis-delivered a response or
// silently re-applied a swap (the free-retry policy must refuse
// non-idempotent ops after a mid-flight pipe death); strict convergence
// holds because W = d and the backends themselves never fault.
func TestConsistencyPipelinedCasChain(t *testing.T) {
	checkGoroutineLeaks(t)
	backends := make([]*Backend, 3)
	addrs := make([]string, 3)
	for i := range backends {
		b, addr, err := StartBackend(i, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		backends[i], addrs[i] = b, addr
	}
	f, faddr, err := StartFrontend(FrontendConfig{
		BackendAddrs: addrs,
		Replication:  2, PartitionSeed: 41, WriteQuorum: 2,
		Client: ClientConfig{DialTimeout: 100 * time.Millisecond, ReadTimeout: 100 * time.Millisecond,
			WriteTimeout: 100 * time.Millisecond, MaxRetries: -1, PipelineDepth: 8},
		Health:         HealthConfig{FailureThreshold: 3, ProbeInterval: 20 * time.Millisecond},
		RepairInterval: -1, RepairRate: -1,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	proxy, err := faultnet.Start(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	wc := NewClientWithConfig(proxy.Addr(), ClientConfig{
		PipelineDepth: 32, MaxRetries: -1,
		DialTimeout: 500 * time.Millisecond, ReadTimeout: 500 * time.Millisecond,
		WriteTimeout: 500 * time.Millisecond,
	})
	defer wc.Close()

	rec := consistency.NewRecorder()
	rk := consistency.NewRecordedKV(wc, rec, kvConsErrs())
	kvKeys := consKeys("pipekv", 6)
	casKeys := consKeys("pipecas", 4)

	var schedDone atomic.Bool
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		proxy.RunSchedule(faultnet.PartitionWindows(
			faultnet.Faults{DropToServer: true}, 100*time.Millisecond, 100*time.Millisecond, 3))
		proxy.CloseExisting() // hard pipe death: fail-all-pending under load
		proxy.RunSchedule(faultnet.PartitionWindows(
			faultnet.Faults{DropToClient: true}, 100*time.Millisecond, 100*time.Millisecond, 3))
		schedDone.Store(true)
	}()

	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		worker := rk.WithProc()
		go func(salt uint64) {
			defer wg.Done()
			rng := consRNG(salt)
			for i := 0; !schedDone.Load() || i < 20; i++ {
				consMixedOps(worker, rng, kvKeys, 1, [3]int{40, 35, 10})
			}
		}(0xB1 + uint64(p))
	}
	for i, key := range casKeys {
		wg.Add(1)
		worker := rk.WithProc()
		go func(key string, salt uint64) {
			defer wg.Done()
			consCasWorker(worker, consRNG(salt), key, 15, schedDone.Load)
		}(key, 0x91CA5+uint64(i))
	}
	wg.Wait()
	schedWG.Wait()
	proxy.Clear()

	consDrainHints(t, f)
	if _, err := f.RunRepairPass(); err != nil {
		t.Fatalf("repair pass: %v", err)
	}
	rec.MarkBarrier()
	allKeys := append(append([]string(nil), kvKeys...), casKeys...)
	consFinalReads(rk, allKeys)
	consObserve(rec, f, consClients(t, addrs), []int{0, 0, 0}, allKeys)

	h := rec.History()
	casH := consFilterKeys(h, "pipecas-")
	consRequireOK(t, "pipelined-cas-chain", "register", false,
		consistency.CheckLinearizable(casH, consistency.RegisterModel{}, 0), casH)
	consRequireOK(t, "pipelined-cas-chain", "convergence", true,
		consistency.CheckConvergence(h, consistency.ConvergenceOpts{StrictDeletes: true}), h)
}

// consRequireViolation asserts the checker REJECTED the history with a
// failure mentioning wantSubstr, dumps the artifact, and returns its
// path — the mutation tests' common tail.
func consRequireViolation(t *testing.T, scenario, model string, strict bool, res consistency.Result, h consistency.History, wantSubstr string) string {
	t.Helper()
	if res.Ok {
		t.Fatalf("%s: checker accepted the mutated history — the %s contract is not enforced", scenario, model)
	}
	found := false
	for _, f := range res.Failures {
		if len(wantSubstr) == 0 || containsStr(f, wantSubstr) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("%s: failures %v do not mention %q", scenario, res.Failures, wantSubstr)
	}
	return consSaveArtifact(t, scenario, model, strict, res, h)
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestConsistencyMutationCasCheckDisabled: with the store's CAS version
// precondition skipped, two swaps against the same expectation both
// "succeed" — the canonical lost update. The register checker must
// reject exactly that history (and accept the guarded run), and the
// dumped artifact must replay byte-identically to the same verdict.
func TestConsistencyMutationCasCheckDisabled(t *testing.T) {
	checkGoroutineLeaks(t)
	run := func(t *testing.T, mutate bool) (consistency.Result, consistency.History) {
		if mutate {
			testHooks.disableCasCheck.Store(true)
			defer testHooks.disableCasCheck.Store(false)
		}
		lc := startCluster(t, LocalConfig{
			Nodes: 1, Replication: 1, PartitionSeed: 11, WriteQuorum: 1,
			RepairInterval: -1, RepairRate: -1,
		})
		rec := consistency.NewRecorder()
		rk := consistency.NewRecordedKV(lc.Frontend, rec, kvConsErrs())
		base, err := rk.SetV("acct", []byte("base"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rk.Cas("acct", []byte("winner"), base); err != nil {
			t.Fatalf("first cas: %v", err)
		}
		// Guarded, this second swap against the consumed expectation must
		// conflict; mutated, the skipped check lets it "win" too.
		rk.Cas("acct", []byte("loser"), base)
		rk.GetV("acct")
		h := rec.History()
		return consistency.CheckLinearizable(h, consistency.RegisterModel{}, 0), h
	}

	t.Run("guarded", func(t *testing.T) {
		res, h := run(t, false)
		consRequireOK(t, "mutation-cas-check", "register", false, res, h)
	})
	t.Run("mutated", func(t *testing.T) {
		res, h := run(t, true)
		path := consRequireViolation(t, "mutation-cas-check", "register", false, res, h, "")
		// The replay loop: the artifact reloads, re-checks to the same
		// verdict, and re-saves byte for byte.
		art, err := consistency.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		re, err := art.Recheck(0)
		if err != nil || re.Ok {
			t.Fatalf("replayed artifact re-checked to %v, %v; want the original failure", re, err)
		}
		if len(re.Failures) != len(res.Failures) || re.Failures[0] != res.Failures[0] {
			t.Fatalf("replay verdict %v != original %v", re.Failures, res.Failures)
		}
		resaved := filepath.Join(t.TempDir(), "resaved.json")
		if err := art.Save(resaved); err != nil {
			t.Fatal(err)
		}
		b1, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(resaved)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Fatal("artifact did not replay byte-identically")
		}
	})
}

// TestConsistencyMutationTombAuthorityDisabled: a W = 1 delete lands
// its tombstone on the read path's first replica while the second is
// down (and the hint for it is legitimately dropped — the queue is
// full). The second replica warm-restarts from its WAL still holding
// the live pre-delete value. Tombstone authority is then the ONLY
// thing standing between the reader and a resurrected key: guarded,
// the read returns the authoritative miss; with authority disabled it
// serves the old value, and the strict convergence checker must flag
// the resurrection. (StrictDeletes is sound for this schedule despite
// W < d: both replicas stay reachable for the read, so the tombstone
// is always consulted.)
func TestConsistencyMutationTombAuthorityDisabled(t *testing.T) {
	checkGoroutineLeaks(t)
	run := func(t *testing.T, mutate bool) (consistency.Result, consistency.History) {
		b0, addr0, err := StartBackend(0, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer b0.Close()
		dir := filepath.Join(t.TempDir(), "node1")
		b1, addr1, err := StartBackend(1, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b1.OpenData(dir, walTestOpts()); err != nil {
			t.Fatal(err)
		}
		f, _, err := StartFrontend(FrontendConfig{
			BackendAddrs: []string{addr0, addr1},
			Replication:  2, PartitionSeed: 23, WriteQuorum: 1, HintLimit: 1,
			Client: ClientConfig{DialTimeout: 200 * time.Millisecond, ReadTimeout: 200 * time.Millisecond,
				WriteTimeout: 200 * time.Millisecond, MaxRetries: -1},
			Health:         HealthConfig{FailureThreshold: 3, ProbeInterval: 20 * time.Millisecond},
			RepairInterval: -1, RepairRate: -1,
		}, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()

		// A key whose group order starts at node 0 — the replica that
		// will hold the tombstone and answer reads first.
		var key string
		for i := 0; i < 512; i++ {
			k := fmt.Sprintf("tomb-key-%d", i)
			if f.Group(k)[0] == 0 {
				key = k
				break
			}
		}
		if key == "" {
			t.Fatal("no key with group order [0 1] found")
		}

		rec := consistency.NewRecorder()
		rk := consistency.NewRecordedKV(f, rec, kvConsErrs())
		// The write fan-out is sequential over the group, so a nil error
		// here means BOTH replicas hold the value (W=1 only bounds the
		// ack wait, not the fan-out).
		if _, err := rk.SetV(key, []byte("alive")); err != nil {
			t.Fatal(err)
		}
		if _, _, _, _, ok := b1.Store().GetVersioned(key); !ok {
			t.Fatal("node 1 missed the seed write")
		}
		b1.Close()

		// Fill the one-slot hint queue so the delete's hint is dropped —
		// the legitimate overflow path, leaving NO replay that would
		// deliver the tombstone to node 1.
		if _, err := rk.SetV("hint-filler", []byte("filler")); err != nil {
			t.Fatal(err)
		}
		if got := f.Metrics().Gauge("hints_pending").Value(); got != 1 {
			t.Fatalf("hint queue holds %d, want 1", got)
		}
		if _, err := rk.DelV(key); err != nil {
			t.Fatalf("W=1 delete: %v", err)
		}
		if got := f.Metrics().Counter("hints_dropped_total").Value(); got == 0 {
			t.Fatal("delete hint was not dropped — the scenario setup broke")
		}

		// Node 1 warm-restarts from its log: live value, no tombstone.
		l, err := net.Listen("tcp", addr1)
		if err != nil {
			t.Fatal(err)
		}
		b1r := NewBackend(1)
		if _, err := b1r.OpenData(dir, walTestOpts()); err != nil {
			t.Fatal(err)
		}
		go b1r.Serve(l)
		defer b1r.Close()
		consWaitServing(t, addr1)

		if mutate {
			testHooks.disableTombAuthority.Store(true)
			defer testHooks.disableTombAuthority.Store(false)
		}
		// THE read: node 0 answers first with the tombstone. Guarded,
		// that is the authoritative miss; mutated, the read falls through
		// to node 1's stale live copy.
		rk.GetV(key)

		// Quiesce: the filler hint drains once probes re-admit node 1,
		// and anti-entropy spreads the tombstone.
		consDrainHints(t, f)
		if _, err := f.RunRepairPass(); err != nil {
			t.Fatalf("repair pass: %v", err)
		}
		rec.MarkBarrier()
		consObserve(rec, f, consClients(t, []string{addr0, addr1}), []int{0, 1}, []string{key, "hint-filler"})

		h := rec.History()
		return consistency.CheckConvergence(h, consistency.ConvergenceOpts{StrictDeletes: true}), h
	}

	t.Run("guarded", func(t *testing.T) {
		res, h := run(t, false)
		consRequireOK(t, "mutation-tomb-authority", "convergence", true, res, h)
	})
	t.Run("mutated", func(t *testing.T) {
		res, h := run(t, true)
		consRequireViolation(t, "mutation-tomb-authority", "convergence", true, res, h, "resurrected")
	})
}

// TestConsistencyMutationReadRepairDisabled: one replica restarts empty
// under a round-robin read policy, so half the reads consult it first,
// find a clean miss, and (guarded) schedule read repair that backfills
// it. With read repair disabled and anti-entropy off, the empty replica
// stays empty — and the post-barrier agreement check must call out the
// divergence. The recorded OPS are identical in both arms (the fan-in
// always finds the value on the sibling); only the replica observations
// betray the missing safeguard, which is exactly what they exist for.
func TestConsistencyMutationReadRepairDisabled(t *testing.T) {
	checkGoroutineLeaks(t)
	run := func(t *testing.T, mutate bool) (consistency.Result, consistency.History) {
		b0, addr0, err := StartBackend(0, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer b0.Close()
		b1, addr1, err := StartBackend(1, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f, _, err := StartFrontend(FrontendConfig{
			BackendAddrs: []string{addr0, addr1},
			Replication:  2, PartitionSeed: 37, WriteQuorum: 2,
			Selection:      SelectRoundRobin,
			Client:         ClientConfig{MaxRetries: -1},
			Health:         HealthConfig{FailureThreshold: 3, ProbeInterval: 20 * time.Millisecond},
			RepairInterval: -1, RepairRate: -1,
		}, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()

		rec := consistency.NewRecorder()
		rk := consistency.NewRecordedKV(f, rec, kvConsErrs())
		keys := consKeys("rr", 6)
		for _, key := range keys {
			if _, err := rk.SetV(key, []byte("v-"+key)); err != nil {
				t.Fatal(err)
			}
		}

		// Node 1 restarts EMPTY (no log): the divergence read repair is
		// supposed to erase.
		b1.Close()
		l, err := net.Listen("tcp", addr1)
		if err != nil {
			t.Fatal(err)
		}
		b1r := NewBackend(1)
		go b1r.Serve(l)
		defer b1r.Close()
		consWaitServing(t, addr1)

		if mutate {
			testHooks.disableReadRepair.Store(true)
			defer testHooks.disableReadRepair.Store(false)
		}
		// Two reads per key: round-robin alternates the starting replica,
		// so one of each pair consults the empty node first and reports
		// the clean miss that triggers (or, mutated, fails to trigger)
		// repair. Both reads still return the value — the sibling holds it.
		for _, key := range keys {
			for i := 0; i < 2; i++ {
				if _, _, _, err := rk.GetV(key); err != nil {
					t.Fatalf("GetV(%s): %v", key, err)
				}
			}
		}
		if !mutate {
			deadline := time.Now().Add(5 * time.Second)
			for {
				healed := 0
				for _, key := range keys {
					if _, _, _, _, ok := b1r.Store().GetVersioned(key); ok {
						healed++
					}
				}
				if healed == len(keys) {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("read repair backfilled %d/%d keys", healed, len(keys))
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		// Deliberately NO anti-entropy pass: read repair is the only
		// healer under test here.
		rec.MarkBarrier()
		consObserve(rec, f, consClients(t, []string{addr0, addr1}), []int{0, 1}, keys)

		h := rec.History()
		return consistency.CheckConvergence(h, consistency.ConvergenceOpts{StrictDeletes: true}), h
	}

	t.Run("guarded", func(t *testing.T) {
		res, h := run(t, false)
		consRequireOK(t, "mutation-read-repair", "convergence", true, res, h)
	})
	t.Run("mutated", func(t *testing.T) {
		res, h := run(t, true)
		consRequireViolation(t, "mutation-read-repair", "convergence", true, res, h, "disagreement")
	})
}
