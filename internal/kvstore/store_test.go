package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("absent"); ok {
		t.Error("Get of absent key succeeded")
	}
	s.Set("k1", []byte("v1"))
	v, ok := s.Get("k1")
	if !ok || string(v) != "v1" {
		t.Errorf("Get(k1) = %q, %v", v, ok)
	}
	s.Set("k1", []byte("v2"))
	if v, _ := s.Get("k1"); string(v) != "v2" {
		t.Error("overwrite failed")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if !s.Delete("k1") {
		t.Error("Delete returned false")
	}
	if s.Delete("k1") {
		t.Error("double Delete returned true")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after delete", s.Len())
	}
}

func TestStoreCopiesValues(t *testing.T) {
	s := NewStore()
	val := []byte("original")
	s.Set("k", val)
	val[0] = 'X' // mutate caller's slice
	got, _ := s.Get("k")
	if string(got) != "original" {
		t.Error("Set aliased the caller's value")
	}
	got[0] = 'Y' // mutate returned slice
	again, _ := s.Get("k")
	if string(again) != "original" {
		t.Error("Get returned aliased storage")
	}
}

func TestStoreEmptyValueVsMissing(t *testing.T) {
	s := NewStore()
	s.Set("empty", nil)
	v, ok := s.Get("empty")
	if !ok {
		t.Error("empty-valued key reported missing")
	}
	if len(v) != 0 {
		t.Errorf("value = %q, want empty", v)
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("k%d-%d", w, i)
				s.Set(key, []byte(key))
				if v, ok := s.Get(key); !ok || !bytes.Equal(v, []byte(key)) {
					t.Errorf("lost write for %s", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8000 {
		t.Errorf("Len = %d, want 8000", s.Len())
	}
}

func TestStoreShardSpread(t *testing.T) {
	// Sanity: keys spread over more than one shard.
	s := NewStore()
	for i := 0; i < 1000; i++ {
		s.Set(fmt.Sprintf("key-%d", i), nil)
	}
	used := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		if len(s.shards[i].m) > 0 {
			used++
		}
		s.shards[i].mu.RUnlock()
	}
	if used < storeShards/2 {
		t.Errorf("only %d/%d shards used", used, storeShards)
	}
}

func BenchmarkStoreGet(b *testing.B) {
	s := NewStore()
	for i := 0; i < 1024; i++ {
		s.Set(fmt.Sprintf("k%04d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get(fmt.Sprintf("k%04d", i%1024))
	}
}
